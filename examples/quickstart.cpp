// Quickstart: build a Bell-state circuit, attach the IBM Yorktown error
// model, and run the noisy Monte Carlo simulation with the reorder +
// prefix-caching optimization. Shows the outcome histogram and how much
// computation the optimization removed relative to the baseline.
//
//   ./build/examples/quickstart
#include <iostream>

#include "common/bits.hpp"
#include "noise/devices.hpp"
#include "sched/runner.hpp"

int main() {
  using namespace rqsim;

  // 1. Build a circuit (qubit 0 entangled with qubit 1, both measured).
  Circuit bell(2, "bell");
  bell.h(0);
  bell.cx(0, 1);
  bell.measure_all();

  // 2. Pick a device error model (Yorktown = the paper's Fig. 4 rates).
  const DeviceModel dev = yorktown_device();

  // 3. Run the noisy Monte Carlo simulation.
  NoisyRunConfig config;
  config.num_trials = 8192;
  config.seed = 2020;
  config.mode = ExecutionMode::kCachedReordered;
  const NoisyRunResult result = run_noisy(bell, dev.noise, config);

  // 4. Inspect the results.
  std::cout << "outcome histogram over " << config.num_trials << " trials:\n";
  for (const auto& [outcome, count] : result.histogram) {
    std::cout << "  |" << to_bitstring(outcome, bell.num_measured()) << ">  "
              << count << "\n";
  }
  std::cout << "\nmatrix-vector ops executed : " << result.ops << "\n";
  std::cout << "baseline would have needed : " << result.baseline_ops << "\n";
  std::cout << "normalized computation     : " << result.normalized_computation
            << "  (" << 100.0 * (1.0 - result.normalized_computation)
            << "% saved)\n";
  std::cout << "maintained state vectors   : " << result.max_live_states << "\n";
  std::cout << "mean injected errors/trial : " << result.trial_stats.mean_errors
            << "\n";
  return 0;
}
