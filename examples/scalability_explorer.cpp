// Domain example: plan a large noisy-simulation campaign before buying the
// compute. For a quantum-volume workload of a chosen size, estimate — with
// the accounting backend, so even 40-qubit circuits are instant — how much
// computation the reorder+caching scheme removes and how many state vectors
// the run would keep alive.
//
//   ./build/examples/scalability_explorer [qubits] [depth] [single_rate] [trials]
//   e.g. ./build/examples/scalability_explorer 30 20 1e-4 100000
#include <cstdlib>
#include <iostream>

#include "bench_circuits/qv.hpp"
#include "common/strings.hpp"
#include "noise/devices.hpp"
#include "sched/runner.hpp"
#include "transpile/decompose.hpp"

int main(int argc, char** argv) {
  using namespace rqsim;
  const unsigned qubits = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 20;
  const unsigned depth = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 10;
  const double rate = argc > 3 ? std::atof(argv[3]) : 1e-3;
  const std::size_t trials = argc > 4 ? static_cast<std::size_t>(std::atoll(argv[4])) : 100000;

  const Circuit circuit = decompose_to_cx_basis(make_qv(qubits, depth, /*seed=*/1));
  const DeviceModel dev = artificial_device(qubits, rate);
  std::cout << "workload: QV n" << qubits << ", d" << depth << " -> "
            << circuit.num_gates() << " gates ("
            << circuit.count_kind(GateKind::CX) << " CX), error rates "
            << rate << " (1q) / " << 10 * rate << " (2q, meas), " << trials
            << " trials\n\n";

  NoisyRunConfig config;
  config.num_trials = trials;
  config.seed = 7;

  config.mode = ExecutionMode::kCachedReordered;
  const NoisyRunResult cached = analyze_noisy(circuit, dev.noise, config);
  config.mode = ExecutionMode::kCachedUnordered;
  const NoisyRunResult unordered = analyze_noisy(circuit, dev.noise, config);

  std::cout << "baseline ops            : " << cached.baseline_ops << "\n";
  std::cout << "reordered+cached ops    : " << cached.ops << "  (normalized "
            << format_double(cached.normalized_computation, 4) << ", "
            << format_double(100.0 * (1.0 - cached.normalized_computation), 1)
            << "% saved)\n";
  std::cout << "unordered-cache ops     : " << unordered.ops << "  (normalized "
            << format_double(unordered.normalized_computation, 4) << ")\n";
  std::cout << "MSV reordered / unordered: " << cached.max_live_states << " / "
            << unordered.max_live_states << "\n";
  std::cout << "mean errors per trial   : "
            << format_double(cached.trial_stats.mean_errors, 2) << " (max "
            << cached.trial_stats.max_errors << ", error-free "
            << cached.trial_stats.error_free_trials << ")\n";

  const double state_bytes = 16.0 * static_cast<double>(std::uint64_t{1} << qubits);
  std::cout << "\none state vector at n" << qubits << " = "
            << format_double(state_bytes / (1024.0 * 1024.0), 1)
            << " MiB; the optimized run would hold at most "
            << cached.max_live_states << " of them ("
            << format_double(cached.max_live_states * state_bytes / (1024.0 * 1024.0), 1)
            << " MiB).\n";
  return 0;
}
