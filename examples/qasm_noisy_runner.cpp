// Domain example: the full pipeline on user-supplied code. Reads an
// OpenQASM 2.0 file (or an embedded demo program if no path is given),
// transpiles it onto the Yorktown device, runs the optimized noisy
// simulation, and prints the outcome distribution.
//
//   ./build/examples/qasm_noisy_runner [program.qasm] [trials]
#include <fstream>
#include <iostream>
#include <sstream>

#include "circuit/qasm.hpp"
#include "common/bits.hpp"
#include "common/strings.hpp"
#include "noise/devices.hpp"
#include "sched/runner.hpp"
#include "transpile/transpiler.hpp"

namespace {

constexpr const char* kDemoProgram = R"(
OPENQASM 2.0;
include "qelib1.inc";
// 3-qubit GHZ with a phase kick
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
u1(pi/4) q[2];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace rqsim;
  std::string source = kDemoProgram;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    source = buffer.str();
  }
  const std::size_t trials =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 8192;

  const Circuit logical = from_qasm(source);
  std::cout << "parsed: " << logical.num_qubits() << " qubits, "
            << logical.num_gates() << " gates, " << logical.num_measured()
            << " measured\n";

  const DeviceModel dev = yorktown_device();
  const TranspileResult compiled = transpile(logical, dev.coupling);
  std::cout << "compiled to " << dev.name << ": " << compiled.circuit.num_gates()
            << " gates (" << compiled.swaps_inserted << " SWAPs)\n\n";

  NoisyRunConfig config;
  config.num_trials = trials;
  config.seed = 11;
  config.mode = ExecutionMode::kCachedReordered;
  const NoisyRunResult result = run_noisy(compiled.circuit, dev.noise, config);

  std::cout << "noisy outcome distribution (" << trials << " trials):\n";
  for (const auto& [outcome, count] : result.histogram) {
    const double p = static_cast<double>(count) / static_cast<double>(trials);
    std::cout << "  |" << to_bitstring(outcome, compiled.circuit.num_measured())
              << ">  " << format_double(p, 4) << "\n";
  }
  std::cout << "\ncomputation saved vs baseline: "
            << format_double(100.0 * (1.0 - result.normalized_computation), 1)
            << "%  with " << result.max_live_states << " maintained state vectors\n";
  return 0;
}
