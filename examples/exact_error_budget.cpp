// Domain example: deterministic error budgeting without Monte Carlo.
//
// Enumerates every 0-, 1- and 2-error configuration of a compiled circuit,
// computes the exact truncated outcome distribution with a rigorous
// total-variation bound, and compares it against a Monte Carlo run of the
// same workload. Useful when a hard error bound matters more than raw
// sampling speed (e.g. verifying an error-mitigation claim).
//
//   ./build/examples/exact_error_budget [circuit-spec] [k]
#include <cstdlib>
#include <iostream>

#include "bench_circuits/factory.hpp"
#include "common/bits.hpp"
#include "common/strings.hpp"
#include "noise/devices.hpp"
#include "report/table.hpp"
#include "sched/enumerate.hpp"
#include "sched/runner.hpp"
#include "transpile/transpiler.hpp"

int main(int argc, char** argv) {
  using namespace rqsim;
  const std::string spec = argc > 1 ? argv[1] : "grover";
  const std::size_t k = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 2;

  const DeviceModel dev = yorktown_device();
  const TranspileResult compiled = transpile(make_named_circuit(spec), dev.coupling);
  const Circuit& circuit = compiled.circuit;
  std::cout << "circuit '" << spec << "' on " << dev.name << ": "
            << circuit.num_gates() << " gates\n\n";

  const TruncatedDistribution exact = truncated_exact_distribution(circuit, dev.noise, k);
  std::cout << "enumerated " << exact.num_configurations
            << " configurations with <= " << k << " errors\n";
  std::cout << "covered probability mass: " << format_double(exact.covered_mass, 6)
            << "  (TVD error bound " << format_double(1.0 - exact.covered_mass, 6)
            << ")\n";
  std::cout << "prefix sharing: " << exact.ops << " ops vs " << exact.baseline_ops
            << " unshared (" << format_double(100.0 * (1.0 - static_cast<double>(exact.ops) /
                                                                 static_cast<double>(exact.baseline_ops)),
                                              1)
            << "% saved), " << exact.max_live_states << " states held\n\n";

  NoisyRunConfig config;
  config.num_trials = 50000;
  config.seed = 11;
  const NoisyRunResult mc = run_noisy(circuit, dev.noise, config);

  TextTable table({"outcome", "exact (truncated, renorm.)", "Monte Carlo"});
  for (std::uint64_t outcome = 0; outcome < exact.probabilities.size(); ++outcome) {
    const auto it = mc.histogram.find(outcome);
    const double sampled =
        it == mc.histogram.end()
            ? 0.0
            : static_cast<double>(it->second) / static_cast<double>(config.num_trials);
    // Built with += to dodge GCC 12's -Wrestrict false positive on
    // operator+(const char*, std::string&&).
    std::string ket = "|";
    ket += to_bitstring(outcome, circuit.num_measured());
    ket += ">";
    table.add_row({std::move(ket),
                   format_double(exact.probabilities[outcome] / exact.covered_mass, 5),
                   format_double(sampled, 5)});
  }
  std::cout << table.render();
  return 0;
}
