// Domain example: variational-algorithm evaluation under noise — the
// molecule-simulation use case the paper's introduction motivates.
//
// Builds a transverse-field Ising Hamiltonian
//     H = -J Σ Z_i Z_{i+1} - h Σ X_i
// on a line of qubits, optimizes a hardware-efficient ansatz noiselessly
// with a simple random search, then estimates the energy under increasing
// hardware noise using the accelerated Monte Carlo pipeline with
// Pauli-string observables. Shows how noise biases the energy estimate and
// what the reorder+caching optimization saves while computing it.
//
//   ./build/examples/vqe_energy [qubits] [layers] [search_iters]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_circuits/ansatz.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "noise/devices.hpp"
#include "obs/pauli_string.hpp"
#include "report/table.hpp"
#include "sched/runner.hpp"
#include "sim/kernels.hpp"

namespace {

using namespace rqsim;

struct Hamiltonian {
  std::vector<PauliString> terms;
  std::vector<double> coefficients;
};

Hamiltonian make_tfim(unsigned n, double coupling, double field) {
  Hamiltonian h;
  for (qubit_t q = 0; q + 1 < n; ++q) {
    h.terms.push_back(PauliString({{q, Pauli::Z}, {q + 1, Pauli::Z}}));
    h.coefficients.push_back(-coupling);
  }
  for (qubit_t q = 0; q < n; ++q) {
    h.terms.push_back(PauliString({{q, Pauli::X}}));
    h.coefficients.push_back(-field);
  }
  return h;
}

double noiseless_energy(const Circuit& ansatz, const Hamiltonian& h) {
  StateVector state(ansatz.num_qubits());
  for (const Gate& g : ansatz.gates()) {
    apply_gate(state, g);
  }
  double energy = 0.0;
  for (std::size_t k = 0; k < h.terms.size(); ++k) {
    energy += h.coefficients[k] * expectation(state, h.terms[k]);
  }
  return energy;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned qubits = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const unsigned layers = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 2;
  const int iters = argc > 3 ? std::atoi(argv[3]) : 300;

  const Hamiltonian h = make_tfim(qubits, /*coupling=*/1.0, /*field=*/0.7);

  // Noiseless random-search "optimization" (good enough for a demo).
  Rng rng(2026);
  std::vector<double> best(ansatz_num_parameters(qubits, layers), 0.0);
  double best_energy = noiseless_energy(make_hw_efficient_ansatz(qubits, layers, best), h);
  for (int it = 0; it < iters; ++it) {
    std::vector<double> candidate = best;
    for (double& angle : candidate) {
      angle += rng.normal() * 0.3;
    }
    const double e =
        noiseless_energy(make_hw_efficient_ansatz(qubits, layers, candidate), h);
    if (e < best_energy) {
      best_energy = e;
      best = std::move(candidate);
    }
  }
  std::cout << "TFIM on " << qubits << " qubits, " << layers
            << "-layer hardware-efficient ansatz\n";
  std::cout << "noiseless optimized energy: " << format_double(best_energy, 5)
            << "\n\n";

  const Circuit ansatz = make_hw_efficient_ansatz(qubits, layers, best);
  const DeviceModel dev = artificial_device(qubits, 1e-3);

  TextTable table({"noise scale", "noisy energy", "bias", "norm. computation", "MSV"});
  for (double scale : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    NoisyRunConfig config;
    config.num_trials = 20000;
    config.seed = 7;
    config.observables = h.terms;
    const NoisyRunResult result = run_noisy(ansatz, dev.noise.scaled(scale), config);
    double energy = 0.0;
    for (std::size_t k = 0; k < h.terms.size(); ++k) {
      energy += h.coefficients[k] * result.observable_means[k];
    }
    table.add_row({format_double(scale, 1), format_double(energy, 5),
                   format_double(energy - best_energy, 5),
                   format_double(result.normalized_computation, 4),
                   std::to_string(result.max_live_states)});
  }
  std::cout << table.render();
  std::cout << "\nDepolarizing noise pulls every Pauli expectation toward zero, so\n"
               "the estimated energy drifts toward 0 as the noise scale grows.\n";
  return 0;
}
