// Domain example: how does hardware noise degrade Grover search, and what
// does the accelerated simulator save while answering that question?
//
// Sweeps a scaling factor over the Yorktown error model, runs the compiled
// 3-qubit Grover circuit at each noise level, and reports the success
// probability of the marked state together with the simulation savings.
//
//   ./build/examples/grover_under_noise [marked (0..7), default 5]
#include <cstdlib>
#include <iostream>

#include "bench_circuits/grover.hpp"
#include "common/bits.hpp"
#include "common/strings.hpp"
#include "noise/devices.hpp"
#include "report/table.hpp"
#include "sched/runner.hpp"
#include "transpile/transpiler.hpp"

int main(int argc, char** argv) {
  using namespace rqsim;
  const std::uint64_t marked = argc > 1 ? std::strtoull(argv[1], nullptr, 10) % 8 : 5;

  const DeviceModel dev = yorktown_device();
  const TranspileResult compiled = transpile(make_grover3(marked, 2), dev.coupling);
  std::cout << "3-qubit Grover, marked state |" << to_bitstring(marked, 3)
            << ">, compiled to Yorktown: " << compiled.circuit.num_gates()
            << " gates (" << compiled.swaps_inserted << " SWAPs inserted)\n\n";

  TextTable table({"noise scale", "P(success)", "norm. computation", "MSV"});
  for (double scale : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    const NoiseModel noise = dev.noise.scaled(scale);
    NoisyRunConfig config;
    config.num_trials = 4096;
    config.seed = 99;
    config.mode = ExecutionMode::kCachedReordered;
    const NoisyRunResult result = run_noisy(compiled.circuit, noise, config);

    std::uint64_t hits = 0;
    std::uint64_t total = 0;
    for (const auto& [outcome, count] : result.histogram) {
      total += count;
      if (outcome == marked) {
        hits += count;
      }
    }
    table.add_row({format_double(scale, 2),
                   format_double(static_cast<double>(hits) / static_cast<double>(total), 4),
                   format_double(result.normalized_computation, 4),
                   std::to_string(result.max_live_states)});
  }
  std::cout << table.render();
  std::cout << "\nNote how the success probability decays with noise while the\n"
               "optimization saves *less* at higher noise (fewer shared prefixes) —\n"
               "the scalability trend of the paper's Section V.B in miniature.\n";
  return 0;
}
