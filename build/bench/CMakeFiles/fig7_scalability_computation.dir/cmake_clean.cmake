file(REMOVE_RECURSE
  "CMakeFiles/fig7_scalability_computation.dir/fig7_scalability_computation.cpp.o"
  "CMakeFiles/fig7_scalability_computation.dir/fig7_scalability_computation.cpp.o.d"
  "fig7_scalability_computation"
  "fig7_scalability_computation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_scalability_computation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
