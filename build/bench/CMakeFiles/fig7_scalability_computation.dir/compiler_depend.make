# Empty compiler generated dependencies file for fig7_scalability_computation.
# This may be replaced when dependencies are built.
