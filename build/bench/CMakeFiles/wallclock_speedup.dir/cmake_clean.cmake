file(REMOVE_RECURSE
  "CMakeFiles/wallclock_speedup.dir/wallclock_speedup.cpp.o"
  "CMakeFiles/wallclock_speedup.dir/wallclock_speedup.cpp.o.d"
  "wallclock_speedup"
  "wallclock_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wallclock_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
