# Empty dependencies file for wallclock_speedup.
# This may be replaced when dependencies are built.
