# Empty dependencies file for fig6_realistic_msv.
# This may be replaced when dependencies are built.
