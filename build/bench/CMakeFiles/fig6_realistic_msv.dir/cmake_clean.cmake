file(REMOVE_RECURSE
  "CMakeFiles/fig6_realistic_msv.dir/fig6_realistic_msv.cpp.o"
  "CMakeFiles/fig6_realistic_msv.dir/fig6_realistic_msv.cpp.o.d"
  "fig6_realistic_msv"
  "fig6_realistic_msv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_realistic_msv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
