file(REMOVE_RECURSE
  "CMakeFiles/fig5_realistic_computation.dir/fig5_realistic_computation.cpp.o"
  "CMakeFiles/fig5_realistic_computation.dir/fig5_realistic_computation.cpp.o.d"
  "fig5_realistic_computation"
  "fig5_realistic_computation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_realistic_computation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
