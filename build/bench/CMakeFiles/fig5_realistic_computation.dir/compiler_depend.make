# Empty compiler generated dependencies file for fig5_realistic_computation.
# This may be replaced when dependencies are built.
