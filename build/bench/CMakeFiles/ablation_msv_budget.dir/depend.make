# Empty dependencies file for ablation_msv_budget.
# This may be replaced when dependencies are built.
