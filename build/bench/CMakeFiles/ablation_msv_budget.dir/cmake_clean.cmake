file(REMOVE_RECURSE
  "CMakeFiles/ablation_msv_budget.dir/ablation_msv_budget.cpp.o"
  "CMakeFiles/ablation_msv_budget.dir/ablation_msv_budget.cpp.o.d"
  "ablation_msv_budget"
  "ablation_msv_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_msv_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
