# Empty dependencies file for fig8_scalability_msv.
# This may be replaced when dependencies are built.
