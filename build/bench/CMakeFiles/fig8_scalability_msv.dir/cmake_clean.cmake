file(REMOVE_RECURSE
  "CMakeFiles/fig8_scalability_msv.dir/fig8_scalability_msv.cpp.o"
  "CMakeFiles/fig8_scalability_msv.dir/fig8_scalability_msv.cpp.o.d"
  "fig8_scalability_msv"
  "fig8_scalability_msv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_scalability_msv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
