file(REMOVE_RECURSE
  "CMakeFiles/extension_enumeration.dir/extension_enumeration.cpp.o"
  "CMakeFiles/extension_enumeration.dir/extension_enumeration.cpp.o.d"
  "extension_enumeration"
  "extension_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
