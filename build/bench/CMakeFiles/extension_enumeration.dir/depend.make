# Empty dependencies file for extension_enumeration.
# This may be replaced when dependencies are built.
