# Empty compiler generated dependencies file for exact_error_budget.
# This may be replaced when dependencies are built.
