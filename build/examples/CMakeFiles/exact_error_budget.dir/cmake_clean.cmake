file(REMOVE_RECURSE
  "CMakeFiles/exact_error_budget.dir/exact_error_budget.cpp.o"
  "CMakeFiles/exact_error_budget.dir/exact_error_budget.cpp.o.d"
  "exact_error_budget"
  "exact_error_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_error_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
