file(REMOVE_RECURSE
  "CMakeFiles/grover_under_noise.dir/grover_under_noise.cpp.o"
  "CMakeFiles/grover_under_noise.dir/grover_under_noise.cpp.o.d"
  "grover_under_noise"
  "grover_under_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grover_under_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
