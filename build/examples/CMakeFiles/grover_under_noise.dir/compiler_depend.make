# Empty compiler generated dependencies file for grover_under_noise.
# This may be replaced when dependencies are built.
