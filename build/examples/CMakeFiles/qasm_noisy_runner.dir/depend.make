# Empty dependencies file for qasm_noisy_runner.
# This may be replaced when dependencies are built.
