file(REMOVE_RECURSE
  "CMakeFiles/qasm_noisy_runner.dir/qasm_noisy_runner.cpp.o"
  "CMakeFiles/qasm_noisy_runner.dir/qasm_noisy_runner.cpp.o.d"
  "qasm_noisy_runner"
  "qasm_noisy_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qasm_noisy_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
