file(REMOVE_RECURSE
  "CMakeFiles/scalability_explorer.dir/scalability_explorer.cpp.o"
  "CMakeFiles/scalability_explorer.dir/scalability_explorer.cpp.o.d"
  "scalability_explorer"
  "scalability_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
