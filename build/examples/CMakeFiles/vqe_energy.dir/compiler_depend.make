# Empty compiler generated dependencies file for vqe_energy.
# This may be replaced when dependencies are built.
