file(REMOVE_RECURSE
  "CMakeFiles/vqe_energy.dir/vqe_energy.cpp.o"
  "CMakeFiles/vqe_energy.dir/vqe_energy.cpp.o.d"
  "vqe_energy"
  "vqe_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqe_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
