# Empty compiler generated dependencies file for rqsim.
# This may be replaced when dependencies are built.
