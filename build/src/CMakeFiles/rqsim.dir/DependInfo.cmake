
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_circuits/adder.cpp" "src/CMakeFiles/rqsim.dir/bench_circuits/adder.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/bench_circuits/adder.cpp.o.d"
  "/root/repo/src/bench_circuits/ansatz.cpp" "src/CMakeFiles/rqsim.dir/bench_circuits/ansatz.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/bench_circuits/ansatz.cpp.o.d"
  "/root/repo/src/bench_circuits/bv.cpp" "src/CMakeFiles/rqsim.dir/bench_circuits/bv.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/bench_circuits/bv.cpp.o.d"
  "/root/repo/src/bench_circuits/factory.cpp" "src/CMakeFiles/rqsim.dir/bench_circuits/factory.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/bench_circuits/factory.cpp.o.d"
  "/root/repo/src/bench_circuits/ghz.cpp" "src/CMakeFiles/rqsim.dir/bench_circuits/ghz.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/bench_circuits/ghz.cpp.o.d"
  "/root/repo/src/bench_circuits/grover.cpp" "src/CMakeFiles/rqsim.dir/bench_circuits/grover.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/bench_circuits/grover.cpp.o.d"
  "/root/repo/src/bench_circuits/mod15.cpp" "src/CMakeFiles/rqsim.dir/bench_circuits/mod15.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/bench_circuits/mod15.cpp.o.d"
  "/root/repo/src/bench_circuits/qft.cpp" "src/CMakeFiles/rqsim.dir/bench_circuits/qft.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/bench_circuits/qft.cpp.o.d"
  "/root/repo/src/bench_circuits/qv.cpp" "src/CMakeFiles/rqsim.dir/bench_circuits/qv.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/bench_circuits/qv.cpp.o.d"
  "/root/repo/src/bench_circuits/rb.cpp" "src/CMakeFiles/rqsim.dir/bench_circuits/rb.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/bench_circuits/rb.cpp.o.d"
  "/root/repo/src/bench_circuits/suite.cpp" "src/CMakeFiles/rqsim.dir/bench_circuits/suite.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/bench_circuits/suite.cpp.o.d"
  "/root/repo/src/bench_circuits/wstate.cpp" "src/CMakeFiles/rqsim.dir/bench_circuits/wstate.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/bench_circuits/wstate.cpp.o.d"
  "/root/repo/src/circuit/circuit.cpp" "src/CMakeFiles/rqsim.dir/circuit/circuit.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/circuit/circuit.cpp.o.d"
  "/root/repo/src/circuit/gate.cpp" "src/CMakeFiles/rqsim.dir/circuit/gate.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/circuit/gate.cpp.o.d"
  "/root/repo/src/circuit/layering.cpp" "src/CMakeFiles/rqsim.dir/circuit/layering.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/circuit/layering.cpp.o.d"
  "/root/repo/src/circuit/qasm.cpp" "src/CMakeFiles/rqsim.dir/circuit/qasm.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/circuit/qasm.cpp.o.d"
  "/root/repo/src/cli/cli.cpp" "src/CMakeFiles/rqsim.dir/cli/cli.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/cli/cli.cpp.o.d"
  "/root/repo/src/common/bits.cpp" "src/CMakeFiles/rqsim.dir/common/bits.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/common/bits.cpp.o.d"
  "/root/repo/src/common/error.cpp" "src/CMakeFiles/rqsim.dir/common/error.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/common/error.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/rqsim.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/CMakeFiles/rqsim.dir/common/strings.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/common/strings.cpp.o.d"
  "/root/repo/src/dm/density_matrix.cpp" "src/CMakeFiles/rqsim.dir/dm/density_matrix.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/dm/density_matrix.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/CMakeFiles/rqsim.dir/linalg/matrix.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/linalg/matrix.cpp.o.d"
  "/root/repo/src/linalg/pauli.cpp" "src/CMakeFiles/rqsim.dir/linalg/pauli.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/linalg/pauli.cpp.o.d"
  "/root/repo/src/mitigation/readout.cpp" "src/CMakeFiles/rqsim.dir/mitigation/readout.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/mitigation/readout.cpp.o.d"
  "/root/repo/src/noise/calibration.cpp" "src/CMakeFiles/rqsim.dir/noise/calibration.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/noise/calibration.cpp.o.d"
  "/root/repo/src/noise/devices.cpp" "src/CMakeFiles/rqsim.dir/noise/devices.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/noise/devices.cpp.o.d"
  "/root/repo/src/noise/noise_model.cpp" "src/CMakeFiles/rqsim.dir/noise/noise_model.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/noise/noise_model.cpp.o.d"
  "/root/repo/src/obs/pauli_string.cpp" "src/CMakeFiles/rqsim.dir/obs/pauli_string.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/obs/pauli_string.cpp.o.d"
  "/root/repo/src/report/csv.cpp" "src/CMakeFiles/rqsim.dir/report/csv.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/report/csv.cpp.o.d"
  "/root/repo/src/report/table.cpp" "src/CMakeFiles/rqsim.dir/report/table.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/report/table.cpp.o.d"
  "/root/repo/src/sched/backend.cpp" "src/CMakeFiles/rqsim.dir/sched/backend.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/sched/backend.cpp.o.d"
  "/root/repo/src/sched/baseline.cpp" "src/CMakeFiles/rqsim.dir/sched/baseline.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/sched/baseline.cpp.o.d"
  "/root/repo/src/sched/cached.cpp" "src/CMakeFiles/rqsim.dir/sched/cached.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/sched/cached.cpp.o.d"
  "/root/repo/src/sched/compact.cpp" "src/CMakeFiles/rqsim.dir/sched/compact.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/sched/compact.cpp.o.d"
  "/root/repo/src/sched/enumerate.cpp" "src/CMakeFiles/rqsim.dir/sched/enumerate.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/sched/enumerate.cpp.o.d"
  "/root/repo/src/sched/order.cpp" "src/CMakeFiles/rqsim.dir/sched/order.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/sched/order.cpp.o.d"
  "/root/repo/src/sched/parallel.cpp" "src/CMakeFiles/rqsim.dir/sched/parallel.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/sched/parallel.cpp.o.d"
  "/root/repo/src/sched/plan.cpp" "src/CMakeFiles/rqsim.dir/sched/plan.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/sched/plan.cpp.o.d"
  "/root/repo/src/sched/runner.cpp" "src/CMakeFiles/rqsim.dir/sched/runner.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/sched/runner.cpp.o.d"
  "/root/repo/src/sim/kernels.cpp" "src/CMakeFiles/rqsim.dir/sim/kernels.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/sim/kernels.cpp.o.d"
  "/root/repo/src/sim/measure.cpp" "src/CMakeFiles/rqsim.dir/sim/measure.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/sim/measure.cpp.o.d"
  "/root/repo/src/sim/reference.cpp" "src/CMakeFiles/rqsim.dir/sim/reference.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/sim/reference.cpp.o.d"
  "/root/repo/src/sim/sparse.cpp" "src/CMakeFiles/rqsim.dir/sim/sparse.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/sim/sparse.cpp.o.d"
  "/root/repo/src/sim/statevector.cpp" "src/CMakeFiles/rqsim.dir/sim/statevector.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/sim/statevector.cpp.o.d"
  "/root/repo/src/stab/tableau.cpp" "src/CMakeFiles/rqsim.dir/stab/tableau.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/stab/tableau.cpp.o.d"
  "/root/repo/src/transpile/coupling.cpp" "src/CMakeFiles/rqsim.dir/transpile/coupling.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/transpile/coupling.cpp.o.d"
  "/root/repo/src/transpile/decompose.cpp" "src/CMakeFiles/rqsim.dir/transpile/decompose.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/transpile/decompose.cpp.o.d"
  "/root/repo/src/transpile/optimize.cpp" "src/CMakeFiles/rqsim.dir/transpile/optimize.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/transpile/optimize.cpp.o.d"
  "/root/repo/src/transpile/router.cpp" "src/CMakeFiles/rqsim.dir/transpile/router.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/transpile/router.cpp.o.d"
  "/root/repo/src/transpile/transpiler.cpp" "src/CMakeFiles/rqsim.dir/transpile/transpiler.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/transpile/transpiler.cpp.o.d"
  "/root/repo/src/trial/generator.cpp" "src/CMakeFiles/rqsim.dir/trial/generator.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/trial/generator.cpp.o.d"
  "/root/repo/src/trial/stats.cpp" "src/CMakeFiles/rqsim.dir/trial/stats.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/trial/stats.cpp.o.d"
  "/root/repo/src/trial/trial.cpp" "src/CMakeFiles/rqsim.dir/trial/trial.cpp.o" "gcc" "src/CMakeFiles/rqsim.dir/trial/trial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
