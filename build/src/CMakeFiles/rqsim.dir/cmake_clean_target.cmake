file(REMOVE_RECURSE
  "librqsim.a"
)
