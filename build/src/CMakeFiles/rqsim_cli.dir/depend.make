# Empty dependencies file for rqsim_cli.
# This may be replaced when dependencies are built.
