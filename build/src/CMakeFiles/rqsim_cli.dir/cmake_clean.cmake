file(REMOVE_RECURSE
  "CMakeFiles/rqsim_cli.dir/cli/main.cpp.o"
  "CMakeFiles/rqsim_cli.dir/cli/main.cpp.o.d"
  "rqsim"
  "rqsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rqsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
