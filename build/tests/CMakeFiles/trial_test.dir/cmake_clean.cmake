file(REMOVE_RECURSE
  "CMakeFiles/trial_test.dir/trial_test.cpp.o"
  "CMakeFiles/trial_test.dir/trial_test.cpp.o.d"
  "trial_test"
  "trial_test.pdb"
  "trial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
