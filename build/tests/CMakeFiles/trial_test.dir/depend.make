# Empty dependencies file for trial_test.
# This may be replaced when dependencies are built.
