# Empty dependencies file for idle_noise_test.
# This may be replaced when dependencies are built.
