file(REMOVE_RECURSE
  "CMakeFiles/idle_noise_test.dir/idle_noise_test.cpp.o"
  "CMakeFiles/idle_noise_test.dir/idle_noise_test.cpp.o.d"
  "idle_noise_test"
  "idle_noise_test.pdb"
  "idle_noise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idle_noise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
