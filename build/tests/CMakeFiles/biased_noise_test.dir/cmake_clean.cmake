file(REMOVE_RECURSE
  "CMakeFiles/biased_noise_test.dir/biased_noise_test.cpp.o"
  "CMakeFiles/biased_noise_test.dir/biased_noise_test.cpp.o.d"
  "biased_noise_test"
  "biased_noise_test.pdb"
  "biased_noise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biased_noise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
