# Empty compiler generated dependencies file for biased_noise_test.
# This may be replaced when dependencies are built.
