# Empty dependencies file for capped_sched_test.
# This may be replaced when dependencies are built.
