file(REMOVE_RECURSE
  "CMakeFiles/capped_sched_test.dir/capped_sched_test.cpp.o"
  "CMakeFiles/capped_sched_test.dir/capped_sched_test.cpp.o.d"
  "capped_sched_test"
  "capped_sched_test.pdb"
  "capped_sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capped_sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
