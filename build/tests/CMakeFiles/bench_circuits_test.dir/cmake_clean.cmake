file(REMOVE_RECURSE
  "CMakeFiles/bench_circuits_test.dir/bench_circuits_test.cpp.o"
  "CMakeFiles/bench_circuits_test.dir/bench_circuits_test.cpp.o.d"
  "bench_circuits_test"
  "bench_circuits_test.pdb"
  "bench_circuits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_circuits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
