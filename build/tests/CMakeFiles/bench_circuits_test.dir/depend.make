# Empty dependencies file for bench_circuits_test.
# This may be replaced when dependencies are built.
