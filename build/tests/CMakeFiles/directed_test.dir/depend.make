# Empty dependencies file for directed_test.
# This may be replaced when dependencies are built.
