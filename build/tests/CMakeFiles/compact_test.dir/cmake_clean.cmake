file(REMOVE_RECURSE
  "CMakeFiles/compact_test.dir/compact_test.cpp.o"
  "CMakeFiles/compact_test.dir/compact_test.cpp.o.d"
  "compact_test"
  "compact_test.pdb"
  "compact_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
