#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

namespace rqsim {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer_name", "23"});
  const std::string out = table.render();
  // Header present, separator present, both rows present.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("longer_name"), std::string::npos);
  // Every line (except separator) has the same column start for "value".
  std::istringstream lines(out);
  std::string header;
  std::getline(lines, header);
  const std::size_t col = header.find("value");
  EXPECT_NE(col, std::string::npos);
}

TEST(TextTable, RejectsBadRowWidth) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only_one"}), Error);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(csv_escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(csv_escape("has\nnewline"), "\"has\nnewline\"");
}

TEST(Csv, RendersRows) {
  const std::string out = to_csv({"a", "b"}, {{"1", "2"}, {"x,y", "z"}});
  EXPECT_EQ(out, "a,b\n1,2\n\"x,y\",z\n");
}

TEST(Csv, RejectsWidthMismatch) {
  EXPECT_THROW(to_csv({"a", "b"}, {{"1"}}), Error);
}

TEST(Csv, WritesFile) {
  const std::string path = "/tmp/rqsim_csv_test.csv";
  write_csv_file(path, {"h1", "h2"}, {{"v1", "v2"}});
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  EXPECT_EQ(buffer.str(), "h1,h2\nv1,v2\n");
  std::remove(path.c_str());
}

TEST(Csv, WriteToBadPathThrows) {
  EXPECT_THROW(write_csv_file("/nonexistent_dir_xyz/file.csv", {"a"}, {}), Error);
}

}  // namespace
}  // namespace rqsim
