#include <gtest/gtest.h>

#include <cmath>

#include "bench_circuits/bv.hpp"
#include "bench_circuits/qft.hpp"
#include "circuit/circuit.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "dm/density_matrix.hpp"
#include "noise/noise_model.hpp"
#include "sched/runner.hpp"
#include "sim/kernels.hpp"
#include "sim/measure.hpp"
#include "transpile/decompose.hpp"

namespace rqsim {
namespace {

constexpr double kTol = 1e-10;

TEST(DensityMatrix, InitialStateIsPureZero) {
  DensityMatrix rho(3);
  EXPECT_NEAR(rho.trace(), 1.0, kTol);
  EXPECT_NEAR(rho.purity(), 1.0, kTol);
  EXPECT_NEAR(rho.at(0, 0).real(), 1.0, kTol);
  EXPECT_NEAR(std::abs(rho.at(1, 1)), 0.0, kTol);
}

TEST(DensityMatrix, UnitaryEvolutionMatchesStateVector) {
  // Pure-state evolution through the DM must equal |ψ⟩⟨ψ| from the
  // statevector simulator.
  Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.u3(2, 0.4, 1.1, -0.3);
  c.cp(1, 2, 0.8);

  DensityMatrix rho(3);
  StateVector psi(3);
  for (const Gate& g : c.gates()) {
    rho.apply_gate(g);
    apply_gate(psi, g);
  }
  EXPECT_NEAR(rho.trace(), 1.0, 1e-9);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-9);
  for (std::uint64_t r = 0; r < 8; ++r) {
    for (std::uint64_t col = 0; col < 8; ++col) {
      const cplx expected = psi[r] * std::conj(psi[col]);
      EXPECT_LT(std::abs(rho.at(r, col) - expected), 1e-9);
    }
  }
}

TEST(DensityMatrix, DepolarizingReducesPurity) {
  DensityMatrix rho(2);
  rho.apply_gate(Gate::make1(GateKind::H, 0));
  rho.apply_depolarizing1(0, 0.2);
  EXPECT_NEAR(rho.trace(), 1.0, kTol);
  EXPECT_LT(rho.purity(), 1.0 - 1e-3);
}

TEST(DensityMatrix, FullDepolarizingGivesMaximallyMixedQubit) {
  // p = 3/4 is the fully depolarizing point of the symmetric channel.
  DensityMatrix rho(1);
  rho.apply_gate(Gate::make1(GateKind::H, 0));
  rho.apply_depolarizing1(0, 0.75);
  EXPECT_NEAR(rho.at(0, 0).real(), 0.5, kTol);
  EXPECT_NEAR(rho.at(1, 1).real(), 0.5, kTol);
  EXPECT_NEAR(std::abs(rho.at(0, 1)), 0.0, kTol);
  EXPECT_NEAR(rho.purity(), 0.5, kTol);
}

TEST(DensityMatrix, TwoQubitDepolarizingPreservesTrace) {
  DensityMatrix rho(3);
  rho.apply_gate(Gate::make1(GateKind::H, 0));
  rho.apply_gate(Gate::make2(GateKind::CX, 0, 1));
  rho.apply_depolarizing2(0, 1, 0.3);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-9);
  EXPECT_LT(rho.purity(), 1.0);
}

TEST(DensityMatrix, MeasurementProbabilitiesMatchStateVector) {
  Circuit c(3);
  c.h(0);
  c.cx(0, 2);
  c.t(2);
  DensityMatrix rho(3);
  StateVector psi(3);
  for (const Gate& g : c.gates()) {
    rho.apply_gate(g);
    apply_gate(psi, g);
  }
  const auto dm_probs = rho.measurement_probabilities({0, 2});
  const auto sv_probs = measurement_probabilities(psi, {0, 2});
  ASSERT_EQ(dm_probs.size(), sv_probs.size());
  for (std::size_t i = 0; i < dm_probs.size(); ++i) {
    EXPECT_NEAR(dm_probs[i], sv_probs[i], 1e-9);
  }
}

TEST(DensityMatrix, Validation) {
  EXPECT_THROW(DensityMatrix(0), Error);
  EXPECT_THROW(DensityMatrix(13), Error);
  DensityMatrix rho(2);
  EXPECT_THROW(rho.apply_depolarizing1(5, 0.1), Error);
  EXPECT_THROW(rho.apply_depolarizing1(0, 1.5), Error);
  EXPECT_THROW(rho.apply_depolarizing2(0, 0, 0.1), Error);
  Circuit c(3);
  c.ccx(0, 1, 2);
  DensityMatrix rho3(3);
  EXPECT_THROW(rho3.apply_gate(c.gates()[0]), Error);
}

TEST(MeasurementFlips, SingleBitChannel) {
  const std::vector<double> probs = {0.8, 0.2};
  const auto flipped = apply_measurement_flips(probs, {0.1});
  EXPECT_NEAR(flipped[0], 0.8 * 0.9 + 0.2 * 0.1, kTol);
  EXPECT_NEAR(flipped[1], 0.2 * 0.9 + 0.8 * 0.1, kTol);
}

TEST(MeasurementFlips, PreservesNormalization) {
  const std::vector<double> probs = {0.1, 0.2, 0.3, 0.4};
  const auto flipped = apply_measurement_flips(probs, {0.25, 0.4});
  double total = 0.0;
  for (double p : flipped) {
    total += p;
  }
  EXPECT_NEAR(total, 1.0, kTol);
}

// ---------------------------------------------------------------------------
// The headline validation: the Monte Carlo pipeline (trial generation,
// reorder, cached execution, sampling, measurement flips) must converge to
// the exact density-matrix channel evolution.

struct ConvergenceCase {
  const char* name;
  unsigned qubits;
  double single_rate;
  double two_rate;
  double meas_rate;
};

class MonteCarloConvergence : public ::testing::TestWithParam<ConvergenceCase> {};

TEST_P(MonteCarloConvergence, CachedMonteCarloMatchesExactChannel) {
  const ConvergenceCase param = GetParam();
  const Circuit c = decompose_to_cx_basis(make_qft(param.qubits));
  const NoiseModel noise = NoiseModel::uniform(param.qubits, param.single_rate,
                                               param.two_rate, param.meas_rate);

  const std::vector<double> exact = exact_noisy_distribution(c, noise);

  NoisyRunConfig config;
  config.num_trials = 200000;
  config.seed = 7;
  config.mode = ExecutionMode::kCachedReordered;
  const NoisyRunResult mc = run_noisy(c, noise, config);

  // Total-variation distance between the sampled histogram and the exact
  // distribution. Statistical floor for 2e5 samples over <= 16 outcomes is
  // well below 0.01.
  double tvd = 0.0;
  for (std::uint64_t outcome = 0; outcome < exact.size(); ++outcome) {
    const auto it = mc.histogram.find(outcome);
    const double sampled =
        it == mc.histogram.end()
            ? 0.0
            : static_cast<double>(it->second) / static_cast<double>(config.num_trials);
    tvd += std::abs(sampled - exact[outcome]);
  }
  tvd /= 2.0;
  EXPECT_LT(tvd, 0.01) << "TVD between Monte Carlo and exact channel";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MonteCarloConvergence,
    ::testing::Values(ConvergenceCase{"gates_only", 3, 0.02, 0.08, 0.0},
                      ConvergenceCase{"with_meas_errors", 3, 0.01, 0.05, 0.08},
                      ConvergenceCase{"strong_noise", 2, 0.10, 0.30, 0.10},
                      ConvergenceCase{"four_qubits", 4, 0.01, 0.04, 0.03}),
    [](const ::testing::TestParamInfo<ConvergenceCase>& info) {
      return info.param.name;
    });

TEST(MonteCarloConvergence, BvOnBiasedPerQubitModel) {
  // Per-qubit rates exercise the non-uniform code paths of both the DM
  // channel evolution and the trial generator.
  const Circuit c = decompose_to_cx_basis(make_bv(3, 0b110));
  NoiseModel noise = NoiseModel::per_qubit({0.01, 0.03, 0.002, 0.05},
                                           {0.02, 0.0, 0.1, 0.01});
  noise.set_two_qubit_rate(0, 3, 0.06);
  noise.set_two_qubit_rate(1, 3, 0.12);
  noise.set_two_qubit_rate(2, 3, 0.02);

  const std::vector<double> exact = exact_noisy_distribution(c, noise);
  NoisyRunConfig config;
  config.num_trials = 200000;
  config.seed = 13;
  const NoisyRunResult mc = run_noisy(c, noise, config);

  double tvd = 0.0;
  for (std::uint64_t outcome = 0; outcome < exact.size(); ++outcome) {
    const auto it = mc.histogram.find(outcome);
    const double sampled =
        it == mc.histogram.end()
            ? 0.0
            : static_cast<double>(it->second) / static_cast<double>(config.num_trials);
    tvd += std::abs(sampled - exact[outcome]);
  }
  EXPECT_LT(tvd / 2.0, 0.01);
}

}  // namespace
}  // namespace rqsim
