#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "bench_circuits/qft.hpp"
#include "common/rng.hpp"
#include "noise/noise_model.hpp"
#include "sched/backend.hpp"
#include "sched/order.hpp"
#include "sched/plan.hpp"
#include "sim/buffer_pool.hpp"
#include "sim/kernels.hpp"
#include "sim/statevector.hpp"
#include "transpile/decompose.hpp"
#include "trial/generator.hpp"

namespace rqsim {
namespace {

StateVector random_state(unsigned n, std::uint64_t seed) {
  Rng rng(seed);
  StateVector s(n);
  for (std::size_t i = 0; i < s.dim(); ++i) {
    s[i] = cplx(rng.normal(), rng.normal());
  }
  return s;
}

TEST(StateBufferPool, AcquireCopyIsIndependentCopy) {
  StateBufferPool pool;
  const StateVector src = random_state(4, 1);
  StateVector copy = pool.acquire_copy(src);
  EXPECT_TRUE(copy.bitwise_equal(src));
  EXPECT_EQ(pool.alloc_count(), 1u);
  EXPECT_EQ(pool.reuse_count(), 0u);

  apply_x(copy, 0);
  EXPECT_FALSE(copy.bitwise_equal(src));
}

TEST(StateBufferPool, ReleaseThenAcquireReusesTheBuffer) {
  StateBufferPool pool;
  const StateVector src = random_state(4, 2);
  StateVector copy = pool.acquire_copy(src);
  pool.release(std::move(copy));
  EXPECT_EQ(pool.pooled(), 1u);

  StateVector again = pool.acquire_copy(src);
  EXPECT_EQ(pool.pooled(), 0u);
  EXPECT_EQ(pool.reuse_count(), 1u);
  EXPECT_EQ(pool.alloc_count(), 1u);
  EXPECT_TRUE(again.bitwise_equal(src));
}

TEST(StateBufferPool, ReusedBufferAdaptsToDifferentRegisterSize) {
  StateBufferPool pool;
  const StateVector small = random_state(3, 3);
  const StateVector large = random_state(6, 4);

  pool.release(pool.acquire_copy(small));
  StateVector grown = pool.acquire_copy(large);
  EXPECT_EQ(grown.num_qubits(), 6u);
  EXPECT_TRUE(grown.bitwise_equal(large));
  EXPECT_EQ(pool.reuse_count(), 1u);

  pool.release(std::move(grown));
  StateVector shrunk = pool.acquire_copy(small);
  EXPECT_EQ(shrunk.num_qubits(), 3u);
  EXPECT_TRUE(shrunk.bitwise_equal(small));
}

TEST(StateBufferPool, FreeListIsBoundedByMaxPooled) {
  StateBufferPool pool(/*max_pooled=*/2);
  const StateVector src = random_state(3, 5);
  for (int i = 0; i < 5; ++i) {
    pool.release(pool.acquire_copy(src));
    StateVector a = pool.acquire_copy(src);
    StateVector b = pool.acquire_copy(src);
    StateVector c = pool.acquire_copy(src);
    pool.release(std::move(a));
    pool.release(std::move(b));
    pool.release(std::move(c));
    EXPECT_LE(pool.pooled(), 2u);
  }
}

TEST(StateBufferPool, ClearDropsPooledBuffers) {
  StateBufferPool pool;
  const StateVector src = random_state(3, 6);
  pool.release(pool.acquire_copy(src));
  EXPECT_EQ(pool.pooled(), 1u);
  pool.clear();
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(CowState, ForkIsFreeUntilFirstWrite) {
  StateBufferPool pool;
  const StateVector golden = random_state(4, 21);
  CowState parent = CowState::adopt(pool.acquire_copy(golden));
  EXPECT_TRUE(parent.unique());

  CowState child = parent.fork();
  EXPECT_FALSE(parent.unique());
  EXPECT_FALSE(child.unique());
  // Forking is a refcount bump: both handles read the same buffer and the
  // pool saw no new copy.
  EXPECT_EQ(&parent.read(), &child.read());
  EXPECT_EQ(pool.alloc_count() + pool.reuse_count(), 1u);

  // First write through the child materializes a private copy; the shared
  // buffer the parent still reads is untouched.
  bool copied = false;
  StateVector& writable = child.mutate(pool, 0, &copied);
  EXPECT_TRUE(copied);
  apply_x(writable, 0);
  EXPECT_TRUE(parent.read().bitwise_equal(golden));
  EXPECT_FALSE(child.read().bitwise_equal(golden));
  EXPECT_TRUE(parent.unique());
  EXPECT_TRUE(child.unique());

  // Sole owner writes in place — no further copies.
  bool copied_again = true;
  child.mutate(pool, 0, &copied_again);
  EXPECT_FALSE(copied_again);

  EXPECT_TRUE(child.drop(pool, 0));
  EXPECT_TRUE(parent.drop(pool, 0));
  EXPECT_EQ(pool.pooled(), 2u);
}

// Concurrent CoW stress: every thread owns a fork of one root buffer and
// repeatedly forks/writes/drops its own lineage. Writers must always land
// in private copies (the root buffer is bitwise-frozen for the whole run),
// refcounting must recycle every materialized buffer, and the copy /
// in-place split is exactly deterministic even under contention.
TEST(CowState, ConcurrentForkMutateDropStress) {
  constexpr std::size_t kThreads = 8;
  constexpr int kRounds = 100;
  StateBufferPool pool(/*max_pooled=*/64, /*num_shards=*/kThreads);
  const StateVector golden = random_state(6, 42);
  CowState root = CowState::adopt(pool.acquire_copy(golden));

  std::vector<CowState> handles;
  handles.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    handles.push_back(root.fork());
  }

  std::atomic<std::uint64_t> copies{0};
  std::atomic<std::uint64_t> inplace{0};
  std::atomic<std::uint64_t> corruptions{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      CowState mine = std::move(handles[t]);
      for (int round = 0; round < kRounds; ++round) {
        // Shared with root and every other thread: the write must copy.
        CowState child = mine.fork();
        bool copied = false;
        StateVector& v = child.mutate(pool, t, &copied);
        v[0] = cplx(static_cast<double>(t), static_cast<double>(round));
        if (copied) {
          copies.fetch_add(1, std::memory_order_relaxed);
        }
        if (!mine.read().bitwise_equal(golden)) {
          corruptions.fetch_add(1, std::memory_order_relaxed);
        }
        // Fork the private copy and write through the fork: one more
        // materialization, after which the child is sole owner again and
        // its next write is in place.
        CowState grand = child.fork();
        bool copied_grand = false;
        grand.mutate(pool, t, &copied_grand)[1] = cplx(1.0, 0.0);
        if (copied_grand) {
          copies.fetch_add(1, std::memory_order_relaxed);
        }
        grand.drop(pool, t);
        bool copied_inplace = true;
        child.mutate(pool, t, &copied_inplace)[2] = cplx(2.0, 0.0);
        if (!copied_inplace) {
          inplace.fetch_add(1, std::memory_order_relaxed);
        }
        child.drop(pool, t);
      }
      mine.drop(pool, t);
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }

  EXPECT_EQ(corruptions.load(), 0u);
  EXPECT_EQ(copies.load(), static_cast<std::uint64_t>(kThreads) * kRounds * 2);
  EXPECT_EQ(inplace.load(), static_cast<std::uint64_t>(kThreads) * kRounds);
  EXPECT_TRUE(root.unique());
  EXPECT_TRUE(root.read().bitwise_equal(golden));
  EXPECT_TRUE(root.drop(pool, 0));
}

// N handles of one buffer, no anchored owner, all mutating concurrently:
// exactly one mutate must end up owning the original buffer — either it
// observed itself unique and wrote in place, or its detach was the last
// reference and recycled the buffer (the released_peer race). Any other
// total means a leak or a double release.
TEST(CowState, ConcurrentLastOwnerRace) {
  constexpr std::size_t kThreads = 8;
  StateBufferPool pool(/*max_pooled=*/64, /*num_shards=*/kThreads);
  const StateVector golden = random_state(5, 43);
  for (int round = 0; round < 50; ++round) {
    CowState seed = CowState::adopt(pool.acquire_copy(golden));
    std::vector<CowState> group;
    group.reserve(kThreads);
    for (std::size_t t = 0; t + 1 < kThreads; ++t) {
      group.push_back(seed.fork());
    }
    group.push_back(std::move(seed));

    std::atomic<int> last_owner_events{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        bool copied = false;
        bool released_peer = false;
        StateVector& v = group[t].mutate(pool, t, &copied, &released_peer);
        v[0] = cplx(static_cast<double>(t), 0.0);
        if (!copied || released_peer) {
          last_owner_events.fetch_add(1, std::memory_order_relaxed);
        }
        group[t].drop(pool, t);
      });
    }
    for (std::thread& th : threads) {
      th.join();
    }
    EXPECT_EQ(last_owner_events.load(), 1);
  }
}

// The cached scheduler forks a checkpoint at every branch point and drops it
// when its subtree of trials finishes; with enough trials the drop/fork
// cycle must start recycling buffers instead of allocating.
TEST(StateBufferPool, CachedRunRecyclesCheckpointBuffers) {
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const CircuitContext ctx(c);
  const NoiseModel noise = NoiseModel::uniform(4, 0.02, 0.1, 0.01);
  Rng rng(11);
  auto trials = generate_trials(c, ctx.layering, noise, 400, rng);
  reorder_trials(trials);

  Rng sample_rng(12);
  SvBackend sv(ctx, sample_rng);
  schedule_trials(ctx, trials, sv);

  const StateBufferPool& pool = sv.buffer_pool();
  EXPECT_GT(pool.reuse_count(), 0u);
  EXPECT_GT(pool.reuse_count(), pool.alloc_count());
}

}  // namespace
}  // namespace rqsim
