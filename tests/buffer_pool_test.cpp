#include <gtest/gtest.h>

#include "bench_circuits/qft.hpp"
#include "common/rng.hpp"
#include "noise/noise_model.hpp"
#include "sched/backend.hpp"
#include "sched/order.hpp"
#include "sched/plan.hpp"
#include "sim/buffer_pool.hpp"
#include "sim/kernels.hpp"
#include "sim/statevector.hpp"
#include "transpile/decompose.hpp"
#include "trial/generator.hpp"

namespace rqsim {
namespace {

StateVector random_state(unsigned n, std::uint64_t seed) {
  Rng rng(seed);
  StateVector s(n);
  for (std::size_t i = 0; i < s.dim(); ++i) {
    s[i] = cplx(rng.normal(), rng.normal());
  }
  return s;
}

TEST(StateBufferPool, AcquireCopyIsIndependentCopy) {
  StateBufferPool pool;
  const StateVector src = random_state(4, 1);
  StateVector copy = pool.acquire_copy(src);
  EXPECT_TRUE(copy.bitwise_equal(src));
  EXPECT_EQ(pool.alloc_count(), 1u);
  EXPECT_EQ(pool.reuse_count(), 0u);

  apply_x(copy, 0);
  EXPECT_FALSE(copy.bitwise_equal(src));
}

TEST(StateBufferPool, ReleaseThenAcquireReusesTheBuffer) {
  StateBufferPool pool;
  const StateVector src = random_state(4, 2);
  StateVector copy = pool.acquire_copy(src);
  pool.release(std::move(copy));
  EXPECT_EQ(pool.pooled(), 1u);

  StateVector again = pool.acquire_copy(src);
  EXPECT_EQ(pool.pooled(), 0u);
  EXPECT_EQ(pool.reuse_count(), 1u);
  EXPECT_EQ(pool.alloc_count(), 1u);
  EXPECT_TRUE(again.bitwise_equal(src));
}

TEST(StateBufferPool, ReusedBufferAdaptsToDifferentRegisterSize) {
  StateBufferPool pool;
  const StateVector small = random_state(3, 3);
  const StateVector large = random_state(6, 4);

  pool.release(pool.acquire_copy(small));
  StateVector grown = pool.acquire_copy(large);
  EXPECT_EQ(grown.num_qubits(), 6u);
  EXPECT_TRUE(grown.bitwise_equal(large));
  EXPECT_EQ(pool.reuse_count(), 1u);

  pool.release(std::move(grown));
  StateVector shrunk = pool.acquire_copy(small);
  EXPECT_EQ(shrunk.num_qubits(), 3u);
  EXPECT_TRUE(shrunk.bitwise_equal(small));
}

TEST(StateBufferPool, FreeListIsBoundedByMaxPooled) {
  StateBufferPool pool(/*max_pooled=*/2);
  const StateVector src = random_state(3, 5);
  for (int i = 0; i < 5; ++i) {
    pool.release(pool.acquire_copy(src));
    StateVector a = pool.acquire_copy(src);
    StateVector b = pool.acquire_copy(src);
    StateVector c = pool.acquire_copy(src);
    pool.release(std::move(a));
    pool.release(std::move(b));
    pool.release(std::move(c));
    EXPECT_LE(pool.pooled(), 2u);
  }
}

TEST(StateBufferPool, ClearDropsPooledBuffers) {
  StateBufferPool pool;
  const StateVector src = random_state(3, 6);
  pool.release(pool.acquire_copy(src));
  EXPECT_EQ(pool.pooled(), 1u);
  pool.clear();
  EXPECT_EQ(pool.pooled(), 0u);
}

// The cached scheduler forks a checkpoint at every branch point and drops it
// when its subtree of trials finishes; with enough trials the drop/fork
// cycle must start recycling buffers instead of allocating.
TEST(StateBufferPool, CachedRunRecyclesCheckpointBuffers) {
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const CircuitContext ctx(c);
  const NoiseModel noise = NoiseModel::uniform(4, 0.02, 0.1, 0.01);
  Rng rng(11);
  auto trials = generate_trials(c, ctx.layering, noise, 400, rng);
  reorder_trials(trials);

  Rng sample_rng(12);
  SvBackend sv(ctx, sample_rng);
  schedule_trials(ctx, trials, sv);

  const StateBufferPool& pool = sv.buffer_pool();
  EXPECT_GT(pool.reuse_count(), 0u);
  EXPECT_GT(pool.reuse_count(), pool.alloc_count());
}

}  // namespace
}  // namespace rqsim
