// ThreadSanitizer smoke test for the work-stealing prefix-tree executor
// (plain main, no gtest).
//
// The executor's risk surface is exactly the cross-thread machinery the
// sequential scheduler doesn't have: per-worker deques with steal-from-
// front, the banker token pool, the sharded buffer pool's global overflow
// list, the idle condvar, and concurrent sink writes into per-trial slots.
// This binary hammers all of them — repeated runs at several thread counts
// and MSV budgets, with and without fusion — and cross-checks that every
// run stays bitwise identical to the first (a race that perturbs results
// shows up here even if TSan's interleaving misses it).
//
// In the tier-1 flow the tree executor sources are recompiled into this
// target with -fsanitize=thread (tests/CMakeLists.txt); under the `tsan`
// preset the whole tree is instrumented.
#include <cstdio>

#include "bench_circuits/qft.hpp"
#include "noise/noise_model.hpp"
#include "sched/parallel.hpp"
#include "transpile/decompose.hpp"

namespace {

int failures = 0;

#define SMOKE_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond);  \
      ++failures;                                                           \
    }                                                                       \
  } while (0)

void stress_tree_executor() {
  const rqsim::Circuit circuit = rqsim::decompose_to_cx_basis(rqsim::make_qft(5));
  const rqsim::NoiseModel noise = rqsim::NoiseModel::uniform(5, 0.02, 0.08, 0.02);

  rqsim::ParallelRunConfig config;
  config.num_trials = 2000;
  config.num_threads = 1;
  config.seed = 7;
  const rqsim::NoisyRunResult reference =
      rqsim::run_noisy_parallel(circuit, noise, config);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    for (const std::size_t budget : {std::size_t{0}, std::size_t{4}}) {
      for (int rep = 0; rep < 3; ++rep) {
        rqsim::ParallelRunConfig run = config;
        run.num_threads = threads;
        run.max_states = budget;
        const rqsim::NoisyRunResult result =
            rqsim::run_noisy_parallel(circuit, noise, run);
        SMOKE_CHECK(result.histogram == reference.histogram);
        SMOKE_CHECK(budget != 0 || result.ops == reference.ops);
        SMOKE_CHECK(result.redundant_prefix_ops == 0);
      }
    }
  }

  // Fused advances: one FusionCache per worker, lazily memoizing — the
  // caches must never be shared across threads.
  rqsim::ParallelRunConfig fused = config;
  fused.num_threads = 8;
  fused.fuse_gates = true;
  const rqsim::NoisyRunResult fused_serial = [&] {
    rqsim::ParallelRunConfig one = fused;
    one.num_threads = 1;
    return rqsim::run_noisy_parallel(circuit, noise, one);
  }();
  for (int rep = 0; rep < 2; ++rep) {
    const rqsim::NoisyRunResult result =
        rqsim::run_noisy_parallel(circuit, noise, fused);
    SMOKE_CHECK(result.histogram == fused_serial.histogram);
    SMOKE_CHECK(result.ops == fused_serial.ops);
  }
}

}  // namespace

int main() {
  stress_tree_executor();
  if (failures == 0) {
    std::printf("tree_tsan_smoke: all checks passed\n");
    return 0;
  }
  std::fprintf(stderr, "tree_tsan_smoke: %d check(s) failed\n", failures);
  return 1;
}
