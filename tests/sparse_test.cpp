#include <gtest/gtest.h>

#include <cmath>

#include "bench_circuits/adder.hpp"
#include "bench_circuits/bv.hpp"
#include "bench_circuits/ghz.hpp"
#include "bench_circuits/qft.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/kernels.hpp"
#include "sim/sparse.hpp"
#include "transpile/decompose.hpp"

namespace rqsim {
namespace {

TEST(Sparse, InitialState) {
  SparseStateVector s(10);
  EXPECT_EQ(s.nnz(), 1u);
  EXPECT_NEAR(s.probability(0), 1.0, 1e-12);
  EXPECT_NEAR(s.norm_squared(), 1.0, 1e-12);
}

TEST(Sparse, GhzStaysSparse) {
  const Circuit c = make_ghz(20);
  const SparseStateVector s = sparse_simulate(c);
  EXPECT_EQ(s.nnz(), 2u);  // only |0..0> and |1..1>
  EXPECT_NEAR(s.probability(0), 0.5, 1e-12);
  EXPECT_NEAR(s.probability((std::uint64_t{1} << 20) - 1), 0.5, 1e-12);
}

TEST(Sparse, MatchesDenseOnRandomCircuits) {
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const unsigned n = 3 + static_cast<unsigned>(rng.uniform_int(3));
    Circuit c(n);
    for (int i = 0; i < 15; ++i) {
      const auto q = static_cast<qubit_t>(rng.uniform_int(n));
      auto r = static_cast<qubit_t>(rng.uniform_int(n - 1));
      if (r >= q) {
        ++r;
      }
      switch (rng.uniform_int(5)) {
        case 0:
          c.h(q);
          break;
        case 1:
          c.u3(q, rng.uniform(0, kPi), rng.uniform(0, kPi), rng.uniform(0, kPi));
          break;
        case 2:
          c.cx(q, r);
          break;
        case 3:
          c.cp(q, r, rng.uniform(0, kPi));
          break;
        default:
          c.swap(q, r);
          break;
      }
    }
    const SparseStateVector sparse = sparse_simulate(c);
    StateVector dense(n);
    for (const Gate& g : c.gates()) {
      apply_gate(dense, g);
    }
    EXPECT_LT(sparse.to_dense().max_abs_diff(dense), 1e-10) << "trial " << trial;
  }
}

TEST(Sparse, FortyQubitGhzAndArithmetic) {
  // Workloads that genuinely stay sparse run far beyond the dense 30-qubit
  // limit: a 40-qubit GHZ chain (nnz = 2 throughout) followed by phase and
  // permutation gates.
  SparseStateVector s(40);
  s.apply_gate(Gate::make1(GateKind::H, 0));
  for (qubit_t q = 0; q + 1 < 40; ++q) {
    s.apply_cx(q, q + 1);
    EXPECT_LE(s.nnz(), 2u);
  }
  s.apply_phase(39, cplx(0.0, 1.0));
  s.apply_swap(0, 39);
  s.apply_ccx(0, 1, 20);
  EXPECT_EQ(s.nnz(), 2u);
  EXPECT_NEAR(s.norm_squared(), 1.0, 1e-12);
  EXPECT_NEAR(s.probability(0), 0.5, 1e-12);
  // The CCX flipped qubit 20 on the all-ones branch: outcome bits are
  // (q39, q20, q0) = (1, 0, 1) there.
  const auto probs = s.measurement_probabilities({0, 20, 39});
  EXPECT_NEAR(probs[0b000], 0.5, 1e-12);
  EXPECT_NEAR(probs[0b101], 0.5, 1e-12);
}

TEST(Sparse, AdderIsClassicallySparse) {
  // A reversible-arithmetic circuit on computational-basis input keeps
  // exactly one nonzero amplitude the whole way.
  const Circuit c = make_cuccaro_adder(5, 13, 24);
  SparseStateVector s(c.num_qubits());
  for (const Gate& g : c.gates()) {
    s.apply_gate(g);
    EXPECT_EQ(s.nnz(), 1u);
  }
  const auto probs = s.measurement_probabilities(c.measured_qubits());
  EXPECT_NEAR(probs[13 + 24], 1.0, 1e-12);
}

TEST(Sparse, QftDensifies) {
  // The flip side: QFT of a basis state is maximally dense — the sparse
  // simulator must still be correct, just not small.
  const Circuit c = make_qft(6);
  const SparseStateVector s = sparse_simulate(c);
  EXPECT_EQ(s.nnz(), 64u);
  StateVector dense(6);
  for (const Gate& g : c.gates()) {
    apply_gate(dense, g);
  }
  EXPECT_LT(s.to_dense().max_abs_diff(dense), 1e-10);
}

TEST(Sparse, PruningKeepsNormHonest) {
  SparseStateVector s(4);
  s.set_prune_threshold(1e-10);
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    s.apply_mat2(random_unitary2(rng), static_cast<qubit_t>(rng.uniform_int(4)));
  }
  EXPECT_NEAR(s.norm_squared(), 1.0, 1e-7);
  EXPECT_THROW(s.set_prune_threshold(0.5), Error);
}

TEST(Sparse, MeasurementMarginals) {
  const Circuit c = make_ghz(8);
  const SparseStateVector s = sparse_simulate(c);
  const auto probs = s.measurement_probabilities({0, 7});
  EXPECT_NEAR(probs[0b00], 0.5, 1e-12);
  EXPECT_NEAR(probs[0b11], 0.5, 1e-12);
  EXPECT_NEAR(probs[0b01], 0.0, 1e-12);
}

TEST(Sparse, Validation) {
  EXPECT_THROW(SparseStateVector(0), Error);
  EXPECT_THROW(SparseStateVector(64), Error);
  SparseStateVector s(40);
  EXPECT_THROW(s.to_dense(), Error);
  EXPECT_THROW(s.apply_cx(0, 0), Error);
}

}  // namespace
}  // namespace rqsim
