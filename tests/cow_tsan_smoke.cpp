// ThreadSanitizer smoke test for the copy-on-write checkpoint handle
// (plain main, no gtest).
//
// CowState's risk surface is the shared_ptr-style refcount protocol plus
// the sharded buffer pool underneath it: relaxed fork increments, the
// acquire unique() fast path, the acq_rel detach in mutate()/drop(), and
// the rare last-peer race where a mutate's detach must recycle the old
// buffer exactly once. This binary hammers those paths directly from many
// threads — fork storms over one shared root, unanchored handle groups
// racing mutate against drop — and cross-checks the invariants a race
// would break even when TSan's interleaving misses it: the shared buffer
// is bitwise-frozen, the copy / in-place split is deterministic, and every
// group round produces exactly one last-owner event.
//
// In the tier-1 flow sim/buffer_pool.cpp is recompiled into this target
// with -fsanitize=thread (tests/CMakeLists.txt); under the `tsan` preset
// the whole tree is instrumented.
#include <atomic>
#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/buffer_pool.hpp"
#include "sim/statevector.hpp"

namespace {

int failures = 0;

#define SMOKE_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond);  \
      ++failures;                                                           \
    }                                                                       \
  } while (0)

rqsim::StateVector random_state(unsigned n, std::uint64_t seed) {
  rqsim::Rng rng(seed);
  rqsim::StateVector s(n);
  for (std::size_t i = 0; i < s.dim(); ++i) {
    s[i] = rqsim::cplx(rng.normal(), rng.normal());
  }
  return s;
}

// Every thread forks/writes/drops lineages of one shared root buffer.
// Writers must always detach into private copies: the root stays bitwise
// identical to `golden` under maximal fork contention.
void stress_shared_root() {
  constexpr std::size_t kThreads = 8;
  constexpr int kRounds = 300;
  rqsim::StateBufferPool pool(/*max_pooled=*/64, /*num_shards=*/kThreads);
  const rqsim::StateVector golden = random_state(6, 42);
  rqsim::CowState root = rqsim::CowState::adopt(pool.acquire_copy(golden));

  std::vector<rqsim::CowState> handles;
  handles.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    handles.push_back(root.fork());
  }

  std::atomic<std::uint64_t> copies{0};
  std::atomic<std::uint64_t> corruptions{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      rqsim::CowState mine = std::move(handles[t]);
      for (int round = 0; round < kRounds; ++round) {
        rqsim::CowState child = mine.fork();
        bool copied = false;
        rqsim::StateVector& v = child.mutate(pool, t, &copied);
        v[0] = rqsim::cplx(static_cast<double>(t), static_cast<double>(round));
        if (copied) {
          copies.fetch_add(1, std::memory_order_relaxed);
        }
        if (!mine.read().bitwise_equal(golden)) {
          corruptions.fetch_add(1, std::memory_order_relaxed);
        }
        child.drop(pool, t);
      }
      mine.drop(pool, t);
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }

  SMOKE_CHECK(corruptions.load() == 0);
  // Shared with root throughout, so every write materialized a copy.
  SMOKE_CHECK(copies.load() ==
              static_cast<std::uint64_t>(kThreads) * kRounds);
  SMOKE_CHECK(root.unique());
  SMOKE_CHECK(root.read().bitwise_equal(golden));
  SMOKE_CHECK(root.drop(pool, 0));
}

// Unanchored handle groups: all members mutate concurrently, then drop.
// Exactly one mutate per group ends up owning the original buffer — in
// place because it saw itself unique, or via the released_peer race where
// its detach was the buffer's last reference. Anything else is a leak or
// a double release.
void stress_last_owner_race() {
  constexpr std::size_t kThreads = 8;
  constexpr int kRounds = 200;
  rqsim::StateBufferPool pool(/*max_pooled=*/64, /*num_shards=*/kThreads);
  const rqsim::StateVector golden = random_state(5, 43);
  for (int round = 0; round < kRounds; ++round) {
    rqsim::CowState seed = rqsim::CowState::adopt(pool.acquire_copy(golden));
    std::vector<rqsim::CowState> group;
    group.reserve(kThreads);
    for (std::size_t t = 0; t + 1 < kThreads; ++t) {
      group.push_back(seed.fork());
    }
    group.push_back(std::move(seed));

    std::atomic<int> last_owner_events{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        bool copied = false;
        bool released_peer = false;
        rqsim::StateVector& v =
            group[t].mutate(pool, t, &copied, &released_peer);
        v[0] = rqsim::cplx(static_cast<double>(t), 0.0);
        if (!copied || released_peer) {
          last_owner_events.fetch_add(1, std::memory_order_relaxed);
        }
        group[t].drop(pool, t);
      });
    }
    for (std::thread& th : threads) {
      th.join();
    }
    SMOKE_CHECK(last_owner_events.load() == 1);
  }
}

}  // namespace

int main() {
  stress_shared_root();
  stress_last_owner_race();
  if (failures != 0) {
    std::fprintf(stderr, "cow_tsan_smoke: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("cow_tsan_smoke: OK\n");
  return 0;
}
