#include <gtest/gtest.h>

#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/fusion.hpp"
#include "circuit/layering.hpp"
#include "common/rng.hpp"
#include "sim/kernels.hpp"
#include "sim/statevector.hpp"

namespace rqsim {
namespace {

constexpr double kTol = 1e-10;

StateVector random_state(unsigned n, std::uint64_t seed) {
  Rng rng(seed);
  StateVector s(n);
  double norm = 0.0;
  for (std::size_t i = 0; i < s.dim(); ++i) {
    s[i] = cplx(rng.normal(), rng.normal());
    norm += std::norm(s[i]);
  }
  const double scale = 1.0 / std::sqrt(norm);
  for (std::size_t i = 0; i < s.dim(); ++i) {
    s[i] *= scale;
  }
  return s;
}

void apply_unfused(StateVector& s, const std::vector<Gate>& gates) {
  for (const Gate& g : gates) {
    apply_gate(s, g);
  }
}

// Fused and unfused execution of the same sequence must agree to epsilon
// (fusion reassociates the floating-point products).
void expect_equivalent(const std::vector<Gate>& gates, unsigned n,
                       std::uint64_t seed, const FusionOptions& options = {}) {
  StateVector expected = random_state(n, seed);
  StateVector fused = expected;
  apply_unfused(expected, gates);
  apply_fused(fused, fuse_gate_sequence(gates, options));
  EXPECT_LT(fused.max_abs_diff(expected), kTol);
}

// --------------------------------------------------------- directed patterns

TEST(Fusion, SingleQubitRunFusesToOneMat2) {
  const std::vector<Gate> gates = {Gate::make1(GateKind::H, 0),
                                   Gate::make1(GateKind::T, 0),
                                   Gate::make1(GateKind::S, 0)};
  const FusedProgram program = fuse_gate_sequence(gates);
  ASSERT_EQ(program.ops.size(), 1u);
  EXPECT_EQ(program.ops[0].kind, FusedOp::Kind::kMat2);
  EXPECT_EQ(program.ops[0].q_lo, 0u);
  EXPECT_EQ(program.ops[0].fused_gates, 3u);
  EXPECT_EQ(program.source_gate_count, 3u);
  expect_equivalent(gates, 2, 11);
}

TEST(Fusion, DisjointQubitsKeepSeparateMat2s) {
  const std::vector<Gate> gates = {Gate::make1(GateKind::H, 0),
                                   Gate::make1(GateKind::H, 1),
                                   Gate::make1(GateKind::T, 0)};
  const FusedProgram program = fuse_gate_sequence(gates);
  EXPECT_EQ(program.ops.size(), 2u);
  expect_equivalent(gates, 2, 12);
}

TEST(Fusion, BareTwoQubitGateStaysSpecialized) {
  const std::vector<Gate> gates = {Gate::make2(GateKind::CX, 0, 1)};
  const FusedProgram program = fuse_gate_sequence(gates);
  ASSERT_EQ(program.ops.size(), 1u);
  EXPECT_EQ(program.ops[0].kind, FusedOp::Kind::kGate);
  expect_equivalent(gates, 2, 13);
}

TEST(Fusion, LiftsWhenBothOperandsHavePendingMatrices) {
  const std::vector<Gate> gates = {
      Gate::make1(GateKind::U3, 0, 0.3, 0.7, 1.1),
      Gate::make1(GateKind::U3, 1, 0.2, 0.5, 0.9),
      Gate::make2(GateKind::CX, 0, 1)};
  const FusedProgram program = fuse_gate_sequence(gates);
  ASSERT_EQ(program.ops.size(), 1u);
  EXPECT_EQ(program.ops[0].kind, FusedOp::Kind::kMat4);
  EXPECT_EQ(program.ops[0].fused_gates, 3u);
  expect_equivalent(gates, 3, 14);
}

TEST(Fusion, SingleSidedPendingDoesNotLift) {
  const std::vector<Gate> gates = {Gate::make1(GateKind::U3, 0, 0.3, 0.7, 1.1),
                                   Gate::make2(GateKind::CX, 0, 1)};
  const FusedProgram program = fuse_gate_sequence(gates);
  ASSERT_EQ(program.ops.size(), 2u);
  EXPECT_EQ(program.ops[0].kind, FusedOp::Kind::kMat2);
  EXPECT_EQ(program.ops[1].kind, FusedOp::Kind::kGate);
  expect_equivalent(gates, 2, 15);
}

TEST(Fusion, SamePairMergesIntoPrecedingMat4) {
  const std::vector<Gate> gates = {
      Gate::make1(GateKind::U3, 0, 0.3, 0.7, 1.1),
      Gate::make1(GateKind::U3, 1, 0.2, 0.5, 0.9),
      Gate::make2(GateKind::CX, 0, 1),
      Gate::make1(GateKind::U3, 0, 1.3, 0.1, 0.4),
      Gate::make1(GateKind::U3, 1, 0.8, 1.5, 0.2),
      Gate::make2(GateKind::CX, 1, 0)};  // reversed operand order, same pair
  const FusedProgram program = fuse_gate_sequence(gates);
  ASSERT_EQ(program.ops.size(), 1u);
  EXPECT_EQ(program.ops[0].kind, FusedOp::Kind::kMat4);
  EXPECT_EQ(program.ops[0].fused_gates, 6u);
  expect_equivalent(gates, 3, 16);
}

TEST(Fusion, TrailingPendingFoldsBackwardIntoMat4) {
  const std::vector<Gate> gates = {
      Gate::make1(GateKind::U3, 0, 0.3, 0.7, 1.1),
      Gate::make1(GateKind::U3, 1, 0.2, 0.5, 0.9),
      Gate::make2(GateKind::CX, 0, 1),
      Gate::make1(GateKind::U3, 1, 1.3, 0.1, 0.4)};  // no later op on qubit 1
  const FusedProgram program = fuse_gate_sequence(gates);
  ASSERT_EQ(program.ops.size(), 1u);
  EXPECT_EQ(program.ops[0].kind, FusedOp::Kind::kMat4);
  EXPECT_EQ(program.ops[0].fused_gates, 4u);
  expect_equivalent(gates, 2, 17);
}

TEST(Fusion, CcxFlushesAndPassesThrough) {
  const std::vector<Gate> gates = {Gate::make1(GateKind::H, 0),
                                   Gate::make1(GateKind::H, 2),
                                   Gate::make3(GateKind::CCX, 0, 1, 2),
                                   Gate::make1(GateKind::T, 2)};
  const FusedProgram program = fuse_gate_sequence(gates);
  ASSERT_EQ(program.ops.size(), 4u);
  EXPECT_EQ(program.ops[2].kind, FusedOp::Kind::kGate);
  EXPECT_EQ(program.ops[2].gate.kind, GateKind::CCX);
  expect_equivalent(gates, 3, 18);
}

TEST(Fusion, LiftDisabledKeepsTwoQubitGatesSpecialized) {
  const std::vector<Gate> gates = {
      Gate::make1(GateKind::U3, 0, 0.3, 0.7, 1.1),
      Gate::make1(GateKind::U3, 1, 0.2, 0.5, 0.9),
      Gate::make2(GateKind::CX, 0, 1)};
  FusionOptions options;
  options.lift_two_qubit = false;
  const FusedProgram program = fuse_gate_sequence(gates, options);
  ASSERT_EQ(program.ops.size(), 3u);
  EXPECT_EQ(program.ops[2].kind, FusedOp::Kind::kGate);
  expect_equivalent(gates, 2, 19, options);
}

// ------------------------------------------------------ randomized sequences

Gate random_gate(Rng& rng, unsigned n) {
  // All gate kinds, weighted toward the fusable single-qubit set.
  static const GateKind kOne[] = {GateKind::X,  GateKind::Y,   GateKind::Z,
                                  GateKind::H,  GateKind::S,   GateKind::Sdg,
                                  GateKind::T,  GateKind::Tdg, GateKind::RX,
                                  GateKind::RY, GateKind::RZ,  GateKind::P,
                                  GateKind::U2, GateKind::U3};
  static const GateKind kTwo[] = {GateKind::CX, GateKind::CZ, GateKind::CP,
                                  GateKind::SWAP};
  const double roll = rng.uniform();
  if (n >= 3 && roll < 0.05) {
    const auto a = static_cast<qubit_t>(rng.uniform_int(n));
    auto b = static_cast<qubit_t>(rng.uniform_int(n - 1));
    if (b >= a) ++b;
    qubit_t c = a;
    while (c == a || c == b) {
      c = static_cast<qubit_t>(rng.uniform_int(n));
    }
    return Gate::make3(GateKind::CCX, a, b, c);
  }
  if (n >= 2 && roll < 0.40) {
    const GateKind kind = kTwo[rng.uniform_int(4)];
    const auto a = static_cast<qubit_t>(rng.uniform_int(n));
    auto b = static_cast<qubit_t>(rng.uniform_int(n - 1));
    if (b >= a) ++b;
    return Gate::make2(kind, a, b, rng.uniform(0.0, 3.0));
  }
  const GateKind kind = kOne[rng.uniform_int(14)];
  return Gate::make1(kind, static_cast<qubit_t>(rng.uniform_int(n)),
                     rng.uniform(0.0, 3.0), rng.uniform(0.0, 3.0),
                     rng.uniform(0.0, 3.0));
}

TEST(Fusion, RandomSequencesMatchUnfusedExecution) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(900 + seed);
    const unsigned n = 1 + static_cast<unsigned>(rng.uniform_int(5));
    std::vector<Gate> gates;
    const std::size_t len = 5 + rng.uniform_int(40);
    for (std::size_t i = 0; i < len; ++i) {
      gates.push_back(random_gate(rng, n));
    }
    expect_equivalent(gates, n, 1000 + seed);
    FusionOptions no_lift;
    no_lift.lift_two_qubit = false;
    expect_equivalent(gates, n, 2000 + seed, no_lift);
  }
}

TEST(Fusion, FusedProgramNeverGrowsOpCount) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(300 + seed);
    const unsigned n = 2 + static_cast<unsigned>(rng.uniform_int(4));
    std::vector<Gate> gates;
    for (std::size_t i = 0; i < 30; ++i) {
      gates.push_back(random_gate(rng, n));
    }
    const FusedProgram program = fuse_gate_sequence(gates);
    EXPECT_LE(program.ops.size(), gates.size());
    EXPECT_EQ(program.source_gate_count, gates.size());
  }
}

// ---------------------------------------------------- layer ranges + caching

Circuit random_circuit(Rng& rng, unsigned n, std::size_t len) {
  Circuit c(n);
  for (std::size_t i = 0; i < len; ++i) {
    c.add(random_gate(rng, n));
  }
  return c;
}

TEST(Fusion, LayerRangeMatchesLayerOrderApplication) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(500 + seed);
    const unsigned n = 2 + static_cast<unsigned>(rng.uniform_int(3));
    const Circuit c = random_circuit(rng, n, 25);
    const Layering layering = layer_circuit(c);
    const auto num_layers = static_cast<layer_index_t>(layering.num_layers());
    // Random fusion boundary inside the layering.
    const auto from = static_cast<layer_index_t>(rng.uniform_int(num_layers));
    const auto to = static_cast<layer_index_t>(
        from + rng.uniform_int(num_layers - from + 1));

    StateVector expected = random_state(n, 600 + seed);
    StateVector fused = expected;
    for (layer_index_t l = from; l < to; ++l) {
      for (gate_index_t g : layering.layers[l]) {
        apply_gate(expected, c.gates()[g]);
      }
    }
    apply_fused(fused, fuse_layer_range(c, layering, from, to));
    EXPECT_LT(fused.max_abs_diff(expected), kTol) << "seed " << seed;
  }
}

TEST(Fusion, CacheMemoizesSegments) {
  Rng rng(77);
  const Circuit c = random_circuit(rng, 3, 20);
  const Layering layering = layer_circuit(c);
  const auto num_layers = static_cast<layer_index_t>(layering.num_layers());
  ASSERT_GE(num_layers, 2u);

  FusionCache cache(c, layering);
  const FusedProgram& a = cache.segment(0, num_layers);
  const FusedProgram& b = cache.segment(0, num_layers);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(cache.num_segments(), 1u);
  cache.segment(0, num_layers - 1);
  EXPECT_EQ(cache.num_segments(), 2u);
}

}  // namespace
}  // namespace rqsim
