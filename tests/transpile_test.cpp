#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/kernels.hpp"
#include "sim/reference.hpp"
#include "transpile/coupling.hpp"
#include "transpile/decompose.hpp"
#include "transpile/router.hpp"
#include "transpile/transpiler.hpp"

namespace rqsim {
namespace {

// Compare two circuits' dense unitaries up to global phase.
bool circuits_equal_up_to_phase(const Circuit& a, const Circuit& b, double tol = 1e-9) {
  const DenseMatrix ua = circuit_to_dense(a);
  const DenseMatrix ub = circuit_to_dense(b);
  if (ua.dim() != ub.dim()) {
    return false;
  }
  // Find reference phase at the largest entry of ub.
  std::size_t br = 0;
  std::size_t bc = 0;
  double best = 0.0;
  for (std::size_t r = 0; r < ub.dim(); ++r) {
    for (std::size_t c = 0; c < ub.dim(); ++c) {
      if (std::abs(ub.at(r, c)) > best) {
        best = std::abs(ub.at(r, c));
        br = r;
        bc = c;
      }
    }
  }
  if (best < tol) {
    return false;
  }
  const cplx phase = ua.at(br, bc) / ub.at(br, bc);
  for (std::size_t r = 0; r < ua.dim(); ++r) {
    for (std::size_t c = 0; c < ua.dim(); ++c) {
      if (std::abs(ua.at(r, c) - phase * ub.at(r, c)) > tol) {
        return false;
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------- coupling

TEST(CouplingMap, YorktownStructure) {
  const CouplingMap m = CouplingMap::yorktown();
  EXPECT_EQ(m.num_qubits(), 5u);
  EXPECT_EQ(m.edges().size(), 6u);
  EXPECT_TRUE(m.connected(0, 1));
  EXPECT_TRUE(m.connected(1, 0));
  EXPECT_TRUE(m.connected(2, 4));
  EXPECT_FALSE(m.connected(0, 3));
  EXPECT_FALSE(m.connected(0, 4));
  EXPECT_FALSE(m.connected(1, 3));
  EXPECT_TRUE(m.is_connected_graph());
}

TEST(CouplingMap, ShortestPath) {
  const CouplingMap m = CouplingMap::yorktown();
  const auto path = m.shortest_path(0, 3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 3u);
  EXPECT_EQ(path[1], 2u);  // only 2 connects {0,1} side to {3,4} side
}

TEST(CouplingMap, LinearTopology) {
  const CouplingMap m = CouplingMap::linear(5);
  EXPECT_TRUE(m.connected(0, 1));
  EXPECT_FALSE(m.connected(0, 2));
  EXPECT_EQ(m.shortest_path(0, 4).size(), 5u);
}

TEST(CouplingMap, AllToAll) {
  const CouplingMap m = CouplingMap::all_to_all(10);
  EXPECT_TRUE(m.connected(0, 9));
  EXPECT_EQ(m.shortest_path(3, 7).size(), 2u);
  EXPECT_TRUE(m.is_connected_graph());
}

TEST(CouplingMap, DisconnectedGraphDetected) {
  const CouplingMap m(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(m.is_connected_graph());
  EXPECT_THROW(m.shortest_path(0, 3), Error);
}

TEST(CouplingMap, EdgeIndex) {
  const CouplingMap m = CouplingMap::yorktown();
  EXPECT_GE(m.edge_index(0, 1), 0);
  EXPECT_EQ(m.edge_index(0, 1), m.edge_index(1, 0));
  EXPECT_EQ(m.edge_index(0, 3), -1);
}

// ---------------------------------------------------------------- decompose

TEST(Decompose, CZPreservesUnitary) {
  Circuit original(2);
  original.cz(0, 1);
  const Circuit decomposed = decompose_to_cx_basis(original);
  EXPECT_TRUE(in_cx_basis(decomposed));
  EXPECT_TRUE(circuits_equal_up_to_phase(original, decomposed));
}

TEST(Decompose, CPPreservesUnitary) {
  for (double lambda : {0.3, -1.7, 3.14}) {
    Circuit original(2);
    original.cp(0, 1, lambda);
    const Circuit decomposed = decompose_to_cx_basis(original);
    EXPECT_TRUE(in_cx_basis(decomposed));
    EXPECT_TRUE(circuits_equal_up_to_phase(original, decomposed)) << lambda;
  }
}

TEST(Decompose, SwapPreservesUnitary) {
  Circuit original(2);
  original.swap(0, 1);
  const Circuit decomposed = decompose_to_cx_basis(original);
  EXPECT_TRUE(in_cx_basis(decomposed));
  EXPECT_EQ(decomposed.count_kind(GateKind::CX), 3u);
  EXPECT_TRUE(circuits_equal_up_to_phase(original, decomposed));
}

TEST(Decompose, ToffoliPreservesUnitary) {
  Circuit original(3);
  original.ccx(0, 1, 2);
  const Circuit decomposed = decompose_to_cx_basis(original);
  EXPECT_TRUE(in_cx_basis(decomposed));
  EXPECT_EQ(decomposed.count_kind(GateKind::CX), 6u);
  EXPECT_TRUE(circuits_equal_up_to_phase(original, decomposed));
}

TEST(Decompose, ToffoliAllOperandOrders) {
  const qubit_t perms[][3] = {{0, 1, 2}, {0, 2, 1}, {1, 2, 0}, {2, 1, 0}};
  for (const auto& p : perms) {
    Circuit original(3);
    original.ccx(p[0], p[1], p[2]);
    const Circuit decomposed = decompose_to_cx_basis(original);
    EXPECT_TRUE(circuits_equal_up_to_phase(original, decomposed));
  }
}

TEST(Decompose, MixedCircuitPreservesUnitaryAndMeasurements) {
  Circuit original(3);
  original.h(0);
  original.cz(0, 1);
  original.swap(1, 2);
  original.cp(0, 2, 0.9);
  original.ccx(0, 1, 2);
  original.measure(2);
  original.measure(0);
  const Circuit decomposed = decompose_to_cx_basis(original);
  EXPECT_TRUE(in_cx_basis(decomposed));
  EXPECT_TRUE(circuits_equal_up_to_phase(original, decomposed));
  ASSERT_EQ(decomposed.num_measured(), 2u);
  EXPECT_EQ(decomposed.measured_qubits()[0], 2u);
  EXPECT_EQ(decomposed.measured_qubits()[1], 0u);
}

TEST(Decompose, PassThroughGatesUntouched) {
  Circuit original(2);
  original.h(0);
  original.cx(0, 1);
  original.u3(1, 0.1, 0.2, 0.3);
  const Circuit decomposed = decompose_to_cx_basis(original);
  EXPECT_EQ(decomposed.num_gates(), 3u);
}

// ---------------------------------------------------------------- router

TEST(Router, AdjacentGatesUnchanged) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  const RoutedCircuit routed = route_circuit(c, CouplingMap::yorktown());
  EXPECT_EQ(routed.swaps_inserted, 0u);
  EXPECT_EQ(routed.circuit.count_kind(GateKind::CX), 1u);
  EXPECT_TRUE(respects_coupling(routed.circuit, CouplingMap::yorktown()));
}

TEST(Router, NonAdjacentCXGetsRouted) {
  Circuit c(4);
  c.cx(0, 3);  // 0 and 3 are not coupled on Yorktown
  const CouplingMap coupling = CouplingMap::yorktown();
  const RoutedCircuit routed = route_circuit(c, coupling);
  EXPECT_GE(routed.swaps_inserted, 1u);
  EXPECT_TRUE(respects_coupling(routed.circuit, coupling));
}

TEST(Router, SemanticsPreservedUnderRouting) {
  // Simulate the logical circuit and the routed circuit; amplitudes must
  // agree after applying the final logical->physical mapping.
  Rng rng(55);
  for (int trial = 0; trial < 8; ++trial) {
    Circuit c(4);
    for (int i = 0; i < 10; ++i) {
      if (rng.uniform() < 0.5) {
        c.u3(static_cast<qubit_t>(rng.uniform_int(4)), rng.uniform(0, 3.0),
             rng.uniform(0, 3.0), rng.uniform(0, 3.0));
      } else {
        const auto a = static_cast<qubit_t>(rng.uniform_int(4));
        auto b = static_cast<qubit_t>(rng.uniform_int(3));
        if (b >= a) {
          ++b;
        }
        c.cx(a, b);
      }
    }
    const CouplingMap coupling = CouplingMap::linear(4);
    const RoutedCircuit routed = route_circuit(c, coupling);
    EXPECT_TRUE(respects_coupling(routed.circuit, coupling));

    StateVector logical(4);
    for (const Gate& g : c.gates()) {
      apply_gate(logical, g);
    }
    StateVector physical(4);
    for (const Gate& g : routed.circuit.gates()) {
      apply_gate(physical, g);
    }
    // Permute logical amplitudes by the final mapping and compare.
    StateVector permuted(4);
    for (std::uint64_t idx = 0; idx < logical.dim(); ++idx) {
      std::uint64_t mapped = 0;
      for (qubit_t lq = 0; lq < 4; ++lq) {
        mapped = set_bit(mapped, routed.final_mapping[lq], get_bit(idx, lq));
      }
      permuted[mapped] = logical[idx];
    }
    EXPECT_LT(permuted.max_abs_diff(physical), 1e-10);
  }
}

TEST(Router, MeasurementsFollowMapping) {
  Circuit c(4);
  c.cx(0, 3);
  c.measure(0);
  c.measure(3);
  const RoutedCircuit routed = route_circuit(c, CouplingMap::linear(4));
  ASSERT_EQ(routed.circuit.num_measured(), 2u);
  EXPECT_EQ(routed.circuit.measured_qubits()[0], routed.final_mapping[0]);
  EXPECT_EQ(routed.circuit.measured_qubits()[1], routed.final_mapping[3]);
}

TEST(Router, RejectsUndcomposedCircuit) {
  Circuit c(3);
  c.ccx(0, 1, 2);
  EXPECT_THROW(route_circuit(c, CouplingMap::yorktown()), Error);
}

TEST(Router, RejectsOversizedCircuit) {
  Circuit c(6);
  c.h(5);
  EXPECT_THROW(route_circuit(c, CouplingMap::yorktown()), Error);
}

// ---------------------------------------------------------------- transpile

TEST(Transpile, EndToEndRespectsCoupling) {
  Circuit c(5);
  c.h(0);
  c.ccx(0, 2, 4);
  c.swap(1, 3);
  c.cp(0, 4, 0.5);
  c.measure_all();
  const CouplingMap coupling = CouplingMap::yorktown();
  const TranspileResult result = transpile(c, coupling);
  EXPECT_TRUE(in_cx_basis(result.circuit));
  EXPECT_TRUE(respects_coupling(result.circuit, coupling));
  EXPECT_EQ(result.circuit.num_measured(), 5u);
}

TEST(Transpile, SemanticsPreservedEndToEnd) {
  Circuit c(3);
  c.h(0);
  c.ccx(0, 1, 2);
  c.cz(0, 2);
  const TranspileResult result = transpile(c, CouplingMap::linear(3));

  StateVector logical(3);
  for (const Gate& g : c.gates()) {
    apply_gate(logical, g);
  }
  StateVector physical(3);
  for (const Gate& g : result.circuit.gates()) {
    apply_gate(physical, g);
  }
  StateVector permuted(3);
  for (std::uint64_t idx = 0; idx < logical.dim(); ++idx) {
    std::uint64_t mapped = 0;
    for (qubit_t lq = 0; lq < 3; ++lq) {
      mapped = set_bit(mapped, result.final_mapping[lq], get_bit(idx, lq));
    }
    permuted[mapped] = logical[idx];
  }
  EXPECT_GT(permuted.fidelity(physical), 1.0 - 1e-10);
}

}  // namespace
}  // namespace rqsim
