#include <gtest/gtest.h>

#include <cmath>

#include "bench_circuits/ghz.hpp"
#include "bench_circuits/qft.hpp"
#include "common/error.hpp"
#include "dm/density_matrix.hpp"
#include "sched/enumerate.hpp"
#include "sched/order.hpp"
#include "transpile/decompose.hpp"

namespace rqsim {
namespace {

TEST(Enumerate, ConfigurationCountsAndMass) {
  // 3 single-qubit gates, rate p each: k<=1 gives 1 + 3*3 = 10 configs
  // with mass (1-p)^3 + 3 * p (1-p)^2.
  Circuit c(3);
  c.h(0);
  c.h(1);
  c.h(2);
  c.measure_all();
  const double p = 0.1;
  const NoiseModel noise = NoiseModel::uniform(3, p, 0.0, 0.0);
  const WeightedTrialSet set = enumerate_error_configurations(c, noise, 1);
  EXPECT_EQ(set.trials.size(), 10u);
  const double expected_mass =
      std::pow(1 - p, 3) + 3.0 * p * std::pow(1 - p, 2);
  EXPECT_NEAR(set.covered_mass, expected_mass, 1e-12);
  EXPECT_TRUE(is_reordered(set.trials));
  // Probabilities positive and consistent with trials.
  ASSERT_EQ(set.probabilities.size(), set.trials.size());
  for (std::size_t i = 0; i < set.trials.size(); ++i) {
    EXPECT_GT(set.probabilities[i], 0.0);
    EXPECT_LE(set.trials[i].num_errors(), 1u);
  }
}

TEST(Enumerate, TwoQubitGatesUseFifteenOps) {
  Circuit c(2);
  c.cx(0, 1);
  c.measure_all();
  const NoiseModel noise = NoiseModel::uniform(2, 0.0, 0.2, 0.0);
  const WeightedTrialSet set = enumerate_error_configurations(c, noise, 1);
  EXPECT_EQ(set.trials.size(), 16u);  // empty + 15 Pauli pairs
  EXPECT_NEAR(set.covered_mass, 1.0, 1e-12);  // k=1 covers everything here
}

TEST(Enumerate, MassConvergesToOneWithK) {
  const Circuit c = decompose_to_cx_basis(make_qft(3));
  const NoiseModel noise = NoiseModel::uniform(3, 0.01, 0.05, 0.0);
  double previous = 0.0;
  for (std::size_t k : {0u, 1u, 2u}) {
    const WeightedTrialSet set = enumerate_error_configurations(c, noise, k);
    EXPECT_GT(set.covered_mass, previous);
    previous = set.covered_mass;
  }
  EXPECT_GT(previous, 0.98);
}

TEST(Enumerate, ConfigLimitEnforced) {
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const NoiseModel noise = NoiseModel::uniform(4, 0.01, 0.05, 0.0);
  EXPECT_THROW(enumerate_error_configurations(c, noise, 3, /*max_configs=*/100), Error);
}

TEST(Enumerate, TruncatedDistributionIsComponentwiseLowerBound) {
  // Every component of the truncated distribution under-counts the exact
  // one by the (non-negative) tail contribution, and the total deficit is
  // exactly 1 - covered_mass.
  const Circuit c = decompose_to_cx_basis(make_qft(3));
  NoiseModel noise = NoiseModel::uniform(3, 0.02, 0.06, 0.03);
  const std::vector<double> exact = exact_noisy_distribution(c, noise);
  const TruncatedDistribution truncated = truncated_exact_distribution(c, noise, 2);

  double deficit = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_LE(truncated.probabilities[i], exact[i] + 1e-9) << i;
    deficit += exact[i] - truncated.probabilities[i];
  }
  EXPECT_NEAR(deficit, 1.0 - truncated.covered_mass, 1e-9);
  EXPECT_GT(truncated.covered_mass, 0.95);
}

TEST(Enumerate, NormalizedTruncationConvergesToExact) {
  const Circuit c = make_ghz(3);
  NoiseModel noise = NoiseModel::uniform(3, 0.03, 0.08, 0.02);
  noise.set_uniform_idle_rate(0.01);
  const std::vector<double> exact = exact_noisy_distribution(c, noise);
  double previous_tvd = 1.0;
  for (std::size_t k : {0u, 1u, 2u}) {
    const TruncatedDistribution t = truncated_exact_distribution(c, noise, k);
    double tvd = 0.0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
      tvd += std::abs(t.probabilities[i] / t.covered_mass - exact[i]);
    }
    tvd /= 2.0;
    EXPECT_LE(tvd, 1.0 - t.covered_mass + 1e-9) << "k=" << k;
    EXPECT_LE(tvd, previous_tvd + 1e-12);
    previous_tvd = tvd;
  }
  EXPECT_LT(previous_tvd, 0.01);
}

TEST(Enumerate, ZeroErrorTruncationIsScaledIdealDistribution) {
  Circuit c(2);
  c.x(0);
  c.measure_all();
  const NoiseModel noise = NoiseModel::uniform(2, 0.1, 0.0, 0.0);
  const TruncatedDistribution t = truncated_exact_distribution(c, noise, 0);
  // One config (error-free): distribution = mass * delta_{01}.
  EXPECT_EQ(t.num_configurations, 1u);
  EXPECT_NEAR(t.probabilities[0b01], t.covered_mass, 1e-12);
  EXPECT_NEAR(t.probabilities[0b00], 0.0, 1e-12);
}

TEST(Enumerate, SharingBeatsUnsharedExecutionDramatically) {
  // The enumerated configurations are the *ideal* sharing workload: all
  // single-error configs share the full prefix before their site.
  const Circuit c = decompose_to_cx_basis(make_qft(3));
  const NoiseModel noise = NoiseModel::uniform(3, 0.01, 0.05, 0.0);
  const TruncatedDistribution t = truncated_exact_distribution(c, noise, 2);
  EXPECT_LT(static_cast<double>(t.ops),
            0.35 * static_cast<double>(t.baseline_ops));
  EXPECT_GT(t.num_configurations, 1000u);
  EXPECT_LT(t.max_live_states, 8u);
}

}  // namespace
}  // namespace rqsim
