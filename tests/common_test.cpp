#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace rqsim {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_int(6);
    EXPECT_LT(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, UniformIntOneIsAlwaysZero) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(1), 0u);
  }
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng(19);
  EXPECT_THROW(rng.uniform_int(0), Error);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(-0.1), Error);
  EXPECT_THROW(rng.bernoulli(1.1), Error);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 4.0};
  std::vector<int> counts(4, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.discrete(weights)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 1.0 / 8.0, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 3.0 / 8.0, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 4.0 / 8.0, 0.01);
}

TEST(Rng, DiscreteRejectsBadWeights) {
  Rng rng(37);
  EXPECT_THROW(rng.discrete({}), Error);
  EXPECT_THROW(rng.discrete({0.0, 0.0}), Error);
  EXPECT_THROW(rng.discrete({1.0, -1.0}), Error);
}

TEST(Rng, NormalMoments) {
  Rng rng(41);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, SplitIndependentStreams) {
  Rng parent(43);
  Rng child = parent.split();
  // Parent continues and both produce values; child differs from parent.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

// ---------------------------------------------------------------- bits

TEST(Bits, Pow2) {
  EXPECT_EQ(pow2(0), 1u);
  EXPECT_EQ(pow2(1), 2u);
  EXPECT_EQ(pow2(10), 1024u);
  EXPECT_EQ(pow2(40), (std::uint64_t{1} << 40));
}

TEST(Bits, GetSetFlip) {
  EXPECT_EQ(get_bit(0b1010, 1), 1u);
  EXPECT_EQ(get_bit(0b1010, 0), 0u);
  EXPECT_EQ(set_bit(0b1010, 0, 1), 0b1011u);
  EXPECT_EQ(set_bit(0b1010, 1, 0), 0b1000u);
  EXPECT_EQ(set_bit(0b1010, 1, 1), 0b1010u);
  EXPECT_EQ(flip_bit(0b1010, 3), 0b0010u);
}

TEST(Bits, InsertZeroBit) {
  // Inserting at 0 shifts everything left.
  EXPECT_EQ(insert_zero_bit(0b101, 0), 0b1010u);
  // Inserting at the top leaves the value unchanged.
  EXPECT_EQ(insert_zero_bit(0b101, 3), 0b0101u);
  EXPECT_EQ(insert_zero_bit(0b11, 1), 0b101u);
}

TEST(Bits, InsertZeroBitEnumeratesAllZeroBitIndices) {
  // insert_zero_bit(k, b) for k in [0, 2^(n-1)) must enumerate exactly the
  // n-bit indices whose bit b is zero, without repetition.
  const unsigned n = 5;
  for (unsigned b = 0; b < n; ++b) {
    std::set<std::uint64_t> produced;
    for (std::uint64_t k = 0; k < pow2(n - 1); ++k) {
      const std::uint64_t idx = insert_zero_bit(k, b);
      EXPECT_EQ(get_bit(idx, b), 0u);
      EXPECT_LT(idx, pow2(n));
      produced.insert(idx);
    }
    EXPECT_EQ(produced.size(), pow2(n - 1));
  }
}

TEST(Bits, InsertTwoZeroBits) {
  const unsigned n = 6;
  for (unsigned lo = 0; lo < n; ++lo) {
    for (unsigned hi = lo + 1; hi < n; ++hi) {
      std::set<std::uint64_t> produced;
      for (std::uint64_t k = 0; k < pow2(n - 2); ++k) {
        const std::uint64_t idx = insert_two_zero_bits(k, lo, hi);
        EXPECT_EQ(get_bit(idx, lo), 0u);
        EXPECT_EQ(get_bit(idx, hi), 0u);
        EXPECT_LT(idx, pow2(n));
        produced.insert(idx);
      }
      EXPECT_EQ(produced.size(), pow2(n - 2));
    }
  }
}

TEST(Bits, BitstringRoundTrip) {
  EXPECT_EQ(to_bitstring(0b1011, 4), "1011");
  EXPECT_EQ(to_bitstring(0, 3), "000");
  EXPECT_EQ(from_bitstring("1011"), 0b1011u);
  EXPECT_EQ(from_bitstring("000"), 0u);
  EXPECT_THROW(from_bitstring("10a"), Error);
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(from_bitstring(to_bitstring(v, 6)), v);
  }
}

// ---------------------------------------------------------------- strings

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(0.5, 2), "0.50");
  EXPECT_EQ(format_double(1.0 / 3.0, 4), "0.3333");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("OPENQASM 2.0", "OPENQASM"));
  EXPECT_FALSE(starts_with("qreg", "qregx"));
}

// ---------------------------------------------------------------- error

TEST(ErrorHandling, CheckMacroThrowsWithLocation) {
  try {
    RQSIM_CHECK(false, "something broke");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("something broke"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(ErrorHandling, CheckMacroPasses) {
  EXPECT_NO_THROW(RQSIM_CHECK(true, "fine"));
}

}  // namespace
}  // namespace rqsim
