// Biased Pauli channels: the paper's error model assigns a probability to
// every (position, operator) pair; these tests cover the non-uniform case
// (dephasing-dominant hardware etc.) through the generator, the exact
// density-matrix channel and the full Monte Carlo pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "bench_circuits/ghz.hpp"
#include "circuit/layering.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "dm/density_matrix.hpp"
#include "noise/noise_model.hpp"
#include "obs/pauli_string.hpp"
#include "sched/runner.hpp"
#include "trial/generator.hpp"

namespace rqsim {
namespace {

TEST(BiasedNoise, WeightConfiguration) {
  NoiseModel noise = NoiseModel::uniform(2, 0.1, 0.0, 0.0);
  const auto uniform = noise.single_pauli_weights(0);
  EXPECT_DOUBLE_EQ(uniform[0], 1.0 / 3.0);
  noise.set_single_pauli_weights(0, 1.0, 0.0, 3.0);
  const auto biased = noise.single_pauli_weights(0);
  EXPECT_DOUBLE_EQ(biased[0], 0.25);
  EXPECT_DOUBLE_EQ(biased[1], 0.0);
  EXPECT_DOUBLE_EQ(biased[2], 0.75);
  // Other qubits keep the uniform default.
  EXPECT_DOUBLE_EQ(noise.single_pauli_weights(1)[0], 1.0 / 3.0);
  EXPECT_THROW(noise.set_single_pauli_weights(0, -1.0, 1.0, 1.0), Error);
  EXPECT_THROW(noise.set_single_pauli_weights(0, 0.0, 0.0, 0.0), Error);
  EXPECT_THROW(noise.set_single_pauli_weights(9, 1, 1, 1), Error);
}

TEST(BiasedNoise, GeneratorHonorsWeights) {
  Circuit c(1);
  c.h(0);
  c.measure_all();
  const Layering l = layer_circuit(c);
  NoiseModel noise = NoiseModel::uniform(1, 0.5, 0.0, 0.0);
  noise.set_single_pauli_weights(0, 0.2, 0.3, 0.5);
  Rng rng(5);
  const std::size_t n = 60000;
  std::size_t counts[4] = {0, 0, 0, 0};
  std::size_t with_error = 0;
  for (const Trial& t : generate_trials(c, l, noise, n, rng)) {
    if (!t.events.empty()) {
      ++with_error;
      ++counts[t.events[0].op];
    }
  }
  EXPECT_NEAR(with_error / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(with_error), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(with_error), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(with_error), 0.5, 0.015);
}

TEST(BiasedNoise, PureDephasingLeavesZBasisAlone) {
  // Z-only errors commute with Z-basis measurement of a computational
  // state: outcomes of |01⟩ stay exactly |01⟩ no matter the rate.
  Circuit c(2);
  c.x(0);
  c.measure_all();
  NoiseModel noise = NoiseModel::uniform(2, 0.8, 0.0, 0.0);
  noise.set_single_pauli_weights(0, 0.0, 0.0, 1.0);
  noise.set_single_pauli_weights(1, 0.0, 0.0, 1.0);
  NoisyRunConfig config;
  config.num_trials = 2000;
  const NoisyRunResult result = run_noisy(c, noise, config);
  ASSERT_EQ(result.histogram.size(), 1u);
  EXPECT_EQ(result.histogram.begin()->first, 0b01u);
}

TEST(BiasedNoise, DephasingKillsCoherenceNotPopulation) {
  // On |+⟩, a Z-biased channel shrinks ⟨X⟩ but leaves ⟨Z⟩ = 0 exact.
  DensityMatrix rho(1);
  rho.apply_gate(Gate::make1(GateKind::H, 0));
  rho.apply_pauli_channel1(0, 0.0, 0.0, 0.25);
  EXPECT_NEAR(expectation(rho, PauliString::from_label("X")), 0.5, 1e-10);
  EXPECT_NEAR(expectation(rho, PauliString::from_label("Z")), 0.0, 1e-10);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
}

TEST(BiasedNoise, ChannelValidation) {
  DensityMatrix rho(1);
  EXPECT_THROW(rho.apply_pauli_channel1(0, 0.5, 0.4, 0.3), Error);  // sums > 1
  EXPECT_THROW(rho.apply_pauli_channel1(0, -0.1, 0.0, 0.0), Error);
  EXPECT_THROW(rho.apply_pauli_channel1(5, 0.1, 0.0, 0.0), Error);
}

TEST(BiasedNoise, MonteCarloMatchesExactBiasedChannel) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.h(1);
  c.measure_all();
  NoiseModel noise = NoiseModel::uniform(2, 0.06, 0.05, 0.02);
  noise.set_single_pauli_weights(0, 3.0, 1.0, 6.0);
  noise.set_single_pauli_weights(1, 1.0, 0.0, 1.0);
  noise.set_uniform_idle_rate(0.02);
  noise.set_idle_pauli_weights(0, 0.0, 0.0, 1.0);
  noise.set_idle_pauli_weights(1, 1.0, 1.0, 8.0);

  const std::vector<double> exact = exact_noisy_distribution(c, noise);
  NoisyRunConfig config;
  config.num_trials = 200000;
  config.seed = 9;
  const NoisyRunResult mc = run_noisy(c, noise, config);

  double tvd = 0.0;
  for (std::uint64_t outcome = 0; outcome < exact.size(); ++outcome) {
    const auto it = mc.histogram.find(outcome);
    const double sampled =
        it == mc.histogram.end()
            ? 0.0
            : static_cast<double>(it->second) / static_cast<double>(config.num_trials);
    tvd += std::abs(sampled - exact[outcome]);
  }
  EXPECT_LT(tvd / 2.0, 0.01);
}

TEST(BiasedNoise, BiasDoesNotChangeSavings) {
  // The reorder keys on (layer, position, op); biasing the op distribution
  // concentrates ops and *increases* shared prefixes slightly — it must
  // never hurt correctness or blow up MSV.
  const Circuit c = make_ghz(4);
  NoiseModel uniform_noise = NoiseModel::uniform(4, 0.02, 0.06, 0.0);
  NoiseModel biased = uniform_noise;
  for (qubit_t q = 0; q < 4; ++q) {
    biased.set_single_pauli_weights(q, 0.0, 0.0, 1.0);
  }
  NoisyRunConfig config;
  config.num_trials = 4096;
  const NoisyRunResult a = analyze_noisy(c, uniform_noise, config);
  const NoisyRunResult b = analyze_noisy(c, biased, config);
  EXPECT_LE(b.normalized_computation, a.normalized_computation * 1.05);
  EXPECT_LE(b.max_live_states, a.max_live_states + 2);
}

}  // namespace
}  // namespace rqsim
