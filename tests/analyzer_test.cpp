// Tests for tools/analyze: every rule id is exercised by a fixture with a
// golden .expect sidecar, the suppression annotation and comment/string
// non-violations are covered, and the whole-tree run is clean with full
// mutex coverage in the concurrency directories.
//
// Fixture corpus: tools/analyze/fixtures/<name>.cpp (or .hpp) next to
// <name>.expect, one "<rule> <line>" pair per line (empty file = the
// fixture must produce no diagnostics). The same rule1..rule6 fixtures
// back scripts/check_source_rules.sh --self-test, so the analyzer and the
// grep fallback are pinned to the same corpus.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analyzer.hpp"

namespace rqsim::analyze {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(RQSIM_ANALYZE_FIXTURE_DIR) + "/" + name;
}

using RuleLine = std::pair<std::string, int>;

std::set<RuleLine> load_golden(const std::string& name) {
  std::ifstream in(fixture_path(name));
  EXPECT_TRUE(in.good()) << "missing golden " << name;
  std::set<RuleLine> expected;
  std::string rule;
  int line = 0;
  while (in >> rule >> line) {
    expected.insert({rule, line});
  }
  return expected;
}

std::set<RuleLine> to_rule_lines(const std::vector<Diagnostic>& diags) {
  std::set<RuleLine> got;
  for (const Diagnostic& d : diags) {
    got.insert({d.rule, d.line});
    EXPECT_FALSE(d.message.empty()) << d.rule;
    EXPECT_FALSE(d.hint.empty()) << d.rule << ": every diagnostic carries a fix hint";
    EXPECT_FALSE(d.file.empty()) << d.rule;
  }
  return got;
}

void expect_golden(const std::set<RuleLine>& got, const std::string& fixture) {
  const std::set<RuleLine> expected =
      load_golden(fixture.substr(0, fixture.rfind('.')) + ".expect");
  EXPECT_EQ(got, expected) << "fixture " << fixture;
}

std::set<RuleLine> run_source_fixture(const std::string& fixture) {
  LexedFile lexed = lex_file(fixture_path(fixture));
  std::vector<Diagnostic> diags;
  run_source_rules(lexed, diags);
  return to_rule_lines(diags);
}

std::set<RuleLine> run_concurrency_fixture(const std::string& fixture) {
  std::vector<LexedFile> files;
  files.push_back(lex_file(fixture_path(fixture)));
  std::vector<Diagnostic> diags;
  run_concurrency_pass(files, diags, nullptr);
  return to_rule_lines(diags);
}

// ------------------------------------------------------------ source rules

TEST(AnalyzerSourceRules, RawAllocFixtureMatchesGolden) {
  expect_golden(run_source_fixture("rule1_raw_alloc.cpp"), "rule1_raw_alloc.cpp");
}

TEST(AnalyzerSourceRules, RngFixtureMatchesGolden) {
  expect_golden(run_source_fixture("rule2_rng.cpp"), "rule2_rng.cpp");
}

TEST(AnalyzerSourceRules, RngAliasFixtureNeedsTokenLevelResolution) {
  // No `std::` spelling in the fixture — the grep fallback cannot flag it.
  expect_golden(run_source_fixture("rule2_rng_alias.cpp"), "rule2_rng_alias.cpp");
}

TEST(AnalyzerSourceRules, ThreadFixtureMatchesGolden) {
  expect_golden(run_source_fixture("rule3_thread.cpp"), "rule3_thread.cpp");
}

TEST(AnalyzerSourceRules, ClockFixtureMatchesGolden) {
  expect_golden(run_source_fixture("rule4_clock.cpp"), "rule4_clock.cpp");
}

TEST(AnalyzerSourceRules, DeepCopyFixtureMatchesGolden) {
  expect_golden(run_source_fixture("rule5_deep_copy.cpp"), "rule5_deep_copy.cpp");
}

TEST(AnalyzerSourceRules, SocketFixtureMatchesGolden) {
  expect_golden(run_source_fixture("rule6_socket.cpp"), "rule6_socket.cpp");
}

TEST(AnalyzerSourceRules, PrintFixtureMatchesGolden) {
  // RQS007: terminal output outside cli/ report/ tools/ — including the
  // aliased stream spelling; snprintf and member functions that share a
  // libc name stay clean.
  expect_golden(run_source_fixture("rule7_print.cpp"), "rule7_print.cpp");
}

TEST(AnalyzerSourceRules, CommentsAndStringsAreNotViolations) {
  expect_golden(run_source_fixture("clean_comments.cpp"), "clean_comments.cpp");
}

TEST(AnalyzerSourceRules, AllowAnnotationSuppressesOnlyItsLine) {
  // The annotated mt19937 is silenced; the identical one without an
  // annotation in the next function is still reported.
  expect_golden(run_source_fixture("suppressed.cpp"), "suppressed.cpp");
}

// ------------------------------------------------------- concurrency pass

TEST(AnalyzerConcurrency, LockOrderCycleAndRelockMatchGolden) {
  expect_golden(run_concurrency_fixture("lock_cycle.cpp"), "lock_cycle.cpp");
}

TEST(AnalyzerConcurrency, BlockingUnderLockDirectAndPropagated) {
  expect_golden(run_concurrency_fixture("blocking_under_lock.cpp"),
                "blocking_under_lock.cpp");
}

TEST(AnalyzerConcurrency, ForeignMutexHeldAcrossCvWait) {
  expect_golden(run_concurrency_fixture("cv_foreign.cpp"), "cv_foreign.cpp");
}

TEST(AnalyzerConcurrency, InventoryReportsDeclaredMutexesWithAcquisitions) {
  std::vector<LexedFile> files;
  files.push_back(lex_file(fixture_path("lock_cycle.cpp")));
  std::vector<Diagnostic> diags;
  std::vector<MutexInfo> inventory;
  run_concurrency_pass(files, diags, &inventory);
  std::set<std::string> names;
  for (const MutexInfo& m : inventory) {
    names.insert(m.name);
    EXPECT_GT(m.acquisitions, 0) << m.name;
    EXPECT_FALSE(m.declared_at.empty()) << m.name;
  }
  EXPECT_EQ(names, (std::set<std::string>{"Pair::a_", "Pair::b_", "Recursive::m_"}));
}

// ---------------------------------------------------------- protocol pass

TEST(AnalyzerProtocol, UndispatchedVerbAndUncheckedJsonMatchGolden) {
  const LexedFile header = lex_file(fixture_path("protocol_verbs.hpp"));
  const LexedFile service = lex_file(fixture_path("protocol_dispatch_service.cpp"));
  const LexedFile router = lex_file(fixture_path("protocol_dispatch_router.cpp"));
  const LexedFile handler = lex_file(fixture_path("unchecked_json.cpp"));
  std::vector<Diagnostic> diags;
  run_protocol_pass(header, service, router, {handler}, diags);

  std::set<RuleLine> service_got;
  std::set<RuleLine> router_got;
  std::set<RuleLine> handler_got;
  for (const Diagnostic& d : diags) {
    EXPECT_FALSE(d.hint.empty()) << d.rule;
    if (d.file == service.path) service_got.insert({d.rule, d.line});
    if (d.file == router.path) router_got.insert({d.rule, d.line});
    if (d.file == handler.path) handler_got.insert({d.rule, d.line});
  }
  EXPECT_EQ(service_got, load_golden("protocol_dispatch_service.expect"));
  EXPECT_EQ(router_got, load_golden("protocol_dispatch_router.expect"));
  EXPECT_EQ(handler_got, load_golden("unchecked_json.expect"));
  // The missing verb is named in the message so the fix is obvious.
  bool saw_reap = false;
  for (const Diagnostic& d : diags) {
    if (d.rule == "RQS201" && d.message.find("\"reap\"") != std::string::npos) {
      saw_reap = true;
    }
  }
  EXPECT_TRUE(saw_reap);
}

TEST(AnalyzerProtocol, MissingVerbTableIsItselfADiagnostic) {
  // A header with no kServiceVerbs/kRouterVerbs cannot prove exhaustiveness.
  const LexedFile empty_header = lex_file(fixture_path("unchecked_json.cpp"));
  const LexedFile service = lex_file(fixture_path("protocol_dispatch_service.cpp"));
  const LexedFile router = lex_file(fixture_path("protocol_dispatch_router.cpp"));
  std::vector<Diagnostic> diags;
  run_protocol_pass(empty_header, service, router, {}, diags);
  int missing_tables = 0;
  for (const Diagnostic& d : diags) {
    if (d.rule == "RQS201" && d.message.find("not found") != std::string::npos) {
      ++missing_tables;
    }
  }
  EXPECT_EQ(missing_tables, 2);
}

// ------------------------------------------------------------- whole tree

TEST(AnalyzerTree, CleanTreeProducesZeroDiagnostics) {
  AnalyzerConfig config;
  config.root = RQSIM_REPO_ROOT;
  config.want_inventory = true;
  const AnalysisResult result = run_analysis(config);
  for (const Diagnostic& d : result.diagnostics) {
    ADD_FAILURE() << render(d);
  }
  EXPECT_GT(result.files_scanned, 100);
}

TEST(AnalyzerTree, EveryServiceRouterTelemetryMutexHasAcquisitionSites) {
  // Acceptance: the lock-order pass covers all mutexes declared in
  // src/service/, src/router/ and src/telemetry/ — a mutex the scanner can
  // see declared but never sees locked would make the pass vacuous there.
  AnalyzerConfig config;
  config.root = RQSIM_REPO_ROOT;
  config.want_inventory = true;
  const AnalysisResult result = run_analysis(config);
  int covered = 0;
  for (const MutexInfo& m : result.inventory) {
    const bool in_scope = m.declared_at.find("src/service/") != std::string::npos ||
                          m.declared_at.find("src/router/") != std::string::npos ||
                          m.declared_at.find("src/telemetry/") != std::string::npos;
    if (!in_scope) continue;
    ++covered;
    EXPECT_GT(m.acquisitions, 0) << m.name << " declared at " << m.declared_at
                                 << " has no visible acquisition sites";
  }
  // The service, router and telemetry subsystems each keep named mutexes.
  EXPECT_GE(covered, 8);
}

}  // namespace
}  // namespace rqsim::analyze
