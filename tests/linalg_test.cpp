#include <gtest/gtest.h>

#include <cmath>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "linalg/pauli.hpp"

namespace rqsim {
namespace {

constexpr double kTol = 1e-12;

// ---------------------------------------------------------------- Mat2/Mat4

TEST(Mat2, IdentityMultiplication) {
  Rng rng(1);
  const Mat2 u = random_unitary2(rng);
  EXPECT_LT(frobenius_distance(u * Mat2::identity(), u), kTol);
  EXPECT_LT(frobenius_distance(Mat2::identity() * u, u), kTol);
}

TEST(Mat2, DaggerIsInverseForUnitary) {
  Rng rng(2);
  const Mat2 u = random_unitary2(rng);
  EXPECT_LT(frobenius_distance(u * u.dagger(), Mat2::identity()), 1e-10);
  EXPECT_LT(frobenius_distance(u.dagger() * u, Mat2::identity()), 1e-10);
}

TEST(Mat2, AdditionAndScaling) {
  Mat2 a = Mat2::identity();
  const Mat2 b = a * cplx(2.0, 0.0);
  const Mat2 c = a + b;
  EXPECT_LT(frobenius_distance(c, a * cplx(3.0, 0.0)), kTol);
}

TEST(Mat4, IdentityMultiplication) {
  Rng rng(3);
  const Mat4 u = random_unitary4(rng);
  EXPECT_LT(frobenius_distance(u * Mat4::identity(), u), kTol);
}

TEST(Mat4, DaggerIsInverseForUnitary) {
  Rng rng(4);
  const Mat4 u = random_unitary4(rng);
  EXPECT_LT(frobenius_distance(u * u.dagger(), Mat4::identity()), 1e-10);
}

TEST(RandomUnitary, IsUnitary) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(is_unitary(random_unitary2(rng)));
    EXPECT_TRUE(is_unitary(random_unitary4(rng)));
  }
}

TEST(Kron, PauliXX) {
  const Mat4 xx = kron(pauli_matrix(Pauli::X), pauli_matrix(Pauli::X));
  // XX is the anti-diagonal permutation.
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      const cplx expected = (r + c == 3) ? cplx(1.0) : cplx(0.0);
      EXPECT_LT(std::abs(xx.at(r, c) - expected), kTol);
    }
  }
}

TEST(Kron, IdentityKronIdentity) {
  const Mat4 ii = kron(pauli_matrix(Pauli::I), pauli_matrix(Pauli::I));
  EXPECT_LT(frobenius_distance(ii, Mat4::identity()), kTol);
}

TEST(Kron, MixedProductProperty) {
  // (A ⊗ B)(C ⊗ D) = AC ⊗ BD.
  Rng rng(6);
  const Mat2 a = random_unitary2(rng);
  const Mat2 b = random_unitary2(rng);
  const Mat2 c = random_unitary2(rng);
  const Mat2 d = random_unitary2(rng);
  EXPECT_LT(frobenius_distance(kron(a, b) * kron(c, d), kron(a * c, b * d)), 1e-10);
}

TEST(GlobalPhase, DetectsPhaseEquality) {
  Rng rng(7);
  const Mat2 u = random_unitary2(rng);
  const Mat2 v = u * std::exp(cplx(0.0, 1.234));
  EXPECT_TRUE(equal_up_to_global_phase(u, v));
  EXPECT_TRUE(equal_up_to_global_phase(v, u));
  const Mat2 w = random_unitary2(rng);
  EXPECT_FALSE(equal_up_to_global_phase(u, w));
}

TEST(GlobalPhase, Mat4) {
  Rng rng(8);
  const Mat4 u = random_unitary4(rng);
  EXPECT_TRUE(equal_up_to_global_phase(u, u * std::exp(cplx(0.0, -2.5))));
  EXPECT_FALSE(equal_up_to_global_phase(u, random_unitary4(rng)));
}

// ---------------------------------------------------------------- Pauli

TEST(Pauli, SquaresToIdentity) {
  for (Pauli p : {Pauli::X, Pauli::Y, Pauli::Z}) {
    const Mat2 m = pauli_matrix(p);
    EXPECT_LT(frobenius_distance(m * m, Mat2::identity()), kTol);
  }
}

TEST(Pauli, CommutationXYisiZ) {
  const Mat2 xy = pauli_matrix(Pauli::X) * pauli_matrix(Pauli::Y);
  const Mat2 iz = pauli_matrix(Pauli::Z) * cplx(0.0, 1.0);
  EXPECT_LT(frobenius_distance(xy, iz), kTol);
}

TEST(Pauli, Hermitian) {
  for (Pauli p : {Pauli::X, Pauli::Y, Pauli::Z}) {
    const Mat2 m = pauli_matrix(p);
    EXPECT_LT(frobenius_distance(m, m.dagger()), kTol);
  }
}

TEST(Pauli, Names) {
  EXPECT_EQ(pauli_name(Pauli::I), "I");
  EXPECT_EQ(pauli_name(Pauli::X), "X");
  EXPECT_EQ(pauli_name(Pauli::Y), "Y");
  EXPECT_EQ(pauli_name(Pauli::Z), "Z");
}

TEST(PauliPair, IndexRoundTrip) {
  for (std::uint8_t i = 0; i < 16; ++i) {
    const PauliPair pair = pauli_pair_from_index(i);
    EXPECT_EQ(pauli_pair_index(pair), i);
  }
}

TEST(PauliPair, NthSkipsIdentity) {
  for (int k = 0; k < kNumPairPaulis; ++k) {
    const PauliPair pair = nth_pair_pauli(k);
    EXPECT_FALSE(pair.p0 == Pauli::I && pair.p1 == Pauli::I);
  }
  EXPECT_EQ(pauli_pair_name(nth_pair_pauli(0)), "IX");
  EXPECT_EQ(pauli_pair_name(nth_pair_pauli(14)), "ZZ");
}

TEST(PauliPair, MatrixIsKron) {
  for (int k = 0; k < kNumPairPaulis; ++k) {
    const PauliPair pair = nth_pair_pauli(k);
    const Mat4 m = pauli_pair_matrix(pair);
    EXPECT_LT(frobenius_distance(m, kron(pauli_matrix(pair.p1), pauli_matrix(pair.p0))),
              kTol);
    EXPECT_TRUE(is_unitary(m));
  }
}

TEST(Pauli, NthSinglePauli) {
  EXPECT_EQ(nth_single_pauli(0), Pauli::X);
  EXPECT_EQ(nth_single_pauli(1), Pauli::Y);
  EXPECT_EQ(nth_single_pauli(2), Pauli::Z);
}

// ---------------------------------------------------------------- DenseMatrix

TEST(DenseMatrix, IdentityApply) {
  const DenseMatrix id = DenseMatrix::identity(8);
  std::vector<cplx> v(8);
  for (std::size_t i = 0; i < 8; ++i) {
    v[i] = cplx(static_cast<double>(i), -1.0);
  }
  const auto w = id.apply(v);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_LT(std::abs(w[i] - v[i]), kTol);
  }
}

TEST(DenseMatrix, Lift1MatchesKronForTwoQubits) {
  // lift1(g, 1) on 2 qubits must equal g ⊗ I (qubit 1 is the high bit).
  Rng rng(9);
  const Mat2 g = random_unitary2(rng);
  const DenseMatrix lifted = DenseMatrix::lift1(g, 1, 2);
  const Mat4 expected = kron(g, Mat2::identity());
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_LT(std::abs(lifted.at(r, c) - expected.at(r, c)), kTol);
    }
  }
}

TEST(DenseMatrix, Lift1LowQubit) {
  Rng rng(10);
  const Mat2 g = random_unitary2(rng);
  const DenseMatrix lifted = DenseMatrix::lift1(g, 0, 2);
  const Mat4 expected = kron(Mat2::identity(), g);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_LT(std::abs(lifted.at(r, c) - expected.at(r, c)), kTol);
    }
  }
}

TEST(DenseMatrix, Lift2IdentityOrderConvention) {
  // lift2(m, q1=1, q0=0) on exactly 2 qubits must reproduce m itself.
  Rng rng(11);
  const Mat4 m = random_unitary4(rng);
  const DenseMatrix lifted = DenseMatrix::lift2(m, 1, 0, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_LT(std::abs(lifted.at(r, c) - m.at(r, c)), kTol);
    }
  }
}

TEST(DenseMatrix, Lift2SwappedOperands) {
  // Swapping the operand order conjugates by SWAP.
  Rng rng(12);
  const Mat4 m = random_unitary4(rng);
  const DenseMatrix a = DenseMatrix::lift2(m, 1, 0, 2);
  const DenseMatrix b = DenseMatrix::lift2(m, 0, 1, 2);
  Mat4 swap_mat;
  swap_mat.at(0, 0) = 1.0;
  swap_mat.at(1, 2) = 1.0;
  swap_mat.at(2, 1) = 1.0;
  swap_mat.at(3, 3) = 1.0;
  const DenseMatrix s = DenseMatrix::lift2(swap_mat, 1, 0, 2);
  const DenseMatrix conj = s * b * s;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_LT(std::abs(a.at(r, c) - conj.at(r, c)), kTol);
    }
  }
}

TEST(DenseMatrix, MultiplicationAssociativity) {
  Rng rng(13);
  const DenseMatrix a = DenseMatrix::lift1(random_unitary2(rng), 0, 3);
  const DenseMatrix b = DenseMatrix::lift1(random_unitary2(rng), 1, 3);
  const DenseMatrix c = DenseMatrix::lift1(random_unitary2(rng), 2, 3);
  const DenseMatrix left = (a * b) * c;
  const DenseMatrix right = a * (b * c);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t col = 0; col < 8; ++col) {
      EXPECT_LT(std::abs(left.at(r, col) - right.at(r, col)), 1e-10);
    }
  }
}

}  // namespace
}  // namespace rqsim
