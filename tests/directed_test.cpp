// Directed coupling constraints: the historical ibmqx2 only ran CX in one
// orientation per edge; reversed CXs need an H sandwich. These tests cover
// the direction-aware router — including the semantics proof.
#include <gtest/gtest.h>

#include "bench_circuits/grover.hpp"
#include "common/bits.hpp"
#include "sim/kernels.hpp"
#include "transpile/coupling.hpp"
#include "transpile/decompose.hpp"
#include "transpile/router.hpp"
#include "transpile/transpiler.hpp"

namespace rqsim {
namespace {

TEST(Directed, CxAllowedOrientation) {
  const CouplingMap m = CouplingMap::yorktown_directed();
  EXPECT_TRUE(m.is_directed());
  EXPECT_TRUE(m.cx_allowed(1, 0));
  EXPECT_FALSE(m.cx_allowed(0, 1));
  EXPECT_TRUE(m.cx_allowed(3, 4));
  EXPECT_FALSE(m.cx_allowed(4, 3));
  // Undirected connectivity unchanged (routing still sees the bow-tie).
  EXPECT_TRUE(m.connected(0, 1));
  EXPECT_TRUE(m.connected(1, 0));
  EXPECT_FALSE(m.connected(0, 3));
}

TEST(Directed, UndirectedMapAllowsBoth) {
  const CouplingMap m = CouplingMap::yorktown();
  EXPECT_FALSE(m.is_directed());
  EXPECT_TRUE(m.cx_allowed(0, 1));
  EXPECT_TRUE(m.cx_allowed(1, 0));
}

TEST(Directed, WrongWayCxGetsHSandwich) {
  Circuit c(2);
  c.cx(0, 1);  // 0->1 is NOT native on the directed map
  const RoutedCircuit routed = route_circuit(c, CouplingMap::yorktown_directed());
  EXPECT_TRUE(respects_coupling(routed.circuit, CouplingMap::yorktown_directed()));
  EXPECT_EQ(routed.circuit.count_kind(GateKind::CX), 1u);
  EXPECT_EQ(routed.circuit.count_kind(GateKind::H), 4u);
}

TEST(Directed, NativeOrientationUntouched) {
  Circuit c(2);
  c.cx(1, 0);  // native
  const RoutedCircuit routed = route_circuit(c, CouplingMap::yorktown_directed());
  EXPECT_EQ(routed.circuit.num_gates(), 1u);
}

TEST(Directed, SemanticsPreserved) {
  const CouplingMap coupling = CouplingMap::yorktown_directed();
  Circuit c(5);
  c.h(0);
  c.cx(0, 1);
  c.cx(0, 3);  // needs routing AND direction fixes
  c.cx(4, 3);
  c.u3(2, 0.3, 0.4, 0.5);
  const RoutedCircuit routed = route_circuit(c, coupling);
  EXPECT_TRUE(respects_coupling(routed.circuit, coupling));

  StateVector logical(5);
  for (const Gate& g : c.gates()) {
    apply_gate(logical, g);
  }
  StateVector physical(5);
  for (const Gate& g : routed.circuit.gates()) {
    apply_gate(physical, g);
  }
  StateVector permuted(5);
  for (std::uint64_t idx = 0; idx < logical.dim(); ++idx) {
    std::uint64_t mapped = 0;
    for (qubit_t lq = 0; lq < 5; ++lq) {
      mapped = set_bit(mapped, routed.final_mapping[lq], get_bit(idx, lq));
    }
    permuted[mapped] = logical[idx];
  }
  EXPECT_GT(permuted.fidelity(physical), 1.0 - 1e-10);
}

TEST(Directed, SingleGateCountsRiseTowardPaperTableI) {
  // The direction fixes add H gates, pushing single-qubit counts toward
  // the paper's (Enfield also paid direction corrections on this device).
  const Circuit grover = make_grover3(5, 2);
  const TranspileResult undirected = transpile(grover, CouplingMap::yorktown());
  const TranspileResult directed = transpile(grover, CouplingMap::yorktown_directed());
  EXPECT_GT(directed.circuit.count_single_qubit_gates(),
            undirected.circuit.count_single_qubit_gates());
  EXPECT_EQ(directed.circuit.count_kind(GateKind::CX),
            undirected.circuit.count_kind(GateKind::CX));
}

}  // namespace
}  // namespace rqsim
