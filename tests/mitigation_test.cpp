#include <gtest/gtest.h>

#include <cmath>

#include "bench_circuits/ghz.hpp"
#include "common/error.hpp"
#include "dm/density_matrix.hpp"
#include "mitigation/readout.hpp"
#include "noise/noise_model.hpp"
#include "sched/runner.hpp"
#include "sim/kernels.hpp"

namespace rqsim {
namespace {

TEST(Mitigation, HistogramConversion) {
  OutcomeHistogram h;
  h[0] = 30;
  h[3] = 70;
  const auto probs = histogram_to_probabilities(h, 2);
  ASSERT_EQ(probs.size(), 4u);
  EXPECT_DOUBLE_EQ(probs[0], 0.3);
  EXPECT_DOUBLE_EQ(probs[3], 0.7);
  EXPECT_DOUBLE_EQ(probs[1], 0.0);
  EXPECT_THROW(histogram_to_probabilities({}, 2), Error);
  OutcomeHistogram wide;
  wide[9] = 1;
  EXPECT_THROW(histogram_to_probabilities(wide, 2), Error);
}

TEST(Mitigation, InverseUndoesFlipChannelExactly) {
  const std::vector<double> original = {0.4, 0.1, 0.3, 0.2};
  const std::vector<double> rates = {0.07, 0.21};
  const auto flipped = apply_measurement_flips(original, rates);
  const auto recovered = invert_measurement_flips(flipped, rates);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(recovered[i], original[i], 1e-12) << i;
  }
}

TEST(Mitigation, HalfFlipRejected) {
  EXPECT_THROW(invert_measurement_flips({0.5, 0.5}, {0.5}), Error);
}

TEST(Mitigation, RecoversIdealDistributionUnderPureReadoutNoise) {
  // GHZ with ONLY measurement errors: mitigation should bring the sampled
  // distribution very close to the ideal 50/50 poles.
  const Circuit c = make_ghz(3);
  NoiseModel noise = NoiseModel::uniform(3, 0.0, 0.0, 0.12);
  NoisyRunConfig config;
  config.num_trials = 200000;
  config.seed = 4;
  const NoisyRunResult run = run_noisy(c, noise, config);

  std::vector<double> rates(c.num_measured());
  for (std::size_t bit = 0; bit < rates.size(); ++bit) {
    rates[bit] = noise.measurement_flip_rate(c.measured_qubits()[bit]);
  }
  const auto raw = histogram_to_probabilities(run.histogram, 3);
  const auto mitigated = mitigate_readout(run.histogram, rates);

  auto tvd_to_ideal = [](const std::vector<double>& p) {
    double acc = std::abs(p[0] - 0.5) + std::abs(p[7] - 0.5);
    for (std::size_t i = 1; i < 7; ++i) {
      acc += p[i];
    }
    return acc / 2.0;
  };
  EXPECT_GT(tvd_to_ideal(raw), 0.15);        // readout noise clearly visible
  EXPECT_LT(tvd_to_ideal(mitigated), 0.01);  // and gone after mitigation
}

TEST(Mitigation, ImprovesButCannotRemoveGateNoise) {
  // With gate noise present, mitigation removes the readout component only.
  const Circuit c = make_ghz(3);
  NoiseModel noisy = NoiseModel::uniform(3, 0.01, 0.03, 0.10);
  NoiseModel gates_only = NoiseModel::uniform(3, 0.01, 0.03, 0.0);

  const std::vector<double> gate_limit = exact_noisy_distribution(c, gates_only);

  NoisyRunConfig config;
  config.num_trials = 150000;
  config.seed = 6;
  const NoisyRunResult run = run_noisy(c, noisy, config);
  std::vector<double> rates(c.num_measured());
  for (std::size_t bit = 0; bit < rates.size(); ++bit) {
    rates[bit] = noisy.measurement_flip_rate(c.measured_qubits()[bit]);
  }
  const auto raw = histogram_to_probabilities(run.histogram, 3);
  const auto mitigated = mitigate_readout(run.histogram, rates);

  auto tvd = [&](const std::vector<double>& p) {
    double acc = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      acc += std::abs(p[i] - gate_limit[i]);
    }
    return acc / 2.0;
  };
  // Mitigated distribution should approach the gate-noise-only limit.
  EXPECT_LT(tvd(mitigated), tvd(raw) / 2.0);
  EXPECT_LT(tvd(mitigated), 0.01);
}

}  // namespace
}  // namespace rqsim
