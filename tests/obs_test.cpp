#include <gtest/gtest.h>

#include <cmath>

#include "bench_circuits/qft.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "dm/density_matrix.hpp"
#include "noise/noise_model.hpp"
#include "obs/pauli_string.hpp"
#include "sched/runner.hpp"
#include "sim/kernels.hpp"
#include "transpile/decompose.hpp"

namespace rqsim {
namespace {

constexpr double kTol = 1e-12;

TEST(PauliString, LabelRoundTrip) {
  const PauliString p = PauliString::from_label("XIZY");
  ASSERT_EQ(p.factors().size(), 3u);
  EXPECT_EQ(p.factors()[0].first, 0u);
  EXPECT_EQ(p.factors()[0].second, Pauli::Y);
  EXPECT_EQ(p.factors()[1].first, 1u);
  EXPECT_EQ(p.factors()[1].second, Pauli::Z);
  EXPECT_EQ(p.factors()[2].first, 3u);
  EXPECT_EQ(p.factors()[2].second, Pauli::X);
  EXPECT_EQ(p.to_label(4), "XIZY");
  EXPECT_EQ(p.to_label(5), "IXIZY");
  EXPECT_EQ(p.min_qubits(), 4u);
}

TEST(PauliString, IdentityAndValidation) {
  const PauliString id = PauliString::from_label("III");
  EXPECT_TRUE(id.is_identity());
  EXPECT_EQ(id.min_qubits(), 0u);
  EXPECT_THROW(PauliString::from_label("XQZ"), Error);
  EXPECT_THROW(PauliString({{0, Pauli::X}, {0, Pauli::Z}}), Error);
  EXPECT_THROW(PauliString::from_label("X").to_label(0), Error);
}

TEST(Expectation, ComputationalBasisZ) {
  StateVector s(2);  // |00⟩
  EXPECT_NEAR(expectation(s, PauliString::from_label("IZ")), 1.0, kTol);
  EXPECT_NEAR(expectation(s, PauliString::from_label("ZZ")), 1.0, kTol);
  apply_x(s, 0);  // |01⟩
  EXPECT_NEAR(expectation(s, PauliString::from_label("IZ")), -1.0, kTol);
  EXPECT_NEAR(expectation(s, PauliString::from_label("ZI")), 1.0, kTol);
  EXPECT_NEAR(expectation(s, PauliString::from_label("ZZ")), -1.0, kTol);
}

TEST(Expectation, PlusStateX) {
  StateVector s(1);
  apply_h(s, 0);
  EXPECT_NEAR(expectation(s, PauliString::from_label("X")), 1.0, kTol);
  EXPECT_NEAR(expectation(s, PauliString::from_label("Z")), 0.0, kTol);
  EXPECT_NEAR(expectation(s, PauliString::from_label("Y")), 0.0, kTol);
}

TEST(Expectation, BellStateCorrelations) {
  StateVector s(2);
  apply_h(s, 0);
  apply_cx(s, 0, 1);
  EXPECT_NEAR(expectation(s, PauliString::from_label("XX")), 1.0, kTol);
  EXPECT_NEAR(expectation(s, PauliString::from_label("ZZ")), 1.0, kTol);
  EXPECT_NEAR(expectation(s, PauliString::from_label("YY")), -1.0, kTol);
  EXPECT_NEAR(expectation(s, PauliString::from_label("ZI")), 0.0, kTol);
  EXPECT_NEAR(expectation(s, PauliString::from_label("II")), 1.0, kTol);
}

TEST(Expectation, DensityMatrixMatchesPureState) {
  Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.u3(2, 0.7, 0.2, 1.4);
  c.cx(1, 2);
  StateVector psi(3);
  DensityMatrix rho(3);
  for (const Gate& g : c.gates()) {
    apply_gate(psi, g);
    rho.apply_gate(g);
  }
  for (const char* label : {"ZZZ", "XIX", "YZI", "IIZ", "XYZ"}) {
    const PauliString p = PauliString::from_label(label);
    EXPECT_NEAR(expectation(psi, p), expectation(rho, p), 1e-9) << label;
  }
}

TEST(Expectation, DepolarizedStateShrinksTowardZero) {
  DensityMatrix rho(1);
  rho.apply_gate(Gate::make1(GateKind::H, 0));
  const PauliString x = PauliString::from_label("X");
  EXPECT_NEAR(expectation(rho, x), 1.0, kTol);
  rho.apply_depolarizing1(0, 0.3);
  // Symmetric depolarizing with total probability p scales every Bloch
  // component by (1 - 4p/3).
  EXPECT_NEAR(expectation(rho, x), 1.0 - 4.0 * 0.3 / 3.0, 1e-9);
}

TEST(NoisyObservables, CachedMatchesExactChannel) {
  const Circuit c = decompose_to_cx_basis(make_qft(3));
  const NoiseModel noise = NoiseModel::uniform(3, 0.02, 0.08, 0.0);

  // Exact: density-matrix channel evolution.
  const Layering layering = layer_circuit(c);
  DensityMatrix rho(3);
  for (layer_index_t l = 0; l < layering.num_layers(); ++l) {
    for (gate_index_t g : layering.layers[l]) {
      rho.apply_gate(c.gates()[g]);
    }
    for (gate_index_t g : layering.layers[l]) {
      const Gate& gate = c.gates()[g];
      if (gate.arity() == 1) {
        rho.apply_depolarizing1(gate.qubits[0], noise.single_qubit_rate(gate.qubits[0]));
      } else {
        rho.apply_depolarizing2(gate.qubits[0], gate.qubits[1],
                                noise.two_qubit_rate(gate.qubits[0], gate.qubits[1]));
      }
    }
  }

  NoisyRunConfig config;
  config.num_trials = 150000;
  config.seed = 5;
  config.observables = {PauliString::from_label("ZII"), PauliString::from_label("IZZ"),
                        PauliString::from_label("XXI")};
  const NoisyRunResult mc = run_noisy(c, noise, config);
  ASSERT_EQ(mc.observable_means.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(mc.observable_means[k], expectation(rho, config.observables[k]), 0.01)
        << config.observables[k].to_label(3);
  }
}

TEST(NoisyObservables, BaselineAndCachedAgree) {
  // Observable means are deterministic given the trial set (no sampling
  // involved), so baseline and cached runs with the same seed must agree
  // to floating-point accumulation accuracy.
  const Circuit c = decompose_to_cx_basis(make_qft(3));
  const NoiseModel noise = NoiseModel::uniform(3, 0.03, 0.1, 0.05);
  NoisyRunConfig config;
  config.num_trials = 5000;
  config.seed = 17;
  config.observables = {PauliString::from_label("ZZI"), PauliString::from_label("IXY")};

  config.mode = ExecutionMode::kBaseline;
  const NoisyRunResult base = run_noisy(c, noise, config);
  config.mode = ExecutionMode::kCachedReordered;
  const NoisyRunResult cached = run_noisy(c, noise, config);
  ASSERT_EQ(base.observable_means.size(), cached.observable_means.size());
  for (std::size_t k = 0; k < base.observable_means.size(); ++k) {
    EXPECT_NEAR(base.observable_means[k], cached.observable_means[k], 1e-9);
  }
}

TEST(NoisyObservables, OversizedObservableRejected) {
  const Circuit c = decompose_to_cx_basis(make_qft(2));
  const NoiseModel noise = NoiseModel::uniform(2, 0.01, 0.02, 0.0);
  NoisyRunConfig config;
  config.observables = {PauliString::from_label("ZIII")};
  EXPECT_THROW(run_noisy(c, noise, config), Error);
}

}  // namespace
}  // namespace rqsim
