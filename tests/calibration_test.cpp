#include <gtest/gtest.h>

#include "common/error.hpp"
#include "noise/calibration.hpp"
#include "noise/devices.hpp"

namespace rqsim {
namespace {

constexpr const char* kSample = R"(
# a 3-qubit line
qubit,0,1.4e-3,2.1e-2
qubit,1,1.2e-3,1.9e-2,5e-4
qubit,2,2.0e-3,3.0e-2

edge,0,1,3.1e-2
edge,1,2,2.5e-2
)";

TEST(Calibration, ParsesSample) {
  const DeviceModel dev = device_from_calibration_csv(kSample, "sample");
  EXPECT_EQ(dev.name, "sample");
  EXPECT_EQ(dev.noise.num_qubits(), 3u);
  EXPECT_DOUBLE_EQ(dev.noise.single_qubit_rate(0), 1.4e-3);
  EXPECT_DOUBLE_EQ(dev.noise.measurement_flip_rate(2), 3.0e-2);
  EXPECT_DOUBLE_EQ(dev.noise.idle_pauli_rate(1), 5e-4);
  EXPECT_DOUBLE_EQ(dev.noise.idle_pauli_rate(0), 0.0);
  EXPECT_DOUBLE_EQ(dev.noise.two_qubit_rate(0, 1), 3.1e-2);
  EXPECT_DOUBLE_EQ(dev.noise.two_qubit_rate(2, 1), 2.5e-2);
  EXPECT_TRUE(dev.coupling.connected(0, 1));
  EXPECT_FALSE(dev.coupling.connected(0, 2));
  EXPECT_TRUE(dev.coupling.is_connected_graph());
}

TEST(Calibration, RoundTripThroughCsv) {
  const DeviceModel original = yorktown_device();
  const std::string csv = device_to_calibration_csv(original);
  const DeviceModel parsed = device_from_calibration_csv(csv);
  ASSERT_EQ(parsed.noise.num_qubits(), original.noise.num_qubits());
  for (qubit_t q = 0; q < 5; ++q) {
    EXPECT_DOUBLE_EQ(parsed.noise.single_qubit_rate(q),
                     original.noise.single_qubit_rate(q));
    EXPECT_DOUBLE_EQ(parsed.noise.measurement_flip_rate(q),
                     original.noise.measurement_flip_rate(q));
  }
  for (const auto& [a, b] : original.coupling.edges()) {
    EXPECT_DOUBLE_EQ(parsed.noise.two_qubit_rate(a, b),
                     original.noise.two_qubit_rate(a, b));
    EXPECT_TRUE(parsed.coupling.connected(a, b));
  }
}

TEST(Calibration, Errors) {
  EXPECT_THROW(device_from_calibration_csv(""), Error);
  EXPECT_THROW(device_from_calibration_csv("bogus,1,2,3\n"), Error);
  EXPECT_THROW(device_from_calibration_csv("qubit,0,abc,0.1\n"), Error);
  EXPECT_THROW(device_from_calibration_csv("qubit,0,2.0,0.1\n"), Error);  // rate > 1
  EXPECT_THROW(device_from_calibration_csv("qubit,0,0.1\n"), Error);      // short row
  // Duplicate qubit.
  EXPECT_THROW(device_from_calibration_csv("qubit,0,0.1,0.1\nqubit,0,0.1,0.1\n"), Error);
  // Non-contiguous indices.
  EXPECT_THROW(device_from_calibration_csv("qubit,0,0.1,0.1\nqubit,2,0.1,0.1\n"), Error);
  // Edge to unknown qubit / self-loop.
  EXPECT_THROW(device_from_calibration_csv("qubit,0,0.1,0.1\nedge,0,5,0.1\n"), Error);
  EXPECT_THROW(device_from_calibration_csv("qubit,0,0.1,0.1\nedge,0,0,0.1\n"), Error);
  EXPECT_THROW(load_calibration_csv("/nonexistent_xyz.csv"), Error);
}

}  // namespace
}  // namespace rqsim
