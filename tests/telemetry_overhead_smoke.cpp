// Disabled-telemetry overhead smoke (plain main, no gtest).
//
// The registry's promise: with the runtime flag off, every record collapses
// to one relaxed atomic-bool load and a branch, so an instrumented build
// running with telemetry disabled is indistinguishable from a build without
// instrumentation. A true A/B against an uninstrumented binary needs two
// builds; this smoke bounds the same quantity in-process:
//
//  1. microbenchmark the disabled record path and assert its per-op cost is
//     a few nanoseconds — orders of magnitude below a matvec op, so even a
//     record per gate op cannot shift a run's wall time measurably;
//  2. run the same workload with telemetry disabled and enabled (best of
//     several reps) and warn if the disabled runs are slower beyond
//     scheduler noise — the disabled path should never cost more than the
//     full recording path.
//
// The microbenchmark carries the real assertion; the macro comparison is
// advisory (print-only) because two wall-clock measurements on shared CI
// machines can diverge on a scheduling hiccup without any regression.
#include <cstdio>

#include "bench_circuits/qft.hpp"
#include "noise/noise_model.hpp"
#include "sched/runner.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/telemetry.hpp"
#include "transpile/decompose.hpp"

namespace {

int failures = 0;

#define SMOKE_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond);  \
      ++failures;                                                           \
    }                                                                       \
  } while (0)

namespace telem = rqsim::telemetry;

double best_run_ms(const rqsim::Circuit& circuit, const rqsim::NoiseModel& noise,
                   int reps) {
  rqsim::NoisyRunConfig config;
  config.num_trials = 512;
  config.seed = 7;
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const rqsim::telemetry::Stopwatch stopwatch;
    const rqsim::NoisyRunResult result = rqsim::run_noisy(circuit, noise, config);
    const double ms = stopwatch.elapsed_ms();
    SMOKE_CHECK(result.ops > 0);
    if (rep == 0 || ms < best) {
      best = ms;
    }
  }
  return best;
}

void check_disabled_record_cost() {
  telem::set_enabled(false);
  telem::Counter counter("overhead.disabled_counter");
  telem::Histogram hist("overhead.disabled_hist");
  constexpr std::uint64_t kIterations = 20'000'000;
  const telem::Stopwatch stopwatch;
  for (std::uint64_t i = 0; i < kIterations; ++i) {
    counter.add(i);
    hist.record(i);
  }
  const double ms = stopwatch.elapsed_ms();
  telem::set_enabled(true);
  const double ns_per_record = ms * 1e6 / (2.0 * kIterations);
  std::printf("disabled record path: %.2f ns/record\n", ns_per_record);
  // A relaxed load + branch is ~1 ns; 25 ns flags a lock or a fence having
  // crept into the disabled path while staying robust to slow CI hosts.
  SMOKE_CHECK(ns_per_record < 25.0);
  // Nothing may have been recorded.
  SMOKE_CHECK(counter.value() == 0);
}

void check_disabled_run_not_slower() {
  const rqsim::Circuit circuit = rqsim::decompose_to_cx_basis(rqsim::make_qft(5));
  const rqsim::NoiseModel noise = rqsim::NoiseModel::uniform(5, 0.01, 0.04, 0.02);

  telem::set_enabled(true);
  const double enabled_ms = best_run_ms(circuit, noise, 5);
  telem::set_enabled(false);
  const double disabled_ms = best_run_ms(circuit, noise, 5);
  telem::set_enabled(true);
  std::printf("run_noisy qft5/512: enabled %.2f ms, disabled %.2f ms\n",
              enabled_ms, disabled_ms);
  // Advisory only: two wall-clock measurements on a shared CI host can
  // diverge on a scheduling hiccup even with best-of-N, so a failed
  // comparison here prints a warning instead of failing the suite. The
  // microbenchmark above is the enforced gate on the disabled path.
  if (disabled_ms > enabled_ms * 1.5 + 5.0) {
    std::printf(
        "WARNING: disabled run slower than enabled beyond noise bound "
        "(%.2f ms > %.2f ms * 1.5 + 5.0) — advisory only, likely "
        "scheduler noise; investigate if persistent\n",
        disabled_ms, enabled_ms);
  }
}

}  // namespace

int main() {
  if (!telem::compiled()) {
    std::printf("telemetry_overhead_smoke: telemetry compiled out, nothing to do\n");
    return 0;
  }
  check_disabled_record_cost();
  check_disabled_run_not_slower();
  if (failures == 0) {
    std::printf("telemetry_overhead_smoke: all checks passed\n");
    return 0;
  }
  std::fprintf(stderr, "telemetry_overhead_smoke: %d check(s) failed\n", failures);
  return 1;
}
