#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "circuit/gate.hpp"
#include "circuit/layering.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace rqsim {
namespace {

// ---------------------------------------------------------------- Gate

TEST(Gate, ArityTable) {
  EXPECT_EQ(gate_arity(GateKind::H), 1);
  EXPECT_EQ(gate_arity(GateKind::U3), 1);
  EXPECT_EQ(gate_arity(GateKind::CX), 2);
  EXPECT_EQ(gate_arity(GateKind::SWAP), 2);
  EXPECT_EQ(gate_arity(GateKind::CCX), 3);
}

TEST(Gate, ParamCounts) {
  EXPECT_EQ(gate_num_params(GateKind::H), 0);
  EXPECT_EQ(gate_num_params(GateKind::RZ), 1);
  EXPECT_EQ(gate_num_params(GateKind::U2), 2);
  EXPECT_EQ(gate_num_params(GateKind::U3), 3);
  EXPECT_EQ(gate_num_params(GateKind::CP), 1);
}

TEST(Gate, MakeValidation) {
  EXPECT_THROW(Gate::make1(GateKind::CX, 0), Error);
  EXPECT_THROW(Gate::make2(GateKind::H, 0, 1), Error);
  EXPECT_THROW(Gate::make2(GateKind::CX, 1, 1), Error);
  EXPECT_THROW(Gate::make3(GateKind::CCX, 0, 1, 1), Error);
}

TEST(Gate, MatricesAreUnitary) {
  EXPECT_TRUE(is_unitary(gate_matrix1(Gate::make1(GateKind::H, 0))));
  EXPECT_TRUE(is_unitary(gate_matrix1(Gate::make1(GateKind::T, 0))));
  EXPECT_TRUE(is_unitary(gate_matrix1(Gate::make1(GateKind::U3, 0, 0.3, 1.1, -0.7))));
  EXPECT_TRUE(is_unitary(gate_matrix1(Gate::make1(GateKind::RX, 0, 2.2))));
  EXPECT_TRUE(is_unitary(gate_matrix2(Gate::make2(GateKind::CX, 0, 1))));
  EXPECT_TRUE(is_unitary(gate_matrix2(Gate::make2(GateKind::CP, 0, 1, 0.9))));
  EXPECT_TRUE(is_unitary(gate_matrix2(Gate::make2(GateKind::SWAP, 0, 1))));
}

TEST(Gate, SdgIsInverseOfS) {
  const Mat2 s = gate_matrix1(Gate::make1(GateKind::S, 0));
  const Mat2 sdg = gate_matrix1(Gate::make1(GateKind::Sdg, 0));
  EXPECT_LT(frobenius_distance(s * sdg, Mat2::identity()), 1e-12);
}

TEST(Gate, TSquaredIsS) {
  const Mat2 t = gate_matrix1(Gate::make1(GateKind::T, 0));
  const Mat2 s = gate_matrix1(Gate::make1(GateKind::S, 0));
  EXPECT_LT(frobenius_distance(t * t, s), 1e-12);
}

TEST(Gate, U3ReproducesNamedGates) {
  // H = e^{iπ/2}·u3(π/2, 0, π) up to global phase.
  const Mat2 h = gate_matrix1(Gate::make1(GateKind::H, 0));
  const Mat2 u = gate_matrix1(Gate::make1(GateKind::U3, 0, kPi / 2.0, 0.0, kPi));
  EXPECT_TRUE(equal_up_to_global_phase(h, u));
  // X = u3(π, 0, π).
  const Mat2 x = gate_matrix1(Gate::make1(GateKind::X, 0));
  const Mat2 ux = gate_matrix1(Gate::make1(GateKind::U3, 0, kPi, 0.0, kPi));
  EXPECT_TRUE(equal_up_to_global_phase(x, ux));
}

TEST(Gate, RZvsPhaseDifferByGlobalPhase) {
  const Mat2 rz = gate_matrix1(Gate::make1(GateKind::RZ, 0, 0.8));
  const Mat2 p = gate_matrix1(Gate::make1(GateKind::P, 0, 0.8));
  EXPECT_TRUE(equal_up_to_global_phase(rz, p));
}

TEST(Gate, DiagonalClassification) {
  EXPECT_TRUE(gate_is_diagonal(GateKind::Z));
  EXPECT_TRUE(gate_is_diagonal(GateKind::CP));
  EXPECT_FALSE(gate_is_diagonal(GateKind::H));
  EXPECT_FALSE(gate_is_diagonal(GateKind::CX));
}

TEST(Gate, CXMatrixConvention) {
  // First operand (control) is the high-order bit: |10⟩ -> |11⟩.
  const Mat4 cx = gate_matrix2(Gate::make2(GateKind::CX, 0, 1));
  EXPECT_EQ(cx.at(3, 2), cplx(1.0));
  EXPECT_EQ(cx.at(2, 3), cplx(1.0));
  EXPECT_EQ(cx.at(0, 0), cplx(1.0));
  EXPECT_EQ(cx.at(1, 1), cplx(1.0));
}

// ---------------------------------------------------------------- Circuit

TEST(Circuit, BuilderAndCounts) {
  Circuit c(3, "demo");
  c.h(0);
  c.cx(0, 1);
  c.t(1);
  c.cx(1, 2);
  c.u3(2, 0.1, 0.2, 0.3);
  EXPECT_EQ(c.num_gates(), 5u);
  EXPECT_EQ(c.count_single_qubit_gates(), 3u);
  EXPECT_EQ(c.count_kind(GateKind::CX), 2u);
  EXPECT_EQ(c.count_multi_qubit_gates(), 2u);
}

TEST(Circuit, RejectsBadOperands) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), Error);
  EXPECT_THROW(c.cx(0, 5), Error);
}

TEST(Circuit, RejectsBadSize) {
  EXPECT_THROW(Circuit(0), Error);
  EXPECT_THROW(Circuit(64), Error);
}

TEST(Circuit, MeasurementBookkeeping) {
  Circuit c(3);
  EXPECT_EQ(c.measure(2), 0u);
  EXPECT_EQ(c.measure(0), 1u);
  ASSERT_EQ(c.num_measured(), 2u);
  EXPECT_EQ(c.measured_qubits()[0], 2u);
  EXPECT_EQ(c.measured_qubits()[1], 0u);
  EXPECT_THROW(c.measure(2), Error);
  EXPECT_THROW(c.measure(3), Error);
}

TEST(Circuit, MeasureAll) {
  Circuit c(4);
  c.measure_all();
  EXPECT_EQ(c.num_measured(), 4u);
  for (qubit_t q = 0; q < 4; ++q) {
    EXPECT_EQ(c.measured_qubits()[q], q);
  }
}

TEST(Circuit, ValidatePasses) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.measure_all();
  EXPECT_NO_THROW(c.validate());
}

// ---------------------------------------------------------------- Layering

TEST(Layering, SerialChainOneGatePerLayer) {
  Circuit c(1);
  c.h(0);
  c.t(0);
  c.h(0);
  const Layering l = layer_circuit(c);
  EXPECT_EQ(l.num_layers(), 3u);
  EXPECT_TRUE(layering_is_valid(c, l));
}

TEST(Layering, ParallelGatesShareLayer) {
  Circuit c(4);
  c.h(0);
  c.h(1);
  c.h(2);
  c.h(3);
  const Layering l = layer_circuit(c);
  EXPECT_EQ(l.num_layers(), 1u);
  EXPECT_EQ(l.layers[0].size(), 4u);
  EXPECT_TRUE(layering_is_valid(c, l));
}

TEST(Layering, TwoQubitGateBlocksBothQubits) {
  Circuit c(3);
  c.cx(0, 1);
  c.h(0);  // must wait for the CX
  c.h(2);  // independent, goes to layer 0
  const Layering l = layer_circuit(c);
  EXPECT_EQ(l.layer_of_gate[0], 0u);
  EXPECT_EQ(l.layer_of_gate[1], 1u);
  EXPECT_EQ(l.layer_of_gate[2], 0u);
  EXPECT_TRUE(layering_is_valid(c, l));
}

TEST(Layering, AsapIsGreedyMinimal) {
  // A gate is placed exactly one layer after the latest of its operands'
  // previous gates — verify on a known diamond pattern.
  Circuit c(3);
  c.h(0);        // L0
  c.h(1);        // L0
  c.cx(0, 1);    // L1
  c.h(2);        // L0
  c.cx(1, 2);    // L2
  c.h(0);        // L2 (qubit 0 free after L1)
  const Layering l = layer_circuit(c);
  EXPECT_EQ(l.layer_of_gate[2], 1u);
  EXPECT_EQ(l.layer_of_gate[4], 2u);
  EXPECT_EQ(l.layer_of_gate[5], 2u);
  EXPECT_EQ(l.num_layers(), 3u);
  EXPECT_TRUE(layering_is_valid(c, l));
}

TEST(Layering, EmptyCircuit) {
  Circuit c(2);
  const Layering l = layer_circuit(c);
  EXPECT_EQ(l.num_layers(), 0u);
  EXPECT_TRUE(layering_is_valid(c, l));
}

TEST(Layering, ValidatorCatchesQubitClash) {
  Circuit c(2);
  c.h(0);
  c.h(0);
  Layering l = layer_circuit(c);
  // Corrupt: force both gates into layer 0.
  l.layer_of_gate[1] = 0;
  l.layers[0].push_back(1);
  l.layers.resize(1);
  EXPECT_FALSE(layering_is_valid(c, l));
}

}  // namespace
}  // namespace rqsim
