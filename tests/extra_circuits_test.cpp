#include <gtest/gtest.h>

#include <cmath>

#include "bench_circuits/adder.hpp"
#include "bench_circuits/ansatz.hpp"
#include "bench_circuits/ghz.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "noise/devices.hpp"
#include "sched/runner.hpp"
#include "sim/kernels.hpp"
#include "sim/measure.hpp"
#include "transpile/decompose.hpp"
#include "transpile/transpiler.hpp"

namespace rqsim {
namespace {

StateVector simulate(const Circuit& c) {
  StateVector s(c.num_qubits());
  for (const Gate& g : c.gates()) {
    apply_gate(s, g);
  }
  return s;
}

TEST(GHZ, ExactAmplitudes) {
  for (unsigned n : {2u, 3u, 5u, 8u}) {
    const Circuit c = make_ghz(n);
    const StateVector s = simulate(c);
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(s[0]), inv_sqrt2, 1e-12);
    EXPECT_NEAR(std::abs(s[s.dim() - 1]), inv_sqrt2, 1e-12);
    EXPECT_NEAR(s.norm_squared(), 1.0, 1e-12);
  }
}

TEST(GHZ, NoisyOutcomesConcentrateOnPoles) {
  const Circuit c = make_ghz(4);
  const DeviceModel dev = artificial_device(4, 1e-3);
  NoisyRunConfig config;
  config.num_trials = 8192;
  const NoisyRunResult result = run_noisy(c, dev.noise, config);
  std::uint64_t poles = 0;
  std::uint64_t total = 0;
  for (const auto& [outcome, count] : result.histogram) {
    total += count;
    if (outcome == 0 || outcome == 15) {
      poles += count;
    }
  }
  EXPECT_GT(static_cast<double>(poles) / static_cast<double>(total), 0.9);
}

TEST(Ansatz, ParameterCountAndStructure) {
  EXPECT_EQ(ansatz_num_parameters(4, 3), 24u);
  std::vector<double> params(24, 0.1);
  const Circuit c = make_hw_efficient_ansatz(4, 3, params);
  EXPECT_EQ(c.count_kind(GateKind::RY), 12u);
  EXPECT_EQ(c.count_kind(GateKind::RZ), 12u);
  EXPECT_EQ(c.count_kind(GateKind::CX), 9u);
  EXPECT_EQ(c.num_measured(), 0u);
  EXPECT_THROW(make_hw_efficient_ansatz(4, 3, std::vector<double>(7)), Error);
}

TEST(Ansatz, ZeroParametersIsIdentityOnComputationalBasis) {
  // ry(0) = rz(0) = I and the CX chain on |0…0⟩ does nothing.
  std::vector<double> params(ansatz_num_parameters(3, 2), 0.0);
  const Circuit c = make_hw_efficient_ansatz(3, 2, params);
  const StateVector s = simulate(c);
  EXPECT_NEAR(s.probability(0), 1.0, 1e-12);
}

TEST(Adder, ExhaustiveThreeBitSums) {
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      const Circuit c = decompose_to_cx_basis(make_cuccaro_adder(3, a, b));
      const StateVector s = simulate(c);
      const auto probs = measurement_probabilities(s, c.measured_qubits());
      const std::uint64_t expected = a + b;  // 4-bit result incl. carry
      EXPECT_NEAR(probs[expected], 1.0, 1e-9) << a << "+" << b;
    }
  }
}

TEST(Adder, FiveBitSpotChecks) {
  const std::pair<std::uint64_t, std::uint64_t> cases[] = {
      {0, 0}, {31, 31}, {17, 12}, {8, 25}};
  for (const auto& [a, b] : cases) {
    const Circuit c = decompose_to_cx_basis(make_cuccaro_adder(5, a, b));
    const StateVector s = simulate(c);
    const auto probs = measurement_probabilities(s, c.measured_qubits());
    EXPECT_NEAR(probs[a + b], 1.0, 1e-9) << a << "+" << b;
  }
}

TEST(Adder, Validation) {
  EXPECT_THROW(make_cuccaro_adder(0, 0, 0), Error);
  EXPECT_THROW(make_cuccaro_adder(9, 0, 0), Error);
  EXPECT_THROW(make_cuccaro_adder(3, 8, 0), Error);
}

TEST(Adder, SurvivesTranspilationToLinearDevice) {
  const Circuit c = make_cuccaro_adder(2, 2, 3);
  const CouplingMap coupling = CouplingMap::linear(6);
  const TranspileResult result = transpile(c, coupling);
  EXPECT_TRUE(respects_coupling(result.circuit, coupling));

  StateVector s(6);
  for (const Gate& g : result.circuit.gates()) {
    apply_gate(s, g);
  }
  const auto probs = measurement_probabilities(s, result.circuit.measured_qubits());
  EXPECT_NEAR(probs[5], 1.0, 1e-9);  // 2 + 3
}

TEST(Adder, NoisyModeStillFindsCorrectSum) {
  const Circuit c = decompose_to_cx_basis(make_cuccaro_adder(2, 1, 2));
  const DeviceModel dev = artificial_device(6, 5e-4);
  NoisyRunConfig config;
  config.num_trials = 4096;
  const NoisyRunResult result = run_noisy(c, dev.noise, config);
  std::uint64_t best_outcome = 0;
  std::uint64_t best_count = 0;
  for (const auto& [outcome, count] : result.histogram) {
    if (count > best_count) {
      best_count = count;
      best_outcome = outcome;
    }
  }
  EXPECT_EQ(best_outcome, 3u);
  EXPECT_LT(result.normalized_computation, 0.6);
}

}  // namespace
}  // namespace rqsim
