// Observability layer: histogram quantiles, the per-tenant SLO tracker,
// distributed-trace ids and retroactive complete events, multi-process
// trace merging with clock-skew correction, Prometheus text exposition —
// and the fleet acceptance test: jobs submitted through a 2-backend router
// produce one merged trace whose router-admission, queue-wait, batch-plan
// and tree-executor spans share the submitting job's trace_id, with the
// same trace_ids surfacing as SLO exemplars in `stats` JSON and
// `stats --prom` output.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "report/prom.hpp"
#include "report/trace_merge.hpp"
#include "router/router.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace rqsim {
namespace {

// ---------------------------------------------------------------------------
// histogram_quantile (pure data; always compiled).
// ---------------------------------------------------------------------------

TEST(HistogramQuantile, EmptyAndZeroBuckets) {
  std::vector<std::uint64_t> buckets(telemetry::kHistogramBuckets, 0);
  EXPECT_EQ(telemetry::histogram_quantile(buckets, 0, 0.5), 0.0);

  buckets[0] = 10;  // ten exact zeros
  EXPECT_EQ(telemetry::histogram_quantile(buckets, 10, 0.99), 0.0);
}

TEST(HistogramQuantile, InterpolatesInsideBucketRange) {
  std::vector<std::uint64_t> buckets(telemetry::kHistogramBuckets, 0);
  buckets[3] = 10;  // values in [4, 8)
  const double p50 = telemetry::histogram_quantile(buckets, 10, 0.50);
  const double p99 = telemetry::histogram_quantile(buckets, 10, 0.99);
  EXPECT_GE(p50, 4.0);
  EXPECT_LE(p50, 8.0);
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, 8.0);
}

TEST(HistogramQuantile, WalksCumulativeBuckets) {
  std::vector<std::uint64_t> buckets(telemetry::kHistogramBuckets, 0);
  buckets[1] = 90;   // ninety samples of value 1
  buckets[10] = 10;  // ten samples in [512, 1024)
  const double p50 = telemetry::histogram_quantile(buckets, 100, 0.50);
  const double p99 = telemetry::histogram_quantile(buckets, 100, 0.99);
  EXPECT_LE(p50, 2.0);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
}

// ---------------------------------------------------------------------------
// SLO layer (pure data; always compiled).
// ---------------------------------------------------------------------------

TEST(Slo, LatencyHistogramRecordMergeQuantile) {
  telemetry::LatencyHistogram h;
  for (std::uint64_t v : {100u, 200u, 400u, 800u}) {
    h.record(v);
  }
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 1500u);
  EXPECT_GT(h.quantile(0.99), h.quantile(0.01));

  telemetry::LatencyHistogram other = h;
  h.merge(other);
  EXPECT_EQ(h.count, 8u);
  EXPECT_EQ(h.sum, 3000u);
}

TEST(Slo, TrackerKeepsTopExemplarsSlowestFirst) {
  telemetry::SloTracker tracker;
  for (std::uint64_t i = 1; i <= 8; ++i) {
    // e2e latency grows with i; only the slowest five survive.
    tracker.record("alice", /*job_id=*/i, /*trace_id=*/i * 11,
                   /*queue_us=*/10, /*exec_us=*/i * 100);
  }
  const telemetry::TenantSlo& alice = tracker.tenants.at("alice");
  EXPECT_EQ(alice.e2e_us.count, 8u);
  ASSERT_EQ(alice.exemplars.size(), telemetry::kSloExemplars);
  EXPECT_EQ(alice.exemplars.front().job_id, 8u);  // slowest first
  for (std::size_t i = 1; i < alice.exemplars.size(); ++i) {
    EXPECT_GE(alice.exemplars[i - 1].e2e_us, alice.exemplars[i].e2e_us);
  }
  EXPECT_EQ(tracker.total.e2e_us.count, 8u);
}

TEST(Slo, MergeFoldsTenantsAndTotals) {
  telemetry::SloTracker a;
  a.record("alice", 1, 111, 5, 50);
  telemetry::SloTracker b;
  b.record("alice", 2, 222, 5, 500);
  b.record("bob", 3, 333, 5, 5);
  a.merge(b);
  EXPECT_EQ(a.tenants.size(), 2u);
  EXPECT_EQ(a.tenants.at("alice").e2e_us.count, 2u);
  EXPECT_EQ(a.tenants.at("bob").e2e_us.count, 1u);
  EXPECT_EQ(a.total.e2e_us.count, 3u);
  // Exemplars from both sides, re-ranked: alice job 2 is the slowest.
  ASSERT_FALSE(a.total.exemplars.empty());
  EXPECT_EQ(a.total.exemplars.front().job_id, 2u);
  EXPECT_EQ(a.total.exemplars.front().trace_id, 222u);
}

// ---------------------------------------------------------------------------
// Trace ids (always compiled, even with RQSIM_TELEMETRY=OFF).
// ---------------------------------------------------------------------------

TEST(TraceId, MintedIdsAreNonZeroAndDistinct) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t id = telemetry::mint_trace_id();
    EXPECT_NE(id, 0u);
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 256u);
}

TEST(TraceId, HexRoundTripAndMalformedInput) {
  const std::uint64_t id = 0xdeadbeef12345678ull;
  const std::string hex = telemetry::trace_id_to_hex(id);
  EXPECT_EQ(hex, "deadbeef12345678");
  EXPECT_EQ(telemetry::trace_id_from_hex(hex), id);
  EXPECT_EQ(telemetry::trace_id_to_hex(0), "0");
  EXPECT_EQ(telemetry::trace_id_from_hex(""), 0u);
  EXPECT_EQ(telemetry::trace_id_from_hex("not hex"), 0u);
  EXPECT_EQ(telemetry::trace_id_from_hex("123z"), 0u);
  EXPECT_EQ(telemetry::trace_id_from_hex("11112222333344445"), 0u);  // 17 chars
}

TEST(Trace, CompleteEventExportsDurationAndTraceId) {
  if (!telemetry::compiled()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telemetry::start_tracing();
  const std::uint64_t t0 = telemetry::now_ns();
  const std::uint64_t id = telemetry::mint_trace_id();
  telemetry::trace_complete("unit.queue_wait", t0, t0 + 2500000, id);
  telemetry::stop_tracing();
  const Json doc = Json::parse(telemetry::trace_to_json());
  bool found = false;
  for (const Json& event : doc.at("traceEvents").as_array()) {
    if (event.get_string("name", "") != "unit.queue_wait") {
      continue;
    }
    found = true;
    EXPECT_EQ(event.get_string("ph", ""), "X");
    EXPECT_NEAR(event.get_number("dur", 0.0), 2500.0, 1.0);  // µs
    ASSERT_TRUE(event.has("args"));
    EXPECT_EQ(event.at("args").get_string("trace_id", ""),
              telemetry::trace_id_to_hex(id));
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Trace merging (pure data).
// ---------------------------------------------------------------------------

TEST(TraceMerge, AssignsUniquePidsAndShiftsSkewedClocks) {
  TraceProcessDoc router_doc;
  router_doc.name = "router";
  router_doc.epoch_us = 2000.0;  // started tracing 1 ms after the backend
  router_doc.trace = Json::parse(
      "{\"traceEvents\":[{\"name\":\"admit\",\"ph\":\"B\",\"pid\":1,"
      "\"tid\":7,\"ts\":10.0},{\"name\":\"admit\",\"ph\":\"E\",\"pid\":1,"
      "\"tid\":7,\"ts\":20.0}]}");
  TraceProcessDoc backend_doc;
  backend_doc.name = "backend b1";
  backend_doc.epoch_us = 1000.0;  // earliest epoch: becomes merged time 0
  backend_doc.trace = Json::parse(
      "{\"traceEvents\":[{\"name\":\"exec\",\"ph\":\"B\",\"pid\":1,"
      "\"tid\":3,\"ts\":5.0},{\"name\":\"exec\",\"ph\":\"E\",\"pid\":1,"
      "\"tid\":3,\"ts\":9.0},{\"name\":\"process_name\",\"ph\":\"M\","
      "\"pid\":1,\"tid\":0,\"args\":{\"name\":\"stale\"}}]}");

  const Json merged = merge_traces({router_doc, backend_doc});
  std::set<std::uint64_t> pids_with_name;
  double admit_b_ts = -1.0;
  double exec_b_ts = -1.0;
  for (const Json& event : merged.at("traceEvents").as_array()) {
    const std::string phase = event.get_string("ph", "");
    const std::string name = event.get_string("name", "");
    if (phase == "M" && name == "process_name") {
      EXPECT_NE(event.at("args").get_string("name", ""), "stale");
      pids_with_name.insert(event.get_u64("pid", 0));
    }
    if (phase == "B" && name == "admit") {
      admit_b_ts = event.get_number("ts", -1.0);
      EXPECT_EQ(event.get_u64("pid", 0), 1u);
    }
    if (phase == "B" && name == "exec") {
      exec_b_ts = event.get_number("ts", -1.0);
      EXPECT_EQ(event.get_u64("pid", 0), 2u);
    }
  }
  EXPECT_EQ(pids_with_name.size(), 2u);  // one named lane group per process
  // Router events shift by its 1000 µs epoch offset; backend events don't.
  EXPECT_DOUBLE_EQ(admit_b_ts, 1010.0);
  EXPECT_DOUBLE_EQ(exec_b_ts, 5.0);
}

// ---------------------------------------------------------------------------
// Prometheus exposition (pure text rendering).
// ---------------------------------------------------------------------------

Json sample_stats_response() {
  Json hist = Json::object();
  hist.set("count", Json(std::uint64_t{3}));
  hist.set("sum", Json(std::uint64_t{21}));
  Json buckets = Json::array();
  buckets.push_back(Json(std::uint64_t{0}));
  buckets.push_back(Json(std::uint64_t{1}));
  buckets.push_back(Json(std::uint64_t{2}));
  hist.set("buckets", std::move(buckets));

  Json telemetry_block = Json::object();
  telemetry_block.set("sim.matvec_ops", Json(std::uint64_t{42}));
  telemetry_block.set("service.job_exec_us", std::move(hist));

  Json latency = Json::object();
  latency.set("count", Json(std::uint64_t{2}));
  latency.set("sum", Json(std::uint64_t{30}));
  latency.set("p50", Json(10.0));
  latency.set("p90", Json(20.0));
  latency.set("p99", Json(25.0));

  Json exemplar = Json::object();
  exemplar.set("job", Json(std::uint64_t{7}));
  exemplar.set("trace_id", Json(std::string("abc123")));
  exemplar.set("e2e_us", Json(std::uint64_t{999}));
  Json exemplars = Json::array();
  exemplars.push_back(std::move(exemplar));

  Json tenant = Json::object();
  tenant.set("queue_us", latency);
  tenant.set("exec_us", latency);
  tenant.set("e2e_us", latency);
  tenant.set("exemplars", std::move(exemplars));
  Json tenants = Json::object();
  tenants.set("ali\"ce", tenant);
  Json slo = Json::object();
  slo.set("tenants", std::move(tenants));
  slo.set("total", std::move(tenant));

  Json build = Json::object();
  build.set("version", Json(std::string("9.9.9")));
  build.set("uptime_ms", Json(1234.0));

  Json stats = Json::object();
  stats.set("completed", Json(std::uint64_t{3}));

  Json response = Json::object();
  response.set("ok", Json(true));
  response.set("stats", std::move(stats));
  response.set("telemetry", std::move(telemetry_block));
  response.set("slo", std::move(slo));
  response.set("build", std::move(build));
  return response;
}

TEST(Prometheus, RendersCountersHistogramsAndBuildInfo) {
  const std::string text = stats_to_prometheus(sample_stats_response());
  EXPECT_NE(text.find("# TYPE rqsim_build_info gauge\n"), std::string::npos);
  EXPECT_NE(text.find("rqsim_build_info{version=\"9.9.9\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("rqsim_uptime_ms 1234\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rqsim_sim_matvec_ops counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("rqsim_sim_matvec_ops 42\n"), std::string::npos);
  // Metric names never keep the registry dots.
  EXPECT_EQ(text.find("rqsim_sim.matvec_ops"), std::string::npos);

  // Log2 histogram: cumulative buckets with le = 2^i - 1, then +Inf.
  EXPECT_NE(text.find("# TYPE rqsim_service_job_exec_us histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("rqsim_service_job_exec_us_bucket{le=\"0\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("rqsim_service_job_exec_us_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("rqsim_service_job_exec_us_bucket{le=\"3\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("rqsim_service_job_exec_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("rqsim_service_job_exec_us_sum 21\n"),
            std::string::npos);
  EXPECT_NE(text.find("rqsim_service_job_exec_us_count 3\n"),
            std::string::npos);
}

TEST(Prometheus, RendersSloSummariesWithEscapedLabelsAndExemplars) {
  const std::string text = stats_to_prometheus(sample_stats_response());
  // The quote in the tenant name must be escaped in the label value.
  EXPECT_NE(
      text.find("rqsim_slo_e2e_us{tenant=\"ali\\\"ce\",quantile=\"0.99\"} 25\n"),
      std::string::npos);
  EXPECT_NE(text.find("rqsim_slo_e2e_us{tenant=\"_total\",quantile=\"0.5\"} 10\n"),
            std::string::npos);
  EXPECT_NE(text.find("rqsim_slo_exemplar_e2e_us{tenant=\"_total\",job=\"7\","
                      "trace_id=\"abc123\"} 999\n"),
            std::string::npos);
  EXPECT_NE(text.find("rqsim_slo_exemplar_e2e_us{tenant=\"ali\\\"ce\","),
            std::string::npos);

  // Grammar sweep: every line is a comment or "<name>[{labels}] <value>".
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string series = line.substr(0, space);
    EXPECT_EQ(series.rfind("rqsim_", 0), 0u) << line;
    // Balanced label braces, if any.
    const std::size_t open = series.find('{');
    if (open != std::string::npos) {
      EXPECT_EQ(series.back(), '}') << line;
    }
  }
}

// ---------------------------------------------------------------------------
// Fleet acceptance: 2 backends, causally linked spans, SLO exemplars.
// ---------------------------------------------------------------------------

struct Fleet {
  explicit Fleet(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      ServerConfig config;
      config.tcp_port = 0;
      config.service.num_workers = 0;  // drained with run_pending()
      config.service.queue_capacity = 64;
      config.service.max_batch_jobs = 8;
      servers.push_back(std::make_unique<SimServer>(std::move(config)));
      threads.emplace_back([server = servers.back().get()] { server->run(); });
      endpoints.push_back("127.0.0.1:" +
                          std::to_string(servers.back()->tcp_port()));
    }
  }

  ~Fleet() {
    for (std::size_t i = 0; i < servers.size(); ++i) {
      servers[i]->stop();
      threads[i].join();
    }
  }

  SimServer& by_endpoint(const std::string& endpoint) {
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      if (endpoints[i] == endpoint) {
        return *servers[i];
      }
    }
    throw Error("fleet test: unknown endpoint " + endpoint);
  }

  RouterConfig router_config() const {
    RouterConfig config;
    config.tcp_port = 0;
    config.backends = endpoints;
    config.health_thread = false;
    config.backend_client.max_attempts = 1;
    config.backend_client.connect_timeout_ms = 2000;
    return config;
  }

  std::vector<std::unique_ptr<SimServer>> servers;
  std::vector<std::thread> threads;
  std::vector<std::string> endpoints;
};

Json fleet_submit(std::size_t trials, std::uint64_t seed,
                  const std::string& tenant) {
  WorkloadSpec workload;
  workload.circuit_spec = "ghz:4";
  workload.device = "ideal";
  SubmitParams params;
  params.trials = trials;
  params.seed = seed;
  params.tenant = tenant;
  return make_submit_request(workload, params);
}

Json trace_op(const std::string& action) {
  Json request = Json::object();
  request.set("op", Json(std::string("trace")));
  request.set("action", Json(action));
  return request;
}

TEST(ObservabilityE2E, FleetTraceLinksSpansAndSloCarriesExemplars) {
  if (!telemetry::compiled()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  Fleet fleet(2);
  FleetRouter router(fleet.router_config());

  // One trace window over the whole fleet.
  const Json started = router.handle(trace_op("start"));
  ASSERT_TRUE(started.at("ok").as_bool()) << started.dump();
  EXPECT_TRUE(started.get_bool("tracing", false));
  EXPECT_EQ(started.get_u64("backends", 0), 2u);

  // Two batch-compatible jobs from two tenants: workload affinity puts
  // them on one backend, the planner merges them into one batch.
  const Json accepted_a = router.handle(fleet_submit(400, 11, "alice"));
  const Json accepted_b = router.handle(fleet_submit(400, 11, "bob"));
  ASSERT_TRUE(accepted_a.at("ok").as_bool()) << accepted_a.dump();
  ASSERT_TRUE(accepted_b.at("ok").as_bool()) << accepted_b.dump();
  const std::string trace_a = accepted_a.get_string("trace_id", "");
  const std::string trace_b = accepted_b.get_string("trace_id", "");
  ASSERT_FALSE(trace_a.empty());
  ASSERT_FALSE(trace_b.empty());
  EXPECT_NE(trace_a, trace_b);  // one trace id per submit
  ASSERT_EQ(accepted_a.get_string("backend", "a"),
            accepted_b.get_string("backend", "b"));

  fleet.by_endpoint(accepted_a.get_string("backend", "")).service().run_pending();
  for (const Json* accepted : {&accepted_a, &accepted_b}) {
    Json wait = Json::object();
    wait.set("op", Json(std::string("wait")));
    wait.set("job", accepted->at("job"));
    const Json done = router.handle(wait);
    ASSERT_EQ(done.get_string("state", ""), "done") << done.dump();
    EXPECT_FALSE(done.at("result").get_string("trace_id", "").empty());
  }

  // Collect and merge: three processes (router + 2 backends), and the
  // admission → queue wait → batch plan → tree-executor chain all tagged
  // with job A's trace id.
  const Json collected = router.handle(trace_op("collect"));
  ASSERT_TRUE(collected.at("ok").as_bool()) << collected.dump();
  ASSERT_TRUE(collected.has("processes"));
  ASSERT_EQ(collected.at("processes").as_array().size(), 3u);
  const Json merged = merge_collect_response(collected);

  std::set<std::string> linked_spans;
  std::set<std::uint64_t> named_pids;
  for (const Json& event : merged.at("traceEvents").as_array()) {
    if (event.get_string("ph", "") == "M" &&
        event.get_string("name", "") == "process_name") {
      named_pids.insert(event.get_u64("pid", 0));
    }
    if (event.has("args") &&
        event.at("args").get_string("trace_id", "") == trace_a) {
      linked_spans.insert(event.get_string("name", ""));
    }
  }
  EXPECT_EQ(named_pids.size(), 3u);
  EXPECT_TRUE(linked_spans.count("router.admit")) << merged.dump();
  EXPECT_TRUE(linked_spans.count("service.queue_wait")) << merged.dump();
  EXPECT_TRUE(linked_spans.count("service.batch_plan")) << merged.dump();
  EXPECT_TRUE(linked_spans.count("tree_exec.task")) << merged.dump();

  // SLO: per-tenant p99 histograms and exemplar trace_ids in the stats
  // JSON and in the Prometheus rendering of the same response.
  const Json stats = router.handle(Json::parse("{\"op\":\"stats\"}"));
  ASSERT_TRUE(stats.at("ok").as_bool()) << stats.dump();
  ASSERT_TRUE(stats.has("slo"));
  const Json& slo = stats.at("slo");
  ASSERT_TRUE(slo.at("tenants").has("alice")) << slo.dump();
  ASSERT_TRUE(slo.at("tenants").has("bob")) << slo.dump();
  const Json& alice_e2e = slo.at("tenants").at("alice").at("e2e_us");
  EXPECT_EQ(alice_e2e.get_u64("count", 0), 1u);
  EXPECT_GE(alice_e2e.get_number("p99", -1.0),
            alice_e2e.get_number("p50", 0.0));
  const Json& total = slo.at("total");
  EXPECT_EQ(total.at("e2e_us").get_u64("count", 0), 2u);
  std::set<std::string> exemplar_traces;
  for (const Json& exemplar : total.at("exemplars").as_array()) {
    exemplar_traces.insert(exemplar.get_string("trace_id", ""));
  }
  EXPECT_TRUE(exemplar_traces.count(trace_a)) << total.dump();
  EXPECT_TRUE(exemplar_traces.count(trace_b)) << total.dump();

  // Fleet view carries build/version and the backend p99 column.
  ASSERT_TRUE(stats.has("build"));
  EXPECT_FALSE(stats.at("build").get_string("version", "").empty());

  const std::string prom = stats_to_prometheus(stats);
  EXPECT_NE(prom.find("rqsim_slo_e2e_us{tenant=\"alice\",quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("trace_id=\"" + trace_a + "\""), std::string::npos);
  EXPECT_NE(prom.find("rqsim_build_info{version=\""), std::string::npos);
}

// Trace start/stop through a single service endpoint (no router): the
// protocol verb alone controls the window and collect returns one buffer.
TEST(ObservabilityE2E, SingleServiceTraceVerbRoundTrip) {
  if (!telemetry::compiled()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  ServiceConfig service_config;
  service_config.num_workers = 0;  // drained manually
  SimService service(service_config);
  ProtocolHandler handler(service);

  ASSERT_TRUE(handler.handle(trace_op("start")).get_bool("tracing", false));
  const Json accepted = handler.handle(fleet_submit(100, 3, "solo"));
  ASSERT_TRUE(accepted.at("ok").as_bool()) << accepted.dump();
  service.run_pending();

  const Json collected = handler.handle(trace_op("collect"));
  ASSERT_TRUE(collected.at("ok").as_bool()) << collected.dump();
  EXPECT_FALSE(collected.get_bool("tracing", true));
  ASSERT_TRUE(collected.has("trace"));
  EXPECT_FALSE(collected.has("processes"));  // single process: bare buffer
  bool saw_exec_span = false;
  for (const Json& event : collected.at("trace").at("traceEvents").as_array()) {
    if (event.get_string("name", "") == "service.execute_batch") {
      saw_exec_span = true;
    }
  }
  EXPECT_TRUE(saw_exec_span);

  const Json bad = handler.handle(trace_op("flood"));
  EXPECT_FALSE(bad.get_bool("ok", true));
}

}  // namespace
}  // namespace rqsim
