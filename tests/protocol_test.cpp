#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "service/socket_util.hpp"

namespace rqsim {
namespace {

// ---------------------------------------------------------------------------
// JSON value type.
// ---------------------------------------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("3.5").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(Json::parse("-17").as_number(), -17.0);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(Json::parse("\"a\\n\\\"b\\\\\"").as_string(), "a\n\"b\\");
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
}

TEST(Json, ParsesContainers) {
  const Json arr = Json::parse("[1, 2, [3], {\"k\": false}]");
  ASSERT_TRUE(arr.is_array());
  ASSERT_EQ(arr.as_array().size(), 4u);
  EXPECT_DOUBLE_EQ(arr.as_array()[0].as_number(), 1.0);
  EXPECT_EQ(arr.as_array()[3].at("k").as_bool(), false);

  const Json obj = Json::parse("{\"a\": {\"b\": [true]}, \"c\": null}");
  ASSERT_TRUE(obj.is_object());
  EXPECT_TRUE(obj.has("c"));
  EXPECT_TRUE(obj.at("c").is_null());
  EXPECT_EQ(obj.at("a").at("b").as_array()[0].as_bool(), true);
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated",
                          "1 2", "{\"a\":1,}", "[1,]", "nul", "{'a':1}"}) {
    EXPECT_THROW(Json::parse(bad), Error) << "input: " << bad;
  }
}

TEST(Json, DumpRoundTripsAndSortsKeys) {
  const std::string text =
      "{\"b\":2,\"a\":[1,true,null,\"x\\\"y\"],\"c\":{\"n\":-4.5}}";
  const Json parsed = Json::parse(text);
  // Keys come out sorted, integral numbers without decimals.
  EXPECT_EQ(parsed.dump(),
            "{\"a\":[1,true,null,\"x\\\"y\"],\"b\":2,\"c\":{\"n\":-4.5}}");
  // dump -> parse -> dump is a fixed point.
  EXPECT_EQ(Json::parse(parsed.dump()).dump(), parsed.dump());
}

TEST(Json, IntegralU64RoundTrip) {
  const std::uint64_t big = (1ULL << 53);  // largest exactly-representable
  Json json(big);
  EXPECT_EQ(json.as_u64(), big);
  EXPECT_EQ(Json::parse(json.dump()).as_u64(), big);
  EXPECT_THROW(Json(2.5).as_u64(), Error);
  EXPECT_THROW(Json(-1).as_u64(), Error);
}

TEST(Json, AccessorsTypeCheckAndDefault) {
  Json obj = Json::object();
  obj.set("s", Json("text"));
  obj.set("n", Json(42));
  EXPECT_THROW(obj.at("s").as_number(), Error);
  EXPECT_THROW(obj.at("missing"), Error);
  EXPECT_EQ(obj.get_string("s", "d"), "text");
  EXPECT_EQ(obj.get_string("missing", "d"), "d");
  EXPECT_EQ(obj.get_u64("n", 0), 42u);
  EXPECT_EQ(obj.get_u64("missing", 9), 9u);
  EXPECT_EQ(obj.get_bool("missing", true), true);
}

// ---------------------------------------------------------------------------
// Transport-free protocol handler.
// ---------------------------------------------------------------------------

Json submit_request(std::size_t trials, std::uint64_t seed,
                    const std::string& priority = "normal") {
  WorkloadSpec workload;
  workload.circuit_spec = "ghz:4";
  workload.device = "ideal";
  SubmitParams params;
  params.trials = trials;
  params.seed = seed;
  params.priority = priority;
  return make_submit_request(workload, params);
}

TEST(Protocol, PingAndUnknownOp) {
  SimService service(ServiceConfig{0, 8, 8});
  ProtocolHandler handler(service);
  const Json pong = handler.handle(Json::parse("{\"op\":\"ping\"}"));
  EXPECT_TRUE(pong.at("ok").as_bool());
  EXPECT_TRUE(pong.at("pong").as_bool());

  const Json bad = handler.handle(Json::parse("{\"op\":\"frobnicate\"}"));
  EXPECT_FALSE(bad.at("ok").as_bool());
  EXPECT_EQ(bad.at("error").as_string(), "bad_request");
}

TEST(Protocol, MalformedLineIsBadRequestNotException) {
  SimService service(ServiceConfig{0, 8, 8});
  ProtocolHandler handler(service);
  const Json response = Json::parse(handler.handle_line("this is not json"));
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("error").as_string(), "bad_request");
}

TEST(Protocol, SubmitStatusCancelLifecycle) {
  SimService service(ServiceConfig{0, 8, 8});  // manual drain
  ProtocolHandler handler(service);

  const Json accepted = handler.handle(submit_request(500, 3));
  ASSERT_TRUE(accepted.at("ok").as_bool()) << accepted.dump();
  const std::uint64_t job = accepted.at("job").as_u64();
  EXPECT_EQ(accepted.at("state").as_string(), "queued");

  Json status_req = Json::object();
  status_req.set("op", Json("status"));
  status_req.set("job", Json(job));
  Json status = handler.handle(status_req);
  EXPECT_EQ(status.at("state").as_string(), "queued");
  EXPECT_FALSE(status.has("result"));

  Json cancel_req = Json::object();
  cancel_req.set("op", Json("cancel"));
  cancel_req.set("job", Json(job));
  const Json cancelled = handler.handle(cancel_req);
  EXPECT_TRUE(cancelled.at("ok").as_bool());
  EXPECT_TRUE(cancelled.at("cancelled").as_bool());

  status = handler.handle(status_req);
  EXPECT_EQ(status.at("state").as_string(), "cancelled");

  // Cancelling again reports false (already terminal).
  EXPECT_FALSE(handler.handle(cancel_req).at("cancelled").as_bool());

  Json unknown = Json::object();
  unknown.set("op", Json("status"));
  unknown.set("job", Json(std::uint64_t{777}));
  EXPECT_EQ(handler.handle(unknown).at("error").as_string(), "unknown_job");
}

TEST(Protocol, CompletedJobCarriesResultWithBitstringHistogram) {
  SimService service(ServiceConfig{0, 8, 8});
  ProtocolHandler handler(service);
  const Json accepted = handler.handle(submit_request(800, 5));
  ASSERT_TRUE(accepted.at("ok").as_bool()) << accepted.dump();
  const std::uint64_t job = accepted.at("job").as_u64();
  service.run_pending();

  Json status_req = Json::object();
  status_req.set("op", Json("status"));
  status_req.set("job", Json(job));
  const Json status = handler.handle(status_req);
  EXPECT_EQ(status.at("state").as_string(), "done");
  ASSERT_TRUE(status.has("result"));
  const Json& result = status.at("result");
  EXPECT_GT(result.at("ops").as_u64(), 0u);
  EXPECT_EQ(result.at("batch_size").as_u64(), 1u);
  ASSERT_TRUE(result.has("histogram"));
  std::uint64_t total = 0;
  for (const auto& [bits, count] : result.at("histogram").as_object()) {
    EXPECT_EQ(bits.size(), 4u);  // ghz:4 measures four bits
    total += count.as_u64();
  }
  EXPECT_EQ(total, 800u);
}

TEST(Protocol, InvalidWorkloadIsRejectedWithInvalidCode) {
  SimService service(ServiceConfig{0, 8, 8});
  ProtocolHandler handler(service);
  WorkloadSpec workload;
  workload.circuit_spec = "no-such-circuit";
  const Json response = handler.handle(make_submit_request(workload, SubmitParams{}));
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("error").as_string(), "invalid");
}

TEST(Protocol, WorkloadSpecJsonRoundTrip) {
  WorkloadSpec spec;
  spec.qasm = "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];\n";
  spec.device = "artificial";
  spec.device_qubits = 3;
  spec.device_rate = 2e-3;
  spec.noise_scale = 0.5;
  spec.no_transpile = true;
  const WorkloadSpec back = workload_from_json(workload_to_json(spec));
  EXPECT_EQ(back.qasm, spec.qasm);
  EXPECT_EQ(back.device, spec.device);
  EXPECT_EQ(back.device_qubits, spec.device_qubits);
  EXPECT_DOUBLE_EQ(back.device_rate, spec.device_rate);
  EXPECT_DOUBLE_EQ(back.noise_scale, spec.noise_scale);
  EXPECT_TRUE(back.no_transpile);
}

// ---------------------------------------------------------------------------
// JSONL protocol end to end over a real socket.
// ---------------------------------------------------------------------------

struct RunningServer {
  explicit RunningServer(ServiceConfig service_config) {
    ServerConfig config;
    config.tcp_port = 0;  // ephemeral
    config.service = service_config;
    server = std::make_unique<SimServer>(std::move(config));
    thread = std::thread([this] { server->run(); });
  }

  ~RunningServer() {
    server->stop();
    if (thread.joinable()) {
      thread.join();
    }
  }

  ServiceClient client() {
    return ServiceClient::connect_tcp("127.0.0.1", server->tcp_port());
  }

  std::unique_ptr<SimServer> server;
  std::thread thread;
};

TEST(ProtocolE2E, SubmitWaitResultOverTcp) {
  ServiceConfig service_config;
  service_config.num_workers = 2;
  RunningServer running(service_config);
  ServiceClient client = running.client();

  const Json pong = client.request(Json::parse("{\"op\":\"ping\"}"));
  EXPECT_TRUE(pong.at("ok").as_bool());

  const Json accepted = client.request(submit_request(1000, 7));
  ASSERT_TRUE(accepted.at("ok").as_bool()) << accepted.dump();
  const std::uint64_t job = accepted.at("job").as_u64();

  Json wait_req = Json::object();
  wait_req.set("op", Json("wait"));
  wait_req.set("job", Json(job));
  const Json finished = client.request(wait_req);
  ASSERT_TRUE(finished.at("ok").as_bool()) << finished.dump();
  EXPECT_EQ(finished.at("state").as_string(), "done");
  ASSERT_TRUE(finished.has("result"));
  std::uint64_t total = 0;
  for (const auto& [bits, count] : finished.at("result").at("histogram").as_object()) {
    (void)bits;
    total += count.as_u64();
  }
  EXPECT_EQ(total, 1000u);

  const Json stats = client.request(Json::parse("{\"op\":\"stats\"}"));
  EXPECT_EQ(stats.at("stats").at("completed").as_u64(), 1u);
}

TEST(ProtocolE2E, SubmitPollCancelAndQueueFullBackpressure) {
  // num_workers = 0: jobs stay queued, so cancel always races nothing and
  // the bounded queue fills deterministically.
  ServiceConfig service_config;
  service_config.num_workers = 0;
  service_config.queue_capacity = 2;
  RunningServer running(service_config);
  ServiceClient client = running.client();

  // submit -> poll: the job sits in the queue.
  const Json first = client.request(submit_request(300, 1));
  ASSERT_TRUE(first.at("ok").as_bool()) << first.dump();
  const std::uint64_t job = first.at("job").as_u64();
  Json status_req = Json::object();
  status_req.set("op", Json("status"));
  status_req.set("job", Json(job));
  EXPECT_EQ(client.request(status_req).at("state").as_string(), "queued");

  // Fill the queue, then hit backpressure.
  ASSERT_TRUE(client.request(submit_request(300, 2)).at("ok").as_bool());
  const Json full = client.request(submit_request(300, 3));
  EXPECT_FALSE(full.at("ok").as_bool());
  EXPECT_EQ(full.at("error").as_string(), "queue_full");

  // cancel frees a slot; the retried submit is accepted.
  Json cancel_req = Json::object();
  cancel_req.set("op", Json("cancel"));
  cancel_req.set("job", Json(job));
  EXPECT_TRUE(client.request(cancel_req).at("cancelled").as_bool());
  EXPECT_EQ(client.request(status_req).at("state").as_string(), "cancelled");
  EXPECT_TRUE(client.request(submit_request(300, 3)).at("ok").as_bool());

  const Json stats = client.request(Json::parse("{\"op\":\"stats\"}"));
  EXPECT_EQ(stats.at("stats").at("cancelled").as_u64(), 1u);
  EXPECT_EQ(stats.at("stats").at("rejected").as_u64(), 1u);
  EXPECT_EQ(stats.at("stats").at("queued_now").as_u64(), 2u);
}

TEST(ProtocolE2E, MultipleClientsShareOneService) {
  ServiceConfig service_config;
  service_config.num_workers = 2;
  RunningServer running(service_config);

  ServiceClient a = running.client();
  ServiceClient b = running.client();
  const Json from_a = a.request(submit_request(400, 1));
  ASSERT_TRUE(from_a.at("ok").as_bool());
  const std::uint64_t job = from_a.at("job").as_u64();

  // Client b can wait on a job submitted by client a.
  Json wait_req = Json::object();
  wait_req.set("op", Json("wait"));
  wait_req.set("job", Json(job));
  EXPECT_EQ(b.request(wait_req).at("state").as_string(), "done");
}

TEST(ProtocolE2E, ShutdownStopsTheServer) {
  ServiceConfig service_config;
  service_config.num_workers = 1;
  ServerConfig config;
  config.tcp_port = 0;
  config.service = service_config;
  SimServer server(std::move(config));
  std::thread runner([&server] { server.run(); });

  ServiceClient client = ServiceClient::connect_tcp("127.0.0.1", server.tcp_port());
  const Json stopping = client.request(Json::parse("{\"op\":\"shutdown\"}"));
  EXPECT_TRUE(stopping.at("ok").as_bool());
  EXPECT_TRUE(stopping.at("stopping").as_bool());
  runner.join();  // run() returns after the shutdown request
}

// ---------------------------------------------------------------------------
// Protocol error paths over the socket: malformed frames, oversized lines,
// mid-frame disconnects, unreachable endpoints. The framing invariant under
// test: a bad frame produces one structured error response and the
// connection stays usable for the next request.
// ---------------------------------------------------------------------------

// Raw-fd helper: send one already-framed blob, read one response line.
Json raw_round_trip(int fd, const std::string& frame) {
  write_all(fd, frame);
  std::string buffer;
  std::string line;
  const ReadLineStatus status = read_line_bounded(fd, buffer, line, kMaxLineBytes);
  EXPECT_EQ(status, ReadLineStatus::kLine);
  return Json::parse(line);
}

TEST(ProtocolErrors, MalformedJsonLineGetsBadRequestAndConnectionSurvives) {
  RunningServer running(ServiceConfig{0, 8, 8});
  const int fd = connect_tcp_fd("127.0.0.1", running.server->tcp_port(), 1000);
  ASSERT_GE(fd, 0);

  const Json error = raw_round_trip(fd, "{\"op\": \"ping\"  oops}\n");
  EXPECT_FALSE(error.at("ok").as_bool());
  EXPECT_EQ(error.at("error").as_string(), "bad_request");

  // Same connection, next frame parses and is served normally.
  const Json pong = raw_round_trip(fd, "{\"op\":\"ping\"}\n");
  EXPECT_TRUE(pong.at("ok").as_bool());
  ::close(fd);
}

TEST(ProtocolErrors, OversizedLineIsRejectedAndStreamResynchronizes) {
  RunningServer running(ServiceConfig{0, 8, 8});
  const int fd = connect_tcp_fd("127.0.0.1", running.server->tcp_port(), 1000);
  ASSERT_GE(fd, 0);

  // One frame just past the bound: discarded, answered with a structured
  // error, and the reader re-synchronizes on its trailing newline.
  std::string huge(kMaxLineBytes + 64, 'x');
  huge.push_back('\n');
  const Json error = raw_round_trip(fd, huge);
  EXPECT_FALSE(error.at("ok").as_bool());
  EXPECT_EQ(error.at("error").as_string(), "oversized_line");

  const Json pong = raw_round_trip(fd, "{\"op\":\"ping\"}\n");
  EXPECT_TRUE(pong.at("ok").as_bool());
  EXPECT_TRUE(pong.at("pong").as_bool());
  ::close(fd);
}

TEST(ProtocolErrors, MidFrameDisconnectLeavesServerServingOthers) {
  RunningServer running(ServiceConfig{0, 8, 8});
  const int fd = connect_tcp_fd("127.0.0.1", running.server->tcp_port(), 1000);
  ASSERT_GE(fd, 0);
  // Half a frame, no newline, then gone: the server must drop the
  // connection without producing a response or disturbing other clients.
  write_all(fd, "{\"op\":\"pi");
  ::close(fd);

  ServiceClient client = running.client();
  const Json pong = client.request(Json::parse("{\"op\":\"ping\"}"));
  EXPECT_TRUE(pong.at("ok").as_bool());
}

TEST(ProtocolErrors, ClientConnectRetriesAreBoundedOnDeadEndpoint) {
  // Grab an ephemeral port, then close the listener so connecting to it is
  // refused deterministically.
  int dead_port = 0;
  const int listener = listen_tcp(0, dead_port);
  ::close(listener);

  ClientOptions options;
  options.max_attempts = 3;
  options.connect_timeout_ms = 200;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 4;
  EXPECT_THROW(ServiceClient::connect_tcp("127.0.0.1", dead_port, options), Error);
}

TEST(ProtocolE2E, UnixSocketTransport) {
  std::string path = "/tmp/rqsim_protocol_test_XXXXXX";
  // mkstemp-style unique path without creating the file (bind() creates it).
  path += std::to_string(::getpid());

  ServiceConfig service_config;
  service_config.num_workers = 1;
  ServerConfig config;
  config.unix_path = path;
  config.service = service_config;
  {
    SimServer server(std::move(config));
    std::thread runner([&server] { server.run(); });
    ServiceClient client = ServiceClient::connect("unix:" + path);
    const Json accepted = client.request(submit_request(200, 9));
    ASSERT_TRUE(accepted.at("ok").as_bool()) << accepted.dump();
    Json wait_req = Json::object();
    wait_req.set("op", Json("wait"));
    wait_req.set("job", accepted.at("job"));
    EXPECT_EQ(client.request(wait_req).at("state").as_string(), "done");
    server.stop();
    runner.join();
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rqsim
