#include <gtest/gtest.h>

#include "bench_circuits/bv.hpp"
#include "bench_circuits/qft.hpp"
#include "common/rng.hpp"
#include "noise/noise_model.hpp"
#include "sched/backend.hpp"
#include "sched/compact.hpp"
#include "sched/order.hpp"
#include "sim/kernels.hpp"
#include "transpile/decompose.hpp"
#include "trial/generator.hpp"

namespace rqsim {
namespace {

TEST(CompressedState, SparseRoundTrip) {
  StateVector s(4);
  apply_h(s, 0);
  apply_cx(s, 0, 3);  // 2 nonzeros out of 16 -> sparse
  const CompressedState cp = CompressedState::compress(s);
  EXPECT_TRUE(cp.is_sparse());
  EXPECT_LT(cp.stored_bytes(), s.dim() * sizeof(cplx));
  EXPECT_TRUE(cp.decompress().bitwise_equal(s));
}

TEST(CompressedState, DenseFallback) {
  StateVector s(3);
  for (qubit_t q = 0; q < 3; ++q) {
    apply_h(s, q);  // fully dense
  }
  const CompressedState cp = CompressedState::compress(s);
  EXPECT_FALSE(cp.is_sparse());
  EXPECT_EQ(cp.stored_bytes(), s.dim() * sizeof(cplx));
  EXPECT_TRUE(cp.decompress().bitwise_equal(s));
}

struct CompactCase {
  const char* name;
  bool sparse_friendly;  // circuit keeps sparse intermediate states
};

TEST(CompactBackend, BitwiseIdenticalResultsToDenseBackend) {
  // Lossless compression must reproduce SvBackend's histogram exactly
  // (same probabilities bit-for-bit, same sampling stream).
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const CircuitContext ctx(c);
  const NoiseModel noise = NoiseModel::uniform(4, 0.02, 0.08, 0.03);
  Rng gen_rng(3);
  auto trials = generate_trials(c, ctx.layering, noise, 3000, gen_rng);
  reorder_trials(trials);

  Rng rng_a(42);
  SvBackend dense(ctx, rng_a);
  schedule_trials(ctx, trials, dense);
  const SvRunResult dense_result = dense.take_result();

  Rng rng_b(42);
  CompactSvBackend compact(ctx, rng_b);
  schedule_trials(ctx, trials, compact);
  const CompactRunResult compact_result = compact.take_result();

  EXPECT_EQ(dense_result.histogram, compact_result.histogram);
  EXPECT_EQ(dense_result.ops, compact_result.ops);
  EXPECT_EQ(dense_result.max_live_states, compact_result.max_live_states);
  EXPECT_LE(compact_result.peak_bytes, compact_result.dense_peak_bytes);
}

TEST(CompactBackend, SparseWorkloadCompressesWell) {
  // BV intermediate states before the final H layer hold at most a few
  // nonzero amplitudes per branch? Not quite — but the *early* checkpoints
  // (before the data-register H wall completes) are sparse, so compression
  // must win measurably on peak bytes.
  Circuit c(5, "sparse_checkpoints");
  // A circuit engineered to checkpoint sparse states: long CX/X prefix
  // (classical, nnz = 1) followed by a dense tail.
  for (int rep = 0; rep < 4; ++rep) {
    for (qubit_t q = 0; q + 1 < 5; ++q) {
      c.cx(q, q + 1);
      c.x(q);
    }
  }
  for (qubit_t q = 0; q < 5; ++q) {
    c.h(q);
  }
  c.measure_all();

  const CircuitContext ctx(c);
  const NoiseModel noise = NoiseModel::uniform(5, 0.02, 0.05, 0.0);
  Rng gen_rng(5);
  auto trials = generate_trials(c, ctx.layering, noise, 2000, gen_rng);
  reorder_trials(trials);

  Rng rng(7);
  CompactSvBackend compact(ctx, rng);
  schedule_trials(ctx, trials, compact);
  const CompactRunResult result = compact.take_result();
  // Errors fire mostly in the classical prefix, so dormant checkpoints are
  // sparse: peak bytes should be well under the dense equivalent.
  EXPECT_LT(result.peak_bytes, result.dense_peak_bytes * 3 / 4);
  EXPECT_GE(result.max_live_states, 2u);
}

}  // namespace
}  // namespace rqsim
