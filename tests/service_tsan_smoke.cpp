// ThreadSanitizer smoke test for the threaded subsystems (plain main, no
// gtest).
//
// ASan catches lifetime bugs; the schedule-invariant layer catches plan
// corruption; the remaining failure mode of a "production-scale, heavy
// traffic" service is a data race. This binary hammers the two places the
// library owns cross-thread shared state:
//
//   1. SimService — concurrent submit / cancel / poll / stats / wait from
//      several client threads against a live worker pool, plus a shutdown
//      that races both the destructor and in-flight submissions (the
//      historical double-join deadlock path).
//   2. The intra-statevector kernel worker pool — concurrent gate
//      applications from several trial workers, exercising the try-lock
//      arbitration and the pool resize path.
//
// Under the `tsan` preset the whole tree is instrumented; in the tier-1
// flow the threaded sources are recompiled into this target with
// -fsanitize=thread (tests/CMakeLists.txt), so every mutex/condvar
// protocol in service/, sched/parallel and sim/kernel_engine is checked on
// every run.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_circuits/qft.hpp"
#include "noise/noise_model.hpp"
#include "sched/parallel.hpp"
#include "service/service.hpp"
#include "sim/kernel_engine.hpp"
#include "transpile/decompose.hpp"

namespace {

int failures = 0;

#define SMOKE_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond);  \
      ++failures;                                                           \
    }                                                                       \
  } while (0)

rqsim::JobSpec make_spec(std::size_t trials, std::uint64_t seed) {
  rqsim::JobSpec spec;
  spec.circuit = rqsim::decompose_to_cx_basis(rqsim::make_qft(4));
  spec.noise = rqsim::NoiseModel::uniform(4, 0.01, 0.04, 0.02);
  spec.config.num_trials = trials;
  spec.config.seed = seed;
  spec.config.verify_plans = true;  // verification also runs on worker threads
  return spec;
}

// Several client threads submit, cancel, poll and wait against a shared
// service while its worker pool drains the queue.
void stress_submit_cancel() {
  rqsim::ServiceConfig config;
  config.num_workers = 2;
  config.queue_capacity = 64;
  rqsim::SimService service(config);

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kJobsPerClient = 6;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&service, c] {
      std::vector<std::uint64_t> mine;
      for (std::size_t i = 0; i < kJobsPerClient; ++i) {
        const rqsim::SubmitOutcome outcome =
            service.try_submit(make_spec(60, 100 * c + i));
        if (outcome.status == rqsim::SubmitStatus::kAccepted) {
          mine.push_back(outcome.job_id);
        }
        // Cancel every third job; racing the workers' claim is the point —
        // either side may win, both must be race-free.
        if (i % 3 == 2 && !mine.empty()) {
          service.cancel(mine.back());
        }
        (void)service.stats();
        if (!mine.empty()) {
          (void)service.poll(mine.front());
        }
      }
      for (const std::uint64_t id : mine) {
        const rqsim::JobResult result = service.wait(id);
        SMOKE_CHECK(result.state == rqsim::JobState::kDone ||
                    result.state == rqsim::JobState::kCancelled);
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  const rqsim::ServiceStats stats = service.stats();
  SMOKE_CHECK(stats.completed + stats.cancelled == kClients * kJobsPerClient);
}

// shutdown() racing concurrent submitters and a second shutdown (the
// destructor): the join phase must be single-winner and submissions must
// resolve to accepted-and-run or kShutdown, never a hang.
void stress_shutdown_race() {
  for (int round = 0; round < 3; ++round) {
    rqsim::SimService service({.num_workers = 2, .queue_capacity = 16,
                               .max_batch_jobs = 4});
    std::thread submitter([&service] {
      for (int i = 0; i < 8; ++i) {
        (void)service.try_submit(make_spec(40, i));
      }
    });
    std::thread stopper([&service] { service.shutdown(); });
    submitter.join();
    stopper.join();
    // Destructor performs the second, racing shutdown.
  }
}

// Concurrent trial workers each applying gates while the kernel pool is
// active: pool dispatch must fall back to serial under contention, and a
// concurrent reconfigure must not race in-flight kernels.
void stress_kernel_pool() {
  rqsim::set_kernel_config({.num_threads = 3, .parallel_threshold_qubits = 4});

  const rqsim::Circuit circuit = rqsim::decompose_to_cx_basis(rqsim::make_qft(6));
  const rqsim::NoiseModel noise = rqsim::NoiseModel::uniform(6, 0.01, 0.04, 0.02);

  rqsim::ParallelRunConfig config;
  config.num_trials = 150;
  config.num_threads = 2;  // trial-parallel workers contend for the gate pool
  config.verify_plans = true;
  std::thread racer([&] {
    rqsim::ParallelRunConfig other = config;
    other.seed = 11;
    const rqsim::NoisyRunResult result =
        rqsim::run_noisy_parallel(circuit, noise, other);
    SMOKE_CHECK(result.ops > 0);
  });
  const rqsim::NoisyRunResult result = rqsim::run_noisy_parallel(circuit, noise, config);
  SMOKE_CHECK(result.ops > 0);
  racer.join();

  // Resize the pool down while nothing is in flight, then run serially.
  rqsim::set_kernel_config({.num_threads = 1, .parallel_threshold_qubits = 18});
}

}  // namespace

int main() {
  stress_submit_cancel();
  stress_shutdown_race();
  stress_kernel_pool();
  if (failures == 0) {
    std::printf("service_tsan_smoke: all checks passed\n");
    return 0;
  }
  std::fprintf(stderr, "service_tsan_smoke: %d check(s) failed\n", failures);
  return 1;
}
