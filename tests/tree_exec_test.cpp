// Work-stealing prefix-tree executor: bitwise equivalence with the
// sequential scheduler, zero-redundancy op accounting, MSV budget
// enforcement, and the tree-plan proof.
#include <gtest/gtest.h>

#include <vector>

#include "bench_circuits/qft.hpp"
#include "bench_circuits/suite.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "noise/devices.hpp"
#include "noise/noise_model.hpp"
#include "obs/pauli_string.hpp"
#include "sched/order.hpp"
#include "sched/parallel.hpp"
#include "sched/tree.hpp"
#include "sched/tree_exec.hpp"
#include "transpile/decompose.hpp"
#include "trial/generator.hpp"
#include "verify/plan_verifier.hpp"

namespace rqsim {
namespace {

ParallelRunConfig make_config(std::size_t trials, std::size_t threads,
                              std::uint64_t seed = 11) {
  ParallelRunConfig config;
  config.num_trials = trials;
  config.num_threads = threads;
  config.seed = seed;
  return config;
}

TEST(TreeExec, BitwiseHistogramsAcrossThreadCountsTable1Suite) {
  // The headline guarantee: for every Table I benchmark, tree-mode
  // histograms are bitwise identical to the sequential run_noisy at 1, 2
  // and 8 threads — parallelism is invisible in the results.
  const DeviceModel dev = yorktown_device();
  for (const BenchmarkEntry& entry : make_table1_suite(dev)) {
    const NoisyRunConfig serial_config = make_config(400, 1, 5);
    const NoisyRunResult serial = run_noisy(entry.compiled, dev.noise, serial_config);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      const NoisyRunResult tree =
          run_noisy_parallel(entry.compiled, dev.noise, make_config(400, threads, 5));
      EXPECT_EQ(tree.histogram, serial.histogram)
          << entry.name << " @ " << threads << " threads";
      EXPECT_EQ(tree.ops, serial.ops) << entry.name << " @ " << threads << " threads";
    }
  }
}

TEST(TreeExec, ZeroRedundancyAtAnyThreadCount) {
  // Tree-mode total work equals the sequential cached schedule exactly:
  // same matrix-vector op count, same fork copies, zero redundant prefix
  // ops — at every thread count (chunked mode pays per-boundary rework).
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const NoiseModel noise = NoiseModel::uniform(4, 0.02, 0.08, 0.02);
  const NoisyRunResult serial = run_noisy(c, noise, make_config(5000, 1));
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const NoisyRunResult tree =
        run_noisy_parallel(c, noise, make_config(5000, threads));
    EXPECT_EQ(tree.ops, serial.ops) << threads << " threads";
    EXPECT_EQ(tree.fork_copies, serial.fork_copies) << threads << " threads";
    EXPECT_EQ(tree.ops + tree.fork_copies, serial.ops + serial.fork_copies);
    EXPECT_EQ(tree.redundant_prefix_ops, 0u) << threads << " threads";
  }
}

TEST(TreeExec, ObservableMeansBitwiseAcrossThreads) {
  const Circuit c = decompose_to_cx_basis(make_qft(3));
  const NoiseModel noise = NoiseModel::uniform(3, 0.02, 0.08, 0.03);
  ParallelRunConfig config = make_config(4000, 1, 31);
  config.observables = {PauliString::from_label("ZZI"),
                        PauliString::from_label("IXX")};
  const NoisyRunResult serial = run_noisy(c, noise, config);
  for (const std::size_t threads : {2u, 8u}) {
    config.num_threads = threads;
    const NoisyRunResult tree = run_noisy_parallel(c, noise, config);
    ASSERT_EQ(tree.observable_means.size(), 2u);
    for (std::size_t k = 0; k < 2; ++k) {
      // Bitwise: per-trial values reduced in trial-index order, which is
      // the sequential finish order.
      EXPECT_EQ(tree.observable_means[k], serial.observable_means[k]);
    }
  }
}

TEST(TreeExec, MsvBudgetHoldsUnderConcurrency) {
  // The banker-style reservation keeps the *global* live-state count
  // within the budget for any interleaving: the executor asserts the
  // transient bound internally (RQSIM_CHECK on every acquire), and the
  // reported MSV is the schedule's sequential peak, <= budget by
  // construction. Results stay bitwise identical to the unbudgeted run's
  // schedule-equivalent (budgets change the schedule, not the physics).
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const NoiseModel noise = NoiseModel::uniform(4, 0.05, 0.2, 0.0);
  const NoisyRunResult unbounded = run_noisy_parallel(c, noise, make_config(4000, 8));
  for (const std::size_t budget : {2u, 3u, 5u}) {
    ParallelRunConfig config = make_config(4000, 8);
    config.max_states = budget;
    const NoisyRunResult result = run_noisy_parallel(c, noise, config);
    EXPECT_LE(result.max_live_states, budget);
    // Replay lowering trades ops for memory but never changes outcomes.
    EXPECT_EQ(result.histogram, unbounded.histogram) << "budget " << budget;
    EXPECT_GE(result.ops, unbounded.ops);
  }
}

TEST(TreeExec, TreePlanProofCoversSuite) {
  // build_exec_tree's planned counters and linearization must survive the
  // full verifier pass — including the op-for-op comparison against the
  // sequential walker — for realistic trial sets, with and without an MSV
  // budget.
  const DeviceModel dev = yorktown_device();
  const std::vector<BenchmarkEntry> suite = make_table1_suite(dev);
  for (const std::size_t pick : {0u, 6u, 11u}) {
    const Circuit& c = suite[pick].compiled;
    const CircuitContext ctx(c);
    Rng rng(17);
    std::vector<Trial> trials = generate_trials(c, ctx.layering, dev.noise, 2000, rng);
    assign_measurement_seeds(trials, rng);
    reorder_trials(trials);
    for (const std::size_t budget : {std::size_t{0}, std::size_t{3}}) {
      ScheduleOptions options;
      options.max_states = budget;
      const ExecTree tree = build_exec_tree(ctx, trials, options);
      const PlanVerifier verifier(ctx, options);
      const PlanProof proof = verifier.verify_tree_plan(trials, tree);
      ASSERT_TRUE(proof.ok) << suite[pick].name << ": " << proof.diagnostic;
      EXPECT_EQ(tree.planned_ops, proof.cached_ops);
      EXPECT_EQ(tree.planned_ops, predict_cached_ops(ctx, trials, options));
      EXPECT_EQ(tree.planned_forks, proof.forks);
      EXPECT_EQ(tree.peak_demand, proof.max_live_states);
      if (budget != 0) {
        EXPECT_LE(tree.peak_demand, budget);
      }
    }
  }
}

TEST(TreeExec, VerifierRejectsCorruptedTree) {
  const Circuit c = decompose_to_cx_basis(make_qft(3));
  const NoiseModel noise = NoiseModel::uniform(3, 0.05, 0.15, 0.0);
  const CircuitContext ctx(c);
  Rng rng(3);
  std::vector<Trial> trials = generate_trials(c, ctx.layering, noise, 500, rng);
  assign_measurement_seeds(trials, rng);
  reorder_trials(trials);
  const ScheduleOptions options;
  ExecTree tree = build_exec_tree(ctx, trials, options);
  const PlanVerifier verifier(ctx, options);
  ASSERT_TRUE(verifier.verify_tree_plan(trials, tree).ok);

  // Corrupt the planned op counter: the proof cross-check must catch it.
  ExecTree bad_ops = tree;
  bad_ops.planned_ops += 1;
  EXPECT_FALSE(verifier.verify_tree_plan(trials, bad_ops).ok);

  // Corrupt a replay leaf's trial assignment: the linearized stream now
  // finishes some trial on the wrong error path.
  ExecTree bad_leaf = tree;
  bool corrupted = false;
  for (TreeNode& node : bad_leaf.nodes) {
    if (node.kind == TreeNode::Kind::kReplay && node.trial + 1 < trials.size() &&
        !(trials[node.trial].events == trials[node.trial + 1].events)) {
      node.trial += 1;
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_FALSE(verifier.verify_tree_plan(trials, bad_leaf).ok);
  EXPECT_THROW(
      verify_tree_plan_or_throw(ctx, trials, bad_leaf, options, "tree_exec_test"),
      Error);
}

TEST(TreeExec, VerifierRejectsOverBudgetMaterialization) {
  const Circuit c = decompose_to_cx_basis(make_qft(3));
  const NoiseModel noise = NoiseModel::uniform(3, 0.05, 0.15, 0.0);
  const CircuitContext ctx(c);
  Rng rng(5);
  std::vector<Trial> trials = generate_trials(c, ctx.layering, noise, 500, rng);
  assign_measurement_seeds(trials, rng);
  reorder_trials(trials);
  // Built unbudgeted, the tree's checkpoint stack runs deeper than two.
  const ScheduleOptions unbounded;
  const ExecTree tree = build_exec_tree(ctx, trials, unbounded);
  ASSERT_GT(tree.peak_demand, 2u);
  ASSERT_TRUE(PlanVerifier(ctx, unbounded).verify_tree_plan(trials, tree).ok);

  // Adversarial fixture: the same tree presented against a 2-state MSV
  // budget. Every fork in the linearization is written immediately after
  // it is pushed, so the materialized count tracks the stack depth and
  // the proof must reject at the materializing op — forks being free
  // under CoW must not let an over-budget schedule through.
  ScheduleOptions tight;
  tight.max_states = 2;
  const PlanProof proof = PlanVerifier(ctx, tight).verify_tree_plan(trials, tree);
  EXPECT_FALSE(proof.ok);
  EXPECT_NE(proof.diagnostic.find("materialize"), std::string::npos)
      << proof.diagnostic;
}

TEST(TreeExec, ExecutorStatsMatchPlannedCounters) {
  // The executor's runtime counters must land exactly on the tree's
  // planned (and verified) values: every op executed once, every branch
  // forked once.
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const NoiseModel noise = NoiseModel::uniform(4, 0.03, 0.1, 0.01);
  const CircuitContext ctx(c);
  Rng rng(23);
  std::vector<Trial> trials = generate_trials(c, ctx.layering, noise, 3000, rng);
  assign_measurement_seeds(trials, rng);
  reorder_trials(trials);
  const ScheduleOptions options;
  const ExecTree tree = build_exec_tree(ctx, trials, options);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    TreeExecConfig config;
    config.num_threads = threads;
    SampledTrialSink sink(ctx, trials, nullptr);
    const TreeExecStats stats = execute_tree(ctx, tree, trials, config, sink);
    EXPECT_EQ(stats.ops, tree.planned_ops) << threads << " threads";
    EXPECT_EQ(stats.fork_copies, tree.planned_forks) << threads << " threads";
    std::uint64_t total = 0;
    for (const auto& [outcome, count] : sink.take_histogram()) {
      (void)outcome;
      total += count;
    }
    EXPECT_EQ(total, trials.size());
  }
}

TEST(TreeExec, EmptyAndTinyTrialSets) {
  const Circuit c = decompose_to_cx_basis(make_qft(3));
  const NoiseModel noise = NoiseModel::uniform(3, 0.02, 0.08, 0.0);
  for (const std::size_t trials : {0u, 1u, 2u}) {
    const NoisyRunResult serial = run_noisy(c, noise, make_config(trials, 1));
    const NoisyRunResult tree = run_noisy_parallel(c, noise, make_config(trials, 8));
    EXPECT_EQ(tree.histogram, serial.histogram);
    EXPECT_EQ(tree.ops, serial.ops);
  }
}

}  // namespace
}  // namespace rqsim
