// ThreadSanitizer smoke test for the telemetry subsystem (plain main, no
// gtest).
//
// The registry's concurrency contract: any number of threads record into
// their private shards while other threads snapshot, intern new metrics,
// start/stop tracing, and exit (folding shards into the retired
// accumulator). This binary exercises all of those overlaps at once —
// recorders hammering counters/gauges/histograms and trace events, a reader
// thread snapshotting in a loop, short-lived threads interning fresh names
// and dying — and cross-checks the folded totals for exactness (a lost
// update would show up even where TSan's interleaving misses it).
//
// In the tier-1 flow the telemetry sources are recompiled into this target
// with -fsanitize=thread (tests/CMakeLists.txt); under the `tsan` preset
// the whole tree is instrumented.
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace {

int failures = 0;

#define SMOKE_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond);  \
      ++failures;                                                           \
    }                                                                       \
  } while (0)

namespace telem = rqsim::telemetry;

void stress_registry_and_trace() {
  if (!telem::compiled()) {
    std::printf("telemetry_tsan_smoke: telemetry compiled out, nothing to do\n");
    return;
  }
  telem::set_enabled(true);
  telem::reset_metrics_for_test();
  telem::start_tracing();

  constexpr std::size_t kRecorders = 6;
  constexpr std::uint64_t kIterations = 20'000;
  std::atomic<bool> stop_reader{false};

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kRecorders; ++t) {
    threads.emplace_back([t] {
      telem::set_thread_lane("tsan.recorder-" + std::to_string(t));
      telem::Counter counter("tsan.shared_counter");
      telem::MaxGauge gauge("tsan.shared_gauge");
      telem::Histogram hist("tsan.shared_hist");
      for (std::uint64_t i = 0; i < kIterations; ++i) {
        counter.increment();
        gauge.record(t * kIterations + i);
        hist.record(i);
        if (i % 256 == 0) {
          RQSIM_SPAN("tsan.recorder_burst");
          telem::trace_instant("tsan.tick");
          telem::trace_counter("tsan.progress", i);
        }
      }
    });
  }

  // Reader thread: snapshots race against the recorders by design; every
  // intermediate fold must be internally consistent (sum <= final total).
  std::thread reader([&stop_reader] {
    while (!stop_reader.load(std::memory_order_relaxed)) {
      const telem::MetricsSnapshot snapshot = telem::snapshot_metrics();
      const telem::MetricValue* counter = snapshot.find("tsan.shared_counter");
      if (counter != nullptr) {
        SMOKE_CHECK(counter->value <= kRecorders * kIterations);
      }
    }
  });

  // Churn: short-lived threads interning fresh names then exiting, so shard
  // retirement overlaps with recording and snapshotting.
  for (int round = 0; round < 20; ++round) {
    std::thread churn([round] {
      telem::Counter mine(round % 2 == 0 ? "tsan.churn_even" : "tsan.churn_odd");
      mine.add(7);
    });
    churn.join();
  }

  for (std::thread& t : threads) {
    t.join();
  }
  stop_reader.store(true, std::memory_order_relaxed);
  reader.join();
  telem::stop_tracing();

  SMOKE_CHECK(telem::counter_value("tsan.shared_counter") ==
              kRecorders * kIterations);
  SMOKE_CHECK(telem::counter_value("tsan.churn_even") == 70u);
  SMOKE_CHECK(telem::counter_value("tsan.churn_odd") == 70u);
  const telem::MetricsSnapshot snapshot = telem::snapshot_metrics();
  const telem::MetricValue* gauge = snapshot.find("tsan.shared_gauge");
  SMOKE_CHECK(gauge != nullptr &&
              gauge->value == (kRecorders - 1) * kIterations + kIterations - 1);
  const telem::MetricValue* hist = snapshot.find("tsan.shared_hist");
  SMOKE_CHECK(hist != nullptr && hist->count == kRecorders * kIterations);

  // Export after quiescence: B/E balance survives concurrent recording.
  const std::string json = telem::trace_to_json();
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (std::size_t pos = json.find("\"ph\":\"B\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"B\"", pos + 1)) {
    ++begins;
  }
  for (std::size_t pos = json.find("\"ph\":\"E\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"E\"", pos + 1)) {
    ++ends;
  }
  SMOKE_CHECK(begins == ends);
  SMOKE_CHECK(begins > 0);
}

}  // namespace

int main() {
  stress_registry_and_trace();
  if (failures == 0) {
    std::printf("telemetry_tsan_smoke: all checks passed\n");
    return 0;
  }
  std::fprintf(stderr, "telemetry_tsan_smoke: %d check(s) failed\n", failures);
  return 1;
}
