#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "bench_circuits/qft.hpp"
#include "common/error.hpp"
#include "noise/noise_model.hpp"
#include "obs/pauli_string.hpp"
#include "service/batch.hpp"
#include "service/job.hpp"
#include "service/service.hpp"
#include "transpile/decompose.hpp"

namespace rqsim {
namespace {

JobSpec make_spec(std::size_t trials = 2000, std::uint64_t seed = 7,
                  unsigned qubits = 4) {
  JobSpec spec;
  spec.circuit = decompose_to_cx_basis(make_qft(qubits));
  spec.noise = NoiseModel::uniform(qubits, 0.01, 0.04, 0.02);
  spec.config.num_trials = trials;
  spec.config.seed = seed;
  return spec;
}

ServiceConfig manual_config(std::size_t queue_capacity = 64,
                            std::size_t max_batch_jobs = 8) {
  ServiceConfig config;
  config.num_workers = 0;  // drain with run_pending() for determinism
  config.queue_capacity = queue_capacity;
  config.max_batch_jobs = max_batch_jobs;
  return config;
}

// ---------------------------------------------------------------------------
// Cross-job batching: the tentpole acceptance test.
// ---------------------------------------------------------------------------

TEST(ServiceBatch, TwoCompatibleJobsShareWorkAndStayBitwiseExact) {
  const JobSpec spec_a = make_spec(2500, /*seed=*/11);
  const JobSpec spec_b = make_spec(2500, /*seed=*/99);

  // Standalone references: what each job produces on its own.
  const NoisyRunResult solo_a = run_noisy(spec_a.circuit, spec_a.noise, spec_a.config);
  const NoisyRunResult solo_b = run_noisy(spec_b.circuit, spec_b.noise, spec_b.config);

  SimService service(manual_config());
  const std::uint64_t id_a = service.submit(spec_a);
  const std::uint64_t id_b = service.submit(spec_b);
  EXPECT_EQ(service.run_pending(), 2u);

  const std::optional<JobResult> result_a = service.result(id_a);
  const std::optional<JobResult> result_b = service.result(id_b);
  ASSERT_TRUE(result_a.has_value());
  ASSERT_TRUE(result_b.has_value());
  ASSERT_EQ(result_a->state, JobState::kDone);
  ASSERT_EQ(result_b->state, JobState::kDone);

  // Both jobs were merged into one batch of two.
  EXPECT_EQ(result_a->batch_size, 2u);
  EXPECT_EQ(result_b->batch_size, 2u);
  EXPECT_EQ(result_a->batch_ops, result_b->batch_ops);

  // The merged schedule does strictly less work than running both jobs
  // standalone — the cross-job sharing the batch planner exists for. It is
  // also strictly below 2x either single job's cost.
  EXPECT_LT(result_a->batch_ops, solo_a.ops + solo_b.ops);
  EXPECT_LT(result_a->batch_ops, 2 * solo_a.ops);
  EXPECT_LT(result_a->batch_ops, 2 * solo_b.ops);
  EXPECT_EQ(result_a->solo_ops, solo_a.ops);
  EXPECT_EQ(result_b->solo_ops, solo_b.ops);

  // Bitwise equivalence: each job's histogram is identical to the
  // standalone run with the same seed, despite executing interleaved with
  // the other job's trials.
  EXPECT_EQ(result_a->run.histogram, solo_a.histogram);
  EXPECT_EQ(result_b->run.histogram, solo_b.histogram);
  EXPECT_EQ(result_a->run.baseline_ops, solo_a.baseline_ops);
  EXPECT_EQ(result_b->run.baseline_ops, solo_b.baseline_ops);

  // Attributed ops telescope: the two shares sum exactly to the batch total.
  EXPECT_EQ(result_a->run.ops + result_b->run.ops, result_a->batch_ops);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.merged_batches, 1u);
  EXPECT_EQ(stats.merged_jobs, 2u);
  EXPECT_EQ(stats.merged_batch_ops, result_a->batch_ops);
  EXPECT_EQ(stats.merged_solo_ops, solo_a.ops + solo_b.ops);
}

TEST(ServiceBatch, ObservablesStayBitwiseExactInsideBatch) {
  JobSpec spec_a = make_spec(1200, 3);
  spec_a.config.observables = {PauliString::from_label("ZZII"),
                               PauliString::from_label("IXXI")};
  JobSpec spec_b = make_spec(800, 17);  // different trial count + observables
  spec_b.config.observables = {PauliString::from_label("ZIIZ")};

  const NoisyRunResult solo_a = run_noisy(spec_a.circuit, spec_a.noise, spec_a.config);
  const NoisyRunResult solo_b = run_noisy(spec_b.circuit, spec_b.noise, spec_b.config);

  SimService service(manual_config());
  const std::uint64_t id_a = service.submit(spec_a);
  const std::uint64_t id_b = service.submit(spec_b);
  service.run_pending();

  const JobResult result_a = *service.result(id_a);
  const JobResult result_b = *service.result(id_b);
  ASSERT_EQ(result_a.state, JobState::kDone);
  ASSERT_EQ(result_b.state, JobState::kDone);
  EXPECT_EQ(result_a.batch_size, 2u);

  ASSERT_EQ(result_a.run.observable_means.size(), 2u);
  ASSERT_EQ(result_b.run.observable_means.size(), 1u);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(result_a.run.observable_means[k], solo_a.observable_means[k]);
  }
  EXPECT_EQ(result_b.run.observable_means[0], solo_b.observable_means[0]);
  EXPECT_EQ(result_a.run.histogram, solo_a.histogram);
  EXPECT_EQ(result_b.run.histogram, solo_b.histogram);
}

TEST(ServiceBatch, SingleJobMatchesRunNoisyExactly) {
  const JobSpec spec = make_spec(1500, 23);
  const NoisyRunResult solo = run_noisy(spec.circuit, spec.noise, spec.config);

  SimService service(manual_config());
  const std::uint64_t id = service.submit(spec);
  service.run_pending();

  const JobResult result = *service.result(id);
  ASSERT_EQ(result.state, JobState::kDone);
  EXPECT_EQ(result.batch_size, 1u);
  EXPECT_EQ(result.run.ops, solo.ops);
  EXPECT_EQ(result.run.histogram, solo.histogram);
  EXPECT_EQ(result.batch_ops, solo.ops);
  EXPECT_EQ(result.solo_ops, solo.ops);
}

TEST(ServiceBatch, IncompatibleJobsDoNotMerge) {
  SimService service(manual_config());
  const std::uint64_t id_a = service.submit(make_spec(500, 1, /*qubits=*/4));
  const std::uint64_t id_b = service.submit(make_spec(500, 1, /*qubits=*/3));
  JobSpec different_noise = make_spec(500, 1, 4);
  different_noise.noise = NoiseModel::uniform(4, 0.02, 0.04, 0.02);
  const std::uint64_t id_c = service.submit(different_noise);
  service.run_pending();

  for (std::uint64_t id : {id_a, id_b, id_c}) {
    const JobResult result = *service.result(id);
    ASSERT_EQ(result.state, JobState::kDone);
    EXPECT_EQ(result.batch_size, 1u);
  }
  EXPECT_EQ(service.stats().merged_batches, 0u);
}

TEST(ServiceBatch, MaxBatchJobsCapsTheMerge) {
  SimService service(manual_config(/*queue_capacity=*/64, /*max_batch_jobs=*/2));
  std::vector<std::uint64_t> ids;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ids.push_back(service.submit(make_spec(400, seed)));
  }
  service.run_pending();
  // Three compatible jobs with a cap of 2: one batch of two, one singleton.
  EXPECT_EQ(service.result(ids[0])->batch_size, 2u);
  EXPECT_EQ(service.result(ids[1])->batch_size, 2u);
  EXPECT_EQ(service.result(ids[2])->batch_size, 1u);
}

TEST(ServiceBatch, ExecuteBatchAttributionSumsExactly) {
  const JobSpec a = make_spec(900, 5);
  const JobSpec b = make_spec(700, 6);
  const JobSpec c = make_spec(1100, 7);
  const BatchExecution batch = execute_batch({&a, &b, &c});
  ASSERT_EQ(batch.per_job.size(), 3u);
  ASSERT_EQ(batch.solo_ops.size(), 3u);
  opcount_t attributed = 0;
  opcount_t solo_total = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    attributed += batch.per_job[i].ops;
    solo_total += batch.solo_ops[i];
  }
  EXPECT_EQ(attributed, batch.batch_ops);
  EXPECT_LT(batch.batch_ops, solo_total);
}

// ---------------------------------------------------------------------------
// Queue lifecycle: submit -> poll -> cancel, backpressure, priority.
// ---------------------------------------------------------------------------

TEST(ServiceQueue, SubmitPollCancelLifecycle) {
  SimService service(manual_config());
  const std::uint64_t id = service.submit(make_spec(200));

  const std::optional<JobStatus> queued = service.poll(id);
  ASSERT_TRUE(queued.has_value());
  EXPECT_EQ(queued->state, JobState::kQueued);
  EXPECT_FALSE(service.result(id).has_value());  // not terminal yet

  EXPECT_TRUE(service.cancel(id));
  const std::optional<JobStatus> cancelled = service.poll(id);
  ASSERT_TRUE(cancelled.has_value());
  EXPECT_EQ(cancelled->state, JobState::kCancelled);
  const std::optional<JobResult> result = service.result(id);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->state, JobState::kCancelled);

  // Cancelled jobs never execute; a second cancel is a no-op.
  EXPECT_FALSE(service.cancel(id));
  EXPECT_EQ(service.run_pending(), 0u);
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(ServiceQueue, CancelFailsForUnknownAndFinishedJobs) {
  SimService service(manual_config());
  EXPECT_FALSE(service.cancel(12345));
  const std::uint64_t id = service.submit(make_spec(100));
  service.run_pending();
  EXPECT_FALSE(service.cancel(id));  // already done
  EXPECT_FALSE(service.poll(999).has_value());
}

TEST(ServiceQueue, BoundedQueueRejectsWithBackpressure) {
  SimService service(manual_config(/*queue_capacity=*/2));
  EXPECT_EQ(service.try_submit(make_spec(100, 1)).status, SubmitStatus::kAccepted);
  EXPECT_EQ(service.try_submit(make_spec(100, 2)).status, SubmitStatus::kAccepted);

  const SubmitOutcome full = service.try_submit(make_spec(100, 3));
  EXPECT_EQ(full.status, SubmitStatus::kQueueFull);
  EXPECT_EQ(full.job_id, 0u);
  EXPECT_EQ(service.stats().rejected, 1u);
  EXPECT_THROW(service.submit(make_spec(100, 3)), Error);

  // Draining frees capacity: the next submit succeeds.
  service.run_pending();
  EXPECT_EQ(service.try_submit(make_spec(100, 3)).status, SubmitStatus::kAccepted);
}

TEST(ServiceQueue, CancelFreesQueueCapacity) {
  SimService service(manual_config(/*queue_capacity=*/1));
  const std::uint64_t id = service.submit(make_spec(100, 1));
  EXPECT_EQ(service.try_submit(make_spec(100, 2)).status, SubmitStatus::kQueueFull);
  EXPECT_TRUE(service.cancel(id));
  EXPECT_EQ(service.try_submit(make_spec(100, 2)).status, SubmitStatus::kAccepted);
}

TEST(ServiceQueue, HighPriorityJobsClaimedFirst) {
  SimService service(manual_config(/*queue_capacity=*/8, /*max_batch_jobs=*/1));
  JobSpec low = make_spec(100, 1);
  low.priority = JobPriority::kLow;
  JobSpec normal = make_spec(100, 2);
  JobSpec high = make_spec(100, 3);
  high.priority = JobPriority::kHigh;

  const std::uint64_t id_low = service.submit(low);
  const std::uint64_t id_normal = service.submit(normal);
  const std::uint64_t id_high = service.submit(high);

  // Drain one batch at a time; with batching disabled the claim order is
  // priority first, submission order within a priority.
  EXPECT_EQ(service.run_pending(1), 1u);
  EXPECT_EQ(service.poll(id_high)->state, JobState::kDone);
  EXPECT_EQ(service.poll(id_normal)->state, JobState::kQueued);

  EXPECT_EQ(service.run_pending(1), 1u);
  EXPECT_EQ(service.poll(id_normal)->state, JobState::kDone);
  EXPECT_EQ(service.poll(id_low)->state, JobState::kQueued);

  EXPECT_EQ(service.run_pending(1), 1u);
  EXPECT_EQ(service.poll(id_low)->state, JobState::kDone);
}

TEST(ServiceQueue, BatchingNeverCrossesPriorityBoundaries) {
  // A high-priority job must not drag a compatible low-priority job ahead
  // of a queued normal-priority job... but it may: batching trades strict
  // ordering for shared work only within the claimed batch. What we pin
  // down: the claimed batch starts at the highest-priority job.
  SimService service(manual_config(/*queue_capacity=*/8, /*max_batch_jobs=*/8));
  JobSpec high = make_spec(300, 1);
  high.priority = JobPriority::kHigh;
  const std::uint64_t id_normal = service.submit(make_spec(300, 2));
  const std::uint64_t id_high = service.submit(high);
  service.run_pending(1);
  // Both are compatible, so the high-priority claim batched the normal one
  // along with it — both finished in one batch.
  EXPECT_EQ(service.poll(id_high)->state, JobState::kDone);
  EXPECT_EQ(service.poll(id_normal)->state, JobState::kDone);
  EXPECT_EQ(service.result(id_high)->batch_size, 2u);
}

// ---------------------------------------------------------------------------
// Validation.
// ---------------------------------------------------------------------------

TEST(ServiceValidation, RejectsBadSpecsWithoutEnqueueing) {
  SimService service(manual_config());

  JobSpec bad_msv = make_spec(100);
  bad_msv.config.max_states = 1;  // contract: 0 or >= 2
  EXPECT_EQ(service.try_submit(bad_msv).status, SubmitStatus::kInvalid);

  JobSpec small_noise = make_spec(100, 1, 4);
  small_noise.noise = NoiseModel::uniform(3, 0.01, 0.04, 0.0);
  EXPECT_EQ(service.try_submit(small_noise).status, SubmitStatus::kInvalid);

  JobSpec parallel_analyze = make_spec(100);
  parallel_analyze.num_threads = 2;
  parallel_analyze.analyze_only = true;
  EXPECT_EQ(service.try_submit(parallel_analyze).status, SubmitStatus::kInvalid);

  EXPECT_EQ(service.stats().submitted, 0u);
  EXPECT_EQ(service.stats().rejected, 3u);
  EXPECT_EQ(service.run_pending(), 0u);
}

TEST(ServiceValidation, AnalyzeOnlyJobsRunWithoutStatevector) {
  SimService service(manual_config());
  JobSpec spec = make_spec(400, 9);
  spec.analyze_only = true;
  const std::uint64_t id = service.submit(spec);
  service.run_pending();
  const JobResult result = *service.result(id);
  ASSERT_EQ(result.state, JobState::kDone);
  EXPECT_TRUE(result.run.histogram.empty());
  const NoisyRunResult solo = analyze_noisy(spec.circuit, spec.noise, spec.config);
  EXPECT_EQ(result.run.ops, solo.ops);
}

// ---------------------------------------------------------------------------
// Worker threads: wait(), concurrent submits, shutdown.
// ---------------------------------------------------------------------------

TEST(ServiceWorkers, WaitBlocksUntilTerminal) {
  ServiceConfig config;
  config.num_workers = 2;
  SimService service(config);

  const JobSpec spec = make_spec(1200, 31);
  const NoisyRunResult solo = run_noisy(spec.circuit, spec.noise, spec.config);
  const std::uint64_t id = service.submit(spec);
  const JobResult result = service.wait(id);
  ASSERT_EQ(result.state, JobState::kDone);
  EXPECT_EQ(result.run.histogram, solo.histogram);
  EXPECT_GE(result.exec_ms, 0.0);
  EXPECT_GE(result.queue_ms, 0.0);
  EXPECT_THROW(service.wait(4242), Error);  // unknown id
}

TEST(ServiceWorkers, ManyConcurrentSubmittersAllComplete) {
  ServiceConfig config;
  config.num_workers = 3;
  config.queue_capacity = 256;
  SimService service(config);

  std::atomic<std::size_t> accepted{0};
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::uint64_t>> ids(4);
  for (std::size_t t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (std::uint64_t k = 0; k < 6; ++k) {
        const SubmitOutcome out = service.try_submit(make_spec(300, t * 100 + k));
        if (out.status == SubmitStatus::kAccepted) {
          ids[t].push_back(out.job_id);
          accepted.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : submitters) {
    t.join();
  }
  std::size_t done = 0;
  for (const auto& per_thread : ids) {
    for (std::uint64_t id : per_thread) {
      const JobResult result = service.wait(id);
      EXPECT_EQ(result.state, JobState::kDone);
      ++done;
    }
  }
  EXPECT_EQ(done, accepted.load());
  EXPECT_EQ(service.stats().completed, accepted.load());
}

TEST(ServiceWorkers, ShutdownRejectsNewSubmits) {
  ServiceConfig config;
  config.num_workers = 1;
  SimService service(config);
  service.shutdown();
  EXPECT_EQ(service.try_submit(make_spec(100)).status, SubmitStatus::kShutdown);
  service.shutdown();  // idempotent
}

}  // namespace
}  // namespace rqsim
