// Pauli-frame subtree collapse: gate classification caches, the inverse
// gate table, bitwise identity of frame-collapsed runs against run_noisy
// on the Table I suite, the uncompute MSV fallback, and the PlanVerifier's
// frame-algebra pass (including the adversarial T-gate fixture).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bench_circuits/bv.hpp"
#include "bench_circuits/ghz.hpp"
#include "bench_circuits/suite.hpp"
#include "circuit/circuit.hpp"
#include "circuit/gate.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "linalg/pauli.hpp"
#include "noise/devices.hpp"
#include "noise/noise_model.hpp"
#include "obs/pauli_string.hpp"
#include "sched/order.hpp"
#include "sched/parallel.hpp"
#include "sched/tree.hpp"
#include "sched/tree_exec.hpp"
#include "transpile/decompose.hpp"
#include "trial/frame.hpp"
#include "trial/generator.hpp"
#include "verify/plan_verifier.hpp"

namespace rqsim {
namespace {

constexpr GateKind kAllKinds[] = {
    GateKind::X,  GateKind::Y,   GateKind::Z,  GateKind::H,  GateKind::S,
    GateKind::Sdg, GateKind::T,  GateKind::Tdg, GateKind::RX, GateKind::RY,
    GateKind::RZ, GateKind::P,   GateKind::U2, GateKind::U3, GateKind::CX,
    GateKind::CZ, GateKind::CP,  GateKind::SWAP, GateKind::CCX};

Gate make_kind(GateKind kind) {
  const int params = gate_num_params(kind);
  switch (gate_arity(kind)) {
    case 1:
      return Gate::make1(kind, 0, params > 0 ? 0.3 : 0.0,
                         params > 1 ? 0.7 : 0.0, params > 2 ? 1.1 : 0.0);
    case 2:
      return Gate::make2(kind, 0, 1, params > 0 ? 0.3 : 0.0);
    default:
      return Gate::make3(kind, 0, 1, 2);
  }
}

// ---------------------------------------------------------------------------
// Satellite: classification caches + inverse-gate table.

TEST(Frame, GateInverseRoundTrip) {
  // G·G⁻¹ must be the identity (up to a global phase) for every supported
  // kind, with parameterized kinds exercised at non-trivial angles.
  for (const GateKind kind : kAllKinds) {
    const Gate gate = make_kind(kind);
    const Gate inverse = gate_inverse(gate);
    switch (gate.arity()) {
      case 1:
        EXPECT_TRUE(equal_up_to_global_phase(gate_matrix1(gate) * gate_matrix1(inverse),
                                             Mat2::identity()))
            << gate_name(kind);
        break;
      case 2:
        EXPECT_TRUE(equal_up_to_global_phase(gate_matrix2(gate) * gate_matrix2(inverse),
                                             Mat4::identity()))
            << gate_name(kind);
        break;
      default:
        // CCX is its own inverse (a permutation, so also fp-exact).
        EXPECT_EQ(inverse.kind, GateKind::CCX);
        EXPECT_TRUE(gate_fp_exact_invertible(kind));
        break;
    }
  }
}

TEST(Frame, FpExactInvertibleWhitelist) {
  // The uncompute path may only rewind through kinds whose kernels are
  // pure permutation / ±1 / ±i — the exact whitelist, nothing else.
  for (const GateKind kind : kAllKinds) {
    const bool expected = kind == GateKind::X || kind == GateKind::Y ||
                          kind == GateKind::Z || kind == GateKind::S ||
                          kind == GateKind::Sdg || kind == GateKind::CX ||
                          kind == GateKind::CZ || kind == GateKind::SWAP ||
                          kind == GateKind::CCX;
    EXPECT_EQ(gate_fp_exact_invertible(kind), expected) << gate_name(kind);
  }
}

TEST(Frame, ClassificationCachedOnGate) {
  // The factories fill the cached flag/table pointer; Circuit::add
  // normalizes gates built without the factories (the qasm importer path).
  EXPECT_TRUE(Gate::make1(GateKind::H, 0).is_clifford());
  EXPECT_NE(Gate::make1(GateKind::H, 0).pauli_conjugation(), nullptr);
  EXPECT_FALSE(Gate::make1(GateKind::T, 0).is_clifford());
  EXPECT_EQ(Gate::make1(GateKind::T, 0).pauli_conjugation(), nullptr);

  Circuit circuit(1);
  Gate raw;
  raw.kind = GateKind::S;
  raw.qubits = {0, 0, 0};
  circuit.add(raw);  // bypasses the factories
  EXPECT_TRUE(circuit.gates().back().is_clifford());
  EXPECT_EQ(circuit.gates().back().pauli_conjugation(),
            &pauli_conjugation_table(GateKind::S));
}

// Pauli of a 2-bit (x | z<<1) symplectic code: I=0, X=1, Z=2, Y=3.
Mat2 code_matrix(unsigned code) {
  static const Pauli by_code[] = {Pauli::I, Pauli::X, Pauli::Z, Pauli::Y};
  return pauli_matrix(by_code[code & 3u]);
}

TEST(Frame, ConjugationTablesMatchNumericConjugation) {
  // Every table entry re-derived as the matrix conjugation G·P·G† and
  // matched up to the global phase the frame representation drops.
  for (const GateKind kind : kAllKinds) {
    if (!gate_kind_is_clifford(kind)) {
      continue;
    }
    const PauliConjugation& table = pauli_conjugation_table(kind);
    const Gate gate = make_kind(kind);
    if (gate.arity() == 1) {
      const Mat2 u = gate_matrix1(gate);
      for (unsigned in = 0; in < 4; ++in) {
        const Mat2 conjugated = u * code_matrix(in) * u.dagger();
        EXPECT_TRUE(equal_up_to_global_phase(conjugated, code_matrix(table.one[in])))
            << gate_name(kind) << " code " << in;
      }
    } else {
      const Mat4 u = gate_matrix2(gate);
      for (unsigned in = 0; in < 16; ++in) {
        // kron's first factor is qubits[0]'s Pauli — the high-order bit of
        // gate_matrix2's operand convention; code bits 0-1 are qubits[0].
        const Mat4 pauli = kron(code_matrix(in & 3u), code_matrix((in >> 2) & 3u));
        const unsigned out = table.two[in];
        const Mat4 expected = kron(code_matrix(out & 3u), code_matrix((out >> 2) & 3u));
        EXPECT_TRUE(equal_up_to_global_phase(u * pauli * u.dagger(), expected))
            << gate_name(kind) << " code " << in;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Bitwise identity of frame-collapsed runs.

ParallelRunConfig frame_config(std::size_t trials, std::size_t threads,
                               std::uint64_t seed = 5) {
  ParallelRunConfig config;
  config.num_trials = trials;
  config.num_threads = threads;
  config.seed = seed;
  config.frame_collapse = true;
  return config;
}

TEST(Frame, BitwiseHistogramsOnTable1SuiteAcrossThreads) {
  // The headline guarantee of the collapse: for every Table I benchmark
  // and every thread count, frame-mode histograms are bitwise identical to
  // the sequential run_noisy while matvec ops only ever shrink — strictly
  // on the Clifford-dominated entries.
  const DeviceModel dev = yorktown_device();
  for (const BenchmarkEntry& entry : make_table1_suite(dev)) {
    NoisyRunConfig serial_config;
    serial_config.num_trials = 400;
    serial_config.seed = 5;
    const NoisyRunResult serial = run_noisy(entry.compiled, dev.noise, serial_config);
    const NoisyRunResult tree =
        run_noisy_parallel(entry.compiled, dev.noise,
                           [&] {
                             ParallelRunConfig c = frame_config(400, 2);
                             c.frame_collapse = false;
                             return c;
                           }());
    for (const std::size_t threads : {1u, 2u, 8u}) {
      const NoisyRunResult framed =
          run_noisy_parallel(entry.compiled, dev.noise, frame_config(400, threads));
      EXPECT_EQ(framed.histogram, serial.histogram)
          << entry.name << " @ " << threads << " threads";
      EXPECT_LE(framed.ops, tree.ops) << entry.name << " @ " << threads << " threads";
      EXPECT_EQ(framed.redundant_prefix_ops, 0u) << entry.name;
      if (entry.name == "rb" || entry.name == "bv4" || entry.name == "bv5") {
        EXPECT_LT(framed.ops, tree.ops) << entry.name;
        EXPECT_GT(framed.telemetry.frame_collapsed_trials, 0u) << entry.name;
      }
    }
  }
}

TEST(Frame, ObservableMeansBitwiseWithFrames) {
  // Z-only frames sign observable terms by exact ±1 multiplies, so the
  // means stay bitwise equal to the sequential run — not merely close.
  const Circuit circuit = decompose_to_cx_basis(make_ghz(4));
  const NoiseModel noise = NoiseModel::uniform(4, 0.03, 0.1, 0.02);
  NoisyRunConfig serial_config;
  serial_config.num_trials = 600;
  serial_config.seed = 9;
  serial_config.observables = {PauliString::from_label("ZZZZ"),
                               PauliString::from_label("ZIIZ")};
  const NoisyRunResult serial = run_noisy(circuit, noise, serial_config);
  for (const std::size_t threads : {1u, 4u}) {
    ParallelRunConfig config = frame_config(600, threads, 9);
    config.observables = serial_config.observables;
    const NoisyRunResult framed = run_noisy_parallel(circuit, noise, config);
    ASSERT_EQ(framed.observable_means.size(), serial.observable_means.size());
    for (std::size_t k = 0; k < serial.observable_means.size(); ++k) {
      EXPECT_EQ(framed.observable_means[k], serial.observable_means[k])
          << "observable " << k << " @ " << threads << " threads";
    }
    EXPECT_EQ(framed.histogram, serial.histogram);
    EXPECT_GT(framed.telemetry.frame_collapsed_trials, 0u);
  }
}

TEST(Frame, CollapsedTreeShrinksPlanAndPeakDemand) {
  // The frame pass removes whole subtrees, so the collapsed tree plans
  // fewer ops and forks and never more peak demand — which is what the
  // prewarm sizing (tree peak_demand) and the MSV bound consume.
  const Circuit circuit = decompose_to_cx_basis(make_ghz(6));
  const NoiseModel noise = NoiseModel::uniform(6, 0.02, 0.08, 0.02);
  const CircuitContext ctx(circuit);
  Rng rng(11);
  std::vector<Trial> trials = generate_trials(circuit, ctx.layering, noise, 800, rng);
  assign_measurement_seeds(trials, rng);
  reorder_trials(trials);

  const ScheduleOptions unframed_options;
  ScheduleOptions framed_options;
  framed_options.frame_collapse = true;
  const ExecTree unframed = build_exec_tree(ctx, trials, unframed_options);
  const ExecTree framed = build_exec_tree(ctx, trials, framed_options);

  EXPECT_GT(framed.frame_collapsed_trials, 0u);
  EXPECT_TRUE(framed.has_frames());
  EXPECT_LT(framed.planned_ops, unframed.planned_ops);
  EXPECT_LT(framed.planned_forks, unframed.planned_forks);
  EXPECT_LE(framed.peak_demand, unframed.peak_demand);

  // The verifier proves the framed plan and certifies the exact saving.
  const PlanVerifier verifier(ctx, framed_options);
  const PlanProof proof = verifier.verify_tree_plan(trials, framed);
  ASSERT_TRUE(proof.ok) << proof.diagnostic;
  EXPECT_EQ(proof.frame_trials, framed.frame_collapsed_trials);
  EXPECT_EQ(proof.frame_ops, framed.planned_frame_ops);
  EXPECT_EQ(proof.cached_ops, framed.planned_ops);
  EXPECT_EQ(proof.frame_saved_ops, unframed.planned_ops - framed.planned_ops);
  EXPECT_GT(proof.frame_saved_ops, 0u);
}

// ---------------------------------------------------------------------------
// Uncompute fallback under a tight MSV budget.

TEST(Frame, UncomputeRoutesRefusedForksWithoutInlineFallback) {
  // GHZ downstream paths are CX-only (fp-exact-invertible), so every
  // budget-refused fork must take the uncompute path: bitwise results,
  // uncomputations > 0, inline_fallbacks == 0, and the op count still
  // equals the sequential schedule's (uncompute ops are billed separately).
  const Circuit circuit = decompose_to_cx_basis(make_ghz(6));
  const NoiseModel noise = NoiseModel::uniform(6, 0.02, 0.08, 0.02);
  NoisyRunConfig serial_config;
  serial_config.num_trials = 600;
  serial_config.seed = 13;
  serial_config.max_states = 2;
  const NoisyRunResult serial = run_noisy(circuit, noise, serial_config);
  for (const std::size_t threads : {4u, 8u}) {
    ParallelRunConfig config;
    config.num_trials = 600;
    config.seed = 13;
    config.max_states = 2;
    config.num_threads = threads;
    const NoisyRunResult result = run_noisy_parallel(circuit, noise, config);
    EXPECT_EQ(result.histogram, serial.histogram) << threads << " threads";
    EXPECT_EQ(result.ops, serial.ops) << threads << " threads";
    EXPECT_GT(result.telemetry.uncomputations, 0u) << threads << " threads";
    EXPECT_EQ(result.telemetry.inline_fallbacks, 0u) << threads << " threads";
  }
}

TEST(Frame, FramesComposeWithBudgetAndUncompute) {
  // Frames + tight budget together: collapse shrinks the tree, the budget
  // refuses some of the remaining forks, and the result is still bitwise.
  const Circuit circuit = decompose_to_cx_basis(make_ghz(6));
  const NoiseModel noise = NoiseModel::uniform(6, 0.02, 0.08, 0.02);
  NoisyRunConfig serial_config;
  serial_config.num_trials = 600;
  serial_config.seed = 13;
  serial_config.max_states = 2;
  const NoisyRunResult serial = run_noisy(circuit, noise, serial_config);
  ParallelRunConfig config = frame_config(600, 8, 13);
  config.max_states = 2;
  const NoisyRunResult framed = run_noisy_parallel(circuit, noise, config);
  EXPECT_EQ(framed.histogram, serial.histogram);
  EXPECT_LT(framed.ops, serial.ops);
  EXPECT_GT(framed.telemetry.frame_collapsed_trials, 0u);
  EXPECT_EQ(framed.telemetry.inline_fallbacks, 0u);
}

// ---------------------------------------------------------------------------
// Adversarial PlanVerifier fixtures.

TEST(Frame, VerifierRejectsFramePropagatedThroughTGate) {
  // Hand-corrupt a tree: claim an X-error trial collapsed to a frame even
  // though its downstream path crosses a T gate (which blocks an X frame).
  // The numeric frame-algebra pass must reject it, naming the trial.
  Circuit circuit(1);
  circuit.add(Gate::make1(GateKind::H, 0));  // layer 0
  circuit.add(Gate::make1(GateKind::T, 0));  // layer 1
  circuit.add(Gate::make1(GateKind::H, 0));  // layer 2
  circuit.measure(0);
  const CircuitContext ctx(circuit);

  // Trial 0: X error after layer 0's gate; trial 1: error-free.
  ErrorEvent event;
  event.layer = 0;
  event.position = 0;  // the H gate on qubit 0
  event.op = static_cast<std::uint8_t>(Pauli::X);
  std::vector<Trial> trials(2);
  trials[0].events = {event};
  reorder_trials(trials);
  Rng rng(1);
  assign_measurement_seeds(trials, rng);
  const std::size_t error_trial = trials[0].events.empty() ? 1 : 0;

  ScheduleOptions options;
  options.frame_collapse = true;
  ExecTree tree = build_exec_tree(ctx, trials, options);
  // The builder must refuse this collapse itself (T blocks the X frame)...
  ASSERT_EQ(tree.frame_collapsed_trials, 0u);
  const PlanVerifier verifier(ctx, options);
  ASSERT_TRUE(verifier.verify_tree_plan(trials, tree).ok);

  // ...so force it by hand: drop the trial's replay subtree and record a
  // bogus frame for it on the root.
  TreeNode& root = tree.nodes.front();
  ASSERT_FALSE(root.children.empty());
  root.children.clear();
  FrameTrial bogus;
  bogus.trial = error_trial;
  bogus.frame_x = 1;  // "X survived to the end" — it cannot have
  bogus.frame_ops = 1;
  root.frame_trials.push_back(bogus);
  tree.frame_collapsed_trials = 1;
  tree.planned_frame_ops = 1;

  const PlanProof proof = verifier.verify_tree_plan(trials, tree);
  ASSERT_FALSE(proof.ok);
  EXPECT_EQ(proof.violating_trial, error_trial);
  EXPECT_NE(proof.diagnostic.find("frame algebra violation"), std::string::npos)
      << proof.diagnostic;
  EXPECT_THROW(verify_tree_plan_or_throw(ctx, trials, tree, options, "frame_test"),
               Error);
}

TEST(Frame, VerifierRejectsCorruptedFrameMaskAndCounters) {
  const Circuit circuit = decompose_to_cx_basis(make_ghz(5));
  const NoiseModel noise = NoiseModel::uniform(5, 0.03, 0.1, 0.02);
  const CircuitContext ctx(circuit);
  Rng rng(17);
  std::vector<Trial> trials = generate_trials(circuit, ctx.layering, noise, 500, rng);
  assign_measurement_seeds(trials, rng);
  reorder_trials(trials);
  ScheduleOptions options;
  options.frame_collapse = true;
  const ExecTree tree = build_exec_tree(ctx, trials, options);
  ASSERT_GT(tree.frame_collapsed_trials, 0u);
  const PlanVerifier verifier(ctx, options);
  ASSERT_TRUE(verifier.verify_tree_plan(trials, tree).ok);

  // Flip one recorded frame bit: the numeric re-derivation must disagree.
  ExecTree bad_mask = tree;
  for (TreeNode& node : bad_mask.nodes) {
    if (!node.frame_trials.empty()) {
      node.frame_trials.front().frame_z ^= 1;
      break;
    }
  }
  const PlanProof mask_proof = verifier.verify_tree_plan(trials, bad_mask);
  EXPECT_FALSE(mask_proof.ok);
  EXPECT_NE(mask_proof.violating_trial, kNoIndex);

  // Inflate the tree's collapse counter: the totals cross-check fails.
  ExecTree bad_count = tree;
  bad_count.frame_collapsed_trials += 1;
  EXPECT_FALSE(verifier.verify_tree_plan(trials, bad_count).ok);
}

TEST(Frame, VerifierRejectsCorruptedUncomputeFlag) {
  // uncompute_ok is re-derived from the gate whitelist; a flipped claim in
  // either direction is a rejected plan.
  const Circuit circuit = decompose_to_cx_basis(make_ghz(5));
  const NoiseModel noise = NoiseModel::uniform(5, 0.03, 0.1, 0.02);
  const CircuitContext ctx(circuit);
  Rng rng(19);
  std::vector<Trial> trials = generate_trials(circuit, ctx.layering, noise, 400, rng);
  assign_measurement_seeds(trials, rng);
  reorder_trials(trials);
  const ScheduleOptions options;
  ExecTree tree = build_exec_tree(ctx, trials, options);
  const PlanVerifier verifier(ctx, options);
  ASSERT_TRUE(verifier.verify_tree_plan(trials, tree).ok);

  bool corrupted = false;
  for (TreeNode& node : tree.nodes) {
    if (node.kind == TreeNode::Kind::kReplay) {
      node.uncompute_ok = !node.uncompute_ok;
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  const PlanProof proof = verifier.verify_tree_plan(trials, tree);
  EXPECT_FALSE(proof.ok);
  EXPECT_NE(proof.diagnostic.find("uncompute_ok"), std::string::npos)
      << proof.diagnostic;
}

}  // namespace
}  // namespace rqsim
