// ThreadSanitizer smoke test for the Pauli-frame collapse and uncompute
// paths of the tree executor (plain main, no gtest).
//
// Frame-collapsed trials finish on a *shared* end-of-circuit buffer: the
// sink reads one probability vector from many trials' sampling loops
// concurrently, and the frame counters are process-global telemetry. The
// uncompute path additionally rewinds a shared buffer in place between
// replayed trials. This binary hammers both — frame-mode runs at several
// thread counts, with and without a tight MSV budget (which routes refused
// forks through uncomputation on the Clifford-only GHZ paths) — and
// cross-checks every run stays bitwise identical to the single-threaded
// reference (a race that perturbs results shows up here even if TSan's
// interleaving misses it).
//
// In the tier-1 flow the executor sources are recompiled into this target
// with -fsanitize=thread (tests/CMakeLists.txt); under the `tsan` preset
// the whole tree is instrumented.
#include <cstdio>

#include "bench_circuits/bv.hpp"
#include "bench_circuits/ghz.hpp"
#include "noise/noise_model.hpp"
#include "sched/parallel.hpp"
#include "transpile/decompose.hpp"

namespace {

int failures = 0;

#define SMOKE_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond);  \
      ++failures;                                                           \
    }                                                                       \
  } while (0)

void stress_one(const rqsim::Circuit& circuit, const rqsim::NoiseModel& noise,
                bool expect_uncompute_at_budget) {
  rqsim::ParallelRunConfig config;
  config.num_trials = 2000;
  config.num_threads = 1;
  config.seed = 7;
  config.frame_collapse = true;
  const rqsim::NoisyRunResult reference =
      rqsim::run_noisy_parallel(circuit, noise, config);
  SMOKE_CHECK(reference.telemetry.frame_collapsed_trials > 0);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    for (const std::size_t budget : {std::size_t{0}, std::size_t{2}}) {
      for (int rep = 0; rep < 3; ++rep) {
        rqsim::ParallelRunConfig run = config;
        run.num_threads = threads;
        run.max_states = budget;
        const rqsim::NoisyRunResult result =
            rqsim::run_noisy_parallel(circuit, noise, run);
        SMOKE_CHECK(result.histogram == reference.histogram);
        // A budget shatters over-budget groups into replay leaves before
        // their deeper subgroups get a collapse chance, so the collapsed
        // count may legitimately shrink — but never grow.
        SMOKE_CHECK(result.telemetry.frame_collapsed_trials <=
                    reference.telemetry.frame_collapsed_trials);
        SMOKE_CHECK(budget != 0 ||
                    result.telemetry.frame_collapsed_trials ==
                        reference.telemetry.frame_collapsed_trials);
        SMOKE_CHECK(budget != 0 || result.ops == reference.ops);
        if (budget != 0 && expect_uncompute_at_budget) {
          SMOKE_CHECK(result.telemetry.inline_fallbacks == 0);
        }
      }
    }
  }
}

void stress_frame_paths() {
  // GHZ: every downstream path is CX-only — frames collapse aggressively
  // and budget-refused forks must take the uncompute path.
  stress_one(rqsim::decompose_to_cx_basis(rqsim::make_ghz(6)),
             rqsim::NoiseModel::uniform(6, 0.02, 0.08, 0.02),
             /*expect_uncompute_at_budget=*/true);
  // BV: H layers conjugate X↔Z through the frame tables under concurrency.
  stress_one(rqsim::decompose_to_cx_basis(rqsim::make_bv(4, 0b1101)),
             rqsim::NoiseModel::uniform(5, 0.02, 0.08, 0.02),
             /*expect_uncompute_at_budget=*/false);
}

}  // namespace

int main() {
  stress_frame_paths();
  if (failures == 0) {
    std::printf("frame_tsan_smoke: all checks passed\n");
    return 0;
  }
  std::fprintf(stderr, "frame_tsan_smoke: %d check(s) failed\n", failures);
  return 1;
}
