#include <gtest/gtest.h>

#include "bench_circuits/bv.hpp"
#include "bench_circuits/qft.hpp"
#include "common/error.hpp"
#include "noise/devices.hpp"
#include "sched/runner.hpp"
#include "transpile/decompose.hpp"

namespace rqsim {
namespace {

TEST(Runner, AnalyzeMatchesRunOpsAndMsv) {
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const NoiseModel noise = NoiseModel::uniform(4, 0.01, 0.05, 0.02);
  NoisyRunConfig config;
  config.num_trials = 500;
  config.seed = 9;
  config.mode = ExecutionMode::kCachedReordered;
  const NoisyRunResult run = run_noisy(c, noise, config);
  const NoisyRunResult analyzed = analyze_noisy(c, noise, config);
  EXPECT_EQ(run.ops, analyzed.ops);
  EXPECT_EQ(run.max_live_states, analyzed.max_live_states);
  EXPECT_EQ(run.baseline_ops, analyzed.baseline_ops);
  EXPECT_DOUBLE_EQ(run.normalized_computation, analyzed.normalized_computation);
  EXPECT_FALSE(run.histogram.empty());
  EXPECT_TRUE(analyzed.histogram.empty());
}

TEST(Runner, BaselineModeReportsFullCost) {
  const Circuit c = decompose_to_cx_basis(make_qft(3));
  const NoiseModel noise = NoiseModel::uniform(3, 0.02, 0.1, 0.0);
  NoisyRunConfig config;
  config.num_trials = 100;
  config.mode = ExecutionMode::kBaseline;
  const NoisyRunResult result = run_noisy(c, noise, config);
  EXPECT_EQ(result.ops, result.baseline_ops);
  EXPECT_DOUBLE_EQ(result.normalized_computation, 1.0);
  EXPECT_EQ(result.max_live_states, 1u);
}

TEST(Runner, CachedSavesWork) {
  const Circuit c = decompose_to_cx_basis(make_bv(3, 0b101));
  const NoiseModel noise = NoiseModel::uniform(4, 0.002, 0.02, 0.02);
  NoisyRunConfig config;
  config.num_trials = 2048;
  config.mode = ExecutionMode::kCachedReordered;
  const NoisyRunResult result = run_noisy(c, noise, config);
  EXPECT_LT(result.normalized_computation, 0.5);
  EXPECT_GE(result.max_live_states, 1u);
  EXPECT_LT(result.max_live_states, 20u);
}

TEST(Runner, UnorderedAblationBetweenBaselineAndReordered) {
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const NoiseModel noise = NoiseModel::uniform(4, 0.01, 0.05, 0.0);
  NoisyRunConfig config;
  config.num_trials = 1000;
  config.seed = 3;

  config.mode = ExecutionMode::kCachedReordered;
  const NoisyRunResult reordered = analyze_noisy(c, noise, config);
  config.mode = ExecutionMode::kCachedUnordered;
  const NoisyRunResult unordered = analyze_noisy(c, noise, config);
  config.mode = ExecutionMode::kBaseline;
  const NoisyRunResult baseline = analyze_noisy(c, noise, config);

  EXPECT_LE(reordered.ops, unordered.ops);
  EXPECT_LE(unordered.ops, baseline.ops);
  // Without reordering, far more states must be maintained.
  EXPECT_GE(unordered.max_live_states, reordered.max_live_states);
}

TEST(Runner, UnorderedStatevectorModeRejected) {
  const Circuit c = decompose_to_cx_basis(make_qft(3));
  const NoiseModel noise = NoiseModel::uniform(3, 0.01, 0.05, 0.0);
  NoisyRunConfig config;
  config.mode = ExecutionMode::kCachedUnordered;
  EXPECT_THROW(run_noisy(c, noise, config), Error);
}

TEST(Runner, AnalyzeScalesBeyondStatevectorLimit) {
  // 36 qubits: amplitudes would need 1 TiB; analyze_noisy must handle it.
  Circuit c(36);
  for (qubit_t q = 0; q < 36; ++q) {
    c.h(q);
  }
  for (qubit_t q = 0; q + 1 < 36; ++q) {
    c.cx(q, q + 1);
  }
  c.measure_all();
  const NoiseModel noise = NoiseModel::uniform(36, 1e-3, 1e-2, 1e-2);
  NoisyRunConfig config;
  config.num_trials = 2000;
  config.mode = ExecutionMode::kCachedReordered;
  const NoisyRunResult result = analyze_noisy(c, noise, config);
  EXPECT_GT(result.baseline_ops, 0u);
  EXPECT_LE(result.ops, result.baseline_ops);
  EXPECT_GE(result.max_live_states, 1u);
}

TEST(Runner, NoiseModelTooSmallRejected) {
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const NoiseModel noise = NoiseModel::uniform(2, 0.01, 0.05, 0.0);
  EXPECT_THROW(run_noisy(c, noise, NoisyRunConfig{}), Error);
}

TEST(Runner, TrialStatsPopulated) {
  const Circuit c = decompose_to_cx_basis(make_qft(3));
  const NoiseModel noise = NoiseModel::uniform(3, 0.05, 0.2, 0.0);
  NoisyRunConfig config;
  config.num_trials = 300;
  const NoisyRunResult result = analyze_noisy(c, noise, config);
  EXPECT_EQ(result.trial_stats.num_trials, 300u);
  EXPECT_GT(result.trial_stats.total_errors, 0u);
}

TEST(Runner, SameSeedSameResult) {
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const NoiseModel noise = NoiseModel::uniform(4, 0.01, 0.05, 0.02);
  NoisyRunConfig config;
  config.num_trials = 400;
  config.seed = 1234;
  const NoisyRunResult a = run_noisy(c, noise, config);
  const NoisyRunResult b = run_noisy(c, noise, config);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.max_live_states, b.max_live_states);
  EXPECT_EQ(a.histogram, b.histogram);
}

TEST(Runner, YorktownEndToEnd) {
  const DeviceModel dev = yorktown_device();
  const Circuit c = decompose_to_cx_basis(make_bv(4, 0b1011));
  NoisyRunConfig config;
  config.num_trials = 1024;
  const NoisyRunResult result = run_noisy(c, dev.noise, config);
  EXPECT_LT(result.normalized_computation, 1.0);
  // The modal outcome should still be the secret despite noise.
  std::uint64_t best_outcome = 0;
  std::uint64_t best_count = 0;
  for (const auto& [outcome, count] : result.histogram) {
    if (count > best_count) {
      best_count = count;
      best_outcome = outcome;
    }
  }
  EXPECT_EQ(best_outcome, 0b1011u);
}

}  // namespace
}  // namespace rqsim
