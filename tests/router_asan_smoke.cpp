// ASan+UBSan smoke of the fleet router: the full socket path (front accept
// loop, bounded line reader, backend clients), failover resubmission after
// a backend dies mid-run, oversized-frame recovery, and the fan-out stats
// merge. Exercises the memory-ownership hot spots: RoutedJob map mutation
// under failover, per-connection buffers, response caching.
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "router/router.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/socket_util.hpp"

namespace rqsim {
namespace {

Json submit(std::uint64_t seed, const std::string& tenant) {
  WorkloadSpec workload;
  workload.circuit_spec = "ghz:4";
  workload.device = "ideal";
  SubmitParams params;
  params.trials = 150;
  params.seed = seed;
  params.tenant = tenant;
  return make_submit_request(workload, params);
}

int run() {
  // Three backends with real worker threads.
  std::vector<std::unique_ptr<SimServer>> backends;
  std::vector<std::thread> backend_threads;
  std::vector<std::string> endpoints;
  for (int i = 0; i < 3; ++i) {
    ServerConfig config;
    config.tcp_port = 0;
    config.service.num_workers = 1;
    backends.push_back(std::make_unique<SimServer>(std::move(config)));
    backend_threads.emplace_back([srv = backends.back().get()] { srv->run(); });
    endpoints.push_back("127.0.0.1:" + std::to_string(backends.back()->tcp_port()));
  }

  RouterConfig config;
  config.tcp_port = 0;
  config.backends = endpoints;
  config.health.interval_ms = 100;
  config.health.eject_after = 1;
  config.backend_client.max_attempts = 1;
  FleetRouter router(std::move(config));
  std::thread router_thread([&router] { router.run(); });

  ServiceClient client = ServiceClient::connect_tcp("127.0.0.1", router.tcp_port());

  // An oversized frame first: the connection must survive it.
  {
    const int fd = connect_tcp_fd("127.0.0.1", router.tcp_port(), 2000);
    std::string huge(kMaxLineBytes + 32, 'y');
    huge.push_back('\n');
    write_all(fd, huge);
    std::string buffer;
    std::string line;
    if (read_line_bounded(fd, buffer, line, kMaxLineBytes) != ReadLineStatus::kLine ||
        Json::parse(line).get_string("error", "") != "oversized_line") {
      std::fprintf(stderr, "oversized frame not rejected: %s\n", line.c_str());
      return 1;
    }
    write_all(fd, "{\"op\":\"ping\"}\n");
    if (read_line_bounded(fd, buffer, line, kMaxLineBytes) != ReadLineStatus::kLine ||
        !Json::parse(line).get_bool("ok", false)) {
      std::fprintf(stderr, "connection did not survive oversized frame\n");
      return 1;
    }
    ::close(fd);
  }

  // Submit compatible jobs from two tenants; they share one backend.
  std::vector<std::uint64_t> jobs;
  std::string owner;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Json accepted =
        client.request(submit(seed, seed % 2 ? "alice" : "bob"));
    if (!accepted.get_bool("ok", false)) {
      std::fprintf(stderr, "submit failed: %s\n", accepted.dump().c_str());
      return 1;
    }
    jobs.push_back(accepted.at("job").as_u64());
    owner = accepted.get_string("backend", "");
  }

  // Kill the owning backend while jobs are in flight; waits after this must
  // heal every unfinished job onto another backend.
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    if (endpoints[i] == owner) {
      backends[i]->stop();
      backend_threads[i].join();
    }
  }

  for (const std::uint64_t job : jobs) {
    Json wait_request = Json::object();
    wait_request.set("op", Json(std::string("wait")));
    wait_request.set("job", Json(job));
    const Json done = client.request(wait_request);
    if (done.get_string("state", "") != "done") {
      std::fprintf(stderr, "job %llu not done: %s\n",
                   static_cast<unsigned long long>(job), done.dump().c_str());
      return 1;
    }
  }

  const Json stats = client.request(Json::parse("{\"op\":\"stats\"}"));
  if (!stats.get_bool("ok", false) ||
      stats.at("stats").get_u64("completed", 0) < jobs.size()) {
    std::fprintf(stderr, "fleet stats missing completions: %s\n",
                 stats.dump().c_str());
    return 1;
  }

  client.request(Json::parse("{\"op\":\"shutdown\"}"));
  router_thread.join();
  for (std::size_t i = 0; i < backends.size(); ++i) {
    backends[i]->stop();
    if (backend_threads[i].joinable()) {
      backend_threads[i].join();
    }
  }
  std::printf("router_asan_smoke: ok (%zu jobs, failover healed)\n", jobs.size());
  return 0;
}

}  // namespace
}  // namespace rqsim

int main() {
  try {
    return rqsim::run();
  } catch (const rqsim::Error& e) {
    std::fprintf(stderr, "router_asan_smoke: %s\n", e.what());
    return 1;
  }
}
