// Idle/decay noise: errors injected at layer boundaries without an
// attached gate (paper Section III.B.1, "could appear at any place across
// the quantum circuit"). Exercises the virtual-position event encoding
// through every execution path.
#include <gtest/gtest.h>

#include "bench_circuits/qft.hpp"
#include "circuit/layering.hpp"
#include "common/rng.hpp"
#include "dm/density_matrix.hpp"
#include "noise/noise_model.hpp"
#include "sched/backend.hpp"
#include "sched/baseline.hpp"
#include "sched/order.hpp"
#include "sched/runner.hpp"
#include "transpile/decompose.hpp"
#include "trial/generator.hpp"

namespace rqsim {
namespace {

TEST(IdleNoise, ModelConfiguration) {
  NoiseModel noise = NoiseModel::uniform(3, 0.0, 0.0, 0.0);
  EXPECT_FALSE(noise.has_idle_noise());
  EXPECT_DOUBLE_EQ(noise.idle_pauli_rate(1), 0.0);
  noise.set_idle_rate(1, 0.02);
  EXPECT_TRUE(noise.has_idle_noise());
  EXPECT_DOUBLE_EQ(noise.idle_pauli_rate(1), 0.02);
  EXPECT_DOUBLE_EQ(noise.idle_pauli_rate(0), 0.0);
  noise.set_uniform_idle_rate(0.01);
  EXPECT_DOUBLE_EQ(noise.idle_pauli_rate(0), 0.01);
  EXPECT_FALSE(noise.is_noiseless());
  const NoiseModel half = noise.scaled(0.5);
  EXPECT_DOUBLE_EQ(half.idle_pauli_rate(2), 0.005);
}

TEST(IdleNoise, PositionEncodingRoundTrip) {
  const std::size_t num_gates = 17;
  for (qubit_t q = 0; q < 8; ++q) {
    const gate_index_t pos = idle_position(num_gates, q);
    EXPECT_TRUE(is_idle_position(num_gates, pos));
    EXPECT_EQ(idle_qubit(num_gates, pos), q);
  }
  EXPECT_FALSE(is_idle_position(num_gates, 16));
}

TEST(IdleNoise, GeneratorEmitsIdleEvents) {
  Circuit c(2);
  c.h(0);
  c.h(1);
  c.cx(0, 1);
  c.measure_all();
  const Layering l = layer_circuit(c);
  NoiseModel noise = NoiseModel::uniform(2, 0.0, 0.0, 0.0);
  noise.set_uniform_idle_rate(0.25);
  Rng rng(5);
  const std::size_t n = 40000;
  const auto trials = generate_trials(c, l, noise, n, rng);
  // 2 layers x 2 qubits x 0.25 = 1 expected idle error per trial.
  std::size_t total = 0;
  for (const Trial& t : trials) {
    total += t.events.size();
    for (const ErrorEvent& e : t.events) {
      EXPECT_TRUE(is_idle_position(c.num_gates(), e.position));
      EXPECT_LT(idle_qubit(c.num_gates(), e.position), 2u);
      EXPECT_LT(e.layer, l.num_layers());
      EXPECT_GE(e.op, 1);
      EXPECT_LE(e.op, 3);
    }
  }
  EXPECT_NEAR(static_cast<double>(total) / static_cast<double>(n), 1.0, 0.03);
}

TEST(IdleNoise, SlowAndFastGeneratorsAgreeInDistribution) {
  Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  c.measure_all();
  const Layering l = layer_circuit(c);
  NoiseModel noise = NoiseModel::uniform(3, 0.05, 0.1, 0.0);
  noise.set_idle_rate(0, 0.08);
  noise.set_idle_rate(2, 0.15);

  const std::size_t n = 60000;
  Rng rng_slow(9);
  std::size_t slow_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    slow_total += generate_trial(c, l, noise, rng_slow).events.size();
  }
  Rng rng_fast(10);
  std::size_t fast_total = 0;
  for (const Trial& t : generate_trials(c, l, noise, n, rng_fast)) {
    fast_total += t.events.size();
  }
  const double slow_mean = static_cast<double>(slow_total) / static_cast<double>(n);
  const double fast_mean = static_cast<double>(fast_total) / static_cast<double>(n);
  EXPECT_NEAR(slow_mean, fast_mean, 0.02);
}

TEST(IdleNoise, BitwiseEquivalenceWithIdleEvents) {
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const CircuitContext ctx(c);
  NoiseModel noise = NoiseModel::uniform(4, 0.01, 0.05, 0.02);
  noise.set_uniform_idle_rate(0.01);
  Rng rng(21);
  auto trials = generate_trials(c, ctx.layering, noise, 300, rng);
  reorder_trials(trials);

  Rng sample_rng(1);
  SvBackend backend(ctx, sample_rng, /*record_final_states=*/true);
  schedule_trials(ctx, trials, backend);
  const SvRunResult cached = backend.take_result();
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_TRUE(cached.final_states[i].bitwise_equal(simulate_trial(ctx, trials[i])))
        << "trial " << i;
  }
}

TEST(IdleNoise, TraceEquivalenceWithIdleEvents) {
  const Circuit c = decompose_to_cx_basis(make_qft(3));
  const CircuitContext ctx(c);
  NoiseModel noise = NoiseModel::uniform(3, 0.02, 0.05, 0.0);
  noise.set_uniform_idle_rate(0.03);
  Rng rng(22);
  auto trials = generate_trials(c, ctx.layering, noise, 200, rng);
  reorder_trials(trials);
  TraceBackend backend(ctx, trials.size());
  schedule_trials(ctx, trials, backend);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const auto expected = expected_trace(ctx, trials[i]);
    ASSERT_EQ(backend.traces()[i].size(), expected.size());
    for (std::size_t k = 0; k < expected.size(); ++k) {
      EXPECT_TRUE(backend.traces()[i][k] == expected[k]);
    }
  }
}

TEST(IdleNoise, MonteCarloMatchesExactChannel) {
  // End-to-end: idle-noise Monte Carlo converges to the density-matrix
  // evolution with per-layer idle depolarizing channels.
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.h(1);
  c.measure_all();
  NoiseModel noise = NoiseModel::uniform(2, 0.01, 0.04, 0.02);
  noise.set_idle_rate(0, 0.05);
  noise.set_idle_rate(1, 0.02);

  const std::vector<double> exact = exact_noisy_distribution(c, noise);
  NoisyRunConfig config;
  config.num_trials = 200000;
  config.seed = 3;
  const NoisyRunResult mc = run_noisy(c, noise, config);

  double tvd = 0.0;
  for (std::uint64_t outcome = 0; outcome < exact.size(); ++outcome) {
    const auto it = mc.histogram.find(outcome);
    const double sampled =
        it == mc.histogram.end()
            ? 0.0
            : static_cast<double>(it->second) / static_cast<double>(config.num_trials);
    tvd += std::abs(sampled - exact[outcome]);
  }
  EXPECT_LT(tvd / 2.0, 0.01);
}

TEST(IdleNoise, IdleErrorsReduceSavings) {
  // Idle noise adds error positions, reducing shared prefixes — normalized
  // computation must not improve when idle noise is switched on.
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  NoiseModel quiet = NoiseModel::uniform(4, 0.005, 0.02, 0.0);
  NoiseModel noisy = quiet;
  noisy.set_uniform_idle_rate(0.02);

  NoisyRunConfig config;
  config.num_trials = 2000;
  config.seed = 4;
  const NoisyRunResult without = analyze_noisy(c, quiet, config);
  const NoisyRunResult with_idle = analyze_noisy(c, noisy, config);
  EXPECT_GT(with_idle.normalized_computation, without.normalized_computation);
}

}  // namespace
}  // namespace rqsim
