// The paper's central claim (Section IV.B): the reordered, prefix-cached
// simulation is *mathematically equivalent* to the baseline Monte Carlo
// simulation. These tests prove it on this implementation:
//
//  1. Bitwise: for every trial, the final statevector produced by the
//     cached executor is bit-for-bit identical to simulating that trial
//     from scratch (both paths apply the identical operator sequence in the
//     identical order, so even floating-point rounding agrees).
//  2. Statistical: outcome histograms of baseline vs cached runs over the
//     same trial set are close in total-variation distance.
#include <gtest/gtest.h>

#include <tuple>

#include "bench_circuits/grover.hpp"
#include "bench_circuits/qft.hpp"
#include "bench_circuits/qv.hpp"
#include "common/rng.hpp"
#include "noise/devices.hpp"
#include "noise/noise_model.hpp"
#include "sched/backend.hpp"
#include "sched/baseline.hpp"
#include "sched/order.hpp"
#include "sched/plan.hpp"
#include "transpile/decompose.hpp"
#include "transpile/transpiler.hpp"
#include "trial/generator.hpp"

namespace rqsim {
namespace {

struct EquivCase {
  const char* name;
  unsigned qubits;
  double single_rate;
  double two_rate;
  std::size_t trials;
  std::uint64_t seed;
};

class BitwiseEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(BitwiseEquivalence, CachedFinalStatesMatchDirectSimulationExactly) {
  const EquivCase param = GetParam();
  const Circuit c = decompose_to_cx_basis(make_qft(param.qubits));
  const CircuitContext ctx(c);
  const NoiseModel noise =
      NoiseModel::uniform(param.qubits, param.single_rate, param.two_rate, 0.05);
  Rng rng(param.seed);
  auto trials = generate_trials(c, ctx.layering, noise, param.trials, rng);
  reorder_trials(trials);

  Rng sample_rng(1);
  SvBackend backend(ctx, sample_rng, /*record_final_states=*/true);
  schedule_trials(ctx, trials, backend);
  const SvRunResult cached = backend.take_result();
  ASSERT_EQ(cached.final_states.size(), trials.size());

  for (std::size_t i = 0; i < trials.size(); ++i) {
    const StateVector direct = simulate_trial(ctx, trials[i]);
    EXPECT_TRUE(cached.final_states[i].bitwise_equal(direct))
        << "trial " << i << " with " << trials[i].num_errors() << " errors";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BitwiseEquivalence,
    ::testing::Values(EquivCase{"low_noise", 3, 0.005, 0.03, 200, 11},
                      EquivCase{"mid_noise", 4, 0.02, 0.10, 200, 12},
                      EquivCase{"high_noise", 4, 0.10, 0.40, 150, 13},
                      EquivCase{"extreme_noise", 3, 0.25, 0.60, 100, 14},
                      EquivCase{"five_qubits", 5, 0.01, 0.05, 250, 15}),
    [](const ::testing::TestParamInfo<EquivCase>& info) { return info.param.name; });

TEST(BitwiseEquivalenceExtra, GroverCompiledOntoYorktown) {
  const DeviceModel dev = yorktown_device();
  const TranspileResult compiled = transpile(make_grover3(5), dev.coupling);
  const CircuitContext ctx(compiled.circuit);
  Rng rng(21);
  auto trials = generate_trials(compiled.circuit, ctx.layering, dev.noise, 300, rng);
  reorder_trials(trials);

  Rng sample_rng(2);
  SvBackend backend(ctx, sample_rng, /*record_final_states=*/true);
  schedule_trials(ctx, trials, backend);
  const SvRunResult cached = backend.take_result();
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_TRUE(cached.final_states[i].bitwise_equal(simulate_trial(ctx, trials[i])));
  }
}

TEST(BitwiseEquivalenceExtra, QvCircuit) {
  const Circuit c = decompose_to_cx_basis(make_qv(5, 4, /*seed=*/3));
  const CircuitContext ctx(c);
  const NoiseModel noise = NoiseModel::uniform(5, 0.01, 0.08, 0.02);
  Rng rng(22);
  auto trials = generate_trials(c, ctx.layering, noise, 200, rng);
  reorder_trials(trials);
  Rng sample_rng(3);
  SvBackend backend(ctx, sample_rng, /*record_final_states=*/true);
  schedule_trials(ctx, trials, backend);
  const SvRunResult cached = backend.take_result();
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_TRUE(cached.final_states[i].bitwise_equal(simulate_trial(ctx, trials[i])));
  }
}

TEST(StatisticalEquivalence, HistogramsAgreeInDistribution) {
  // Baseline and cached runs on the *same* trial set sample independently,
  // so histograms differ, but the total-variation distance must be small
  // for a large number of trials.
  const Circuit c = decompose_to_cx_basis(make_qft(3));
  const CircuitContext ctx(c);
  const NoiseModel noise = NoiseModel::uniform(3, 0.02, 0.08, 0.03);
  Rng rng(31);
  auto trials = generate_trials(c, ctx.layering, noise, 20000, rng);

  Rng base_rng(41);
  const SvRunResult base = baseline_simulate(ctx, trials, base_rng);

  reorder_trials(trials);
  Rng cached_rng(43);
  SvBackend backend(ctx, cached_rng);
  schedule_trials(ctx, trials, backend);
  const SvRunResult cached = backend.take_result();

  EXPECT_LT(total_variation_distance(base.histogram, cached.histogram), 0.03);
  // The cached run must do strictly less work here.
  EXPECT_LT(cached.ops, base.ops);
}

TEST(StatisticalEquivalence, MeasurementErrorFlipsPropagate) {
  // With a 100% measurement flip rate on every qubit and no gate noise, a
  // noiseless-deterministic circuit must output the complement, in both
  // execution modes.
  Circuit c(2);
  c.x(0);
  c.measure_all();  // ideal outcome 0b01 -> flipped to 0b10
  const CircuitContext ctx(c);
  const NoiseModel noise = NoiseModel::uniform(2, 0.0, 0.0, 1.0);
  Rng rng(51);
  auto trials = generate_trials(c, ctx.layering, noise, 50, rng);

  Rng base_rng(52);
  const SvRunResult base = baseline_simulate(ctx, trials, base_rng);
  ASSERT_EQ(base.histogram.size(), 1u);
  EXPECT_EQ(base.histogram.begin()->first, 0b10u);

  reorder_trials(trials);
  Rng cached_rng(53);
  SvBackend backend(ctx, cached_rng);
  schedule_trials(ctx, trials, backend);
  const SvRunResult cached = backend.take_result();
  ASSERT_EQ(cached.histogram.size(), 1u);
  EXPECT_EQ(cached.histogram.begin()->first, 0b10u);
}

TEST(StatisticalEquivalence, NoiselessRunIsDeterministic) {
  // Zero noise: all trials identical and error-free; cached execution runs
  // the circuit exactly once and every sample hits the ideal output.
  Circuit c(3);
  c.x(0);
  c.x(2);
  c.measure_all();
  const CircuitContext ctx(c);
  const NoiseModel noise = NoiseModel::uniform(3, 0.0, 0.0, 0.0);
  Rng rng(61);
  auto trials = generate_trials(c, ctx.layering, noise, 500, rng);
  reorder_trials(trials);
  Rng cached_rng(62);
  SvBackend backend(ctx, cached_rng);
  schedule_trials(ctx, trials, backend);
  const SvRunResult cached = backend.take_result();
  EXPECT_EQ(cached.ops, ctx.total_gate_ops());
  ASSERT_EQ(cached.histogram.size(), 1u);
  EXPECT_EQ(cached.histogram.begin()->first, 0b101u);
  EXPECT_EQ(cached.histogram.begin()->second, 500u);
}

}  // namespace
}  // namespace rqsim
