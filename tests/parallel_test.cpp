#include <gtest/gtest.h>

#include "bench_circuits/qft.hpp"
#include "common/error.hpp"
#include "noise/noise_model.hpp"
#include "obs/pauli_string.hpp"
#include "sched/parallel.hpp"
#include "sim/measure.hpp"
#include "transpile/decompose.hpp"

namespace rqsim {
namespace {

ParallelRunConfig make_config(std::size_t trials, std::size_t threads,
                              std::uint64_t seed = 11) {
  ParallelRunConfig config;
  config.num_trials = trials;
  config.num_threads = threads;
  config.seed = seed;
  return config;
}

TEST(Parallel, AllTrialsAccountedFor) {
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const NoiseModel noise = NoiseModel::uniform(4, 0.01, 0.05, 0.02);
  const NoisyRunResult result = run_noisy_parallel(c, noise, make_config(4000, 4));
  std::uint64_t total = 0;
  for (const auto& [outcome, count] : result.histogram) {
    (void)outcome;
    total += count;
  }
  EXPECT_EQ(total, 4000u);
  EXPECT_GT(result.ops, 0u);
  EXPECT_LT(result.normalized_computation, 1.0);
}

TEST(Parallel, DeterministicForFixedSeedAndThreads) {
  const Circuit c = decompose_to_cx_basis(make_qft(3));
  const NoiseModel noise = NoiseModel::uniform(3, 0.02, 0.08, 0.01);
  const NoisyRunResult a = run_noisy_parallel(c, noise, make_config(3000, 3));
  const NoisyRunResult b = run_noisy_parallel(c, noise, make_config(3000, 3));
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.histogram, b.histogram);
  EXPECT_EQ(a.max_live_states, b.max_live_states);
}

TEST(Parallel, ChunkingCostsBoundedExtra) {
  // Chunked mode loses only cross-boundary sharing: ops_parallel is at
  // least ops_serial and at most ops_serial + (threads-1) full circuits;
  // the excess is reported exactly as redundant_prefix_ops.
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const NoiseModel noise = NoiseModel::uniform(4, 0.01, 0.04, 0.0);
  const std::size_t threads = 5;
  ParallelRunConfig serial_config = make_config(5000, 1);
  serial_config.parallel_mode = ParallelMode::kChunked;
  ParallelRunConfig parallel_config = make_config(5000, threads);
  parallel_config.parallel_mode = ParallelMode::kChunked;
  const NoisyRunResult serial = run_noisy_parallel(c, noise, serial_config);
  const NoisyRunResult parallel = run_noisy_parallel(c, noise, parallel_config);
  EXPECT_GE(parallel.ops, serial.ops);
  const CircuitContext ctx(c);
  // A chunk boundary can at worst force a re-execution of everything one
  // trial shares: bounded by the full trial cost times the extra chunks.
  EXPECT_LE(parallel.ops,
            serial.ops + (threads - 1) * 2 * ctx.total_gate_ops() + 64);
  EXPECT_EQ(parallel.baseline_ops, serial.baseline_ops);
  // One sequential scheduler over the same list performs serial.ops, so the
  // chunked excess is exactly the recomputed prefix work.
  EXPECT_EQ(serial.redundant_prefix_ops, 0u);
  EXPECT_EQ(parallel.redundant_prefix_ops, parallel.ops - serial.ops);
}

TEST(Parallel, ChunkedHistogramMatchesSerialBitwise) {
  // Per-trial measurement seeds make the histogram independent of which
  // worker finishes a trial: chunked mode reproduces run_noisy exactly.
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const NoiseModel noise = NoiseModel::uniform(4, 0.02, 0.07, 0.02);
  ParallelRunConfig config = make_config(4000, 4, 7);
  config.parallel_mode = ParallelMode::kChunked;
  const NoisyRunResult chunked = run_noisy_parallel(c, noise, config);
  const NoisyRunResult serial = run_noisy(c, noise, config);
  EXPECT_EQ(chunked.histogram, serial.histogram);
}

TEST(Parallel, DistributionMatchesSerial) {
  const Circuit c = decompose_to_cx_basis(make_qft(3));
  const NoiseModel noise = NoiseModel::uniform(3, 0.02, 0.08, 0.03);
  const NoisyRunResult serial = run_noisy_parallel(c, noise, make_config(30000, 1, 1));
  const NoisyRunResult parallel = run_noisy_parallel(c, noise, make_config(30000, 6, 2));
  EXPECT_LT(total_variation_distance(serial.histogram, parallel.histogram), 0.03);
}

TEST(Parallel, MoreThreadsThanTrials) {
  const Circuit c = decompose_to_cx_basis(make_qft(3));
  const NoiseModel noise = NoiseModel::uniform(3, 0.02, 0.08, 0.0);
  const NoisyRunResult result = run_noisy_parallel(c, noise, make_config(3, 16));
  std::uint64_t total = 0;
  for (const auto& [outcome, count] : result.histogram) {
    (void)outcome;
    total += count;
  }
  EXPECT_EQ(total, 3u);
}

TEST(Parallel, RespectsMsvBudget) {
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const NoiseModel noise = NoiseModel::uniform(4, 0.05, 0.2, 0.0);
  ParallelRunConfig config = make_config(4000, 4);
  config.max_states = 3;
  const NoisyRunResult result = run_noisy_parallel(c, noise, config);
  EXPECT_LE(result.max_live_states, 3u);
}

TEST(Parallel, ObservablesSupported) {
  const Circuit c = decompose_to_cx_basis(make_qft(3));
  const NoiseModel noise = NoiseModel::uniform(3, 0.01, 0.04, 0.0);
  ParallelRunConfig config = make_config(5000, 4, 21);
  config.observables = {PauliString::from_label("ZZI"),
                        PauliString::from_label("IXX")};
  const NoisyRunResult parallel = run_noisy_parallel(c, noise, config);
  ASSERT_EQ(parallel.observable_means.size(), 2u);
  // Observable means are sampling-free, so serial (thread=1) agrees exactly.
  config.num_threads = 1;
  const NoisyRunResult serial = run_noisy_parallel(c, noise, config);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_NEAR(parallel.observable_means[k], serial.observable_means[k], 1e-9);
  }
}

TEST(Parallel, RepeatedRunsAreBitwiseIdentical) {
  // Same seed + same thread count must reproduce everything exactly —
  // histograms, observable means, op counts — run after run. The worker
  // Rngs are derived deterministically on the caller thread, so thread
  // scheduling cannot leak into the results.
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const NoiseModel noise = NoiseModel::uniform(4, 0.015, 0.06, 0.02);
  ParallelRunConfig config = make_config(6000, 4, 1234);
  config.observables = {PauliString::from_label("ZZZZ"),
                        PauliString::from_label("XIIX")};
  const NoisyRunResult first = run_noisy_parallel(c, noise, config);
  for (int rep = 0; rep < 3; ++rep) {
    const NoisyRunResult again = run_noisy_parallel(c, noise, config);
    EXPECT_EQ(again.histogram, first.histogram);
    EXPECT_EQ(again.ops, first.ops);
    EXPECT_EQ(again.max_live_states, first.max_live_states);
    ASSERT_EQ(again.observable_means.size(), first.observable_means.size());
    for (std::size_t k = 0; k < first.observable_means.size(); ++k) {
      // Bitwise: partial sums are reduced in a fixed worker order.
      EXPECT_EQ(again.observable_means[k], first.observable_means[k]);
    }
  }
}

TEST(Parallel, OneThreadMatchesSerialSchedulerBitwise) {
  // A single worker continues on the generation Rng exactly like run_noisy,
  // so the two entry points are interchangeable at num_threads == 1.
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const NoiseModel noise = NoiseModel::uniform(4, 0.02, 0.07, 0.03);
  ParallelRunConfig parallel_config = make_config(4000, 1, 99);
  parallel_config.observables = {PauliString::from_label("ZIZI")};

  NoisyRunConfig serial_config = parallel_config;  // slices the base fields
  const NoisyRunResult serial = run_noisy(c, noise, serial_config);
  const NoisyRunResult parallel = run_noisy_parallel(c, noise, parallel_config);

  EXPECT_EQ(parallel.histogram, serial.histogram);
  EXPECT_EQ(parallel.ops, serial.ops);
  EXPECT_EQ(parallel.baseline_ops, serial.baseline_ops);
  EXPECT_EQ(parallel.max_live_states, serial.max_live_states);
  ASSERT_EQ(parallel.observable_means.size(), 1u);
  EXPECT_EQ(parallel.observable_means[0], serial.observable_means[0]);
}

TEST(Parallel, RejectsSingleStateBudget) {
  const Circuit c = decompose_to_cx_basis(make_qft(3));
  const NoiseModel noise = NoiseModel::uniform(3, 0.01, 0.05, 0.0);
  ParallelRunConfig config = make_config(100, 2);
  config.max_states = 1;
  EXPECT_THROW(run_noisy_parallel(c, noise, config), Error);
}

TEST(Parallel, RejectsNonCachedModes) {
  const Circuit c = decompose_to_cx_basis(make_qft(3));
  const NoiseModel noise = NoiseModel::uniform(3, 0.01, 0.05, 0.0);
  ParallelRunConfig config = make_config(100, 2);
  config.mode = ExecutionMode::kBaseline;
  EXPECT_THROW(run_noisy_parallel(c, noise, config), Error);
}

}  // namespace
}  // namespace rqsim
