// MSV-budget scheduling: capping the number of maintained state vectors
// must respect the cap, never change results, and trade computation
// monotonically for memory.
#include <gtest/gtest.h>

#include "bench_circuits/qft.hpp"
#include "bench_circuits/qv.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "noise/noise_model.hpp"
#include "sched/backend.hpp"
#include "sched/baseline.hpp"
#include "sched/order.hpp"
#include "sched/runner.hpp"
#include "transpile/decompose.hpp"
#include "trial/generator.hpp"

namespace rqsim {
namespace {

struct Workload {
  Circuit circuit;
  CircuitContext ctx;
  std::vector<Trial> trials;

  Workload(unsigned qubits, double rate, std::size_t n, std::uint64_t seed)
      : circuit(decompose_to_cx_basis(make_qft(qubits))), ctx(circuit) {
    const NoiseModel noise = NoiseModel::uniform(qubits, rate, rate * 4, 0.02);
    Rng rng(seed);
    trials = generate_trials(circuit, ctx.layering, noise, n, rng);
    reorder_trials(trials);
  }
};

TEST(CappedScheduler, RespectsBudget) {
  Workload w(4, 0.05, 2000, 1);
  for (std::size_t cap : {2u, 3u, 4u, 6u}) {
    ScheduleOptions options;
    options.max_states = cap;
    CountBackend backend(w.ctx);
    schedule_trials(w.ctx, w.trials, backend, options);
    EXPECT_LE(backend.max_live_states(), cap) << "cap=" << cap;
    EXPECT_EQ(backend.finished_trials(), w.trials.size());
  }
}

TEST(CappedScheduler, OpsMonotoneInBudget) {
  Workload w(4, 0.05, 3000, 2);
  opcount_t previous_ops = ~opcount_t{0};
  std::vector<opcount_t> ops_by_cap;
  for (std::size_t cap : {2u, 3u, 4u, 5u, 8u, 0u}) {  // 0 = unlimited, last
    ScheduleOptions options;
    options.max_states = cap;
    CountBackend backend(w.ctx);
    schedule_trials(w.ctx, w.trials, backend, options);
    ops_by_cap.push_back(backend.ops());
  }
  for (std::size_t i = 1; i < ops_by_cap.size(); ++i) {
    EXPECT_LE(ops_by_cap[i], ops_by_cap[i - 1]) << "step " << i;
  }
  EXPECT_LT(ops_by_cap.back(), ops_by_cap.front());
  (void)previous_ops;
}

TEST(CappedScheduler, UnlimitedEqualsDefault) {
  Workload w(4, 0.03, 1000, 3);
  CountBackend plain(w.ctx);
  schedule_trials(w.ctx, w.trials, plain);
  ScheduleOptions options;
  options.max_states = 0;
  CountBackend opt(w.ctx);
  schedule_trials(w.ctx, w.trials, opt, options);
  EXPECT_EQ(plain.ops(), opt.ops());
  EXPECT_EQ(plain.max_live_states(), opt.max_live_states());
}

TEST(CappedScheduler, LargeBudgetMatchesUnlimited) {
  Workload w(4, 0.05, 1000, 4);
  CountBackend unlimited(w.ctx);
  schedule_trials(w.ctx, w.trials, unlimited);
  ScheduleOptions options;
  options.max_states = unlimited.max_live_states();  // exactly the natural MSV
  CountBackend capped(w.ctx);
  schedule_trials(w.ctx, w.trials, capped, options);
  EXPECT_EQ(capped.ops(), unlimited.ops());
}

TEST(CappedScheduler, RejectsCapOfOne) {
  Workload w(3, 0.05, 10, 5);
  ScheduleOptions options;
  options.max_states = 1;
  CountBackend backend(w.ctx);
  EXPECT_THROW(schedule_trials(w.ctx, w.trials, backend, options), Error);
}

TEST(CappedScheduler, BitwiseCorrectUnderTightBudget) {
  // The crucial property: capping changes scheduling, never results.
  Workload w(4, 0.08, 400, 6);
  for (std::size_t cap : {2u, 3u, 0u}) {
    ScheduleOptions options;
    options.max_states = cap;
    Rng sample_rng(1);
    SvBackend backend(w.ctx, sample_rng, /*record_final_states=*/true);
    schedule_trials(w.ctx, w.trials, backend, options);
    const SvRunResult result = backend.take_result();
    ASSERT_EQ(result.final_states.size(), w.trials.size());
    for (std::size_t i = 0; i < w.trials.size(); ++i) {
      EXPECT_TRUE(result.final_states[i].bitwise_equal(simulate_trial(w.ctx, w.trials[i])))
          << "cap=" << cap << " trial=" << i;
    }
    if (cap != 0) {
      EXPECT_LE(result.max_live_states, cap);
    }
  }
}

TEST(CappedScheduler, TraceCorrectUnderTightBudget) {
  Workload w(3, 0.10, 300, 7);
  ScheduleOptions options;
  options.max_states = 2;
  TraceBackend backend(w.ctx, w.trials.size());
  schedule_trials(w.ctx, w.trials, backend, options);
  for (std::size_t i = 0; i < w.trials.size(); ++i) {
    const auto expected = expected_trace(w.ctx, w.trials[i]);
    ASSERT_EQ(backend.traces()[i].size(), expected.size()) << i;
    for (std::size_t k = 0; k < expected.size(); ++k) {
      EXPECT_TRUE(backend.traces()[i][k] == expected[k]) << i;
    }
  }
}

TEST(CappedScheduler, RunnerPlumbsBudget) {
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const NoiseModel noise = NoiseModel::uniform(4, 0.05, 0.2, 0.02);
  NoisyRunConfig config;
  config.num_trials = 2000;
  config.seed = 8;
  config.max_states = 3;
  const NoisyRunResult capped = analyze_noisy(c, noise, config);
  EXPECT_LE(capped.max_live_states, 3u);
  config.max_states = 0;
  const NoisyRunResult unlimited = analyze_noisy(c, noise, config);
  EXPECT_LE(unlimited.ops, capped.ops);
  // Even capped at 3 states, still much better than baseline.
  EXPECT_LT(capped.normalized_computation, 1.0);
}

TEST(CappedScheduler, TightBudgetStillSharesTopLevelPrefix) {
  // cap=2: only the root checkpoint advances, every branch replays — but
  // the shared error-free prefix advance still saves work versus baseline.
  const Circuit c = decompose_to_cx_basis(make_qv(4, 3, /*seed=*/9));
  const CircuitContext ctx(c);
  const NoiseModel noise = NoiseModel::uniform(4, 0.01, 0.05, 0.0);
  Rng rng(10);
  auto trials = generate_trials(c, ctx.layering, noise, 3000, rng);
  const opcount_t base = baseline_op_count(ctx, trials);
  reorder_trials(trials);
  ScheduleOptions options;
  options.max_states = 2;
  CountBackend backend(ctx);
  schedule_trials(ctx, trials, backend, options);
  EXPECT_LT(backend.ops(), base);
}

}  // namespace
}  // namespace rqsim
