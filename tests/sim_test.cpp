#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/kernels.hpp"
#include "sim/measure.hpp"
#include "sim/reference.hpp"
#include "sim/statevector.hpp"

namespace rqsim {
namespace {

constexpr double kTol = 1e-12;

// ---------------------------------------------------------------- StateVector

TEST(StateVector, InitialState) {
  StateVector s(3);
  EXPECT_EQ(s.dim(), 8u);
  EXPECT_EQ(s[0], cplx(1.0));
  EXPECT_NEAR(s.norm_squared(), 1.0, kTol);
}

TEST(StateVector, BasisState) {
  StateVector s(3, 5);
  EXPECT_EQ(s[5], cplx(1.0));
  EXPECT_NEAR(s.probability(5), 1.0, kTol);
  EXPECT_NEAR(s.probability(0), 0.0, kTol);
}

TEST(StateVector, Reset) {
  StateVector s(2);
  apply_h(s, 0);
  s.reset();
  EXPECT_EQ(s[0], cplx(1.0));
  EXPECT_NEAR(s.norm_squared(), 1.0, kTol);
}

TEST(StateVector, RejectsBadSizes) {
  EXPECT_THROW(StateVector(0), Error);
  EXPECT_THROW(StateVector(31), Error);
  EXPECT_THROW(StateVector(2, 4), Error);
}

TEST(StateVector, FidelityAndDiff) {
  StateVector a(2);
  StateVector b(2);
  EXPECT_NEAR(a.fidelity(b), 1.0, kTol);
  EXPECT_TRUE(a.bitwise_equal(b));
  apply_x(b, 0);
  EXPECT_NEAR(a.fidelity(b), 0.0, kTol);
  EXPECT_FALSE(a.bitwise_equal(b));
  EXPECT_NEAR(a.max_abs_diff(b), 1.0, kTol);
}

// ---------------------------------------------------------------- kernels

TEST(Kernels, HadamardCreatesUniform) {
  StateVector s(2);
  apply_h(s, 0);
  apply_h(s, 1);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(s[i] - cplx(0.5)), 0.0, kTol);
  }
}

TEST(Kernels, XFlips) {
  StateVector s(3);
  apply_x(s, 1);
  EXPECT_EQ(s[2], cplx(1.0));
}

TEST(Kernels, CXEntangles) {
  StateVector s(2);
  apply_h(s, 0);
  apply_cx(s, 0, 1);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(s[0] - cplx(inv_sqrt2)), 0.0, kTol);
  EXPECT_NEAR(std::abs(s[3] - cplx(inv_sqrt2)), 0.0, kTol);
  EXPECT_NEAR(std::abs(s[1]), 0.0, kTol);
  EXPECT_NEAR(std::abs(s[2]), 0.0, kTol);
}

TEST(Kernels, CCXTruthTable) {
  for (std::uint64_t input = 0; input < 8; ++input) {
    StateVector s(3, input);
    apply_ccx(s, 0, 1, 2);
    const std::uint64_t expected =
        (get_bit(input, 0) && get_bit(input, 1)) ? flip_bit(input, 2) : input;
    EXPECT_NEAR(s.probability(expected), 1.0, kTol) << "input=" << input;
  }
}

TEST(Kernels, SwapPermutes) {
  for (std::uint64_t input = 0; input < 8; ++input) {
    StateVector s(3, input);
    apply_swap(s, 0, 2);
    std::uint64_t expected = input;
    const unsigned b0 = get_bit(input, 0);
    const unsigned b2 = get_bit(input, 2);
    expected = set_bit(expected, 0, b2);
    expected = set_bit(expected, 2, b0);
    EXPECT_NEAR(s.probability(expected), 1.0, kTol);
  }
}

TEST(Kernels, SpecializedMatchesGenericSingleQubit) {
  // Each fast path must agree with apply_mat2 of the gate's matrix on a
  // random state, on every target qubit.
  const unsigned n = 4;
  Rng rng(99);
  const GateKind kinds[] = {GateKind::X,  GateKind::Y,   GateKind::Z,
                            GateKind::H,  GateKind::S,   GateKind::Sdg,
                            GateKind::T,  GateKind::Tdg, GateKind::P};
  for (GateKind kind : kinds) {
    for (qubit_t q = 0; q < n; ++q) {
      // Random normalized state.
      StateVector a(n);
      for (std::size_t i = 0; i < a.dim(); ++i) {
        a[i] = cplx(rng.normal(), rng.normal());
      }
      const double norm = std::sqrt(a.norm_squared());
      for (std::size_t i = 0; i < a.dim(); ++i) {
        a[i] /= norm;
      }
      StateVector b = a;
      const Gate g = Gate::make1(kind, q, 0.37);
      apply_gate(a, g);
      apply_mat2(b, gate_matrix1(g), q);
      EXPECT_LT(a.max_abs_diff(b), 1e-12) << gate_name(kind) << " q" << q;
    }
  }
}

TEST(Kernels, SpecializedMatchesGenericTwoQubit) {
  const unsigned n = 4;
  Rng rng(100);
  const GateKind kinds[] = {GateKind::CX, GateKind::CZ, GateKind::CP, GateKind::SWAP};
  for (GateKind kind : kinds) {
    for (qubit_t q1 = 0; q1 < n; ++q1) {
      for (qubit_t q0 = 0; q0 < n; ++q0) {
        if (q1 == q0) {
          continue;
        }
        StateVector a(n);
        for (std::size_t i = 0; i < a.dim(); ++i) {
          a[i] = cplx(rng.normal(), rng.normal());
        }
        StateVector b = a;
        const Gate g = Gate::make2(kind, q1, q0, 1.234);
        apply_gate(a, g);
        apply_mat4(b, gate_matrix2(g), q1, q0);
        EXPECT_LT(a.max_abs_diff(b), 1e-12) << gate_name(kind) << " " << q1 << "," << q0;
      }
    }
  }
}

TEST(Kernels, RandomCircuitMatchesReference) {
  // Fast kernels vs dense reference simulation on random circuits.
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const unsigned n = 2 + static_cast<unsigned>(rng.uniform_int(4));  // 2..5
    Circuit c(n);
    const int num_gates = 12;
    for (int i = 0; i < num_gates; ++i) {
      switch (rng.uniform_int(6)) {
        case 0:
          c.h(static_cast<qubit_t>(rng.uniform_int(n)));
          break;
        case 1:
          c.u3(static_cast<qubit_t>(rng.uniform_int(n)), rng.uniform(0, 2 * kPi),
               rng.uniform(0, 2 * kPi), rng.uniform(0, 2 * kPi));
          break;
        case 2:
          c.t(static_cast<qubit_t>(rng.uniform_int(n)));
          break;
        case 3: {
          const auto a = static_cast<qubit_t>(rng.uniform_int(n));
          auto b = static_cast<qubit_t>(rng.uniform_int(n - 1));
          if (b >= a) {
            ++b;
          }
          c.cx(a, b);
          break;
        }
        case 4: {
          const auto a = static_cast<qubit_t>(rng.uniform_int(n));
          auto b = static_cast<qubit_t>(rng.uniform_int(n - 1));
          if (b >= a) {
            ++b;
          }
          c.cp(a, b, rng.uniform(0, 2 * kPi));
          break;
        }
        default:
          c.rz(static_cast<qubit_t>(rng.uniform_int(n)), rng.uniform(0, 2 * kPi));
          break;
      }
    }
    StateVector fast(n);
    for (const Gate& g : c.gates()) {
      apply_gate(fast, g);
    }
    const StateVector slow = reference_simulate(c);
    EXPECT_LT(fast.max_abs_diff(slow), 1e-10);
  }
}

TEST(Kernels, NormPreservation) {
  Rng rng(8);
  StateVector s(5);
  apply_h(s, 0);
  for (int i = 0; i < 200; ++i) {
    const auto q = static_cast<qubit_t>(rng.uniform_int(5));
    auto r = static_cast<qubit_t>(rng.uniform_int(4));
    if (r >= q) {
      ++r;
    }
    switch (rng.uniform_int(4)) {
      case 0:
        apply_mat2(s, random_unitary2(rng), q);
        break;
      case 1:
        apply_mat4(s, random_unitary4(rng), q, r);
        break;
      case 2:
        apply_cx(s, q, r);
        break;
      default:
        apply_h(s, q);
        break;
    }
  }
  EXPECT_NEAR(s.norm_squared(), 1.0, 1e-9);
}

TEST(Kernels, PauliErrorOperators) {
  StateVector s(2);
  apply_pauli(s, Pauli::X, 0);
  EXPECT_NEAR(s.probability(1), 1.0, kTol);
  apply_pauli(s, Pauli::I, 1);  // no-op
  EXPECT_NEAR(s.probability(1), 1.0, kTol);
  // Y on |0⟩ gives i|1⟩.
  StateVector t(1);
  apply_pauli(t, Pauli::Y, 0);
  EXPECT_NEAR(std::abs(t[1] - cplx(0.0, 1.0)), 0.0, kTol);
}

TEST(Kernels, PauliPairMatchesMat4) {
  Rng rng(9);
  for (int k = 0; k < kNumPairPaulis; ++k) {
    const PauliPair pair = nth_pair_pauli(k);
    StateVector a(3);
    for (std::size_t i = 0; i < a.dim(); ++i) {
      a[i] = cplx(rng.normal(), rng.normal());
    }
    StateVector b = a;
    apply_pauli_pair(a, pair, 2, 0);
    apply_mat4(b, pauli_pair_matrix(pair), 2, 0);
    EXPECT_LT(a.max_abs_diff(b), 1e-12) << pauli_pair_name(pair);
  }
}

// ---------------------------------------------------------------- measurement

TEST(Measure, BellStateMarginals) {
  StateVector s(2);
  apply_h(s, 0);
  apply_cx(s, 0, 1);
  const auto probs = measurement_probabilities(s, {0, 1});
  ASSERT_EQ(probs.size(), 4u);
  EXPECT_NEAR(probs[0], 0.5, kTol);
  EXPECT_NEAR(probs[3], 0.5, kTol);
  EXPECT_NEAR(probs[1], 0.0, kTol);
  EXPECT_NEAR(probs[2], 0.0, kTol);
}

TEST(Measure, SubsetAndOrdering) {
  StateVector s(3);
  apply_x(s, 2);
  // Measure qubit 2 into bit 0 and qubit 0 into bit 1: outcome must be 0b01.
  const auto probs = measurement_probabilities(s, {2, 0});
  EXPECT_NEAR(probs[0b01], 1.0, kTol);
}

TEST(Measure, SamplingFollowsDistribution) {
  StateVector s(1);
  apply_mat2(s, gate_matrix1(Gate::make1(GateKind::RY, 0, 2.0 * std::acos(std::sqrt(0.7)))), 0);
  // P(0) = 0.7.
  const auto probs = measurement_probabilities(s, {0});
  Rng rng(123);
  int zeros = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (sample_outcome(probs, rng) == 0) {
      ++zeros;
    }
  }
  EXPECT_NEAR(zeros / static_cast<double>(n), 0.7, 0.01);
}

TEST(Measure, TotalVariationDistance) {
  OutcomeHistogram a;
  OutcomeHistogram b;
  a[0] = 50;
  a[1] = 50;
  b[0] = 50;
  b[1] = 50;
  EXPECT_NEAR(total_variation_distance(a, b), 0.0, kTol);
  OutcomeHistogram c;
  c[2] = 100;
  EXPECT_NEAR(total_variation_distance(a, c), 1.0, kTol);
  OutcomeHistogram d;
  d[0] = 100;
  EXPECT_NEAR(total_variation_distance(a, d), 0.5, kTol);
}

TEST(Measure, InvalidInputs) {
  StateVector s(2);
  EXPECT_THROW(measurement_probabilities(s, {}), Error);
  EXPECT_THROW(measurement_probabilities(s, {5}), Error);
  Rng rng(1);
  EXPECT_THROW(sample_outcome({}, rng), Error);
}

// ---------------------------------------------------------------- reference

TEST(Reference, CircuitToDenseIsUnitary) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.t(1);
  const DenseMatrix u = circuit_to_dense(c);
  // Check U * U^dagger = I column by column via apply.
  for (std::uint64_t basis = 0; basis < 4; ++basis) {
    std::vector<cplx> v(4, cplx(0.0));
    v[basis] = 1.0;
    const auto w = u.apply(v);
    double norm = 0.0;
    for (const cplx& x : w) {
      norm += std::norm(x);
    }
    EXPECT_NEAR(norm, 1.0, 1e-10);
  }
}

}  // namespace
}  // namespace rqsim
