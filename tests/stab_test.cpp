#include <gtest/gtest.h>

#include "bench_circuits/ghz.hpp"
#include "circuit/circuit.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "noise/noise_model.hpp"
#include "sched/runner.hpp"
#include "sim/kernels.hpp"
#include "sim/measure.hpp"
#include "stab/tableau.hpp"
#include "trial/generator.hpp"

namespace rqsim {
namespace {

TEST(Tableau, InitialStabilizers) {
  Tableau t(3);
  EXPECT_EQ(t.stabilizer(0), "+IIZ");
  EXPECT_EQ(t.stabilizer(1), "+IZI");
  EXPECT_EQ(t.stabilizer(2), "+ZII");
  EXPECT_EQ(t.destabilizer(0), "+IIX");
}

TEST(Tableau, HadamardMapsZToX) {
  Tableau t(2);
  t.h(0);
  EXPECT_EQ(t.stabilizer(0), "+IX");
  EXPECT_EQ(t.stabilizer(1), "+ZI");
}

TEST(Tableau, BellStateStabilizers) {
  Tableau t(2);
  t.h(0);
  t.cx(0, 1);
  // Stabilizer group of (|00⟩+|11⟩)/√2 is {XX, ZZ} up to generator choice.
  const std::string s0 = t.stabilizer(0);
  const std::string s1 = t.stabilizer(1);
  EXPECT_TRUE((s0 == "+XX" && s1 == "+ZZ") || (s0 == "+ZZ" && s1 == "+XX"));
}

TEST(Tableau, DeterministicMeasurement) {
  Tableau t(2);
  Rng rng(1);
  EXPECT_TRUE(t.measurement_is_deterministic(0));
  EXPECT_EQ(t.measure(0, rng), 0);
  t.x(0);
  EXPECT_EQ(t.measure(0, rng), 1);
  t.x(0);
  EXPECT_EQ(t.measure(0, rng), 0);
}

TEST(Tableau, RandomMeasurementIsUniformAndCollapses) {
  Rng rng(7);
  int ones = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    Tableau t(1);
    t.h(0);
    EXPECT_FALSE(t.measurement_is_deterministic(0));
    const int first = t.measure(0, rng);
    // After collapse the second measurement must agree.
    EXPECT_TRUE(t.measurement_is_deterministic(0));
    EXPECT_EQ(t.measure(0, rng), first);
    ones += first;
  }
  EXPECT_NEAR(ones / static_cast<double>(n), 0.5, 0.05);
}

TEST(Tableau, GhzCorrelations) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    Tableau t(4);
    t.h(0);
    t.cx(0, 1);
    t.cx(1, 2);
    t.cx(2, 3);
    const int first = t.measure(0, rng);
    for (qubit_t q = 1; q < 4; ++q) {
      EXPECT_EQ(t.measure(q, rng), first);
    }
  }
}

TEST(Tableau, SGateTurnsXIntoY) {
  Tableau t(1);
  t.h(0);  // stabilizer +X
  t.s(0);
  EXPECT_EQ(t.stabilizer(0), "+Y");
  t.s(0);
  EXPECT_EQ(t.stabilizer(0), "-X");
  t.sdg(0);
  EXPECT_EQ(t.stabilizer(0), "+Y");
}

TEST(Tableau, PauliErrorsFlipOutcomes) {
  Rng rng(13);
  Tableau t(2);
  t.apply_pauli(Pauli::X, 1);
  EXPECT_EQ(t.measure(1, rng), 1);
  EXPECT_EQ(t.measure(0, rng), 0);
  Tableau u(2);
  u.apply_pauli_pair(PauliPair{Pauli::X, Pauli::X}, 0, 1);
  EXPECT_EQ(u.measure(0, rng), 1);
  EXPECT_EQ(u.measure(1, rng), 1);
  // Z on |0⟩ does nothing observable.
  Tableau v(1);
  v.apply_pauli(Pauli::Z, 0);
  EXPECT_EQ(v.measure(0, rng), 0);
}

TEST(Tableau, CzAndSwap) {
  Rng rng(17);
  // SWAP moves an excitation.
  Tableau t(2);
  t.x(0);
  t.swap(0, 1);
  EXPECT_EQ(t.measure(0, rng), 0);
  EXPECT_EQ(t.measure(1, rng), 1);
  // CZ on |11⟩ is a global phase: outcomes unchanged.
  Tableau u(2);
  u.x(0);
  u.x(1);
  u.cz(0, 1);
  EXPECT_EQ(u.measure(0, rng), 1);
  EXPECT_EQ(u.measure(1, rng), 1);
}

TEST(Tableau, RejectsNonClifford) {
  Tableau t(2);
  EXPECT_THROW(t.apply_gate(Gate::make1(GateKind::T, 0)), Error);
  EXPECT_THROW(t.apply_gate(Gate::make1(GateKind::RX, 0, 0.5)), Error);
  EXPECT_FALSE(Tableau::is_clifford(GateKind::T));
  EXPECT_TRUE(Tableau::is_clifford(GateKind::CZ));
}

TEST(Tableau, LargeRegister) {
  // 300 qubits — far beyond any statevector.
  Rng rng(19);
  Tableau t(300);
  t.h(0);
  for (qubit_t q = 0; q + 1 < 300; ++q) {
    t.cx(q, q + 1);
  }
  const int first = t.measure(0, rng);
  EXPECT_EQ(t.measure(299, rng), first);
  EXPECT_EQ(t.measure(150, rng), first);
}

// ---------------------------------------------------------------------------
// Cross-validation against the statevector simulator.

Circuit random_clifford_circuit(unsigned n, int gates, std::uint64_t seed) {
  Circuit c(n);
  Rng rng(seed);
  for (int i = 0; i < gates; ++i) {
    switch (rng.uniform_int(5)) {
      case 0:
        c.h(static_cast<qubit_t>(rng.uniform_int(n)));
        break;
      case 1:
        c.s(static_cast<qubit_t>(rng.uniform_int(n)));
        break;
      case 2:
        c.x(static_cast<qubit_t>(rng.uniform_int(n)));
        break;
      case 3: {
        const auto a = static_cast<qubit_t>(rng.uniform_int(n));
        auto b = static_cast<qubit_t>(rng.uniform_int(n - 1));
        if (b >= a) {
          ++b;
        }
        c.cx(a, b);
        break;
      }
      default: {
        const auto a = static_cast<qubit_t>(rng.uniform_int(n));
        auto b = static_cast<qubit_t>(rng.uniform_int(n - 1));
        if (b >= a) {
          ++b;
        }
        c.cz(a, b);
        break;
      }
    }
  }
  c.measure_all();
  return c;
}

class StabVsStatevector : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StabVsStatevector, SampledDistributionsAgree) {
  const Circuit c = random_clifford_circuit(4, 24, GetParam());
  // Exact distribution from the statevector.
  StateVector psi(4);
  for (const Gate& g : c.gates()) {
    apply_gate(psi, g);
  }
  const auto exact = measurement_probabilities(psi, c.measured_qubits());

  Rng rng(GetParam() + 1000);
  const std::size_t samples = 40000;
  const OutcomeHistogram histogram = stabilizer_sample(c, samples, rng);

  double tvd = 0.0;
  for (std::uint64_t outcome = 0; outcome < exact.size(); ++outcome) {
    const auto it = histogram.find(outcome);
    const double sampled =
        it == histogram.end()
            ? 0.0
            : static_cast<double>(it->second) / static_cast<double>(samples);
    tvd += std::abs(sampled - exact[outcome]);
  }
  EXPECT_LT(tvd / 2.0, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StabVsStatevector,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(StabNoisyCrossValidation, TableauMonteCarloMatchesCachedPipeline) {
  // The same noisy trials, executed through the tableau, must reproduce
  // the statevector pipeline's outcome distribution. This validates both
  // the stabilizer gates and the error-injection semantics independently.
  const Circuit c = make_ghz(4);
  const NoiseModel noise = NoiseModel::uniform(4, 0.02, 0.06, 0.03);
  const CircuitContext ctx(c);
  const std::size_t trials_count = 60000;

  // Tableau Monte Carlo.
  Rng gen_rng(5);
  const auto trials = generate_trials(c, ctx.layering, noise, trials_count, gen_rng);
  Rng meas_rng(6);
  OutcomeHistogram tableau_hist;
  for (const Trial& trial : trials) {
    Tableau t(c.num_qubits());
    std::size_t next_event = 0;
    for (layer_index_t l = 0; l < ctx.num_layers(); ++l) {
      for (gate_index_t g : ctx.layering.layers[l]) {
        t.apply_gate(c.gates()[g]);
      }
      while (next_event < trial.events.size() && trial.events[next_event].layer == l) {
        const ErrorEvent& e = trial.events[next_event];
        const Gate& gate = c.gates()[e.position];
        if (gate.arity() == 1) {
          t.apply_pauli(static_cast<Pauli>(e.op), gate.qubits[0]);
        } else {
          t.apply_pauli_pair(pauli_pair_from_index(e.op), gate.qubits[0],
                             gate.qubits[1]);
        }
        ++next_event;
      }
    }
    std::uint64_t outcome = 0;
    for (std::size_t bit = 0; bit < c.num_measured(); ++bit) {
      if (t.measure(c.measured_qubits()[bit], meas_rng)) {
        outcome |= std::uint64_t{1} << bit;
      }
    }
    ++tableau_hist[outcome ^ trial.meas_flip_mask];
  }

  // Statevector pipeline on an identical workload size.
  NoisyRunConfig config;
  config.num_trials = trials_count;
  config.seed = 77;
  const NoisyRunResult sv = run_noisy(c, noise, config);

  EXPECT_LT(total_variation_distance(tableau_hist, sv.histogram), 0.02);
}

}  // namespace
}  // namespace rqsim
