#include <gtest/gtest.h>

#include "common/error.hpp"
#include "noise/devices.hpp"
#include "noise/noise_model.hpp"

namespace rqsim {
namespace {

TEST(NoiseModel, UniformRates) {
  const NoiseModel m = NoiseModel::uniform(4, 1e-3, 1e-2, 2e-2);
  for (qubit_t q = 0; q < 4; ++q) {
    EXPECT_DOUBLE_EQ(m.single_qubit_rate(q), 1e-3);
    EXPECT_DOUBLE_EQ(m.measurement_flip_rate(q), 2e-2);
  }
  EXPECT_DOUBLE_EQ(m.two_qubit_rate(0, 3), 1e-2);
  EXPECT_DOUBLE_EQ(m.two_qubit_rate(3, 0), 1e-2);
}

TEST(NoiseModel, PerQubitRates) {
  NoiseModel m = NoiseModel::per_qubit({1e-3, 2e-3}, {1e-2, 3e-2});
  EXPECT_EQ(m.num_qubits(), 2u);
  EXPECT_DOUBLE_EQ(m.single_qubit_rate(1), 2e-3);
  EXPECT_DOUBLE_EQ(m.measurement_flip_rate(0), 1e-2);
  // Unset pair falls back to the uniform two-qubit rate (zero here).
  EXPECT_DOUBLE_EQ(m.two_qubit_rate(0, 1), 0.0);
  m.set_two_qubit_rate(0, 1, 4e-2);
  EXPECT_DOUBLE_EQ(m.two_qubit_rate(0, 1), 4e-2);
  EXPECT_DOUBLE_EQ(m.two_qubit_rate(1, 0), 4e-2);
}

TEST(NoiseModel, Validation) {
  EXPECT_THROW(NoiseModel::uniform(2, -0.1, 0.0, 0.0), Error);
  EXPECT_THROW(NoiseModel::uniform(2, 0.0, 1.5, 0.0), Error);
  EXPECT_THROW(NoiseModel::per_qubit({0.1}, {0.1, 0.2}), Error);
  NoiseModel m = NoiseModel::uniform(2, 0.1, 0.1, 0.1);
  EXPECT_THROW(m.set_two_qubit_rate(0, 0, 0.1), Error);
  EXPECT_THROW(m.set_two_qubit_rate(0, 5, 0.1), Error);
  EXPECT_THROW(m.single_qubit_rate(9), Error);
}

TEST(NoiseModel, Scaled) {
  NoiseModel m = NoiseModel::uniform(3, 1e-3, 1e-2, 2e-2);
  m.set_two_qubit_rate(0, 1, 4e-2);
  const NoiseModel half = m.scaled(0.5);
  EXPECT_DOUBLE_EQ(half.single_qubit_rate(0), 0.5e-3);
  EXPECT_DOUBLE_EQ(half.two_qubit_rate(0, 1), 2e-2);
  EXPECT_DOUBLE_EQ(half.two_qubit_rate(1, 2), 0.5e-2);
  EXPECT_DOUBLE_EQ(half.measurement_flip_rate(2), 1e-2);
  EXPECT_THROW(m.scaled(1000.0), Error);
}

TEST(NoiseModel, Noiseless) {
  EXPECT_TRUE(NoiseModel::uniform(2, 0, 0, 0).is_noiseless());
  EXPECT_FALSE(NoiseModel::uniform(2, 1e-3, 0, 0).is_noiseless());
  EXPECT_FALSE(NoiseModel::uniform(2, 0, 1e-3, 0).is_noiseless());
  EXPECT_FALSE(NoiseModel::uniform(2, 0, 0, 1e-3).is_noiseless());
}

TEST(Devices, YorktownMatchesPaperFig4) {
  const DeviceModel dev = yorktown_device();
  EXPECT_EQ(dev.coupling.num_qubits(), 5u);
  EXPECT_DOUBLE_EQ(dev.noise.single_qubit_rate(0), 1.37e-3);
  EXPECT_DOUBLE_EQ(dev.noise.single_qubit_rate(2), 2.23e-3);
  EXPECT_DOUBLE_EQ(dev.noise.single_qubit_rate(4), 0.94e-3);
  EXPECT_DOUBLE_EQ(dev.noise.measurement_flip_rate(4), 4.50e-2);
  EXPECT_DOUBLE_EQ(dev.noise.two_qubit_rate(0, 1), 2.72e-2);
  EXPECT_DOUBLE_EQ(dev.noise.two_qubit_rate(3, 4), 3.51e-2);
  // Every coupled edge has a calibrated rate.
  for (const auto& [a, b] : dev.coupling.edges()) {
    EXPECT_GT(dev.noise.two_qubit_rate(a, b), 0.0);
  }
}

TEST(Devices, ArtificialScaling) {
  const DeviceModel dev = artificial_device(20, 1e-4);
  EXPECT_EQ(dev.noise.num_qubits(), 20u);
  EXPECT_DOUBLE_EQ(dev.noise.single_qubit_rate(7), 1e-4);
  EXPECT_DOUBLE_EQ(dev.noise.two_qubit_rate(3, 12), 1e-3);
  EXPECT_DOUBLE_EQ(dev.noise.measurement_flip_rate(0), 1e-3);
  EXPECT_TRUE(dev.coupling.connected(0, 19));
}

TEST(Devices, Ideal) {
  const DeviceModel dev = ideal_device(6);
  EXPECT_TRUE(dev.noise.is_noiseless());
}

}  // namespace
}  // namespace rqsim
