// Telemetry subsystem: lock-free metrics registry, scoped tracing, and the
// reconciliation guarantee — the "sim.matvec_ops" registry counter must
// agree bitwise with NoisyRunResult::ops and with the PlanVerifier's
// statically proved op count, on the Table I suite, at 1/2/8 threads.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_circuits/suite.hpp"
#include "cli/cli.hpp"
#include "common/rng.hpp"
#include "noise/devices.hpp"
#include "sched/order.hpp"
#include "sched/parallel.hpp"
#include "sched/runner.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "trial/generator.hpp"
#include "verify/plan_verifier.hpp"

namespace rqsim {
namespace {

namespace telem = rqsim::telemetry;

// Count occurrences of a substring (crude but sufficient for asserting on
// the exported trace JSON without a full parser).
std::size_t count_occurrences(const std::string& text, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// ---------------------------------------------------------------------------
// Registry basics.

TEST(TelemetryRegistry, CounterAggregatesAcrossThreadsAndRetirement) {
  if (!telem::compiled()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telem::reset_metrics_for_test();
  telem::Counter counter("test.counter_agg");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&counter] {
        telem::Counter same_slot("test.counter_agg");
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          // Alternate handles: both intern to the same slot.
          (i % 2 == 0) ? counter.add(1) : same_slot.increment();
        }
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  // All worker shards are retired by now; the folded total must be exact.
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(telem::counter_value("test.counter_agg"), kThreads * kPerThread);
}

TEST(TelemetryRegistry, MaxGaugeFoldsWithMax) {
  if (!telem::compiled()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telem::reset_metrics_for_test();
  telem::MaxGauge gauge("test.gauge_max");
  gauge.record(7);
  std::thread other([] {
    telem::MaxGauge same("test.gauge_max");
    same.record(19);
  });
  other.join();
  gauge.record(3);
  EXPECT_EQ(gauge.value(), 19u);
}

TEST(TelemetryRegistry, HistogramLogBucketsCountAndSum) {
  if (!telem::compiled()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telem::reset_metrics_for_test();
  telem::Histogram hist("test.hist");
  for (const std::uint64_t value : {0ull, 1ull, 2ull, 3ull, 8ull}) {
    hist.record(value);
  }
  const telem::MetricsSnapshot snapshot = telem::snapshot_metrics();
  const telem::MetricValue* metric = snapshot.find("test.hist");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->kind, telem::MetricKind::kHistogram);
  EXPECT_EQ(metric->count, 5u);
  EXPECT_EQ(metric->sum, 14u);
  // bucket i = samples with bit_width == i: 0 -> b0, 1 -> b1, {2,3} -> b2,
  // 8 -> b4.
  ASSERT_GE(metric->buckets.size(), 5u);
  EXPECT_EQ(metric->buckets[0], 1u);
  EXPECT_EQ(metric->buckets[1], 1u);
  EXPECT_EQ(metric->buckets[2], 2u);
  EXPECT_EQ(metric->buckets[3], 0u);
  EXPECT_EQ(metric->buckets[4], 1u);
}

TEST(TelemetryRegistry, DisabledFlagSuppressesRecording) {
  if (!telem::compiled()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telem::reset_metrics_for_test();
  telem::Counter counter("test.disabled");
  counter.add(5);
  telem::set_enabled(false);
  counter.add(100);
  telem::set_enabled(true);
  counter.add(2);
  EXPECT_EQ(counter.value(), 7u);
}

TEST(TelemetryRegistry, SnapshotIsSortedByName) {
  if (!telem::compiled()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telem::Counter a("test.zzz");
  telem::Counter b("test.aaa");
  a.increment();
  b.increment();
  const telem::MetricsSnapshot snapshot = telem::snapshot_metrics();
  for (std::size_t i = 1; i < snapshot.metrics.size(); ++i) {
    EXPECT_LT(snapshot.metrics[i - 1].name, snapshot.metrics[i].name);
  }
}

// ---------------------------------------------------------------------------
// Trace recording and Chrome trace-event export.

TEST(TelemetryTrace, ExportIsBalancedAndCarriesLanes) {
  if (!telem::compiled()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telem::start_tracing();
  telem::set_thread_lane("test.main");
  {
    RQSIM_SPAN("test.outer");
    {
      RQSIM_SPAN("test.inner");
      telem::trace_instant("test.instant");
      telem::trace_counter("test.value", 42);
    }
  }
  std::thread worker([] {
    telem::set_thread_lane("test.worker");
    RQSIM_SPAN("test.worker_span");
    telem::trace_instant("test.worker_instant");
  });
  worker.join();
  telem::stop_tracing();

  const std::string json = telem::trace_to_json();
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""));
  EXPECT_GE(count_occurrences(json, "\"ph\":\"B\""), 3u);
  EXPECT_NE(json.find("test.inner"), std::string::npos);
  EXPECT_NE(json.find("test.worker_span"), std::string::npos);
  EXPECT_NE(json.find("\"test.main\""), std::string::npos);
  EXPECT_NE(json.find("\"test.worker\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("traceEvents"), std::string::npos);

  const std::string path = testing::TempDir() + "telemetry_trace_test.json";
  const long events = telem::export_trace(path);
  EXPECT_GT(events, 0);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::remove(path.c_str());
}

TEST(TelemetryTrace, InactiveRecordingIsDropped) {
  if (!telem::compiled()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telem::start_tracing();
  telem::stop_tracing();
  {
    RQSIM_SPAN("test.after_stop");
    telem::trace_instant("test.after_stop_instant");
  }
  const std::string json = telem::trace_to_json();
  EXPECT_EQ(json.find("test.after_stop"), std::string::npos);
}

TEST(TelemetryTrace, UntracedWorkerThreadsDoNotGrowRegistry) {
  if (!telem::compiled()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  // Regression: the tree/chunked executors spawn fresh worker threads per
  // run and name their lanes unconditionally; with tracing inactive that
  // must not allocate (and strand) a per-thread event buffer per run, or a
  // long-running service leaks ~2 MB x threads per job.
  ASSERT_FALSE(telem::tracing_active());
  const DeviceModel dev = yorktown_device();
  const BenchmarkEntry entry = make_table1_suite(dev).front();
  const std::size_t buffers_before = telem::trace_thread_buffers();
  for (int rep = 0; rep < 3; ++rep) {
    ParallelRunConfig config;
    config.num_trials = 64;
    config.seed = 3;
    config.num_threads = 8;
    const NoisyRunResult result =
        run_noisy_parallel(entry.compiled, dev.noise, config);
    EXPECT_GT(result.ops, 0u);
  }
  EXPECT_EQ(telem::trace_thread_buffers(), buffers_before);
}

TEST(TelemetryTrace, RestartWhileSpanOpenDoesNotPoisonLane) {
  if (!telem::compiled()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telem::start_tracing();
  {
    telem::TraceSpan stale("test.preepoch");
    // Restart mid-span (quiescence violated): the span's B is cleared, so
    // its destructor must not emit a stray E or underflow the open-span
    // reservation count (which would drop every later event on this lane).
    telem::start_tracing();
  }
  {
    RQSIM_SPAN("test.after_restart");
    telem::trace_instant("test.after_restart_instant");
  }
  telem::stop_tracing();
  const std::string json = telem::trace_to_json();
  EXPECT_EQ(json.find("test.preepoch"), std::string::npos);
  EXPECT_NE(json.find("test.after_restart"), std::string::npos);
  EXPECT_NE(json.find("test.after_restart_instant"), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""));
}

TEST(TelemetryTrace, ExportEscapesAndSurvivesLongEventNames) {
  if (!telem::compiled()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  // Convention says span names are plain literals, but export must stay
  // well-formed JSON even when one isn't: quotes/backslashes escape, and a
  // name longer than any internal formatting buffer survives untruncated.
  static const std::string long_name(300, 'x');
  telem::start_tracing();
  telem::trace_instant("test.quote\"back\\slash");
  telem::trace_instant(long_name.c_str());
  telem::stop_tracing();
  const std::string json = telem::trace_to_json();
  EXPECT_NE(json.find("test.quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find(long_name), std::string::npos);
}

TEST(TelemetryRegistry, MeasuredRunScopeDetectsOverlap) {
  if (!telem::compiled()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  {
    telem::MeasuredRunScope a;
    EXPECT_TRUE(a.exclusive());
    {
      telem::MeasuredRunScope b;
      EXPECT_FALSE(a.exclusive());
      EXPECT_FALSE(b.exclusive());
    }
    // Overlap is sticky for the rest of a's lifetime.
    EXPECT_FALSE(a.exclusive());
  }
  telem::MeasuredRunScope fresh;
  EXPECT_TRUE(fresh.exclusive());
}

// ---------------------------------------------------------------------------
// Reconciliation: registry counter == executed ops == PlanVerifier proof.

std::vector<Trial> trials_as_run_noisy_generates(const BenchmarkEntry& entry,
                                                 const NoiseModel& noise,
                                                 std::size_t num_trials,
                                                 std::uint64_t seed) {
  const CircuitContext ctx(entry.compiled);
  Rng rng(seed);
  std::vector<Trial> trials =
      generate_trials(entry.compiled, ctx.layering, noise, num_trials, rng);
  assign_measurement_seeds(trials, rng);
  reorder_trials(trials);
  return trials;
}

TEST(TelemetryReconciliation, CounterMatchesProofAndResultOnTableOneSuite) {
  if (!telem::compiled()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telem::set_enabled(true);
  const DeviceModel dev = yorktown_device();
  constexpr std::size_t kTrials = 300;
  constexpr std::uint64_t kSeed = 11;
  for (const BenchmarkEntry& entry : make_table1_suite(dev)) {
    // Statically proved op count for the exact schedule run_noisy executes.
    const std::vector<Trial> trials =
        trials_as_run_noisy_generates(entry, dev.noise, kTrials, kSeed);
    const CircuitContext ctx(entry.compiled);
    const PlanProof proof = PlanVerifier(ctx).verify_schedule(trials);
    ASSERT_TRUE(proof.ok) << entry.name << ": " << proof.diagnostic;

    NoisyRunConfig config;
    config.num_trials = kTrials;
    config.seed = kSeed;
    config.mode = ExecutionMode::kCachedReordered;
    const NoisyRunResult result = run_noisy(entry.compiled, dev.noise, config);

    EXPECT_TRUE(result.telemetry.measured) << entry.name;
    EXPECT_EQ(result.ops, proof.cached_ops) << entry.name;
    EXPECT_EQ(result.telemetry.measured_ops, result.ops) << entry.name;
    EXPECT_EQ(result.telemetry.ops_saved_vs_baseline,
              result.baseline_ops - result.ops)
        << entry.name;
  }
}

TEST(TelemetryReconciliation, ParallelTreeCounterMatchesAtOneTwoEightThreads) {
  if (!telem::compiled()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telem::set_enabled(true);
  const DeviceModel dev = yorktown_device();
  constexpr std::size_t kTrials = 300;
  constexpr std::uint64_t kSeed = 11;
  for (const BenchmarkEntry& entry : make_table1_suite(dev)) {
    const std::vector<Trial> trials =
        trials_as_run_noisy_generates(entry, dev.noise, kTrials, kSeed);
    const CircuitContext ctx(entry.compiled);
    const PlanProof proof = PlanVerifier(ctx).verify_schedule(trials);
    ASSERT_TRUE(proof.ok) << entry.name << ": " << proof.diagnostic;

    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      ParallelRunConfig config;
      config.num_trials = kTrials;
      config.seed = kSeed;
      config.num_threads = threads;
      config.parallel_mode = ParallelMode::kTree;
      const NoisyRunResult result =
          run_noisy_parallel(entry.compiled, dev.noise, config);
      EXPECT_TRUE(result.telemetry.measured) << entry.name;
      // The tree executes the sequential cached schedule's op count exactly
      // (zero redundant prefix work), the runtime counter measures the same
      // total, and both equal the static proof.
      EXPECT_EQ(result.ops, proof.cached_ops)
          << entry.name << " threads=" << threads;
      EXPECT_EQ(result.telemetry.measured_ops, result.ops)
          << entry.name << " threads=" << threads;
    }
  }
}

TEST(TelemetryReconciliation, BaselineModeCounterMatchesBaselineOps) {
  if (!telem::compiled()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telem::set_enabled(true);
  const DeviceModel dev = yorktown_device();
  const BenchmarkEntry entry = make_table1_suite(dev)[1];  // grover
  NoisyRunConfig config;
  config.num_trials = 200;
  config.seed = 3;
  config.mode = ExecutionMode::kBaseline;
  const NoisyRunResult result = run_noisy(entry.compiled, dev.noise, config);
  EXPECT_EQ(result.telemetry.measured_ops, result.ops);
  EXPECT_EQ(result.ops, result.baseline_ops);
  EXPECT_EQ(result.telemetry.ops_saved_vs_baseline, 0u);
  EXPECT_EQ(result.telemetry.prefix_cache_hit_ratio, 0.0);
}

// ---------------------------------------------------------------------------
// Surfacing: protocol stats snapshot, job-result telemetry block, CLI.

TEST(TelemetrySurfacing, ProtocolStatsCarriesMetricsSnapshot) {
  ServiceConfig service_config;
  service_config.num_workers = 0;  // deterministic: drain on this thread
  SimService service(service_config);
  ProtocolHandler handler(service);

  const Json submit = Json::parse(
      "{\"op\":\"submit\",\"workload\":{\"circuit\":\"qft4\"},"
      "\"trials\":64,\"seed\":5}");
  const Json accepted = handler.handle(submit);
  ASSERT_TRUE(accepted.get_bool("ok", false)) << accepted.dump();
  service.run_pending();

  const Json response = handler.handle(Json::parse("{\"op\":\"stats\"}"));
  ASSERT_TRUE(response.get_bool("ok", false));
  ASSERT_TRUE(response.has("telemetry"));
  const Json& metrics = response.at("telemetry");
  if (telem::compiled()) {
    // The job above executed gates, so the op counter must be present and
    // positive, and histograms serialize structurally.
    ASSERT_TRUE(metrics.has("sim.matvec_ops"));
    EXPECT_GT(metrics.at("sim.matvec_ops").as_u64(), 0u);
    ASSERT_TRUE(metrics.has("service.job_exec_us"));
    EXPECT_TRUE(metrics.at("service.job_exec_us").has("count"));
    EXPECT_TRUE(metrics.at("service.job_exec_us").has("buckets"));
  } else {
    EXPECT_TRUE(metrics.as_object().empty());
  }

  // Terminal job result carries the TelemetrySummary block.
  const Json status = handler.handle(Json::parse("{\"op\":\"status\",\"job\":1}"));
  ASSERT_TRUE(status.get_bool("ok", false)) << status.dump();
  ASSERT_TRUE(status.has("result")) << status.dump();
  const Json& result = status.at("result");
  ASSERT_TRUE(result.has("telemetry"));
  const Json& summary = result.at("telemetry");
  EXPECT_TRUE(summary.has("measured_ops"));
  EXPECT_TRUE(summary.has("prefix_cache_hit_ratio"));
  EXPECT_TRUE(summary.has("pool_reuses"));
  if (telem::compiled()) {
    EXPECT_EQ(summary.at("measured_ops").as_u64(), result.at("ops").as_u64());
  }
}

TEST(TelemetrySurfacing, CliTraceOutWritesChromeTrace) {
  const std::string path = testing::TempDir() + "cli_trace_out.json";
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli({"rqsim", "run", "--circuit", "qft4", "--trials", "64",
                            "--threads", "2", "--trace-out", path},
                           out, err);
  if (!telem::compiled()) {
    EXPECT_EQ(code, 1);
    EXPECT_NE(err.str().find("RQSIM_TELEMETRY"), std::string::npos);
    return;
  }
  ASSERT_EQ(code, 0) << err.str();
  EXPECT_NE(out.str().find("trace written to"), std::string::npos);
  EXPECT_NE(out.str().find("telemetry:"), std::string::npos);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string trace = buffer.str();
  EXPECT_NE(trace.find("traceEvents"), std::string::npos);
  EXPECT_NE(trace.find("tree_exec.worker-"), std::string::npos);
  EXPECT_EQ(count_occurrences(trace, "\"ph\":\"B\""),
            count_occurrences(trace, "\"ph\":\"E\""));
  std::remove(path.c_str());
}

TEST(TelemetrySurfacing, CliStatsVerbNeedsEndpoint) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli({"rqsim", "stats"}, out, err);
  EXPECT_EQ(code, 1);
  EXPECT_NE(err.str().find("--socket"), std::string::npos);
}

}  // namespace
}  // namespace rqsim
