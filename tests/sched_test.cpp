#include <gtest/gtest.h>

#include <tuple>

#include "bench_circuits/qft.hpp"
#include "bench_circuits/qv.hpp"
#include "common/rng.hpp"
#include "noise/noise_model.hpp"
#include "sched/backend.hpp"
#include "sched/baseline.hpp"
#include "sched/cached.hpp"
#include "sched/order.hpp"
#include "sched/plan.hpp"
#include "sched/runner.hpp"
#include "transpile/decompose.hpp"
#include "trial/generator.hpp"

namespace rqsim {
namespace {

Circuit test_circuit() {
  Circuit c(3);
  c.h(0);
  c.h(1);
  c.h(2);
  c.cx(0, 1);
  c.t(2);
  c.cx(1, 2);
  c.h(0);
  c.measure_all();
  return c;
}

// ---------------------------------------------------------------- context

TEST(CircuitContext, OpPrefixSums) {
  const Circuit c = test_circuit();
  const CircuitContext ctx(c);
  EXPECT_EQ(ctx.total_gate_ops(), c.num_gates());
  EXPECT_EQ(ctx.ops_in_layers(0, static_cast<layer_index_t>(ctx.num_layers())),
            c.num_gates());
  EXPECT_EQ(ctx.ops_in_layers(1, 1), 0u);
  opcount_t sum = 0;
  for (layer_index_t l = 0; l < ctx.num_layers(); ++l) {
    sum += ctx.ops_in_layers(l, l + 1);
  }
  EXPECT_EQ(sum, c.num_gates());
}

TEST(CircuitContext, BaselineOpCount) {
  const Circuit c = test_circuit();
  const CircuitContext ctx(c);
  std::vector<Trial> trials(3);
  trials[0].events = {{0, 0, 1}};
  trials[1].events = {{0, 0, 1}, {1, 3, 2}};
  const opcount_t expected = 3 * c.num_gates() + 3;
  EXPECT_EQ(baseline_op_count(ctx, trials), expected);
}

// ---------------------------------------------------------------- walker

TEST(Scheduler, RequiresReorderedInput) {
  const Circuit c = test_circuit();
  const CircuitContext ctx(c);
  std::vector<Trial> trials(2);
  trials[0].events = {};           // error-free first = NOT reorder order
  trials[1].events = {{0, 0, 1}};
  CountBackend backend(ctx);
  EXPECT_THROW(schedule_trials(ctx, trials, backend), Error);
}

TEST(Scheduler, SingleErrorFreeTrialCostsOneCircuit) {
  const Circuit c = test_circuit();
  const CircuitContext ctx(c);
  std::vector<Trial> trials(1);
  CountBackend backend(ctx);
  schedule_trials(ctx, trials, backend);
  EXPECT_EQ(backend.ops(), c.num_gates());
  EXPECT_EQ(backend.max_live_states(), 1u);
  EXPECT_EQ(backend.finished_trials(), 1u);
}

TEST(Scheduler, DuplicateTrialsCostOneExecution) {
  const Circuit c = test_circuit();
  const CircuitContext ctx(c);
  std::vector<Trial> trials(100);  // all error-free duplicates
  CountBackend backend(ctx);
  schedule_trials(ctx, trials, backend);
  EXPECT_EQ(backend.ops(), c.num_gates());
  EXPECT_EQ(backend.finished_trials(), 100u);
  EXPECT_EQ(backend.max_live_states(), 1u);
}

TEST(Scheduler, PaperFigure2Example) {
  // Figure 2 of the paper: error-free trial plus three single-error trials
  // with errors in layers 2, 1, 0 respectively. After reordering the order
  // is (3)=layer0, (2)=layer1, (1)=layer2, error-free; only one extra
  // state vector is ever maintained (two live total).
  Circuit c(2);
  c.h(0);   // layer 0
  c.h(1);   // layer 0
  c.cx(0, 1);  // layer 1
  c.h(0);   // layer 2
  c.h(1);   // layer 2
  c.measure_all();
  const CircuitContext ctx(c);
  ASSERT_EQ(ctx.num_layers(), 3u);

  std::vector<Trial> trials(4);
  trials[0].events = {};
  trials[1].events = {{2, 3, 1}};
  trials[2].events = {{1, 2, 3}};
  trials[3].events = {{0, 0, 1}};
  reorder_trials(trials);
  // Reordered: layer0-error, layer1-error, layer2-error, error-free.
  EXPECT_EQ(trials[0].events[0].layer, 0u);
  EXPECT_EQ(trials[1].events[0].layer, 1u);
  EXPECT_EQ(trials[2].events[0].layer, 2u);
  EXPECT_TRUE(trials[3].events.empty());

  CountBackend backend(ctx);
  schedule_trials(ctx, trials, backend);
  // Shared layers counted once: 5 gates; each error trial pays 1 error op
  // plus the remaining layers after its error:
  //   layer0-error: 1 + layers 1,2 = 1 + 3
  //   layer1-error: 1 + layer 2    = 1 + 2
  //   layer2-error: 1 + nothing    = 1
  // error-free: nothing extra. Total = 5 + 4 + 3 + 1 = 13.
  EXPECT_EQ(backend.ops(), 13u);
  // Baseline: 4 trials × 5 gates + 3 errors = 23.
  EXPECT_EQ(baseline_op_count(ctx, trials), 23u);
  // One branch live at a time above the root.
  EXPECT_EQ(backend.max_live_states(), 2u);
}

TEST(Scheduler, SharedErrorDeepensStack) {
  Circuit c(2);
  c.h(0);      // layer 0
  c.cx(0, 1);  // layer 1
  c.h(1);      // layer 2
  c.measure_all();
  const CircuitContext ctx(c);

  // Two trials share the first error, then diverge on a second error.
  std::vector<Trial> trials(2);
  trials[0].events = {{0, 0, 1}, {1, 1, 2}};
  trials[1].events = {{0, 0, 1}, {2, 2, 1}};
  reorder_trials(trials);
  CountBackend backend(ctx);
  schedule_trials(ctx, trials, backend);
  // Root advances layer0 (1 op); fork + shared error (1 op);
  // then subgroup: advance layer1 (1 op), fork + error2 (1), finish rest
  // layer2 (1); drop; advance layer2 on shared branch (1), fork + error (1).
  EXPECT_EQ(backend.max_live_states(), 3u);
  // ops: layer0=1, e1=1, layer1=1, e2=1, layer2=1 (trial0 tail), layer2=1
  // (shared branch tail), e3=1 -> 7.
  EXPECT_EQ(backend.ops(), 7u);
  EXPECT_EQ(baseline_op_count(ctx, trials), 2u * 3u + 4u);
}

TEST(Scheduler, EmptyTrialList) {
  const Circuit c = test_circuit();
  const CircuitContext ctx(c);
  std::vector<Trial> trials;
  CountBackend backend(ctx);
  schedule_trials(ctx, trials, backend);
  EXPECT_EQ(backend.ops(), 0u);
  EXPECT_EQ(backend.finished_trials(), 0u);
}

// ------------------------------------------------------- trace equivalence

struct TraceCase {
  unsigned qubits;
  double single_rate;
  double two_rate;
  std::size_t trials;
  std::uint64_t seed;
};

class TraceEquivalence : public ::testing::TestWithParam<TraceCase> {};

TEST_P(TraceEquivalence, EveryTrialSeesItsExactOperatorSequence) {
  const TraceCase param = GetParam();
  const Circuit c = decompose_to_cx_basis(make_qft(param.qubits));
  const CircuitContext ctx(c);
  const NoiseModel noise =
      NoiseModel::uniform(param.qubits, param.single_rate, param.two_rate, 0.02);
  Rng rng(param.seed);
  auto trials = generate_trials(c, ctx.layering, noise, param.trials, rng);
  reorder_trials(trials);

  TraceBackend backend(ctx, trials.size());
  schedule_trials(ctx, trials, backend);
  ASSERT_EQ(backend.traces().size(), trials.size());
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const auto expected = expected_trace(ctx, trials[i]);
    ASSERT_EQ(backend.traces()[i].size(), expected.size()) << "trial " << i;
    for (std::size_t k = 0; k < expected.size(); ++k) {
      EXPECT_TRUE(backend.traces()[i][k] == expected[k]) << "trial " << i << " op " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TraceEquivalence,
    ::testing::Values(TraceCase{3, 0.01, 0.05, 100, 1},
                      TraceCase{3, 0.10, 0.30, 100, 2},
                      TraceCase{4, 0.00, 0.00, 50, 3},
                      TraceCase{4, 0.05, 0.15, 300, 4},
                      TraceCase{5, 0.02, 0.08, 200, 5},
                      TraceCase{5, 0.30, 0.50, 150, 6}));

// ------------------------------------------------- backend cross-validation

class BackendAgreement : public ::testing::TestWithParam<std::tuple<unsigned, double>> {};

TEST_P(BackendAgreement, CountAndSvBackendsAgreeOnCosts) {
  const auto [qubits, rate] = GetParam();
  const Circuit c = decompose_to_cx_basis(make_qv(qubits, 3, /*seed=*/17));
  const CircuitContext ctx(c);
  const NoiseModel noise = NoiseModel::uniform(qubits, rate, rate * 5, 0.01);
  Rng rng(123);
  auto trials = generate_trials(c, ctx.layering, noise, 200, rng);
  reorder_trials(trials);

  CountBackend counter(ctx);
  schedule_trials(ctx, trials, counter);

  Rng sample_rng(5);
  SvBackend sv(ctx, sample_rng);
  schedule_trials(ctx, trials, sv);
  const SvRunResult result = sv.take_result();

  EXPECT_EQ(counter.ops(), result.ops);
  EXPECT_EQ(counter.max_live_states(), result.max_live_states);
  EXPECT_EQ(counter.finished_trials(), trials.size());
  EXPECT_LE(counter.ops(), baseline_op_count(ctx, trials));
  EXPECT_GE(counter.max_live_states(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BackendAgreement,
                         ::testing::Combine(::testing::Values(3u, 4u, 5u),
                                            ::testing::Values(0.005, 0.05, 0.2)));

// ------------------------------------------------------- savings properties

TEST(Scheduler, SavingsGrowWithTrialCount) {
  // More trials -> more duplicate prefixes -> lower normalized computation.
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const CircuitContext ctx(c);
  const NoiseModel noise = NoiseModel::uniform(4, 0.002, 0.02, 0.01);
  std::vector<double> normalized;
  for (std::size_t n : {128u, 1024u, 8192u}) {
    Rng rng(42);
    auto trials = generate_trials(c, ctx.layering, noise, n, rng);
    const opcount_t base = baseline_op_count(ctx, trials);
    reorder_trials(trials);
    CountBackend backend(ctx);
    schedule_trials(ctx, trials, backend);
    normalized.push_back(static_cast<double>(backend.ops()) /
                         static_cast<double>(base));
  }
  // 64x more trials must save decisively more (single steps can be noisy).
  EXPECT_LT(normalized.back(), normalized.front());
  EXPECT_LT(normalized.back(), 0.2);  // large trial counts must save a lot here
}

TEST(ConsecutiveCache, UnorderedNeverBeatsReordered) {
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const CircuitContext ctx(c);
  const NoiseModel noise = NoiseModel::uniform(4, 0.01, 0.05, 0.01);
  Rng rng(77);
  auto trials = generate_trials(c, ctx.layering, noise, 1000, rng);

  const ConsecutiveCacheResult unordered = consecutive_cached_count(ctx, trials);
  auto sorted = trials;
  reorder_trials(sorted);
  CountBackend backend(ctx);
  schedule_trials(ctx, sorted, backend);

  EXPECT_LE(backend.ops(), unordered.ops);
  EXPECT_LE(unordered.ops, baseline_op_count(ctx, trials));
}

TEST(ConsecutiveCache, EmptyAndAllDuplicates) {
  const Circuit c = test_circuit();
  const CircuitContext ctx(c);
  EXPECT_EQ(consecutive_cached_count(ctx, {}).ops, 0u);

  std::vector<Trial> dups(5);  // identical error-free trials
  const ConsecutiveCacheResult r = consecutive_cached_count(ctx, dups);
  // First trial pays the circuit; the rest share prefix 0 events but the
  // pinned-checkpoint scheme still replays all layers (prefix of length 0).
  EXPECT_EQ(r.ops, 5u * ctx.total_gate_ops());
  EXPECT_EQ(r.max_live_states, 1u);
}

TEST(MsvBudget, SingleStateBudgetRejectedEverywhere) {
  // max_states == 1 cannot host a checkpoint plus a scratch state; the
  // documented contract is 0 (unlimited) or >= 2, and every entry point
  // must enforce it — not just the cached scheduler.
  const Circuit c = test_circuit();
  const NoiseModel noise = NoiseModel::uniform(3, 0.02, 0.05, 0.01);

  NoisyRunConfig config;
  config.num_trials = 10;
  config.max_states = 1;
  EXPECT_THROW(run_noisy(c, noise, config), Error);
  EXPECT_THROW(analyze_noisy(c, noise, config), Error);
  config.mode = ExecutionMode::kBaseline;
  EXPECT_THROW(run_noisy(c, noise, config), Error);
  EXPECT_THROW(analyze_noisy(c, noise, config), Error);
  config.mode = ExecutionMode::kCachedUnordered;
  EXPECT_THROW(analyze_noisy(c, noise, config), Error);

  const CircuitContext ctx(c);
  Rng rng(5);
  auto trials = generate_trials(c, ctx.layering, noise, 10, rng);
  reorder_trials(trials);
  CountBackend backend(ctx);
  ScheduleOptions options;
  options.max_states = 1;
  EXPECT_THROW(schedule_trials(ctx, trials, backend, options), Error);

  // The documented budgets still work.
  config = NoisyRunConfig{};
  config.num_trials = 10;
  config.max_states = 2;
  EXPECT_LE(run_noisy(c, noise, config).max_live_states, 2u);
  config.max_states = 0;
  EXPECT_GT(run_noisy(c, noise, config).ops, 0u);
}

}  // namespace
}  // namespace rqsim
