#include <gtest/gtest.h>

#include <algorithm>

#include "bench_circuits/qft.hpp"
#include "circuit/layering.hpp"
#include "common/rng.hpp"
#include "noise/noise_model.hpp"
#include "sched/order.hpp"
#include "transpile/decompose.hpp"
#include "trial/generator.hpp"
#include "trial/stats.hpp"

namespace rqsim {
namespace {

Trial make_trial(std::vector<ErrorEvent> events) {
  Trial t;
  t.events = std::move(events);
  return t;
}

TEST(Order, ComparatorLexicographic) {
  const Trial a = make_trial({{0, 0, 1}});
  const Trial b = make_trial({{0, 0, 2}});
  const Trial c = make_trial({{1, 2, 1}});
  EXPECT_TRUE(trial_order_less(a, b));
  EXPECT_TRUE(trial_order_less(b, c));
  EXPECT_TRUE(trial_order_less(a, c));
  EXPECT_FALSE(trial_order_less(c, a));
}

TEST(Order, ExhaustedSortsAfterLongerPrefix) {
  // A trial that is a strict prefix of another must come *after* it, so
  // the error-free continuation runs last.
  const Trial longer = make_trial({{0, 0, 1}, {2, 3, 1}});
  const Trial shorter = make_trial({{0, 0, 1}});
  EXPECT_TRUE(trial_order_less(longer, shorter));
  EXPECT_FALSE(trial_order_less(shorter, longer));
  // The empty (error-free) trial is the global maximum.
  const Trial empty;
  EXPECT_TRUE(trial_order_less(shorter, empty));
  EXPECT_FALSE(trial_order_less(empty, shorter));
}

TEST(Order, EqualTrialsNotLess) {
  const Trial a = make_trial({{0, 0, 1}});
  const Trial b = make_trial({{0, 0, 1}});
  EXPECT_FALSE(trial_order_less(a, b));
  EXPECT_FALSE(trial_order_less(b, a));
}

TEST(Order, StrictWeakOrderingOnRandomSample) {
  Rng rng(3);
  std::vector<Trial> trials;
  for (int i = 0; i < 60; ++i) {
    Trial t;
    const int k = static_cast<int>(rng.uniform_int(4));
    layer_index_t layer = 0;
    for (int j = 0; j < k; ++j) {
      layer += static_cast<layer_index_t>(rng.uniform_int(3));
      t.events.push_back({layer, static_cast<gate_index_t>(rng.uniform_int(4)),
                          static_cast<std::uint8_t>(1 + rng.uniform_int(3))});
      std::sort(t.events.begin(), t.events.end());
    }
    trials.push_back(std::move(t));
  }
  // Irreflexivity and antisymmetry.
  for (const Trial& a : trials) {
    EXPECT_FALSE(trial_order_less(a, a));
  }
  for (const Trial& a : trials) {
    for (const Trial& b : trials) {
      EXPECT_FALSE(trial_order_less(a, b) && trial_order_less(b, a));
      // Transitivity spot check via sort validity is covered below.
      (void)b;
    }
  }
  std::vector<Trial> sorted = trials;
  reorder_trials(sorted);
  EXPECT_TRUE(is_reordered(sorted));
}

TEST(Order, ReorderIsPermutation) {
  Rng rng(4);
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const Layering l = layer_circuit(c);
  const NoiseModel noise = NoiseModel::uniform(4, 0.02, 0.1, 0.0);
  auto trials = generate_trials(c, l, noise, 300, rng);
  const TrialSetStats before = compute_trial_stats(trials);
  reorder_trials(trials);
  const TrialSetStats after = compute_trial_stats(trials);
  EXPECT_EQ(before.total_errors, after.total_errors);
  EXPECT_EQ(before.error_count_histogram, after.error_count_histogram);
  EXPECT_TRUE(is_reordered(trials));
}

TEST(Order, Algorithm1AgreesWithLexSort) {
  // The paper's recursive Algorithm 1 and the lexicographic sort must
  // produce identical orderings (both are stable on ties).
  Rng rng(5);
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const Layering l = layer_circuit(c);
  for (double rate : {0.005, 0.05, 0.3}) {
    const NoiseModel noise = NoiseModel::uniform(4, rate, rate * 2, 0.02);
    auto trials = generate_trials(c, l, noise, 400, rng);
    auto by_sort = trials;
    auto by_alg1 = trials;
    reorder_trials(by_sort);
    reorder_trials_algorithm1(by_alg1);
    ASSERT_EQ(by_sort.size(), by_alg1.size());
    for (std::size_t i = 0; i < by_sort.size(); ++i) {
      EXPECT_EQ(by_sort[i].events.size(), by_alg1[i].events.size()) << "i=" << i;
      for (std::size_t k = 0; k < by_sort[i].events.size(); ++k) {
        EXPECT_TRUE(by_sort[i].events[k] == by_alg1[i].events[k]) << "i=" << i;
      }
      EXPECT_EQ(by_sort[i].meas_flip_mask, by_alg1[i].meas_flip_mask) << "i=" << i;
    }
  }
}

TEST(Order, ReorderingIncreasesConsecutiveOverlap) {
  // The whole point of the reorder: adjacent trials share longer prefixes.
  Rng rng(6);
  const Circuit c = decompose_to_cx_basis(make_qft(5));
  const Layering l = layer_circuit(c);
  const NoiseModel noise = NoiseModel::uniform(5, 0.01, 0.05, 0.0);
  auto trials = generate_trials(c, l, noise, 2000, rng);
  const double before = mean_consecutive_shared_prefix(trials);
  reorder_trials(trials);
  const double after = mean_consecutive_shared_prefix(trials);
  EXPECT_GT(after, before);
}

TEST(Order, EmptyAndSingleton) {
  std::vector<Trial> empty;
  reorder_trials(empty);
  reorder_trials_algorithm1(empty);
  EXPECT_TRUE(is_reordered(empty));

  std::vector<Trial> one(1);
  one[0].events = {{3, 2, 1}};
  reorder_trials_algorithm1(one);
  EXPECT_TRUE(is_reordered(one));
}

TEST(Order, AllErrorFreeTrials) {
  std::vector<Trial> trials(10);
  trials[3].meas_flip_mask = 5;  // masks don't affect ordering
  reorder_trials(trials);
  EXPECT_TRUE(is_reordered(trials));
  // Stability: the masked trial keeps its position among equals.
  EXPECT_EQ(trials[3].meas_flip_mask, 5u);
}

}  // namespace
}  // namespace rqsim
