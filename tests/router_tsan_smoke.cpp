// TSan smoke of the fleet router's cross-thread state: concurrent client
// connections submitting/waiting through the front, the RoutedJob map and
// admission accounting mutated from several connection threads at once, the
// health-check thread probing backends while traffic flows, and drain
// toggling racing submits. Any lock-protocol violation in router/, the
// backend pool, or the shared socket utilities shows up here.
//
// Two observability-specific races are provoked on top of the traffic:
//   - short-lived threads record telemetry and retire (shard fold into the
//     retired accumulator) while the router's stats fan-out snapshots the
//     registry from its connection threads;
//   - distributed tracing is started/collected through the router while
//     jobs execute, and the collected per-process buffers (clock offsets
//     measured over live connections) are merged into one trace.
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "report/trace_merge.hpp"
#include "router/router.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "telemetry/telemetry.hpp"

namespace rqsim {
namespace {

Json submit(std::uint64_t seed, const std::string& tenant) {
  WorkloadSpec workload;
  workload.circuit_spec = "ghz:4";
  workload.device = "ideal";
  SubmitParams params;
  params.trials = 100;
  params.seed = seed;
  params.tenant = tenant;
  return make_submit_request(workload, params);
}

int run() {
  std::vector<std::unique_ptr<SimServer>> backends;
  std::vector<std::thread> backend_threads;
  std::vector<std::string> endpoints;
  for (int i = 0; i < 2; ++i) {
    ServerConfig config;
    config.tcp_port = 0;
    config.service.num_workers = 2;
    backends.push_back(std::make_unique<SimServer>(std::move(config)));
    backend_threads.emplace_back([srv = backends.back().get()] { srv->run(); });
    endpoints.push_back("127.0.0.1:" + std::to_string(backends.back()->tcp_port()));
  }

  RouterConfig config;
  config.tcp_port = 0;
  config.backends = endpoints;
  config.health.interval_ms = 20;  // probe aggressively while traffic flows
  config.admission.fleet_capacity = 64;
  FleetRouter router(std::move(config));
  std::thread router_thread([&router] { router.run(); });
  const int port = router.tcp_port();

  std::atomic<int> failures{0};
  std::atomic<bool> done{false};

  // Client threads: submit + wait, distinct tenants, shared workload class
  // so the jobs contend for the same affinity backend.
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([t, port, &failures] {
      try {
        ServiceClient client = ServiceClient::connect_tcp("127.0.0.1", port);
        const std::string tenant = "tenant" + std::to_string(t);
        for (std::uint64_t i = 0; i < 4; ++i) {
          const Json accepted =
              client.request(submit(t * 100 + i + 1, tenant));
          if (!accepted.get_bool("ok", false)) {
            continue;  // quota/no_backend race is fine; not a data race
          }
          Json wait_request = Json::object();
          wait_request.set("op", Json(std::string("wait")));
          wait_request.set("job", accepted.at("job"));
          const Json finished = client.request(wait_request);
          if (finished.get_string("state", "") != "done") {
            ++failures;
          }
        }
      } catch (const Error&) {
        ++failures;
      }
    });
  }

  // Stats reader racing the mutators.
  std::thread stats_thread([port, &done, &failures] {
    try {
      ServiceClient client = ServiceClient::connect_tcp("127.0.0.1", port);
      while (!done.load()) {
        const Json stats = client.request(Json::parse("{\"op\":\"stats\"}"));
        if (!stats.get_bool("ok", false)) {
          ++failures;
        }
      }
    } catch (const Error&) {
      ++failures;
    }
  });

  // Registry churn: keep spawning short-lived threads that record metrics
  // and immediately retire, so shard retirement (the fold into the retired
  // accumulator) races the snapshot_metrics calls the stats fan-out above
  // keeps triggering on every backend.
  std::thread churn_thread([&done] {
    while (!done.load()) {
      std::thread worker([] {
        telemetry::Counter counter("tsan_smoke.churn");
        telemetry::Histogram hist("tsan_smoke.churn_hist");
        for (int i = 0; i < 64; ++i) {
          counter.increment();
          hist.record(static_cast<std::uint64_t>(i));
        }
      });
      worker.join();
    }
  });

  // Distributed tracing through the router while traffic flows: start,
  // let spans accumulate, collect (which pings every backend over live
  // connections to measure clock offsets) and merge the per-process
  // buffers. Runs concurrently with the span writers in the executors.
  std::thread trace_thread([port, &done, &failures] {
    try {
      ServiceClient client = ServiceClient::connect_tcp("127.0.0.1", port);
      while (!done.load()) {
        Json start = Json::object();
        start.set("op", Json(std::string("trace")));
        start.set("action", Json(std::string("start")));
        if (!client.request(start).get_bool("ok", false)) {
          ++failures;
          break;
        }
        Json collect = Json::object();
        collect.set("op", Json(std::string("trace")));
        collect.set("action", Json(std::string("collect")));
        const Json collected = client.request(collect);
        if (!collected.get_bool("ok", false) || !collected.has("processes")) {
          ++failures;
          break;
        }
        const Json merged = merge_collect_response(collected);
        if (!merged.has("traceEvents")) {
          ++failures;
          break;
        }
      }
    } catch (const Error&) {
      ++failures;
    }
  });

  // Drain toggler racing routing decisions.
  std::thread drain_thread([port, &done, &endpoints] {
    try {
      ServiceClient client = ServiceClient::connect_tcp("127.0.0.1", port);
      bool draining = true;
      while (!done.load()) {
        Json request = Json::object();
        request.set("op", Json(std::string(draining ? "drain" : "undrain")));
        request.set("backend", Json(endpoints.front()));
        client.request(request);
        draining = !draining;
      }
      Json request = Json::object();
      request.set("op", Json(std::string("undrain")));
      request.set("backend", Json(endpoints.front()));
      client.request(request);
    } catch (const Error&) {
      // Connection churn during shutdown is acceptable here.
    }
  });

  for (std::thread& t : clients) {
    t.join();
  }
  done.store(true);
  stats_thread.join();
  churn_thread.join();
  trace_thread.join();
  drain_thread.join();

  ServiceClient client = ServiceClient::connect_tcp("127.0.0.1", port);
  client.request(Json::parse("{\"op\":\"shutdown\"}"));
  router_thread.join();
  for (std::size_t i = 0; i < backends.size(); ++i) {
    backends[i]->stop();
    backend_threads[i].join();
  }

  if (failures.load() != 0) {
    std::fprintf(stderr, "router_tsan_smoke: %d failures\n", failures.load());
    return 1;
  }
  std::printf("router_tsan_smoke: ok\n");
  return 0;
}

}  // namespace
}  // namespace rqsim

int main() {
  try {
    return rqsim::run();
  } catch (const rqsim::Error& e) {
    std::fprintf(stderr, "router_tsan_smoke: %s\n", e.what());
    return 1;
  }
}
