#include <gtest/gtest.h>

#include <cmath>

#include "circuit/qasm.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "sim/reference.hpp"

namespace rqsim {
namespace {

// ---------------------------------------------------------------- expression

TEST(QasmExpr, Literals) {
  EXPECT_DOUBLE_EQ(eval_qasm_expr("0.25"), 0.25);
  EXPECT_DOUBLE_EQ(eval_qasm_expr("3"), 3.0);
  EXPECT_DOUBLE_EQ(eval_qasm_expr("1e-3"), 1e-3);
  EXPECT_DOUBLE_EQ(eval_qasm_expr("2.5E2"), 250.0);
}

TEST(QasmExpr, Pi) {
  EXPECT_DOUBLE_EQ(eval_qasm_expr("pi"), kPi);
  EXPECT_DOUBLE_EQ(eval_qasm_expr("pi/2"), kPi / 2.0);
  EXPECT_DOUBLE_EQ(eval_qasm_expr("-pi/4"), -kPi / 4.0);
  EXPECT_DOUBLE_EQ(eval_qasm_expr("3*pi/2"), 3.0 * kPi / 2.0);
}

TEST(QasmExpr, Arithmetic) {
  EXPECT_DOUBLE_EQ(eval_qasm_expr("1+2*3"), 7.0);
  EXPECT_DOUBLE_EQ(eval_qasm_expr("(1+2)*3"), 9.0);
  EXPECT_DOUBLE_EQ(eval_qasm_expr("1-2-3"), -4.0);
  EXPECT_DOUBLE_EQ(eval_qasm_expr("8/2/2"), 2.0);
  EXPECT_DOUBLE_EQ(eval_qasm_expr(" - ( pi ) "), -kPi);
}

TEST(QasmExpr, Errors) {
  EXPECT_THROW(eval_qasm_expr("foo"), Error);
  EXPECT_THROW(eval_qasm_expr("1+"), Error);
  EXPECT_THROW(eval_qasm_expr("(1"), Error);
  EXPECT_THROW(eval_qasm_expr("1/0"), Error);
  EXPECT_THROW(eval_qasm_expr("1 2"), Error);
}

// ---------------------------------------------------------------- writer

TEST(QasmWriter, EmitsHeaderAndGates) {
  Circuit c(2, "demo");
  c.h(0);
  c.cx(0, 1);
  c.measure_all();
  const std::string text = to_qasm(c);
  EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(text.find("qreg q[2];"), std::string::npos);
  EXPECT_NE(text.find("creg c[2];"), std::string::npos);
  EXPECT_NE(text.find("h q[0];"), std::string::npos);
  EXPECT_NE(text.find("cx q[0],q[1];"), std::string::npos);
  EXPECT_NE(text.find("measure q[0] -> c[0];"), std::string::npos);
}

TEST(QasmWriter, PhaseGateUsesU1) {
  Circuit c(1);
  c.p(0, 0.5);
  EXPECT_NE(to_qasm(c).find("u1(0.5"), std::string::npos);
}

// ---------------------------------------------------------------- parser

TEST(QasmParser, ParsesSimpleProgram) {
  const std::string text = R"(
OPENQASM 2.0;
include "qelib1.inc";
// a comment
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
u3(pi/2, 0, pi) q[2];
barrier q;
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
)";
  const Circuit c = from_qasm(text);
  EXPECT_EQ(c.num_qubits(), 3u);
  EXPECT_EQ(c.num_gates(), 3u);
  EXPECT_EQ(c.num_measured(), 3u);
  EXPECT_EQ(c.gates()[0].kind, GateKind::H);
  EXPECT_EQ(c.gates()[1].kind, GateKind::CX);
  EXPECT_EQ(c.gates()[2].kind, GateKind::U3);
  EXPECT_NEAR(c.gates()[2].params[0], kPi / 2.0, 1e-12);
}

TEST(QasmParser, AcceptsAliases) {
  const Circuit c = from_qasm(
      "qreg q[2]; u1(0.3) q[0]; cu1(0.4) q[0],q[1]; u(0.1,0.2,0.3) q[1];");
  EXPECT_EQ(c.gates()[0].kind, GateKind::P);
  EXPECT_EQ(c.gates()[1].kind, GateKind::CP);
  EXPECT_EQ(c.gates()[2].kind, GateKind::U3);
}

TEST(QasmParser, RejectsUnknownGate) {
  EXPECT_THROW(from_qasm("qreg q[1]; frobnicate q[0];"), Error);
}

TEST(QasmParser, RejectsWrongOperandCount) {
  EXPECT_THROW(from_qasm("qreg q[2]; cx q[0];"), Error);
  EXPECT_THROW(from_qasm("qreg q[2]; h q[0],q[1];"), Error);
}

TEST(QasmParser, RejectsStatementBeforeQreg) {
  EXPECT_THROW(from_qasm("h q[0]; qreg q[1];"), Error);
}

TEST(QasmParser, RoundTripPreservesSemantics) {
  Circuit original(3, "rt");
  original.h(0);
  original.u3(1, 0.3, -0.4, 2.2);
  original.cx(0, 2);
  original.cp(1, 2, 0.7);
  original.swap(0, 1);
  original.rz(2, -1.1);
  original.measure_all();

  const Circuit parsed = from_qasm(to_qasm(original));
  ASSERT_EQ(parsed.num_gates(), original.num_gates());
  ASSERT_EQ(parsed.num_qubits(), original.num_qubits());
  // Semantic check: identical final states.
  const StateVector a = reference_simulate(original);
  const StateVector b = reference_simulate(parsed);
  EXPECT_GT(a.fidelity(b), 1.0 - 1e-12);
}

TEST(QasmParser, CustomRegisterNames) {
  const Circuit c = from_qasm("qreg reg[2]; creg out[1]; h reg[1]; measure reg[1] -> out[0];");
  EXPECT_EQ(c.num_qubits(), 2u);
  EXPECT_EQ(c.num_measured(), 1u);
  EXPECT_EQ(c.measured_qubits()[0], 1u);
}

}  // namespace
}  // namespace rqsim
