#include <gtest/gtest.h>

#include "bench_circuits/grover.hpp"
#include "bench_circuits/qft.hpp"
#include "common/rng.hpp"
#include "noise/devices.hpp"
#include "sched/runner.hpp"
#include "sim/reference.hpp"
#include "transpile/decompose.hpp"
#include "transpile/optimize.hpp"

namespace rqsim {
namespace {

bool same_unitary_up_to_phase(const Circuit& a, const Circuit& b) {
  const DenseMatrix ua = circuit_to_dense(a);
  const DenseMatrix ub = circuit_to_dense(b);
  if (ua.dim() != ub.dim()) {
    return false;
  }
  std::size_t br = 0;
  std::size_t bc = 0;
  double best = 0.0;
  for (std::size_t r = 0; r < ub.dim(); ++r) {
    for (std::size_t c = 0; c < ub.dim(); ++c) {
      if (std::abs(ub.at(r, c)) > best) {
        best = std::abs(ub.at(r, c));
        br = r;
        bc = c;
      }
    }
  }
  if (best < 1e-9) {
    return false;
  }
  const cplx phase = ua.at(br, bc) / ub.at(br, bc);
  for (std::size_t r = 0; r < ua.dim(); ++r) {
    for (std::size_t c = 0; c < ua.dim(); ++c) {
      if (std::abs(ua.at(r, c) - phase * ub.at(r, c)) > 1e-8) {
        return false;
      }
    }
  }
  return true;
}

TEST(U3Angles, RoundTripRandomUnitaries) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Mat2 u = random_unitary2(rng);
    const U3Angles a = u3_angles_from_unitary(u);
    const Mat2 rebuilt =
        gate_matrix1(Gate::make1(GateKind::U3, 0, a.theta, a.phi, a.lambda));
    EXPECT_TRUE(equal_up_to_global_phase(u, rebuilt, 1e-8)) << i;
  }
}

TEST(U3Angles, EdgeCases) {
  // Identity, pure X (theta = pi), diagonal (theta = 0).
  for (GateKind kind : {GateKind::X, GateKind::Z, GateKind::S, GateKind::H,
                        GateKind::Y, GateKind::T}) {
    const Mat2 u = gate_matrix1(Gate::make1(kind, 0));
    const U3Angles a = u3_angles_from_unitary(u);
    const Mat2 rebuilt =
        gate_matrix1(Gate::make1(GateKind::U3, 0, a.theta, a.phi, a.lambda));
    EXPECT_TRUE(equal_up_to_global_phase(u, rebuilt, 1e-10)) << gate_name(kind);
  }
  EXPECT_TRUE(is_identity_up_to_phase(Mat2::identity()));
  EXPECT_TRUE(is_identity_up_to_phase(Mat2::identity() * cplx(0.0, 1.0)));
  EXPECT_FALSE(is_identity_up_to_phase(pauli_matrix(Pauli::X)));
}

TEST(Fusion, CollapsesRunsAndDropsIdentity) {
  Circuit c(2);
  c.h(0);
  c.h(0);  // HH = I -> dropped
  c.t(1);
  c.t(1);  // TT = S -> one u3
  c.cx(0, 1);
  c.rz(0, 0.5);
  c.rz(0, -0.5);  // cancels
  c.measure_all();
  const Circuit fused = fuse_single_qubit_runs(c);
  EXPECT_EQ(fused.num_gates(), 2u);  // u3 (from TT) + cx
  EXPECT_EQ(fused.count_kind(GateKind::CX), 1u);
  EXPECT_TRUE(same_unitary_up_to_phase(c, fused));
  EXPECT_EQ(fused.num_measured(), 2u);
}

TEST(Fusion, RespectsBlockingTwoQubitGates) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.h(0);  // must NOT fuse with the first h across the cx
  const Circuit fused = fuse_single_qubit_runs(c);
  EXPECT_EQ(fused.num_gates(), 3u);
  EXPECT_TRUE(same_unitary_up_to_phase(c, fused));
}

TEST(CxCancel, RemovesAdjacentPairs) {
  Circuit c(3);
  c.cx(0, 1);
  c.cx(0, 1);  // cancels
  c.cx(1, 2);
  c.h(1);
  c.cx(1, 2);  // blocked by h
  const Circuit out = cancel_adjacent_cx(c);
  EXPECT_EQ(out.count_kind(GateKind::CX), 2u);
  EXPECT_TRUE(same_unitary_up_to_phase(c, out));
}

TEST(CxCancel, DirectionAndSpectatorsMatter) {
  Circuit c(3);
  c.cx(0, 1);
  c.cx(1, 0);  // reversed direction: must NOT cancel
  const Circuit out = cancel_adjacent_cx(c);
  EXPECT_EQ(out.count_kind(GateKind::CX), 2u);

  Circuit d(3);
  d.cx(0, 1);
  d.h(2);  // spectator on an uninvolved qubit: cancellation still fine
  d.cx(0, 1);
  const Circuit out2 = cancel_adjacent_cx(d);
  EXPECT_EQ(out2.count_kind(GateKind::CX), 0u);
  EXPECT_TRUE(same_unitary_up_to_phase(d, out2));
}

TEST(CxCancel, ChainsOfFourCancelCompletely) {
  Circuit c(2);
  for (int i = 0; i < 4; ++i) {
    c.cx(0, 1);
  }
  const Circuit out = optimize_circuit(c);
  EXPECT_EQ(out.num_gates(), 0u);
}

TEST(Optimize, RandomCircuitsPreserveUnitary) {
  Rng rng(9);
  for (int trial = 0; trial < 15; ++trial) {
    const unsigned n = 2 + static_cast<unsigned>(rng.uniform_int(3));
    Circuit c(n);
    for (int i = 0; i < 25; ++i) {
      if (rng.uniform() < 0.6) {
        const auto q = static_cast<qubit_t>(rng.uniform_int(n));
        switch (rng.uniform_int(4)) {
          case 0:
            c.h(q);
            break;
          case 1:
            c.t(q);
            break;
          case 2:
            c.rz(q, rng.uniform(-kPi, kPi));
            break;
          default:
            c.u3(q, rng.uniform(0, kPi), rng.uniform(0, kPi), rng.uniform(0, kPi));
            break;
        }
      } else {
        const auto a = static_cast<qubit_t>(rng.uniform_int(n));
        auto b = static_cast<qubit_t>(rng.uniform_int(n - 1));
        if (b >= a) {
          ++b;
        }
        c.cx(a, b);
      }
    }
    const Circuit optimized = optimize_circuit(c);
    EXPECT_LE(optimized.num_gates(), c.num_gates());
    EXPECT_TRUE(same_unitary_up_to_phase(c, optimized)) << "trial " << trial;
    // Idempotent.
    const Circuit twice = optimize_circuit(optimized);
    EXPECT_EQ(twice.num_gates(), optimized.num_gates());
  }
}

TEST(Optimize, ShrinksDecomposedGroverAndKeepsSemantics) {
  // The decomposed Grover oracle/diffusion sandwiches H·H pairs around the
  // CCZ expansions — real fusion targets. (Decomposed QFT, by contrast, is
  // already tight: the pass must leave it alone, which is also verified.)
  const Circuit grover = decompose_to_cx_basis(make_grover3(5, 2));
  const Circuit optimized = optimize_circuit(grover);
  EXPECT_LT(optimized.num_gates(), grover.num_gates());
  EXPECT_TRUE(same_unitary_up_to_phase(grover, optimized));
  EXPECT_EQ(optimized.measured_qubits(), grover.measured_qubits());

  const Circuit qft = decompose_to_cx_basis(make_qft(4));
  const Circuit qft_opt = optimize_circuit(qft);
  EXPECT_EQ(qft_opt.num_gates(), qft.num_gates());
  EXPECT_TRUE(same_unitary_up_to_phase(qft, qft_opt));
}

TEST(Optimize, FewerGatesMeansFewerErrorPositions) {
  // The optimization also speeds up the *noisy* pipeline: fewer gates,
  // fewer error positions, lower baseline and optimized cost.
  const Circuit original = decompose_to_cx_basis(make_grover3(5, 2));
  const Circuit optimized = optimize_circuit(original);
  const NoiseModel noise = NoiseModel::uniform(3, 1e-3, 1e-2, 1e-2);
  NoisyRunConfig config;
  config.num_trials = 1024;
  const NoisyRunResult before = analyze_noisy(original, noise, config);
  const NoisyRunResult after = analyze_noisy(optimized, noise, config);
  EXPECT_LT(after.baseline_ops, before.baseline_ops);
  EXPECT_LT(after.ops, before.ops);
}

}  // namespace
}  // namespace rqsim
