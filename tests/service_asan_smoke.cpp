// Sanitizer smoke test for the simulation service (plain main, no gtest).
//
// This binary is compiled with -fsanitize=address,undefined in EVERY build
// configuration (see tests/CMakeLists.txt): the service subsystem is the
// one place in the library that owns threads, sockets, and shared mutable
// state, so its lifecycle — submit, batch, wait, cancel, protocol round
// trips, server start/stop — runs under ASan+UBSan as part of the tier-1
// ctest flow. The service sources are recompiled into this target with
// sanitizer instrumentation; the rest of the library links in unsanitized.
#include <cstdio>
#include <thread>

#include "bench_circuits/qft.hpp"
#include "noise/noise_model.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "transpile/decompose.hpp"

namespace {

int failures = 0;

#define SMOKE_CHECK(cond)                                                \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond); \
      ++failures;                                                        \
    }                                                                    \
  } while (0)

rqsim::JobSpec make_spec(std::size_t trials, std::uint64_t seed) {
  rqsim::JobSpec spec;
  spec.circuit = rqsim::decompose_to_cx_basis(rqsim::make_qft(4));
  spec.noise = rqsim::NoiseModel::uniform(4, 0.01, 0.04, 0.02);
  spec.config.num_trials = trials;
  spec.config.seed = seed;
  return spec;
}

void smoke_batching_and_cancel() {
  rqsim::ServiceConfig config;
  config.num_workers = 0;
  config.queue_capacity = 4;
  rqsim::SimService service(config);

  const std::uint64_t a = service.submit(make_spec(400, 1));
  const std::uint64_t b = service.submit(make_spec(400, 2));
  const std::uint64_t doomed = service.submit(make_spec(400, 3));
  SMOKE_CHECK(service.cancel(doomed));
  service.run_pending();

  const auto result_a = service.result(a);
  const auto result_b = service.result(b);
  SMOKE_CHECK(result_a && result_a->state == rqsim::JobState::kDone);
  SMOKE_CHECK(result_b && result_b->state == rqsim::JobState::kDone);
  SMOKE_CHECK(result_a->batch_size == 2);
  SMOKE_CHECK(result_a->run.ops + result_b->run.ops == result_a->batch_ops);
}

void smoke_worker_threads() {
  rqsim::ServiceConfig config;
  config.num_workers = 2;
  rqsim::SimService service(config);
  const std::uint64_t x = service.submit(make_spec(600, 5));
  const std::uint64_t y = service.submit(make_spec(600, 6));
  SMOKE_CHECK(service.wait(x).state == rqsim::JobState::kDone);
  SMOKE_CHECK(service.wait(y).state == rqsim::JobState::kDone);
  service.shutdown();
  SMOKE_CHECK(service.try_submit(make_spec(10, 1)).status ==
              rqsim::SubmitStatus::kShutdown);
}

void smoke_protocol_and_server() {
  rqsim::ServerConfig config;
  config.tcp_port = 0;
  config.service.num_workers = 1;
  rqsim::SimServer server(std::move(config));
  std::thread runner([&server] { server.run(); });

  {
    rqsim::ServiceClient client =
        rqsim::ServiceClient::connect_tcp("127.0.0.1", server.tcp_port());
    rqsim::WorkloadSpec workload;
    workload.circuit_spec = "ghz:4";
    workload.device = "ideal";
    rqsim::SubmitParams params;
    params.trials = 200;
    params.seed = 9;
    const rqsim::Json accepted =
        client.request(rqsim::make_submit_request(workload, params));
    SMOKE_CHECK(accepted.at("ok").as_bool());
    rqsim::Json wait_req = rqsim::Json::object();
    wait_req.set("op", rqsim::Json("wait"));
    wait_req.set("job", accepted.at("job"));
    SMOKE_CHECK(client.request(wait_req).at("state").as_string() == "done");
    const rqsim::Json bad = client.request(rqsim::Json::parse("{\"op\":\"nope\"}"));
    SMOKE_CHECK(!bad.at("ok").as_bool());
  }

  server.stop();
  runner.join();
}

}  // namespace

int main() {
  smoke_batching_and_cancel();
  smoke_worker_threads();
  smoke_protocol_and_server();
  if (failures == 0) {
    std::printf("service_asan_smoke: all checks passed\n");
    return 0;
  }
  std::fprintf(stderr, "service_asan_smoke: %d check(s) failed\n", failures);
  return 1;
}
