#include <gtest/gtest.h>

#include <algorithm>

#include "bench_circuits/qft.hpp"
#include "circuit/layering.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "noise/noise_model.hpp"
#include "trial/generator.hpp"
#include "trial/stats.hpp"
#include "trial/trial.hpp"
#include "transpile/decompose.hpp"

namespace rqsim {
namespace {

Circuit simple_circuit() {
  Circuit c(3);
  c.h(0);
  c.h(1);
  c.h(2);
  c.cx(0, 1);
  c.cx(1, 2);
  c.h(0);
  c.measure_all();
  return c;
}

TEST(Trial, SharedPrefixLength) {
  Trial a;
  Trial b;
  a.events = {{0, 0, 1}, {1, 3, 2}, {2, 5, 1}};
  b.events = {{0, 0, 1}, {1, 3, 2}, {2, 5, 3}};
  EXPECT_EQ(shared_prefix_length(a, b), 2u);
  b.events = a.events;
  EXPECT_EQ(shared_prefix_length(a, b), 3u);
  b.events.clear();
  EXPECT_EQ(shared_prefix_length(a, b), 0u);
}

TEST(Trial, EventOrdering) {
  const ErrorEvent a{0, 1, 1};
  const ErrorEvent b{0, 1, 2};
  const ErrorEvent c{0, 2, 1};
  const ErrorEvent d{1, 0, 1};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(c < d);
  EXPECT_FALSE(d < a);
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
}

TEST(Generator, DeterministicFromSeed) {
  const Circuit c = simple_circuit();
  const Layering l = layer_circuit(c);
  const NoiseModel noise = NoiseModel::uniform(3, 0.05, 0.2, 0.1);
  Rng rng1(77);
  Rng rng2(77);
  const auto t1 = generate_trials(c, l, noise, 200, rng1);
  const auto t2 = generate_trials(c, l, noise, 200, rng2);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].events.size(), t2[i].events.size());
    EXPECT_EQ(t1[i].meas_flip_mask, t2[i].meas_flip_mask);
    for (std::size_t k = 0; k < t1[i].events.size(); ++k) {
      EXPECT_TRUE(t1[i].events[k] == t2[i].events[k]);
    }
  }
}

TEST(Generator, EventsSortedAndValid) {
  const Circuit c = decompose_to_cx_basis(make_qft(4));
  const Layering l = layer_circuit(c);
  const NoiseModel noise = NoiseModel::uniform(4, 0.02, 0.1, 0.05);
  Rng rng(5);
  const auto trials = generate_trials(c, l, noise, 500, rng);
  for (const Trial& t : trials) {
    EXPECT_TRUE(std::is_sorted(t.events.begin(), t.events.end()));
    for (const ErrorEvent& e : t.events) {
      ASSERT_LT(e.position, c.num_gates());
      EXPECT_EQ(e.layer, l.layer_of_gate[e.position]);
      const int arity = c.gates()[e.position].arity();
      if (arity == 1) {
        EXPECT_GE(e.op, 1);
        EXPECT_LE(e.op, 3);
      } else {
        EXPECT_GE(e.op, 1);
        EXPECT_LE(e.op, 15);
      }
    }
    // At most one error per gate position.
    for (std::size_t k = 1; k < t.events.size(); ++k) {
      EXPECT_NE(t.events[k].position, t.events[k - 1].position);
    }
  }
}

TEST(Generator, ErrorFrequencyMatchesModel) {
  // Single CX with rate 0.25: over many trials about 25% should carry an
  // error, uniformly spread over the 15 Pauli pairs.
  Circuit c(2);
  c.cx(0, 1);
  const Layering l = layer_circuit(c);
  const NoiseModel noise = NoiseModel::uniform(2, 0.0, 0.25, 0.0);
  Rng rng(9);
  const std::size_t n = 40000;
  const auto trials = generate_trials(c, l, noise, n, rng);
  std::size_t with_error = 0;
  std::vector<std::size_t> op_counts(16, 0);
  for (const Trial& t : trials) {
    if (!t.events.empty()) {
      ++with_error;
      ++op_counts[t.events[0].op];
    }
  }
  EXPECT_NEAR(with_error / static_cast<double>(n), 0.25, 0.01);
  for (int op = 1; op <= 15; ++op) {
    EXPECT_NEAR(op_counts[op] / static_cast<double>(with_error), 1.0 / 15.0, 0.01);
  }
  EXPECT_EQ(op_counts[0], 0u);
}

TEST(Generator, MeasurementFlipFrequency) {
  Circuit c(2);
  c.h(0);
  c.measure_all();
  const Layering l = layer_circuit(c);
  const NoiseModel noise = NoiseModel::uniform(2, 0.0, 0.0, 0.3);
  Rng rng(10);
  const std::size_t n = 30000;
  const auto trials = generate_trials(c, l, noise, n, rng);
  std::size_t flips_bit0 = 0;
  std::size_t flips_bit1 = 0;
  for (const Trial& t : trials) {
    flips_bit0 += (t.meas_flip_mask >> 0) & 1;
    flips_bit1 += (t.meas_flip_mask >> 1) & 1;
  }
  EXPECT_NEAR(flips_bit0 / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(flips_bit1 / static_cast<double>(n), 0.3, 0.01);
}

TEST(Generator, NoiselessYieldsEmptyTrials) {
  const Circuit c = simple_circuit();
  const Layering l = layer_circuit(c);
  const NoiseModel noise = NoiseModel::uniform(3, 0.0, 0.0, 0.0);
  Rng rng(11);
  const auto trials = generate_trials(c, l, noise, 100, rng);
  for (const Trial& t : trials) {
    EXPECT_TRUE(t.events.empty());
    EXPECT_EQ(t.meas_flip_mask, 0u);
  }
}

TEST(Generator, RejectsThreeQubitGates) {
  Circuit c(3);
  c.ccx(0, 1, 2);
  const Layering l = layer_circuit(c);
  const NoiseModel noise = NoiseModel::uniform(3, 0.1, 0.1, 0.1);
  Rng rng(12);
  EXPECT_THROW(generate_trial(c, l, noise, rng), Error);
}

TEST(Stats, ComputeTrialStats) {
  std::vector<Trial> trials(4);
  trials[0].events = {{0, 0, 1}};
  trials[1].events = {{0, 0, 1}, {1, 1, 2}};
  // trials[2], trials[3] error-free.
  const TrialSetStats stats = compute_trial_stats(trials);
  EXPECT_EQ(stats.num_trials, 4u);
  EXPECT_EQ(stats.total_errors, 3u);
  EXPECT_EQ(stats.max_errors, 2u);
  EXPECT_EQ(stats.error_free_trials, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_errors, 0.75);
  ASSERT_EQ(stats.error_count_histogram.size(), 3u);
  EXPECT_EQ(stats.error_count_histogram[0], 2u);
  EXPECT_EQ(stats.error_count_histogram[1], 1u);
  EXPECT_EQ(stats.error_count_histogram[2], 1u);
}

TEST(Stats, MeanConsecutiveSharedPrefix) {
  std::vector<Trial> trials(3);
  trials[0].events = {{0, 0, 1}, {1, 1, 1}};
  trials[1].events = {{0, 0, 1}, {1, 1, 1}};
  trials[2].events = {{0, 0, 1}};
  // prefixes: (t0,t1)=2, (t1,t2)=1 -> mean 1.5
  EXPECT_DOUBLE_EQ(mean_consecutive_shared_prefix(trials), 1.5);
  EXPECT_DOUBLE_EQ(mean_consecutive_shared_prefix({}), 0.0);
}

}  // namespace
}  // namespace rqsim
