// Schedule-invariant verification: the PlanVerifier must accept every
// schedule the real scheduler produces (with op counts telescoping exactly
// against CountBackend and the independent model) and reject every
// corrupted fixture with a diagnostic naming the first violating trial.
// Also covers the entry-point run-limit guards (satellite of the same PR).
#include <gtest/gtest.h>

#include <algorithm>

#include "bench_circuits/qft.hpp"
#include "bench_circuits/suite.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "noise/devices.hpp"
#include "noise/noise_model.hpp"
#include "sched/backend.hpp"
#include "sched/order.hpp"
#include "sched/parallel.hpp"
#include "sched/runner.hpp"
#include "service/service.hpp"
#include "transpile/decompose.hpp"
#include "trial/generator.hpp"
#include "verify/plan_verifier.hpp"

namespace rqsim {
namespace {

struct Workload {
  Circuit circuit;
  CircuitContext ctx;
  std::vector<Trial> trials;

  Workload(unsigned qubits, double rate, std::size_t n, std::uint64_t seed)
      : circuit(decompose_to_cx_basis(make_qft(qubits))), ctx(circuit) {
    const NoiseModel noise = NoiseModel::uniform(qubits, rate, rate * 4, 0.02);
    Rng rng(seed);
    trials = generate_trials(circuit, ctx.layering, noise, n, rng);
    reorder_trials(trials);
  }
};

std::vector<PlanOp> record_plan(const CircuitContext& ctx,
                                const std::vector<Trial>& trials,
                                const ScheduleOptions& options = {}) {
  PlanRecorder recorder;
  schedule_trials(ctx, trials, recorder, options);
  return recorder.take_plan();
}

// ---------------------------------------------------------------------------
// Acceptance: every real schedule proves clean, op counts telescope exactly.

TEST(PlanVerifier, AcceptsBenchSuiteSchedulesExactly) {
  const DeviceModel dev = yorktown_device();
  for (const BenchmarkEntry& entry : make_table1_suite(dev)) {
    const CircuitContext ctx(entry.compiled);
    Rng rng(7);
    std::vector<Trial> trials =
        generate_trials(entry.compiled, ctx.layering, dev.noise, 600, rng);
    reorder_trials(trials);
    for (const std::size_t cap : {std::size_t{0}, std::size_t{2}, std::size_t{4}}) {
      ScheduleOptions options;
      options.max_states = cap;
      const PlanVerifier verifier(ctx, options);
      const PlanProof proof = verifier.verify_schedule(trials);
      ASSERT_TRUE(proof.ok) << entry.name << " cap=" << cap << ": "
                            << proof.diagnostic;
      // The proof's op count, the independent model, and the execution
      // backend must agree exactly — the telescoping acceptance criterion.
      CountBackend backend(ctx);
      schedule_trials(ctx, trials, backend, options);
      EXPECT_EQ(proof.cached_ops, backend.ops()) << entry.name << " cap=" << cap;
      EXPECT_EQ(proof.predicted_ops, backend.ops()) << entry.name << " cap=" << cap;
      EXPECT_EQ(proof.max_live_states, backend.max_live_states())
          << entry.name << " cap=" << cap;
      EXPECT_LE(proof.cached_ops, proof.baseline_ops) << entry.name;
      EXPECT_EQ(proof.num_trials, trials.size());
    }
  }
}

TEST(PlanVerifier, AcceptsMergedBatchStyleTrialLists) {
  // execute_batch concatenates per-job reordered lists and re-sorts into
  // one order; the merged list must prove clean like any single-run list.
  Workload a(4, 0.05, 1500, 1);
  Workload b(4, 0.05, 1000, 2);
  std::vector<Trial> merged = a.trials;
  merged.insert(merged.end(), b.trials.begin(), b.trials.end());
  reorder_trials(merged);
  const PlanVerifier verifier(a.ctx);
  const PlanProof proof = verifier.verify_schedule(merged);
  ASSERT_TRUE(proof.ok) << proof.diagnostic;
  EXPECT_EQ(proof.num_trials, a.trials.size() + b.trials.size());
  EXPECT_EQ(proof.cached_ops, proof.predicted_ops);
}

TEST(PlanVerifier, ExecuteBatchVerifiesMergedSchedule) {
  // Two compatible jobs with verify_plans set: the service's batch planner
  // must verify the *merged* trial list before executing it, and still
  // complete both jobs.
  SimService service({.num_workers = 0});
  std::vector<std::uint64_t> ids;
  for (const std::uint64_t seed : {1u, 2u}) {
    JobSpec spec;
    spec.circuit = decompose_to_cx_basis(make_qft(4));
    spec.noise = NoiseModel::uniform(4, 0.05, 0.2, 0.02);
    spec.config.num_trials = 400;
    spec.config.seed = seed;
    spec.config.verify_plans = true;
    const SubmitOutcome outcome = service.try_submit(std::move(spec));
    ASSERT_EQ(outcome.status, SubmitStatus::kAccepted);
    ids.push_back(outcome.job_id);
  }
  EXPECT_EQ(service.run_pending(), 2u);
  for (const std::uint64_t id : ids) {
    const JobResult result = service.wait(id);
    EXPECT_EQ(result.state, JobState::kDone) << result.error;
    EXPECT_EQ(result.batch_size, 2u);
  }
}

TEST(PlanVerifier, ProofArtifactsRoundTrip) {
  Workload w(4, 0.05, 800, 3);
  const PlanVerifier verifier(w.ctx);
  const PlanProof proof = verifier.verify_schedule(w.trials);
  ASSERT_TRUE(proof.ok);
  EXPECT_GT(proof.forks, 0u);
  EXPECT_EQ(proof.forks, proof.drops);  // stack discipline: every fork dropped
  EXPECT_NE(proof.msv_witness_op, kNoIndex);
  const std::string text = format_proof(proof);
  EXPECT_NE(text.find("plan proof: OK"), std::string::npos);
  EXPECT_NE(text.find("cached ops"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Adversarial fixtures: each corruption is rejected with a diagnostic
// naming the first violating trial index.

TEST(PlanVerifier, RejectsSwappedTrialPair) {
  Workload w(4, 0.05, 500, 4);
  // Find an adjacent strictly-ordered pair and swap it.
  std::size_t i = 0;
  while (i + 1 < w.trials.size() &&
         !trial_order_less(w.trials[i], w.trials[i + 1])) {
    ++i;
  }
  ASSERT_LT(i + 1, w.trials.size());
  std::swap(w.trials[i], w.trials[i + 1]);
  const PlanVerifier verifier(w.ctx);
  const PlanProof proof = verifier.verify_schedule(w.trials);
  ASSERT_FALSE(proof.ok);
  EXPECT_EQ(proof.violating_trial, i + 1);
  EXPECT_NE(proof.diagnostic.find("out of reorder order"), std::string::npos)
      << proof.diagnostic;
  EXPECT_NE(proof.diagnostic.find(std::to_string(i + 1)), std::string::npos);
}

TEST(PlanVerifier, RejectsDroppedThenReusedCheckpoint) {
  Workload w(4, 0.05, 500, 5);
  std::vector<PlanOp> plan = record_plan(w.ctx, w.trials);
  // Find a drop of a non-root checkpoint, then target that depth again.
  const auto drop_it = std::find_if(plan.begin(), plan.end(), [](const PlanOp& op) {
    return op.kind == PlanOpKind::kDrop && op.depth >= 1;
  });
  ASSERT_NE(drop_it, plan.end());
  PlanOp reuse;
  reuse.kind = PlanOpKind::kError;
  reuse.depth = drop_it->depth;
  const auto inserted = static_cast<std::size_t>(drop_it - plan.begin()) + 1;
  plan.insert(drop_it + 1, reuse);
  const PlanVerifier verifier(w.ctx);
  const PlanProof proof = verifier.verify(w.trials, plan);
  ASSERT_FALSE(proof.ok);
  EXPECT_EQ(proof.violating_op, inserted);
  EXPECT_NE(proof.diagnostic.find("use after drop"), std::string::npos)
      << proof.diagnostic;
  // The diagnostic pins the first trial the corruption would poison.
  EXPECT_NE(proof.violating_trial, kNoIndex);
}

TEST(PlanVerifier, RejectsMsvBudgetExceededByOne) {
  Workload w(4, 0.08, 2000, 6);
  const PlanProof unlimited = PlanVerifier(w.ctx).verify_schedule(w.trials);
  ASSERT_TRUE(unlimited.ok) << unlimited.diagnostic;
  ASSERT_GE(unlimited.max_live_states, 3u);  // budget below must stay >= 2
  // In every sequential schedule a fork's next op writes the child, so the
  // materialized peak equals the live peak and its witness is the write
  // that realizes the deepest fork.
  ASSERT_EQ(unlimited.max_materialized_states, unlimited.max_live_states);
  // Same plan, budget one below the witness depth: the adversarial
  // over-budget fixture — the witness write's materialization must fail.
  ScheduleOptions tight;
  tight.max_states = unlimited.max_live_states - 1;
  const std::vector<PlanOp> plan = record_plan(w.ctx, w.trials);
  const PlanProof proof = PlanVerifier(w.ctx, tight).verify(w.trials, plan);
  ASSERT_FALSE(proof.ok);
  EXPECT_EQ(proof.violating_op, unlimited.materialization_witness_op);
  EXPECT_NE(proof.diagnostic.find("exceeding the MSV budget"), std::string::npos)
      << proof.diagnostic;
  EXPECT_NE(proof.violating_trial, kNoIndex);
}

TEST(PlanVerifier, AcceptsUnmaterializedForksBeyondBudget) {
  // The CoW relaxation: a fork that is never written occupies no memory,
  // so a plan may hold more live checkpoint *handles* than the MSV budget
  // as long as the materialized count stays within it. Three zero-error
  // trials finish on CoW forks of the fully-advanced root — three live
  // handles at the peak, one materialized buffer throughout.
  const Circuit circuit = decompose_to_cx_basis(make_qft(4));
  const CircuitContext ctx(circuit);
  const auto total = static_cast<layer_index_t>(ctx.num_layers());
  std::vector<Trial> trials(3);
  std::vector<PlanOp> plan;
  const auto push = [&plan](PlanOpKind kind, std::uint32_t depth,
                            trial_index_t trial = 0) {
    PlanOp op;
    op.kind = kind;
    op.depth = depth;
    op.trial = trial;
    plan.push_back(op);
  };
  push(PlanOpKind::kAdvance, 0);
  plan.back().from = 0;
  plan.back().to = total;
  push(PlanOpKind::kFinish, 0, 0);
  push(PlanOpKind::kFork, 0);
  push(PlanOpKind::kFinish, 1, 1);
  push(PlanOpKind::kFork, 1);
  push(PlanOpKind::kFinish, 2, 2);
  push(PlanOpKind::kDrop, 2);
  push(PlanOpKind::kDrop, 1);
  ScheduleOptions budget;
  budget.max_states = 2;
  const PlanProof proof = PlanVerifier(ctx, budget).verify(trials, plan);
  ASSERT_TRUE(proof.ok) << proof.diagnostic;
  EXPECT_EQ(proof.max_live_states, 3u);
  EXPECT_EQ(proof.max_materialized_states, 1u);
  EXPECT_EQ(proof.materializations, 1u);
}

TEST(PlanVerifier, RejectsDeadBranchInsertion) {
  Workload w(4, 0.05, 500, 7);
  std::vector<PlanOp> plan = record_plan(w.ctx, w.trials);
  // Insert a wasteful fork+drop (a branch that finishes nothing) before an
  // existing fork — the shape an off-by-one op-count attribution bug takes.
  const auto fork_it = std::find_if(plan.begin(), plan.end(), [](const PlanOp& op) {
    return op.kind == PlanOpKind::kFork;
  });
  ASSERT_NE(fork_it, plan.end());
  PlanOp fork;
  fork.kind = PlanOpKind::kFork;
  fork.depth = fork_it->depth;
  PlanOp drop;
  drop.kind = PlanOpKind::kDrop;
  drop.depth = fork_it->depth + 1;
  const auto at = static_cast<std::size_t>(fork_it - plan.begin());
  plan.insert(fork_it, {fork, drop});
  const PlanProof proof = PlanVerifier(w.ctx).verify(w.trials, plan);
  ASSERT_FALSE(proof.ok);
  EXPECT_EQ(proof.violating_op, at + 1);
  EXPECT_NE(proof.diagnostic.find("without finishing any trial"), std::string::npos)
      << proof.diagnostic;
  EXPECT_NE(proof.violating_trial, kNoIndex);
}

TEST(PlanVerifier, RejectsOpCountTelescopingMismatch) {
  // A plan recorded under a tight budget replays trials individually, so
  // its op count exceeds the unlimited-budget model: verifying it against
  // the wrong options must trip the telescoping check (the pure op-count
  // diagnostic, reached once the structural checks all pass).
  Workload w(4, 0.08, 2000, 8);
  ScheduleOptions tight;
  tight.max_states = 2;
  const std::vector<PlanOp> plan = record_plan(w.ctx, w.trials, tight);
  const PlanProof proof = PlanVerifier(w.ctx).verify(w.trials, plan);
  ASSERT_FALSE(proof.ok);
  EXPECT_NE(proof.diagnostic.find("op-count telescoping violated"),
            std::string::npos)
      << proof.diagnostic;
  EXPECT_NE(proof.diagnostic.find("+"), std::string::npos);  // plan over-executes
}

TEST(PlanVerifier, RejectsUnfinishedTrialAndLeakedCheckpoint) {
  Workload w(4, 0.05, 300, 9);
  std::vector<PlanOp> plan = record_plan(w.ctx, w.trials);
  // Drop the last finish: its trial is never covered.
  const auto last_finish =
      std::find_if(plan.rbegin(), plan.rend(), [](const PlanOp& op) {
        return op.kind == PlanOpKind::kFinish;
      });
  ASSERT_NE(last_finish, plan.rend());
  const auto victim = static_cast<std::size_t>(last_finish->trial);
  plan.erase(std::next(last_finish).base());
  const PlanProof proof = PlanVerifier(w.ctx).verify(w.trials, plan);
  ASSERT_FALSE(proof.ok);
  EXPECT_EQ(proof.violating_trial, victim);
  EXPECT_NE(proof.diagnostic.find("never finished"), std::string::npos)
      << proof.diagnostic;

  // Truncating right after the first fork leaks that checkpoint (the
  // stack-balance check precedes the coverage check).
  std::vector<PlanOp> leaked = record_plan(w.ctx, w.trials);
  const auto first_fork =
      std::find_if(leaked.begin(), leaked.end(), [](const PlanOp& op) {
        return op.kind == PlanOpKind::kFork;
      });
  ASSERT_NE(first_fork, leaked.end());
  leaked.erase(first_fork + 1, leaked.end());
  const PlanProof leak_proof = PlanVerifier(w.ctx).verify(w.trials, leaked);
  ASSERT_FALSE(leak_proof.ok);
  EXPECT_NE(leak_proof.diagnostic.find("leaks"), std::string::npos)
      << leak_proof.diagnostic;
}

TEST(PlanVerifier, ThrowingWrapperNamesCallerAndDiagnostic) {
  Workload w(4, 0.05, 200, 10);
  std::swap(w.trials.front(), w.trials.back());
  if (is_reordered(w.trials)) {
    GTEST_SKIP() << "degenerate trial set";
  }
  try {
    verify_schedule_or_throw(w.ctx, w.trials, {}, "test-context");
    FAIL() << "expected rqsim::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test-context"), std::string::npos) << what;
    EXPECT_NE(what.find("schedule verification failed"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Entry-point run-limit guards (satellite): max_states == 0 stays the
// documented "unlimited" sentinel everywhere; overflowed/negative counts
// are rejected before any allocation is attempted.

Circuit guard_circuit() { return decompose_to_cx_basis(make_qft(3)); }
NoiseModel guard_noise() { return NoiseModel::uniform(3, 0.02, 0.08, 0.02); }

TEST(RunLimits, MaxStatesZeroIsUnlimitedAtEveryEntryPoint) {
  NoisyRunConfig config;
  config.num_trials = 200;
  config.max_states = 0;
  EXPECT_GT(run_noisy(guard_circuit(), guard_noise(), config).ops, 0u);
  EXPECT_GT(analyze_noisy(guard_circuit(), guard_noise(), config).ops, 0u);
  ParallelRunConfig parallel;
  parallel.num_trials = 200;
  parallel.max_states = 0;
  parallel.num_threads = 2;
  EXPECT_GT(run_noisy_parallel(guard_circuit(), guard_noise(), parallel).ops, 0u);

  SimService service({.num_workers = 0});
  JobSpec spec;
  spec.circuit = guard_circuit();
  spec.noise = guard_noise();
  spec.config = config;
  const SubmitOutcome outcome = service.try_submit(std::move(spec));
  EXPECT_EQ(outcome.status, SubmitStatus::kAccepted);
  service.run_pending();
  EXPECT_EQ(service.wait(outcome.job_id).state, JobState::kDone);
}

TEST(RunLimits, RejectsOverflowedTrialCounts) {
  NoisyRunConfig config;
  config.num_trials = static_cast<std::size_t>(-5);  // negative input, wrapped
  EXPECT_THROW(run_noisy(guard_circuit(), guard_noise(), config), Error);
  EXPECT_THROW(analyze_noisy(guard_circuit(), guard_noise(), config), Error);
  ParallelRunConfig parallel;
  parallel.num_trials = kMaxTrialCount + 1;
  EXPECT_THROW(run_noisy_parallel(guard_circuit(), guard_noise(), parallel), Error);
}

TEST(RunLimits, RejectsOverflowedOrSingletonBudgets) {
  NoisyRunConfig config;
  config.num_trials = 10;
  config.max_states = 1;  // below the 2-state minimum
  EXPECT_THROW(run_noisy(guard_circuit(), guard_noise(), config), Error);
  config.max_states = kMaxStatesBudget + 1;  // overflowed / negative input
  EXPECT_THROW(analyze_noisy(guard_circuit(), guard_noise(), config), Error);
}

TEST(RunLimits, ServiceRejectsOverflowedSpecsAsInvalid) {
  SimService service({.num_workers = 0});
  JobSpec spec;
  spec.circuit = guard_circuit();
  spec.noise = guard_noise();
  spec.config.num_trials = static_cast<std::size_t>(-1);
  EXPECT_EQ(service.try_submit(spec).status, SubmitStatus::kInvalid);

  spec.config.num_trials = 10;
  spec.config.max_states = kMaxStatesBudget + 7;
  EXPECT_EQ(service.try_submit(spec).status, SubmitStatus::kInvalid);

  spec.config.max_states = 0;
  spec.num_threads = static_cast<std::size_t>(-2);
  EXPECT_EQ(service.try_submit(spec).status, SubmitStatus::kInvalid);
}

}  // namespace
}  // namespace rqsim
