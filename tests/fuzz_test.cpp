// Randomized whole-pipeline property tests: random circuits × random noise
// levels, checked across every execution mode. These are the "shake it and
// see" tests that catch interactions the targeted suites miss.
#include <gtest/gtest.h>

#include "circuit/layering.hpp"
#include "circuit/qasm.hpp"
#include "common/rng.hpp"
#include "noise/noise_model.hpp"
#include "sched/backend.hpp"
#include "sched/baseline.hpp"
#include "sched/cached.hpp"
#include "sched/order.hpp"
#include "sched/runner.hpp"
#include "sim/reference.hpp"
#include "trial/generator.hpp"

namespace rqsim {
namespace {

// Random circuit over the full IR gate set (pre-decomposition kinds too).
Circuit random_circuit(Rng& rng, unsigned max_qubits, int max_gates) {
  const unsigned n = 2 + static_cast<unsigned>(rng.uniform_int(max_qubits - 1));
  Circuit c(n);
  const int gates = 1 + static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(max_gates)));
  for (int i = 0; i < gates; ++i) {
    const auto q = static_cast<qubit_t>(rng.uniform_int(n));
    auto r = static_cast<qubit_t>(rng.uniform_int(n - 1));
    if (r >= q) {
      ++r;
    }
    switch (rng.uniform_int(10)) {
      case 0:
        c.h(q);
        break;
      case 1:
        c.x(q);
        break;
      case 2:
        c.t(q);
        break;
      case 3:
        c.sdg(q);
        break;
      case 4:
        c.u3(q, rng.uniform(0, 2 * kPi), rng.uniform(0, 2 * kPi), rng.uniform(0, 2 * kPi));
        break;
      case 5:
        c.rz(q, rng.uniform(-kPi, kPi));
        break;
      case 6:
        c.cx(q, r);
        break;
      case 7:
        c.cz(q, r);
        break;
      case 8:
        c.cp(q, r, rng.uniform(0, kPi));
        break;
      default:
        c.ry(q, rng.uniform(-kPi, kPi));
        break;
    }
  }
  // Measure a random non-empty subset, in random order.
  const unsigned measured = 1 + static_cast<unsigned>(rng.uniform_int(n));
  std::vector<qubit_t> order(n);
  for (qubit_t q = 0; q < n; ++q) {
    order[q] = q;
  }
  std::shuffle(order.begin(), order.end(), rng);
  for (unsigned k = 0; k < measured; ++k) {
    c.measure(order[k]);
  }
  return c;
}

NoiseModel random_noise(Rng& rng, unsigned n) {
  NoiseModel noise =
      NoiseModel::uniform(n, rng.uniform(0.0, 0.15), rng.uniform(0.0, 0.3),
                          rng.uniform(0.0, 0.2));
  if (rng.bernoulli(0.5)) {
    noise.set_uniform_idle_rate(rng.uniform(0.0, 0.05));
  }
  return noise;
}

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzz, AllExecutionPathsAgree) {
  Rng rng(GetParam());
  const Circuit c = random_circuit(rng, 5, 40);
  const NoiseModel noise = random_noise(rng, c.num_qubits());
  const CircuitContext ctx(c);

  Rng trial_rng(GetParam() ^ 0xabcdef);
  auto trials = generate_trials(c, ctx.layering, noise, 150, trial_rng);
  const opcount_t baseline = baseline_op_count(ctx, trials);
  const ConsecutiveCacheResult unordered = consecutive_cached_count(ctx, trials);
  reorder_trials(trials);
  ASSERT_TRUE(is_reordered(trials));

  // 1. Trace equivalence: every trial sees exactly its operator sequence.
  TraceBackend tracer(ctx, trials.size());
  schedule_trials(ctx, trials, tracer);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const auto expected = expected_trace(ctx, trials[i]);
    ASSERT_EQ(tracer.traces()[i].size(), expected.size()) << "trial " << i;
    for (std::size_t k = 0; k < expected.size(); ++k) {
      ASSERT_TRUE(tracer.traces()[i][k] == expected[k]) << "trial " << i << " op " << k;
    }
  }

  // 2. Count and statevector backends agree; ops bounded by alternatives.
  CountBackend counter(ctx);
  schedule_trials(ctx, trials, counter);
  EXPECT_LE(counter.ops(), unordered.ops);
  EXPECT_LE(unordered.ops, baseline);
  EXPECT_EQ(counter.finished_trials(), trials.size());

  Rng sample_rng(1);
  SvBackend sv(ctx, sample_rng, /*record_final_states=*/true);
  schedule_trials(ctx, trials, sv);
  const SvRunResult run = sv.take_result();
  EXPECT_EQ(run.ops, counter.ops());
  EXPECT_EQ(run.max_live_states, counter.max_live_states());

  // 3. Bitwise equivalence against direct per-trial simulation.
  for (std::size_t i = 0; i < trials.size(); ++i) {
    ASSERT_TRUE(run.final_states[i].bitwise_equal(simulate_trial(ctx, trials[i])))
        << "trial " << i;
  }

  // 4. Capped scheduling stays within budget and is bitwise correct too.
  ScheduleOptions tight;
  tight.max_states = 2;
  Rng capped_rng(2);
  SvBackend capped(ctx, capped_rng, /*record_final_states=*/true);
  schedule_trials(ctx, trials, capped, tight);
  const SvRunResult capped_run = capped.take_result();
  EXPECT_LE(capped_run.max_live_states, 2u);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    ASSERT_TRUE(capped_run.final_states[i].bitwise_equal(run.final_states[i]))
        << "trial " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range<std::uint64_t>(100, 120));

class QasmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QasmFuzz, RoundTripPreservesSemantics) {
  Rng rng(GetParam());
  const Circuit original = random_circuit(rng, 5, 30);
  const Circuit parsed = from_qasm(to_qasm(original));
  ASSERT_EQ(parsed.num_qubits(), original.num_qubits());
  ASSERT_EQ(parsed.num_gates(), original.num_gates());
  ASSERT_EQ(parsed.measured_qubits(), original.measured_qubits());
  const StateVector a = reference_simulate(original);
  const StateVector b = reference_simulate(parsed);
  EXPECT_GT(a.fidelity(b), 1.0 - 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QasmFuzz, ::testing::Range<std::uint64_t>(200, 215));

}  // namespace
}  // namespace rqsim
