#include <gtest/gtest.h>

#include <cmath>

#include "bench_circuits/bv.hpp"
#include "bench_circuits/grover.hpp"
#include "bench_circuits/mod15.hpp"
#include "bench_circuits/qft.hpp"
#include "bench_circuits/qv.hpp"
#include "bench_circuits/rb.hpp"
#include "bench_circuits/suite.hpp"
#include "bench_circuits/wstate.hpp"
#include "common/bits.hpp"
#include "noise/devices.hpp"
#include "sim/kernels.hpp"
#include "sim/measure.hpp"
#include "sim/statevector.hpp"
#include "transpile/decompose.hpp"
#include "transpile/router.hpp"

namespace rqsim {
namespace {

StateVector simulate(const Circuit& c) {
  StateVector s(c.num_qubits());
  for (const Gate& g : c.gates()) {
    apply_gate(s, g);
  }
  return s;
}

// ---------------------------------------------------------------- BV

TEST(BenchBV, RecoversSecret) {
  for (std::uint64_t secret : {0b000ULL, 0b101ULL, 0b111ULL, 0b010ULL}) {
    const Circuit c = make_bv(3, secret);
    const StateVector s = simulate(c);
    const auto probs = measurement_probabilities(s, c.measured_qubits());
    EXPECT_NEAR(probs[secret], 1.0, 1e-10) << "secret=" << secret;
  }
}

TEST(BenchBV, FiveQubitVariant) {
  const Circuit c = make_bv(4, 0b1101);
  EXPECT_EQ(c.num_qubits(), 5u);
  EXPECT_EQ(c.count_kind(GateKind::CX), 3u);  // popcount(0b1101)
  const StateVector s = simulate(c);
  const auto probs = measurement_probabilities(s, c.measured_qubits());
  EXPECT_NEAR(probs[0b1101], 1.0, 1e-10);
}

// ---------------------------------------------------------------- QFT

TEST(BenchQFT, MatchesDFTOnBasisStates) {
  // QFT|x⟩ amplitudes: (1/√N)·exp(2πi·x·k/N) on the bit-reversed register
  // when swaps are enabled -> with swaps, plain DFT.
  const unsigned n = 3;
  const std::size_t dim = 8;
  for (std::uint64_t x = 0; x < dim; ++x) {
    Circuit prep(n);
    for (qubit_t q = 0; q < n; ++q) {
      if (get_bit(x, q)) {
        prep.x(q);
      }
    }
    StateVector s = simulate(prep);
    const Circuit qft = make_qft(n);
    for (const Gate& g : qft.gates()) {
      apply_gate(s, g);
    }
    for (std::uint64_t k = 0; k < dim; ++k) {
      const double angle = 2.0 * kPi * static_cast<double>(x * k % dim) / dim;
      const cplx expected = std::exp(cplx(0.0, angle)) / std::sqrt(8.0);
      EXPECT_LT(std::abs(s[k] - expected), 1e-10) << "x=" << x << " k=" << k;
    }
  }
}

TEST(BenchQFT, GateCountFormula) {
  for (unsigned n : {2u, 4u, 5u}) {
    const Circuit c = make_qft(n);
    EXPECT_EQ(c.count_kind(GateKind::H), n);
    EXPECT_EQ(c.count_kind(GateKind::CP), n * (n - 1) / 2);
    EXPECT_EQ(c.count_kind(GateKind::SWAP), n / 2);
    EXPECT_EQ(c.num_measured(), n);
  }
}

// ---------------------------------------------------------------- Grover

TEST(BenchGrover, AmplifiesMarkedState) {
  for (std::uint64_t marked = 0; marked < 8; ++marked) {
    const Circuit c = decompose_to_cx_basis(make_grover3(marked, 2));
    const StateVector s = simulate(c);
    const auto probs = measurement_probabilities(s, c.measured_qubits());
    // Two Grover iterations on 8 entries: success probability ~0.945.
    EXPECT_GT(probs[marked], 0.9) << "marked=" << marked;
  }
}

TEST(BenchGrover, GateBudgetComparableToPaper) {
  const Circuit c = decompose_to_cx_basis(make_grover3(5, 2));
  // Paper's compiled grover: 87 single, 25 CNOT. Ours (pre-routing) must be
  // in the same regime: 4 CCZ -> 24 CX plus frame/diffusion singles.
  EXPECT_EQ(c.count_kind(GateKind::CX), 24u);
  EXPECT_GT(c.count_single_qubit_gates(), 30u);
}

// ---------------------------------------------------------------- W state

TEST(BenchWState, ExactAmplitudes) {
  const Circuit c = make_wstate3();
  const StateVector s = simulate(c);
  const double expected = 1.0 / std::sqrt(3.0);
  EXPECT_NEAR(std::abs(s[0b001]), expected, 1e-10);
  EXPECT_NEAR(std::abs(s[0b010]), expected, 1e-10);
  EXPECT_NEAR(std::abs(s[0b100]), expected, 1e-10);
  for (std::uint64_t i : {0b000u, 0b011u, 0b101u, 0b110u, 0b111u}) {
    EXPECT_NEAR(std::abs(s[i]), 0.0, 1e-10) << i;
  }
}

// ---------------------------------------------------------------- RB

TEST(BenchRB, NetIdentity) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 99ULL}) {
    const Circuit c = make_rb(2, 6, seed);
    const StateVector s = simulate(c);
    EXPECT_NEAR(s.probability(0), 1.0, 1e-10) << "seed=" << seed;
  }
}

TEST(BenchRB, Deterministic) {
  const Circuit a = make_rb(2, 4, 7);
  const Circuit b = make_rb(2, 4, 7);
  ASSERT_EQ(a.num_gates(), b.num_gates());
  for (std::size_t i = 0; i < a.num_gates(); ++i) {
    EXPECT_EQ(a.gates()[i].kind, b.gates()[i].kind);
  }
}

// ---------------------------------------------------------------- mod15

TEST(BenchMod15, PermutationIsTimesSevenMod15) {
  for (std::uint64_t x = 1; x < 15; ++x) {
    const Circuit c = decompose_to_cx_basis(make_7x_mod15(x));
    const StateVector s = simulate(c);
    const std::uint64_t expected = (7 * x) % 15;
    EXPECT_NEAR(s.probability(expected), 1.0, 1e-10) << "x=" << x;
  }
  // 0 and 15 are the same residue class mod 15; the bit-level permutation
  // maps |0000⟩ to |1111⟩ (both represent 0).
  const StateVector s = simulate(decompose_to_cx_basis(make_7x_mod15(0)));
  EXPECT_NEAR(s.probability(0b1111), 1.0, 1e-10);
}

// ---------------------------------------------------------------- QV

TEST(BenchQV, StructureAndDeterminism) {
  const Circuit a = make_qv(5, 3, 42);
  const Circuit b = make_qv(5, 3, 42);
  EXPECT_EQ(a.num_gates(), b.num_gates());
  // 3 layers × 2 pairs × 3 CX per block.
  EXPECT_EQ(a.count_kind(GateKind::CX), 18u);
  EXPECT_EQ(a.num_measured(), 5u);
  // Different seed -> different circuit.
  const Circuit d = make_qv(5, 3, 43);
  bool any_different = a.num_gates() != d.num_gates();
  for (std::size_t i = 0; !any_different && i < a.num_gates(); ++i) {
    any_different = a.gates()[i].params != d.gates()[i].params ||
                    a.gates()[i].qubits != d.gates()[i].qubits;
  }
  EXPECT_TRUE(any_different);
}

TEST(BenchQV, PreservesNorm) {
  const Circuit c = make_qv(4, 4, 5);
  const StateVector s = simulate(c);
  EXPECT_NEAR(s.norm_squared(), 1.0, 1e-9);
}

TEST(BenchQV, LargeCircuitBuildsQuickly) {
  const Circuit c = make_qv(40, 20, 1);
  EXPECT_EQ(c.num_qubits(), 40u);
  EXPECT_EQ(c.count_kind(GateKind::CX), 20u * 20u * 3u);
}

// ---------------------------------------------------------------- suite

TEST(BenchSuite, TwelveEntriesCompiledToDevice) {
  const DeviceModel dev = yorktown_device();
  const auto suite = make_table1_suite(dev);
  ASSERT_EQ(suite.size(), 12u);
  for (const BenchmarkEntry& entry : suite) {
    EXPECT_TRUE(in_cx_basis(entry.compiled)) << entry.name;
    EXPECT_TRUE(respects_coupling(entry.compiled, dev.coupling)) << entry.name;
    EXPECT_EQ(entry.compiled.num_measured(), entry.paper_measure) << entry.name;
    EXPECT_GT(entry.compiled.num_gates(), 0u) << entry.name;
    entry.compiled.validate();
  }
  EXPECT_EQ(suite[0].name, "rb");
  EXPECT_EQ(suite[11].name, "qv_n5d5");
}

TEST(BenchSuite, GateCountsInPaperRegime) {
  // Not an exact match (different compiler), but each compiled benchmark
  // should be within a small factor of the paper's Table I size.
  const auto suite = make_table1_suite(yorktown_device());
  for (const BenchmarkEntry& entry : suite) {
    const double ours = static_cast<double>(entry.compiled.num_gates());
    const double paper = static_cast<double>(entry.paper_single + entry.paper_cnot);
    EXPECT_GT(ours, paper * 0.2) << entry.name;
    EXPECT_LT(ours, paper * 5.0) << entry.name;
  }
}

}  // namespace
}  // namespace rqsim
