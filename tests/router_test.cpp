// Fleet router subsystem: consistent-hash ring, admission controller,
// backend pool, and the FleetRouter end to end against in-process
// SimServer backends.
//
// The e2e tests run backends with num_workers = 0 so queue contents and
// batch formation are fully deterministic: jobs are submitted through the
// router, then a specific backend's queue is drained on the test thread
// with service().run_pending().
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "router/admission.hpp"
#include "router/health.hpp"
#include "router/ring.hpp"
#include "router/router.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace rqsim {
namespace {

// ---------------------------------------------------------------------------
// Consistent-hash ring.
// ---------------------------------------------------------------------------

TEST(HashRing, OwnerIsDeterministicAndPreferenceIsDistinct) {
  HashRing ring(32);
  ring.add("a");
  ring.add("b");
  ring.add("c");
  for (std::uint64_t key = 0; key < 200; ++key) {
    const std::uint64_t h = stable_hash64(std::to_string(key));
    const std::string owner = ring.owner(h);
    EXPECT_FALSE(owner.empty());
    const std::vector<std::string> pref = ring.preference(h, 3);
    ASSERT_EQ(pref.size(), 3u);
    EXPECT_EQ(pref.front(), owner);
    EXPECT_EQ(std::set<std::string>(pref.begin(), pref.end()).size(), 3u);
  }
}

TEST(HashRing, RemovalOnlyMovesTheRemovedBackendsKeys) {
  HashRing ring(64);
  ring.add("a");
  ring.add("b");
  ring.add("c");
  std::map<std::uint64_t, std::string> before;
  for (std::uint64_t key = 0; key < 500; ++key) {
    const std::uint64_t h = stable_hash64("k" + std::to_string(key));
    before[h] = ring.owner(h);
  }
  ring.remove("c");
  std::size_t moved = 0;
  for (const auto& [h, owner] : before) {
    if (owner == "c") {
      EXPECT_NE(ring.owner(h), "c");
    } else {
      // The consistency property: keys not owned by the removed backend
      // keep their owner.
      EXPECT_EQ(ring.owner(h), owner);
    }
    moved += owner == "c" ? 1 : 0;
  }
  // With 64 vnodes the three backends split the keyspace roughly evenly.
  EXPECT_GT(moved, 500u / 10);
  EXPECT_LT(moved, 500u / 2);
}

TEST(HashRing, AllBackendsOwnSomeKeys) {
  HashRing ring(64);
  ring.add("a");
  ring.add("b");
  ring.add("c");
  ring.add("d");
  std::set<std::string> seen;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    seen.insert(ring.owner(stable_hash64("x" + std::to_string(key))));
  }
  EXPECT_EQ(seen.size(), 4u);
}

// ---------------------------------------------------------------------------
// Workload-affinity key.
// ---------------------------------------------------------------------------

Json fleet_submit(std::size_t trials, std::uint64_t seed, const std::string& tenant,
                  const std::string& circuit = "ghz:4") {
  WorkloadSpec workload;
  workload.circuit_spec = circuit;
  workload.device = "ideal";
  SubmitParams params;
  params.trials = trials;
  params.seed = seed;
  params.tenant = tenant;
  return make_submit_request(workload, params);
}

TEST(AffinityKey, IgnoresTenantSeedTrialsButNotWorkload) {
  const std::uint64_t alice = workload_affinity_key(fleet_submit(400, 1, "alice"));
  const std::uint64_t bob = workload_affinity_key(fleet_submit(900, 77, "bob"));
  EXPECT_EQ(alice, bob);  // batch-compatible submits share the key

  const std::uint64_t other = workload_affinity_key(fleet_submit(400, 1, "alice", "ghz:5"));
  EXPECT_NE(alice, other);  // different circuit => different key

  Json baseline = fleet_submit(400, 1, "alice");
  baseline.set("mode", Json(std::string("baseline")));
  EXPECT_NE(alice, workload_affinity_key(baseline));  // mode is part of the class
}

// ---------------------------------------------------------------------------
// Admission controller.
// ---------------------------------------------------------------------------

TEST(Admission, TenantQuotaAndRelease) {
  AdmissionConfig config;
  config.tenant_quota = 2;
  AdmissionController admission(config);
  EXPECT_TRUE(admission.try_admit("t").admitted);
  EXPECT_TRUE(admission.try_admit("t").admitted);
  const AdmissionDecision rejected = admission.try_admit("t");
  EXPECT_FALSE(rejected.admitted);
  EXPECT_GT(rejected.retry_after_ms, 0.0);
  admission.release("t");
  EXPECT_TRUE(admission.try_admit("t").admitted);
}

TEST(Admission, WeightedFairShareUnderContention) {
  AdmissionConfig config;
  config.fleet_capacity = 4;
  AdmissionController admission(config);

  // An idle fleet: tenant a may use every slot (its active-set share is the
  // whole capacity)...
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(admission.try_admit("a").admitted) << i;
  }
  EXPECT_FALSE(admission.try_admit("a").admitted);  // fleet capacity

  // ...but as soon as b competes, shares split 50/50: b claims a freed slot,
  // and once a is down to its share of 2 it is rejected even though a fleet
  // slot is free — the idle capacity is reserved for the other active tenant.
  admission.release("a");
  EXPECT_TRUE(admission.try_admit("b").admitted);
  admission.release("a");
  EXPECT_FALSE(admission.try_admit("a").admitted);
  EXPECT_TRUE(admission.try_admit("b").admitted);
}

TEST(Admission, WeightsSkewTheShares) {
  AdmissionConfig config;
  config.fleet_capacity = 4;
  config.weights["heavy"] = 3.0;
  AdmissionController admission(config);
  ASSERT_TRUE(admission.try_admit("light").admitted);
  // Active weights: heavy 3 + light 1 => heavy's share = ceil(4*3/4) = 3.
  EXPECT_TRUE(admission.try_admit("heavy").admitted);
  EXPECT_TRUE(admission.try_admit("heavy").admitted);
  EXPECT_TRUE(admission.try_admit("heavy").admitted);
  EXPECT_FALSE(admission.try_admit("heavy").admitted);
}

TEST(Admission, RetryAfterHintGrowsExponentiallyAndResets) {
  AdmissionConfig config;
  config.tenant_quota = 1;
  config.retry_after_base_ms = 10.0;
  config.retry_after_max_ms = 100.0;
  AdmissionController admission(config);
  ASSERT_TRUE(admission.try_admit("t").admitted);
  const double first = admission.try_admit("t").retry_after_ms;
  const double second = admission.try_admit("t").retry_after_ms;
  const double third = admission.try_admit("t").retry_after_ms;
  EXPECT_DOUBLE_EQ(first, 10.0);
  EXPECT_DOUBLE_EQ(second, 20.0);
  EXPECT_DOUBLE_EQ(third, 40.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_LE(admission.try_admit("t").retry_after_ms, 100.0);  // capped
  }
  admission.release("t");
  ASSERT_TRUE(admission.try_admit("t").admitted);
  EXPECT_DOUBLE_EQ(admission.try_admit("t").retry_after_ms, 10.0);  // reset
}

// ---------------------------------------------------------------------------
// Backend pool: ejection, re-admission, drain as routing filters.
// ---------------------------------------------------------------------------

TEST(BackendPool, FailuresEjectAndDrainingFilters) {
  HealthConfig health;
  health.eject_after = 2;
  BackendPool pool({"a", "b", "c"}, health, 16);
  const std::uint64_t key = stable_hash64("some-workload");
  const std::vector<std::string> all = pool.route_preference(key);
  ASSERT_EQ(all.size(), 3u);

  pool.report_failure(all[0]);
  EXPECT_EQ(pool.route_preference(key).size(), 3u);  // 1 < eject_after
  pool.report_failure(all[0]);
  std::vector<std::string> routable = pool.route_preference(key);
  ASSERT_EQ(routable.size(), 2u);
  EXPECT_EQ(routable.front(), all[1]);  // next in ring order inherits the key

  pool.report_success(all[0]);  // re-admission
  EXPECT_EQ(pool.route_preference(key).size(), 3u);
  EXPECT_EQ(pool.route_preference(key).front(), all[0]);  // key returns home

  ASSERT_TRUE(pool.set_draining(all[0], true));
  EXPECT_EQ(pool.route_preference(key).front(), all[1]);
  ASSERT_TRUE(pool.set_draining(all[0], false));
  EXPECT_EQ(pool.route_preference(key).front(), all[0]);

  EXPECT_FALSE(pool.set_draining("nonsense", true));
}

TEST(BackendPool, ProbeReadmitsALiveBackend) {
  ServerConfig config;
  config.tcp_port = 0;
  config.service.num_workers = 0;
  SimServer server(std::move(config));
  std::thread runner([&server] { server.run(); });
  const std::string endpoint = "127.0.0.1:" + std::to_string(server.tcp_port());

  HealthConfig health;
  health.eject_after = 1;
  health.timeout_ms = 1000;
  BackendPool pool({endpoint}, health, 8);
  pool.report_failure(endpoint);  // spuriously ejected
  EXPECT_TRUE(pool.route_preference(1).empty());

  pool.probe_once();  // ping succeeds => re-admitted
  EXPECT_EQ(pool.route_preference(1).size(), 1u);
  const auto info = pool.info(endpoint);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->pings_ok, 1u);
  EXPECT_EQ(info->state, BackendState::kHealthy);

  server.stop();
  runner.join();
}

// ---------------------------------------------------------------------------
// FleetRouter end to end over in-process backends.
// ---------------------------------------------------------------------------

struct Fleet {
  explicit Fleet(std::size_t n, std::size_t workers = 0) {
    for (std::size_t i = 0; i < n; ++i) {
      ServerConfig config;
      config.tcp_port = 0;
      config.service.num_workers = workers;
      config.service.queue_capacity = 64;
      config.service.max_batch_jobs = 8;
      servers.push_back(std::make_unique<SimServer>(std::move(config)));
      threads.emplace_back([server = servers.back().get()] { server->run(); });
      endpoints.push_back("127.0.0.1:" + std::to_string(servers.back()->tcp_port()));
    }
  }

  ~Fleet() {
    for (std::size_t i = 0; i < servers.size(); ++i) {
      stop(i);
    }
  }

  SimServer& by_endpoint(const std::string& endpoint) {
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      if (endpoints[i] == endpoint) {
        return *servers[i];
      }
    }
    throw Error("fleet test: unknown endpoint " + endpoint);
  }

  void stop(const std::string& endpoint) {
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      if (endpoints[i] == endpoint) {
        stop(i);
      }
    }
  }

  void stop(std::size_t i) {
    if (servers[i]) {
      servers[i]->stop();
    }
    if (threads[i].joinable()) {
      threads[i].join();
    }
  }

  RouterConfig router_config() const {
    RouterConfig config;
    config.tcp_port = 0;
    config.backends = endpoints;
    config.health_thread = false;      // tests step probes deterministically
    config.health.eject_after = 1;     // first failure re-routes immediately
    config.backend_client.max_attempts = 1;
    config.backend_client.connect_timeout_ms = 2000;
    return config;
  }

  std::vector<std::unique_ptr<SimServer>> servers;
  std::vector<std::thread> threads;
  std::vector<std::string> endpoints;
};

Json job_op(const std::string& op, std::uint64_t job) {
  Json request = Json::object();
  request.set("op", Json(op));
  request.set("job", Json(job));
  return request;
}

// Reference run of the same submit on a standalone single-process service.
Json solo_histogram(const Json& submit) {
  SimService service(ServiceConfig{0, 8, 8});
  ProtocolHandler handler(service);
  const Json accepted = handler.handle(submit);
  EXPECT_TRUE(accepted.at("ok").as_bool()) << accepted.dump();
  service.run_pending();
  const Json status = handler.handle(job_op("status", accepted.at("job").as_u64()));
  EXPECT_EQ(status.get_string("state", ""), "done") << status.dump();
  return status.at("result").at("histogram");
}

TEST(FleetRouterE2E, AffinityCoLocatesTenantsAndMergesCrossTenantBatches) {
  Fleet fleet(3);
  FleetRouter router(fleet.router_config());

  // Same Table I-style workload, two tenants, identical seed: affinity must
  // put both on one backend regardless of tenant.
  const Json accepted_a = router.handle(fleet_submit(400, 11, "alice"));
  const Json accepted_b = router.handle(fleet_submit(400, 11, "bob"));
  ASSERT_TRUE(accepted_a.at("ok").as_bool()) << accepted_a.dump();
  ASSERT_TRUE(accepted_b.at("ok").as_bool()) << accepted_b.dump();
  const std::string owner = accepted_a.at("backend").as_string();
  EXPECT_EQ(accepted_b.at("backend").as_string(), owner);

  // Drain the owner's queue: both jobs form ONE merged, cross-tenant batch.
  EXPECT_EQ(fleet.by_endpoint(owner).service().run_pending(), 2u);

  const Json done_a = router.handle(job_op("status", accepted_a.at("job").as_u64()));
  const Json done_b = router.handle(job_op("status", accepted_b.at("job").as_u64()));
  ASSERT_EQ(done_a.get_string("state", ""), "done") << done_a.dump();
  ASSERT_EQ(done_b.get_string("state", ""), "done") << done_b.dump();
  EXPECT_EQ(done_a.at("result").at("batch_size").as_u64(), 2u);

  // Bitwise-identical histograms: tenant vs tenant, and fleet vs a
  // single-process SimService running the identical submit.
  const std::string reference = solo_histogram(fleet_submit(400, 11, "alice")).dump();
  EXPECT_EQ(done_a.at("result").at("histogram").dump(), reference);
  EXPECT_EQ(done_b.at("result").at("histogram").dump(), reference);

  // Aggregated fleet stats see the cross-tenant merge.
  const Json stats = router.handle(Json::parse("{\"op\":\"stats\"}"));
  ASSERT_TRUE(stats.at("ok").as_bool()) << stats.dump();
  EXPECT_EQ(stats.at("stats").at("merged_cross_tenant_batches").as_u64(), 1u);
  EXPECT_EQ(stats.at("stats").at("merged_cross_tenant_jobs").as_u64(), 2u);
  EXPECT_GT(stats.at("fleet").at("cross_tenant_merge_hit_rate").as_number(), 0.0);
  // Both tenants appear in the admission breakdown with zero in flight.
  EXPECT_EQ(stats.at("fleet").at("tenants").at("alice").at("admitted").as_u64(), 1u);
  EXPECT_EQ(stats.at("fleet").at("tenants").at("bob").at("inflight").as_u64(), 0u);
}

TEST(FleetRouterE2E, DeadBackendJobsRerouteWithNoLossOrDuplication) {
  Fleet fleet(3);
  FleetRouter router(fleet.router_config());

  // Route several compatible jobs; they all land on the affinity owner.
  std::vector<std::uint64_t> jobs;
  std::vector<std::uint64_t> seeds = {5, 6, 7};
  std::string owner;
  for (const std::uint64_t seed : seeds) {
    const Json accepted =
        router.handle(fleet_submit(300, seed, seed % 2 ? "alice" : "bob"));
    ASSERT_TRUE(accepted.at("ok").as_bool()) << accepted.dump();
    jobs.push_back(accepted.at("job").as_u64());
    owner = accepted.at("backend").as_string();
  }

  // Kill the owner before it ran anything: the queued jobs die with it.
  fleet.stop(owner);

  // The first status on each job hits the dead backend, triggers failover
  // (resubmission of the stored spec), and lands it queued elsewhere.
  std::set<std::string> new_backends;
  for (const std::uint64_t job : jobs) {
    const Json status = router.handle(job_op("status", job));
    ASSERT_TRUE(status.at("ok").as_bool()) << status.dump();
    EXPECT_EQ(status.get_string("state", ""), "queued");
  }
  const Json mid = router.handle(Json::parse("{\"op\":\"stats\"}"));
  EXPECT_EQ(mid.at("fleet").at("router").at("resubmits").as_u64(), seeds.size());

  // Drain every surviving backend and confirm each job completed exactly
  // once, with the result the original backend would have produced.
  for (const auto& endpoint : fleet.endpoints) {
    if (endpoint != owner) {
      fleet.by_endpoint(endpoint).service().run_pending();
    }
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Json done = router.handle(job_op("status", jobs[i]));
    ASSERT_EQ(done.get_string("state", ""), "done") << done.dump();
    EXPECT_EQ(done.at("result").at("histogram").dump(),
              solo_histogram(fleet_submit(300, seeds[i], "x")).dump());
  }
  const Json stats = router.handle(Json::parse("{\"op\":\"stats\"}"));
  // Completed exactly once each: the fleet-wide counter (the dead backend
  // no longer reports) equals the job count.
  EXPECT_EQ(stats.at("stats").at("completed").as_u64(), seeds.size());
}

TEST(FleetRouterE2E, DrainCompletesInflightAndReroutesNewJobs) {
  Fleet fleet(2);
  FleetRouter router(fleet.router_config());

  const Json accepted = router.handle(fleet_submit(200, 3, "alice"));
  ASSERT_TRUE(accepted.at("ok").as_bool()) << accepted.dump();
  const std::string owner = accepted.at("backend").as_string();

  // Drain the owner: the in-flight job stays put and reachable...
  Json drain = Json::object();
  drain.set("op", Json(std::string("drain")));
  drain.set("backend", Json(owner));
  const Json draining = router.handle(drain);
  ASSERT_TRUE(draining.at("ok").as_bool()) << draining.dump();
  EXPECT_EQ(draining.at("inflight").as_u64(), 1u);

  // ...while new compatible jobs route to the other backend.
  const Json rerouted = router.handle(fleet_submit(200, 4, "alice"));
  ASSERT_TRUE(rerouted.at("ok").as_bool()) << rerouted.dump();
  EXPECT_NE(rerouted.at("backend").as_string(), owner);

  // The drain completes: the draining backend finishes its queue and the
  // job is observed done through the router.
  fleet.by_endpoint(owner).service().run_pending();
  const Json done = router.handle(job_op("status", accepted.at("job").as_u64()));
  EXPECT_EQ(done.get_string("state", ""), "done") << done.dump();

  // Undrain brings the backend's keyspace arcs back.
  Json undrain = Json::object();
  undrain.set("op", Json(std::string("undrain")));
  undrain.set("backend", Json(owner));
  ASSERT_TRUE(router.handle(undrain).at("ok").as_bool());
  const Json back = router.handle(fleet_submit(200, 5, "alice"));
  EXPECT_EQ(back.at("backend").as_string(), owner);
}

TEST(FleetRouterE2E, QuotaRejectionCarriesRetryAfterAndClearsOnCompletion) {
  Fleet fleet(1);
  RouterConfig config = fleet.router_config();
  config.admission.tenant_quota = 1;
  FleetRouter router(std::move(config));

  const Json accepted = router.handle(fleet_submit(200, 1, "alice"));
  ASSERT_TRUE(accepted.at("ok").as_bool()) << accepted.dump();

  const Json rejected = router.handle(fleet_submit(200, 2, "alice"));
  EXPECT_FALSE(rejected.at("ok").as_bool());
  EXPECT_EQ(rejected.at("error").as_string(), "quota_exceeded");
  EXPECT_GT(rejected.at("retry_after_ms").as_number(), 0.0);

  // Another tenant has its own quota.
  const Json other = router.handle(fleet_submit(200, 3, "bob"));
  EXPECT_TRUE(other.at("ok").as_bool()) << other.dump();

  // Completion observed through the router releases the slot.
  fleet.servers[0]->service().run_pending();
  ASSERT_EQ(router.handle(job_op("status", accepted.at("job").as_u64()))
                .get_string("state", ""),
            "done");
  EXPECT_TRUE(router.handle(fleet_submit(200, 4, "alice")).at("ok").as_bool());
}

TEST(FleetRouterE2E, NoRoutableBackendIsAStructuredError) {
  Fleet fleet(1);
  FleetRouter router(fleet.router_config());
  fleet.stop(std::size_t{0});

  const Json response = router.handle(fleet_submit(100, 1, "alice"));
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("error").as_string(), "no_backend");
  EXPECT_GT(response.at("retry_after_ms").as_number(), 0.0);
  // The failed admission slot was returned.
  EXPECT_EQ(router.admission().total_inflight(), 0u);
}

TEST(FleetRouterE2E, FullSocketTransportAndFleetStats) {
  Fleet fleet(2, /*workers=*/1);
  RouterConfig config = fleet.router_config();
  config.backend_client.max_attempts = 3;
  FleetRouter router(std::move(config));
  std::thread runner([&router] { router.run(); });

  ServiceClient client =
      ServiceClient::connect_tcp("127.0.0.1", router.tcp_port());
  const Json pong = client.request(Json::parse("{\"op\":\"ping\"}"));
  EXPECT_TRUE(pong.at("ok").as_bool());
  EXPECT_TRUE(pong.get_bool("router", false));

  const Json accepted = client.request(fleet_submit(500, 21, "alice"));
  ASSERT_TRUE(accepted.at("ok").as_bool()) << accepted.dump();
  const Json done = client.request(job_op("wait", accepted.at("job").as_u64()));
  ASSERT_EQ(done.get_string("state", ""), "done") << done.dump();
  std::uint64_t total = 0;
  for (const auto& [bits, count] : done.at("result").at("histogram").as_object()) {
    (void)bits;
    total += count.as_u64();
  }
  EXPECT_EQ(total, 500u);

  const Json stats = client.request(Json::parse("{\"op\":\"stats\"}"));
  ASSERT_TRUE(stats.at("ok").as_bool()) << stats.dump();
  EXPECT_EQ(stats.at("stats").at("completed").as_u64(), 1u);
  ASSERT_TRUE(stats.has("fleet"));
  EXPECT_EQ(stats.at("fleet").at("backends").as_array().size(), 2u);
  // The merged telemetry block aggregates the backends' registries.
  ASSERT_TRUE(stats.has("telemetry"));

  const Json stopping = client.request(Json::parse("{\"op\":\"shutdown\"}"));
  EXPECT_TRUE(stopping.at("ok").as_bool());
  runner.join();
}

}  // namespace
}  // namespace rqsim
