#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/cli.hpp"

namespace rqsim {
namespace {

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult run(std::vector<std::string> args) {
  args.insert(args.begin(), "rqsim");
  std::ostringstream out;
  std::ostringstream err;
  CliResult result;
  result.code = run_cli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

TEST(Cli, HelpAndNoArgs) {
  const CliResult help = run({"help"});
  EXPECT_EQ(help.code, 0);
  EXPECT_NE(help.out.find("usage: rqsim"), std::string::npos);
  const CliResult none = run({});
  EXPECT_EQ(none.code, 1);
  EXPECT_NE(none.out.find("usage: rqsim"), std::string::npos);
}

TEST(Cli, UnknownCommand) {
  const CliResult result = run({"frobnicate"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("unknown command"), std::string::npos);
}

TEST(Cli, RunNamedCircuitOnYorktown) {
  const CliResult result =
      run({"run", "--circuit", "bv4", "--trials", "512", "--seed", "3"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("transpiled onto ibmq_yorktown"), std::string::npos);
  EXPECT_NE(result.out.find("normalized compute"), std::string::npos);
  EXPECT_NE(result.out.find("top outcomes:"), std::string::npos);
  // BV secret 0b101 should dominate.
  EXPECT_NE(result.out.find("|101>"), std::string::npos);
}

TEST(Cli, AnalyzeLargeCircuitWithoutStatevector) {
  const CliResult result =
      run({"analyze", "--circuit", "qv:24:5", "--device", "artificial", "--rate",
           "1e-3", "--trials", "2000", "--no-transpile"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("ops executed"), std::string::npos);
  EXPECT_EQ(result.out.find("top outcomes"), std::string::npos);
}

TEST(Cli, ModesAndBudget) {
  for (const char* mode : {"baseline", "cached", "unordered"}) {
    const CliResult result = run({"analyze", "--circuit", "qft4", "--mode", mode,
                                  "--trials", "256", "--max-states", "4"});
    EXPECT_EQ(result.code, 0) << mode << ": " << result.err;
  }
}

TEST(Cli, ParallelRun) {
  const CliResult result = run({"run", "--circuit", "ghz:4", "--device", "ideal",
                                "--no-transpile", "--trials", "1000", "--threads",
                                "3"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("top outcomes:"), std::string::npos);
}

TEST(Cli, TranspileEmitsQasm) {
  const CliResult result = run({"transpile", "--circuit", "grover"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(result.out.find("cx q["), std::string::npos);
}

TEST(Cli, SuiteListsAllBenchmarks) {
  const CliResult result = run({"suite"});
  EXPECT_EQ(result.code, 0);
  for (const char* name : {"rb", "grover", "wstate", "qv_n5d5"}) {
    EXPECT_NE(result.out.find(name), std::string::npos) << name;
  }
}

TEST(Cli, QasmInputRoundTrip) {
  const std::string path = "/tmp/rqsim_cli_test.qasm";
  {
    std::ofstream file(path);
    file << "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\n"
            "measure q[0] -> c[0];\nmeasure q[1] -> c[1];\n";
  }
  const CliResult result =
      run({"run", "--qasm", path, "--trials", "512", "--device", "ideal",
           "--no-transpile"});
  std::remove(path.c_str());
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("|00>"), std::string::npos);
  EXPECT_NE(result.out.find("|11>"), std::string::npos);
}

TEST(Cli, CsvOutput) {
  const std::string path = "/tmp/rqsim_cli_hist.csv";
  const CliResult result = run({"run", "--circuit", "ghz:3", "--device", "ideal",
                                "--no-transpile", "--trials", "256", "--csv", path});
  EXPECT_EQ(result.code, 0) << result.err;
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string header;
  std::getline(file, header);
  EXPECT_EQ(header, "outcome,count");
  std::remove(path.c_str());
}

TEST(Cli, ErrorsAreReported) {
  EXPECT_EQ(run({"run"}).code, 1);  // no circuit
  EXPECT_NE(run({"run"}).err.find("--circuit or --qasm"), std::string::npos);
  EXPECT_EQ(run({"run", "--circuit", "nope"}).code, 1);
  EXPECT_EQ(run({"run", "--circuit", "qft4", "--mode", "warp"}).code, 1);
  EXPECT_EQ(run({"run", "--circuit", "qft4", "--trials"}).code, 1);  // missing value
  EXPECT_EQ(run({"run", "--circuit", "qft4", "--trials", "abc"}).code, 1);
  EXPECT_EQ(run({"run", "--circuit", "qft4", "--bogus", "1"}).code, 1);
  EXPECT_EQ(run({"run", "--qasm", "/nonexistent.qasm"}).code, 1);
  // Circuit larger than the device.
  EXPECT_EQ(run({"run", "--circuit", "ghz:8"}).code, 1);
}

TEST(Cli, EnumerateCommand) {
  const CliResult result =
      run({"enumerate", "--circuit", "bv4", "--max-errors", "1"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("covered probability mass"), std::string::npos);
  EXPECT_NE(result.out.find("TVD bound"), std::string::npos);
}

TEST(Cli, DeviceCsvFlag) {
  const std::string path = "/tmp/rqsim_cli_device.csv";
  {
    std::ofstream file(path);
    file << "qubit,0,1e-3,1e-2\nqubit,1,1e-3,1e-2\nedge,0,1,1e-2\n";
  }
  const CliResult result = run({"run", "--circuit", "ghz:2", "--device-csv", path,
                                "--trials", "256"});
  std::remove(path.c_str());
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("top outcomes:"), std::string::npos);
}

TEST(Cli, DirectedYorktownDevice) {
  const CliResult result = run({"run", "--circuit", "bv4", "--device",
                                "yorktown-directed", "--trials", "256"});
  EXPECT_EQ(result.code, 0) << result.err;
}

TEST(Cli, ScaleFlagChangesSavings) {
  const CliResult low = run({"analyze", "--circuit", "qft4", "--scale", "0.1",
                             "--trials", "1024", "--seed", "5"});
  const CliResult high = run({"analyze", "--circuit", "qft4", "--scale", "3.0",
                              "--trials", "1024", "--seed", "5"});
  EXPECT_EQ(low.code, 0);
  EXPECT_EQ(high.code, 0);
  auto extract = [](const std::string& text) {
    const std::size_t pos = text.find("normalized compute  : ");
    return std::stod(text.substr(pos + 22));
  };
  EXPECT_LT(extract(low.out), extract(high.out));
}

}  // namespace
}  // namespace rqsim
