#include <gtest/gtest.h>

#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/fusion.hpp"
#include "common/bits.hpp"
#include "common/rng.hpp"
#include "sim/kernel_engine.hpp"
#include "sim/kernels.hpp"
#include "sim/reference.hpp"
#include "sim/statevector.hpp"

namespace rqsim {
namespace {

constexpr double kTol = 1e-10;

// Restores the process-wide engine config on scope exit so a failing test
// cannot leak threading into unrelated tests.
struct ConfigGuard {
  ~ConfigGuard() { set_kernel_config(KernelConfig{}); }
};

// ------------------------------------------------- blocked index iteration

TEST(BlockedIteration, SingleTargetRunsVisitExactPairIndices) {
  // The runs must enumerate, in order, the same base amplitude indices the
  // per-pair bit-insertion loop produces (runs yield interleaved-double
  // bases = 2 * amplitude index).
  for (unsigned n = 1; n <= 6; ++n) {
    const std::uint64_t half = (std::uint64_t{1} << n) >> 1;
    for (unsigned target = 0; target < n; ++target) {
      std::vector<std::uint64_t> got;
      for_target_runs(target, 0, half,
                      [&](std::uint64_t base, std::uint64_t run, auto step) {
                        constexpr std::uint64_t kStep = decltype(step)::value;
                        for (std::uint64_t j = 0; j < run; ++j) {
                          got.push_back(base + j * kStep);
                        }
                      });
      ASSERT_EQ(got.size(), half);
      for (std::uint64_t k = 0; k < half; ++k) {
        EXPECT_EQ(got[k], insert_zero_bit(k, target))
            << "n=" << n << " target=" << target << " k=" << k;
      }
    }
  }
}

TEST(BlockedIteration, TwoTargetRunsVisitExactQuadIndices) {
  for (unsigned n = 2; n <= 6; ++n) {
    const std::uint64_t quarter = (std::uint64_t{1} << n) >> 2;
    for (unsigned lo = 0; lo + 1 < n; ++lo) {
      for (unsigned hi = lo + 1; hi < n; ++hi) {
        std::vector<std::uint64_t> got;
        for_two_target_runs(lo, hi, 0, quarter,
                            [&](std::uint64_t base, std::uint64_t run, auto step) {
                              constexpr std::uint64_t kStep = decltype(step)::value;
                              for (std::uint64_t j = 0; j < run; ++j) {
                                got.push_back(base + j * kStep);
                              }
                            });
        ASSERT_EQ(got.size(), quarter);
        for (std::uint64_t k = 0; k < quarter; ++k) {
          EXPECT_EQ(got[k], insert_two_zero_bits(k, lo, hi))
              << "n=" << n << " lo=" << lo << " hi=" << hi << " k=" << k;
        }
      }
    }
  }
}

TEST(BlockedIteration, ArbitrarySubrangesPartitionTheSweep) {
  // Chunked traversal (what the worker pool does) must cover exactly the
  // same indices as one full sweep, in the same per-chunk order.
  Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    const unsigned n = 3 + static_cast<unsigned>(rng.uniform_int(5));
    const unsigned target = static_cast<unsigned>(rng.uniform_int(n));
    const std::uint64_t half = (std::uint64_t{1} << n) >> 1;
    const std::uint64_t cut1 = rng.uniform_int(half + 1);
    const std::uint64_t cut2 = cut1 + rng.uniform_int(half - cut1 + 1);
    std::vector<std::uint64_t> full;
    std::vector<std::uint64_t> chunked;
    auto append_to = [](std::vector<std::uint64_t>& out) {
      return [&out](std::uint64_t base, std::uint64_t run, auto step) {
        constexpr std::uint64_t kStep = decltype(step)::value;
        for (std::uint64_t j = 0; j < run; ++j) {
          out.push_back(base + j * kStep);
        }
      };
    };
    for_target_runs(target, 0, half, append_to(full));
    for_target_runs(target, 0, cut1, append_to(chunked));
    for_target_runs(target, cut1, cut2, append_to(chunked));
    for_target_runs(target, cut2, half, append_to(chunked));
    EXPECT_EQ(chunked, full) << "n=" << n << " target=" << target;
  }
}

// ----------------------------------------------------------- randomized fuzz

Gate random_gate(Rng& rng, unsigned n) {
  static const GateKind kOne[] = {GateKind::X,  GateKind::Y,   GateKind::Z,
                                  GateKind::H,  GateKind::S,   GateKind::Sdg,
                                  GateKind::T,  GateKind::Tdg, GateKind::RX,
                                  GateKind::RY, GateKind::RZ,  GateKind::P,
                                  GateKind::U2, GateKind::U3};
  static const GateKind kTwo[] = {GateKind::CX, GateKind::CZ, GateKind::CP,
                                  GateKind::SWAP};
  const double roll = rng.uniform();
  if (n >= 3 && roll < 0.08) {
    const auto a = static_cast<qubit_t>(rng.uniform_int(n));
    auto b = static_cast<qubit_t>(rng.uniform_int(n - 1));
    if (b >= a) ++b;
    qubit_t c = a;
    while (c == a || c == b) {
      c = static_cast<qubit_t>(rng.uniform_int(n));
    }
    return Gate::make3(GateKind::CCX, a, b, c);
  }
  if (n >= 2 && roll < 0.45) {
    const GateKind kind = kTwo[rng.uniform_int(4)];
    const auto a = static_cast<qubit_t>(rng.uniform_int(n));
    auto b = static_cast<qubit_t>(rng.uniform_int(n - 1));
    if (b >= a) ++b;
    return Gate::make2(kind, a, b, rng.uniform(0.0, 3.0));
  }
  const GateKind kind = kOne[rng.uniform_int(14)];
  return Gate::make1(kind, static_cast<qubit_t>(rng.uniform_int(n)),
                     rng.uniform(0.0, 3.0), rng.uniform(0.0, 3.0),
                     rng.uniform(0.0, 3.0));
}

TEST(KernelFuzz, BlockedFusedAndThreadedMatchReference) {
  ConfigGuard guard;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(1234 + seed);
    const unsigned n = 1 + static_cast<unsigned>(rng.uniform_int(10));
    Circuit c(n);
    const std::size_t len = 3 + rng.uniform_int(35);
    for (std::size_t i = 0; i < len; ++i) {
      c.add(random_gate(rng, n));
    }

    // Ground truth: the dense matrix-product reference simulator.
    const StateVector expected = reference_simulate(c);

    // Blocked serial kernels.
    StateVector serial(n);
    for (const Gate& g : c.gates()) {
      apply_gate(serial, g);
    }
    EXPECT_LT(serial.max_abs_diff(expected), kTol) << "seed " << seed;

    // Fused program (random fusion behavior exercised by the random gate
    // mix; epsilon-equivalent by design).
    StateVector fused(n);
    apply_fused(fused, fuse_gate_sequence(c.gates()));
    EXPECT_LT(fused.max_abs_diff(expected), kTol) << "seed " << seed;

    // Threaded kernels: chunking is bitwise-neutral, so the result must be
    // *identical* to the serial sweep, not merely close.
    KernelConfig config;
    config.num_threads = 3;
    config.parallel_threshold_qubits = 1;
    set_kernel_config(config);
    StateVector threaded(n);
    for (const Gate& g : c.gates()) {
      apply_gate(threaded, g);
    }
    set_kernel_config(KernelConfig{});
    EXPECT_TRUE(threaded.bitwise_equal(serial)) << "seed " << seed;
  }
}

TEST(KernelEngine, ThreadedMat2IsBitwiseEqualOnLargeRegister) {
  ConfigGuard guard;
  Rng rng(9);
  const Mat2 u = random_unitary2(rng);
  StateVector serial(12);
  apply_h(serial, 0);
  for (qubit_t q = 1; q < 12; ++q) {
    apply_cx(serial, q - 1, q);
  }
  StateVector threaded = serial;

  apply_mat2(serial, u, 7);

  KernelConfig config;
  config.num_threads = 4;
  config.parallel_threshold_qubits = 4;
  set_kernel_config(config);
  apply_mat2(threaded, u, 7);

  EXPECT_TRUE(threaded.bitwise_equal(serial));
}

TEST(KernelEngine, ConfigRoundTrips) {
  ConfigGuard guard;
  KernelConfig config;
  config.num_threads = 2;
  config.parallel_threshold_qubits = 5;
  set_kernel_config(config);
  EXPECT_EQ(kernel_config().num_threads, 2u);
  EXPECT_EQ(kernel_config().parallel_threshold_qubits, 5u);
  set_kernel_config(KernelConfig{});
  EXPECT_EQ(kernel_config().num_threads, 1u);
}

}  // namespace
}  // namespace rqsim
