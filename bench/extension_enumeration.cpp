// Extension experiment (beyond the paper): truncated exact enumeration.
// For each Table I benchmark, enumerate all error configurations with at
// most k errors and compute the exact truncated outcome distribution
// through the cached scheduler. Reports the probability mass covered (the
// TVD error bound), the configuration count, and the computation saving of
// prefix sharing over unshared execution of the same configurations.
#include <iostream>

#include "bench_circuits/suite.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "report/table.hpp"
#include "sched/enumerate.hpp"

int main() {
  using namespace rqsim;
  const DeviceModel dev = yorktown_device();

  std::cout << "=== Extension: truncated exact enumeration (k = max errors) ===\n";
  TextTable table({"Benchmark", "k", "configs", "covered mass", "norm. comp", "MSV"});
  for (const BenchmarkEntry& entry : make_table1_suite(dev)) {
    for (std::size_t k : {1u, 2u}) {
      const TruncatedDistribution t =
          truncated_exact_distribution(entry.compiled, dev.noise, k);
      const double normalized = t.baseline_ops == 0
                                    ? 1.0
                                    : static_cast<double>(t.ops) /
                                          static_cast<double>(t.baseline_ops);
      table.add_row({entry.name, std::to_string(k),
                     std::to_string(t.num_configurations),
                     format_double(t.covered_mass, 5), format_double(normalized, 4),
                     std::to_string(t.max_live_states)});
    }
  }
  std::cout << table.render();
  rqsim::bench::maybe_write_csv(table, "extension_enumeration");
  std::cout << "\n(deterministic alternative to Monte Carlo: k=2 already covers >95%\n"
               "of the probability mass on these devices, with bounded TVD error)\n";
  return 0;
}
