// Reproduces paper Fig. 7: normalized computation on large quantum-volume
// circuits (10-40 qubits, depth 5-20) under artificial error models with
// single-qubit rates 1e-3 … 1e-4 (two-qubit and measurement at 10x),
// 10^6 Monte Carlo trials per cell.
//
// The metric is implementation-independent (basic-op accounting), so no
// 2^40 statevector is ever allocated — matching the paper's methodology.
//
// Paper shape to match: ~79% computation saved on average; the worst cell
// (n40,d20 at the highest rate) still saves ~31%; savings rise sharply as
// the error rate drops.
//
// Set RQSIM_TRIALS to override the trial count (default 1000000).
#include <iostream>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "report/table.hpp"

int main() {
  using namespace rqsim;
  using namespace rqsim::bench;
  const std::size_t trials = env_size("RQSIM_TRIALS", 1000000);

  std::cout << "=== Fig. 7: normalized computation, scalability (QV circuits, "
            << trials << " trials) ===\n";
  std::vector<std::string> header = {"Workload"};
  for (double rate : scalability_rates()) {
    header.push_back(rate_label(rate));
  }
  TextTable table(std::move(header));
  double total = 0.0;
  std::size_t cells = 0;
  for (const ScalePoint point : scalability_grid()) {
    const Circuit circuit = scalability_circuit(point);
    // Built with += to dodge GCC 12's -Wrestrict false positive on
    // operator+(const char*, std::string&&).
    std::string label = "n";
    label += std::to_string(point.qubits);
    label += ",d";
    label += std::to_string(point.depth);
    std::vector<std::string> row = {std::move(label)};
    for (double rate : scalability_rates()) {
      const NoisyRunResult result =
          analyze_cell(circuit, rate, trials, ExecutionMode::kCachedReordered);
      row.push_back(format_double(result.normalized_computation, 4));
      total += result.normalized_computation;
      ++cells;
      std::cerr << "done: " << row.front() << " @ " << rate_label(rate) << "\n";
    }
    table.add_row(std::move(row));
  }
  std::cout << table.render();
  rqsim::bench::maybe_write_csv(table, "fig7_scalability_computation");
  std::cout << "\naverage normalized computation: "
            << format_double(total / static_cast<double>(cells), 4)
            << "  (paper: ~0.21 average; worst cell ~0.69)\n";
  return 0;
}
