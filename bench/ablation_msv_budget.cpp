// Ablation: computation vs memory budget. Sweeps the MSV cap from 2 up to
// the natural (unlimited) requirement and reports the normalized
// computation at each budget — quantifying how gracefully the optimization
// degrades when checkpoint memory is scarce (the constraint that motivates
// the paper's drop-ASAP policy in the first place).
#include <iostream>

#include "bench_circuits/suite.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "report/table.hpp"

int main() {
  using namespace rqsim;
  const DeviceModel dev = yorktown_device();
  const std::size_t trials = rqsim::bench::env_size("RQSIM_TRIALS", 4096);
  const std::size_t caps[] = {2, 3, 4, 6, 0};  // 0 = unlimited

  std::cout << "=== Ablation: normalized computation vs MSV budget (" << trials
            << " trials) ===\n";
  TextTable table({"Benchmark", "cap=2", "cap=3", "cap=4", "cap=6", "unlimited",
                   "natural MSV"});
  for (const BenchmarkEntry& entry : make_table1_suite(dev)) {
    std::vector<std::string> row = {entry.name};
    std::size_t natural_msv = 0;
    for (std::size_t cap : caps) {
      NoisyRunConfig config;
      config.num_trials = trials;
      config.seed = 42;
      config.mode = ExecutionMode::kCachedReordered;
      config.max_states = cap;
      const NoisyRunResult result = analyze_noisy(entry.compiled, dev.noise, config);
      row.push_back(format_double(result.normalized_computation, 4));
      if (cap == 0) {
        natural_msv = result.max_live_states;
      }
    }
    row.push_back(std::to_string(natural_msv));
    table.add_row(std::move(row));
  }
  std::cout << table.render();
  rqsim::bench::maybe_write_csv(table, "ablation_msv_budget");
  std::cout << "\n(cap=2 keeps only the shared error-free prefix; most of the win "
               "survives small budgets)\n";
  return 0;
}
