// Reproduces paper Table I (benchmark characteristics) and echoes the
// Fig. 4 device calibration used by the realistic experiments.
//
// Gate counts differ from the paper's because the paper compiled with
// Enfield while we use our own decompose+route transpiler; both columns are
// printed side by side.
//
// `--json <path>` additionally writes the same data machine-readable (one
// object with "table1" and "device" sections) for driver scripts.
#include <fstream>
#include <iostream>
#include <string>

#include "bench_circuits/suite.hpp"
#include "common/strings.hpp"
#include "noise/devices.hpp"
#include "report/table.hpp"
#include "service/json.hpp"

namespace {

rqsim::Json suite_to_json(const std::vector<rqsim::BenchmarkEntry>& suite,
                          const rqsim::DeviceModel& dev) {
  using rqsim::Json;
  Json root = Json::object();

  Json table = Json::array();
  for (const rqsim::BenchmarkEntry& entry : suite) {
    Json row = Json::object();
    row.set("name", Json(entry.name));
    row.set("qubits", Json(static_cast<std::uint64_t>(entry.paper_qubits)));
    row.set("single",
            Json(static_cast<std::uint64_t>(entry.compiled.count_single_qubit_gates())));
    row.set("cnot",
            Json(static_cast<std::uint64_t>(entry.compiled.count_kind(rqsim::GateKind::CX))));
    row.set("measure", Json(static_cast<std::uint64_t>(entry.compiled.num_measured())));
    row.set("paper_single", Json(static_cast<std::uint64_t>(entry.paper_single)));
    row.set("paper_cnot", Json(static_cast<std::uint64_t>(entry.paper_cnot)));
    table.push_back(std::move(row));
  }
  root.set("table1", std::move(table));

  Json device = Json::object();
  device.set("name", Json(dev.name));
  Json qubits = Json::array();
  for (rqsim::qubit_t q = 0; q < 5; ++q) {
    Json row = Json::object();
    row.set("qubit", Json(static_cast<std::uint64_t>(q)));
    row.set("single_error", Json(dev.noise.single_qubit_rate(q)));
    row.set("measure_error", Json(dev.noise.measurement_flip_rate(q)));
    qubits.push_back(std::move(row));
  }
  device.set("qubits", std::move(qubits));
  Json edges = Json::array();
  for (const auto& [a, b] : dev.coupling.edges()) {
    Json row = Json::object();
    row.set("a", Json(static_cast<std::uint64_t>(a)));
    row.set("b", Json(static_cast<std::uint64_t>(b)));
    row.set("two_qubit_error", Json(dev.noise.two_qubit_rate(a, b)));
    edges.push_back(std::move(row));
  }
  device.set("edges", std::move(edges));
  root.set("device", std::move(device));
  return root;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rqsim;

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::cerr << "usage: table1_benchmarks [--json <path>]\n";
      return 1;
    }
  }

  const DeviceModel dev = yorktown_device();
  const auto suite = make_table1_suite(dev);

  std::cout << "=== Table I: benchmark characteristics (ours vs paper) ===\n";
  TextTable table({"Name", "Qubit#", "Single#", "CNOT#", "Measure#",
                   "paper:Single#", "paper:CNOT#"});
  for (const BenchmarkEntry& entry : suite) {
    table.add_row({entry.name, std::to_string(entry.paper_qubits),
                   std::to_string(entry.compiled.count_single_qubit_gates()),
                   std::to_string(entry.compiled.count_kind(GateKind::CX)),
                   std::to_string(entry.compiled.num_measured()),
                   std::to_string(entry.paper_single), std::to_string(entry.paper_cnot)});
  }
  std::cout << table.render() << "\n";

  std::cout << "=== Fig. 4: error rates on the IBM Yorktown model ===\n";
  TextTable rates({"Qubit", "1q gate error", "Measurement error"});
  for (qubit_t q = 0; q < 5; ++q) {
    rates.add_row({"Q" + std::to_string(q),
                   format_double(dev.noise.single_qubit_rate(q), 6),
                   format_double(dev.noise.measurement_flip_rate(q), 4)});
  }
  std::cout << rates.render() << "\n";
  TextTable edges({"Edge", "2q gate error"});
  for (const auto& [a, b] : dev.coupling.edges()) {
    edges.add_row({"Q" + std::to_string(a) + "-Q" + std::to_string(b),
                   format_double(dev.noise.two_qubit_rate(a, b), 4)});
  }
  std::cout << edges.render();

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot open '" << json_path << "' for writing\n";
      return 1;
    }
    out << suite_to_json(suite, dev).dump() << "\n";
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
