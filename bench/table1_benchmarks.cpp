// Reproduces paper Table I (benchmark characteristics) and echoes the
// Fig. 4 device calibration used by the realistic experiments.
//
// Gate counts differ from the paper's because the paper compiled with
// Enfield while we use our own decompose+route transpiler; both columns are
// printed side by side.
#include <iostream>

#include "bench_circuits/suite.hpp"
#include "common/strings.hpp"
#include "noise/devices.hpp"
#include "report/table.hpp"

int main() {
  using namespace rqsim;
  const DeviceModel dev = yorktown_device();

  std::cout << "=== Table I: benchmark characteristics (ours vs paper) ===\n";
  TextTable table({"Name", "Qubit#", "Single#", "CNOT#", "Measure#",
                   "paper:Single#", "paper:CNOT#"});
  for (const BenchmarkEntry& entry : make_table1_suite(dev)) {
    table.add_row({entry.name, std::to_string(entry.paper_qubits),
                   std::to_string(entry.compiled.count_single_qubit_gates()),
                   std::to_string(entry.compiled.count_kind(GateKind::CX)),
                   std::to_string(entry.compiled.num_measured()),
                   std::to_string(entry.paper_single), std::to_string(entry.paper_cnot)});
  }
  std::cout << table.render() << "\n";

  std::cout << "=== Fig. 4: error rates on the IBM Yorktown model ===\n";
  TextTable rates({"Qubit", "1q gate error", "Measurement error"});
  for (qubit_t q = 0; q < 5; ++q) {
    rates.add_row({"Q" + std::to_string(q),
                   format_double(dev.noise.single_qubit_rate(q), 6),
                   format_double(dev.noise.measurement_flip_rate(q), 4)});
  }
  std::cout << rates.render() << "\n";
  TextTable edges({"Edge", "2q gate error"});
  for (const auto& [a, b] : dev.coupling.edges()) {
    edges.add_row({"Q" + std::to_string(a) + "-Q" + std::to_string(b),
                   format_double(dev.noise.two_qubit_rate(a, b), 4)});
  }
  std::cout << edges.render();
  return 0;
}
