// Reproduces paper Fig. 5: normalized computation of the optimized noisy
// simulation on the 12 Table I benchmarks under the Yorktown error model,
// for 1024 / 2048 / 4096 / 8192 Monte Carlo trials (lower = more saved).
//
// Paper shape to match: ~0.15-0.25 on average, decreasing as the trial
// count grows; worst case (qv_n5d5) still below ~0.43 at 8192 trials.
#include <iostream>

#include "bench_circuits/suite.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "report/table.hpp"

int main() {
  using namespace rqsim;
  const DeviceModel dev = yorktown_device();
  const std::size_t trial_counts[] = {1024, 2048, 4096, 8192};

  std::cout << "=== Fig. 5: normalized computation, realistic (Yorktown) error model ===\n";
  TextTable table({"Benchmark", "1024 trials", "2048 trials", "4096 trials",
                   "8192 trials"});
  std::vector<double> averages(4, 0.0);
  const auto suite = make_table1_suite(dev);
  for (const BenchmarkEntry& entry : suite) {
    std::vector<std::string> row = {entry.name};
    int column = 0;
    for (std::size_t trials : trial_counts) {
      NoisyRunConfig config;
      config.num_trials = trials;
      config.seed = 42;
      config.mode = ExecutionMode::kCachedReordered;
      const NoisyRunResult result = analyze_noisy(entry.compiled, dev.noise, config);
      row.push_back(format_double(result.normalized_computation, 4));
      averages[column++] += result.normalized_computation;
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> avg_row = {"average"};
  for (double total : averages) {
    avg_row.push_back(format_double(total / static_cast<double>(suite.size()), 4));
  }
  table.add_row(std::move(avg_row));
  std::cout << table.render();
  rqsim::bench::maybe_write_csv(table, "fig5_realistic_computation");
  std::cout << "\n(paper: ~75-85% computation saved on average, saving grows with trials)\n";
  return 0;
}
