// Fleet routing benchmark: spin up 1/2/4 in-process SimServer backends
// behind a FleetRouter and drive them with several tenants submitting
// batch-compatible workloads. Reports, per fleet size, the headline metric
// of the router subsystem — the cross-tenant batch-merge hit rate — plus
// per-backend routing counts, the queue depth right after the submit burst,
// and end-to-end (submit -> terminal wait) p50/p99 job latency.
//
//   fleet_bench                      # table to stdout
//   fleet_bench --fleet-json out.json  # plus machine-readable sweep results
//
// Knobs: RQSIM_FLEET_JOBS (jobs per tenant, default 6),
//        RQSIM_FLEET_TRIALS (trials per job, default 200).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "router/router.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "telemetry/clock.hpp"

namespace rqsim::bench {
namespace {

struct JobTicket {
  std::uint64_t job = 0;
  telemetry::TimePoint submitted;
  double latency_ms = 0.0;
};

struct BackendRow {
  std::string endpoint;
  std::uint64_t jobs_routed = 0;
  std::uint64_t completed = 0;
  std::uint64_t queued_after_submit = 0;
};

struct SweepRow {
  std::size_t backends = 0;
  std::size_t tenants = 0;
  std::size_t jobs = 0;
  std::size_t trials = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double cross_tenant_merge_hit_rate = 0.0;
  std::uint64_t merged_cross_tenant_jobs = 0;
  std::uint64_t resubmits = 0;
  std::vector<BackendRow> per_backend;
};

Json submit_request(const std::string& circuit, std::uint64_t seed,
                    const std::string& tenant, std::size_t trials) {
  WorkloadSpec workload;
  workload.circuit_spec = circuit;
  workload.device = "yorktown";
  SubmitParams params;
  params.trials = trials;
  params.seed = seed;
  params.tenant = tenant;
  return make_submit_request(workload, params);
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

SweepRow run_fleet(std::size_t num_backends, std::size_t jobs_per_tenant,
                   std::size_t trials) {
  const std::vector<std::string> tenants = {"alice", "bob", "carol"};
  // Two batch-compatible workload classes: every tenant submits both, so
  // each class converges (via affinity) on one backend and the per-backend
  // batch planner sees trial-compatible jobs from distinct tenants.
  const std::vector<std::string> circuits = {"qft:5", "ghz:5"};

  std::vector<std::unique_ptr<SimServer>> backends;
  std::vector<std::thread> backend_threads;
  std::vector<std::string> endpoints;
  for (std::size_t i = 0; i < num_backends; ++i) {
    ServerConfig config;
    config.tcp_port = 0;
    config.service.num_workers = 1;
    config.service.queue_capacity = 256;
    config.service.max_batch_jobs = 8;
    backends.push_back(std::make_unique<SimServer>(std::move(config)));
    backend_threads.emplace_back([srv = backends.back().get()] { srv->run(); });
    endpoints.push_back("127.0.0.1:" + std::to_string(backends.back()->tcp_port()));
  }

  RouterConfig config;
  config.tcp_port = 0;
  config.backends = endpoints;
  config.health.interval_ms = 200;
  FleetRouter router(std::move(config));
  std::thread router_thread([&router] { router.run(); });
  ServiceClient client = ServiceClient::connect_tcp("127.0.0.1", router.tcp_port());

  // Burst-submit everything, then snapshot queue depth while workers drain.
  std::vector<JobTicket> tickets;
  std::uint64_t seed = 1;
  for (std::size_t j = 0; j < jobs_per_tenant; ++j) {
    for (const std::string& tenant : tenants) {
      for (const std::string& circuit : circuits) {
        JobTicket ticket;
        ticket.submitted = telemetry::clock_now();
        const Json accepted =
            client.request(submit_request(circuit, seed++, tenant, trials));
        RQSIM_CHECK(accepted.get_bool("ok", false),
                    "fleet_bench: submit rejected: " + accepted.dump());
        ticket.job = accepted.at("job").as_u64();
        tickets.push_back(ticket);
      }
    }
  }

  const Json mid_stats = client.request(Json::parse("{\"op\":\"stats\"}"));
  std::map<std::string, std::uint64_t> queued_after_submit;
  for (const Json& backend : mid_stats.at("fleet").at("backends").as_array()) {
    queued_after_submit[backend.get_string("endpoint", "")] =
        backend.get_u64("queued_now", 0);
  }

  for (JobTicket& ticket : tickets) {
    Json wait_request = Json::object();
    wait_request.set("op", Json(std::string("wait")));
    wait_request.set("job", Json(ticket.job));
    const Json finished = client.request(wait_request);
    RQSIM_CHECK(finished.get_string("state", "") == "done",
                "fleet_bench: job did not finish: " + finished.dump());
    ticket.latency_ms =
        telemetry::ms_between(ticket.submitted, telemetry::clock_now());
  }

  const Json stats = client.request(Json::parse("{\"op\":\"stats\"}"));
  const Json& fleet = stats.at("fleet");

  SweepRow row;
  row.backends = num_backends;
  row.tenants = tenants.size();
  row.jobs = tickets.size();
  row.trials = trials;
  row.cross_tenant_merge_hit_rate =
      fleet.get_number("cross_tenant_merge_hit_rate", 0.0);
  row.merged_cross_tenant_jobs =
      stats.at("stats").get_u64("merged_cross_tenant_jobs", 0);
  row.resubmits = fleet.at("router").get_u64("resubmits", 0);
  for (const Json& backend : fleet.at("backends").as_array()) {
    BackendRow b;
    b.endpoint = backend.get_string("endpoint", "");
    b.jobs_routed = backend.get_u64("jobs_routed", 0);
    b.completed = backend.get_u64("completed", 0);
    b.queued_after_submit = queued_after_submit[b.endpoint];
    row.per_backend.push_back(b);
  }

  std::vector<double> latencies;
  for (const JobTicket& ticket : tickets) {
    latencies.push_back(ticket.latency_ms);
  }
  std::sort(latencies.begin(), latencies.end());
  row.p50_ms = percentile(latencies, 0.50);
  row.p99_ms = percentile(latencies, 0.99);

  client.request(Json::parse("{\"op\":\"shutdown\"}"));
  router_thread.join();
  for (std::size_t i = 0; i < backends.size(); ++i) {
    backends[i]->stop();
    backend_threads[i].join();
  }
  return row;
}

Json to_json(const SweepRow& row) {
  Json out = Json::object();
  out.set("backends", Json(static_cast<std::uint64_t>(row.backends)));
  out.set("tenants", Json(static_cast<std::uint64_t>(row.tenants)));
  out.set("jobs", Json(static_cast<std::uint64_t>(row.jobs)));
  out.set("trials", Json(static_cast<std::uint64_t>(row.trials)));
  out.set("p50_ms", Json(row.p50_ms));
  out.set("p99_ms", Json(row.p99_ms));
  out.set("cross_tenant_merge_hit_rate", Json(row.cross_tenant_merge_hit_rate));
  out.set("merged_cross_tenant_jobs", Json(row.merged_cross_tenant_jobs));
  out.set("resubmits", Json(row.resubmits));
  Json per_backend = Json::array();
  for (const BackendRow& b : row.per_backend) {
    Json backend = Json::object();
    backend.set("endpoint", Json(b.endpoint));
    backend.set("jobs_routed", Json(b.jobs_routed));
    backend.set("completed", Json(b.completed));
    backend.set("queued_after_submit", Json(b.queued_after_submit));
    per_backend.push_back(std::move(backend));
  }
  out.set("per_backend", std::move(per_backend));
  return out;
}

int run(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fleet-json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: fleet_bench [--fleet-json <path>]\n");
      return 2;
    }
  }

  const std::size_t jobs_per_tenant = env_size("RQSIM_FLEET_JOBS", 6);
  const std::size_t trials = env_size("RQSIM_FLEET_TRIALS", 200);

  std::printf("fleet_bench: 3 tenants x 2 workload classes x %zu jobs, %zu trials each\n",
              jobs_per_tenant, trials);
  std::printf("%8s %8s %10s %10s %22s %10s\n", "backends", "jobs", "p50_ms",
              "p99_ms", "xtenant_merge_rate", "resubmits");

  std::vector<SweepRow> rows;
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const SweepRow row = run_fleet(n, jobs_per_tenant, trials);
    std::printf("%8zu %8zu %10.2f %10.2f %22.3f %10llu\n", row.backends,
                row.jobs, row.p50_ms, row.p99_ms,
                row.cross_tenant_merge_hit_rate,
                static_cast<unsigned long long>(row.resubmits));
    for (const BackendRow& b : row.per_backend) {
      std::printf("         backend %-21s routed=%-4llu completed=%-4llu queued_after_submit=%llu\n",
                  b.endpoint.c_str(),
                  static_cast<unsigned long long>(b.jobs_routed),
                  static_cast<unsigned long long>(b.completed),
                  static_cast<unsigned long long>(b.queued_after_submit));
    }
    rows.push_back(row);
  }

  if (!json_path.empty()) {
    Json doc = Json::object();
    doc.set("benchmark", Json(std::string("fleet_router")));
    doc.set("tenants", Json(std::uint64_t{3}));
    doc.set("workload_classes", Json(std::uint64_t{2}));
    doc.set("jobs_per_tenant", Json(static_cast<std::uint64_t>(jobs_per_tenant)));
    doc.set("trials", Json(static_cast<std::uint64_t>(trials)));
    Json results = Json::array();
    for (const SweepRow& row : rows) {
      results.push_back(to_json(row));
    }
    doc.set("results", std::move(results));
    std::ofstream out(json_path);
    RQSIM_CHECK(out.good(), "fleet_bench: cannot open " + json_path);
    out << doc.dump() << "\n";
    std::fprintf(stderr, "fleet json written: %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace rqsim::bench

int main(int argc, char** argv) {
  try {
    return rqsim::bench::run(argc, argv);
  } catch (const rqsim::Error& e) {
    std::fprintf(stderr, "fleet_bench: %s\n", e.what());
    return 1;
  }
}
