// Shared helpers for the figure/table reproduction binaries.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_circuits/qv.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "circuit/circuit.hpp"
#include "noise/devices.hpp"
#include "sched/runner.hpp"
#include "transpile/decompose.hpp"

namespace rqsim::bench {

/// Read a positive integer from an environment variable, with default.
inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// The scalability workload grid of Section V.B (Figs. 7 and 8).
struct ScalePoint {
  unsigned qubits;
  unsigned depth;
};

inline std::vector<ScalePoint> scalability_grid() {
  return {{10, 5}, {10, 10}, {10, 15}, {10, 20}, {20, 20}, {30, 20}, {40, 20}};
}

/// The four error-rate settings of Figs. 7/8: single-qubit rate; two-qubit
/// and measurement rates are 10x (artificial_device()).
inline std::vector<double> scalability_rates() {
  return {1e-3, 5e-4, 2e-4, 1e-4};
}

inline std::string rate_label(double single_rate) {
  return std::to_string(single_rate) + "/" + std::to_string(10 * single_rate);
}

/// Build the decomposed QV circuit for a scalability grid point
/// (deterministic seed derived from the grid coordinates).
inline Circuit scalability_circuit(ScalePoint point) {
  return decompose_to_cx_basis(
      make_qv(point.qubits, point.depth,
              /*seed=*/1000 + point.qubits * 100 + point.depth));
}

/// Run the accounting-only analysis for one scalability cell.
inline NoisyRunResult analyze_cell(const Circuit& circuit, double single_rate,
                                   std::size_t trials, ExecutionMode mode) {
  const DeviceModel dev = artificial_device(circuit.num_qubits(), single_rate);
  NoisyRunConfig config;
  config.num_trials = trials;
  config.seed = 20200704;
  config.mode = mode;
  return analyze_noisy(circuit, dev.noise, config);
}

/// If RQSIM_CSV_DIR is set, also write the table as <dir>/<name>.csv.
inline void maybe_write_csv(const TextTable& table, const std::string& name) {
  const char* dir = std::getenv("RQSIM_CSV_DIR");
  if (dir == nullptr || *dir == '\0') {
    return;
  }
  const std::string path = std::string(dir) + "/" + name + ".csv";
  write_csv_file(path, table.header(), table.rows());
  std::cerr << "csv written: " << path << "\n";
}

}  // namespace rqsim::bench
