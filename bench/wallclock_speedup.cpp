// Wall-clock validation (beyond the paper's op-count metric): baseline vs
// reordered+cached statevector execution of the same noisy workloads. The
// measured speedup should track 1 / normalized-computation to within the
// overhead of state copies.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_circuits/suite.hpp"
#include "noise/devices.hpp"
#include "sched/parallel.hpp"
#include "sched/runner.hpp"

namespace {

using namespace rqsim;

const BenchmarkEntry& suite_entry(std::size_t index) {
  static const auto suite = make_table1_suite(yorktown_device());
  return suite[index];
}

void run_mode(benchmark::State& state, ExecutionMode mode, bool fuse_gates = false) {
  const auto& entry = suite_entry(static_cast<std::size_t>(state.range(0)));
  const DeviceModel dev = yorktown_device();
  NoisyRunConfig config;
  config.num_trials = 512;
  config.seed = 7;
  config.mode = mode;
  config.fuse_gates = fuse_gates;
  opcount_t ops = 0;
  for (auto _ : state) {
    const NoisyRunResult result = run_noisy(entry.compiled, dev.noise, config);
    ops = result.ops;
    benchmark::DoNotOptimize(result.histogram);
  }
  state.SetLabel(entry.name);
  state.counters["matvec_ops"] = static_cast<double>(ops);
}

void BM_Baseline(benchmark::State& state) {
  run_mode(state, ExecutionMode::kBaseline);
}

void BM_CachedReordered(benchmark::State& state) {
  run_mode(state, ExecutionMode::kCachedReordered);
}

// Same schedule with the gate-fusion pass on: checkpoint advances apply
// fused segments (epsilon-equivalent to the unfused kernels).
void BM_CachedReorderedFused(benchmark::State& state) {
  run_mode(state, ExecutionMode::kCachedReordered, /*fuse_gates=*/true);
}

void BM_CachedParallel(benchmark::State& state) {
  const auto& entry = suite_entry(static_cast<std::size_t>(state.range(0)));
  const DeviceModel dev = yorktown_device();
  ParallelRunConfig config;
  config.num_trials = 512;
  config.seed = 7;
  config.num_threads = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    const NoisyRunResult result = run_noisy_parallel(entry.compiled, dev.noise, config);
    benchmark::DoNotOptimize(result.histogram);
  }
  state.SetLabel(entry.name);
}

// Index into the Table I suite: 1=grover, 7=qft5, 11=qv_n5d5.
BENCHMARK(BM_Baseline)->Arg(1)->Arg(7)->Arg(11)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CachedReordered)->Arg(1)->Arg(7)->Arg(11)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CachedReorderedFused)->Arg(1)->Arg(7)->Arg(11)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CachedParallel)->Args({11, 2})->Args({11, 4})->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main so `--json <path>` (or `--json=<path>`) writes the machine-
// readable run next to the console report — shorthand for google benchmark's
// --benchmark_out=<path> --benchmark_out_format=json pair, kept stable here
// so driver scripts don't depend on gbench flag spellings.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string path;
    if (arg == "--json" && i + 1 < argc) {
      path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else {
      args.push_back(arg);
      continue;
    }
    if (path.empty()) {
      std::fprintf(stderr, "--json requires a file path\n");
      return 1;
    }
    args.push_back("--benchmark_out=" + path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& arg : args) {
    argv2.push_back(arg.data());
  }
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
