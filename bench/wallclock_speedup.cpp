// Wall-clock validation (beyond the paper's op-count metric): baseline vs
// reordered+cached statevector execution of the same noisy workloads. The
// measured speedup should track 1 / normalized-computation to within the
// overhead of state copies.
//
// The parallel benchmarks compare the two multi-thread strategies
// (sched/parallel.hpp): the work-stealing prefix-tree executor (zero
// redundant prefix ops at any thread count) against legacy chunked
// parallelism (shared prefixes recomputed per chunk). Beyond the gbench
// registrations, two driver flags make this file the parallel perf gate:
//
//   --parallel-json <path>   sweep tree / chunked / frames (Pauli-frame
//                            collapse) modes over thread counts on three
//                            Table I circuits plus 20–24 qubit bv / ghz /
//                            grover instances — ghz additionally at a
//                            tight MSV budget to record uncompute routing
//                            — and write the machine-readable comparison
//                            (ops, fork copies, CoW materializations,
//                            redundant prefix ops, frame_collapsed_trials,
//                            frame_ops, uncomputations, wall ms,
//                            speedup_vs_1t), then exit — this produces
//                            BENCH_parallel.json.
//   --parallel-check         fast assertion mode for ctest (perf_smoke):
//                            exits nonzero unless tree-mode op counts are
//                            strictly below chunked at >= 2 threads,
//                            bitwise-match the sequential scheduler, the
//                            whole Table I suite materializes strictly
//                            fewer CoW copies than it forks, frame-mode
//                            matvec_ops never exceed tree-mode's (>= 25%
//                            below on ghz / bv / rb), and a budgeted ghz
//                            run routes every refused fork through
//                            uncomputation with zero inline fallbacks.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_circuits/bv.hpp"
#include "bench_circuits/ghz.hpp"
#include "bench_circuits/grover.hpp"
#include "bench_circuits/suite.hpp"
#include "noise/devices.hpp"
#include "sched/parallel.hpp"
#include "sched/runner.hpp"
#include "telemetry/clock.hpp"
#include "transpile/decompose.hpp"

namespace {

using namespace rqsim;

const std::vector<BenchmarkEntry>& table1_suite() {
  static const auto suite = make_table1_suite(yorktown_device());
  return suite;
}

const BenchmarkEntry& suite_entry(std::size_t index) {
  return table1_suite()[index];
}

void run_mode(benchmark::State& state, ExecutionMode mode, bool fuse_gates = false) {
  const auto& entry = suite_entry(static_cast<std::size_t>(state.range(0)));
  const DeviceModel dev = yorktown_device();
  NoisyRunConfig config;
  config.num_trials = 512;
  config.seed = 7;
  config.mode = mode;
  config.fuse_gates = fuse_gates;
  opcount_t ops = 0;
  for (auto _ : state) {
    const NoisyRunResult result = run_noisy(entry.compiled, dev.noise, config);
    ops = result.ops;
    benchmark::DoNotOptimize(result.histogram);
  }
  state.SetLabel(entry.name);
  state.counters["matvec_ops"] = static_cast<double>(ops);
}

void BM_Baseline(benchmark::State& state) {
  run_mode(state, ExecutionMode::kBaseline);
}

void BM_CachedReordered(benchmark::State& state) {
  run_mode(state, ExecutionMode::kCachedReordered);
}

// Same schedule with the gate-fusion pass on: checkpoint advances apply
// fused segments (epsilon-equivalent to the unfused kernels).
void BM_CachedReorderedFused(benchmark::State& state) {
  run_mode(state, ExecutionMode::kCachedReordered, /*fuse_gates=*/true);
}

// range(0) = suite index, range(1) = threads, range(2) = 0 tree / 1 chunked.
void BM_CachedParallel(benchmark::State& state) {
  const auto& entry = suite_entry(static_cast<std::size_t>(state.range(0)));
  const DeviceModel dev = yorktown_device();
  ParallelRunConfig config;
  config.num_trials = 512;
  config.seed = 7;
  config.num_threads = static_cast<std::size_t>(state.range(1));
  config.parallel_mode =
      state.range(2) == 0 ? ParallelMode::kTree : ParallelMode::kChunked;
  NoisyRunResult result;
  for (auto _ : state) {
    result = run_noisy_parallel(entry.compiled, dev.noise, config);
    benchmark::DoNotOptimize(result.histogram);
  }
  state.SetLabel(entry.name +
                 (state.range(2) == 0 ? std::string("/tree") : std::string("/chunked")));
  state.counters["matvec_ops"] = static_cast<double>(result.ops);
  state.counters["fork_copies"] = static_cast<double>(result.fork_copies);
  state.counters["redundant_prefix_ops"] =
      static_cast<double>(result.redundant_prefix_ops);
}

// Index into the Table I suite: 1=grover, 7=qft5, 11=qv_n5d5.
BENCHMARK(BM_Baseline)->Arg(1)->Arg(7)->Arg(11)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CachedReordered)->Arg(1)->Arg(7)->Arg(11)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CachedReorderedFused)->Arg(1)->Arg(7)->Arg(11)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CachedParallel)
    ->Args({11, 2, 0})
    ->Args({11, 4, 0})
    ->Args({11, 2, 1})
    ->Args({11, 4, 1})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Parallel-mode sweep / check drivers (no gbench involvement).

struct SweepPoint {
  std::string circuit;
  std::string mode;
  unsigned qubits = 0;
  std::size_t trials = 0;
  std::size_t threads = 0;
  opcount_t ops = 0;
  std::uint64_t fork_copies = 0;
  std::uint64_t cow_materializations = 0;
  opcount_t redundant_prefix_ops = 0;
  double wall_ms = 0.0;
  /// wall_ms of the same circuit+mode at 1 thread divided by this point's
  /// wall_ms — derived after the sweep; 1.0 for the 1-thread rows.
  double speedup_vs_1t = 1.0;
  // Scheduling/occupancy telemetry (NoisyRunResult::telemetry).
  std::uint64_t steals = 0;
  std::uint64_t inline_fallbacks = 0;
  std::uint64_t pool_reuses = 0;
  std::uint64_t pool_allocs = 0;
  std::uint64_t pool_prewarmed = 0;
  std::size_t peak_live_states = 0;
  // Pauli-frame collapse + uncompute routing (frames / budget rows).
  std::uint64_t frame_collapsed_trials = 0;
  std::uint64_t frame_ops = 0;
  std::uint64_t uncomputations = 0;
};

/// One circuit of the parallel sweep. The Table I entries run the paper's
/// 512-trial configuration; the 20–24 qubit entries scale trials and
/// repetitions down with the amplitude-vector size (one gate op sweeps 2^n
/// amplitudes) so the sweep stays inside a CI budget.
struct SweepCase {
  std::string name;
  unsigned qubits = 0;
  Circuit compiled;
  NoiseModel noise;
  std::size_t trials = 512;
  int reps = 3;
  std::vector<std::size_t> threads;
};

std::vector<SweepCase> make_sweep_cases() {
  std::vector<SweepCase> cases;
  const DeviceModel dev = yorktown_device();
  for (const std::size_t index : {std::size_t{1}, std::size_t{7}, std::size_t{11}}) {
    const BenchmarkEntry& entry = suite_entry(index);
    cases.push_back({entry.name, entry.compiled.num_qubits(), entry.compiled,
                     dev.noise, 512, 3, {1, 2, 4, 8}});
  }
  // 20–24 qubit scale: uniform noise with per-circuit rates tuned so a
  // trial carries ~1 injected error on average (deeper circuits get lower
  // rates), which keeps the prefix trees realistically branchy without
  // degenerating into per-trial replays.
  const auto big = [&cases](std::string name, Circuit logical, double rate,
                            std::size_t trials, int reps,
                            std::vector<std::size_t> threads) {
    Circuit compiled = decompose_to_cx_basis(logical);
    const unsigned n = compiled.num_qubits();
    cases.push_back({std::move(name), n, std::move(compiled),
                     NoiseModel::uniform(n, rate, 4 * rate, 0.02), trials, reps,
                     std::move(threads)});
  };
  big("bv20", make_bv(19, 0x5A5A5u), 0.01, 24, 2, {1, 2, 4});
  big("ghz20", make_ghz(20), 0.02, 24, 2, {1, 2, 4});
  big("grover20", make_grover(20, 0x2B5u), 0.001, 24, 2, {1, 2, 4});
  big("bv24", make_bv(23, 0x35A5A5u), 0.008, 8, 1, {1, 4});
  big("ghz24", make_ghz(24), 0.02, 8, 1, {1, 4});
  big("grover24", make_grover(24, 0xAB5u), 0.001, 8, 1, {1, 4});
  return cases;
}

NoisyRunResult timed_parallel(const Circuit& circuit, const NoiseModel& noise,
                              ParallelMode mode, std::size_t threads,
                              double& best_ms, std::size_t trials = 512,
                              int reps = 3, bool frames = false,
                              std::size_t max_states = 0) {
  ParallelRunConfig config;
  config.num_trials = trials;
  config.seed = 7;
  config.num_threads = threads;
  config.parallel_mode = mode;
  config.frame_collapse = frames;
  config.max_states = max_states;
  NoisyRunResult result;
  best_ms = 0.0;
  // Best of `reps` damps scheduler noise (the sweep runs on shared CI
  // machines; op counts are deterministic, only the clock needs repeats).
  // Timing comes from the telemetry clock (telemetry/clock.hpp), the
  // project's single source of monotonic time (source rule 4).
  for (int rep = 0; rep < reps; ++rep) {
    const telemetry::Stopwatch stopwatch;
    result = run_noisy_parallel(circuit, noise, config);
    const double ms = stopwatch.elapsed_ms();
    if (rep == 0 || ms < best_ms) {
      best_ms = ms;
    }
  }
  return result;
}

struct SweepMode {
  const char* name;
  ParallelMode mode;
  bool frames;
  std::size_t max_states;  // 0 = unlimited
};

SweepPoint run_sweep_point(const SweepCase& c, const SweepMode& m,
                           std::size_t threads) {
  SweepPoint point;
  point.circuit = c.name;
  point.mode = m.name;
  point.qubits = c.qubits;
  point.trials = c.trials;
  point.threads = threads;
  const NoisyRunResult result =
      timed_parallel(c.compiled, c.noise, m.mode, threads, point.wall_ms,
                     c.trials, c.reps, m.frames, m.max_states);
  point.ops = result.ops;
  point.fork_copies = result.fork_copies;
  point.cow_materializations = result.telemetry.cow_materializations;
  point.redundant_prefix_ops = result.redundant_prefix_ops;
  point.steals = result.telemetry.steals;
  point.inline_fallbacks = result.telemetry.inline_fallbacks;
  point.pool_reuses = result.telemetry.pool_reuses;
  point.pool_allocs = result.telemetry.pool_allocs;
  point.pool_prewarmed = result.telemetry.pool_prewarmed;
  point.peak_live_states = result.telemetry.peak_live_states;
  point.frame_collapsed_trials = result.telemetry.frame_collapsed_trials;
  point.frame_ops = result.telemetry.frame_ops;
  point.uncomputations = result.telemetry.uncomputations;
  std::printf("%-10s %2uq %-12s %zu threads: %llu ops, %llu forks, "
              "%llu cow copies, %llu redundant, %llu fallbacks, %llu framed, "
              "%llu uncomputed, %.2f ms\n",
              point.circuit.c_str(), point.qubits, point.mode.c_str(), threads,
              static_cast<unsigned long long>(point.ops),
              static_cast<unsigned long long>(point.fork_copies),
              static_cast<unsigned long long>(point.cow_materializations),
              static_cast<unsigned long long>(point.redundant_prefix_ops),
              static_cast<unsigned long long>(point.inline_fallbacks),
              static_cast<unsigned long long>(point.frame_collapsed_trials),
              static_cast<unsigned long long>(point.uncomputations),
              point.wall_ms);
  return point;
}

int run_parallel_sweep(const std::string& path) {
  const SweepMode modes[] = {
      {"tree", ParallelMode::kTree, /*frames=*/false, 0},
      {"chunked", ParallelMode::kChunked, /*frames=*/false, 0},
      {"frames", ParallelMode::kTree, /*frames=*/true, 0},
  };
  // Budget rows: a tight MSV budget on the Clifford-only ghz instances,
  // where every refused fork must route through uncomputation instead of
  // an inline fallback (the uncomputations column records the routing).
  const SweepMode budget_mode = {"tree_budget2", ParallelMode::kTree,
                                 /*frames=*/false, 2};
  std::vector<SweepPoint> points;
  for (const SweepCase& c : make_sweep_cases()) {
    for (const SweepMode& m : modes) {
      for (const std::size_t threads : c.threads) {
        points.push_back(run_sweep_point(c, m, threads));
      }
    }
    if (c.name.rfind("ghz", 0) == 0) {
      for (const std::size_t threads : c.threads) {
        points.push_back(run_sweep_point(c, budget_mode, threads));
      }
    }
  }
  // Derive speedup_vs_1t against the same circuit+mode single-thread row.
  for (SweepPoint& p : points) {
    for (const SweepPoint& base : points) {
      if (base.circuit == p.circuit && base.mode == p.mode &&
          base.threads == 1 && p.wall_ms > 0.0) {
        p.speedup_vs_1t = base.wall_ms / p.wall_ms;
        break;
      }
    }
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << "{\n  \"benchmark\": \"parallel_modes\",\n"
      << "  \"seed\": 7,\n  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    out << "    {\"circuit\": \"" << p.circuit << "\", \"qubits\": " << p.qubits
        << ", \"mode\": \"" << p.mode
        << "\", \"trials\": " << p.trials
        << ", \"threads\": " << p.threads << ", \"matvec_ops\": " << p.ops
        << ", \"fork_copies\": " << p.fork_copies
        << ", \"cow_materializations\": " << p.cow_materializations
        << ", \"redundant_prefix_ops\": " << p.redundant_prefix_ops
        << ", \"steals\": " << p.steals
        << ", \"inline_fallbacks\": " << p.inline_fallbacks
        << ", \"pool_reuses\": " << p.pool_reuses
        << ", \"pool_allocs\": " << p.pool_allocs
        << ", \"pool_prewarmed\": " << p.pool_prewarmed
        << ", \"peak_live_states\": " << p.peak_live_states
        << ", \"frame_collapsed_trials\": " << p.frame_collapsed_trials
        << ", \"frame_ops\": " << p.frame_ops
        << ", \"uncomputations\": " << p.uncomputations
        << ", \"wall_ms\": " << p.wall_ms
        << ", \"speedup_vs_1t\": " << p.speedup_vs_1t << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("parallel sweep written to %s\n", path.c_str());
  return 0;
}

int run_parallel_check() {
  const DeviceModel dev = yorktown_device();
  const BenchmarkEntry& entry = suite_entry(11);  // qv_n5d5
  NoisyRunConfig serial_config;
  serial_config.num_trials = 512;
  serial_config.seed = 7;
  const NoisyRunResult serial = run_noisy(entry.compiled, dev.noise, serial_config);
  int failures = 0;
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    double ms = 0.0;
    const NoisyRunResult tree =
        timed_parallel(entry.compiled, dev.noise, ParallelMode::kTree, threads, ms);
    const NoisyRunResult chunked = timed_parallel(entry.compiled, dev.noise,
                                                  ParallelMode::kChunked, threads, ms);
    if (tree.ops != serial.ops) {
      std::fprintf(stderr, "FAIL: tree ops %llu != sequential ops %llu at %zu threads\n",
                   static_cast<unsigned long long>(tree.ops),
                   static_cast<unsigned long long>(serial.ops), threads);
      ++failures;
    }
    if (tree.histogram != serial.histogram) {
      std::fprintf(stderr, "FAIL: tree histogram diverges from sequential at %zu threads\n",
                   threads);
      ++failures;
    }
    if (tree.ops >= chunked.ops) {
      std::fprintf(stderr,
                   "FAIL: tree ops %llu not below chunked ops %llu at %zu threads\n",
                   static_cast<unsigned long long>(tree.ops),
                   static_cast<unsigned long long>(chunked.ops), threads);
      ++failures;
    }
    if (chunked.redundant_prefix_ops != chunked.ops - serial.ops) {
      std::fprintf(stderr, "FAIL: chunked redundant_prefix_ops misattributed\n");
      ++failures;
    }
    std::printf("%zu threads: tree %llu ops (0 redundant) vs chunked %llu ops "
                "(%llu redundant)\n",
                threads, static_cast<unsigned long long>(tree.ops),
                static_cast<unsigned long long>(chunked.ops),
                static_cast<unsigned long long>(chunked.redundant_prefix_ops));
  }
  // Suite-wide CoW effectiveness gate: across all 12 Table I circuits, the
  // tree executor must materialize strictly fewer checkpoint copies than
  // the schedule forks — i.e. at least one fork was served by a refcount
  // bump whose buffer never got copied. If the copy-on-write path silently
  // regressed to copy-per-fork, the two totals would be equal.
  std::uint64_t suite_forks = 0;
  std::uint64_t suite_materializations = 0;
  for (const BenchmarkEntry& e : table1_suite()) {
    ParallelRunConfig config;
    config.num_trials = 512;
    config.seed = 7;
    config.num_threads = 4;
    config.parallel_mode = ParallelMode::kTree;
    const NoisyRunResult r = run_noisy_parallel(e.compiled, dev.noise, config);
    suite_forks += r.fork_copies;
    suite_materializations += r.telemetry.cow_materializations;

    // Pauli-frame gate, per Table I entry: frame mode never does more
    // matvec work than the tree executor, stays bitwise, and cuts >= 25%
    // on the Clifford-dominated entries (rb, bv4, bv5).
    ParallelRunConfig framed_config = config;
    framed_config.frame_collapse = true;
    const NoisyRunResult framed =
        run_noisy_parallel(e.compiled, dev.noise, framed_config);
    if (framed.ops > r.ops) {
      std::fprintf(stderr, "FAIL: %s frame ops %llu above tree ops %llu\n",
                   e.name.c_str(), static_cast<unsigned long long>(framed.ops),
                   static_cast<unsigned long long>(r.ops));
      ++failures;
    }
    if (framed.histogram != r.histogram) {
      std::fprintf(stderr, "FAIL: %s frame histogram diverges from tree mode\n",
                   e.name.c_str());
      ++failures;
    }
    const bool clifford_dominated =
        e.name == "rb" || e.name == "bv4" || e.name == "bv5";
    if (clifford_dominated && framed.ops * 4 > r.ops * 3) {
      std::fprintf(stderr,
                   "FAIL: %s frame ops %llu not >=25%% below tree ops %llu\n",
                   e.name.c_str(), static_cast<unsigned long long>(framed.ops),
                   static_cast<unsigned long long>(r.ops));
      ++failures;
    }
  }
  if (suite_materializations >= suite_forks) {
    std::fprintf(stderr,
                 "FAIL: Table I suite materialized %llu CoW copies for %llu "
                 "forks (copy-on-write is not eliding any copies)\n",
                 static_cast<unsigned long long>(suite_materializations),
                 static_cast<unsigned long long>(suite_forks));
    ++failures;
  } else {
    std::printf("Table I suite: %llu forks, %llu materialized copies\n",
                static_cast<unsigned long long>(suite_forks),
                static_cast<unsigned long long>(suite_materializations));
  }
  // GHZ gate (Clifford-only downstream paths): frame mode must cut >= 25%
  // of the tree executor's matvec ops bitwise-identically, and under a
  // tight MSV budget every refused fork must route through uncomputation —
  // inline_fallbacks stays 0.
  {
    const Circuit ghz = decompose_to_cx_basis(make_ghz(10));
    const NoiseModel ghz_noise = NoiseModel::uniform(10, 0.02, 0.08, 0.02);
    ParallelRunConfig config;
    config.num_trials = 512;
    config.seed = 7;
    config.num_threads = 4;
    const NoisyRunResult tree = run_noisy_parallel(ghz, ghz_noise, config);
    ParallelRunConfig framed_config = config;
    framed_config.frame_collapse = true;
    const NoisyRunResult framed = run_noisy_parallel(ghz, ghz_noise, framed_config);
    if (framed.histogram != tree.histogram || framed.ops * 4 > tree.ops * 3) {
      std::fprintf(stderr,
                   "FAIL: ghz frame mode not bitwise or not >=25%% below tree "
                   "(%llu vs %llu ops)\n",
                   static_cast<unsigned long long>(framed.ops),
                   static_cast<unsigned long long>(tree.ops));
      ++failures;
    }
    ParallelRunConfig budget_config = config;
    budget_config.max_states = 2;
    const NoisyRunResult budget = run_noisy_parallel(ghz, ghz_noise, budget_config);
    if (budget.histogram != tree.histogram ||
        budget.telemetry.uncomputations == 0 ||
        budget.telemetry.inline_fallbacks != 0) {
      std::fprintf(stderr,
                   "FAIL: ghz budget run not routed through uncomputation "
                   "(%llu uncomputations, %llu inline fallbacks)\n",
                   static_cast<unsigned long long>(budget.telemetry.uncomputations),
                   static_cast<unsigned long long>(budget.telemetry.inline_fallbacks));
      ++failures;
    } else {
      std::printf("ghz: frame ops %llu vs tree %llu; budget run uncomputed %llu "
                  "refusals, 0 inline fallbacks\n",
                  static_cast<unsigned long long>(framed.ops),
                  static_cast<unsigned long long>(tree.ops),
                  static_cast<unsigned long long>(budget.telemetry.uncomputations));
    }
  }
  if (failures == 0) {
    std::printf("parallel check: OK\n");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

// Custom main so `--json <path>` (or `--json=<path>`) writes the machine-
// readable run next to the console report — shorthand for google benchmark's
// --benchmark_out=<path> --benchmark_out_format=json pair, kept stable here
// so driver scripts don't depend on gbench flag spellings. `--parallel-json`
// and `--parallel-check` run the parallel-mode drivers instead of gbench.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string path;
    if (arg == "--parallel-check") {
      return run_parallel_check();
    }
    if (arg == "--parallel-json" && i + 1 < argc) {
      return run_parallel_sweep(argv[i + 1]);
    }
    if (arg.rfind("--parallel-json=", 0) == 0) {
      return run_parallel_sweep(arg.substr(16));
    }
    if (arg == "--json" && i + 1 < argc) {
      path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else {
      args.push_back(arg);
      continue;
    }
    if (path.empty()) {
      std::fprintf(stderr, "--json requires a file path\n");
      return 1;
    }
    args.push_back("--benchmark_out=" + path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& arg : args) {
    argv2.push_back(arg.data());
  }
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
