// Wall-clock validation (beyond the paper's op-count metric): baseline vs
// reordered+cached statevector execution of the same noisy workloads. The
// measured speedup should track 1 / normalized-computation to within the
// overhead of state copies.
//
// The parallel benchmarks compare the two multi-thread strategies
// (sched/parallel.hpp): the work-stealing prefix-tree executor (zero
// redundant prefix ops at any thread count) against legacy chunked
// parallelism (shared prefixes recomputed per chunk). Beyond the gbench
// registrations, two driver flags make this file the parallel perf gate:
//
//   --parallel-json <path>   sweep both modes over thread counts 1/2/4/8
//                            on three Table I circuits and write the
//                            machine-readable comparison (ops, fork
//                            copies, redundant prefix ops, wall ms), then
//                            exit — this produces BENCH_parallel.json.
//   --parallel-check         fast assertion mode for ctest (perf_smoke):
//                            exits nonzero unless tree-mode op counts are
//                            strictly below chunked at >= 2 threads and
//                            bitwise-match the sequential scheduler.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_circuits/suite.hpp"
#include "noise/devices.hpp"
#include "sched/parallel.hpp"
#include "sched/runner.hpp"
#include "telemetry/clock.hpp"

namespace {

using namespace rqsim;

const BenchmarkEntry& suite_entry(std::size_t index) {
  static const auto suite = make_table1_suite(yorktown_device());
  return suite[index];
}

void run_mode(benchmark::State& state, ExecutionMode mode, bool fuse_gates = false) {
  const auto& entry = suite_entry(static_cast<std::size_t>(state.range(0)));
  const DeviceModel dev = yorktown_device();
  NoisyRunConfig config;
  config.num_trials = 512;
  config.seed = 7;
  config.mode = mode;
  config.fuse_gates = fuse_gates;
  opcount_t ops = 0;
  for (auto _ : state) {
    const NoisyRunResult result = run_noisy(entry.compiled, dev.noise, config);
    ops = result.ops;
    benchmark::DoNotOptimize(result.histogram);
  }
  state.SetLabel(entry.name);
  state.counters["matvec_ops"] = static_cast<double>(ops);
}

void BM_Baseline(benchmark::State& state) {
  run_mode(state, ExecutionMode::kBaseline);
}

void BM_CachedReordered(benchmark::State& state) {
  run_mode(state, ExecutionMode::kCachedReordered);
}

// Same schedule with the gate-fusion pass on: checkpoint advances apply
// fused segments (epsilon-equivalent to the unfused kernels).
void BM_CachedReorderedFused(benchmark::State& state) {
  run_mode(state, ExecutionMode::kCachedReordered, /*fuse_gates=*/true);
}

// range(0) = suite index, range(1) = threads, range(2) = 0 tree / 1 chunked.
void BM_CachedParallel(benchmark::State& state) {
  const auto& entry = suite_entry(static_cast<std::size_t>(state.range(0)));
  const DeviceModel dev = yorktown_device();
  ParallelRunConfig config;
  config.num_trials = 512;
  config.seed = 7;
  config.num_threads = static_cast<std::size_t>(state.range(1));
  config.parallel_mode =
      state.range(2) == 0 ? ParallelMode::kTree : ParallelMode::kChunked;
  NoisyRunResult result;
  for (auto _ : state) {
    result = run_noisy_parallel(entry.compiled, dev.noise, config);
    benchmark::DoNotOptimize(result.histogram);
  }
  state.SetLabel(entry.name +
                 (state.range(2) == 0 ? std::string("/tree") : std::string("/chunked")));
  state.counters["matvec_ops"] = static_cast<double>(result.ops);
  state.counters["fork_copies"] = static_cast<double>(result.fork_copies);
  state.counters["redundant_prefix_ops"] =
      static_cast<double>(result.redundant_prefix_ops);
}

// Index into the Table I suite: 1=grover, 7=qft5, 11=qv_n5d5.
BENCHMARK(BM_Baseline)->Arg(1)->Arg(7)->Arg(11)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CachedReordered)->Arg(1)->Arg(7)->Arg(11)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CachedReorderedFused)->Arg(1)->Arg(7)->Arg(11)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CachedParallel)
    ->Args({11, 2, 0})
    ->Args({11, 4, 0})
    ->Args({11, 2, 1})
    ->Args({11, 4, 1})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Parallel-mode sweep / check drivers (no gbench involvement).

struct SweepPoint {
  std::string circuit;
  std::string mode;
  std::size_t threads = 0;
  opcount_t ops = 0;
  std::uint64_t fork_copies = 0;
  opcount_t redundant_prefix_ops = 0;
  double wall_ms = 0.0;
  // Scheduling/occupancy telemetry (NoisyRunResult::telemetry).
  std::uint64_t steals = 0;
  std::uint64_t inline_fallbacks = 0;
  std::uint64_t pool_reuses = 0;
  std::uint64_t pool_allocs = 0;
  std::size_t peak_live_states = 0;
};

NoisyRunResult timed_parallel(const Circuit& circuit, const NoiseModel& noise,
                              ParallelMode mode, std::size_t threads,
                              double& best_ms) {
  ParallelRunConfig config;
  config.num_trials = 512;
  config.seed = 7;
  config.num_threads = threads;
  config.parallel_mode = mode;
  NoisyRunResult result;
  best_ms = 0.0;
  // Best of three damps scheduler noise (the sweep runs on shared CI
  // machines; op counts are deterministic, only the clock needs repeats).
  // Timing comes from the telemetry clock (telemetry/clock.hpp), the
  // project's single source of monotonic time (source rule 4).
  for (int rep = 0; rep < 3; ++rep) {
    const telemetry::Stopwatch stopwatch;
    result = run_noisy_parallel(circuit, noise, config);
    const double ms = stopwatch.elapsed_ms();
    if (rep == 0 || ms < best_ms) {
      best_ms = ms;
    }
  }
  return result;
}

int run_parallel_sweep(const std::string& path) {
  const DeviceModel dev = yorktown_device();
  const std::size_t entries[] = {1, 7, 11};
  const std::size_t thread_counts[] = {1, 2, 4, 8};
  std::vector<SweepPoint> points;
  for (const std::size_t index : entries) {
    const BenchmarkEntry& entry = suite_entry(index);
    for (const ParallelMode mode : {ParallelMode::kTree, ParallelMode::kChunked}) {
      for (const std::size_t threads : thread_counts) {
        SweepPoint point;
        point.circuit = entry.name;
        point.mode = mode == ParallelMode::kTree ? "tree" : "chunked";
        point.threads = threads;
        const NoisyRunResult result =
            timed_parallel(entry.compiled, dev.noise, mode, threads, point.wall_ms);
        point.ops = result.ops;
        point.fork_copies = result.fork_copies;
        point.redundant_prefix_ops = result.redundant_prefix_ops;
        point.steals = result.telemetry.steals;
        point.inline_fallbacks = result.telemetry.inline_fallbacks;
        point.pool_reuses = result.telemetry.pool_reuses;
        point.pool_allocs = result.telemetry.pool_allocs;
        point.peak_live_states = result.telemetry.peak_live_states;
        points.push_back(point);
        std::printf("%-10s %-8s %zu threads: %llu ops, %llu fork copies, "
                    "%llu redundant, %llu steals, %llu fallbacks, %.2f ms\n",
                    point.circuit.c_str(), point.mode.c_str(), threads,
                    static_cast<unsigned long long>(point.ops),
                    static_cast<unsigned long long>(point.fork_copies),
                    static_cast<unsigned long long>(point.redundant_prefix_ops),
                    static_cast<unsigned long long>(point.steals),
                    static_cast<unsigned long long>(point.inline_fallbacks),
                    point.wall_ms);
      }
    }
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << "{\n  \"benchmark\": \"parallel_modes\",\n  \"trials\": 512,\n"
      << "  \"seed\": 7,\n  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    out << "    {\"circuit\": \"" << p.circuit << "\", \"mode\": \"" << p.mode
        << "\", \"threads\": " << p.threads << ", \"matvec_ops\": " << p.ops
        << ", \"fork_copies\": " << p.fork_copies
        << ", \"redundant_prefix_ops\": " << p.redundant_prefix_ops
        << ", \"steals\": " << p.steals
        << ", \"inline_fallbacks\": " << p.inline_fallbacks
        << ", \"pool_reuses\": " << p.pool_reuses
        << ", \"pool_allocs\": " << p.pool_allocs
        << ", \"peak_live_states\": " << p.peak_live_states
        << ", \"wall_ms\": " << p.wall_ms << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("parallel sweep written to %s\n", path.c_str());
  return 0;
}

int run_parallel_check() {
  const DeviceModel dev = yorktown_device();
  const BenchmarkEntry& entry = suite_entry(11);  // qv_n5d5
  NoisyRunConfig serial_config;
  serial_config.num_trials = 512;
  serial_config.seed = 7;
  const NoisyRunResult serial = run_noisy(entry.compiled, dev.noise, serial_config);
  int failures = 0;
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    double ms = 0.0;
    const NoisyRunResult tree =
        timed_parallel(entry.compiled, dev.noise, ParallelMode::kTree, threads, ms);
    const NoisyRunResult chunked = timed_parallel(entry.compiled, dev.noise,
                                                  ParallelMode::kChunked, threads, ms);
    if (tree.ops != serial.ops) {
      std::fprintf(stderr, "FAIL: tree ops %llu != sequential ops %llu at %zu threads\n",
                   static_cast<unsigned long long>(tree.ops),
                   static_cast<unsigned long long>(serial.ops), threads);
      ++failures;
    }
    if (tree.histogram != serial.histogram) {
      std::fprintf(stderr, "FAIL: tree histogram diverges from sequential at %zu threads\n",
                   threads);
      ++failures;
    }
    if (tree.ops >= chunked.ops) {
      std::fprintf(stderr,
                   "FAIL: tree ops %llu not below chunked ops %llu at %zu threads\n",
                   static_cast<unsigned long long>(tree.ops),
                   static_cast<unsigned long long>(chunked.ops), threads);
      ++failures;
    }
    if (chunked.redundant_prefix_ops != chunked.ops - serial.ops) {
      std::fprintf(stderr, "FAIL: chunked redundant_prefix_ops misattributed\n");
      ++failures;
    }
    std::printf("%zu threads: tree %llu ops (0 redundant) vs chunked %llu ops "
                "(%llu redundant)\n",
                threads, static_cast<unsigned long long>(tree.ops),
                static_cast<unsigned long long>(chunked.ops),
                static_cast<unsigned long long>(chunked.redundant_prefix_ops));
  }
  if (failures == 0) {
    std::printf("parallel check: OK\n");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

// Custom main so `--json <path>` (or `--json=<path>`) writes the machine-
// readable run next to the console report — shorthand for google benchmark's
// --benchmark_out=<path> --benchmark_out_format=json pair, kept stable here
// so driver scripts don't depend on gbench flag spellings. `--parallel-json`
// and `--parallel-check` run the parallel-mode drivers instead of gbench.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string path;
    if (arg == "--parallel-check") {
      return run_parallel_check();
    }
    if (arg == "--parallel-json" && i + 1 < argc) {
      return run_parallel_sweep(argv[i + 1]);
    }
    if (arg.rfind("--parallel-json=", 0) == 0) {
      return run_parallel_sweep(arg.substr(16));
    }
    if (arg == "--json" && i + 1 < argc) {
      path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else {
      args.push_back(arg);
      continue;
    }
    if (path.empty()) {
      std::fprintf(stderr, "--json requires a file path\n");
      return 1;
    }
    args.push_back("--benchmark_out=" + path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& arg : args) {
    argv2.push_back(arg.data());
  }
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
