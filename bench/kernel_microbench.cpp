// Gate-kernel microbenchmarks: throughput of the statevector update
// primitives that dominate simulation time, across register sizes and
// target-qubit positions (low qubits are cache-friendly, high qubits
// stride across the vector).
#include <benchmark/benchmark.h>

#include "circuit/fusion.hpp"
#include "common/rng.hpp"
#include "sim/kernel_engine.hpp"
#include "sim/kernels.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace rqsim;

StateVector random_state(unsigned n, std::uint64_t seed) {
  Rng rng(seed);
  StateVector s(n);
  for (std::size_t i = 0; i < s.dim(); ++i) {
    s[i] = cplx(rng.normal(), rng.normal());
  }
  return s;
}

void BM_ApplyH(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const auto target = static_cast<qubit_t>(state.range(1));
  StateVector s = random_state(n, 1);
  for (auto _ : state) {
    apply_h(s, target);
    benchmark::DoNotOptimize(s.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.dim()));
}

void BM_ApplyMat2(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const auto target = static_cast<qubit_t>(state.range(1));
  Rng rng(2);
  const Mat2 u = random_unitary2(rng);
  StateVector s = random_state(n, 3);
  for (auto _ : state) {
    apply_mat2(s, u, target);
    benchmark::DoNotOptimize(s.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.dim()));
}

void BM_ApplyCX(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  StateVector s = random_state(n, 4);
  for (auto _ : state) {
    apply_cx(s, 0, n - 1);
    benchmark::DoNotOptimize(s.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.dim()));
}

void BM_ApplyMat4(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  Rng rng(5);
  const Mat4 u = random_unitary4(rng);
  StateVector s = random_state(n, 6);
  for (auto _ : state) {
    apply_mat4(s, u, 0, n - 1);
    benchmark::DoNotOptimize(s.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.dim()));
}

// A dense random sequence: one random U3 per qubit followed by a CX, per
// layer of depth. Exercises the fusion pass's single-qubit runs and
// two-qubit absorption.
std::vector<Gate> random_sequence(unsigned n, unsigned depth, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Gate> gates;
  for (unsigned d = 0; d < depth; ++d) {
    for (qubit_t q = 0; q < n; ++q) {
      gates.push_back(Gate::make1(GateKind::U3, q, rng.uniform() * 3.0,
                                  rng.uniform() * 3.0, rng.uniform() * 3.0));
    }
    const auto a = static_cast<qubit_t>(rng.uniform_int(n));
    auto b = static_cast<qubit_t>(rng.uniform_int(n - 1));
    if (b >= a) ++b;
    gates.push_back(Gate::make2(GateKind::CX, a, b));
  }
  return gates;
}

void BM_ApplyGateSequence(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const std::vector<Gate> gates = random_sequence(n, 8, 7);
  StateVector s = random_state(n, 8);
  for (auto _ : state) {
    for (const Gate& g : gates) {
      apply_gate(s, g);
    }
    benchmark::DoNotOptimize(s.amplitudes().data());
  }
  state.counters["ops"] = static_cast<double>(gates.size());
}

void BM_ApplyFusedSequence(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const std::vector<Gate> gates = random_sequence(n, 8, 7);
  const FusedProgram program = fuse_gate_sequence(gates);
  StateVector s = random_state(n, 8);
  for (auto _ : state) {
    apply_fused(s, program);
    benchmark::DoNotOptimize(s.amplitudes().data());
  }
  state.counters["ops"] = static_cast<double>(program.ops.size());
  state.counters["source_gates"] = static_cast<double>(program.source_gate_count);
}

// Intra-statevector threading: the same mat2 sweep split across the worker
// pool. Only pays off with real cores and registers past the threshold.
void BM_ApplyMat2Threaded(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  KernelConfig config;
  config.num_threads = threads;
  config.parallel_threshold_qubits = 18;
  set_kernel_config(config);
  Rng rng(2);
  const Mat2 u = random_unitary2(rng);
  StateVector s = random_state(n, 3);
  for (auto _ : state) {
    apply_mat2(s, u, static_cast<qubit_t>(n - 1));
    benchmark::DoNotOptimize(s.amplitudes().data());
  }
  set_kernel_config(KernelConfig{});
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.dim()));
}

BENCHMARK(BM_ApplyH)
    ->Args({16, 0})->Args({16, 15})
    ->Args({20, 0})->Args({20, 19})
    ->Args({22, 0})->Args({22, 21});
BENCHMARK(BM_ApplyMat2)
    ->Args({16, 0})->Args({16, 15})
    ->Args({20, 0})->Args({20, 19})
    ->Args({22, 0})->Args({22, 21});
BENCHMARK(BM_ApplyCX)->Arg(16)->Arg(20)->Arg(22);
BENCHMARK(BM_ApplyMat4)->Arg(16)->Arg(20)->Arg(22);
BENCHMARK(BM_ApplyGateSequence)->Arg(16)->Arg(20);
BENCHMARK(BM_ApplyFusedSequence)->Arg(16)->Arg(20);
BENCHMARK(BM_ApplyMat2Threaded)->Args({20, 1})->Args({20, 2})->Args({22, 2});

}  // namespace
