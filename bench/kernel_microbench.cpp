// Gate-kernel microbenchmarks: throughput of the statevector update
// primitives that dominate simulation time, across register sizes and
// target-qubit positions (low qubits are cache-friendly, high qubits
// stride across the vector).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "sim/kernels.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace rqsim;

StateVector random_state(unsigned n, std::uint64_t seed) {
  Rng rng(seed);
  StateVector s(n);
  for (std::size_t i = 0; i < s.dim(); ++i) {
    s[i] = cplx(rng.normal(), rng.normal());
  }
  return s;
}

void BM_ApplyH(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const auto target = static_cast<qubit_t>(state.range(1));
  StateVector s = random_state(n, 1);
  for (auto _ : state) {
    apply_h(s, target);
    benchmark::DoNotOptimize(s.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.dim()));
}

void BM_ApplyMat2(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const auto target = static_cast<qubit_t>(state.range(1));
  Rng rng(2);
  const Mat2 u = random_unitary2(rng);
  StateVector s = random_state(n, 3);
  for (auto _ : state) {
    apply_mat2(s, u, target);
    benchmark::DoNotOptimize(s.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.dim()));
}

void BM_ApplyCX(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  StateVector s = random_state(n, 4);
  for (auto _ : state) {
    apply_cx(s, 0, n - 1);
    benchmark::DoNotOptimize(s.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.dim()));
}

void BM_ApplyMat4(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  Rng rng(5);
  const Mat4 u = random_unitary4(rng);
  StateVector s = random_state(n, 6);
  for (auto _ : state) {
    apply_mat4(s, u, 0, n - 1);
    benchmark::DoNotOptimize(s.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.dim()));
}

BENCHMARK(BM_ApplyH)->Args({16, 0})->Args({16, 15})->Args({20, 0})->Args({20, 19});
BENCHMARK(BM_ApplyMat2)->Args({16, 0})->Args({16, 15})->Args({20, 0})->Args({20, 19});
BENCHMARK(BM_ApplyCX)->Arg(16)->Arg(20);
BENCHMARK(BM_ApplyMat4)->Arg(16)->Arg(20);

}  // namespace
