// Reproduces paper Fig. 8: memory consumption (Maintained State Vectors)
// over the same scalability grid as Fig. 7.
//
// Paper shape to match: ~6 MSVs on average, growing slowly with circuit
// depth and *decreasing* as the qubit count grows (more error positions
// make shared injected errors rarer).
//
// Set RQSIM_TRIALS to override the trial count (default 1000000).
#include <iostream>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "report/table.hpp"

int main() {
  using namespace rqsim;
  using namespace rqsim::bench;
  const std::size_t trials = env_size("RQSIM_TRIALS", 1000000);

  std::cout << "=== Fig. 8: memory consumption (MSVs), scalability (" << trials
            << " trials) ===\n";
  std::vector<std::string> header = {"Workload"};
  for (double rate : scalability_rates()) {
    header.push_back(rate_label(rate));
  }
  TextTable table(std::move(header));
  for (const ScalePoint point : scalability_grid()) {
    const Circuit circuit = scalability_circuit(point);
    // Built with += to dodge GCC 12's -Wrestrict false positive on
    // operator+(const char*, std::string&&).
    std::string label = "n";
    label += std::to_string(point.qubits);
    label += ",d";
    label += std::to_string(point.depth);
    std::vector<std::string> row = {std::move(label)};
    for (double rate : scalability_rates()) {
      const NoisyRunResult result =
          analyze_cell(circuit, rate, trials, ExecutionMode::kCachedReordered);
      row.push_back(std::to_string(result.max_live_states));
      std::cerr << "done: " << row.front() << " @ " << rate_label(rate) << "\n";
    }
    table.add_row(std::move(row));
  }
  std::cout << table.render();
  rqsim::bench::maybe_write_csv(table, "fig8_scalability_msv");
  std::cout << "\n(paper: ~6 MSVs average; grows slowly with depth, shrinks with qubits)\n";
  return 0;
}
