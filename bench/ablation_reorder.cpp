// Ablation: how much of the win comes from the *reorder* versus plain
// consecutive-prefix caching? For each Table I benchmark, compare
//   baseline            — no caching at all
//   cached, unordered   — prefix sharing between adjacent generated trials
//   cached, reordered   — the paper's full scheme
// on both metrics (normalized computation and MSV).
#include <iostream>

#include "bench_circuits/suite.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "report/table.hpp"

int main() {
  using namespace rqsim;
  const DeviceModel dev = yorktown_device();
  const std::size_t trials = rqsim::bench::env_size("RQSIM_TRIALS", 4096);

  std::cout << "=== Ablation: reorder vs unordered caching (" << trials
            << " trials) ===\n";
  TextTable table({"Benchmark", "unordered norm.comp", "reordered norm.comp",
                   "unordered MSV", "reordered MSV"});
  for (const BenchmarkEntry& entry : make_table1_suite(dev)) {
    NoisyRunConfig config;
    config.num_trials = trials;
    config.seed = 42;

    config.mode = ExecutionMode::kCachedUnordered;
    const NoisyRunResult unordered = analyze_noisy(entry.compiled, dev.noise, config);
    config.mode = ExecutionMode::kCachedReordered;
    const NoisyRunResult reordered = analyze_noisy(entry.compiled, dev.noise, config);

    table.add_row({entry.name, format_double(unordered.normalized_computation, 4),
                   format_double(reordered.normalized_computation, 4),
                   std::to_string(unordered.max_live_states),
                   std::to_string(reordered.max_live_states)});
  }
  std::cout << table.render();
  rqsim::bench::maybe_write_csv(table, "ablation_reorder");
  std::cout << "\n(reordering should both cut computation drastically and keep MSV small)\n";
  return 0;
}
