// Reproduces paper Fig. 6: memory consumption (Maintained State Vectors)
// of the optimized simulation on the Table I benchmarks, 1024 trials. The
// paper notes the MSV count barely changes from 1024 to 8192 trials; the
// 8192-trial column is printed to show the same stability.
//
// Paper shape to match: 3 MSVs on the smallest benchmark (rb), up to ~6 on
// the largest (qft5, qv_n5d5).
#include <iostream>

#include "bench_circuits/suite.hpp"
#include "bench_util.hpp"
#include "report/table.hpp"

int main() {
  using namespace rqsim;
  const DeviceModel dev = yorktown_device();

  std::cout << "=== Fig. 6: memory consumption (MSVs), realistic error model ===\n";
  TextTable table({"Benchmark", "MSV @1024", "MSV @8192"});
  for (const BenchmarkEntry& entry : make_table1_suite(dev)) {
    std::vector<std::string> row = {entry.name};
    for (std::size_t trials : {std::size_t{1024}, std::size_t{8192}}) {
      NoisyRunConfig config;
      config.num_trials = trials;
      config.seed = 42;
      config.mode = ExecutionMode::kCachedReordered;
      const NoisyRunResult result = analyze_noisy(entry.compiled, dev.noise, config);
      row.push_back(std::to_string(result.max_live_states));
    }
    table.add_row(std::move(row));
  }
  std::cout << table.render();
  rqsim::bench::maybe_write_csv(table, "fig6_realistic_msv");
  std::cout << "\n(paper: 3 MSVs for 'rb', 6 for 'qft5'/'qv_n5d5'; stable in trial count)\n";
  return 0;
}
