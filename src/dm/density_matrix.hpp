// Density-matrix simulator.
//
// The paper's Related Work (Section II) contrasts Monte Carlo statevector
// simulation with density-matrix simulation: the density matrix evolves
// the *exact* mixed state through noise channels in a single pass, at the
// cost of 2^(2N) storage. This module provides that substrate for two
// purposes:
//   1. Ground truth — the Monte Carlo pipeline's averaged outcome
//      distribution must converge to the density-matrix distribution
//      (tested in tests/dm_test.cpp), which validates error injection,
//      reordering and caching end to end.
//   2. The memory comparison the paper argues from: one density matrix of
//      N qubits costs as much as 2^N maintained state vectors.
//
// Representation: ρ is stored as a statevector of 2N qubits (row index in
// the low N qubits, column index in the high N qubits). A unitary U on
// qubit q then acts as U on qubit q and conj(U) on qubit q+N, which lets
// this module reuse the fast statevector kernels unchanged.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/layering.hpp"
#include "common/types.hpp"
#include "linalg/matrix.hpp"
#include "noise/noise_model.hpp"
#include "obs/pauli_string.hpp"
#include "sim/statevector.hpp"

namespace rqsim {

class DensityMatrix {
 public:
  /// ρ = |0…0⟩⟨0…0| on `num_qubits` qubits (limited to 12 qubits: the
  /// internal statevector has 2N qubits).
  explicit DensityMatrix(unsigned num_qubits);

  unsigned num_qubits() const { return num_qubits_; }
  std::size_t dim() const { return std::size_t{1} << num_qubits_; }

  /// Element ρ(row, col).
  cplx at(std::uint64_t row, std::uint64_t col) const;

  /// tr(ρ) — 1.0 for a valid state.
  double trace() const;

  /// tr(ρ²) — 1.0 iff pure.
  double purity() const;

  /// Apply a unitary gate: ρ -> U ρ U†.
  void apply_gate(const Gate& gate);

  /// Apply a general single-qubit unitary.
  void apply_unitary(const Mat2& u, qubit_t target);

  /// Symmetric depolarizing channel on one qubit:
  /// ρ -> (1-p)ρ + (p/3)(XρX + YρY + ZρZ).
  void apply_depolarizing1(qubit_t target, double p);

  /// General biased Pauli channel:
  /// ρ -> (1-px-py-pz)ρ + px·XρX + py·YρY + pz·ZρZ.
  void apply_pauli_channel1(qubit_t target, double px, double py, double pz);

  /// Symmetric two-qubit depolarizing channel:
  /// ρ -> (1-p)ρ + (p/15) Σ_{P≠I⊗I} PρP.
  void apply_depolarizing2(qubit_t a, qubit_t b, double p);

  /// Diagonal of ρ marginalized onto `measured_qubits` (bit k of the
  /// result index = measured_qubits[k]) — the exact outcome distribution.
  std::vector<double> measurement_probabilities(
      const std::vector<qubit_t>& measured_qubits) const;

 private:
  unsigned num_qubits_ = 0;
  StateVector vec_;  // 2N-qubit vectorized ρ
};

/// Exact noisy outcome distribution of a circuit under the same error
/// model the Monte Carlo pipeline samples from: a depolarizing channel
/// after every gate plus classical measurement bit flips. The circuit must
/// be decomposed to 1-/2-qubit gates and have terminal measurements.
std::vector<double> exact_noisy_distribution(const Circuit& circuit,
                                             const NoiseModel& noise);

/// tr(ρP) — the exact mixed-state expectation of a Pauli string.
double expectation(const DensityMatrix& rho, const PauliString& pauli);

/// Apply per-bit classical flip channels to an outcome distribution:
/// flip_rates[k] is the flip probability of classical bit k.
std::vector<double> apply_measurement_flips(std::vector<double> probs,
                                            const std::vector<double>& flip_rates);

}  // namespace rqsim
