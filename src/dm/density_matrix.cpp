#include "dm/density_matrix.hpp"

#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "linalg/pauli.hpp"
#include "sim/kernels.hpp"

namespace rqsim {

namespace {

Mat2 conj2(const Mat2& m) {
  Mat2 out;
  for (std::size_t i = 0; i < 4; ++i) {
    out.m[i] = std::conj(m.m[i]);
  }
  return out;
}

Mat4 conj4(const Mat4& m) {
  Mat4 out;
  for (std::size_t i = 0; i < 16; ++i) {
    out.m[i] = std::conj(m.m[i]);
  }
  return out;
}

}  // namespace

DensityMatrix::DensityMatrix(unsigned num_qubits)
    : num_qubits_(num_qubits), vec_(2 * num_qubits) {
  RQSIM_CHECK(num_qubits >= 1 && num_qubits <= 12,
              "DensityMatrix: num_qubits must be in [1, 12]");
}

cplx DensityMatrix::at(std::uint64_t row, std::uint64_t col) const {
  RQSIM_CHECK(row < dim() && col < dim(), "DensityMatrix::at: index out of range");
  return vec_[(col << num_qubits_) | row];
}

double DensityMatrix::trace() const {
  double acc = 0.0;
  for (std::uint64_t i = 0; i < dim(); ++i) {
    acc += at(i, i).real();
  }
  return acc;
}

double DensityMatrix::purity() const {
  // tr(ρ²) = Σ_{rc} |ρ(r,c)|² for Hermitian ρ.
  double acc = 0.0;
  for (const cplx& x : vec_.amplitudes()) {
    acc += std::norm(x);
  }
  return acc;
}

void DensityMatrix::apply_unitary(const Mat2& u, qubit_t target) {
  RQSIM_CHECK(target < num_qubits_, "DensityMatrix::apply_unitary: bad target");
  apply_mat2(vec_, u, target);
  apply_mat2(vec_, conj2(u), target + num_qubits_);
}

void DensityMatrix::apply_gate(const Gate& gate) {
  const int arity = gate.arity();
  RQSIM_CHECK(arity <= 2, "DensityMatrix::apply_gate: decompose 3-qubit gates first");
  if (arity == 1) {
    const Mat2 u = gate_matrix1(gate);
    apply_mat2(vec_, u, gate.qubits[0]);
    apply_mat2(vec_, conj2(u), gate.qubits[0] + num_qubits_);
  } else {
    const Mat4 u = gate_matrix2(gate);
    apply_mat4(vec_, u, gate.qubits[0], gate.qubits[1]);
    apply_mat4(vec_, conj4(u), gate.qubits[0] + num_qubits_,
               gate.qubits[1] + num_qubits_);
  }
}

void DensityMatrix::apply_depolarizing1(qubit_t target, double p) {
  apply_pauli_channel1(target, p / 3.0, p / 3.0, p / 3.0);
}

void DensityMatrix::apply_pauli_channel1(qubit_t target, double px, double py,
                                         double pz) {
  RQSIM_CHECK(target < num_qubits_, "apply_pauli_channel1: bad target");
  RQSIM_CHECK(px >= 0.0 && py >= 0.0 && pz >= 0.0 && px + py + pz <= 1.0,
              "apply_pauli_channel1: bad probabilities");
  if (px + py + pz == 0.0) {
    return;
  }
  const double weights[3] = {px, py, pz};
  const Pauli paulis[3] = {Pauli::X, Pauli::Y, Pauli::Z};
  std::vector<cplx> acc(vec_.dim(), cplx(0.0));
  for (int k = 0; k < 3; ++k) {
    if (weights[k] == 0.0) {
      continue;
    }
    StateVector scratch = vec_;
    const Mat2 m = pauli_matrix(paulis[k]);
    apply_mat2(scratch, m, target);
    apply_mat2(scratch, conj2(m), target + num_qubits_);
    for (std::size_t i = 0; i < acc.size(); ++i) {
      acc[i] += weights[k] * scratch[i];
    }
  }
  const double keep = 1.0 - px - py - pz;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    vec_[i] = keep * vec_[i] + acc[i];
  }
}

void DensityMatrix::apply_depolarizing2(qubit_t a, qubit_t b, double p) {
  RQSIM_CHECK(a < num_qubits_ && b < num_qubits_ && a != b,
              "apply_depolarizing2: bad operands");
  RQSIM_CHECK(p >= 0.0 && p <= 1.0, "apply_depolarizing2: bad probability");
  if (p == 0.0) {
    return;
  }
  std::vector<cplx> acc(vec_.dim(), cplx(0.0));
  for (int k = 0; k < kNumPairPaulis; ++k) {
    const Mat4 m = pauli_pair_matrix(nth_pair_pauli(k));
    StateVector scratch = vec_;
    apply_mat4(scratch, m, a, b);
    apply_mat4(scratch, conj4(m), a + num_qubits_, b + num_qubits_);
    for (std::size_t i = 0; i < acc.size(); ++i) {
      acc[i] += scratch[i];
    }
  }
  const double keep = 1.0 - p;
  const double mix = p / 15.0;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    vec_[i] = keep * vec_[i] + mix * acc[i];
  }
}

std::vector<double> DensityMatrix::measurement_probabilities(
    const std::vector<qubit_t>& measured_qubits) const {
  RQSIM_CHECK(!measured_qubits.empty(), "measurement_probabilities: no qubits");
  for (qubit_t q : measured_qubits) {
    RQSIM_CHECK(q < num_qubits_, "measurement_probabilities: qubit out of range");
  }
  std::vector<double> probs(pow2(static_cast<unsigned>(measured_qubits.size())), 0.0);
  for (std::uint64_t i = 0; i < dim(); ++i) {
    const double p = at(i, i).real();
    std::uint64_t key = 0;
    for (std::size_t k = 0; k < measured_qubits.size(); ++k) {
      key |= static_cast<std::uint64_t>(get_bit(i, measured_qubits[k])) << k;
    }
    probs[key] += p;
  }
  return probs;
}

std::vector<double> apply_measurement_flips(std::vector<double> probs,
                                            const std::vector<double>& flip_rates) {
  for (std::size_t bit = 0; bit < flip_rates.size(); ++bit) {
    const double f = flip_rates[bit];
    RQSIM_CHECK(f >= 0.0 && f <= 1.0, "apply_measurement_flips: bad rate");
    if (f == 0.0) {
      continue;
    }
    const std::uint64_t mask = std::uint64_t{1} << bit;
    std::vector<double> next(probs.size(), 0.0);
    for (std::uint64_t i = 0; i < probs.size(); ++i) {
      next[i] += (1.0 - f) * probs[i];
      next[i ^ mask] += f * probs[i];
    }
    probs = std::move(next);
  }
  return probs;
}

std::vector<double> exact_noisy_distribution(const Circuit& circuit,
                                             const NoiseModel& noise) {
  circuit.validate();
  RQSIM_CHECK(circuit.num_measured() > 0,
              "exact_noisy_distribution: circuit has no measurements");
  const Layering layering = layer_circuit(circuit);
  DensityMatrix rho(circuit.num_qubits());
  // Layer-by-layer evolution mirrors the Monte Carlo error positions: each
  // gate's depolarizing channel fires at its layer boundary, followed by
  // the per-qubit idle channel. (All Pauli channels commute, so the order
  // within a boundary does not affect the result.)
  for (layer_index_t l = 0; l < layering.num_layers(); ++l) {
    for (gate_index_t g : layering.layers[l]) {
      rho.apply_gate(circuit.gates()[g]);
    }
    for (gate_index_t g : layering.layers[l]) {
      const Gate& gate = circuit.gates()[g];
      if (gate.arity() == 1) {
        const qubit_t q = gate.qubits[0];
        const double rate = noise.single_qubit_rate(q);
        const auto w = noise.single_pauli_weights(q);
        rho.apply_pauli_channel1(q, rate * w[0], rate * w[1], rate * w[2]);
      } else {
        rho.apply_depolarizing2(gate.qubits[0], gate.qubits[1],
                                noise.two_qubit_rate(gate.qubits[0], gate.qubits[1]));
      }
    }
    if (noise.has_idle_noise()) {
      for (qubit_t q = 0; q < circuit.num_qubits(); ++q) {
        const double rate = noise.idle_pauli_rate(q);
        const auto w = noise.idle_pauli_weights(q);
        rho.apply_pauli_channel1(q, rate * w[0], rate * w[1], rate * w[2]);
      }
    }
  }
  std::vector<double> probs = rho.measurement_probabilities(circuit.measured_qubits());
  std::vector<double> flips(circuit.num_measured());
  for (std::size_t bit = 0; bit < flips.size(); ++bit) {
    flips[bit] = noise.measurement_flip_rate(circuit.measured_qubits()[bit]);
  }
  return apply_measurement_flips(std::move(probs), flips);
}

double expectation(const DensityMatrix& rho, const PauliString& pauli) {
  RQSIM_CHECK(pauli.min_qubits() <= rho.num_qubits(),
              "expectation: observable exceeds state size");
  if (pauli.is_identity()) {
    return rho.trace();
  }
  // P is a (signed, possibly imaginary) permutation: P|r⟩ = phase(r)·|σ(r)⟩,
  // so tr(ρP) = Σ_r ⟨r|ρP|r⟩ = Σ_r phase(r)·ρ(r, σ(r)).
  cplx acc = 0.0;
  const std::uint64_t dim = rho.dim();
  for (std::uint64_t r = 0; r < dim; ++r) {
    // Compute P|r⟩ = phase * |s⟩.
    std::uint64_t s = r;
    cplx phase = 1.0;
    for (const auto& [q, p] : pauli.factors()) {
      const unsigned bit = (r >> q) & 1U;
      switch (p) {
        case Pauli::X:
          s ^= std::uint64_t{1} << q;
          break;
        case Pauli::Y:
          s ^= std::uint64_t{1} << q;
          phase *= bit ? cplx(0.0, -1.0) : cplx(0.0, 1.0);
          break;
        case Pauli::Z:
          if (bit) {
            phase = -phase;
          }
          break;
        case Pauli::I:
          break;
      }
    }
    acc += phase * rho.at(r, s);
  }
  return acc.real();
}

}  // namespace rqsim
