#pragma once

// Scoped-span tracing with Chrome trace-event export.
//
// Each recording thread appends fixed-size events (name pointer, timestamp,
// phase) to a private buffer, created lazily on the thread's first admitted
// event and pre-reserved from then on — no allocation on the steady-state
// record path, no memory held by threads that never record, and no lock at
// all while tracing is inactive (the record paths bail on an atomic flag).
// While a trace window is open, records take the buffer's own uncontended
// mutex, which is what lets `start_tracing` / `trace_to_json` arrive over
// the wire (the service/router `trace` verb) while jobs execute: the clear
// and the export lock each buffer they touch instead of assuming
// quiescence. `RQSIM_SPAN("layer.what")` opens a RAII span (B event at
// construction, E at destruction); `trace_instant` marks point events
// (checkpoint fork/drop, steals); `trace_counter` records a value timeline
// (MSV token occupancy). Buffers cap at kMaxEventsPerThread; overflow drops
// new events but never unbalances B/E (a span whose B was dropped skips its
// E, admission always reserves room for the Es of already-open spans, and a
// span whose B was cleared by a mid-span start_tracing skips its E via a
// per-buffer window stamp).
//
// Export (`export_trace`) writes the Chrome trace-event JSON array format —
// loadable in Perfetto / chrome://tracing — with one lane per thread
// (set_thread_lane names worker lanes) and timestamps relative to
// start_tracing.
//
// Span names are static string literals of the form "<layer>.<operation>"
// (e.g. "tree_exec.task", "service.execute_batch"); the buffer stores the
// pointer, not a copy.
//
// Distributed tracing: a thread-local trace context (set with the RAII
// TraceContext) tags every span opened while it is in scope with a 64-bit
// trace_id, exported as an "args":{"trace_id":"<hex>"} annotation. The
// router mints an id per submit, forwards it over the JSONL protocol, and
// the service re-establishes the context around batch planning and
// execution — so spans from separate processes join into one causal trace
// after `rqsim trace-merge`.

#include <cstddef>
#include <cstdint>
#include <string>

namespace rqsim::telemetry {

inline constexpr std::size_t kMaxEventsPerThread = 1u << 16;

/// Mint a fleet-unique 64-bit trace id (never 0; 0 means "no trace").
/// Mixes the monotonic clock with a process-local counter through an
/// integer finalizer — collision-resistant across processes without
/// touching the RNG layer. Available even with telemetry compiled out so
/// protocol code can always propagate ids.
std::uint64_t mint_trace_id();

/// Lower-case hex (no 0x) wire form of a trace id; "0" for the null id.
std::string trace_id_to_hex(std::uint64_t id);

/// Inverse of trace_id_to_hex; returns 0 on malformed input.
std::uint64_t trace_id_from_hex(const std::string& hex);

#if !defined(RQSIM_TELEMETRY_OFF)

/// Begin a fresh trace: clears previously collected events, sets the time
/// origin, and starts admitting records. Safe while other threads record —
/// spans left open across the restart skip their E (per-buffer window
/// stamp) so the export stays balanced.
void start_tracing();

/// Stop admitting records; collected events stay buffered for export.
void stop_tracing();

bool tracing_active();

/// Name the calling thread's lane in the exported trace (e.g.
/// "tree_exec.worker-3"). Safe (and allocation-free) to call whether or not
/// tracing is active: a thread's event buffer is created lazily on its
/// first admitted event, so threads on untraced runs never reserve one.
void set_thread_lane(const std::string& name);

/// Point event ("i" phase) on the calling thread's lane. `name` must be a
/// string literal (the pointer is stored, not the contents).
void trace_instant(const char* name);

/// Counter sample ("C" phase): a stepped value-over-time track.
void trace_counter(const char* name, std::uint64_t value);

/// Retroactive complete event ("X" phase) on the calling thread's lane:
/// a span whose endpoints were captured as clock timestamps before the
/// decision to trace it (queue wait, measured between stored TimePoints).
/// `start_ns`/`end_ns` are in the now_ns()/to_ns() domain.
void trace_complete(const char* name, std::uint64_t start_ns,
                    std::uint64_t end_ns, std::uint64_t trace_id);

/// Trace id attached to spans opened by the calling thread (0 = none).
std::uint64_t current_trace_id();

/// Set/clear the calling thread's trace id directly. Prefer TraceContext;
/// this form is for worker loops that inherit a captured context.
void set_trace_context(std::uint64_t trace_id);

/// RAII: tag spans opened on this thread (for the scope's duration) with
/// `trace_id`; restores the previous context on destruction.
class TraceContext {
 public:
  explicit TraceContext(std::uint64_t trace_id);
  ~TraceContext();
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

 private:
  std::uint64_t saved_;
};

/// Nanosecond timestamp (now_ns domain) of the last start_tracing(); the
/// `trace collect` verb reports it so trace-merge can align processes.
std::uint64_t trace_epoch_ns();

/// RAII scoped span; prefer the RQSIM_SPAN macro.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t gen_;  // tracing generation the B was admitted under
  bool recorded_;
};

/// Serialize all buffered events as a Chrome trace-event JSON object.
std::string trace_to_json();

/// Write trace_to_json() to `path`. Returns the number of span/instant/
/// counter events written, or -1 on I/O failure.
long export_trace(const std::string& path);

/// Total events dropped to buffer overflow since start_tracing.
std::uint64_t trace_dropped_events();

/// Number of per-thread event buffers currently held by the registry
/// (live + retired-with-events). Buffers are created lazily on a thread's
/// first admitted event and freed at thread exit when empty, so this stays
/// 0 in processes that never trace — exposed so tests can assert that.
std::size_t trace_thread_buffers();

#else  // RQSIM_TELEMETRY_OFF

inline void start_tracing() {}
inline void stop_tracing() {}
inline bool tracing_active() { return false; }
inline void set_thread_lane(const std::string&) {}
inline void trace_instant(const char*) {}
inline void trace_counter(const char*, std::uint64_t) {}
inline void trace_complete(const char*, std::uint64_t, std::uint64_t,
                           std::uint64_t) {}
inline std::uint64_t current_trace_id() { return 0; }
inline void set_trace_context(std::uint64_t) {}

class TraceContext {
 public:
  explicit TraceContext(std::uint64_t) {}
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;
};

inline std::uint64_t trace_epoch_ns() { return 0; }

class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

inline std::string trace_to_json() { return "{\"traceEvents\":[]}"; }
inline long export_trace(const std::string&) { return -1; }
inline std::uint64_t trace_dropped_events() { return 0; }
inline std::size_t trace_thread_buffers() { return 0; }

#endif  // RQSIM_TELEMETRY_OFF

}  // namespace rqsim::telemetry

#define RQSIM_TELEM_CONCAT2(a, b) a##b
#define RQSIM_TELEM_CONCAT(a, b) RQSIM_TELEM_CONCAT2(a, b)

/// Open a scoped trace span covering the rest of the enclosing block.
#define RQSIM_SPAN(name)                                    \
  [[maybe_unused]] ::rqsim::telemetry::TraceSpan RQSIM_TELEM_CONCAT( \
      rqsim_span_, __LINE__)(name)
