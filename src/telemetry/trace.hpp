#pragma once

// Scoped-span tracing with Chrome trace-event export.
//
// Each recording thread appends fixed-size events (name pointer, timestamp,
// phase) to a private buffer, created lazily on the thread's first admitted
// event and pre-reserved from then on — no lock, no allocation on the
// steady-state record path, and no memory held by threads that never
// record. `RQSIM_SPAN("layer.what")` opens a RAII span (B event at
// construction, E at destruction); `trace_instant` marks point events
// (checkpoint fork/drop, steals); `trace_counter` records a value timeline
// (MSV token occupancy). Buffers cap at kMaxEventsPerThread; overflow drops
// new events but never unbalances B/E (a span whose B was dropped skips its
// E, and admission always reserves room for the Es of already-open spans).
//
// Export (`export_trace`) writes the Chrome trace-event JSON array format —
// loadable in Perfetto / chrome://tracing — with one lane per thread
// (set_thread_lane names worker lanes) and timestamps relative to
// start_tracing. Export expects quiescence: call it after worker threads
// have joined or stopped recording.
//
// Span names are static string literals of the form "<layer>.<operation>"
// (e.g. "tree_exec.task", "service.execute_batch"); the buffer stores the
// pointer, not a copy.

#include <cstddef>
#include <cstdint>
#include <string>

namespace rqsim::telemetry {

inline constexpr std::size_t kMaxEventsPerThread = 1u << 16;

#if !defined(RQSIM_TELEMETRY_OFF)

/// Begin a fresh trace: clears previously collected events, sets the time
/// origin, and starts admitting records. Requires quiescence (no thread
/// mid-record), same as export_trace.
void start_tracing();

/// Stop admitting records; collected events stay buffered for export.
void stop_tracing();

bool tracing_active();

/// Name the calling thread's lane in the exported trace (e.g.
/// "tree_exec.worker-3"). Safe (and allocation-free) to call whether or not
/// tracing is active: a thread's event buffer is created lazily on its
/// first admitted event, so threads on untraced runs never reserve one.
void set_thread_lane(const std::string& name);

/// Point event ("i" phase) on the calling thread's lane. `name` must be a
/// string literal (the pointer is stored, not the contents).
void trace_instant(const char* name);

/// Counter sample ("C" phase): a stepped value-over-time track.
void trace_counter(const char* name, std::uint64_t value);

/// RAII scoped span; prefer the RQSIM_SPAN macro.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t gen_;  // tracing generation the B was admitted under
  bool recorded_;
};

/// Serialize all buffered events as a Chrome trace-event JSON object.
std::string trace_to_json();

/// Write trace_to_json() to `path`. Returns the number of span/instant/
/// counter events written, or -1 on I/O failure.
long export_trace(const std::string& path);

/// Total events dropped to buffer overflow since start_tracing.
std::uint64_t trace_dropped_events();

/// Number of per-thread event buffers currently held by the registry
/// (live + retired-with-events). Buffers are created lazily on a thread's
/// first admitted event and freed at thread exit when empty, so this stays
/// 0 in processes that never trace — exposed so tests can assert that.
std::size_t trace_thread_buffers();

#else  // RQSIM_TELEMETRY_OFF

inline void start_tracing() {}
inline void stop_tracing() {}
inline bool tracing_active() { return false; }
inline void set_thread_lane(const std::string&) {}
inline void trace_instant(const char*) {}
inline void trace_counter(const char*, std::uint64_t) {}

class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

inline std::string trace_to_json() { return "{\"traceEvents\":[]}"; }
inline long export_trace(const std::string&) { return -1; }
inline std::uint64_t trace_dropped_events() { return 0; }
inline std::size_t trace_thread_buffers() { return 0; }

#endif  // RQSIM_TELEMETRY_OFF

}  // namespace rqsim::telemetry

#define RQSIM_TELEM_CONCAT2(a, b) a##b
#define RQSIM_TELEM_CONCAT(a, b) RQSIM_TELEM_CONCAT2(a, b)

/// Open a scoped trace span covering the rest of the enclosing block.
#define RQSIM_SPAN(name)                                    \
  [[maybe_unused]] ::rqsim::telemetry::TraceSpan RQSIM_TELEM_CONCAT( \
      rqsim_span_, __LINE__)(name)
