#pragma once

// The project's single sanctioned home for monotonic wallclock timing.
// Source rule 4 (scripts/check_source_rules.sh) bans std::chrono::steady_clock
// and high_resolution_clock everywhere outside src/telemetry/ and src/common/,
// so every layer that needs "how long did this take" goes through these
// helpers (or through trace spans, which use the same clock). That keeps one
// clock domain across metrics, traces and service latencies — mixing clocks
// is how cross-subsystem timelines stop lining up.
//
// These helpers are always available, independent of the RQSIM_TELEMETRY
// compile switch: timing a run is core functionality, recording it into the
// registry is the optional part.

#include <chrono>
#include <cstdint>

namespace rqsim::telemetry {

using TimePoint = std::chrono::steady_clock::time_point;

inline TimePoint clock_now() { return std::chrono::steady_clock::now(); }

inline double ms_between(TimePoint from, TimePoint to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Monotonic nanoseconds since an arbitrary epoch; trace timestamps use this.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          clock_now().time_since_epoch())
          .count());
}

/// A TimePoint in the same ns domain as now_ns(); lets code that stores
/// TimePoints (job submit/start times) emit retroactive trace events.
inline std::uint64_t to_ns(TimePoint tp) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

/// First call pins the process start; the service constructor calls this so
/// uptime counts from service birth, not from the first stats request.
inline TimePoint process_start_time() {
  static const TimePoint start = clock_now();
  return start;
}

inline double process_uptime_ms() {
  return ms_between(process_start_time(), clock_now());
}

class Stopwatch {
 public:
  Stopwatch() : start_(clock_now()) {}
  void reset() { start_ = clock_now(); }
  double elapsed_ms() const { return ms_between(start_, clock_now()); }

 private:
  TimePoint start_;
};

}  // namespace rqsim::telemetry
