#pragma once

// The project's single sanctioned home for monotonic wallclock timing.
// Source rule 4 (scripts/check_source_rules.sh) bans std::chrono::steady_clock
// and high_resolution_clock everywhere outside src/telemetry/ and src/common/,
// so every layer that needs "how long did this take" goes through these
// helpers (or through trace spans, which use the same clock). That keeps one
// clock domain across metrics, traces and service latencies — mixing clocks
// is how cross-subsystem timelines stop lining up.
//
// These helpers are always available, independent of the RQSIM_TELEMETRY
// compile switch: timing a run is core functionality, recording it into the
// registry is the optional part.

#include <chrono>
#include <cstdint>

namespace rqsim::telemetry {

using TimePoint = std::chrono::steady_clock::time_point;

inline TimePoint clock_now() { return std::chrono::steady_clock::now(); }

inline double ms_between(TimePoint from, TimePoint to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Monotonic nanoseconds since an arbitrary epoch; trace timestamps use this.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          clock_now().time_since_epoch())
          .count());
}

class Stopwatch {
 public:
  Stopwatch() : start_(clock_now()) {}
  void reset() { start_ = clock_now(); }
  double elapsed_ms() const { return ms_between(start_, clock_now()); }

 private:
  TimePoint start_;
};

}  // namespace rqsim::telemetry
