#pragma once

// Lock-free metrics registry.
//
// Design (DESIGN.md §10): every thread that records a metric owns a private
// ThreadShard of relaxed std::atomic<uint64_t> slots. The owner is the only
// writer of its slots, so recording is a thread-local lookup plus a relaxed
// load/store — no contended cache line, no lock, no fence. Readers
// (snapshot_metrics, Counter::value) walk all shards under the registry
// mutex and fold: counters and histograms sum, gauges take the max. The
// mutex guards only the shard list and the name table; it is never taken on
// the record path. When a thread exits, its shard is folded into a retired
// accumulator so no samples are lost.
//
// Handles (Counter/MaxGauge/Histogram) intern their name once at
// construction and store a slot id; construct them as namespace-scope or
// function-local statics at the instrumentation site. Two handles with the
// same name share the same slot, so independent translation units can
// increment one logical metric (e.g. "sim.matvec_ops").
//
// Cost when disabled: `set_enabled(false)` (or env RQSIM_TELEMETRY=0) turns
// every record into a relaxed atomic-bool load and a branch. Compiling with
// -DRQSIM_TELEMETRY=OFF (cmake option) removes even that: the classes below
// collapse to empty inline no-ops.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rqsim::telemetry {

// Capacity of the fixed slot tables inside each per-thread shard. Interning
// a metric past these limits is a programming error and aborts in debug
// (RQSIM_CHECK); the totals are generous — the whole codebase uses < 60.
inline constexpr std::size_t kMaxScalarMetrics = 256;
inline constexpr std::size_t kMaxHistograms = 64;
// Log-scale histogram: bucket i counts samples with bit_width(value) == i,
// i.e. bucket 0 holds zeros and bucket i>0 holds [2^(i-1), 2^i).
inline constexpr std::size_t kHistogramBuckets = 65;

enum class MetricKind : std::uint8_t { kCounter, kMaxGauge, kHistogram };

struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;              // counter total or gauge max
  std::uint64_t count = 0;              // histogram sample count
  std::uint64_t sum = 0;                // histogram sample sum
  std::vector<std::uint64_t> buckets;   // histogram only (log2 buckets)
};

struct MetricsSnapshot {
  std::vector<MetricValue> metrics;  // sorted by name

  const MetricValue* find(const std::string& name) const {
    for (const MetricValue& m : metrics) {
      if (m.name == name) return &m;
    }
    return nullptr;
  }
};

/// Estimate the q-quantile (q in [0,1]) of a log2-bucketed histogram with
/// `count` total samples: walk the cumulative bucket counts to the bucket
/// holding the q-th sample and interpolate linearly inside its value range
/// [2^(i-1), 2^i) (bucket 0 is exactly {0}). Pure data math — always
/// compiled, so the router can compute fleet quantiles over merged
/// snapshots regardless of either side's RQSIM_TELEMETRY setting. Returns
/// 0 for empty histograms.
double histogram_quantile(const std::vector<std::uint64_t>& buckets,
                          std::uint64_t count, double q);

/// Fold `src` into `dst` by metric name, each kind with its own rule:
/// counters and histograms (count, sum, per-bucket) add, max-gauges take
/// the max. Metrics unknown to `dst` are appended; `dst` stays sorted by
/// name. This is how the fleet router aggregates per-backend registry
/// snapshots into one fleet view — pure data folding, so it works the same
/// whether this process compiled telemetry in or out.
void merge_snapshot(MetricsSnapshot& dst, const MetricsSnapshot& src);

/// True when the registry is compiled in (RQSIM_TELEMETRY=ON).
constexpr bool compiled() {
#if defined(RQSIM_TELEMETRY_OFF)
  return false;
#else
  return true;
#endif
}

#if !defined(RQSIM_TELEMETRY_OFF)

/// Runtime switch. Defaults to on; env RQSIM_TELEMETRY=0/off/false starts it
/// off. Reading it is a relaxed atomic load.
bool enabled();
void set_enabled(bool on);

class Counter {
 public:
  explicit Counter(const char* name);
  void add(std::uint64_t delta);
  void increment() { add(1); }
  /// Folded total across live shards and retired threads.
  std::uint64_t value() const;

 private:
  std::uint32_t id_;
};

/// Records the maximum value ever seen (e.g. a high-water mark).
class MaxGauge {
 public:
  explicit MaxGauge(const char* name);
  void record(std::uint64_t value);
  std::uint64_t value() const;

 private:
  std::uint32_t id_;
};

/// Log-scale histogram: constant-size, constant-time record, exact count
/// and sum, power-of-two resolution on the distribution shape.
class Histogram {
 public:
  explicit Histogram(const char* name);
  void record(std::uint64_t value);

 private:
  std::uint32_t id_;
};

/// Guards process-global counter deltas (e.g. TelemetrySummary::
/// measured_ops = end - start of "sim.matvec_ops"): such a delta is only
/// attributable to one run if no other run wrote the counter in between.
/// Each measured run holds one scope for its duration; `exclusive()` is
/// true iff no other scope overlapped this one's lifetime so far, so
/// callers can downgrade to measured=false instead of reporting a delta
/// polluted by concurrent runs (the service executes jobs concurrently
/// when configured with multiple workers).
class MeasuredRunScope {
 public:
  MeasuredRunScope();
  ~MeasuredRunScope();
  MeasuredRunScope(const MeasuredRunScope&) = delete;
  MeasuredRunScope& operator=(const MeasuredRunScope&) = delete;

  /// False once any other scope has been alive at any point during this
  /// scope's lifetime. Check immediately before taking the end snapshot.
  bool exclusive() const;

 private:
  std::uint64_t start_seq_;
  bool alone_at_entry_;
};

/// Aggregate every metric across live and retired shards.
MetricsSnapshot snapshot_metrics();

/// Folded total for a metric by name; 0 if it was never interned.
std::uint64_t counter_value(const std::string& name);

/// Zero every slot (live shards and retired totals). Test-only: callers
/// must guarantee no thread is concurrently recording.
void reset_metrics_for_test();

#else  // RQSIM_TELEMETRY_OFF — compile-time escape hatch: all no-ops.

inline bool enabled() { return false; }
inline void set_enabled(bool) {}

class Counter {
 public:
  explicit Counter(const char*) {}
  void add(std::uint64_t) {}
  void increment() {}
  std::uint64_t value() const { return 0; }
};

class MaxGauge {
 public:
  explicit MaxGauge(const char*) {}
  void record(std::uint64_t) {}
  std::uint64_t value() const { return 0; }
};

class Histogram {
 public:
  explicit Histogram(const char*) {}
  void record(std::uint64_t) {}
};

class MeasuredRunScope {
 public:
  MeasuredRunScope() {}
  MeasuredRunScope(const MeasuredRunScope&) = delete;
  MeasuredRunScope& operator=(const MeasuredRunScope&) = delete;
  bool exclusive() const { return true; }  // nothing is measured anyway
};

inline MetricsSnapshot snapshot_metrics() { return {}; }
inline std::uint64_t counter_value(const std::string&) { return 0; }
inline void reset_metrics_for_test() {}

#endif  // RQSIM_TELEMETRY_OFF

}  // namespace rqsim::telemetry
