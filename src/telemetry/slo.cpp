#include "telemetry/slo.hpp"

#include <algorithm>
#include <bit>

namespace rqsim::telemetry {

void LatencyHistogram::record(std::uint64_t us) {
  ++count;
  sum += us;
  const std::size_t bucket = static_cast<std::size_t>(std::bit_width(us));
  if (buckets.size() < kHistogramBuckets) buckets.resize(kHistogramBuckets, 0);
  ++buckets[bucket];
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  count += other.count;
  sum += other.sum;
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

namespace {

void keep_top_exemplars(std::vector<SloExemplar>& exemplars) {
  std::sort(exemplars.begin(), exemplars.end(),
            [](const SloExemplar& a, const SloExemplar& b) {
              return a.e2e_us > b.e2e_us;
            });
  if (exemplars.size() > kSloExemplars) exemplars.resize(kSloExemplars);
}

}  // namespace

void TenantSlo::record(std::uint64_t job_id, std::uint64_t trace_id,
                       std::uint64_t queue, std::uint64_t exec) {
  queue_us.record(queue);
  exec_us.record(exec);
  const std::uint64_t e2e = queue + exec;
  e2e_us.record(e2e);
  exemplars.push_back(SloExemplar{job_id, trace_id, e2e});
  keep_top_exemplars(exemplars);
}

void TenantSlo::merge(const TenantSlo& other) {
  queue_us.merge(other.queue_us);
  exec_us.merge(other.exec_us);
  e2e_us.merge(other.e2e_us);
  exemplars.insert(exemplars.end(), other.exemplars.begin(),
                   other.exemplars.end());
  keep_top_exemplars(exemplars);
}

void SloTracker::record(const std::string& tenant, std::uint64_t job_id,
                        std::uint64_t trace_id, std::uint64_t queue_us,
                        std::uint64_t exec_us) {
  tenants[tenant].record(job_id, trace_id, queue_us, exec_us);
  total.record(job_id, trace_id, queue_us, exec_us);
}

void SloTracker::merge(const SloTracker& other) {
  for (const auto& [name, slo] : other.tenants) {
    tenants[name].merge(slo);
  }
  total.merge(other.total);
}

}  // namespace rqsim::telemetry
