#pragma once

// Per-tenant latency SLO tracking for the service tier.
//
// The paper's reuse optimizations (prefix caching, batch merging, frame
// collapse) are throughput arguments; SLOs are how a fleet operator sees
// whether they translate into *tail latency* wins per tenant. Each
// completed job records three durations — queue wait, execution, and
// end-to-end — into log2 histograms keyed by tenant, plus a fleet-wide
// total. The slowest jobs are kept as exemplars carrying their trace_ids,
// so a p99 regression links directly to a distributed trace of a concrete
// job ("why was tenant alice's 99th-percentile job slow" → open the trace).
//
// This is pure data (plain structs, no atomics): SimService records under
// its own mutex, and the router re-merges the JSON form from many backends
// (service/protocol.hpp slo_to_json/slo_from_json) — both paths the same
// aggregation code, same as MetricsSnapshot merging. Always compiled,
// independent of RQSIM_TELEMETRY: latency accounting is service
// functionality, not optional instrumentation.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace rqsim::telemetry {

/// Slowest-jobs kept per tenant (and for the fleet total).
inline constexpr std::size_t kSloExemplars = 5;

/// Log2-bucketed latency histogram in microseconds. Same bucket scheme as
/// the registry Histogram (bucket 0 = zeros, bucket i = [2^(i-1), 2^i))
/// so histogram_quantile and the Prometheus exposition treat both alike.
struct LatencyHistogram {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::uint64_t> buckets = std::vector<std::uint64_t>(kHistogramBuckets, 0);

  void record(std::uint64_t us);
  void merge(const LatencyHistogram& other);
  double quantile(double q) const { return histogram_quantile(buckets, count, q); }
};

/// One slow job: enough to find it (job id on its backend) and to pull its
/// distributed trace (trace_id, hex-encoded on the wire).
struct SloExemplar {
  std::uint64_t job_id = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t e2e_us = 0;
};

struct TenantSlo {
  LatencyHistogram queue_us;
  LatencyHistogram exec_us;
  LatencyHistogram e2e_us;
  /// Top-kSloExemplars jobs by e2e latency, slowest first.
  std::vector<SloExemplar> exemplars;

  void record(std::uint64_t job_id, std::uint64_t trace_id,
              std::uint64_t queue, std::uint64_t exec);
  void merge(const TenantSlo& other);
};

/// Per-tenant + aggregate SLO state. Not thread-safe; the owner (SimService,
/// or the router's stats fan-out) brings its own lock.
struct SloTracker {
  std::map<std::string, TenantSlo> tenants;
  TenantSlo total;

  void record(const std::string& tenant, std::uint64_t job_id,
              std::uint64_t trace_id, std::uint64_t queue_us,
              std::uint64_t exec_us);
  void merge(const SloTracker& other);
};

}  // namespace rqsim::telemetry
