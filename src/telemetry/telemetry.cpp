#include "telemetry/telemetry.hpp"

#include <algorithm>

#if !defined(RQSIM_TELEMETRY_OFF)

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/error.hpp"

namespace rqsim::telemetry {
namespace {

struct HistSlots {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> buckets[kHistogramBuckets] = {};
};

// One per recording thread. Slots are written only by the owning thread
// (relaxed read-modify-write as two relaxed ops — single writer, so no lost
// updates) and read by snapshotters; atomics make those cross-thread reads
// race-free without ordering cost on the writer.
struct ThreadShard {
  std::atomic<std::uint64_t> scalars[kMaxScalarMetrics] = {};
  HistSlots hists[kMaxHistograms];
};

struct HistTotals {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t buckets[kHistogramBuckets] = {};
};

struct Registry {
  std::mutex mu;
  // Name tables; index == slot id. Append-only under mu.
  std::vector<std::string> scalar_names;
  std::vector<MetricKind> scalar_kinds;
  std::vector<std::string> hist_names;
  // Live per-thread shards (not owned) and totals folded from exited threads.
  std::vector<ThreadShard*> live;
  std::uint64_t retired_scalars[kMaxScalarMetrics] = {};
  HistTotals retired_hists[kMaxHistograms];
};

// Leaked singleton: thread_local shard destructors run during thread (and
// process) teardown and must always find the registry alive.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("RQSIM_TELEMETRY");
    if (env != nullptr &&
        (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
         std::strcmp(env, "false") == 0)) {
      return false;
    }
    return true;
  }();
  return flag;
}

void fold_scalar(MetricKind kind, std::uint64_t& into, std::uint64_t v) {
  if (kind == MetricKind::kMaxGauge) {
    into = std::max(into, v);
  } else {
    into += v;
  }
}

// Fold a live shard into retired totals. Caller holds registry().mu.
void fold_shard_locked(Registry& r, const ThreadShard& shard) {
  for (std::size_t i = 0; i < r.scalar_names.size(); ++i) {
    fold_scalar(r.scalar_kinds[i], r.retired_scalars[i],
                shard.scalars[i].load(std::memory_order_relaxed));
  }
  for (std::size_t i = 0; i < r.hist_names.size(); ++i) {
    const HistSlots& h = shard.hists[i];
    HistTotals& t = r.retired_hists[i];
    t.count += h.count.load(std::memory_order_relaxed);
    t.sum += h.sum.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      t.buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
    }
  }
}

// Registers the shard on first use and folds + deregisters it when the
// owning thread exits, so short-lived worker threads never drop samples.
struct ShardOwner {
  ThreadShard* shard;

  ShardOwner() : shard(new ThreadShard()) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.live.push_back(shard);
  }

  ~ShardOwner() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    fold_shard_locked(r, *shard);
    r.live.erase(std::remove(r.live.begin(), r.live.end(), shard),
                 r.live.end());
    delete shard;
  }
};

ThreadShard& local_shard() {
  thread_local ShardOwner owner;
  return *owner.shard;
}

std::uint32_t intern_scalar(const char* name, MetricKind kind) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (std::size_t i = 0; i < r.scalar_names.size(); ++i) {
    if (r.scalar_names[i] == name) {
      RQSIM_CHECK(r.scalar_kinds[i] == kind,
                  std::string("telemetry metric '") + name +
                      "' re-registered with a different kind");
      return static_cast<std::uint32_t>(i);
    }
  }
  RQSIM_CHECK(r.scalar_names.size() < kMaxScalarMetrics,
              "telemetry scalar metric table full");
  r.scalar_names.emplace_back(name);
  r.scalar_kinds.push_back(kind);
  return static_cast<std::uint32_t>(r.scalar_names.size() - 1);
}

std::uint32_t intern_hist(const char* name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (std::size_t i = 0; i < r.hist_names.size(); ++i) {
    if (r.hist_names[i] == name) return static_cast<std::uint32_t>(i);
  }
  RQSIM_CHECK(r.hist_names.size() < kMaxHistograms,
              "telemetry histogram table full");
  r.hist_names.emplace_back(name);
  return static_cast<std::uint32_t>(r.hist_names.size() - 1);
}

// Owner-thread add: load+store instead of fetch_add — the slot has exactly
// one writer, so this is not a lost-update race and skips the RMW bus lock.
inline void slot_add(std::atomic<std::uint64_t>& slot, std::uint64_t delta) {
  slot.store(slot.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

inline void slot_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  if (v > slot.load(std::memory_order_relaxed)) {
    slot.store(v, std::memory_order_relaxed);
  }
}

std::uint64_t scalar_value_locked(Registry& r, std::uint32_t id) {
  std::uint64_t total = r.retired_scalars[id];
  for (const ThreadShard* shard : r.live) {
    fold_scalar(r.scalar_kinds[id], total,
                shard->scalars[id].load(std::memory_order_relaxed));
  }
  return total;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

namespace {
// MeasuredRunScope bookkeeping: how many scopes are alive, and how many
// have ever started. A scope is exclusive iff it was alone when it began
// and nothing else started since — both directions of overlap are caught.
std::atomic<int> g_scopes_in_flight{0};
std::atomic<std::uint64_t> g_scope_starts{0};
}  // namespace

MeasuredRunScope::MeasuredRunScope()
    : start_seq_(g_scope_starts.fetch_add(1, std::memory_order_acq_rel) + 1),
      alone_at_entry_(
          g_scopes_in_flight.fetch_add(1, std::memory_order_acq_rel) == 0) {}

MeasuredRunScope::~MeasuredRunScope() {
  g_scopes_in_flight.fetch_sub(1, std::memory_order_acq_rel);
}

bool MeasuredRunScope::exclusive() const {
  return alone_at_entry_ &&
         g_scope_starts.load(std::memory_order_acquire) == start_seq_;
}

Counter::Counter(const char* name)
    : id_(intern_scalar(name, MetricKind::kCounter)) {}

void Counter::add(std::uint64_t delta) {
  if (!enabled()) return;
  slot_add(local_shard().scalars[id_], delta);
}

std::uint64_t Counter::value() const {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return scalar_value_locked(r, id_);
}

MaxGauge::MaxGauge(const char* name)
    : id_(intern_scalar(name, MetricKind::kMaxGauge)) {}

void MaxGauge::record(std::uint64_t value) {
  if (!enabled()) return;
  slot_max(local_shard().scalars[id_], value);
}

std::uint64_t MaxGauge::value() const {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return scalar_value_locked(r, id_);
}

Histogram::Histogram(const char* name) : id_(intern_hist(name)) {}

void Histogram::record(std::uint64_t value) {
  if (!enabled()) return;
  HistSlots& h = local_shard().hists[id_];
  slot_add(h.count, 1);
  slot_add(h.sum, value);
  slot_add(h.buckets[std::bit_width(value)], 1);
}

MetricsSnapshot snapshot_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  MetricsSnapshot snap;
  snap.metrics.reserve(r.scalar_names.size() + r.hist_names.size());
  for (std::size_t i = 0; i < r.scalar_names.size(); ++i) {
    MetricValue m;
    m.name = r.scalar_names[i];
    m.kind = r.scalar_kinds[i];
    m.value = scalar_value_locked(r, static_cast<std::uint32_t>(i));
    snap.metrics.push_back(std::move(m));
  }
  for (std::size_t i = 0; i < r.hist_names.size(); ++i) {
    MetricValue m;
    m.name = r.hist_names[i];
    m.kind = MetricKind::kHistogram;
    HistTotals t = r.retired_hists[i];
    for (const ThreadShard* shard : r.live) {
      const HistSlots& h = shard->hists[i];
      t.count += h.count.load(std::memory_order_relaxed);
      t.sum += h.sum.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        t.buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
      }
    }
    m.count = t.count;
    m.sum = t.sum;
    // Trim trailing empty buckets so snapshots stay compact.
    std::size_t top = kHistogramBuckets;
    while (top > 0 && t.buckets[top - 1] == 0) --top;
    m.buckets.assign(t.buckets, t.buckets + top);
    snap.metrics.push_back(std::move(m));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return snap;
}

std::uint64_t counter_value(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (std::size_t i = 0; i < r.scalar_names.size(); ++i) {
    if (r.scalar_names[i] == name) {
      return scalar_value_locked(r, static_cast<std::uint32_t>(i));
    }
  }
  return 0;
}

void reset_metrics_for_test() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::fill(std::begin(r.retired_scalars), std::end(r.retired_scalars),
            std::uint64_t{0});
  for (HistTotals& t : r.retired_hists) t = HistTotals{};
  for (ThreadShard* shard : r.live) {
    for (auto& slot : shard->scalars) {
      slot.store(0, std::memory_order_relaxed);
    }
    for (HistSlots& h : shard->hists) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace rqsim::telemetry

#endif  // !RQSIM_TELEMETRY_OFF

// Snapshot folding is pure data math on MetricValue records — available
// regardless of whether the registry itself is compiled in, since a router
// built with RQSIM_TELEMETRY=OFF still merges snapshots that *backends*
// produced.
namespace rqsim::telemetry {

double histogram_quantile(const std::vector<std::uint64_t>& buckets,
                          std::uint64_t count, double q) {
  if (count == 0 || buckets.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based; q=0 → first sample, q=1 → last.
  const double rank = 1.0 + q * static_cast<double>(count - 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets[i];
    if (static_cast<double>(seen) < rank) continue;
    if (i == 0) return 0.0;  // bucket 0 holds exactly the zeros
    // Interpolate the rank's position within this bucket's value range.
    const double lo = static_cast<double>(std::uint64_t{1} << (i - 1));
    const double hi = i >= 64 ? lo * 2.0
                              : static_cast<double>(std::uint64_t{1} << i);
    const double frac = (rank - before) / static_cast<double>(buckets[i]);
    return lo + (hi - lo) * (frac < 0.0 ? 0.0 : frac > 1.0 ? 1.0 : frac);
  }
  return 0.0;
}

void merge_snapshot(MetricsSnapshot& dst, const MetricsSnapshot& src) {
  for (const MetricValue& incoming : src.metrics) {
    MetricValue* existing = nullptr;
    for (MetricValue& m : dst.metrics) {
      if (m.name == incoming.name) {
        existing = &m;
        break;
      }
    }
    if (existing == nullptr) {
      dst.metrics.push_back(incoming);
      continue;
    }
    if (existing->kind != incoming.kind) {
      continue;  // name collision across kinds: keep dst's view
    }
    switch (incoming.kind) {
      case MetricKind::kCounter:
        existing->value += incoming.value;
        break;
      case MetricKind::kMaxGauge:
        existing->value = existing->value > incoming.value ? existing->value
                                                           : incoming.value;
        break;
      case MetricKind::kHistogram:
        existing->count += incoming.count;
        existing->sum += incoming.sum;
        if (existing->buckets.size() < incoming.buckets.size()) {
          existing->buckets.resize(incoming.buckets.size(), 0);
        }
        for (std::size_t b = 0; b < incoming.buckets.size(); ++b) {
          existing->buckets[b] += incoming.buckets[b];
        }
        break;
    }
  }
  std::sort(dst.metrics.begin(), dst.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
}

}  // namespace rqsim::telemetry
