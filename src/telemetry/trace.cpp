#include "telemetry/trace.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "telemetry/clock.hpp"

namespace rqsim::telemetry {

// Compiled even with RQSIM_TELEMETRY_OFF: trace ids ride the JSONL protocol
// regardless of whether this process records spans.
std::uint64_t mint_trace_id() {
  static std::atomic<std::uint64_t> counter{0};
  // splitmix64 finalizer over clock ⊕ sequence: distinct per call in one
  // process (the counter) and collision-resistant across processes (the ns
  // clock), with the avalanche spreading both into all 64 bits.
  std::uint64_t x =
      now_ns() + (counter.fetch_add(1, std::memory_order_relaxed) << 48);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

std::string trace_id_to_hex(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llx", static_cast<unsigned long long>(id));
  return std::string(buf);
}

std::uint64_t trace_id_from_hex(const std::string& hex) {
  if (hex.empty() || hex.size() > 16) return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(hex.c_str(), &end, 16);
  if (end == nullptr || *end != '\0') return 0;
  return static_cast<std::uint64_t>(v);
}

}  // namespace rqsim::telemetry

#if !defined(RQSIM_TELEMETRY_OFF)

#include <algorithm>
#include <memory>
#include <mutex>
#include <vector>

namespace rqsim::telemetry {
namespace {

struct TraceEvent {
  const char* name;
  std::uint64_t ts_ns;
  std::uint64_t value;     // 'C' events only
  std::uint64_t trace_id;  // 'B'/'X' events; 0 = untagged
  std::uint64_t dur_ns;    // 'X' events only
  char phase;              // 'B', 'E', 'i', 'C', 'X'
};

struct TraceBuffer {
  // Guards events/open_spans/dropped. The owning thread is the only writer
  // of events, but trace start/collect now arrive over the wire while jobs
  // execute (the router's `trace` verb), so the clear in start_tracing and
  // the read in trace_to_json can no longer assume quiescence. The owner
  // takes this uncontended mutex only while a trace window is active (the
  // record paths bail on tracing_active() first), so untraced runs still
  // record nothing and pay nothing.
  std::mutex events_mu;
  std::vector<TraceEvent> events;
  std::string lane_name;
  int tid = 0;
  std::size_t open_spans = 0;  // admitted Bs awaiting their E
  std::uint64_t dropped = 0;
  // Trace-window stamp, written under events_mu by the start_tracing clear loop
  // (or at creation). A span whose B was admitted under an older stamp
  // skips its E — the B was cleared out from under it — and the decision
  // is made entirely inside this buffer's critical sections, so no global
  // ordering between start_tracing and in-flight spans can unbalance B/E.
  std::uint64_t generation = 0;
  bool retired = false;  // owning thread exited; safe to free on restart

  explicit TraceBuffer(int id) : tid(id) { events.reserve(kMaxEventsPerThread); }

  // Admission keeps one slot in reserve for every open span so an admitted
  // B is always guaranteed its balancing E, even at the capacity cliff.
  bool has_room() const {
    return events.size() + open_spans < kMaxEventsPerThread;
  }
};

struct TraceRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<TraceBuffer>> buffers;
  std::atomic<bool> active{false};
  // Bumped by every start_tracing; spans admitted under an older generation
  // skip their E (their B was cleared out from under them).
  std::atomic<std::uint64_t> generation{0};
  std::uint64_t epoch_ns = 0;
  int next_tid = 1;
};

// Leaked for the same teardown-ordering reason as the metrics registry.
TraceRegistry& trace_registry() {
  static TraceRegistry* r = new TraceRegistry();
  return *r;
}

// Buffer creation is deferred to the first admitted event: short-lived
// worker threads (the tree/chunked executors spawn a fresh pool per run)
// call set_thread_lane unconditionally, and eagerly allocating the
// kMaxEventsPerThread reservation for each would grow the registry by
// ~2 MB per thread per run in processes that never trace (a long-running
// service, for instance).
struct BufferOwner {
  TraceBuffer* buffer = nullptr;
  std::string pending_lane;

  TraceBuffer& get() {
    if (buffer == nullptr) {
      TraceRegistry& r = trace_registry();
      std::lock_guard<std::mutex> lock(r.mu);
      auto owned = std::make_unique<TraceBuffer>(r.next_tid++);
      owned->lane_name = pending_lane;
      owned->generation = r.generation.load(std::memory_order_relaxed);
      buffer = owned.get();
      r.buffers.push_back(std::move(owned));
    }
    return *buffer;
  }

  ~BufferOwner() {
    if (buffer == nullptr) return;
    TraceRegistry& r = trace_registry();
    std::lock_guard<std::mutex> lock(r.mu);
    if (buffer->events.empty()) {
      // Nothing to export: free the reservation now instead of holding it
      // until the next start_tracing (which may never come).
      for (auto it = r.buffers.begin(); it != r.buffers.end(); ++it) {
        if (it->get() == buffer) {
          r.buffers.erase(it);
          break;
        }
      }
    } else {
      // The registry keeps the events for export; just mark the buffer as
      // no longer owner-written so the next start_tracing may free it.
      buffer->retired = true;
    }
  }
};

BufferOwner& local_owner() {
  thread_local BufferOwner owner;
  return owner;
}

TraceBuffer& local_buffer() { return local_owner().get(); }

thread_local std::uint64_t t_trace_id = 0;

void append(char phase, const char* name, std::uint64_t value) {
  TraceBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.events_mu);
  if (!buf.has_room()) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(TraceEvent{name, now_ns(), value, 0, 0, phase});
}

void json_escape_into(std::string& out, const char* s) {
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void start_tracing() {
  TraceRegistry& r = trace_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const std::uint64_t gen =
      r.generation.fetch_add(1, std::memory_order_relaxed) + 1;
  // Free buffers whose threads are gone; reset the rest in place (their
  // owners hold stable pointers). Each clear + restamp happens under the
  // buffer's own mutex, pairing with the record paths.
  r.buffers.erase(std::remove_if(r.buffers.begin(), r.buffers.end(),
                                 [](const std::unique_ptr<TraceBuffer>& b) {
                                   return b->retired;
                                 }),
                  r.buffers.end());
  for (auto& buf : r.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->events_mu);
    buf->events.clear();
    buf->open_spans = 0;
    buf->dropped = 0;
    buf->generation = gen;
  }
  r.epoch_ns = now_ns();
  r.active.store(true, std::memory_order_release);
}

void stop_tracing() {
  trace_registry().active.store(false, std::memory_order_release);
}

bool tracing_active() {
  return trace_registry().active.load(std::memory_order_acquire);
}

void set_thread_lane(const std::string& name) {
  BufferOwner& owner = local_owner();
  if (owner.buffer == nullptr) {
    // No buffer yet — remember the name without allocating one; it is
    // applied if this thread ever records an event.
    owner.pending_lane = name;
    return;
  }
  TraceRegistry& r = trace_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  owner.buffer->lane_name = name;
}

void trace_instant(const char* name) {
  if (!tracing_active()) return;
  append('i', name, 0);
}

void trace_counter(const char* name, std::uint64_t value) {
  if (!tracing_active()) return;
  append('C', name, value);
}

void trace_complete(const char* name, std::uint64_t start_ns,
                    std::uint64_t end_ns, std::uint64_t trace_id) {
  if (!tracing_active()) return;
  TraceBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.events_mu);
  if (!buf.has_room()) {
    ++buf.dropped;
    return;
  }
  const std::uint64_t dur = end_ns > start_ns ? end_ns - start_ns : 0;
  buf.events.push_back(TraceEvent{name, start_ns, 0, trace_id, dur, 'X'});
}

std::uint64_t current_trace_id() { return t_trace_id; }

void set_trace_context(std::uint64_t trace_id) { t_trace_id = trace_id; }

TraceContext::TraceContext(std::uint64_t trace_id) : saved_(t_trace_id) {
  t_trace_id = trace_id;
}

TraceContext::~TraceContext() { t_trace_id = saved_; }

std::uint64_t trace_epoch_ns() {
  TraceRegistry& r = trace_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.epoch_ns;
}

TraceSpan::TraceSpan(const char* name) : name_(name), gen_(0), recorded_(false) {
  if (!tracing_active()) return;
  TraceBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.events_mu);
  if (!buf.has_room()) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(TraceEvent{name, now_ns(), 0, t_trace_id, 0, 'B'});
  ++buf.open_spans;
  gen_ = buf.generation;
  recorded_ = true;
}

TraceSpan::~TraceSpan() {
  if (!recorded_) return;
  // If a new trace began while this span was open, its B was cleared and
  // open_spans reset, so recording the E would land a stray pre-epoch event
  // and underflow the reservation count. Skip it instead. The stamp is
  // checked under the buffer mutex: a start_tracing clear either ran before
  // this E (restamped the buffer — mismatch, E skipped) or will run after
  // it (E appended, then wiped with its B), so B/E stay balanced under any
  // interleaving.
  TraceBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.events_mu);
  if (gen_ != buf.generation) return;
  // The matching E slot was reserved at admission; record it even if
  // tracing was stopped mid-span so the export stays balanced.
  buf.events.push_back(TraceEvent{name_, now_ns(), 0, 0, 0, 'E'});
  if (buf.open_spans > 0) --buf.open_spans;
}

std::string trace_to_json() {
  TraceRegistry& r = trace_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::string out;
  out.reserve(1u << 16);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"rqsim\"}}";
  char ts[48];
  for (const auto& buf : r.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->events_mu);
    std::string lane = buf->lane_name;
    if (lane.empty()) lane = "thread-" + std::to_string(buf->tid);
    const std::string tid = std::to_string(buf->tid);
    out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += tid;
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    json_escape_into(out, lane.c_str());
    out += "\"}}";
    out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += tid;
    out += ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":";
    out += tid;
    out += "}}";
    for (const TraceEvent& ev : buf->events) {
      if (ev.phase != 'B' && ev.phase != 'E' && ev.phase != 'i' &&
          ev.phase != 'C' && ev.phase != 'X') {
        continue;
      }
      // Timestamps are microseconds in this format; keep ns resolution with
      // three decimals. Events recorded before start_tracing's epoch (stale
      // lanes, or an X span whose start predates the epoch) clamp to 0.
      const std::uint64_t rel =
          ev.ts_ns > r.epoch_ns ? ev.ts_ns - r.epoch_ns : 0;
      std::snprintf(ts, sizeof ts, "%llu.%03u",
                    static_cast<unsigned long long>(rel / 1000),
                    static_cast<unsigned>(rel % 1000));
      // Names go through json_escape_into (no fixed-size formatting buffer)
      // so arbitrarily long names or embedded quotes cannot truncate or
      // break the JSON structure.
      out += ",\n{\"ph\":\"";
      out += ev.phase;
      out += "\",\"pid\":1,\"tid\":";
      out += tid;
      out += ",\"ts\":";
      out += ts;
      if (ev.phase == 'X') {
        std::snprintf(ts, sizeof ts, "%llu.%03u",
                      static_cast<unsigned long long>(ev.dur_ns / 1000),
                      static_cast<unsigned>(ev.dur_ns % 1000));
        out += ",\"dur\":";
        out += ts;
      }
      if (ev.phase == 'i') out += ",\"s\":\"t\"";
      out += ",\"name\":\"";
      json_escape_into(out, ev.name);
      out += "\"";
      if (ev.phase == 'C') {
        out += ",\"args\":{\"value\":";
        out += std::to_string(ev.value);
        out += "}";
      } else if (ev.trace_id != 0) {
        out += ",\"args\":{\"trace_id\":\"";
        out += trace_id_to_hex(ev.trace_id);
        out += "\"}";
      }
      out += "}";
    }
  }
  out += "\n]}\n";
  return out;
}

long export_trace(const std::string& path) {
  const std::string json = trace_to_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return -1;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  if (!ok) return -1;
  TraceRegistry& r = trace_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  long events = 0;
  for (const auto& buf : r.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->events_mu);
    events += static_cast<long>(buf->events.size());
  }
  return events;
}

std::uint64_t trace_dropped_events() {
  TraceRegistry& r = trace_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::uint64_t total = 0;
  for (const auto& buf : r.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->events_mu);
    total += buf->dropped;
  }
  return total;
}

std::size_t trace_thread_buffers() {
  TraceRegistry& r = trace_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.buffers.size();
}

}  // namespace rqsim::telemetry

#endif  // !RQSIM_TELEMETRY_OFF
