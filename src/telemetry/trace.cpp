#include "telemetry/trace.hpp"

#if !defined(RQSIM_TELEMETRY_OFF)

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "telemetry/clock.hpp"

namespace rqsim::telemetry {
namespace {

struct TraceEvent {
  const char* name;
  std::uint64_t ts_ns;
  std::uint64_t value;  // 'C' events only
  char phase;           // 'B', 'E', 'i', 'C'
};

struct TraceBuffer {
  std::vector<TraceEvent> events;
  std::string lane_name;
  int tid = 0;
  std::size_t open_spans = 0;  // admitted Bs awaiting their E
  std::uint64_t dropped = 0;
  bool retired = false;  // owning thread exited; safe to free on restart

  explicit TraceBuffer(int id) : tid(id) { events.reserve(kMaxEventsPerThread); }

  // Admission keeps one slot in reserve for every open span so an admitted
  // B is always guaranteed its balancing E, even at the capacity cliff.
  bool has_room() const {
    return events.size() + open_spans < kMaxEventsPerThread;
  }
};

struct TraceRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<TraceBuffer>> buffers;
  std::atomic<bool> active{false};
  std::uint64_t epoch_ns = 0;
  int next_tid = 1;
};

// Leaked for the same teardown-ordering reason as the metrics registry.
TraceRegistry& trace_registry() {
  static TraceRegistry* r = new TraceRegistry();
  return *r;
}

struct BufferOwner {
  TraceBuffer* buffer;

  BufferOwner() {
    TraceRegistry& r = trace_registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto owned = std::make_unique<TraceBuffer>(r.next_tid++);
    buffer = owned.get();
    r.buffers.push_back(std::move(owned));
  }

  ~BufferOwner() {
    // The registry keeps the events for export; just mark the buffer as no
    // longer owner-written so the next start_tracing may free it.
    TraceRegistry& r = trace_registry();
    std::lock_guard<std::mutex> lock(r.mu);
    buffer->retired = true;
  }
};

TraceBuffer& local_buffer() {
  thread_local BufferOwner owner;
  return *owner.buffer;
}

void append(char phase, const char* name, std::uint64_t value) {
  TraceBuffer& buf = local_buffer();
  if (!buf.has_room()) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(TraceEvent{name, now_ns(), value, phase});
}

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void start_tracing() {
  TraceRegistry& r = trace_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  // Free buffers whose threads are gone; reset the rest in place (their
  // owners hold stable pointers).
  r.buffers.erase(std::remove_if(r.buffers.begin(), r.buffers.end(),
                                 [](const std::unique_ptr<TraceBuffer>& b) {
                                   return b->retired;
                                 }),
                  r.buffers.end());
  for (auto& buf : r.buffers) {
    buf->events.clear();
    buf->open_spans = 0;
    buf->dropped = 0;
  }
  r.epoch_ns = now_ns();
  r.active.store(true, std::memory_order_release);
}

void stop_tracing() {
  trace_registry().active.store(false, std::memory_order_release);
}

bool tracing_active() {
  return trace_registry().active.load(std::memory_order_acquire);
}

void set_thread_lane(const std::string& name) {
  TraceBuffer& buf = local_buffer();
  TraceRegistry& r = trace_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  buf.lane_name = name;
}

void trace_instant(const char* name) {
  if (!tracing_active()) return;
  append('i', name, 0);
}

void trace_counter(const char* name, std::uint64_t value) {
  if (!tracing_active()) return;
  append('C', name, value);
}

TraceSpan::TraceSpan(const char* name) : name_(name), recorded_(false) {
  if (!tracing_active()) return;
  TraceBuffer& buf = local_buffer();
  if (!buf.has_room()) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(TraceEvent{name, now_ns(), 0, 'B'});
  ++buf.open_spans;
  recorded_ = true;
}

TraceSpan::~TraceSpan() {
  if (!recorded_) return;
  // The matching E slot was reserved at admission; record it even if
  // tracing was stopped mid-span so the export stays balanced.
  TraceBuffer& buf = local_buffer();
  buf.events.push_back(TraceEvent{name_, now_ns(), 0, 'E'});
  --buf.open_spans;
}

std::string trace_to_json() {
  TraceRegistry& r = trace_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::string out;
  out.reserve(1u << 16);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"rqsim\"}}";
  char line[256];
  for (const auto& buf : r.buffers) {
    std::string lane = buf->lane_name;
    if (lane.empty()) lane = "thread-" + std::to_string(buf->tid);
    out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(buf->tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    json_escape_into(out, lane);
    out += "\"}}";
    out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(buf->tid);
    out += ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":";
    out += std::to_string(buf->tid);
    out += "}}";
    for (const TraceEvent& ev : buf->events) {
      // Timestamps are microseconds in this format; keep ns resolution with
      // three decimals. Events recorded before start_tracing's epoch (stale
      // lanes) clamp to 0.
      const std::uint64_t rel =
          ev.ts_ns > r.epoch_ns ? ev.ts_ns - r.epoch_ns : 0;
      const unsigned long long us = rel / 1000;
      const unsigned frac = static_cast<unsigned>(rel % 1000);
      switch (ev.phase) {
        case 'B':
        case 'E':
          std::snprintf(line, sizeof line,
                        ",\n{\"ph\":\"%c\",\"pid\":1,\"tid\":%d,"
                        "\"ts\":%llu.%03u,\"name\":\"%s\"}",
                        ev.phase, buf->tid, us, frac, ev.name);
          break;
        case 'i':
          std::snprintf(line, sizeof line,
                        ",\n{\"ph\":\"i\",\"pid\":1,\"tid\":%d,"
                        "\"ts\":%llu.%03u,\"s\":\"t\",\"name\":\"%s\"}",
                        buf->tid, us, frac, ev.name);
          break;
        case 'C':
          std::snprintf(line, sizeof line,
                        ",\n{\"ph\":\"C\",\"pid\":1,\"tid\":%d,"
                        "\"ts\":%llu.%03u,\"name\":\"%s\","
                        "\"args\":{\"value\":%llu}}",
                        buf->tid, us, frac, ev.name,
                        static_cast<unsigned long long>(ev.value));
          break;
        default:
          continue;
      }
      out += line;
    }
  }
  out += "\n]}\n";
  return out;
}

long export_trace(const std::string& path) {
  const std::string json = trace_to_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return -1;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  if (!ok) return -1;
  TraceRegistry& r = trace_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  long events = 0;
  for (const auto& buf : r.buffers) {
    events += static_cast<long>(buf->events.size());
  }
  return events;
}

std::uint64_t trace_dropped_events() {
  TraceRegistry& r = trace_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::uint64_t total = 0;
  for (const auto& buf : r.buffers) total += buf->dropped;
  return total;
}

}  // namespace rqsim::telemetry

#endif  // !RQSIM_TELEMETRY_OFF
