#include "noise/devices.hpp"

namespace rqsim {

DeviceModel yorktown_device() {
  DeviceModel dev;
  dev.name = "ibmq_yorktown";
  dev.coupling = CouplingMap::yorktown();
  // Paper Fig. 4 calibration data.
  dev.noise = NoiseModel::per_qubit(
      /*single_rates=*/{1.37e-3, 1.37e-3, 2.23e-3, 1.72e-3, 0.94e-3},
      /*meas_rates=*/{2.40e-2, 2.60e-2, 3.00e-2, 2.20e-2, 4.50e-2});
  // Two-qubit (CNOT) error per coupling edge, in the edge order of
  // CouplingMap::yorktown(): 0-1, 0-2, 1-2, 2-3, 2-4, 3-4.
  const double edge_rates[6] = {2.72e-2, 3.77e-2, 4.18e-2, 3.97e-2, 3.62e-2, 3.51e-2};
  const auto& edges = dev.coupling.edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    dev.noise.set_two_qubit_rate(edges[i].first, edges[i].second, edge_rates[i]);
  }
  return dev;
}

DeviceModel artificial_device(unsigned num_qubits, double single_rate) {
  DeviceModel dev;
  dev.name = "artificial_n" + std::to_string(num_qubits);
  dev.coupling = CouplingMap::all_to_all(num_qubits);
  dev.noise = NoiseModel::uniform(num_qubits, single_rate, 10.0 * single_rate,
                                  10.0 * single_rate);
  return dev;
}

DeviceModel ideal_device(unsigned num_qubits) {
  DeviceModel dev;
  dev.name = "ideal_n" + std::to_string(num_qubits);
  dev.coupling = CouplingMap::all_to_all(num_qubits);
  dev.noise = NoiseModel::uniform(num_qubits, 0.0, 0.0, 0.0);
  return dev;
}

}  // namespace rqsim
