// Error model: symmetric depolarizing gate noise plus classical measurement
// bit flips (paper Section III.B).
//
// - After every single-qubit gate on qubit q, with probability e1(q) an
//   error operator drawn uniformly from {X, Y, Z} is injected on q.
// - After every two-qubit gate on (a, b), with probability e2(a, b) an
//   error operator drawn uniformly from the 15 non-identity two-qubit
//   Paulis is injected on (a, b).
// - Each measured qubit's classical result bit is flipped with
//   probability em(q).
// - Optionally, *idle* noise ("decaying ... or interacting with the
//   environment can happen without an operation" — paper Section III.B.1):
//   at the end of every layer each qubit independently suffers a uniform
//   Pauli error with probability eidle(q) (a stochastic-Pauli/twirled
//   approximation of T1/T2 decay, which keeps every injected operator
//   unitary and therefore cacheable).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace rqsim {

class NoiseModel {
 public:
  NoiseModel() = default;

  /// Uniform rates on all qubits/pairs.
  static NoiseModel uniform(unsigned num_qubits, double single_rate, double two_rate,
                            double meas_rate);

  /// Per-qubit single/measurement rates; `two_rates` holds one entry per
  /// coupling edge, addressed through set_two_qubit_rate.
  static NoiseModel per_qubit(std::vector<double> single_rates,
                              std::vector<double> meas_rates);

  unsigned num_qubits() const { return num_qubits_; }

  void set_two_qubit_rate(qubit_t a, qubit_t b, double rate);

  /// Total depolarizing probability after a single-qubit gate on q.
  double single_qubit_rate(qubit_t q) const;

  /// Total depolarizing probability after a two-qubit gate on (a, b).
  /// Falls back to the uniform two-qubit rate when no pair-specific rate
  /// was registered.
  double two_qubit_rate(qubit_t a, qubit_t b) const;

  /// Classical flip probability of the measured bit of q.
  double measurement_flip_rate(qubit_t q) const;

  /// Per-layer idle Pauli error probability of q (0 unless configured).
  double idle_pauli_rate(qubit_t q) const;

  /// Relative X/Y/Z weights used when a single-qubit gate error fires on q
  /// (default 1:1:1 — the symmetric depolarizing channel). The paper's
  /// error model explicitly allows per-operator probabilities; biasing
  /// toward Z models dephasing-dominant hardware.
  void set_single_pauli_weights(qubit_t q, double wx, double wy, double wz);
  std::array<double, 3> single_pauli_weights(qubit_t q) const;  // normalized

  /// Same bias for the idle channel.
  void set_idle_pauli_weights(qubit_t q, double wx, double wy, double wz);
  std::array<double, 3> idle_pauli_weights(qubit_t q) const;  // normalized

  /// Set one qubit's idle rate, or the same rate on every qubit.
  void set_idle_rate(qubit_t q, double rate);
  void set_uniform_idle_rate(double rate);

  /// True if any qubit has a nonzero idle rate.
  bool has_idle_noise() const;

  /// Scale every rate by `factor` (used for error-rate sweeps).
  NoiseModel scaled(double factor) const;

  /// True when all rates are zero (noise disabled).
  bool is_noiseless() const;

  /// True when every error operator this model can inject into the
  /// simulation is a Pauli (measurement flips are classical and don't
  /// count). All channels above — depolarizing, biased-Pauli, idle Pauli —
  /// qualify, so today this is unconditionally true; it is the contract
  /// the Pauli-frame collapse pass (trial/frame.hpp, ScheduleOptions::
  /// frame_collapse) relies on, and the gate a future non-Pauli channel
  /// (amplitude damping as Kraus operators, coherent overrotation) must
  /// turn off.
  bool all_channels_pauli() const { return true; }

 private:
  static void check_rate(double rate);

  unsigned num_qubits_ = 0;
  double uniform_two_rate_ = 0.0;
  std::vector<double> single_rates_;
  std::vector<double> meas_rates_;
  std::vector<double> idle_rates_;  // empty = all zero
  // Unnormalized per-qubit Pauli weights; empty = uniform.
  std::vector<std::array<double, 3>> single_weights_;
  std::vector<std::array<double, 3>> idle_weights_;
  // Symmetric pair rates, flattened upper triangle; negative = unset.
  std::vector<double> pair_rates_;

  std::size_t pair_index(qubit_t a, qubit_t b) const;
};

}  // namespace rqsim
