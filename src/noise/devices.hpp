// Device models: coupling map + calibrated noise model.
#pragma once

#include <string>

#include "noise/noise_model.hpp"
#include "transpile/coupling.hpp"

namespace rqsim {

struct DeviceModel {
  std::string name;
  CouplingMap coupling;
  NoiseModel noise;
};

/// IBM 5-qubit Yorktown (ibmqx2) with the calibration of the paper's Fig. 4:
/// single-qubit gate errors ~1e-3 per qubit, two-qubit gate errors ~3e-2 per
/// edge of the bow-tie coupling graph, measurement errors ~3e-2.
DeviceModel yorktown_device();

/// Artificial future device used by the scalability study (Section V.B):
/// all-to-all coupling, uniform rates, two-qubit and measurement error rates
/// fixed at 10x the single-qubit rate.
DeviceModel artificial_device(unsigned num_qubits, double single_rate);

/// A noiseless device of the given size (useful for testing).
DeviceModel ideal_device(unsigned num_qubits);

}  // namespace rqsim
