// Device calibration import: build a DeviceModel from the kind of CSV a
// provider's calibration dashboard exports (per-qubit gate/readout errors
// plus per-edge CNOT errors). Gives users a path from their own device
// data into the simulator without writing C++.
//
// Format (header required, '#' comments and blank lines ignored):
//
//   # qubit rows:  qubit,<index>,<1q error>,<readout error>[,<idle rate>]
//   # edge rows:   edge,<a>,<b>,<2q error>
//   qubit,0,1.4e-3,2.1e-2
//   qubit,1,1.2e-3,1.9e-2,5e-4
//   edge,0,1,3.1e-2
#pragma once

#include <string>

#include "noise/devices.hpp"

namespace rqsim {

/// Parse calibration CSV text into a device model (coupling map from the
/// edge rows; undirected). Throws rqsim::Error with a line number on any
/// malformed row.
DeviceModel device_from_calibration_csv(const std::string& text,
                                        const std::string& name = "calibrated");

/// Load from a file path.
DeviceModel load_calibration_csv(const std::string& path);

/// Serialize a device model back to the same CSV format.
std::string device_to_calibration_csv(const DeviceModel& device);

}  // namespace rqsim
