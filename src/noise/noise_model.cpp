#include "noise/noise_model.hpp"

#include <algorithm>

namespace rqsim {

void NoiseModel::check_rate(double rate) {
  RQSIM_CHECK(rate >= 0.0 && rate <= 1.0, "NoiseModel: rate must be in [0, 1]");
}

NoiseModel NoiseModel::uniform(unsigned num_qubits, double single_rate, double two_rate,
                               double meas_rate) {
  check_rate(single_rate);
  check_rate(two_rate);
  check_rate(meas_rate);
  NoiseModel m;
  m.num_qubits_ = num_qubits;
  m.uniform_two_rate_ = two_rate;
  m.single_rates_.assign(num_qubits, single_rate);
  m.meas_rates_.assign(num_qubits, meas_rate);
  m.pair_rates_.assign(static_cast<std::size_t>(num_qubits) * num_qubits, -1.0);
  return m;
}

NoiseModel NoiseModel::per_qubit(std::vector<double> single_rates,
                                 std::vector<double> meas_rates) {
  RQSIM_CHECK(single_rates.size() == meas_rates.size(),
              "NoiseModel::per_qubit: size mismatch");
  for (double r : single_rates) {
    check_rate(r);
  }
  for (double r : meas_rates) {
    check_rate(r);
  }
  NoiseModel m;
  m.num_qubits_ = static_cast<unsigned>(single_rates.size());
  m.single_rates_ = std::move(single_rates);
  m.meas_rates_ = std::move(meas_rates);
  m.pair_rates_.assign(static_cast<std::size_t>(m.num_qubits_) * m.num_qubits_, -1.0);
  return m;
}

std::size_t NoiseModel::pair_index(qubit_t a, qubit_t b) const {
  if (a > b) {
    std::swap(a, b);
  }
  return static_cast<std::size_t>(a) * num_qubits_ + b;
}

void NoiseModel::set_two_qubit_rate(qubit_t a, qubit_t b, double rate) {
  RQSIM_CHECK(a < num_qubits_ && b < num_qubits_ && a != b,
              "NoiseModel::set_two_qubit_rate: bad qubits");
  check_rate(rate);
  pair_rates_[pair_index(a, b)] = rate;
}

double NoiseModel::single_qubit_rate(qubit_t q) const {
  RQSIM_CHECK(q < num_qubits_, "NoiseModel::single_qubit_rate: qubit out of range");
  return single_rates_[q];
}

double NoiseModel::two_qubit_rate(qubit_t a, qubit_t b) const {
  RQSIM_CHECK(a < num_qubits_ && b < num_qubits_ && a != b,
              "NoiseModel::two_qubit_rate: bad qubits");
  const double specific = pair_rates_[pair_index(a, b)];
  return specific >= 0.0 ? specific : uniform_two_rate_;
}

double NoiseModel::measurement_flip_rate(qubit_t q) const {
  RQSIM_CHECK(q < num_qubits_, "NoiseModel::measurement_flip_rate: qubit out of range");
  return meas_rates_[q];
}

double NoiseModel::idle_pauli_rate(qubit_t q) const {
  RQSIM_CHECK(q < num_qubits_, "NoiseModel::idle_pauli_rate: qubit out of range");
  return idle_rates_.empty() ? 0.0 : idle_rates_[q];
}

void NoiseModel::set_idle_rate(qubit_t q, double rate) {
  RQSIM_CHECK(q < num_qubits_, "NoiseModel::set_idle_rate: qubit out of range");
  check_rate(rate);
  if (idle_rates_.empty()) {
    idle_rates_.assign(num_qubits_, 0.0);
  }
  idle_rates_[q] = rate;
}

void NoiseModel::set_uniform_idle_rate(double rate) {
  check_rate(rate);
  idle_rates_.assign(num_qubits_, rate);
}

namespace {

std::array<double, 3> normalize_weights(double wx, double wy, double wz) {
  RQSIM_CHECK(wx >= 0.0 && wy >= 0.0 && wz >= 0.0,
              "NoiseModel: Pauli weights must be non-negative");
  const double total = wx + wy + wz;
  RQSIM_CHECK(total > 0.0, "NoiseModel: Pauli weights must not all be zero");
  return {wx / total, wy / total, wz / total};
}

}  // namespace

void NoiseModel::set_single_pauli_weights(qubit_t q, double wx, double wy, double wz) {
  RQSIM_CHECK(q < num_qubits_, "NoiseModel::set_single_pauli_weights: qubit out of range");
  if (single_weights_.empty()) {
    single_weights_.assign(num_qubits_, {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0});
  }
  single_weights_[q] = normalize_weights(wx, wy, wz);
}

std::array<double, 3> NoiseModel::single_pauli_weights(qubit_t q) const {
  RQSIM_CHECK(q < num_qubits_, "NoiseModel::single_pauli_weights: qubit out of range");
  if (single_weights_.empty()) {
    return {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0};
  }
  return single_weights_[q];
}

void NoiseModel::set_idle_pauli_weights(qubit_t q, double wx, double wy, double wz) {
  RQSIM_CHECK(q < num_qubits_, "NoiseModel::set_idle_pauli_weights: qubit out of range");
  if (idle_weights_.empty()) {
    idle_weights_.assign(num_qubits_, {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0});
  }
  idle_weights_[q] = normalize_weights(wx, wy, wz);
}

std::array<double, 3> NoiseModel::idle_pauli_weights(qubit_t q) const {
  RQSIM_CHECK(q < num_qubits_, "NoiseModel::idle_pauli_weights: qubit out of range");
  if (idle_weights_.empty()) {
    return {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0};
  }
  return idle_weights_[q];
}

bool NoiseModel::has_idle_noise() const {
  return std::any_of(idle_rates_.begin(), idle_rates_.end(),
                     [](double r) { return r > 0.0; });
}

NoiseModel NoiseModel::scaled(double factor) const {
  RQSIM_CHECK(factor >= 0.0, "NoiseModel::scaled: factor must be non-negative");
  NoiseModel out = *this;
  auto scale = [factor](double r) {
    const double s = r * factor;
    RQSIM_CHECK(s <= 1.0, "NoiseModel::scaled: scaled rate exceeds 1");
    return s;
  };
  for (double& r : out.single_rates_) {
    r = scale(r);
  }
  for (double& r : out.meas_rates_) {
    r = scale(r);
  }
  for (double& r : out.idle_rates_) {
    r = scale(r);
  }
  for (double& r : out.pair_rates_) {
    if (r >= 0.0) {
      r = scale(r);
    }
  }
  out.uniform_two_rate_ = scale(uniform_two_rate_);
  return out;
}

bool NoiseModel::is_noiseless() const {
  const bool singles_zero =
      std::all_of(single_rates_.begin(), single_rates_.end(), [](double r) { return r == 0.0; });
  const bool meas_zero =
      std::all_of(meas_rates_.begin(), meas_rates_.end(), [](double r) { return r == 0.0; });
  const bool pairs_zero = std::all_of(pair_rates_.begin(), pair_rates_.end(),
                                      [](double r) { return r <= 0.0; });
  return singles_zero && meas_zero && pairs_zero && uniform_two_rate_ == 0.0 &&
         !has_idle_noise();
}

}  // namespace rqsim
