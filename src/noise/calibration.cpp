#include "noise/calibration.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace rqsim {

namespace {

double parse_rate(const std::string& field, int line_no) {
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  RQSIM_CHECK(end != nullptr && *end == '\0',
              "calibration: bad number '" + field + "' at line " + std::to_string(line_no));
  RQSIM_CHECK(value >= 0.0 && value <= 1.0,
              "calibration: rate out of [0,1] at line " + std::to_string(line_no));
  return value;
}

unsigned parse_index(const std::string& field, int line_no) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(field.c_str(), &end, 10);
  RQSIM_CHECK(end != nullptr && *end == '\0',
              "calibration: bad index '" + field + "' at line " + std::to_string(line_no));
  return static_cast<unsigned>(value);
}

}  // namespace

DeviceModel device_from_calibration_csv(const std::string& text,
                                        const std::string& name) {
  struct QubitRow {
    double single = 0.0;
    double readout = 0.0;
    double idle = 0.0;
  };
  std::map<unsigned, QubitRow> qubits;
  struct EdgeRow {
    unsigned a = 0;
    unsigned b = 0;
    double rate = 0.0;
  };
  std::vector<EdgeRow> edge_rows;

  int line_no = 0;
  for (const std::string& raw : split(text, '\n')) {
    ++line_no;
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const std::vector<std::string> fields = split(line, ',');
    const std::string kind = trim(fields[0]);
    if (kind == "qubit") {
      RQSIM_CHECK(fields.size() == 4 || fields.size() == 5,
                  "calibration: qubit row needs 4-5 fields at line " +
                      std::to_string(line_no));
      const unsigned index = parse_index(trim(fields[1]), line_no);
      RQSIM_CHECK(qubits.count(index) == 0,
                  "calibration: duplicate qubit " + std::to_string(index) +
                      " at line " + std::to_string(line_no));
      QubitRow row;
      row.single = parse_rate(trim(fields[2]), line_no);
      row.readout = parse_rate(trim(fields[3]), line_no);
      if (fields.size() == 5) {
        row.idle = parse_rate(trim(fields[4]), line_no);
      }
      qubits[index] = row;
    } else if (kind == "edge") {
      RQSIM_CHECK(fields.size() == 4,
                  "calibration: edge row needs 4 fields at line " + std::to_string(line_no));
      EdgeRow row;
      row.a = parse_index(trim(fields[1]), line_no);
      row.b = parse_index(trim(fields[2]), line_no);
      row.rate = parse_rate(trim(fields[3]), line_no);
      RQSIM_CHECK(row.a != row.b,
                  "calibration: self-loop edge at line " + std::to_string(line_no));
      edge_rows.push_back(row);
    } else {
      RQSIM_CHECK(false, "calibration: unknown row kind '" + kind + "' at line " +
                             std::to_string(line_no));
    }
  }
  RQSIM_CHECK(!qubits.empty(), "calibration: no qubit rows");
  // Qubit indices must be contiguous from 0.
  const unsigned n = static_cast<unsigned>(qubits.size());
  std::vector<double> single_rates(n);
  std::vector<double> meas_rates(n);
  std::vector<double> idle_rates(n);
  for (unsigned q = 0; q < n; ++q) {
    const auto it = qubits.find(q);
    RQSIM_CHECK(it != qubits.end(),
                "calibration: qubit indices must be contiguous from 0 (missing " +
                    std::to_string(q) + ")");
    single_rates[q] = it->second.single;
    meas_rates[q] = it->second.readout;
    idle_rates[q] = it->second.idle;
  }

  DeviceModel dev;
  dev.name = name;
  std::vector<std::pair<qubit_t, qubit_t>> edges;
  edges.reserve(edge_rows.size());
  for (const EdgeRow& row : edge_rows) {
    RQSIM_CHECK(row.a < n && row.b < n, "calibration: edge references unknown qubit");
    edges.emplace_back(row.a, row.b);
  }
  dev.coupling = CouplingMap(n, std::move(edges));
  dev.noise = NoiseModel::per_qubit(std::move(single_rates), std::move(meas_rates));
  for (const EdgeRow& row : edge_rows) {
    dev.noise.set_two_qubit_rate(row.a, row.b, row.rate);
  }
  for (unsigned q = 0; q < n; ++q) {
    if (idle_rates[q] > 0.0) {
      dev.noise.set_idle_rate(q, idle_rates[q]);
    }
  }
  return dev;
}

DeviceModel load_calibration_csv(const std::string& path) {
  std::ifstream file(path);
  RQSIM_CHECK(file.good(), "load_calibration_csv: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return device_from_calibration_csv(buffer.str(), path);
}

std::string device_to_calibration_csv(const DeviceModel& device) {
  std::ostringstream os;
  os << "# rqsim device calibration: " << device.name << "\n";
  os << "# qubit,<index>,<1q error>,<readout error>[,<idle rate>]\n";
  os.precision(12);
  for (qubit_t q = 0; q < device.noise.num_qubits(); ++q) {
    os << "qubit," << q << "," << device.noise.single_qubit_rate(q) << ","
       << device.noise.measurement_flip_rate(q);
    if (device.noise.idle_pauli_rate(q) > 0.0) {
      os << "," << device.noise.idle_pauli_rate(q);
    }
    os << "\n";
  }
  os << "# edge,<a>,<b>,<2q error>\n";
  for (const auto& [a, b] : device.coupling.edges()) {
    os << "edge," << a << "," << b << "," << device.noise.two_qubit_rate(a, b) << "\n";
  }
  return os.str();
}

}  // namespace rqsim
