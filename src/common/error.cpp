#include "common/error.hpp"

#include <sstream>

namespace rqsim {

void raise_error(const char* file, int line, const std::string& message) {
  std::ostringstream os;
  os << message << " (" << file << ":" << line << ")";
  throw Error(os.str());
}

}  // namespace rqsim
