// Fundamental scalar/alias types shared across the rqsim library.
#pragma once

#include <complex>
#include <cstdint>

namespace rqsim {

/// Complex amplitude type used throughout the simulator.
using cplx = std::complex<double>;

/// Qubit index within a circuit or device (0-based).
using qubit_t = std::uint32_t;

/// Index of a gate within a circuit's gate list.
using gate_index_t = std::uint32_t;

/// Index of a layer produced by ASAP layering.
using layer_index_t = std::uint32_t;

/// Index of a Monte Carlo trial.
using trial_index_t = std::uint64_t;

/// Count of basic operations (matrix-vector multiplications).
using opcount_t = std::uint64_t;

inline constexpr double kPi = 3.141592653589793238462643383279502884;

}  // namespace rqsim
