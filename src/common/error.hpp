// Error handling: a library-specific exception plus check macros.
//
// Following the C++ Core Guidelines (E.2, I.5) we throw on precondition
// violations with enough context to diagnose the call site.
#pragma once

#include <stdexcept>
#include <string>

namespace rqsim {

/// Exception thrown on any rqsim precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void raise_error(const char* file, int line, const std::string& message);

}  // namespace rqsim

/// Check a precondition/invariant; throws rqsim::Error with location info.
#define RQSIM_CHECK(cond, message)                                  \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::rqsim::raise_error(__FILE__, __LINE__, (message));          \
    }                                                               \
  } while (false)
