// Deterministic pseudo-random number generation.
//
// Every stochastic component in rqsim (trial generation, measurement
// sampling, random circuit construction) takes an explicit Rng so that
// experiments are reproducible bit-for-bit from a seed. The generator is
// xoshiro256++ seeded through SplitMix64, implemented here so the library
// has no dependence on the (implementation-defined) std distributions.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace rqsim {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ generator with convenience sampling methods.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Satisfy UniformRandomBitGenerator so Rng works with std algorithms.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) — n must be > 0. Uses Lemire rejection.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Sample an index from unnormalized non-negative weights.
  std::size_t discrete(const std::vector<double>& weights);

  /// Standard normal via Box-Muller (used by random-unitary generation).
  double normal();

  /// Derive an independent child generator (for parallel streams).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace rqsim
