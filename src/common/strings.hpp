// Small string/format helpers shared by the QASM writer and result tables.
#pragma once

#include <string>
#include <vector>

namespace rqsim {

/// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> split(const std::string& text, char sep);

/// Strip ASCII whitespace from both ends.
std::string trim(const std::string& text);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Format a double with fixed precision (locale-independent).
std::string format_double(double value, int precision);

/// True if `text` starts with `prefix`.
bool starts_with(const std::string& text, const std::string& prefix);

}  // namespace rqsim
