#include "common/bits.hpp"

#include "common/error.hpp"

namespace rqsim {

std::string to_bitstring(std::uint64_t x, unsigned n) {
  std::string out(n, '0');
  for (unsigned i = 0; i < n; ++i) {
    if (get_bit(x, n - 1 - i)) {
      out[i] = '1';
    }
  }
  return out;
}

std::uint64_t from_bitstring(const std::string& bits) {
  std::uint64_t x = 0;
  for (char c : bits) {
    RQSIM_CHECK(c == '0' || c == '1', "from_bitstring: invalid character");
    x = (x << 1) | static_cast<std::uint64_t>(c - '0');
  }
  return x;
}

}  // namespace rqsim
