// Bit-manipulation helpers used by the statevector gate kernels.
#pragma once

#include <cstdint>
#include <string>

namespace rqsim {

/// 2^n as a 64-bit size.
constexpr std::uint64_t pow2(unsigned n) { return std::uint64_t{1} << n; }

/// Extract bit `b` of `x`.
constexpr unsigned get_bit(std::uint64_t x, unsigned b) {
  return static_cast<unsigned>((x >> b) & 1U);
}

/// Set bit `b` of `x` to `v` (v in {0,1}).
constexpr std::uint64_t set_bit(std::uint64_t x, unsigned b, unsigned v) {
  return (x & ~(std::uint64_t{1} << b)) | (static_cast<std::uint64_t>(v & 1U) << b);
}

/// Flip bit `b` of `x`.
constexpr std::uint64_t flip_bit(std::uint64_t x, unsigned b) {
  return x ^ (std::uint64_t{1} << b);
}

/// Insert a zero bit at position `b`, shifting higher bits left.
/// Maps a (n-1)-bit index to an n-bit index whose bit b is 0 — the core
/// index transform for single-qubit gate kernels.
constexpr std::uint64_t insert_zero_bit(std::uint64_t x, unsigned b) {
  const std::uint64_t low_mask = (std::uint64_t{1} << b) - 1;
  return ((x & ~low_mask) << 1) | (x & low_mask);
}

/// Insert two zero bits at positions b_low < b_high (positions in the
/// *output* index). Used by two-qubit gate kernels.
constexpr std::uint64_t insert_two_zero_bits(std::uint64_t x, unsigned b_low, unsigned b_high) {
  return insert_zero_bit(insert_zero_bit(x, b_low), b_high);
}

/// Insert three zero bits at positions b0 < b1 < b2 (positions in the
/// *output* index). Used by the Toffoli kernel.
constexpr std::uint64_t insert_three_zero_bits(std::uint64_t x, unsigned b0, unsigned b1,
                                               unsigned b2) {
  return insert_zero_bit(insert_two_zero_bits(x, b0, b1), b2);
}

/// Render the low `n` bits of `x` as a bitstring, most-significant first.
std::string to_bitstring(std::uint64_t x, unsigned n);

/// Parse a bitstring (most-significant first) into an integer.
std::uint64_t from_bitstring(const std::string& bits);

}  // namespace rqsim
