#include "common/strings.hpp"

#include <cctype>
#include <sstream>

namespace rqsim {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() && text.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace rqsim
