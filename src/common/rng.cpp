#include "common/rng.hpp"

#include <cmath>

#include "common/types.hpp"

namespace rqsim {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) {
    word = sm.next();
  }
  // xoshiro state must not be all zero; SplitMix64 never yields four zero
  // outputs in a row, but guard anyway for safety.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) {
    s_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  RQSIM_CHECK(lo <= hi, "uniform(lo, hi): lo must be <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  RQSIM_CHECK(n > 0, "uniform_int: n must be positive");
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0ULL - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) {
  RQSIM_CHECK(p >= 0.0 && p <= 1.0, "bernoulli: p must be in [0, 1]");
  return uniform() < p;
}

std::size_t Rng::discrete(const std::vector<double>& weights) {
  RQSIM_CHECK(!weights.empty(), "discrete: weights must be non-empty");
  double total = 0.0;
  for (double w : weights) {
    RQSIM_CHECK(w >= 0.0, "discrete: weights must be non-negative");
    total += w;
  }
  RQSIM_CHECK(total > 0.0, "discrete: total weight must be positive");
  double r = uniform() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    if (r < weights[i]) {
      return i;
    }
    r -= weights[i];
  }
  return weights.size() - 1;
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform.
  double u1 = uniform();
  while (u1 <= 0.0) {
    u1 = uniform();
  }
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * kPi * u2;
  cached_normal_ = radius * std::sin(angle);
  have_cached_normal_ = true;
  return radius * std::cos(angle);
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace rqsim
