#pragma once

// Build identity reported by the `stats` verb and the router's fleet view.
// A plain constant (not a configure-time stamp) so builds stay reproducible
// and tests can assert an exact value.

namespace rqsim {

inline constexpr const char* kVersion = "0.10.0";

}  // namespace rqsim
