#include "sched/compact.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rqsim {

CompressedState CompressedState::compress(const StateVector& state) {
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < state.dim(); ++i) {
    if (state[i] != cplx(0.0)) {
      ++nnz;
    }
  }
  CompressedState out;
  // Sparse pays 24 bytes/entry (8 index + 16 amplitude) vs 16 dense; it
  // wins below 2/3 density — use a 1/2 threshold for headroom.
  if (nnz * 2 <= state.dim()) {
    Sparse sparse;
    sparse.num_qubits = state.num_qubits();
    sparse.indices.reserve(nnz);
    sparse.amplitudes.reserve(nnz);
    for (std::size_t i = 0; i < state.dim(); ++i) {
      if (state[i] != cplx(0.0)) {
        sparse.indices.push_back(i);
        sparse.amplitudes.push_back(state[i]);
      }
    }
    out.repr_ = std::move(sparse);
  } else {
    out.repr_ = state;
  }
  return out;
}

StateVector CompressedState::decompress() const {
  if (const auto* dense = std::get_if<StateVector>(&repr_)) {
    return *dense;
  }
  const Sparse& sparse = std::get<Sparse>(repr_);
  StateVector state(sparse.num_qubits);
  state[0] = 0.0;
  for (std::size_t k = 0; k < sparse.indices.size(); ++k) {
    state[sparse.indices[k]] = sparse.amplitudes[k];
  }
  return state;
}

std::size_t CompressedState::stored_bytes() const {
  if (const auto* dense = std::get_if<StateVector>(&repr_)) {
    return dense->dim() * sizeof(cplx);
  }
  const Sparse& sparse = std::get<Sparse>(repr_);
  return sparse.indices.size() * (sizeof(std::uint64_t) + sizeof(cplx));
}

CompactSvBackend::CompactSvBackend(const CircuitContext& ctx, Rng& rng)
    : ctx_(ctx), rng_(rng), working_(ctx.circuit.num_qubits()) {
  result_.max_live_states = 1;
  note_memory();
}

void CompactSvBackend::note_memory() {
  std::size_t bytes = working_.dim() * sizeof(cplx);
  for (const CompressedState& cp : dormant_) {
    bytes += cp.stored_bytes();
  }
  result_.peak_bytes = std::max(result_.peak_bytes, bytes);
  result_.dense_peak_bytes =
      std::max(result_.dense_peak_bytes,
               (dormant_.size() + 1) * working_.dim() * sizeof(cplx));
  result_.max_live_states = std::max(result_.max_live_states, dormant_.size() + 1);
}

void CompactSvBackend::on_advance(std::size_t depth, layer_index_t from_layer,
                                  layer_index_t to_layer) {
  RQSIM_CHECK(depth == dormant_.size(), "CompactSvBackend: advance must target top");
  apply_layers(ctx_, working_, from_layer, to_layer);
  result_.ops += ctx_.ops_in_layers(from_layer, to_layer);
  cached_probs_.reset();
}

void CompactSvBackend::on_fork(std::size_t depth) {
  RQSIM_CHECK(depth == dormant_.size(), "CompactSvBackend: fork must target top");
  // Parent goes dormant (compressed); the working state *is* the child.
  dormant_.push_back(CompressedState::compress(working_));
  note_memory();
  cached_probs_.reset();
}

void CompactSvBackend::on_error(std::size_t depth, const ErrorEvent& event) {
  RQSIM_CHECK(depth == dormant_.size(), "CompactSvBackend: error must target top");
  apply_error_event(ctx_, working_, event);
  result_.ops += 1;
  cached_probs_.reset();
}

void CompactSvBackend::on_finish(std::size_t depth, trial_index_t trial_index,
                                 const Trial& trial) {
  (void)depth;
  (void)trial_index;
  if (ctx_.circuit.measured_qubits().empty()) {
    return;
  }
  if (!cached_probs_) {
    cached_probs_ = measurement_probabilities(working_, ctx_.circuit.measured_qubits());
  }
  const std::uint64_t outcome =
      sample_outcome(*cached_probs_, rng_) ^ trial.meas_flip_mask;
  ++result_.histogram[outcome];
}

void CompactSvBackend::on_drop(std::size_t depth) {
  RQSIM_CHECK(depth == dormant_.size() && !dormant_.empty(),
              "CompactSvBackend: drop must pop the top checkpoint");
  working_ = dormant_.back().decompress();
  dormant_.pop_back();
  cached_probs_.reset();
}

CompactRunResult CompactSvBackend::take_result() { return std::move(result_); }

}  // namespace rqsim
