#include "sched/order.hpp"

#include <algorithm>

namespace rqsim {

bool trial_order_less(const Trial& a, const Trial& b) {
  const std::size_t limit = std::min(a.events.size(), b.events.size());
  for (std::size_t k = 0; k < limit; ++k) {
    if (a.events[k] < b.events[k]) {
      return true;
    }
    if (b.events[k] < a.events[k]) {
      return false;
    }
  }
  // Shared prefix: the trial with *more* events sorts first, so the
  // error-free continuation of a prefix is executed last.
  return a.events.size() > b.events.size();
}

void reorder_trials(std::vector<Trial>& trials) {
  std::stable_sort(trials.begin(), trials.end(), trial_order_less);
}

namespace {

// Algorithm 1: Trial_Reorder(S, n).
// "Order the trials in S based on the location of the nth injected error;
//  divide the trials into groups based on the nth error; recurse per group
//  with n+1."
void trial_reorder_recursive(std::vector<Trial>& trials, std::size_t begin,
                             std::size_t end, std::size_t n) {
  if (end - begin <= 1) {
    return;  // "if S has only one trial then return S"
  }
  // Order by the location (and operator) of the nth injected error. Trials
  // with no nth error go last. stable_sort keeps this a faithful grouping
  // pass: trials are only rearranged by their nth-error key.
  std::stable_sort(
      trials.begin() + static_cast<std::ptrdiff_t>(begin),
      trials.begin() + static_cast<std::ptrdiff_t>(end),
      [n](const Trial& a, const Trial& b) {
        const bool a_has = n < a.events.size();
        const bool b_has = n < b.events.size();
        if (a_has != b_has) {
          return a_has;  // exhausted trials last
        }
        if (!a_has) {
          return false;
        }
        return a.events[n] < b.events[n];
      });
  // Divide into groups sharing the nth error and recurse.
  std::size_t group_begin = begin;
  while (group_begin < end) {
    if (n >= trials[group_begin].events.size()) {
      break;  // the trailing exhausted trials form no further groups
    }
    const ErrorEvent key = trials[group_begin].events[n];
    std::size_t group_end = group_begin + 1;
    while (group_end < end && n < trials[group_end].events.size() &&
           trials[group_end].events[n] == key) {
      ++group_end;
    }
    trial_reorder_recursive(trials, group_begin, group_end, n + 1);
    group_begin = group_end;
  }
}

}  // namespace

void reorder_trials_algorithm1(std::vector<Trial>& trials) {
  trial_reorder_recursive(trials, 0, trials.size(), 0);
}

bool is_reordered(const std::vector<Trial>& trials) {
  for (std::size_t i = 1; i < trials.size(); ++i) {
    if (trial_order_less(trials[i], trials[i - 1])) {
      return false;
    }
  }
  return true;
}

}  // namespace rqsim
