// Truncated exact enumeration — a deterministic alternative to Monte Carlo
// sampling that reuses the same reorder + prefix-caching machinery.
//
// With per-gate error probability ε, a trial has k errors with probability
// ~ Binomial(#positions, ε): at NISQ rates almost all probability mass sits
// at k ≤ 2-3. Instead of sampling trials, enumerate *every* error
// configuration with at most `max_errors` errors together with its exact
// probability, execute the configurations through the cached scheduler
// (they sort into a perfect sharing order), and accumulate the exact
// outcome distribution weighted by configuration probability. The residual
// mass of the truncated tail bounds the result's total-variation error:
//     TVD(truncated/mass, exact) <= (1 - mass).
//
// This realizes the paper's observation that trials sharing errors share
// computation, in the limit where the "trial list" is the full support of
// the error distribution rather than a sample of it.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/types.hpp"
#include "noise/noise_model.hpp"
#include "trial/trial.hpp"

namespace rqsim {

struct WeightedTrialSet {
  /// All configurations with <= max_errors errors, in reorder order.
  std::vector<Trial> trials;

  /// probability[i] = exact probability of configuration i.
  std::vector<double> probabilities;

  /// Total probability mass covered (sum of `probabilities`).
  double covered_mass = 0.0;
};

/// Enumerate every gate-error configuration with at most `max_errors`
/// injected errors (idle noise supported; measurement flips are handled
/// analytically downstream). Enumeration size grows as
/// C(#positions, k)·ops^k — intended for k <= 3 on NISQ-sized circuits;
/// throws if the configuration count would exceed `max_configs`.
WeightedTrialSet enumerate_error_configurations(const Circuit& circuit,
                                                const NoiseModel& noise,
                                                std::size_t max_errors,
                                                std::size_t max_configs = 2000000);

struct TruncatedDistribution {
  /// Outcome distribution over measured bits, normalized to covered_mass
  /// (divide by covered_mass — or compare against exact·mass — as needed).
  std::vector<double> probabilities;

  double covered_mass = 0.0;
  opcount_t ops = 0;
  opcount_t baseline_ops = 0;  // unshared cost of the same configuration set
  std::size_t max_live_states = 0;
  std::size_t num_configurations = 0;
};

/// Exact truncated outcome distribution via the cached scheduler, including
/// the analytic measurement-flip channel. Statevector execution: circuit
/// must fit in dense amplitudes.
TruncatedDistribution truncated_exact_distribution(const Circuit& circuit,
                                                   const NoiseModel& noise,
                                                   std::size_t max_errors);

}  // namespace rqsim
