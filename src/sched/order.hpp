// Trial reordering (the paper's Algorithm 1).
//
// The recursive grouping of Algorithm 1 — order trials by the location of
// the 1st injected error, group trials sharing it, recurse on the 2nd, … —
// is exactly a lexicographic sort over error-event sequences, with one
// refinement: a trial that has run out of errors sorts *after* any trial
// with a further error. That refinement is what lets each recursion level
// keep exactly one advancing checkpoint: the error-free continuation of a
// prefix is simulated last, after every branching subgroup has consumed the
// intermediate layer states (paper Section IV.B, S1→S2 advance-and-drop).
//
// Both formulations are implemented: `reorder_trials` (the O(T log T)
// sort used in production) and `reorder_trials_algorithm1` (a literal
// transcription of the paper's recursion). Tests assert they agree.
#pragma once

#include <vector>

#include "trial/trial.hpp"

namespace rqsim {

/// Comparison used by the reorder: lexicographic over events with
/// "exhausted" greater than any event.
bool trial_order_less(const Trial& a, const Trial& b);

/// Reorder trials in place with a lexicographic sort.
void reorder_trials(std::vector<Trial>& trials);

/// Literal transcription of the paper's Algorithm 1 (recursive order+group).
/// Quadratic in the worst case; exists to validate `reorder_trials`.
void reorder_trials_algorithm1(std::vector<Trial>& trials);

/// True if the trial sequence is in reorder order.
bool is_reordered(const std::vector<Trial>& trials);

}  // namespace rqsim
