#include "sched/baseline.hpp"

#include "common/error.hpp"
#include "linalg/pauli.hpp"
#include "sim/kernels.hpp"
#include "telemetry/telemetry.hpp"

namespace rqsim {

namespace {

// Same logical metric as the cached/tree executors (interned by name), so
// baseline runs contribute to the one runtime op total.
telemetry::Counter g_matvec_ops("sim.matvec_ops");

void apply_one_event(const CircuitContext& ctx, StateVector& state,
                     const ErrorEvent& event) {
  if (is_idle_position(ctx.circuit.num_gates(), event.position)) {
    apply_pauli(state, static_cast<Pauli>(event.op),
                idle_qubit(ctx.circuit.num_gates(), event.position));
    return;
  }
  const Gate& gate = ctx.circuit.gates()[event.position];
  if (gate.arity() == 1) {
    apply_pauli(state, static_cast<Pauli>(event.op), gate.qubits[0]);
  } else {
    RQSIM_CHECK(gate.arity() == 2, "simulate_trial: unsupported gate arity");
    apply_pauli_pair(state, pauli_pair_from_index(event.op), gate.qubits[0],
                     gate.qubits[1]);
  }
}

// Fused variant: advance through the error-free layer segments between
// consecutive error positions with fused programs.
StateVector simulate_trial_fused(const CircuitContext& ctx, const Trial& trial,
                                 FusionCache& fusion) {
  StateVector state(ctx.circuit.num_qubits());
  const layer_index_t num_layers = static_cast<layer_index_t>(ctx.num_layers());
  layer_index_t from = 0;
  std::size_t next_event = 0;
  while (next_event < trial.events.size()) {
    const layer_index_t l = trial.events[next_event].layer;
    RQSIM_CHECK(l < num_layers, "simulate_trial: event beyond the last layer");
    apply_fused(state, fusion.segment(from, l + 1));
    from = l + 1;
    while (next_event < trial.events.size() && trial.events[next_event].layer == l) {
      apply_one_event(ctx, state, trial.events[next_event]);
      ++next_event;
    }
  }
  if (from < num_layers) {
    apply_fused(state, fusion.segment(from, num_layers));
  }
  return state;
}

}  // namespace

StateVector simulate_trial(const CircuitContext& ctx, const Trial& trial,
                           FusionCache* fusion) {
  if (fusion != nullptr) {
    return simulate_trial_fused(ctx, trial, *fusion);
  }
  StateVector state(ctx.circuit.num_qubits());
  std::size_t next_event = 0;
  for (layer_index_t l = 0; l < ctx.num_layers(); ++l) {
    for (gate_index_t g : ctx.layering.layers[l]) {
      apply_gate(state, ctx.circuit.gates()[g]);
    }
    while (next_event < trial.events.size() && trial.events[next_event].layer == l) {
      apply_one_event(ctx, state, trial.events[next_event]);
      ++next_event;
    }
  }
  RQSIM_CHECK(next_event == trial.events.size(),
              "simulate_trial: event beyond the last layer");
  return state;
}

SvRunResult baseline_simulate(const CircuitContext& ctx, const std::vector<Trial>& trials,
                              Rng& rng, bool record_final_states,
                              const std::vector<PauliString>* observables,
                              bool fuse_gates, bool use_trial_seeds) {
  SvRunResult result;
  result.max_live_states = 1;
  if (record_final_states) {
    result.final_states.resize(trials.size());
  }
  if (observables != nullptr) {
    result.observable_sums.assign(observables->size(), 0.0);
  }
  FusionCache fusion(ctx.circuit, ctx.layering);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const Trial& trial = trials[i];
    StateVector state = simulate_trial(ctx, trial, fuse_gates ? &fusion : nullptr);
    const opcount_t trial_ops =
        ctx.total_gate_ops() + static_cast<opcount_t>(trial.num_errors());
    result.ops += trial_ops;
    g_matvec_ops.add(trial_ops);
    if (!ctx.circuit.measured_qubits().empty()) {
      const auto probs = measurement_probabilities(state, ctx.circuit.measured_qubits());
      std::uint64_t outcome;
      if (use_trial_seeds) {
        Rng trial_rng(trial.meas_seed);
        outcome = sample_outcome(probs, trial_rng);
      } else {
        outcome = sample_outcome(probs, rng);
      }
      outcome ^= trial.meas_flip_mask;
      ++result.histogram[outcome];
    }
    if (observables != nullptr) {
      for (std::size_t k = 0; k < observables->size(); ++k) {
        result.observable_sums[k] += expectation(state, (*observables)[k]);
      }
    }
    if (record_final_states) {
      result.final_states[i] = std::move(state);
    }
  }
  return result;
}

}  // namespace rqsim
