#include "sched/baseline.hpp"

#include "common/error.hpp"
#include "linalg/pauli.hpp"
#include "sim/kernels.hpp"

namespace rqsim {

StateVector simulate_trial(const CircuitContext& ctx, const Trial& trial) {
  StateVector state(ctx.circuit.num_qubits());
  std::size_t next_event = 0;
  for (layer_index_t l = 0; l < ctx.num_layers(); ++l) {
    for (gate_index_t g : ctx.layering.layers[l]) {
      apply_gate(state, ctx.circuit.gates()[g]);
    }
    while (next_event < trial.events.size() && trial.events[next_event].layer == l) {
      const ErrorEvent& event = trial.events[next_event];
      if (is_idle_position(ctx.circuit.num_gates(), event.position)) {
        apply_pauli(state, static_cast<Pauli>(event.op),
                    idle_qubit(ctx.circuit.num_gates(), event.position));
      } else {
        const Gate& gate = ctx.circuit.gates()[event.position];
        if (gate.arity() == 1) {
          apply_pauli(state, static_cast<Pauli>(event.op), gate.qubits[0]);
        } else {
          RQSIM_CHECK(gate.arity() == 2, "simulate_trial: unsupported gate arity");
          apply_pauli_pair(state, pauli_pair_from_index(event.op), gate.qubits[0],
                           gate.qubits[1]);
        }
      }
      ++next_event;
    }
  }
  RQSIM_CHECK(next_event == trial.events.size(),
              "simulate_trial: event beyond the last layer");
  return state;
}

SvRunResult baseline_simulate(const CircuitContext& ctx, const std::vector<Trial>& trials,
                              Rng& rng, bool record_final_states,
                              const std::vector<PauliString>* observables) {
  SvRunResult result;
  result.max_live_states = 1;
  if (record_final_states) {
    result.final_states.resize(trials.size());
  }
  if (observables != nullptr) {
    result.observable_sums.assign(observables->size(), 0.0);
  }
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const Trial& trial = trials[i];
    StateVector state = simulate_trial(ctx, trial);
    result.ops += ctx.total_gate_ops() + static_cast<opcount_t>(trial.num_errors());
    if (!ctx.circuit.measured_qubits().empty()) {
      const auto probs = measurement_probabilities(state, ctx.circuit.measured_qubits());
      const std::uint64_t outcome = sample_outcome(probs, rng) ^ trial.meas_flip_mask;
      ++result.histogram[outcome];
    }
    if (observables != nullptr) {
      for (std::size_t k = 0; k < observables->size(); ++k) {
        result.observable_sums[k] += expectation(state, (*observables)[k]);
      }
    }
    if (record_final_states) {
      result.final_states[i] = std::move(state);
    }
  }
  return result;
}

}  // namespace rqsim
