// The prefix-caching scheduler.
//
// `schedule_trials` walks a *reordered* trial list and emits the primitive
// operations of the optimized simulation to a visitor:
//
//   on_advance(d, from, to)  — apply the gates of layers [from, to) to the
//                              checkpoint at recursion depth d
//   on_fork(d)               — duplicate checkpoint d into d+1
//   on_error(d, e)           — apply error event e to checkpoint d
//   on_finish(d, i, trial)   — trial i's final state is checkpoint d
//                              (guaranteed advanced through every layer)
//   on_drop(d)               — checkpoint d is dead, release it
//
// Invariant maintained by the walker: checkpoint d holds the state of the
// current group's shared error prefix, advanced error-free through some
// layer frontier that only moves forward. Each recursion level owns exactly
// one checkpoint, so the number of live states equals the recursion depth
// plus one — the paper's MSV bound.
//
// Backends interpret the stream with real amplitudes (SvBackend), pure
// accounting (CountBackend), or per-trial operator traces (TraceBackend);
// the walker itself never touches a state vector, which is what lets the
// 40-qubit scalability experiments run without 2^40 amplitudes.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/layering.hpp"
#include "common/types.hpp"
#include "trial/trial.hpp"

namespace rqsim {

/// Precomputed layering and op-count prefix sums for one circuit.
struct CircuitContext {
  explicit CircuitContext(const Circuit& circuit);

  const Circuit& circuit;
  Layering layering;

  /// ops_before_layer[l] = number of gates in layers [0, l);
  /// ops_before_layer[num_layers] = total gate count.
  std::vector<opcount_t> ops_before_layer;

  std::size_t num_layers() const { return layering.num_layers(); }
  opcount_t total_gate_ops() const { return ops_before_layer.back(); }
  opcount_t ops_in_layers(layer_index_t from, layer_index_t to) const;
};

class ScheduleVisitor {
 public:
  virtual ~ScheduleVisitor() = default;
  virtual void on_advance(std::size_t depth, layer_index_t from_layer,
                          layer_index_t to_layer) = 0;
  virtual void on_fork(std::size_t depth) = 0;
  virtual void on_error(std::size_t depth, const ErrorEvent& event) = 0;
  virtual void on_finish(std::size_t depth, trial_index_t trial_index,
                         const Trial& trial) = 0;
  virtual void on_drop(std::size_t depth) = 0;
};

struct ScheduleOptions {
  /// Cap on concurrently maintained state vectors (the MSV budget).
  /// 0 = unlimited. Minimum meaningful value is 2: one shared advancing
  /// checkpoint plus one scratch state. When a branch would exceed the
  /// budget, its trials are replayed individually from the deepest allowed
  /// checkpoint — correctness is unchanged, computation sharing below the
  /// cap is given up.
  std::size_t max_states = 0;

  /// Pauli-frame subtree collapse (tree builder only — the sequential
  /// walker ignores it). A group of trials whose remaining errors all
  /// propagate to the end of the circuit as pure Pauli frames (Clifford-
  /// only downstream path, X part confined to measured qubits) is not
  /// forked: the trials finish on the parent's buffer with a recorded
  /// frame applied as a basis permutation at sampling time. Bitwise
  /// results are unchanged; requires NoiseModel::all_channels_pauli().
  bool frame_collapse = false;

  /// Observables will be evaluated on the finishing buffers: restrict
  /// collapse to trials whose final frame is Z-only (a pure sign on each
  /// Pauli-string expectation; an X component would permute the
  /// floating-point summation order instead).
  bool frame_observables = false;
};

/// Walk `trials` (which must already be in reorder order) and emit the
/// optimized execution to `visitor`. Throws if the list is not reordered.
void schedule_trials(const CircuitContext& ctx, const std::vector<Trial>& trials,
                     ScheduleVisitor& visitor, const ScheduleOptions& options = {});

/// Baseline op count: every trial executes the full circuit plus its own
/// error injections, with nothing shared (paper Section V "Baseline").
opcount_t baseline_op_count(const CircuitContext& ctx, const std::vector<Trial>& trials);

}  // namespace rqsim
