// Work-stealing parallel executor for the prefix-tree schedule.
//
// Each ready subtree of the ExecTree (sched/tree.hpp) is one task: a worker
// advances its node's statevector layer-by-layer, forks one checkpoint from
// the shared StateBufferPool per branch point (the only duplicated work of
// the whole schedule, counted as fork_copies), pushes child subtrees onto
// its own deque, and drops the buffer back to the pool the moment its last
// consumer — the tail finishes — is done. Idle workers steal from the
// *front* of a victim's deque, taking the oldest (largest) pending subtree,
// which keeps stolen work coarse and steals rare.
//
// Zero redundancy: every advance/error of the tree schedule is executed by
// exactly one worker exactly once, so the multi-threaded op count equals
// the sequential cached schedule's op count — unlike chunked parallelism,
// which re-executes shared prefixes once per chunk. verify_tree_plan
// (verify/plan_verifier.hpp) proves the schedule-level equality statically;
// the executor's own counters confirm it at run time.
//
// Global MSV accounting (max_states): admission control is a banker-style
// reservation against one shared token pool. Every node carries its
// peak_demand — the buffers its subtree needs when run sequentially — and a
// subtree runs *concurrently* only if its full peak can be reserved; when
// the reservation fails the child runs inline on the parent's thread,
// inside the parent's own reservation (whose slack always covers one child
// subtree, since a parent's peak is 1 + max over children). Inline
// execution always makes progress, so the budget can never deadlock, and
// the number of live statevectors is globally bounded by max_states — the
// same bound the sequential scheduler guarantees, not a per-chunk copy of
// it.
//
// Determinism: results are bitwise identical to the sequential scheduler
// for any thread count and any interleaving. Outcome sampling draws from
// each trial's private Rng(meas_seed); per-trial outcomes and observable
// values land in disjoint slots and are reduced in trial-index order —
// which is exactly the sequential finish order — on the calling thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/pauli_string.hpp"
#include "sched/tree.hpp"
#include "sim/measure.hpp"
#include "sim/statevector.hpp"

namespace rqsim {

/// Receives every trial's final state. Called from worker threads; calls
/// are grouped per finishing buffer: one call covers the contiguous trial
/// range [first_trial, first_trial + count) that finishes on `state`
/// (a branch node's tail, or a single replayed trial). Distinct calls may
/// arrive concurrently from different workers, but never two calls for the
/// same trial — implementations write per-trial slots without locking.
/// `node` identifies the finishing tree node (unique per call sequence);
/// `probs` is the measurement distribution of `state`, null when the
/// circuit measures nothing.
class TreeTrialSink {
 public:
  virtual ~TreeTrialSink() = default;
  virtual void on_finish_group(std::size_t node, std::size_t first_trial,
                               std::size_t count, const StateVector& state,
                               const std::vector<double>* probs) = 0;
};

struct TreeExecConfig {
  /// Worker threads; 0 or 1 executes on the calling thread.
  std::size_t num_threads = 1;

  /// Global MSV budget (0 = unlimited). Must equal the budget the tree was
  /// built with: the tree's replay lowering guarantees peak_demand <=
  /// max_states, which admission control relies on.
  std::size_t max_states = 0;

  /// Advance through the gate-fusion engine (one FusionCache per worker —
  /// the cache memoizes lazily and is not thread-safe).
  bool fuse_gates = false;
};

/// Execution counters (results flow through the sink).
struct TreeExecStats {
  opcount_t ops = 0;
  std::uint64_t fork_copies = 0;

  /// Peak concurrently live statevectors actually observed; <= max_states
  /// whenever a budget is set (checked), and can exceed the *sequential*
  /// MSV only when the budget is unlimited and subtrees run concurrently.
  std::size_t max_live_states = 1;

  /// Buffer-pool effectiveness across the run.
  std::uint64_t pool_reuses = 0;
  std::uint64_t pool_allocs = 0;

  /// Scheduling dynamics: successful steals (a task moved to an idle
  /// worker) and MSV-token reservation failures that fell back to inline
  /// execution on the parent's thread.
  std::uint64_t steals = 0;
  std::uint64_t inline_fallbacks = 0;
};

/// Execute `tree` over `trials` with `config.num_threads` workers, feeding
/// every trial's final state to `sink`. Throws (rethrown from workers) on
/// any execution error.
TreeExecStats execute_tree(const CircuitContext& ctx, const ExecTree& tree,
                           const std::vector<Trial>& trials,
                           const TreeExecConfig& config, TreeTrialSink& sink);

/// Standard sink: per-trial outcome sampling from Rng(trial.meas_seed),
/// histogram assembly, and per-trial observable evaluation with the final
/// reduction in trial-index order (bitwise equal to the sequential
/// scheduler's finish-order accumulation).
class SampledTrialSink : public TreeTrialSink {
 public:
  SampledTrialSink(const CircuitContext& ctx, const std::vector<Trial>& trials,
                   const std::vector<PauliString>* observables);

  void on_finish_group(std::size_t node, std::size_t first_trial, std::size_t count,
                       const StateVector& state,
                       const std::vector<double>* probs) override;

  /// Reduce per-trial slots into the final histogram / observable sums.
  /// Call once, after execute_tree returns.
  OutcomeHistogram take_histogram();
  std::vector<double> take_observable_sums();

 private:
  const CircuitContext& ctx_;
  const std::vector<Trial>& trials_;
  const std::vector<PauliString>* observables_;
  bool sampled_ = false;
  std::vector<std::uint64_t> outcomes_;      // per trial, valid iff sampled_
  std::vector<double> expectations_;          // trials × observables, flat
};

}  // namespace rqsim
