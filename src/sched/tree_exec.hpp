// Work-stealing parallel executor for the prefix-tree schedule, built on
// copy-on-write checkpoint forks (sim/buffer_pool.hpp, CowState).
//
// A schedule fork is a refcount bump on the parent's buffer, not a 2^n
// copy: the copy is deferred until some gate actually *writes* a shared
// buffer (a materialization, counted as cow_materializations). Forks whose
// subtree never coexists with a writing peer — the last child of every
// tail-less node gets the parent's buffer *moved*, and the last writer of
// any shared snapshot finds itself sole owner — skip the copy entirely.
// fork_copies still counts schedule forks (== planned_forks at every
// thread count); the materialization deficit against it is the work CoW
// eliminated.
//
// Tasks are subtree *chunks*: a parent advances its buffer to a branch
// frontier once, then hands out maximal same-frontier runs of child
// subtrees — split against a target of planned_ops / (4 × workers) — as
// single steal-able units sharing one CoW snapshot. Chunking keeps the
// deques coarse (steals rare, one snapshot per run instead of one eager
// copy per fork); same-frontier grouping is what makes it redundancy-free,
// since one parent advance feeds the whole run. Idle workers steal from
// the *front* of a victim's deque, taking the oldest (largest) chunk.
//
// Zero redundancy: every advance/error of the tree schedule is executed by
// exactly one worker exactly once, so the multi-threaded op count equals
// the sequential cached schedule's op count — unlike chunked parallelism,
// which re-executes shared prefixes once per chunk. verify_tree_plan
// (verify/plan_verifier.hpp) proves the schedule-level equality statically;
// the executor's own counters confirm it at run time.
//
// Global MSV accounting (max_states): tokens ration *materialized* buffers
// only — an unmaterialized CoW fork occupies no memory, so it needs no
// token to wait in a deque. With max_states == 0 there is consequently
// nothing to ration: every chunk queues, and inline_fallbacks stays zero.
// With a budget, admission control is a banker-style reservation against
// one shared token pool: a chunk runs *concurrently* only if it can
// reserve one token for its pinned snapshot plus the widest child
// subtree's sequential peak_demand; when the reservation fails the chunk
// runs inline on the parent's thread, inside the parent's own reservation
// (whose slack always covers one child subtree, since a parent's peak is
// 1 + max over children). Inline execution always makes progress, so the
// budget can never deadlock, and the number of live materialized
// statevectors is globally bounded by max_states — the same bound the
// sequential scheduler guarantees, not a per-chunk copy of it.
//
// Determinism: results are bitwise identical to the sequential scheduler
// for any thread count and any interleaving. Outcome sampling draws from
// each trial's private Rng(meas_seed); per-trial outcomes and observable
// values land in disjoint slots and are reduced in trial-index order —
// which is exactly the sequential finish order — on the calling thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/pauli_string.hpp"
#include "sched/tree.hpp"
#include "sim/measure.hpp"
#include "sim/statevector.hpp"

namespace rqsim {

/// Receives every trial's final state. Called from worker threads; calls
/// are grouped per finishing buffer: one call covers the contiguous trial
/// range [first_trial, first_trial + count) that finishes on `state`
/// (a branch node's tail, or a single replayed trial). Distinct calls may
/// arrive concurrently from different workers, but never two calls for the
/// same trial — implementations write per-trial slots without locking.
/// `node` identifies the finishing tree node (unique per call sequence);
/// `probs` is the measurement distribution of `state`, null when the
/// circuit measures nothing.
class TreeTrialSink {
 public:
  virtual ~TreeTrialSink() = default;
  virtual void on_finish_group(std::size_t node, std::size_t first_trial,
                               std::size_t count, const StateVector& state,
                               const std::vector<double>* probs) = 0;

  /// Frame-collapsed trials finishing on node's buffer (trees built with
  /// ScheduleOptions::frame_collapse only): each trial's outcome must be
  /// drawn from the *frame-permuted* distribution (sample_outcome_permuted
  /// with the frame's measured-bit flip) and each observable value signed
  /// by the frame's Z mask. `state`/`probs` are shared with the same
  /// node's on_finish_group call. The default implementation throws —
  /// sinks that never execute framed trees (service batching) need not
  /// override.
  virtual void on_finish_frames(std::size_t node,
                                const std::vector<FrameTrial>& frames,
                                const StateVector& state,
                                const std::vector<double>* probs);
};

struct TreeExecConfig {
  /// Worker threads; 0 or 1 executes on the calling thread.
  std::size_t num_threads = 1;

  /// Global MSV budget (0 = unlimited). Must equal the budget the tree was
  /// built with: the tree's replay lowering guarantees peak_demand <=
  /// max_states, which admission control relies on.
  std::size_t max_states = 0;

  /// Advance through the gate-fusion engine (one FusionCache per worker —
  /// the cache memoizes lazily and is not thread-safe).
  bool fuse_gates = false;

  /// When the MSV token bank refuses a chunk's reservation, try running it
  /// as an *uncompute* task first (1 token: the chunk's replay leaves run
  /// in place on one buffer, restored bitwise between trials by inverse
  /// gates) before falling back to inline execution. Requires the leaves'
  /// paths to be fp-exact-invertible (TreeNode::uncompute_ok) and is
  /// skipped under fuse_gates (fused forward segments are not inverted
  /// gate-by-gate).
  bool allow_uncompute = true;
};

/// Execution counters (results flow through the sink).
struct TreeExecStats {
  opcount_t ops = 0;

  /// Schedule forks (CoW refcount bumps or moves), == ExecTree::
  /// planned_forks at every thread count. The 2^n copies actually paid are
  /// cow_materializations — strictly fewer whenever CoW saved anything.
  std::uint64_t fork_copies = 0;
  std::uint64_t cow_materializations = 0;

  /// Peak concurrently live *materialized* statevectors actually observed;
  /// <= max_states whenever a budget is set (checked), and can exceed the
  /// *sequential* MSV only when the budget is unlimited and subtrees run
  /// concurrently.
  std::size_t max_live_states = 1;

  /// Buffer-pool effectiveness across the run. Prewarmed buffers are
  /// paged in on the setup thread before workers start and count as
  /// reuses when acquired, never as allocs.
  std::uint64_t pool_reuses = 0;
  std::uint64_t pool_allocs = 0;
  std::uint64_t prewarmed = 0;

  /// Scheduling dynamics: multi-child chunk tasks created, successful
  /// steals (a task moved to an idle worker), and MSV-token reservation
  /// failures that fell back to inline execution on the parent's thread
  /// (always 0 when max_states == 0: unmaterialized forks need no token).
  std::uint64_t chunk_tasks = 0;
  std::uint64_t steals = 0;
  std::uint64_t inline_fallbacks = 0;

  /// Pauli-frame collapse: trials finished as frames on a shared buffer
  /// (== ExecTree::frame_collapsed_trials) and the conjugation-table
  /// lookups their build-time propagation performed. frame_ops is integer
  /// bookkeeping, never part of `ops`.
  std::uint64_t frame_collapsed_trials = 0;
  std::uint64_t frame_ops = 0;

  /// Uncompute fallback: in-place buffer restores performed when a refused
  /// fork was routed through inverse replay instead of inline execution,
  /// and the inverse-gate ops those restores applied. uncompute_ops is
  /// *extra* work (not part of `ops`, which stays == planned_ops), traded
  /// for concurrency under tight MSV budgets.
  std::uint64_t uncomputations = 0;
  opcount_t uncompute_ops = 0;
};

/// Execute `tree` over `trials` with `config.num_threads` workers, feeding
/// every trial's final state to `sink`. Throws (rethrown from workers) on
/// any execution error.
TreeExecStats execute_tree(const CircuitContext& ctx, const ExecTree& tree,
                           const std::vector<Trial>& trials,
                           const TreeExecConfig& config, TreeTrialSink& sink);

/// Standard sink: per-trial outcome sampling from Rng(trial.meas_seed),
/// histogram assembly, and per-trial observable evaluation with the final
/// reduction in trial-index order (bitwise equal to the sequential
/// scheduler's finish-order accumulation).
class SampledTrialSink : public TreeTrialSink {
 public:
  SampledTrialSink(const CircuitContext& ctx, const std::vector<Trial>& trials,
                   const std::vector<PauliString>* observables);

  void on_finish_group(std::size_t node, std::size_t first_trial, std::size_t count,
                       const StateVector& state,
                       const std::vector<double>* probs) override;

  void on_finish_frames(std::size_t node, const std::vector<FrameTrial>& frames,
                        const StateVector& state,
                        const std::vector<double>* probs) override;

  /// Reduce per-trial slots into the final histogram / observable sums.
  /// Call once, after execute_tree returns.
  OutcomeHistogram take_histogram();
  std::vector<double> take_observable_sums();

 private:
  const CircuitContext& ctx_;
  const std::vector<Trial>& trials_;
  const std::vector<PauliString>* observables_;
  bool sampled_ = false;
  std::vector<std::uint64_t> outcomes_;      // per trial, valid iff sampled_
  std::vector<double> expectations_;          // trials × observables, flat
  /// X-support mask (X and Y factors) of each observable: a Z-only frame
  /// flips observable k's sign iff popcount(frame_z & obs_xmask_[k]) is
  /// odd — Z P Z† = -P exactly for anticommuting P, so signing the shared
  /// buffer's expectation value is bitwise what the forked state yields.
  std::vector<std::uint64_t> obs_xmask_;
};

}  // namespace rqsim
