#include "sched/runner.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include <algorithm>

#include "sched/baseline.hpp"
#include "sched/cached.hpp"
#include "sched/order.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "trial/generator.hpp"
#include "verify/plan_verifier.hpp"

namespace rqsim {

void validate_run_limits(const NoisyRunConfig& config, const char* context) {
  const std::string where(context);
  RQSIM_CHECK(config.max_states != 1,
              where + ": max_states must be 0 (unlimited) or >= 2 — one shared "
                      "checkpoint plus at least one scratch state");
  RQSIM_CHECK(config.max_states <= kMaxStatesBudget,
              where + ": max_states " + std::to_string(config.max_states) +
                  " exceeds the supported maximum (overflowed or negative value?)");
  RQSIM_CHECK(config.num_trials <= kMaxTrialCount,
              where + ": trial count " + std::to_string(config.num_trials) +
                  " exceeds the supported maximum (overflowed or negative value?)");
}

namespace {

// Read handle for the process-wide matvec-op total (written by the
// baseline/cached/tree execution paths); run_noisy snapshots it around the
// run so TelemetrySummary::measured_ops is this run's delta.
telemetry::Counter g_matvec_ops("sim.matvec_ops");

std::vector<Trial> make_trials(const Circuit& circuit, const CircuitContext& ctx,
                               const NoiseModel& noise, const NoisyRunConfig& config,
                               Rng& rng, const char* context) {
  RQSIM_CHECK(noise.num_qubits() >= circuit.num_qubits(),
              std::string(context) +
                  ": noise model covers fewer qubits than the circuit");
  validate_run_limits(config, context);
  return generate_trials(circuit, ctx.layering, noise, config.num_trials, rng);
}

void fill_common(NoisyRunResult& result, const CircuitContext& ctx,
                 const std::vector<Trial>& trials) {
  result.baseline_ops = baseline_op_count(ctx, trials);
  result.trial_stats = compute_trial_stats(trials);
  result.normalized_computation =
      result.baseline_ops == 0
          ? 1.0
          : static_cast<double>(result.ops) / static_cast<double>(result.baseline_ops);
  result.telemetry.ops_saved_vs_baseline =
      result.baseline_ops > result.ops ? result.baseline_ops - result.ops : 0;
  result.telemetry.prefix_cache_hit_ratio =
      result.baseline_ops == 0
          ? 0.0
          : static_cast<double>(result.telemetry.ops_saved_vs_baseline) /
                static_cast<double>(result.baseline_ops);
}

}  // namespace

NoisyRunResult run_noisy(const Circuit& circuit, const NoiseModel& noise,
                         const NoisyRunConfig& config) {
  RQSIM_SPAN("runner.run_noisy");
  const telemetry::Stopwatch stopwatch;
  const telemetry::MeasuredRunScope run_scope;
  const bool measured = telemetry::compiled() && telemetry::enabled();
  const std::uint64_t ops_before = measured ? g_matvec_ops.value() : 0;
  circuit.validate();
  CircuitContext ctx(circuit);
  Rng rng(config.seed);
  std::vector<Trial> trials = make_trials(circuit, ctx, noise, config, rng, "run_noisy");
  // Per-trial measurement seeds (assigned in generation order, before any
  // reorder): sampling becomes independent of finish order, which makes
  // every execution strategy — baseline, sequential cached, chunked, and
  // the parallel tree executor — produce bitwise-identical histograms.
  assign_measurement_seeds(trials, rng);

  NoisyRunResult result;
  switch (config.mode) {
    case ExecutionMode::kBaseline: {
      RQSIM_SPAN("runner.baseline_simulate");
      SvRunResult run = baseline_simulate(ctx, trials, rng, /*record_final_states=*/false,
                                          &config.observables, config.fuse_gates,
                                          /*use_trial_seeds=*/true);
      result.histogram = std::move(run.histogram);
      result.ops = run.ops;
      result.max_live_states = run.max_live_states;
      result.fork_copies = run.fork_copies;
      result.observable_means = std::move(run.observable_sums);
      break;
    }
    case ExecutionMode::kCachedReordered: {
      RQSIM_SPAN("runner.cached_schedule");
      reorder_trials(trials);
      SvBackend backend(ctx, rng, /*record_final_states=*/false, &config.observables,
                        config.fuse_gates, /*use_trial_seeds=*/true);
      ScheduleOptions options;
      options.max_states = config.max_states;
      if (config.verify_plans) {
        verify_schedule_or_throw(ctx, trials, options, "run_noisy");
      }
      schedule_trials(ctx, trials, backend, options);
      result.telemetry.pool_reuses = backend.buffer_pool().reuse_count();
      result.telemetry.pool_allocs = backend.buffer_pool().alloc_count();
      SvRunResult run = backend.take_result();
      result.histogram = std::move(run.histogram);
      result.ops = run.ops;
      result.max_live_states = run.max_live_states;
      result.fork_copies = run.fork_copies;
      result.observable_means = std::move(run.observable_sums);
      break;
    }
    case ExecutionMode::kCachedUnordered:
      RQSIM_CHECK(false,
                  "run_noisy: the unordered-cache ablation is accounting-only; "
                  "use analyze_noisy");
  }
  for (double& mean : result.observable_means) {
    mean /= static_cast<double>(std::max<std::size_t>(1, trials.size()));
  }
  fill_common(result, ctx, trials);
  // A concurrent run (service with multiple workers) would fold its ops
  // into our counter delta; report measured=false rather than an inflated
  // measured_ops that no longer equals result.ops.
  result.telemetry.measured = measured && run_scope.exclusive();
  if (result.telemetry.measured) {
    result.telemetry.measured_ops = g_matvec_ops.value() - ops_before;
  }
  result.telemetry.peak_live_states = result.max_live_states;
  result.telemetry.wall_ms = stopwatch.elapsed_ms();
  return result;
}

NoisyRunResult analyze_noisy(const Circuit& circuit, const NoiseModel& noise,
                             const NoisyRunConfig& config) {
  circuit.validate();
  CircuitContext ctx(circuit);
  Rng rng(config.seed);
  std::vector<Trial> trials =
      make_trials(circuit, ctx, noise, config, rng, "analyze_noisy");

  NoisyRunResult result;
  switch (config.mode) {
    case ExecutionMode::kBaseline:
      result.ops = baseline_op_count(ctx, trials);
      result.max_live_states = 1;
      break;
    case ExecutionMode::kCachedReordered: {
      reorder_trials(trials);
      CountBackend backend(ctx);
      ScheduleOptions options;
      options.max_states = config.max_states;
      if (config.verify_plans) {
        verify_schedule_or_throw(ctx, trials, options, "analyze_noisy");
      }
      schedule_trials(ctx, trials, backend, options);
      result.ops = backend.ops();
      result.max_live_states = backend.max_live_states();
      break;
    }
    case ExecutionMode::kCachedUnordered: {
      const ConsecutiveCacheResult run = consecutive_cached_count(ctx, trials);
      result.ops = run.ops;
      result.max_live_states = run.max_live_states;
      break;
    }
  }
  fill_common(result, ctx, trials);
  return result;
}

}  // namespace rqsim
