#include "sched/cached.hpp"

#include <algorithm>

namespace rqsim {

ConsecutiveCacheResult consecutive_cached_count(const CircuitContext& ctx,
                                                const std::vector<Trial>& trials) {
  ConsecutiveCacheResult result;
  if (trials.empty()) {
    return result;
  }
  result.max_live_states = 1;
  const Trial* prev = nullptr;
  const auto num_layers = static_cast<layer_index_t>(ctx.num_layers());
  for (const Trial& trial : trials) {
    const std::size_t shared = prev ? shared_prefix_length(*prev, trial) : 0;
    // Checkpoint k (k >= 1) holds the state right after event k, advanced
    // through that event's layer; checkpoint 0 is the initial state.
    const layer_index_t frontier =
        shared == 0 ? 0 : trial.events[shared - 1].layer + 1;
    result.ops += ctx.ops_in_layers(frontier, num_layers);
    result.ops += static_cast<opcount_t>(trial.events.size() - shared);
    // Checkpoints kept while this trial runs: one per error event plus the
    // initial state (all may be needed by the next trial).
    result.max_live_states =
        std::max(result.max_live_states, trial.events.size() + 1);
    prev = &trial;
  }
  return result;
}

}  // namespace rqsim
