// Baseline Monte Carlo execution (paper Section V "Baseline"): every trial
// is simulated from scratch in its generated order; nothing is shared and
// no intermediate state is kept.
//
// Execution order within a trial is layer-by-layer with the trial's error
// events applied at each layer boundary — the same semantic order the
// cached executor realizes, so final states agree bitwise.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "sched/backend.hpp"
#include "sched/plan.hpp"
#include "trial/trial.hpp"

namespace rqsim {

/// Simulate one trial from |0…0⟩; returns the pre-measurement final state.
/// With `fusion`, the error-free layer segments between the trial's error
/// events run through the gate-fusion engine (epsilon-equivalent).
StateVector simulate_trial(const CircuitContext& ctx, const Trial& trial,
                           FusionCache* fusion = nullptr);

/// Full baseline run: per-trial simulation, outcome sampling, histogram.
/// `observables` (optional, borrowed) are evaluated on every trial's final
/// state and accumulated into SvRunResult::observable_sums. With
/// `use_trial_seeds`, each trial samples from Rng(trial.meas_seed) instead
/// of the shared `rng` stream (see sched/backend.hpp), making the baseline
/// histogram bitwise comparable to any cached-mode run of the same trials.
SvRunResult baseline_simulate(const CircuitContext& ctx, const std::vector<Trial>& trials,
                              Rng& rng, bool record_final_states = false,
                              const std::vector<PauliString>* observables = nullptr,
                              bool fuse_gates = false, bool use_trial_seeds = false);

}  // namespace rqsim
