#include "sched/plan.hpp"

#include "common/error.hpp"
#include "sched/order.hpp"

namespace rqsim {

CircuitContext::CircuitContext(const Circuit& circuit_in)
    : circuit(circuit_in), layering(layer_circuit(circuit_in)) {
  ops_before_layer.resize(layering.num_layers() + 1, 0);
  for (std::size_t l = 0; l < layering.num_layers(); ++l) {
    ops_before_layer[l + 1] =
        ops_before_layer[l] + static_cast<opcount_t>(layering.layers[l].size());
  }
}

opcount_t CircuitContext::ops_in_layers(layer_index_t from, layer_index_t to) const {
  RQSIM_CHECK(from <= to && to <= num_layers(), "ops_in_layers: bad range");
  return ops_before_layer[to] - ops_before_layer[from];
}

namespace {

class ScheduleWalker {
 public:
  ScheduleWalker(const CircuitContext& ctx, const std::vector<Trial>& trials,
                 ScheduleVisitor& visitor, const ScheduleOptions& options)
      : ctx_(ctx), trials_(trials), visitor_(visitor), options_(options) {}

  void run() {
    if (trials_.empty()) {
      return;
    }
    walk(0, trials_.size(), /*event_depth=*/0, /*depth=*/0, /*frontier=*/0);
  }

 private:
  // Process trials [begin, end), all sharing their first `event_depth`
  // events, with checkpoint `depth` holding that prefix advanced through
  // `frontier` layers.
  void walk(std::size_t begin, std::size_t end, std::size_t event_depth,
            std::size_t depth, layer_index_t frontier) {
    std::size_t i = begin;
    // Branching subgroups: trials with a further error, in event order.
    while (i != end && trials_[i].events.size() > event_depth) {
      const ErrorEvent event = trials_[i].events[event_depth];
      std::size_t j = i + 1;
      while (j != end && trials_[j].events.size() > event_depth &&
             trials_[j].events[event_depth] == event) {
        ++j;
      }
      // Advance this level's checkpoint error-free up to the event's layer
      // boundary; the previous frontier state is implicitly dropped (the
      // paper's S1 -> S2 advance).
      const layer_index_t target = event.layer + 1;
      if (target > frontier) {
        visitor_.on_advance(depth, frontier, target);
        frontier = target;
      }
      // Algorithm 1 stops recursing at singleton groups: a lone trial's
      // remaining suffix runs on one scratch state with no further
      // checkpoints (this is what keeps the MSV at the *shared* recursion
      // depth rather than the per-trial error count).
      if (j - i == 1) {
        replay_trial(i, event_depth, depth, frontier);
        i = j;
        continue;
      }
      // Branch: copy, inject the error, recurse on the subgroup — unless
      // that would leave the child level unable to fork its own scratch
      // state within the MSV budget; then replay each trial individually.
      if (options_.max_states == 0 || depth + 2 < options_.max_states) {
        visitor_.on_fork(depth);
        visitor_.on_error(depth + 1, event);
        walk(i, j, event_depth + 1, depth + 1, frontier);
        visitor_.on_drop(depth + 1);
      } else {
        for (std::size_t t = i; t != j; ++t) {
          replay_trial(t, event_depth, depth, frontier);
        }
      }
      i = j;
    }
    // Remaining trials have exactly `event_depth` errors: the error-free
    // continuation of this prefix. Run the tail of the circuit once.
    if (i != end) {
      const auto total = static_cast<layer_index_t>(ctx_.num_layers());
      if (total > frontier) {
        visitor_.on_advance(depth, frontier, total);
        frontier = total;
      }
      for (std::size_t t = i; t != end; ++t) {
        visitor_.on_finish(depth, static_cast<trial_index_t>(t), trials_[t]);
      }
    }
  }

  // Execute one trial's remaining events on a scratch copy of the current
  // checkpoint, sharing nothing with its group (the MSV-budget fallback).
  void replay_trial(std::size_t t, std::size_t event_depth, std::size_t depth,
                    layer_index_t frontier) {
    const Trial& trial = trials_[t];
    visitor_.on_fork(depth);
    layer_index_t f = frontier;
    for (std::size_t k = event_depth; k < trial.events.size(); ++k) {
      const ErrorEvent& event = trial.events[k];
      const layer_index_t target = event.layer + 1;
      if (target > f) {
        visitor_.on_advance(depth + 1, f, target);
        f = target;
      }
      visitor_.on_error(depth + 1, event);
    }
    const auto total = static_cast<layer_index_t>(ctx_.num_layers());
    if (total > f) {
      visitor_.on_advance(depth + 1, f, total);
    }
    visitor_.on_finish(depth + 1, static_cast<trial_index_t>(t), trial);
    visitor_.on_drop(depth + 1);
  }

  const CircuitContext& ctx_;
  const std::vector<Trial>& trials_;
  ScheduleVisitor& visitor_;
  const ScheduleOptions& options_;
};

}  // namespace

void schedule_trials(const CircuitContext& ctx, const std::vector<Trial>& trials,
                     ScheduleVisitor& visitor, const ScheduleOptions& options) {
  RQSIM_CHECK(is_reordered(trials), "schedule_trials: trials must be reordered first");
  RQSIM_CHECK(options.max_states == 0 || options.max_states >= 2,
              "schedule_trials: max_states must be 0 (unlimited) or >= 2");
  ScheduleWalker(ctx, trials, visitor, options).run();
}

opcount_t baseline_op_count(const CircuitContext& ctx, const std::vector<Trial>& trials) {
  opcount_t ops = 0;
  for (const Trial& t : trials) {
    ops += ctx.total_gate_ops() + static_cast<opcount_t>(t.num_errors());
  }
  return ops;
}

}  // namespace rqsim
