#include "sched/enumerate.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "dm/density_matrix.hpp"
#include "linalg/pauli.hpp"
#include "sched/backend.hpp"
#include "sched/order.hpp"

namespace rqsim {

namespace {

// One place an error can fire, with the exact probability of each operator.
struct ErrorSite {
  layer_index_t layer = 0;
  gate_index_t position = 0;
  double rate = 0.0;                 // total error probability at this site
  std::vector<double> op_probs;      // op_probs[k] = P(op code k+1 fires)
};

std::vector<ErrorSite> build_sites(const Circuit& circuit, const Layering& layering,
                                   const NoiseModel& noise) {
  std::vector<ErrorSite> sites;
  for (gate_index_t g = 0; g < circuit.num_gates(); ++g) {
    const Gate& gate = circuit.gates()[g];
    RQSIM_CHECK(gate.arity() <= 2,
                "enumerate_error_configurations: decompose 3-qubit gates first");
    const double rate = gate.arity() == 1
                            ? noise.single_qubit_rate(gate.qubits[0])
                            : noise.two_qubit_rate(gate.qubits[0], gate.qubits[1]);
    if (rate <= 0.0) {
      continue;
    }
    ErrorSite site;
    site.layer = layering.layer_of_gate[g];
    site.position = g;
    site.rate = rate;
    if (gate.arity() == 1) {
      const auto w = noise.single_pauli_weights(gate.qubits[0]);
      site.op_probs = {rate * w[0], rate * w[1], rate * w[2]};
    } else {
      site.op_probs.assign(kNumPairPaulis, rate / kNumPairPaulis);
    }
    sites.push_back(std::move(site));
  }
  if (noise.has_idle_noise()) {
    for (layer_index_t l = 0; l < layering.num_layers(); ++l) {
      for (qubit_t q = 0; q < circuit.num_qubits(); ++q) {
        const double rate = noise.idle_pauli_rate(q);
        if (rate <= 0.0) {
          continue;
        }
        ErrorSite site;
        site.layer = l;
        site.position = idle_position(circuit.num_gates(), q);
        site.rate = rate;
        const auto w = noise.idle_pauli_weights(q);
        site.op_probs = {rate * w[0], rate * w[1], rate * w[2]};
        sites.push_back(std::move(site));
      }
    }
  }
  std::sort(sites.begin(), sites.end(), [](const ErrorSite& a, const ErrorSite& b) {
    if (a.layer != b.layer) {
      return a.layer < b.layer;
    }
    return a.position < b.position;
  });
  return sites;
}

class Enumerator {
 public:
  Enumerator(const std::vector<ErrorSite>& sites, std::size_t max_errors,
             std::size_t max_configs, WeightedTrialSet& out)
      : sites_(sites), max_errors_(max_errors), max_configs_(max_configs), out_(out) {}

  void run() {
    double p0 = 1.0;
    for (const ErrorSite& site : sites_) {
      p0 *= 1.0 - site.rate;
    }
    current_.events.clear();
    emit(p0);
    if (max_errors_ > 0) {
      descend(0, p0, max_errors_);
    }
  }

 private:
  void emit(double probability) {
    RQSIM_CHECK(out_.trials.size() < max_configs_,
                "enumerate_error_configurations: configuration count exceeds limit; "
                "reduce max_errors or raise max_configs");
    out_.trials.push_back(current_);
    out_.probabilities.push_back(probability);
    out_.covered_mass += probability;
  }

  void descend(std::size_t first_site, double prob_so_far, std::size_t remaining) {
    for (std::size_t s = first_site; s < sites_.size(); ++s) {
      const ErrorSite& site = sites_[s];
      const double without = 1.0 - site.rate;
      for (std::size_t op = 0; op < site.op_probs.size(); ++op) {
        if (site.op_probs[op] <= 0.0) {
          continue;
        }
        ErrorEvent event;
        event.layer = site.layer;
        event.position = site.position;
        event.op = static_cast<std::uint8_t>(op + 1);
        current_.events.push_back(event);
        const double prob = prob_so_far * site.op_probs[op] / without;
        emit(prob);
        if (remaining > 1) {
          descend(s + 1, prob, remaining - 1);
        }
        current_.events.pop_back();
      }
    }
  }

  const std::vector<ErrorSite>& sites_;
  std::size_t max_errors_;
  std::size_t max_configs_;
  WeightedTrialSet& out_;
  Trial current_;
};

// Visitor accumulating weight * outcome-distribution per finished trial.
class WeightedDistBackend : public ScheduleVisitor {
 public:
  WeightedDistBackend(const CircuitContext& ctx, const std::vector<double>& weights,
                      TruncatedDistribution& result)
      : ctx_(ctx), weights_(weights), result_(result) {
    stack_.emplace_back(ctx.circuit.num_qubits());
    result_.max_live_states = 1;
  }

  void on_advance(std::size_t depth, layer_index_t from_layer,
                  layer_index_t to_layer) override {
    apply_layers(ctx_, stack_[depth], from_layer, to_layer);
    result_.ops += ctx_.ops_in_layers(from_layer, to_layer);
    cached_probs_.reset();
  }

  void on_fork(std::size_t depth) override {
    stack_.push_back(stack_[depth]);
    result_.max_live_states = std::max(result_.max_live_states, stack_.size());
    cached_probs_.reset();
  }

  void on_error(std::size_t depth, const ErrorEvent& event) override {
    apply_error_event(ctx_, stack_[depth], event);
    result_.ops += 1;
    cached_probs_.reset();
  }

  void on_finish(std::size_t depth, trial_index_t trial_index,
                 const Trial& trial) override {
    (void)trial;
    if (!cached_probs_) {
      cached_probs_ =
          measurement_probabilities(stack_[depth], ctx_.circuit.measured_qubits());
    }
    const double weight = weights_[trial_index];
    for (std::size_t i = 0; i < cached_probs_->size(); ++i) {
      result_.probabilities[i] += weight * (*cached_probs_)[i];
    }
  }

  void on_drop(std::size_t depth) override {
    (void)depth;
    stack_.pop_back();
    cached_probs_.reset();
  }

 private:
  const CircuitContext& ctx_;
  const std::vector<double>& weights_;
  TruncatedDistribution& result_;
  std::vector<StateVector> stack_;
  std::optional<std::vector<double>> cached_probs_;
};

}  // namespace

WeightedTrialSet enumerate_error_configurations(const Circuit& circuit,
                                                const NoiseModel& noise,
                                                std::size_t max_errors,
                                                std::size_t max_configs) {
  circuit.validate();
  const Layering layering = layer_circuit(circuit);
  const std::vector<ErrorSite> sites = build_sites(circuit, layering, noise);

  WeightedTrialSet out;
  Enumerator(sites, max_errors, max_configs, out).run();

  // Reorder trials and carry the probabilities along.
  std::vector<std::size_t> order(out.trials.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return trial_order_less(out.trials[a], out.trials[b]);
  });
  WeightedTrialSet sorted;
  sorted.covered_mass = out.covered_mass;
  sorted.trials.reserve(order.size());
  sorted.probabilities.reserve(order.size());
  for (std::size_t idx : order) {
    sorted.trials.push_back(std::move(out.trials[idx]));
    sorted.probabilities.push_back(out.probabilities[idx]);
  }
  return sorted;
}

TruncatedDistribution truncated_exact_distribution(const Circuit& circuit,
                                                   const NoiseModel& noise,
                                                   std::size_t max_errors) {
  RQSIM_CHECK(circuit.num_measured() > 0,
              "truncated_exact_distribution: circuit has no measurements");
  WeightedTrialSet set = enumerate_error_configurations(circuit, noise, max_errors);
  const CircuitContext ctx(circuit);

  TruncatedDistribution result;
  result.covered_mass = set.covered_mass;
  result.num_configurations = set.trials.size();
  result.probabilities.assign(std::size_t{1} << circuit.num_measured(), 0.0);
  result.baseline_ops = baseline_op_count(ctx, set.trials);

  WeightedDistBackend backend(ctx, set.probabilities, result);
  schedule_trials(ctx, set.trials, backend);

  // Analytic measurement-flip channel on the accumulated distribution.
  std::vector<double> flips(circuit.num_measured());
  for (std::size_t bit = 0; bit < flips.size(); ++bit) {
    flips[bit] = noise.measurement_flip_rate(circuit.measured_qubits()[bit]);
  }
  result.probabilities = apply_measurement_flips(std::move(result.probabilities), flips);
  return result;
}

}  // namespace rqsim
