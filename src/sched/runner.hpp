// High-level public API: one call from circuit + noise model to a noisy
// Monte Carlo simulation result, in any of three execution modes.
//
//   run_noisy      — real statevector execution (outcome histogram), for
//                    circuits small enough to hold amplitudes.
//   analyze_noisy  — accounting only (ops, MSV); scales to any qubit count
//                    because no statevector is ever allocated. This is the
//                    entry point of the paper's scalability experiments.
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"
#include "noise/noise_model.hpp"
#include "obs/pauli_string.hpp"
#include "sched/backend.hpp"
#include "trial/stats.hpp"

namespace rqsim {

enum class ExecutionMode {
  kBaseline,          // every trial from scratch (paper's baseline)
  kCachedReordered,   // the paper's optimization: reorder + prefix caching
  kCachedUnordered,   // ablation: prefix caching without the reorder
};

struct NoisyRunConfig {
  std::size_t num_trials = 1024;
  std::uint64_t seed = 1;
  ExecutionMode mode = ExecutionMode::kCachedReordered;

  /// MSV budget for kCachedReordered (0 = unlimited, else >= 2). Branches
  /// that would exceed the budget are replayed trial-by-trial, trading
  /// computation for memory; results are unchanged.
  std::size_t max_states = 0;

  /// Run gate applications through the fusion engine (circuit/fusion.hpp):
  /// adjacent single-qubit gates collapse into one Mat2 and fold into
  /// neighboring two-qubit Mat4s, shrinking the kernel count each trial
  /// replays. Results are epsilon-equivalent to the unfused kernels (the
  /// default stays off to preserve the bitwise baseline/cached proof).
  bool fuse_gates = false;

  /// Pauli-string observables to estimate (statevector modes only):
  /// result.observable_means[k] = mean over trials of ⟨P_k⟩.
  std::vector<PauliString> observables;
};

struct NoisyRunResult {
  /// Sampled outcome histogram (empty for analyze_noisy or unmeasured circuits).
  OutcomeHistogram histogram;

  /// Matrix-vector operations actually performed.
  opcount_t ops = 0;

  /// What the baseline would have performed on the same trial set.
  opcount_t baseline_ops = 0;

  /// ops / baseline_ops — the paper's "normalized computation".
  double normalized_computation = 1.0;

  /// Maximum concurrently maintained state vectors (the paper's MSV).
  std::size_t max_live_states = 1;

  /// Statistics of the generated trial set.
  TrialSetStats trial_stats;

  /// Noisy expectation value of each requested observable.
  std::vector<double> observable_means;
};

/// Statevector execution. The circuit must be decomposed to 1-/2-qubit
/// gates and small enough for explicit amplitudes (<= 30 qubits).
NoisyRunResult run_noisy(const Circuit& circuit, const NoiseModel& noise,
                         const NoisyRunConfig& config);

/// Accounting-only execution (no amplitudes). Valid for any qubit count.
NoisyRunResult analyze_noisy(const Circuit& circuit, const NoiseModel& noise,
                             const NoisyRunConfig& config);

}  // namespace rqsim
