// High-level public API: one call from circuit + noise model to a noisy
// Monte Carlo simulation result, in any of three execution modes.
//
//   run_noisy      — real statevector execution (outcome histogram), for
//                    circuits small enough to hold amplitudes.
//   analyze_noisy  — accounting only (ops, MSV); scales to any qubit count
//                    because no statevector is ever allocated. This is the
//                    entry point of the paper's scalability experiments.
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"
#include "noise/noise_model.hpp"
#include "obs/pauli_string.hpp"
#include "sched/backend.hpp"
#include "trial/stats.hpp"

namespace rqsim {

/// Compile-time default for NoisyRunConfig::verify_plans: schedules are
/// verified before execution in debug builds, and verification is opt-in
/// in NDEBUG (release) builds.
#ifdef NDEBUG
inline constexpr bool kVerifyPlansDefault = false;
#else
inline constexpr bool kVerifyPlansDefault = true;
#endif

/// Upper bound accepted for trial counts and MSV budgets at every public
/// entry point. Far beyond any realistic run, but small enough that a
/// negative value cast to an unsigned type (e.g. `--trials -5` or a
/// negative JSON number) is always rejected instead of attempting a
/// ~2^64-trial allocation.
inline constexpr std::size_t kMaxTrialCount = std::size_t{1} << 40;
inline constexpr std::size_t kMaxStatesBudget = std::size_t{1} << 40;

enum class ExecutionMode {
  kBaseline,          // every trial from scratch (paper's baseline)
  kCachedReordered,   // the paper's optimization: reorder + prefix caching
  kCachedUnordered,   // ablation: prefix caching without the reorder
};

/// Multi-threaded strategy for run_noisy_parallel (sched/parallel.hpp).
enum class ParallelMode {
  /// Work-stealing prefix-tree executor (sched/tree_exec.hpp): the full
  /// trial trie is built once and its subtrees are executed by a worker
  /// pool — every shared prefix is computed exactly once globally, so the
  /// total op count equals the sequential cached schedule's regardless of
  /// thread count.
  kTree,

  /// Legacy chunked parallelism: contiguous chunks of the reordered trial
  /// list, one independent sequential scheduler per chunk. Prefixes shared
  /// *across* chunk boundaries are recomputed per chunk (reported as
  /// redundant_prefix_ops).
  kChunked,
};

struct NoisyRunConfig {
  std::size_t num_trials = 1024;
  std::uint64_t seed = 1;
  ExecutionMode mode = ExecutionMode::kCachedReordered;

  /// MSV budget for kCachedReordered (0 = unlimited, else >= 2). Branches
  /// that would exceed the budget are replayed trial-by-trial, trading
  /// computation for memory; results are unchanged.
  std::size_t max_states = 0;

  /// Run gate applications through the fusion engine (circuit/fusion.hpp):
  /// adjacent single-qubit gates collapse into one Mat2 and fold into
  /// neighboring two-qubit Mat4s, shrinking the kernel count each trial
  /// replays. Results are epsilon-equivalent to the unfused kernels (the
  /// default stays off to preserve the bitwise baseline/cached proof).
  bool fuse_gates = false;

  /// Pauli-string observables to estimate (statevector modes only):
  /// result.observable_means[k] = mean over trials of ⟨P_k⟩.
  std::vector<PauliString> observables;

  /// Strategy used when this config reaches run_noisy_parallel (ignored by
  /// the sequential entry points). Lives here rather than on
  /// ParallelRunConfig so service job configs carry it through batching.
  ParallelMode parallel_mode = ParallelMode::kTree;

  /// Pauli-frame subtree collapse (tree-mode parallel runs only). Groups
  /// of trials whose injected errors propagate to the end of the circuit
  /// as pure Pauli frames (Clifford-only downstream path) never fork a
  /// statevector: they finish on their node's shared buffer, the frame
  /// applied at sampling time as an outcome-bit permutation (and a sign on
  /// Z-only observables). Histograms and observable means stay bitwise
  /// identical to the uncollapsed schedule; matvec ops drop. Requires an
  /// all-Pauli noise model and is skipped under fuse_gates (fused segments
  /// hide the per-gate Clifford structure).
  bool frame_collapse = false;

  /// Statically verify the reorder schedule before executing it (cached
  /// modes): lexicographic trial order, checkpoint stack discipline, the
  /// MSV bound, and exact op-count telescoping (verify/plan_verifier.hpp).
  /// Throws rqsim::Error with the proof diagnostic on any violation.
  /// Defaults on in debug builds, off in release (kVerifyPlansDefault).
  bool verify_plans = kVerifyPlansDefault;
};

/// Shared entry-point validation of the run limits: rejects max_states == 1
/// (the budget needs one shared checkpoint plus one scratch state; 0 stays
/// the documented "unlimited" sentinel) and trial counts / budgets beyond
/// kMaxTrialCount / kMaxStatesBudget (overflowed or negative inputs).
/// `context` names the caller in the error message.
void validate_run_limits(const NoisyRunConfig& config, const char* context);

/// Runtime-measured execution summary (src/telemetry/). The op-derived
/// fields (ops_saved_vs_baseline, prefix_cache_hit_ratio) and wall_ms are
/// always filled; the counter-backed fields (measured_ops and the
/// scheduling/pool counters) are meaningful only when `measured` is true —
/// i.e. the telemetry registry was compiled in and enabled for the run.
struct TelemetrySummary {
  bool measured = false;

  /// Delta of the "sim.matvec_ops" registry counter across this run. When
  /// measured, this equals NoisyRunResult::ops bitwise — the runtime
  /// cross-check of the PlanVerifier's static op-count proof. Runs that
  /// overlap another run in the same process (service with multiple
  /// workers) detect it via telemetry::MeasuredRunScope and report
  /// measured=false rather than a delta polluted by the other run's ops.
  opcount_t measured_ops = 0;

  /// baseline_ops - ops: work the prefix cache eliminated.
  opcount_t ops_saved_vs_baseline = 0;

  /// ops_saved_vs_baseline / baseline_ops — the fraction of baseline work
  /// served from cached prefixes (1 - normalized_computation).
  double prefix_cache_hit_ratio = 0.0;

  /// Wallclock of the execution phase (trial generation + scheduling +
  /// simulation), telemetry clock.
  double wall_ms = 0.0;

  /// Tree-executor scheduling dynamics (parallel tree runs; zero elsewhere).
  std::uint64_t steals = 0;
  std::uint64_t inline_fallbacks = 0;

  /// Copy-on-write checkpoint traffic (parallel tree runs): 2^n copies
  /// actually materialized by first-writes to shared buffers. The deficit
  /// against NoisyRunResult::fork_copies is the copies CoW eliminated.
  std::uint64_t cow_materializations = 0;

  /// Checkpoint buffer-pool effectiveness for this run's pool. Prewarmed
  /// buffers are paged in before the workers start and surface as reuses,
  /// never allocs.
  std::uint64_t pool_reuses = 0;
  std::uint64_t pool_allocs = 0;
  std::uint64_t pool_prewarmed = 0;

  /// Peak concurrently live statevectors actually observed at run time.
  std::size_t peak_live_states = 0;

  /// Pauli-frame collapse (tree-mode parallel runs with frame_collapse):
  /// trials finished as tracked frames on a shared buffer instead of
  /// forked statevectors, and the conjugation-table lookups their
  /// propagation cost (integer bookkeeping, never matvec ops).
  std::uint64_t frame_collapsed_trials = 0;
  std::uint64_t frame_ops = 0;

  /// In-place buffer restores by inverse replay: refused forks routed
  /// through uncomputation instead of inline execution under a tight MSV
  /// budget.
  std::uint64_t uncomputations = 0;
};

struct NoisyRunResult {
  /// Sampled outcome histogram (empty for analyze_noisy or unmeasured circuits).
  OutcomeHistogram histogram;

  /// Matrix-vector operations actually performed.
  opcount_t ops = 0;

  /// What the baseline would have performed on the same trial set.
  opcount_t baseline_ops = 0;

  /// ops / baseline_ops — the paper's "normalized computation".
  double normalized_computation = 1.0;

  /// Maximum concurrently maintained state vectors (the paper's MSV).
  /// For tree-mode parallel runs this is the schedule's sequential MSV
  /// (tree peak demand) — the deterministic bound admission control
  /// enforces — not the timing-dependent transient peak.
  std::size_t max_live_states = 1;

  /// Checkpoint copies made at branch points (the schedule's only
  /// duplicated work; not matrix-vector ops).
  std::uint64_t fork_copies = 0;

  /// Parallel runs only: ops spent recomputing prefixes that a single
  /// sequential scheduler would have shared. Zero in tree mode by
  /// construction; for chunked mode, ops - (sequential cached ops).
  opcount_t redundant_prefix_ops = 0;

  /// Statistics of the generated trial set.
  TrialSetStats trial_stats;

  /// Noisy expectation value of each requested observable.
  std::vector<double> observable_means;

  /// Runtime-measured counters for this run (see TelemetrySummary).
  TelemetrySummary telemetry;
};

/// Statevector execution. The circuit must be decomposed to 1-/2-qubit
/// gates and small enough for explicit amplitudes (<= 30 qubits).
NoisyRunResult run_noisy(const Circuit& circuit, const NoiseModel& noise,
                         const NoisyRunConfig& config);

/// Accounting-only execution (no amplitudes). Valid for any qubit count.
NoisyRunResult analyze_noisy(const Circuit& circuit, const NoiseModel& noise,
                             const NoisyRunConfig& config);

}  // namespace rqsim
