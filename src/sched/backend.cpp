#include "sched/backend.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "linalg/pauli.hpp"
#include "sim/kernels.hpp"
#include "telemetry/telemetry.hpp"

namespace rqsim {

namespace {
// Mirrors every accumulation into SvRunResult::ops on this execution path,
// so the runtime-measured total ("sim.matvec_ops", shared with the baseline
// and tree executors by name) reconciles bitwise with the PlanVerifier
// proof and the reported op counts.
telemetry::Counter g_matvec_ops("sim.matvec_ops");
}  // namespace

// --------------------------------------------------------------------------
// CountBackend

void CountBackend::on_advance(std::size_t depth, layer_index_t from_layer,
                              layer_index_t to_layer) {
  (void)depth;
  ops_ += ctx_.ops_in_layers(from_layer, to_layer);
}

void CountBackend::on_fork(std::size_t depth) {
  (void)depth;
  ++copies_;
  ++live_;
  max_live_ = std::max(max_live_, live_);
}

void CountBackend::on_error(std::size_t depth, const ErrorEvent& event) {
  (void)depth;
  (void)event;
  ops_ += 1;
}

void CountBackend::on_finish(std::size_t depth, trial_index_t trial_index,
                             const Trial& trial) {
  (void)depth;
  (void)trial_index;
  (void)trial;
  ++finished_;
}

void CountBackend::on_drop(std::size_t depth) {
  (void)depth;
  RQSIM_CHECK(live_ > 1, "CountBackend: drop below the root checkpoint");
  --live_;
}

// --------------------------------------------------------------------------
// SvBackend

void apply_layers(const CircuitContext& ctx, StateVector& state, layer_index_t from,
                  layer_index_t to) {
  for (layer_index_t l = from; l < to; ++l) {
    for (gate_index_t g : ctx.layering.layers[l]) {
      apply_gate(state, ctx.circuit.gates()[g]);
    }
  }
}

void apply_error_event(const CircuitContext& ctx, StateVector& state,
                       const ErrorEvent& event) {
  if (is_idle_position(ctx.circuit.num_gates(), event.position)) {
    RQSIM_CHECK(event.op >= 1 && event.op <= kNumSinglePaulis,
                "apply_error_event: bad idle op code");
    apply_pauli(state, static_cast<Pauli>(event.op),
                idle_qubit(ctx.circuit.num_gates(), event.position));
    return;
  }
  const Gate& gate = ctx.circuit.gates()[event.position];
  if (gate.arity() == 1) {
    RQSIM_CHECK(event.op >= 1 && event.op <= kNumSinglePaulis,
                "apply_error_event: bad single-qubit op code");
    apply_pauli(state, static_cast<Pauli>(event.op), gate.qubits[0]);
  } else {
    RQSIM_CHECK(gate.arity() == 2, "apply_error_event: unsupported gate arity");
    RQSIM_CHECK(event.op >= 1 && event.op <= kNumPairPaulis,
                "apply_error_event: bad two-qubit op code");
    apply_pauli_pair(state, pauli_pair_from_index(event.op), gate.qubits[0],
                     gate.qubits[1]);
  }
}

SvBackend::SvBackend(const CircuitContext& ctx, Rng& rng, bool record_final_states,
                     const std::vector<PauliString>* observables, bool fuse_gates,
                     bool use_trial_seeds)
    : ctx_(ctx),
      rng_(rng),
      record_final_states_(record_final_states),
      use_trial_seeds_(use_trial_seeds),
      observables_(observables) {
  if (fuse_gates) {
    fusion_ = std::make_unique<FusionCache>(ctx.circuit, ctx.layering);
  }
  stack_.emplace_back(ctx.circuit.num_qubits());
  result_.max_live_states = 1;
  if (observables_ != nullptr) {
    for (const PauliString& p : *observables_) {
      RQSIM_CHECK(p.min_qubits() <= ctx.circuit.num_qubits(),
                  "SvBackend: observable exceeds circuit size");
    }
    result_.observable_sums.assign(observables_->size(), 0.0);
  }
}

const StateVector& SvBackend::state_at(std::size_t depth) const {
  RQSIM_CHECK(depth < stack_.size(), "SvBackend: depth out of range");
  return stack_[depth];
}

void SvBackend::on_advance(std::size_t depth, layer_index_t from_layer,
                           layer_index_t to_layer) {
  RQSIM_CHECK(depth == stack_.size() - 1, "SvBackend: advance must target the top");
  if (fusion_ != nullptr) {
    apply_fused(stack_[depth], fusion_->segment(from_layer, to_layer));
  } else {
    apply_layers(ctx_, stack_[depth], from_layer, to_layer);
  }
  const opcount_t advanced = ctx_.ops_in_layers(from_layer, to_layer);
  result_.ops += advanced;
  g_matvec_ops.add(advanced);
  cached_probs_.reset();
  cached_expectations_.reset();
}

void SvBackend::on_fork(std::size_t depth) {
  RQSIM_CHECK(depth == stack_.size() - 1, "SvBackend: fork must target the top");
  stack_.push_back(pool_.acquire_copy(stack_[depth]));
  ++result_.fork_copies;
  result_.max_live_states = std::max(result_.max_live_states, stack_.size());
  cached_probs_.reset();
  cached_expectations_.reset();
}

void SvBackend::on_error(std::size_t depth, const ErrorEvent& event) {
  RQSIM_CHECK(depth == stack_.size() - 1, "SvBackend: error must target the top");
  apply_error_event(ctx_, stack_[depth], event);
  result_.ops += 1;
  g_matvec_ops.increment();
  cached_probs_.reset();
  cached_expectations_.reset();
}

void SvBackend::on_finish(std::size_t depth, trial_index_t trial_index,
                          const Trial& trial) {
  const StateVector& state = state_at(depth);
  if (record_final_states_) {
    if (result_.final_states.size() <= trial_index) {
      result_.final_states.resize(trial_index + 1);
    }
    result_.final_states[trial_index] = state;
  }
  if (!ctx_.circuit.measured_qubits().empty()) {
    if (!cached_probs_) {
      cached_probs_ = measurement_probabilities(state, ctx_.circuit.measured_qubits());
    }
    std::uint64_t outcome;
    if (use_trial_seeds_) {
      Rng trial_rng(trial.meas_seed);
      outcome = sample_outcome(*cached_probs_, trial_rng);
    } else {
      outcome = sample_outcome(*cached_probs_, rng_);
    }
    outcome ^= trial.meas_flip_mask;
    ++result_.histogram[outcome];
  }
  if (observables_ != nullptr && !observables_->empty()) {
    if (!cached_expectations_) {
      std::vector<double> values;
      values.reserve(observables_->size());
      for (const PauliString& p : *observables_) {
        values.push_back(expectation(state, p));
      }
      cached_expectations_ = std::move(values);
    }
    for (std::size_t k = 0; k < cached_expectations_->size(); ++k) {
      result_.observable_sums[k] += (*cached_expectations_)[k];
    }
  }
}

void SvBackend::on_drop(std::size_t depth) {
  RQSIM_CHECK(depth == stack_.size() - 1 && stack_.size() > 1,
              "SvBackend: drop must pop the top (non-root) checkpoint");
  pool_.release(std::move(stack_.back()));
  stack_.pop_back();
  cached_probs_.reset();
  cached_expectations_.reset();
}

SvRunResult SvBackend::take_result() { return std::move(result_); }

// --------------------------------------------------------------------------
// TraceBackend

TraceBackend::TraceBackend(const CircuitContext& ctx, std::size_t num_trials)
    : ctx_(ctx), traces_(num_trials), trace_set_(num_trials, false) {
  stack_.emplace_back();
}

void TraceBackend::on_advance(std::size_t depth, layer_index_t from_layer,
                              layer_index_t to_layer) {
  RQSIM_CHECK(depth == stack_.size() - 1, "TraceBackend: advance must target the top");
  for (layer_index_t l = from_layer; l < to_layer; ++l) {
    for (gate_index_t g : ctx_.layering.layers[l]) {
      TraceOp op;
      op.gate = g;
      stack_[depth].push_back(op);
    }
  }
}

void TraceBackend::on_fork(std::size_t depth) {
  RQSIM_CHECK(depth == stack_.size() - 1, "TraceBackend: fork must target the top");
  stack_.push_back(stack_[depth]);
}

void TraceBackend::on_error(std::size_t depth, const ErrorEvent& event) {
  RQSIM_CHECK(depth == stack_.size() - 1, "TraceBackend: error must target the top");
  TraceOp op;
  op.is_error = true;
  op.event = event;
  stack_[depth].push_back(op);
}

void TraceBackend::on_finish(std::size_t depth, trial_index_t trial_index,
                             const Trial& trial) {
  (void)trial;
  RQSIM_CHECK(trial_index < traces_.size(), "TraceBackend: trial index out of range");
  RQSIM_CHECK(!trace_set_[trial_index], "TraceBackend: trial finished twice");
  traces_[trial_index] = stack_[depth];
  trace_set_[trial_index] = true;
}

void TraceBackend::on_drop(std::size_t depth) {
  RQSIM_CHECK(depth == stack_.size() - 1 && stack_.size() > 1,
              "TraceBackend: drop must pop the top (non-root) checkpoint");
  stack_.pop_back();
}

std::vector<TraceOp> expected_trace(const CircuitContext& ctx, const Trial& trial) {
  std::vector<TraceOp> out;
  std::size_t next_event = 0;
  for (layer_index_t l = 0; l < ctx.num_layers(); ++l) {
    for (gate_index_t g : ctx.layering.layers[l]) {
      TraceOp op;
      op.gate = g;
      out.push_back(op);
    }
    while (next_event < trial.events.size() && trial.events[next_event].layer == l) {
      TraceOp op;
      op.is_error = true;
      op.event = trial.events[next_event];
      out.push_back(op);
      ++next_event;
    }
  }
  return out;
}

}  // namespace rqsim
