// Multi-threaded cached execution.
//
// The paper (Section II) notes the inter-trial optimization is orthogonal
// to system-level parallelism. This module realizes that: the reordered
// trial list is split into contiguous chunks, each chunk is executed by an
// independent prefix-caching scheduler on its own thread, and the results
// are merged. Chunks of a reordered list are themselves reordered, so each
// worker keeps the full intra-chunk sharing; only the sharing *across*
// chunk boundaries is lost (ops_parallel >= ops_serial, bounded by
// num_threads extra circuit executions).
#pragma once

#include <cstddef>

#include "sched/runner.hpp"

namespace rqsim {

struct ParallelRunConfig : NoisyRunConfig {
  /// Worker-thread count; 0 or 1 runs serially on the caller's thread.
  std::size_t num_threads = 4;
};

/// Statevector execution of the reordered+cached simulation across
/// `num_threads` workers. Deterministic for a fixed (seed, num_threads).
/// MSV is reported per worker (each worker owns its own checkpoint stack).
NoisyRunResult run_noisy_parallel(const Circuit& circuit, const NoiseModel& noise,
                                  const ParallelRunConfig& config);

}  // namespace rqsim
