// Multi-threaded cached execution.
//
// The paper (Section II) notes the inter-trial optimization is orthogonal
// to system-level parallelism. Two strategies realize it:
//
//   kTree (default) — the work-stealing prefix-tree executor
//   (sched/tree_exec.hpp): one trial trie is built for the whole reordered
//   list and its subtrees are distributed over a worker pool. Every shared
//   prefix is computed exactly once *globally*, so the total op count
//   equals the sequential cached schedule's at any thread count
//   (redundant_prefix_ops == 0), and the MSV budget is enforced as one
//   global bound via banker-style admission control.
//
//   kChunked — the reordered trial list is split into contiguous chunks,
//   each executed by an independent sequential scheduler on its own
//   thread. Chunks of a reordered list are themselves reordered, so each
//   worker keeps full intra-chunk sharing; sharing *across* chunk
//   boundaries is recomputed per chunk and reported as
//   redundant_prefix_ops (bounded by num_threads extra circuit
//   executions). The MSV budget applies per worker.
//
// Both strategies sample outcomes from per-trial measurement seeds, so the
// histogram (and observable sums, in tree mode) is bitwise identical to
// the sequential run_noisy for any thread count.
#pragma once

#include <cstddef>

#include "sched/runner.hpp"

namespace rqsim {

struct ParallelRunConfig : NoisyRunConfig {
  /// Worker-thread count; 0 or 1 runs serially on the caller's thread.
  std::size_t num_threads = 4;
};

/// Statevector execution of the reordered+cached simulation across
/// `num_threads` workers, using config.parallel_mode (tree by default).
/// The histogram is bitwise identical to run_noisy regardless of mode or
/// thread count.
NoisyRunResult run_noisy_parallel(const Circuit& circuit, const NoiseModel& noise,
                                  const ParallelRunConfig& config);

}  // namespace rqsim
