#include "sched/tree.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sched/order.hpp"
#include "trial/frame.hpp"

namespace rqsim {

namespace {

// Mirrors ScheduleWalker (sched/plan.cpp) shape-for-shape: the same group
// loop, the same advance-before-fork frontier updates, the same singleton
// and MSV-budget lowering to replay leaves. Any divergence between the two
// recursions is caught by PlanVerifier::verify_tree_plan, which compares
// the linearized tree against the walker's stream op for op.
class TreeBuilder {
 public:
  TreeBuilder(const CircuitContext& ctx, const std::vector<Trial>& trials,
              const ScheduleOptions& options)
      : ctx_(ctx), trials_(trials), options_(options) {
    for (const qubit_t q : ctx.circuit.measured_qubits()) {
      measured_mask_ |= std::uint64_t{1} << q;
    }
    // exact_suffix_[l]: every gate in layers [l, num_layers) applies and
    // inverts bitwise (the uncompute whitelist). Error injections are
    // Paulis — always exact — so this suffix alone decides uncompute_ok.
    const std::size_t num_layers = ctx.num_layers();
    exact_suffix_.assign(num_layers + 1, true);
    for (std::size_t l = num_layers; l-- > 0;) {
      bool ok = exact_suffix_[l + 1];
      for (const gate_index_t g : ctx.layering.layers[l]) {
        ok = ok && gate_fp_exact_invertible(ctx.circuit.gates()[g].kind);
      }
      exact_suffix_[l] = ok;
    }
  }

  ExecTree build() {
    ExecTree tree;
    tree.num_trials = trials_.size();
    if (trials_.empty()) {
      return tree;
    }
    tree_ = &tree;
    build_branch(kNoNode, nullptr, 0, trials_.size(), /*event_depth=*/0,
                 /*depth=*/0, /*entry_frontier=*/0);
    tree.planned_forks = tree.nodes.size() - 1;
    tree.peak_demand = tree.nodes.front().peak_demand;
    return tree;
  }

 private:
  /// Ops a replay leaf executes: advance/error alternation over the trial's
  /// remaining events, then the final advance to the end of the circuit.
  opcount_t replay_ops(const Trial& trial, std::size_t event_depth,
                       layer_index_t frontier) const {
    opcount_t ops = 0;
    layer_index_t f = frontier;
    for (std::size_t k = event_depth; k < trial.events.size(); ++k) {
      const layer_index_t target = trial.events[k].layer + 1;
      if (target > f) {
        ops += ctx_.ops_in_layers(f, target);
        f = target;
      }
      ops += 1;
    }
    const auto total = static_cast<layer_index_t>(ctx_.num_layers());
    if (total > f) {
      ops += ctx_.ops_in_layers(f, total);
    }
    return ops;
  }

  std::size_t make_replay(std::size_t parent, std::size_t t, std::size_t event_depth,
                          layer_index_t frontier) {
    const std::size_t idx = tree_->nodes.size();
    TreeNode node;
    node.kind = TreeNode::Kind::kReplay;
    node.parent = parent;
    node.event_depth = event_depth;
    node.entry_frontier = frontier;
    node.trial = t;
    node.peak_demand = 1;
    node.uncompute_ok = exact_suffix_[frontier];
    node.subtree_ops = replay_ops(trials_[t], event_depth, frontier);
    tree_->planned_ops += node.subtree_ops;
    tree_->nodes.push_back(std::move(node));
    return idx;
  }

  /// All-or-nothing frame collapse of the group [begin, end) branching at
  /// `event_depth`: succeeds iff *every* trial's remaining errors propagate
  /// to the end of the circuit as a pure Pauli frame (Clifford-only
  /// downstream conjugation, X part confined to measured qubits, Z-only if
  /// observables will be evaluated). On success the group's FrameTrials are
  /// appended to `frames` and the caller skips building the subtree; on
  /// failure `frames` is left untouched and the group forks as usual.
  bool try_collapse_group(std::size_t begin, std::size_t end,
                          std::size_t event_depth,
                          std::vector<FrameTrial>& frames) {
    const std::size_t before = frames.size();
    for (std::size_t t = begin; t != end; ++t) {
      const FramePropagation p = propagate_frame_to_end(
          ctx_.circuit, ctx_.layering, trials_[t], event_depth);
      if (!p.ok || !frame_x_confined_to(p.frame, measured_mask_) ||
          (options_.frame_observables && p.frame.x != 0)) {
        frames.resize(before);
        return false;
      }
      FrameTrial ft;
      ft.trial = t;
      ft.frame_x = p.frame.x;
      ft.frame_z = p.frame.z;
      ft.frame_ops = p.frame_ops;
      frames.push_back(ft);
    }
    return true;
  }

  /// Build the kBranch node for trials [begin, end) sharing `event_depth`
  /// events (entry_event is the shared event just injected, null for the
  /// root). Returns the node index. Matches ScheduleWalker::walk.
  std::size_t build_branch(std::size_t parent, const ErrorEvent* entry_event,
                           std::size_t begin, std::size_t end, std::size_t event_depth,
                           std::size_t depth, layer_index_t entry_frontier) {
    const std::size_t idx = tree_->nodes.size();
    const opcount_t ops_before = tree_->planned_ops;
    {
      TreeNode node;
      node.kind = TreeNode::Kind::kBranch;
      node.parent = parent;
      if (entry_event != nullptr) {
        node.entry_event = *entry_event;
      }
      node.event_depth = event_depth;
      node.entry_frontier = entry_frontier;
      node.begin = begin;
      node.end = end;
      tree_->nodes.push_back(std::move(node));
    }
    // NOTE: tree_->nodes may reallocate during recursion — never hold a
    // reference to nodes[idx] across a child build; collect locally and
    // write back at the end.
    std::vector<std::size_t> children;
    std::vector<FrameTrial> frame_trials;
    layer_index_t frontier = entry_frontier;
    std::size_t i = begin;
    while (i != end && trials_[i].events.size() > event_depth) {
      const ErrorEvent event = trials_[i].events[event_depth];
      std::size_t j = i + 1;
      while (j != end && trials_[j].events.size() > event_depth &&
             trials_[j].events[event_depth] == event) {
        ++j;
      }
      if (options_.frame_collapse &&
          try_collapse_group(i, j, event_depth, frame_trials)) {
        // The whole subtree is frame bookkeeping: no advance to the branch
        // point, no fork, no child ops. The trials finish on this node's
        // buffer after the final advance below. Skipping the intermediate
        // advance changes nothing downstream — ops_in_layers is a prefix
        // sum, so a later child (or the final advance) pays the same
        // layers exactly once.
        i = j;
        continue;
      }
      const layer_index_t target = event.layer + 1;
      if (target > frontier) {
        tree_->planned_ops += ctx_.ops_in_layers(frontier, target);
        frontier = target;
      }
      if (j - i == 1) {
        children.push_back(make_replay(idx, i, event_depth, frontier));
      } else if (options_.max_states == 0 || depth + 2 < options_.max_states) {
        tree_->planned_ops += 1;  // the child's shared entry-error injection
        children.push_back(
            build_branch(idx, &event, i, j, event_depth + 1, depth + 1, frontier));
      } else {
        for (std::size_t t = i; t != j; ++t) {
          children.push_back(make_replay(idx, t, event_depth, frontier));
        }
      }
      i = j;
    }
    if (i != end || !frame_trials.empty()) {
      // Tail trials and frame-collapsed trials both finish on this node's
      // buffer advanced to the end of the circuit.
      const auto total = static_cast<layer_index_t>(ctx_.num_layers());
      if (total > frontier) {
        tree_->planned_ops += ctx_.ops_in_layers(frontier, total);
      }
    }
    std::size_t peak = 1;
    for (const std::size_t ci : children) {
      peak = std::max(peak, 1 + tree_->nodes[ci].peak_demand);
    }
    tree_->frame_collapsed_trials += frame_trials.size();
    for (const FrameTrial& ft : frame_trials) {
      tree_->planned_frame_ops += ft.frame_ops;
    }
    TreeNode& node = tree_->nodes[idx];
    node.tail_begin = i;
    node.tail_end = end;
    node.children = std::move(children);
    node.frame_trials = std::move(frame_trials);
    node.peak_demand = peak;
    node.subtree_ops = tree_->planned_ops - ops_before;
    return idx;
  }

  const CircuitContext& ctx_;
  const std::vector<Trial>& trials_;
  const ScheduleOptions& options_;
  ExecTree* tree_ = nullptr;
  std::uint64_t measured_mask_ = 0;
  std::vector<bool> exact_suffix_;
};

// Re-emit the depth-first schedule of a subtree. The emission order is the
// definition of equivalence with ScheduleWalker: parent advances before
// every fork, forks are emitted at the parent depth, the child's entry
// error / replay suffix at depth + 1, the drop after the child completes,
// and tail finishes after the final advance.
class TreeEmitter {
 public:
  TreeEmitter(const CircuitContext& ctx, const ExecTree& tree,
              const std::vector<Trial>& trials, ScheduleVisitor& visitor)
      : ctx_(ctx), tree_(tree), trials_(trials), visitor_(visitor) {}

  void run() {
    if (tree_.nodes.empty()) {
      return;
    }
    emit_branch(0, /*depth=*/0);
  }

 private:
  void emit_branch(std::size_t idx, std::size_t depth) {
    const TreeNode& node = tree_.nodes[idx];
    layer_index_t frontier = node.entry_frontier;
    if (node.parent != kNoNode) {
      visitor_.on_error(depth, node.entry_event);
    }
    for (const std::size_t ci : node.children) {
      const TreeNode& child = tree_.nodes[ci];
      if (child.entry_frontier > frontier) {
        visitor_.on_advance(depth, frontier, child.entry_frontier);
        frontier = child.entry_frontier;
      }
      visitor_.on_fork(depth);
      if (child.kind == TreeNode::Kind::kReplay) {
        emit_replay(ci, depth + 1);
      } else {
        emit_branch(ci, depth + 1);
      }
      visitor_.on_drop(depth + 1);
    }
    if (node.tail_begin != node.tail_end || !node.frame_trials.empty()) {
      const auto total = static_cast<layer_index_t>(ctx_.num_layers());
      if (total > frontier) {
        visitor_.on_advance(depth, frontier, total);
        frontier = total;
      }
      for (std::size_t t = node.tail_begin; t != node.tail_end; ++t) {
        visitor_.on_finish(depth, static_cast<trial_index_t>(t), trials_[t]);
      }
      // Frame-collapsed trials finish on the same buffer; their remaining
      // events are virtual (carried by the recorded frame), so the stream
      // shows a finish with only the node's event_depth-long prefix applied
      // — the verifier's frame-algebra pass proves the rest.
      for (const FrameTrial& ft : node.frame_trials) {
        visitor_.on_finish(depth, static_cast<trial_index_t>(ft.trial),
                           trials_[ft.trial]);
      }
    }
  }

  void emit_replay(std::size_t idx, std::size_t depth) {
    const TreeNode& node = tree_.nodes[idx];
    const Trial& trial = trials_[node.trial];
    layer_index_t f = node.entry_frontier;
    for (std::size_t k = node.event_depth; k < trial.events.size(); ++k) {
      const ErrorEvent& event = trial.events[k];
      const layer_index_t target = event.layer + 1;
      if (target > f) {
        visitor_.on_advance(depth, f, target);
        f = target;
      }
      visitor_.on_error(depth, event);
    }
    const auto total = static_cast<layer_index_t>(ctx_.num_layers());
    if (total > f) {
      visitor_.on_advance(depth, f, total);
    }
    visitor_.on_finish(depth, static_cast<trial_index_t>(node.trial), trial);
  }

  const CircuitContext& ctx_;
  const ExecTree& tree_;
  const std::vector<Trial>& trials_;
  ScheduleVisitor& visitor_;
};

}  // namespace

ExecTree build_exec_tree(const CircuitContext& ctx, const std::vector<Trial>& trials,
                         const ScheduleOptions& options) {
  RQSIM_CHECK(is_reordered(trials), "build_exec_tree: trials must be reordered first");
  RQSIM_CHECK(options.max_states == 0 || options.max_states >= 2,
              "build_exec_tree: max_states must be 0 (unlimited) or >= 2");
  return TreeBuilder(ctx, trials, options).build();
}

void linearize_tree(const CircuitContext& ctx, const ExecTree& tree,
                    const std::vector<Trial>& trials, ScheduleVisitor& visitor) {
  RQSIM_CHECK(tree.num_trials == trials.size(),
              "linearize_tree: tree was built for a different trial list");
  TreeEmitter(ctx, tree, trials, visitor).run();
}

}  // namespace rqsim
