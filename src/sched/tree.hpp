// Explicit prefix-tree ("trie") representation of a reordered trial set.
//
// The reorder+prefix-cache schedule is a depth-first walk of a tree whose
// internal nodes are shared error-event prefixes and whose leaves are
// trials. schedule_trials (sched/plan.hpp) performs that walk implicitly by
// recursing over the sorted list; this module materializes the tree once so
// it can be executed *as a tree* — each ready subtree is an independent
// task, which is what lets the parallel executor (sched/tree_exec.hpp)
// preserve the paper's op count under multi-threading instead of paying the
// chunked-mode prefix re-execution.
//
// Node semantics mirror the sequential walker exactly:
//
//   kBranch — a group of trials sharing `event_depth` events. Its buffer
//             enters at `entry_frontier` (the parent's layer frontier at
//             fork time) with `entry_event` still to apply (non-root). The
//             node advances its buffer layer-by-layer past each child's
//             branch point, forking one checkpoint per child — the only
//             duplicated work of the schedule, counted as fork copies —
//             then advances to the end of the circuit and finishes its
//             tail trials (the error-free continuations of the prefix).
//   kReplay — a single trial executed on a private scratch state from the
//             parent frontier onward: the Algorithm-1 singleton case and
//             the MSV-budget fallback both lower to this node kind.
//
// `linearize_tree` re-emits the tree as a ScheduleVisitor stream. The
// linearization is defined to be *identical* to the sequential walker's
// stream — the tree-plan verifier (verify/plan_verifier.hpp) proves this
// op-for-op, which is how tree execution inherits every invariant already
// proved for the sequential schedule (reorder order, stack discipline,
// exact op-count telescoping).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sched/plan.hpp"
#include "trial/trial.hpp"

namespace rqsim {

inline constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);

/// A trial finished by Pauli-frame collapse (ScheduleOptions::
/// frame_collapse): instead of forking a statevector for its remaining
/// error events, the trial finishes on its node's end-of-circuit buffer
/// carrying this frame, applied at sampling time as an outcome-bit
/// permutation (and a sign on Z-only observables). The masks are the
/// symplectic representation of trial/frame.hpp's PauliFrame, already
/// conjugated through every downstream Clifford gate.
struct FrameTrial {
  std::size_t trial = 0;
  std::uint64_t frame_x = 0;
  std::uint64_t frame_z = 0;

  /// Conjugation table lookups the propagation performed — the integer
  /// bookkeeping that replaced this trial's matvec ops (telemetry
  /// "sim.frame_ops"; never counted in planned_ops).
  opcount_t frame_ops = 0;
};

struct TreeNode {
  enum class Kind : std::uint8_t { kBranch, kReplay };

  Kind kind = Kind::kBranch;
  std::size_t parent = kNoNode;

  /// Error event applied when this node's buffer starts executing (valid
  /// for every non-root kBranch node; kReplay nodes apply their events from
  /// `event_depth` onward instead).
  ErrorEvent entry_event;

  /// Number of leading error events shared by every trial of this node
  /// (kBranch: including entry_event; kReplay: index of the first event
  /// still to apply).
  std::size_t event_depth = 0;

  /// Layer frontier of the buffer handed to this node: the parent advanced
  /// its checkpoint error-free through layers [0, entry_frontier) before
  /// forking.
  layer_index_t entry_frontier = 0;

  /// kBranch: trials [begin, end) of the reordered list form this group.
  std::size_t begin = 0;
  std::size_t end = 0;

  /// kReplay: the single trial replayed on the scratch state.
  std::size_t trial = 0;

  /// kBranch: trials [tail_begin, tail_end) have exactly `event_depth`
  /// errors and finish on this node's own buffer after the final advance.
  std::size_t tail_begin = 0;
  std::size_t tail_end = 0;

  /// kBranch: child subtrees in schedule order (branch points by event
  /// order, each either a kBranch subtree or one kReplay leaf per trial).
  std::vector<std::size_t> children;

  /// kBranch: trials of [begin, end) whose subtrees the frame-collapse
  /// pass eliminated. They share this node's event_depth-long prefix and
  /// finish on this node's own buffer after the final advance; their
  /// remaining events live only in the recorded frames. Empty unless the
  /// tree was built with ScheduleOptions::frame_collapse.
  std::vector<FrameTrial> frame_trials;

  /// kReplay: every gate in layers [entry_frontier, num_layers) is
  /// fp-exact-invertible (circuit/gate.hpp) — error injections are Paulis
  /// and always are — so the executor may run this leaf *in place* on a
  /// shared buffer and restore it bitwise by applying the inverse sequence,
  /// instead of falling back inline when the MSV token bank refuses a fork.
  bool uncompute_ok = false;

  /// Buffers needed to execute this subtree sequentially, including the
  /// node's own (= the sequential walker's stack growth below this point).
  /// The executor's admission control reserves this many states before
  /// letting a subtree run concurrently, which is what makes the MSV
  /// budget a *global* bound rather than a per-chunk one.
  std::size_t peak_demand = 1;

  /// Gate + error ops of the whole subtree rooted here (excluding the
  /// node's own entry-error injection, which the parent's stream pays).
  /// The executor's chunk batcher uses this as the work estimate when
  /// grouping sibling subtrees into one steal-able task.
  opcount_t subtree_ops = 0;
};

struct ExecTree {
  /// nodes[0] is the root (empty trial list produces an empty vector).
  std::vector<TreeNode> nodes;
  std::size_t num_trials = 0;

  /// Gate + error-injection op count of the tree schedule; equal by
  /// construction to the sequential cached schedule's op count.
  opcount_t planned_ops = 0;

  /// Checkpoint copies the schedule performs (== nodes.size() - 1: every
  /// non-root node is forked exactly once).
  std::uint64_t planned_forks = 0;

  /// Sequential MSV of the schedule (root peak demand); the executor's
  /// global live-state bound when max_states is set.
  std::size_t peak_demand = 1;

  /// Trials finished by Pauli-frame collapse across the whole tree, and
  /// the conjugation-table lookups their propagation cost. When collapse
  /// is off (or nothing collapsed) both are 0 and the tree is op-for-op
  /// the sequential cached schedule; otherwise planned_ops is *smaller*
  /// than the sequential schedule's — the saving the PlanVerifier's
  /// frame-algebra pass proves exactly.
  std::uint64_t frame_collapsed_trials = 0;
  opcount_t planned_frame_ops = 0;

  bool has_frames() const { return frame_collapsed_trials != 0; }
};

/// Build the execution tree for `trials` (which must already be in reorder
/// order). The MSV budget in `options` lowers over-budget branches to
/// kReplay leaves exactly like the sequential walker, so the tree schedule
/// and the sequential schedule stay op-identical for every budget.
ExecTree build_exec_tree(const CircuitContext& ctx, const std::vector<Trial>& trials,
                         const ScheduleOptions& options = {});

/// Emit the tree's depth-first schedule to `visitor`. Produces exactly the
/// stream schedule_trials emits for the same (trials, options) — the
/// tree-plan verifier asserts this equality op-for-op.
void linearize_tree(const CircuitContext& ctx, const ExecTree& tree,
                    const std::vector<Trial>& trials, ScheduleVisitor& visitor);

}  // namespace rqsim
