// Compressed checkpoint execution.
//
// The paper notes (Section IV.A) that compressed state-vector storage
// [Anders-Briegel, Zulehner-Wille] can stretch the MSV memory budget. This
// backend realizes the idea inside the cached scheduler: only the *top*
// checkpoint is a dense working state; every dormant checkpoint below it
// is stored losslessly — sparsely when few amplitudes are nonzero, dense
// otherwise — and reinflated on drop. Because compression is lossless,
// results are bit-for-bit identical to SvBackend; only the bytes held
// change. Peak byte usage is reported next to the dense-MSV equivalent.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "common/rng.hpp"
#include "sched/backend.hpp"
#include "sched/plan.hpp"

namespace rqsim {

/// A dormant checkpoint: dense amplitudes or sparse (index, amplitude)
/// pairs, whichever is smaller.
class CompressedState {
 public:
  static CompressedState compress(const StateVector& state);
  StateVector decompress() const;

  /// Bytes of amplitude payload held by this representation.
  std::size_t stored_bytes() const;
  bool is_sparse() const { return std::holds_alternative<Sparse>(repr_); }

 private:
  struct Sparse {
    unsigned num_qubits = 0;
    std::vector<std::uint64_t> indices;
    std::vector<cplx> amplitudes;
  };
  std::variant<StateVector, Sparse> repr_;
};

struct CompactRunResult {
  OutcomeHistogram histogram;
  opcount_t ops = 0;
  std::size_t max_live_states = 0;

  /// Peak bytes of amplitude storage actually held (working state plus
  /// compressed dormant checkpoints).
  std::size_t peak_bytes = 0;

  /// What the same schedule would hold with dense checkpoints.
  std::size_t dense_peak_bytes = 0;
};

class CompactSvBackend : public ScheduleVisitor {
 public:
  CompactSvBackend(const CircuitContext& ctx, Rng& rng);

  void on_advance(std::size_t depth, layer_index_t from_layer,
                  layer_index_t to_layer) override;
  void on_fork(std::size_t depth) override;
  void on_error(std::size_t depth, const ErrorEvent& event) override;
  void on_finish(std::size_t depth, trial_index_t trial_index,
                 const Trial& trial) override;
  void on_drop(std::size_t depth) override;

  CompactRunResult take_result();

 private:
  void note_memory();

  const CircuitContext& ctx_;
  Rng& rng_;
  StateVector working_;
  std::vector<CompressedState> dormant_;
  CompactRunResult result_;
  std::optional<std::vector<double>> cached_probs_;
};

}  // namespace rqsim
