#include "sched/tree_exec.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "circuit/fusion.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/pauli_string.hpp"
#include "sched/backend.hpp"
#include "sim/buffer_pool.hpp"
#include "sim/kernels.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "trial/frame.hpp"

namespace rqsim {

namespace {

/// Free buffers retained across the run (same default the single-threaded
/// SvBackend pool uses).
constexpr std::size_t kMaxPooledBuffers = 64;

/// Total bytes of zero-filled buffers prewarm may page in before workers
/// start; beyond this, first-touch faulting on the workers is cheaper than
/// serializing startup behind a giant memset.
constexpr std::size_t kPrewarmByteCap = std::size_t{512} << 20;

// "sim.matvec_ops" mirrors the per-worker ops accumulation (same logical
// metric as SvBackend/baseline, interned by name) so the runtime total
// reconciles bitwise with TreeExecStats::ops and the PlanVerifier proof.
telemetry::Counter g_matvec_ops("sim.matvec_ops");
telemetry::Counter g_steals("tree_exec.steals");
telemetry::Counter g_inline_fallbacks("tree_exec.inline_fallbacks");
telemetry::Counter g_forks("tree_exec.forks");
telemetry::Counter g_tasks("tree_exec.tasks");
telemetry::Counter g_chunk_tasks("tree_exec.chunk_tasks");
telemetry::Counter g_frame_collapsed_trials("sim.frame_collapsed_trials");
telemetry::Counter g_frame_ops("sim.frame_ops");
telemetry::Counter g_uncomputations("sim.uncomputations");
telemetry::Histogram g_worker_ops("tree_exec.worker_ops");

struct Task {
  /// Node task (chunk_end == 0): execute the subtree rooted at `node` on
  /// `handle` (only the root is ever a node task). Chunk task: execute
  /// children [chunk_begin, chunk_end) of `node` — a same-frontier sibling
  /// run — forking each child's entry handle from `handle`.
  std::size_t node = 0;
  std::size_t chunk_begin = 0;
  std::size_t chunk_end = 0;
  CowState handle;
  /// MSV-budget tokens held by this task's subtree (0 when the budget is
  /// unlimited or the subtree runs inline under its parent's reservation).
  std::size_t reserved = 0;
  /// Uncompute mode: the chunk's replay leaves run in place on one
  /// materialized buffer (reserved == 1), restored bitwise by inverse
  /// gates between trials. Taken when the full banker reservation was
  /// refused but every leaf in the chunk is uncompute_ok.
  bool uncompute = false;
};

class TreeExecutor {
 public:
  TreeExecutor(const CircuitContext& ctx, const ExecTree& tree,
               const std::vector<Trial>& trials, const TreeExecConfig& config,
               TreeTrialSink& sink)
      : ctx_(ctx),
        tree_(tree),
        trials_(trials),
        sink_(sink),
        num_workers_(std::max<std::size_t>(1, config.num_threads)),
        fuse_gates_(config.fuse_gates),
        // Uncompute rewinds gate-by-gate with synthesized inverses; fused
        // forward segments would not be restored bitwise, so fusion
        // disables the path.
        allow_uncompute_(config.allow_uncompute && !config.fuse_gates),
        budget_(config.max_states),
        pool_(kMaxPooledBuffers, num_workers_),
        workers_(num_workers_) {
    if (fuse_gates_) {
      for (Worker& w : workers_) {
        w.fusion = std::make_unique<FusionCache>(ctx.circuit, ctx.layering);
      }
    }
  }

  TreeExecStats run() {
    RQSIM_SPAN("tree_exec.run");
    TreeExecStats stats;
    if (tree_.nodes.empty()) {
      return stats;
    }
    // Admission tokens cover *materialized* buffers only. A CoW fork is a
    // refcount bump — a queued, unmaterialized handle occupies no memory —
    // so with no user budget there is nothing to ration: every chunk
    // queues, reservations are skipped entirely, and inline_fallbacks
    // stays zero. With a budget, the banker scheme reserves each subtree's
    // sequential peak before it may run concurrently; the root takes the
    // whole tree peak (the replay lowering guarantees it fits).
    if (budget_ != 0) {
      RQSIM_CHECK(tree_.peak_demand <= budget_,
                  "execute_tree: tree peak demand exceeds the MSV budget (tree "
                  "built with a different budget?)");
      effective_budget_ = budget_;
      tokens_left_.store(budget_ - tree_.peak_demand, std::memory_order_relaxed);
    } else {
      effective_budget_ = static_cast<std::size_t>(-1);
      tokens_left_.store(0, std::memory_order_relaxed);
    }

    // Work granularity: a chunk of sibling subtrees is sized so each worker
    // sees a handful of coarse steals instead of one deque entry per fork.
    chunk_target_ = std::max<opcount_t>(
        1, tree_.planned_ops / static_cast<opcount_t>(num_workers_ * 4));

    prewarm_pool();

    StateVector root_state(ctx_.circuit.num_qubits());
    note_materialize();
    outstanding_.store(1, std::memory_order_relaxed);
    {
      Task root;
      root.node = 0;
      root.handle = CowState::adopt(std::move(root_state));
      root.reserved = budget_ != 0 ? tree_.peak_demand : 0;
      std::lock_guard<std::mutex> lock(workers_[0].mutex);
      workers_[0].deque.push_back(std::move(root));
    }

    if (num_workers_ == 1) {
      worker_loop(0);
    } else {
      // Fresh pool threads have an empty trace context; hand them the
      // spawning thread's (the service worker's, carrying the batch's
      // trace id) so their spans join the job's distributed trace.
      const std::uint64_t trace_id = telemetry::current_trace_id();
      std::vector<std::thread> threads;
      threads.reserve(num_workers_);
      for (std::size_t w = 0; w < num_workers_; ++w) {
        threads.emplace_back([this, w, trace_id] {
          telemetry::set_trace_context(trace_id);
          worker_loop(w);
        });
      }
      for (std::thread& t : threads) {
        t.join();
      }
    }

    if (error_ != nullptr) {
      std::rethrow_exception(error_);
    }
    RQSIM_CHECK(outstanding_.load(std::memory_order_relaxed) == 0 &&
                    live_.load(std::memory_order_relaxed) == 0,
                "execute_tree: task or buffer accounting leak");
    for (const Worker& w : workers_) {
      stats.ops += w.ops;
      stats.fork_copies += w.fork_copies;
      stats.cow_materializations += w.cow_materializations;
      stats.chunk_tasks += w.chunk_tasks;
      stats.steals += w.steals;
      stats.inline_fallbacks += w.inline_fallbacks;
      stats.frame_collapsed_trials += w.frame_trials;
      stats.frame_ops += w.frame_ops;
      stats.uncomputations += w.uncomputations;
      stats.uncompute_ops += w.uncompute_ops;
      g_worker_ops.record(w.ops);
    }
    g_matvec_ops.add(stats.ops);
    g_forks.add(stats.fork_copies);
    g_frame_collapsed_trials.add(stats.frame_collapsed_trials);
    g_frame_ops.add(stats.frame_ops);
    g_uncomputations.add(stats.uncomputations);
    stats.max_live_states = max_live_.load(std::memory_order_relaxed);
    stats.pool_reuses = pool_.reuse_count();
    stats.pool_allocs = pool_.alloc_count();
    stats.prewarmed = pool_.prewarm_count();
    return stats;
  }

 private:
  struct alignas(64) Worker {
    std::mutex mutex;
    std::deque<Task> deque;
    std::unique_ptr<FusionCache> fusion;
    opcount_t ops = 0;
    std::uint64_t fork_copies = 0;
    std::uint64_t cow_materializations = 0;
    std::uint64_t chunk_tasks = 0;
    std::uint64_t steals = 0;
    std::uint64_t inline_fallbacks = 0;
    std::uint64_t frame_trials = 0;
    std::uint64_t frame_ops = 0;
    std::uint64_t uncomputations = 0;
    opcount_t uncompute_ops = 0;
  };

  // ---- pool pre-warm ----------------------------------------------------

  void prewarm_pool() {
    if (tree_.planned_forks == 0) {
      return;
    }
    const unsigned n = ctx_.circuit.num_qubits();
    const std::size_t buffer_bytes = sizeof(cplx) << n;
    // A worker's steady-state shard traffic is its share of the live-state
    // peak plus slack for the chunks it runs back to back.
    std::size_t per_shard =
        std::min<std::size_t>(8, tree_.peak_demand / num_workers_ + 3);
    // Byte cap: at large qubit counts faulting the pages lazily on the
    // workers beats a serial up-front memset of GiBs.
    const std::size_t cap_buffers =
        kPrewarmByteCap / std::max<std::size_t>(1, buffer_bytes * num_workers_);
    per_shard = std::min(per_shard, cap_buffers);
    if (per_shard > 0) {
      pool_.prewarm(n, per_shard);
    }
  }

  // ---- live-state accounting -------------------------------------------

  /// One more *materialized* statevector exists (root adoption, or a CoW
  /// copy). Unmaterialized forks never pass through here — that is the
  /// whole point of the reformed accounting.
  void note_materialize() {
    const std::size_t live = live_.fetch_add(1, std::memory_order_acq_rel) + 1;
    std::size_t seen = max_live_.load(std::memory_order_relaxed);
    while (live > seen &&
           !max_live_.compare_exchange_weak(seen, live, std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
    }
    // The banker reservation makes this a structural guarantee; the check
    // turns any accounting bug into a loud failure instead of a silently
    // blown memory budget.
    RQSIM_CHECK(live <= effective_budget_,
                "execute_tree: live statevectors exceed the MSV budget");
  }

  /// Mutable access to the handle's buffer, materializing (and accounting)
  /// a private copy when the buffer is shared.
  StateVector& writable(std::size_t w, CowState& handle) {
    bool copied = false;
    bool released_peer = false;
    StateVector& state = handle.mutate(pool_, w, &copied, &released_peer);
    if (copied) {
      telemetry::trace_instant("tree_exec.materialize");
      workers_[w].cow_materializations += 1;
      // released_peer: every other handle dropped between the shared check
      // and the detach, so the old buffer went back to the pool — the copy
      // replaced it one-for-one and the live count is unchanged.
      if (!released_peer) {
        note_materialize();
      }
    }
    return state;
  }

  /// A child subtree's entry handle: the schedule fork (counted as a fork
  /// copy so stats.fork_copies == planned_forks at every thread count,
  /// exactly as when forks were eager copies), realized as a refcount bump.
  CowState fork_entry(std::size_t w, const CowState& src) {
    telemetry::trace_instant("tree_exec.fork");
    workers_[w].fork_copies += 1;
    return src.fork();
  }

  /// The schedule fork for the *last* consumer of a dead handle: the parent
  /// buffer moves instead of forking, so the child's first write is
  /// guaranteed in-place — a materialization the CoW scheme can prove
  /// eliminated regardless of scheduling timing.
  CowState move_entry(std::size_t w, CowState& src) {
    telemetry::trace_instant("tree_exec.fork");
    workers_[w].fork_copies += 1;
    return std::move(src);
  }

  void drop_handle(std::size_t w, CowState& handle) {
    if (!handle.valid()) {
      return;
    }
    telemetry::trace_instant("tree_exec.drop");
    if (handle.drop(pool_, w)) {
      live_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  bool try_reserve(std::size_t tokens) {
    std::size_t cur = tokens_left_.load(std::memory_order_relaxed);
    while (cur >= tokens) {
      if (tokens_left_.compare_exchange_weak(cur, cur - tokens,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  void release_tokens(std::size_t tokens) {
    tokens_left_.fetch_add(tokens, std::memory_order_acq_rel);
  }

  // MSV token occupancy timeline: sampled after every reserve/release so
  // the exported trace carries a stepped reserved-tokens track. The load is
  // racy by design — the track is an observation, not an invariant.
  void note_token_occupancy() {
    if (!telemetry::tracing_active()) {
      return;
    }
    const std::size_t left = tokens_left_.load(std::memory_order_relaxed);
    telemetry::trace_counter("tree_exec.msv_tokens_reserved",
                             effective_budget_ - left);
  }

  // ---- scheduling -------------------------------------------------------

  bool pop_local(std::size_t w, Task& out) {
    std::lock_guard<std::mutex> lock(workers_[w].mutex);
    if (workers_[w].deque.empty()) {
      return false;
    }
    out = std::move(workers_[w].deque.back());
    workers_[w].deque.pop_back();
    return true;
  }

  bool steal(std::size_t thief, Task& out) {
    for (std::size_t k = 1; k < num_workers_; ++k) {
      Worker& victim = workers_[(thief + k) % num_workers_];
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.deque.empty()) {
        // Front of the deque = oldest pending chunk = the largest batch of
        // work; stealing coarse keeps steals rare.
        out = std::move(victim.deque.front());
        victim.deque.pop_front();
        workers_[thief].steals += 1;
        g_steals.increment();
        telemetry::trace_instant("tree_exec.steal");
        return true;
      }
    }
    return false;
  }

  void worker_loop(std::size_t w) {
    if (num_workers_ > 1) {
      // Dedicated pool threads get their own trace lane; the 1-thread path
      // runs on the caller's thread and keeps its lane.
      telemetry::set_thread_lane("tree_exec.worker-" + std::to_string(w));
    }
    Task task;
    for (;;) {
      if (pop_local(w, task) || steal(w, task)) {
        run_task(w, task);
        continue;
      }
      if (outstanding_.load(std::memory_order_acquire) == 0) {
        return;
      }
      // Bounded nap as the wakeup backstop: a producer's notify can land
      // between our empty scan and the wait, so never sleep unbounded.
      std::unique_lock<std::mutex> lock(idle_mutex_);
      idle_cv_.wait_for(lock, std::chrono::microseconds(200));
    }
  }

  void run_task(std::size_t w, Task& task) {
    RQSIM_SPAN("tree_exec.task");
    g_tasks.increment();
    try {
      if (abort_.load(std::memory_order_relaxed)) {
        drop_handle(w, task.handle);
      } else if (task.chunk_end != 0) {
        if (task.uncompute) {
          exec_chunk_uncompute(w, task.node, task.chunk_begin, task.chunk_end,
                               task.handle);
        } else {
          exec_chunk(w, task.node, task.chunk_begin, task.chunk_end, task.handle);
        }
      } else {
        exec_node(w, task.node, task.handle);
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mutex_);
        if (error_ == nullptr) {
          error_ = std::current_exception();
        }
      }
      abort_.store(true, std::memory_order_release);
      // Live-state accounting may be off after an exception; results are
      // discarded on the rethrow path anyway.
      live_.store(0, std::memory_order_relaxed);
    }
    if (task.reserved != 0) {
      release_tokens(task.reserved);
      note_token_occupancy();
    }
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      idle_cv_.notify_all();
    }
  }

  /// Hand children [begin, end) of `parent` — a same-frontier sibling run
  /// sized against chunk_target_ — to the scheduler as one unit. `handle`
  /// shares the parent buffer at the run's entry frontier (or *is* the
  /// parent buffer, moved, for the final chunk of a tail-less node).
  void dispatch_chunk(std::size_t w, std::size_t parent, std::size_t begin,
                      std::size_t end, CowState handle) {
    if (end - begin > 1) {
      workers_[w].chunk_tasks += 1;
      g_chunk_tasks.increment();
    }
    if (num_workers_ > 1) {
      bool admit = true;
      std::size_t need = 0;
      if (budget_ != 0) {
        // Banker reservation: one token pins the chunk's snapshot buffer
        // (the parent materializes past it), plus the widest child
        // subtree's sequential peak — the chunk runs its children one at a
        // time. need <= 1 + (parent.peak - 1) = parent.peak, so any chunk
        // fits the budget the tree was built for.
        std::size_t child_peak = 0;
        const std::vector<std::size_t>& children = tree_.nodes[parent].children;
        for (std::size_t i = begin; i < end; ++i) {
          child_peak = std::max(child_peak, tree_.nodes[children[i]].peak_demand);
        }
        need = 1 + child_peak;
        admit = try_reserve(need);
        if (admit) {
          note_token_occupancy();
        }
      }
      if (admit) {
        outstanding_.fetch_add(1, std::memory_order_acq_rel);
        {
          Task task;
          task.node = parent;
          task.chunk_begin = begin;
          task.chunk_end = end;
          task.handle = std::move(handle);
          task.reserved = need;
          std::lock_guard<std::mutex> lock(workers_[w].mutex);
          workers_[w].deque.push_back(std::move(task));
        }
        idle_cv_.notify_one();
        return;
      }
      // Reservation failed: the MSV budget is exhausted. Route the
      // refusal through uncomputation when the chunk allows it — every
      // child an uncompute-capable replay leaf, so the whole chunk runs on
      // one materialized buffer, each leaf restored bitwise by inverse
      // gates before the next starts, instead of each pinning its own
      // fork.
      if (allow_uncompute_ && chunk_uncompute_ok(parent, begin, end)) {
        // Concurrent when a single token is free (the chunk's snapshot is
        // its only materialization)...
        if (try_reserve(1)) {
          note_token_occupancy();
          telemetry::trace_instant("tree_exec.uncompute_dispatch");
          outstanding_.fetch_add(1, std::memory_order_acq_rel);
          {
            Task task;
            task.node = parent;
            task.chunk_begin = begin;
            task.chunk_end = end;
            task.handle = std::move(handle);
            task.reserved = 1;
            task.uncompute = true;
            std::lock_guard<std::mutex> lock(workers_[w].mutex);
            workers_[w].deque.push_back(std::move(task));
          }
          idle_cv_.notify_one();
          return;
        }
        // ...otherwise on the parent's thread, inside the parent's own
        // reservation: the materialized snapshot fits the same slack the
        // inline fallback would use (a parent's peak is 1 + max child
        // peak), but replay-then-rewind needs no per-leaf CoW copy, so
        // this is never counted as an inline fallback.
        telemetry::trace_instant("tree_exec.uncompute_inline");
        exec_chunk_uncompute(w, parent, begin, end, handle);
        return;
      }
      // Last resort: the chunk runs inline instead of spawning. Inline
      // execution stays within the parent's own reservation — the chunk
      // shares the parent's current buffer (no extra pin) and a parent's
      // peak is 1 + max(children peaks), so its slack always covers one
      // child subtree at a time. Progress is guaranteed, never a deadlock.
      workers_[w].inline_fallbacks += 1;
      g_inline_fallbacks.increment();
      telemetry::trace_instant("tree_exec.inline_fallback");
    }
    exec_chunk(w, parent, begin, end, handle);
  }

  /// True when children [begin, end) of `parent` are all replay leaves
  /// whose remaining path is fp-exact-invertible — the precondition for
  /// running the chunk in uncompute mode on a single token.
  bool chunk_uncompute_ok(std::size_t parent, std::size_t begin,
                          std::size_t end) const {
    const std::vector<std::size_t>& children = tree_.nodes[parent].children;
    for (std::size_t i = begin; i < end; ++i) {
      const TreeNode& child = tree_.nodes[children[i]];
      if (child.kind != TreeNode::Kind::kReplay || !child.uncompute_ok) {
        return false;
      }
    }
    return true;
  }

  // ---- node execution ---------------------------------------------------

  void advance(std::size_t w, StateVector& state, layer_index_t from,
               layer_index_t to) {
    Worker& worker = workers_[w];
    if (worker.fusion != nullptr) {
      apply_fused(state, worker.fusion->segment(from, to));
    } else {
      apply_layers(ctx_, state, from, to);
    }
    worker.ops += ctx_.ops_in_layers(from, to);
  }

  void exec_node(std::size_t w, std::size_t idx, CowState& handle) {
    if (tree_.nodes[idx].kind == TreeNode::Kind::kReplay) {
      exec_replay(w, idx, handle);
    } else {
      exec_branch(w, idx, handle);
    }
  }

  /// Execute children [begin, end) of `parent` sequentially. Every child's
  /// entry handle forks from the chunk handle except the last, which takes
  /// the handle itself — the chunk's final fork never leaves a peer behind.
  void exec_chunk(std::size_t w, std::size_t parent, std::size_t begin,
                  std::size_t end, CowState& handle) {
    const std::vector<std::size_t>& children = tree_.nodes[parent].children;
    for (std::size_t i = begin; i < end; ++i) {
      if (abort_.load(std::memory_order_relaxed)) {
        break;
      }
      CowState entry =
          i + 1 == end ? move_entry(w, handle) : fork_entry(w, handle);
      exec_node(w, children[i], entry);
    }
    drop_handle(w, handle);
  }

  void exec_branch(std::size_t w, std::size_t idx, CowState& handle) {
    const TreeNode& node = tree_.nodes[idx];
    layer_index_t frontier = node.entry_frontier;
    if (node.parent != kNoNode) {
      apply_error_event(ctx_, writable(w, handle), node.entry_event);
      workers_[w].ops += 1;
    }
    // Tail trials and frame-collapsed trials both finish on this node's
    // own buffer after the final advance.
    const bool has_tail =
        node.tail_begin != node.tail_end || !node.frame_trials.empty();
    const std::vector<std::size_t>& children = node.children;
    std::size_t i = 0;
    while (i < children.size() && !abort_.load(std::memory_order_relaxed)) {
      // Maximal run of children forked at the same frontier: one parent
      // advance feeds them all, so the whole run shares one buffer
      // snapshot and can be chunked without duplicating any advance.
      const layer_index_t run_frontier = tree_.nodes[children[i]].entry_frontier;
      std::size_t run_end = i + 1;
      while (run_end < children.size() &&
             tree_.nodes[children[run_end]].entry_frontier == run_frontier) {
        ++run_end;
      }
      if (run_frontier > frontier) {
        advance(w, writable(w, handle), frontier, run_frontier);
        frontier = run_frontier;
      }
      while (i < run_end) {
        std::size_t chunk_end = i + 1;
        opcount_t acc = tree_.nodes[children[i]].subtree_ops;
        while (chunk_end < run_end && acc < chunk_target_) {
          acc += tree_.nodes[children[chunk_end]].subtree_ops;
          ++chunk_end;
        }
        if (!has_tail && chunk_end == children.size()) {
          // The node's buffer has no consumer after its last fork: move it
          // into the final chunk so the last child's first write is
          // in-place — one materialization provably saved per tail-less
          // node, independent of scheduling timing.
          dispatch_chunk(w, idx, i, chunk_end, std::move(handle));
        } else {
          dispatch_chunk(w, idx, i, chunk_end, handle.fork());
        }
        i = chunk_end;
      }
    }
    if (!abort_.load(std::memory_order_relaxed) && has_tail) {
      const auto total = static_cast<layer_index_t>(ctx_.num_layers());
      if (total > frontier) {
        advance(w, writable(w, handle), frontier, total);
        frontier = total;
      }
      finish_node_outputs(w, idx, node, handle.read());
    }
    drop_handle(w, handle);
  }

  void exec_replay(std::size_t w, std::size_t idx, CowState& handle) {
    const TreeNode& node = tree_.nodes[idx];
    const Trial& trial = trials_[node.trial];
    layer_index_t frontier = node.entry_frontier;
    for (std::size_t k = node.event_depth; k < trial.events.size(); ++k) {
      const ErrorEvent& event = trial.events[k];
      const layer_index_t target = event.layer + 1;
      if (target > frontier) {
        advance(w, writable(w, handle), frontier, target);
        frontier = target;
      }
      apply_error_event(ctx_, writable(w, handle), event);
      workers_[w].ops += 1;
    }
    const auto total = static_cast<layer_index_t>(ctx_.num_layers());
    if (total > frontier) {
      advance(w, writable(w, handle), frontier, total);
    }
    finish_group(idx, node.trial, 1, handle.read());
    drop_handle(w, handle);
  }

  // ---- uncompute fallback ------------------------------------------------

  /// Uncompute-mode chunk: every child is an uncompute_ok replay leaf. The
  /// chunk's snapshot materializes once (the single reserved token); each
  /// non-final leaf replays forward *in place*, finishes, then rewinds the
  /// buffer bitwise with inverse gates so the next leaf starts from the
  /// identical entry state a fork would have given it. The final leaf
  /// consumes the buffer like the normal move path. Results are therefore
  /// bitwise identical to the forking schedule — uncompute trades extra
  /// (inverse) ops for concurrency under a tight MSV budget, and those
  /// ops are billed to uncompute_ops, never to `ops`.
  void exec_chunk_uncompute(std::size_t w, std::size_t parent, std::size_t begin,
                            std::size_t end, CowState& handle) {
    const std::vector<std::size_t>& children = tree_.nodes[parent].children;
    for (std::size_t i = begin; i < end; ++i) {
      if (abort_.load(std::memory_order_relaxed)) {
        break;
      }
      if (i + 1 == end) {
        CowState entry = move_entry(w, handle);
        exec_node(w, children[i], entry);
        break;
      }
      // The schedule fork this leaf was planned with is realized as
      // replay-then-rewind on the shared buffer; it still counts as a fork
      // so fork_copies == planned_forks holds at every thread count.
      telemetry::trace_instant("tree_exec.fork");
      workers_[w].fork_copies += 1;
      StateVector& state = writable(w, handle);
      exec_replay_in_place(w, children[i], state);
      uncompute_replay(w, children[i], state);
      workers_[w].uncomputations += 1;
      telemetry::trace_instant("tree_exec.uncompute");
    }
    drop_handle(w, handle);
  }

  /// Forward body of exec_replay on an already-materialized buffer (no
  /// handle lifecycle): replays the trial's remaining events, finishes it.
  void exec_replay_in_place(std::size_t w, std::size_t idx, StateVector& state) {
    const TreeNode& node = tree_.nodes[idx];
    const Trial& trial = trials_[node.trial];
    layer_index_t frontier = node.entry_frontier;
    for (std::size_t k = node.event_depth; k < trial.events.size(); ++k) {
      const ErrorEvent& event = trial.events[k];
      const layer_index_t target = event.layer + 1;
      if (target > frontier) {
        advance(w, state, frontier, target);
        frontier = target;
      }
      apply_error_event(ctx_, state, event);
      workers_[w].ops += 1;
    }
    const auto total = static_cast<layer_index_t>(ctx_.num_layers());
    if (total > frontier) {
      advance(w, state, frontier, total);
    }
    finish_group(idx, node.trial, 1, state);
  }

  /// Rewind exec_replay_in_place bitwise: apply the inverse of every
  /// forward step in reverse order. Valid only for uncompute_ok leaves —
  /// every gate kind on the path is fp-exact-invertible and every error is
  /// a self-inverse Pauli, so the buffer lands on the exact amplitudes it
  /// entered with.
  void uncompute_replay(std::size_t w, std::size_t idx, StateVector& state) {
    const TreeNode& node = tree_.nodes[idx];
    const Trial& trial = trials_[node.trial];
    // Recompute the forward segment boundaries.
    struct Segment {
      layer_index_t from = 0;
      layer_index_t to = 0;         // advance over [from, to) when to > from
      const ErrorEvent* event = nullptr;  // error applied after the advance
    };
    std::vector<Segment> segments;
    layer_index_t frontier = node.entry_frontier;
    for (std::size_t k = node.event_depth; k < trial.events.size(); ++k) {
      const ErrorEvent& event = trial.events[k];
      Segment seg;
      seg.from = frontier;
      seg.to = std::max(frontier, static_cast<layer_index_t>(event.layer + 1));
      seg.event = &event;
      frontier = seg.to;
      segments.push_back(seg);
    }
    const auto total = static_cast<layer_index_t>(ctx_.num_layers());
    if (total > frontier) {
      segments.push_back({frontier, total, nullptr});
    }
    Worker& worker = workers_[w];
    for (std::size_t s = segments.size(); s-- > 0;) {
      const Segment& seg = segments[s];
      if (seg.event != nullptr) {
        // Pauli errors are their own bitwise inverse.
        apply_error_event(ctx_, state, *seg.event);
        worker.uncompute_ops += 1;
      }
      for (layer_index_t l = seg.to; l-- > seg.from;) {
        const std::vector<gate_index_t>& layer = ctx_.layering.layers[l];
        for (std::size_t g = layer.size(); g-- > 0;) {
          apply_gate(state, gate_inverse(ctx_.circuit.gates()[layer[g]]));
        }
      }
      worker.uncompute_ops += ctx_.ops_in_layers(seg.from, seg.to);
    }
  }

  // ---- trial finishing ---------------------------------------------------

  void finish_group(std::size_t node, std::size_t first, std::size_t count,
                    const StateVector& state) {
    const std::vector<qubit_t>& measured = ctx_.circuit.measured_qubits();
    if (measured.empty()) {
      sink_.on_finish_group(node, first, count, state, nullptr);
      return;
    }
    const std::vector<double> probs = measurement_probabilities(state, measured);
    sink_.on_finish_group(node, first, count, state, &probs);
  }

  /// Deliver a branch node's tail group and frame-collapsed trials off one
  /// shared distribution evaluation.
  void finish_node_outputs(std::size_t w, std::size_t idx, const TreeNode& node,
                           const StateVector& state) {
    const std::vector<qubit_t>& measured = ctx_.circuit.measured_qubits();
    std::vector<double> probs;
    const std::vector<double>* probs_ptr = nullptr;
    if (!measured.empty()) {
      probs = measurement_probabilities(state, measured);
      probs_ptr = &probs;
    }
    if (node.tail_begin != node.tail_end) {
      sink_.on_finish_group(idx, node.tail_begin, node.tail_end - node.tail_begin,
                            state, probs_ptr);
    }
    if (!node.frame_trials.empty()) {
      sink_.on_finish_frames(idx, node.frame_trials, state, probs_ptr);
      Worker& worker = workers_[w];
      worker.frame_trials += node.frame_trials.size();
      for (const FrameTrial& ft : node.frame_trials) {
        worker.frame_ops += ft.frame_ops;
      }
    }
  }

  const CircuitContext& ctx_;
  const ExecTree& tree_;
  const std::vector<Trial>& trials_;
  TreeTrialSink& sink_;
  const std::size_t num_workers_;
  const bool fuse_gates_;
  const bool allow_uncompute_;
  const std::size_t budget_;
  std::size_t effective_budget_ = 0;
  opcount_t chunk_target_ = 1;

  StateBufferPool pool_;
  std::vector<Worker> workers_;

  std::atomic<std::size_t> outstanding_{0};
  std::atomic<std::size_t> tokens_left_{0};
  std::atomic<std::size_t> live_{0};
  std::atomic<std::size_t> max_live_{1};
  std::atomic<bool> abort_{false};

  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;

  std::mutex error_mutex_;
  std::exception_ptr error_;
};

}  // namespace

void TreeTrialSink::on_finish_frames(std::size_t node,
                                     const std::vector<FrameTrial>& frames,
                                     const StateVector& state,
                                     const std::vector<double>* probs) {
  (void)node;
  (void)frames;
  (void)state;
  (void)probs;
  // Losing trials silently would corrupt results: a sink fed a framed tree
  // must implement frame finishing explicitly.
  RQSIM_CHECK(false, "TreeTrialSink: sink does not support frame-collapsed trees");
}

TreeExecStats execute_tree(const CircuitContext& ctx, const ExecTree& tree,
                           const std::vector<Trial>& trials,
                           const TreeExecConfig& config, TreeTrialSink& sink) {
  RQSIM_CHECK(tree.num_trials == trials.size(),
              "execute_tree: tree was built for a different trial list");
  return TreeExecutor(ctx, tree, trials, config, sink).run();
}

// --------------------------------------------------------------------------
// SampledTrialSink

SampledTrialSink::SampledTrialSink(const CircuitContext& ctx,
                                   const std::vector<Trial>& trials,
                                   const std::vector<PauliString>* observables)
    : ctx_(ctx), trials_(trials), observables_(observables) {
  sampled_ = !ctx.circuit.measured_qubits().empty();
  if (sampled_) {
    outcomes_.assign(trials.size(), 0);
  }
  if (observables_ != nullptr && !observables_->empty()) {
    expectations_.assign(trials.size() * observables_->size(), 0.0);
    obs_xmask_.reserve(observables_->size());
    for (const PauliString& p : *observables_) {
      std::uint64_t mask = 0;
      for (const auto& [q, pauli] : p.factors()) {
        if (pauli == Pauli::X || pauli == Pauli::Y) {
          mask |= std::uint64_t{1} << q;
        }
      }
      obs_xmask_.push_back(mask);
    }
  }
}

void SampledTrialSink::on_finish_group(std::size_t node, std::size_t first_trial,
                                       std::size_t count, const StateVector& state,
                                       const std::vector<double>* probs) {
  (void)node;
  if (sampled_) {
    RQSIM_CHECK(probs != nullptr, "SampledTrialSink: missing distribution");
    for (std::size_t t = first_trial; t < first_trial + count; ++t) {
      Rng trial_rng(trials_[t].meas_seed);
      outcomes_[t] = sample_outcome(*probs, trial_rng) ^ trials_[t].meas_flip_mask;
    }
  }
  if (!expectations_.empty()) {
    const std::size_t k_count = observables_->size();
    // One evaluation per finishing buffer, shared by every trial in the
    // group — the same caching granularity SvBackend's per-checkpoint
    // cache realizes, so the stored doubles are bitwise identical.
    std::vector<double> values(k_count);
    for (std::size_t k = 0; k < k_count; ++k) {
      values[k] = expectation(state, (*observables_)[k]);
    }
    for (std::size_t t = first_trial; t < first_trial + count; ++t) {
      std::copy(values.begin(), values.end(),
                expectations_.begin() + static_cast<std::ptrdiff_t>(t * k_count));
    }
  }
}

void SampledTrialSink::on_finish_frames(std::size_t node,
                                        const std::vector<FrameTrial>& frames,
                                        const StateVector& state,
                                        const std::vector<double>* probs) {
  (void)node;
  std::vector<double> values;
  if (!expectations_.empty()) {
    // One evaluation per finishing buffer; each frame trial then signs the
    // shared value by its Z mask's anticommutation parity — bitwise what
    // the trial's own forked (sign-flipped) statevector evaluates to.
    values.resize(observables_->size());
    for (std::size_t k = 0; k < observables_->size(); ++k) {
      values[k] = expectation(state, (*observables_)[k]);
    }
  }
  const std::vector<qubit_t>& measured = ctx_.circuit.measured_qubits();
  for (const FrameTrial& ft : frames) {
    const std::size_t t = ft.trial;
    if (sampled_) {
      RQSIM_CHECK(probs != nullptr, "SampledTrialSink: missing distribution");
      const PauliFrame frame{ft.frame_x, ft.frame_z};
      const std::uint64_t flip = frame_outcome_flip(frame, measured);
      Rng trial_rng(trials_[t].meas_seed);
      outcomes_[t] = sample_outcome_permuted(*probs, flip, trial_rng) ^
                     trials_[t].meas_flip_mask;
    }
    if (!expectations_.empty()) {
      const std::size_t k_count = observables_->size();
      for (std::size_t k = 0; k < k_count; ++k) {
        const bool negate =
            (std::popcount(ft.frame_z & obs_xmask_[k]) & 1) != 0;
        expectations_[t * k_count + k] = negate ? -values[k] : values[k];
      }
    }
  }
}

OutcomeHistogram SampledTrialSink::take_histogram() {
  OutcomeHistogram histogram;
  if (sampled_) {
    for (const std::uint64_t outcome : outcomes_) {
      ++histogram[outcome];
    }
  }
  return histogram;
}

std::vector<double> SampledTrialSink::take_observable_sums() {
  const std::size_t k_count = observables_ != nullptr ? observables_->size() : 0;
  std::vector<double> sums(k_count, 0.0);
  if (expectations_.empty()) {
    return sums;
  }
  // Trial-index order == the sequential scheduler's finish order, so this
  // reduction reproduces SvBackend's accumulation bit for bit.
  for (std::size_t t = 0; t < trials_.size(); ++t) {
    for (std::size_t k = 0; k < k_count; ++k) {
      sums[k] += expectations_[t * k_count + k];
    }
  }
  return sums;
}

}  // namespace rqsim
