// Schedule visitors ("backends"): three interpretations of the same
// scheduler stream.
//
//  - CountBackend: op/MSV accounting only — no amplitudes, so it scales to
//    arbitrary qubit counts (used by the paper's 40-qubit experiments).
//  - SvBackend: real statevector execution with a checkpoint stack, outcome
//    sampling and histogram accumulation.
//  - TraceBackend: reconstructs the exact operator sequence each trial
//    experienced; the equivalence tests compare it against the trial's
//    definition.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "circuit/fusion.hpp"
#include "common/rng.hpp"
#include "obs/pauli_string.hpp"
#include "sched/plan.hpp"
#include "sim/buffer_pool.hpp"
#include "sim/measure.hpp"
#include "sim/statevector.hpp"

namespace rqsim {

// ---------------------------------------------------------------------------

/// Apply the gates of layers [from, to) to a state (shared by every
/// statevector-interpreting visitor).
void apply_layers(const CircuitContext& ctx, StateVector& state, layer_index_t from,
                  layer_index_t to);

/// Apply one error event (gate-attached Pauli / Pauli pair, or idle Pauli).
void apply_error_event(const CircuitContext& ctx, StateVector& state,
                       const ErrorEvent& event);

// ---------------------------------------------------------------------------

class CountBackend : public ScheduleVisitor {
 public:
  explicit CountBackend(const CircuitContext& ctx) : ctx_(ctx) {}

  void on_advance(std::size_t depth, layer_index_t from_layer,
                  layer_index_t to_layer) override;
  void on_fork(std::size_t depth) override;
  void on_error(std::size_t depth, const ErrorEvent& event) override;
  void on_finish(std::size_t depth, trial_index_t trial_index,
                 const Trial& trial) override;
  void on_drop(std::size_t depth) override;

  /// Matrix-vector operations performed (gates + injected errors).
  opcount_t ops() const { return ops_; }

  /// Maximum number of concurrently maintained state vectors.
  std::size_t max_live_states() const { return max_live_; }

  /// State-vector copies made (forks) — not counted as ops, reported as a
  /// secondary cost.
  std::uint64_t copies() const { return copies_; }

  std::uint64_t finished_trials() const { return finished_; }

 private:
  const CircuitContext& ctx_;
  opcount_t ops_ = 0;
  std::size_t live_ = 1;  // checkpoint 0 exists from the start
  std::size_t max_live_ = 1;
  std::uint64_t copies_ = 0;
  std::uint64_t finished_ = 0;
};

// ---------------------------------------------------------------------------

/// Result of a statevector run: outcome histogram plus optional per-trial
/// final states (tests only — memory grows with trial count).
struct SvRunResult {
  OutcomeHistogram histogram;
  std::vector<StateVector> final_states;  // filled only if recording enabled
  opcount_t ops = 0;
  std::size_t max_live_states = 0;

  /// Checkpoint copies made (fork count) — not matrix-vector ops, reported
  /// as the secondary cost of the prefix-sharing schedule.
  std::uint64_t fork_copies = 0;

  /// Σ over trials of ⟨ψ_trial|P_k|ψ_trial⟩, one entry per requested
  /// observable (divide by the trial count for the noisy expectation).
  std::vector<double> observable_sums;
};

class SvBackend : public ScheduleVisitor {
 public:
  /// `rng` drives outcome sampling. With `record_final_states`, every
  /// trial's final statevector is kept (indexed by trial position in the
  /// scheduled order's original vector). `observables` (optional, borrowed;
  /// must outlive the backend) are evaluated per trial — duplicate trials
  /// reuse one evaluation per shared final checkpoint. With `fuse_gates`,
  /// advances run through the gate-fusion engine (epsilon-equivalent to the
  /// unfused kernels; see circuit/fusion.hpp). With `use_trial_seeds`, each
  /// finish samples from a fresh Rng(trial.meas_seed) instead of the shared
  /// `rng` stream — outcome sampling becomes independent of finish order,
  /// the property the parallel tree executor's bitwise guarantee rests on
  /// (the default keeps the legacy shared-stream behavior for callers that
  /// construct backends directly with their own Rng).
  SvBackend(const CircuitContext& ctx, Rng& rng, bool record_final_states = false,
            const std::vector<PauliString>* observables = nullptr,
            bool fuse_gates = false, bool use_trial_seeds = false);

  /// Checkpoint allocation statistics (buffer-pool effectiveness).
  const StateBufferPool& buffer_pool() const { return pool_; }

  void on_advance(std::size_t depth, layer_index_t from_layer,
                  layer_index_t to_layer) override;
  void on_fork(std::size_t depth) override;
  void on_error(std::size_t depth, const ErrorEvent& event) override;
  void on_finish(std::size_t depth, trial_index_t trial_index,
                 const Trial& trial) override;
  void on_drop(std::size_t depth) override;

  SvRunResult take_result();

 private:
  const StateVector& state_at(std::size_t depth) const;

  const CircuitContext& ctx_;
  Rng& rng_;
  bool record_final_states_;
  bool use_trial_seeds_ = false;
  const std::vector<PauliString>* observables_;
  std::unique_ptr<FusionCache> fusion_;  // non-null when fusing
  StateBufferPool pool_;
  std::vector<StateVector> stack_;
  SvRunResult result_;
  // Caches for the current finish checkpoint — duplicate trials reuse one
  // distribution / one set of expectation values.
  std::optional<std::vector<double>> cached_probs_;
  std::optional<std::vector<double>> cached_expectations_;
};

// ---------------------------------------------------------------------------

/// One semantic operation a trial experienced: either a circuit gate or an
/// injected error event.
struct TraceOp {
  bool is_error = false;
  gate_index_t gate = 0;   // valid when !is_error
  ErrorEvent event;        // valid when is_error

  friend bool operator==(const TraceOp& a, const TraceOp& b) {
    if (a.is_error != b.is_error) {
      return false;
    }
    return a.is_error ? a.event == b.event : a.gate == b.gate;
  }
};

class TraceBackend : public ScheduleVisitor {
 public:
  TraceBackend(const CircuitContext& ctx, std::size_t num_trials);

  void on_advance(std::size_t depth, layer_index_t from_layer,
                  layer_index_t to_layer) override;
  void on_fork(std::size_t depth) override;
  void on_error(std::size_t depth, const ErrorEvent& event) override;
  void on_finish(std::size_t depth, trial_index_t trial_index,
                 const Trial& trial) override;
  void on_drop(std::size_t depth) override;

  const std::vector<std::vector<TraceOp>>& traces() const { return traces_; }

 private:
  const CircuitContext& ctx_;
  std::vector<std::vector<TraceOp>> stack_;
  std::vector<std::vector<TraceOp>> traces_;
  std::vector<bool> trace_set_;
};

/// The operator sequence a trial is *defined* to experience: layers in
/// order, each layer's gates followed by that layer's error events.
std::vector<TraceOp> expected_trace(const CircuitContext& ctx, const Trial& trial);

}  // namespace rqsim
