#include "sched/parallel.hpp"

#include <algorithm>
#include <functional>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "sched/backend.hpp"
#include "sched/order.hpp"
#include "trial/generator.hpp"
#include "verify/plan_verifier.hpp"

namespace rqsim {

NoisyRunResult run_noisy_parallel(const Circuit& circuit, const NoiseModel& noise,
                                  const ParallelRunConfig& config) {
  circuit.validate();
  RQSIM_CHECK(noise.num_qubits() >= circuit.num_qubits(),
              "run_noisy_parallel: noise model covers fewer qubits than the circuit");
  RQSIM_CHECK(config.mode == ExecutionMode::kCachedReordered,
              "run_noisy_parallel: only kCachedReordered is supported");
  validate_run_limits(config, "run_noisy_parallel");
  const CircuitContext ctx(circuit);
  Rng rng(config.seed);
  std::vector<Trial> trials =
      generate_trials(circuit, ctx.layering, noise, config.num_trials, rng);
  reorder_trials(trials);

  const std::size_t workers =
      std::max<std::size_t>(1, std::min(config.num_threads,
                                        trials.empty() ? 1 : trials.size()));

  // Contiguous chunks of the reordered list; each is itself reordered.
  std::vector<std::vector<Trial>> chunks(workers);
  const std::size_t per_chunk = (trials.size() + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = std::min(w * per_chunk, trials.size());
    const std::size_t end = std::min(begin + per_chunk, trials.size());
    chunks[w].assign(trials.begin() + static_cast<std::ptrdiff_t>(begin),
                     trials.begin() + static_cast<std::ptrdiff_t>(end));
  }

  ScheduleOptions options;
  options.max_states = config.max_states;

  // Verify every chunk's plan up front, on the caller's thread: chunks of a
  // reordered list are themselves reordered, and each worker executes its
  // chunk as an independent schedule.
  if (config.verify_plans) {
    for (const std::vector<Trial>& chunk : chunks) {
      verify_schedule_or_throw(ctx, chunk, options, "run_noisy_parallel");
    }
  }

  std::vector<SvRunResult> partials(workers);
  auto work = [&](std::size_t w, Rng& worker_rng) {
    SvBackend backend(ctx, worker_rng, /*record_final_states=*/false,
                      &config.observables, config.fuse_gates);
    schedule_trials(ctx, chunks[w], backend, options);
    partials[w] = backend.take_result();
  };

  if (workers == 1) {
    // Single-worker runs continue on the generation Rng, exactly like
    // run_noisy: histogram and observable sums match the serial scheduler
    // bit for bit.
    work(0, rng);
  } else {
    // Derive one independent sampling stream per worker up front (on the
    // caller's thread, so the derivation order is deterministic).
    std::vector<Rng> worker_rngs;
    worker_rngs.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      worker_rngs.emplace_back(rng.next_u64());
    }
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back(work, w, std::ref(worker_rngs[w]));
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }

  NoisyRunResult result;
  result.observable_means.assign(config.observables.size(), 0.0);
  for (const SvRunResult& partial : partials) {
    result.ops += partial.ops;
    result.max_live_states = std::max(result.max_live_states, partial.max_live_states);
    for (const auto& [outcome, count] : partial.histogram) {
      result.histogram[outcome] += count;
    }
    for (std::size_t k = 0; k < partial.observable_sums.size(); ++k) {
      result.observable_means[k] += partial.observable_sums[k];
    }
  }
  for (double& mean : result.observable_means) {
    mean /= static_cast<double>(std::max<std::size_t>(1, trials.size()));
  }
  result.baseline_ops = baseline_op_count(ctx, trials);
  result.trial_stats = compute_trial_stats(trials);
  result.normalized_computation =
      result.baseline_ops == 0
          ? 1.0
          : static_cast<double>(result.ops) / static_cast<double>(result.baseline_ops);
  return result;
}

}  // namespace rqsim
