#include "sched/parallel.hpp"

#include <algorithm>
#include <functional>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "sched/backend.hpp"
#include "sched/order.hpp"
#include "sched/tree.hpp"
#include "sched/tree_exec.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "trial/generator.hpp"
#include "verify/plan_verifier.hpp"

namespace rqsim {

namespace {

// Read handle for the run_noisy_parallel measured-ops delta (same logical
// metric the execution paths write; see sched/backend.cpp).
telemetry::Counter g_matvec_ops("sim.matvec_ops");

/// Legacy strategy: contiguous chunks of the reordered list, one
/// independent sequential scheduler per chunk. Fills ops / fork_copies /
/// max_live_states / histogram / observable sums; redundant_prefix_ops is
/// attributed by the caller (it needs the whole-list sequential count).
void run_chunked(const CircuitContext& ctx, const std::vector<Trial>& trials,
                 const ParallelRunConfig& config, const ScheduleOptions& options,
                 std::size_t workers, NoisyRunResult& result) {
  std::vector<std::vector<Trial>> chunks(workers);
  const std::size_t per_chunk = (trials.size() + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = std::min(w * per_chunk, trials.size());
    const std::size_t end = std::min(begin + per_chunk, trials.size());
    chunks[w].assign(trials.begin() + static_cast<std::ptrdiff_t>(begin),
                     trials.begin() + static_cast<std::ptrdiff_t>(end));
  }

  // Verify every chunk's plan up front, on the caller's thread: chunks of a
  // reordered list are themselves reordered, and each worker executes its
  // chunk as an independent schedule.
  if (config.verify_plans) {
    for (const std::vector<Trial>& chunk : chunks) {
      verify_schedule_or_throw(ctx, chunk, options, "run_noisy_parallel");
    }
  }

  std::vector<SvRunResult> partials(workers);
  std::vector<std::uint64_t> pool_reuses(workers, 0);
  std::vector<std::uint64_t> pool_allocs(workers, 0);
  auto work = [&](std::size_t w) {
    if (workers > 1) {
      telemetry::set_thread_lane("chunked.worker-" + std::to_string(w));
    }
    RQSIM_SPAN("chunked.worker_run");
    // Outcome sampling draws from the per-trial seeds, so the worker Rng
    // never produces a consumed value.
    Rng unused(0);
    SvBackend backend(ctx, unused, /*record_final_states=*/false,
                      &config.observables, config.fuse_gates,
                      /*use_trial_seeds=*/true);
    schedule_trials(ctx, chunks[w], backend, options);
    pool_reuses[w] = backend.buffer_pool().reuse_count();
    pool_allocs[w] = backend.buffer_pool().alloc_count();
    partials[w] = backend.take_result();
  };

  if (workers == 1) {
    work(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back(work, w);
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }

  for (std::size_t w = 0; w < workers; ++w) {
    result.telemetry.pool_reuses += pool_reuses[w];
    result.telemetry.pool_allocs += pool_allocs[w];
  }
  for (const SvRunResult& partial : partials) {
    result.ops += partial.ops;
    result.fork_copies += partial.fork_copies;
    result.max_live_states = std::max(result.max_live_states, partial.max_live_states);
    for (const auto& [outcome, count] : partial.histogram) {
      result.histogram[outcome] += count;
    }
    for (std::size_t k = 0; k < partial.observable_sums.size(); ++k) {
      result.observable_means[k] += partial.observable_sums[k];
    }
  }
}

/// Tree strategy: one global prefix trie, executed by the work-stealing
/// pool. Zero redundant prefix work by construction.
void run_tree(const CircuitContext& ctx, const std::vector<Trial>& trials,
              const ParallelRunConfig& config, const ScheduleOptions& options,
              std::size_t workers, NoisyRunResult& result) {
  const ExecTree tree = build_exec_tree(ctx, trials, options);
  if (config.verify_plans) {
    verify_tree_plan_or_throw(ctx, trials, tree, options, "run_noisy_parallel");
  }
  TreeExecConfig exec_config;
  exec_config.num_threads = workers;
  exec_config.max_states = config.max_states;
  exec_config.fuse_gates = config.fuse_gates;
  SampledTrialSink sink(ctx, trials, &config.observables);
  const TreeExecStats stats = execute_tree(ctx, tree, trials, exec_config, sink);
  result.histogram = sink.take_histogram();
  result.ops = stats.ops;
  result.fork_copies = stats.fork_copies;
  result.telemetry.steals = stats.steals;
  result.telemetry.inline_fallbacks = stats.inline_fallbacks;
  result.telemetry.cow_materializations = stats.cow_materializations;
  result.telemetry.pool_reuses = stats.pool_reuses;
  result.telemetry.pool_allocs = stats.pool_allocs;
  result.telemetry.pool_prewarmed = stats.prewarmed;
  result.telemetry.peak_live_states = stats.max_live_states;
  result.telemetry.frame_collapsed_trials = stats.frame_collapsed_trials;
  result.telemetry.frame_ops = stats.frame_ops;
  result.telemetry.uncomputations = stats.uncomputations;
  // Report the schedule's MSV — the deterministic bound admission control
  // enforces — rather than the timing-dependent transient peak.
  result.max_live_states = tree.peak_demand;
  const std::vector<double> sums = sink.take_observable_sums();
  for (std::size_t k = 0; k < sums.size(); ++k) {
    result.observable_means[k] += sums[k];
  }
}

}  // namespace

NoisyRunResult run_noisy_parallel(const Circuit& circuit, const NoiseModel& noise,
                                  const ParallelRunConfig& config) {
  RQSIM_SPAN("runner.run_noisy_parallel");
  const telemetry::Stopwatch stopwatch;
  const telemetry::MeasuredRunScope run_scope;
  const bool measured = telemetry::compiled() && telemetry::enabled();
  const std::uint64_t ops_before = measured ? g_matvec_ops.value() : 0;
  circuit.validate();
  RQSIM_CHECK(noise.num_qubits() >= circuit.num_qubits(),
              "run_noisy_parallel: noise model covers fewer qubits than the circuit");
  RQSIM_CHECK(config.mode == ExecutionMode::kCachedReordered,
              "run_noisy_parallel: only kCachedReordered is supported");
  validate_run_limits(config, "run_noisy_parallel");
  for (const PauliString& pauli : config.observables) {
    RQSIM_CHECK(pauli.min_qubits() <= circuit.num_qubits(),
                "run_noisy_parallel: observable acts on qubits beyond the circuit");
  }
  const CircuitContext ctx(circuit);
  Rng rng(config.seed);
  std::vector<Trial> trials =
      generate_trials(circuit, ctx.layering, noise, config.num_trials, rng);
  // Same stream positions as run_noisy: generation, then per-trial
  // measurement seeds — the source of the bitwise histogram guarantee.
  assign_measurement_seeds(trials, rng);
  reorder_trials(trials);

  const std::size_t workers =
      std::max<std::size_t>(1, std::min(config.num_threads,
                                        trials.empty() ? 1 : trials.size()));

  ScheduleOptions options;
  options.max_states = config.max_states;
  // Frame collapse is a tree-schedule transformation: it needs the
  // per-gate Clifford structure (hidden by fused segments) and Pauli error
  // injections (guaranteed by the noise model's channel set).
  options.frame_collapse = config.frame_collapse &&
                           config.parallel_mode == ParallelMode::kTree &&
                           !config.fuse_gates && noise.all_channels_pauli();
  options.frame_observables = !config.observables.empty();

  NoisyRunResult result;
  result.observable_means.assign(config.observables.size(), 0.0);
  if (config.parallel_mode == ParallelMode::kChunked) {
    run_chunked(ctx, trials, config, options, workers, result);
    // What a single sequential scheduler would have executed on the same
    // list; the excess is exactly the prefix work recomputed across chunk
    // boundaries.
    result.redundant_prefix_ops =
        result.ops - predict_cached_ops(ctx, trials, options);
  } else {
    run_tree(ctx, trials, config, options, workers, result);
    result.redundant_prefix_ops = 0;
  }

  for (double& mean : result.observable_means) {
    mean /= static_cast<double>(std::max<std::size_t>(1, trials.size()));
  }
  result.baseline_ops = baseline_op_count(ctx, trials);
  result.trial_stats = compute_trial_stats(trials);
  result.normalized_computation =
      result.baseline_ops == 0
          ? 1.0
          : static_cast<double>(result.ops) / static_cast<double>(result.baseline_ops);
  // A concurrent run (service with multiple workers) would fold its ops
  // into our counter delta; report measured=false rather than an inflated
  // measured_ops that no longer equals result.ops.
  result.telemetry.measured = measured && run_scope.exclusive();
  if (result.telemetry.measured) {
    result.telemetry.measured_ops = g_matvec_ops.value() - ops_before;
  }
  result.telemetry.ops_saved_vs_baseline =
      result.baseline_ops > result.ops ? result.baseline_ops - result.ops : 0;
  result.telemetry.prefix_cache_hit_ratio =
      result.baseline_ops == 0
          ? 0.0
          : static_cast<double>(result.telemetry.ops_saved_vs_baseline) /
                static_cast<double>(result.baseline_ops);
  if (result.telemetry.peak_live_states == 0) {
    result.telemetry.peak_live_states = result.max_live_states;
  }
  result.telemetry.wall_ms = stopwatch.elapsed_ms();
  return result;
}

}  // namespace rqsim
