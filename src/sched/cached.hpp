// Consecutive-prefix caching WITHOUT reordering — the ablation executor.
//
// Caching alone can share the error-prefix computation between *adjacent*
// trials in whatever order they were generated. Because a later trial may
// revisit an earlier layer, checkpoints must stay pinned at each error
// boundary of the current trial (they cannot be advanced in place and
// dropped the way the reordered walker does), so the number of maintained
// states grows to (errors-per-trial + 1) and far less computation overlaps.
// Comparing this executor against the reordered scheduler isolates how much
// of the paper's win comes from the reorder itself.
#pragma once

#include <vector>

#include "sched/plan.hpp"
#include "trial/trial.hpp"

namespace rqsim {

struct ConsecutiveCacheResult {
  opcount_t ops = 0;
  std::size_t max_live_states = 0;
};

/// Account the cost of consecutive-prefix caching over `trials` in the
/// given order (no statevectors touched).
ConsecutiveCacheResult consecutive_cached_count(const CircuitContext& ctx,
                                                const std::vector<Trial>& trials);

}  // namespace rqsim
