#include "stab/tableau.hpp"

#include "circuit/circuit.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"

namespace rqsim {

namespace {

constexpr unsigned kMaxQubits = 4096;

}  // namespace

Tableau::Tableau(unsigned num_qubits) : num_qubits_(num_qubits) {
  RQSIM_CHECK(num_qubits >= 1 && num_qubits <= kMaxQubits,
              "Tableau: num_qubits must be in [1, 4096]");
  words_ = (num_qubits + 63) / 64;
  const std::size_t rows = 2 * static_cast<std::size_t>(num_qubits) + 1;
  x_bits_.assign(rows * words_, 0);
  z_bits_.assign(rows * words_, 0);
  sign_.assign(rows, 0);
  // Destabilizer i = X_i, stabilizer n+i = Z_i.
  for (unsigned i = 0; i < num_qubits; ++i) {
    set_x(i, i, true);
    set_z(num_qubits + i, i, true);
  }
}

bool Tableau::get_x(std::size_t row, qubit_t q) const {
  return (x_bits_[row * words_ + q / 64] >> (q % 64)) & 1U;
}

bool Tableau::get_z(std::size_t row, qubit_t q) const {
  return (z_bits_[row * words_ + q / 64] >> (q % 64)) & 1U;
}

void Tableau::set_x(std::size_t row, qubit_t q, bool v) {
  std::uint64_t& word = x_bits_[row * words_ + q / 64];
  word = (word & ~(std::uint64_t{1} << (q % 64))) |
         (static_cast<std::uint64_t>(v) << (q % 64));
}

void Tableau::set_z(std::size_t row, qubit_t q, bool v) {
  std::uint64_t& word = z_bits_[row * words_ + q / 64];
  word = (word & ~(std::uint64_t{1} << (q % 64))) |
         (static_cast<std::uint64_t>(v) << (q % 64));
}

void Tableau::h(qubit_t q) {
  RQSIM_CHECK(q < num_qubits_, "Tableau::h: qubit out of range");
  const std::size_t word = q / 64;
  const std::uint64_t mask = std::uint64_t{1} << (q % 64);
  for (std::size_t row = 0; row < 2 * num_qubits_; ++row) {
    std::uint64_t& xw = x_bits_[row * words_ + word];
    std::uint64_t& zw = z_bits_[row * words_ + word];
    const std::uint64_t xv = xw & mask;
    const std::uint64_t zv = zw & mask;
    sign_[row] ^= static_cast<std::uint8_t>((xv && zv) ? 1 : 0);
    xw = (xw & ~mask) | zv;
    zw = (zw & ~mask) | xv;
  }
}

void Tableau::s(qubit_t q) {
  RQSIM_CHECK(q < num_qubits_, "Tableau::s: qubit out of range");
  const std::size_t word = q / 64;
  const std::uint64_t mask = std::uint64_t{1} << (q % 64);
  for (std::size_t row = 0; row < 2 * num_qubits_; ++row) {
    std::uint64_t& xw = x_bits_[row * words_ + word];
    std::uint64_t& zw = z_bits_[row * words_ + word];
    const bool xv = (xw & mask) != 0;
    const bool zv = (zw & mask) != 0;
    sign_[row] ^= static_cast<std::uint8_t>(xv && zv);
    if (xv) {
      zw ^= mask;
    }
  }
}

void Tableau::sdg(qubit_t q) {
  // S† = S·S·S for Cliffords (S has order 4).
  s(q);
  s(q);
  s(q);
}

void Tableau::x(qubit_t q) {
  RQSIM_CHECK(q < num_qubits_, "Tableau::x: qubit out of range");
  for (std::size_t row = 0; row < 2 * num_qubits_; ++row) {
    sign_[row] ^= static_cast<std::uint8_t>(get_z(row, q));
  }
}

void Tableau::z(qubit_t q) {
  RQSIM_CHECK(q < num_qubits_, "Tableau::z: qubit out of range");
  for (std::size_t row = 0; row < 2 * num_qubits_; ++row) {
    sign_[row] ^= static_cast<std::uint8_t>(get_x(row, q));
  }
}

void Tableau::y(qubit_t q) {
  RQSIM_CHECK(q < num_qubits_, "Tableau::y: qubit out of range");
  for (std::size_t row = 0; row < 2 * num_qubits_; ++row) {
    sign_[row] ^= static_cast<std::uint8_t>(get_x(row, q) ^ get_z(row, q));
  }
}

void Tableau::cx(qubit_t control, qubit_t target) {
  RQSIM_CHECK(control < num_qubits_ && target < num_qubits_ && control != target,
              "Tableau::cx: bad operands");
  for (std::size_t row = 0; row < 2 * num_qubits_; ++row) {
    const bool xc = get_x(row, control);
    const bool zc = get_z(row, control);
    const bool xt = get_x(row, target);
    const bool zt = get_z(row, target);
    sign_[row] ^= static_cast<std::uint8_t>(xc && zt && (xt == zc));
    set_x(row, target, xt ^ xc);
    set_z(row, control, zc ^ zt);
  }
}

void Tableau::cz(qubit_t a, qubit_t b) {
  h(b);
  cx(a, b);
  h(b);
}

void Tableau::swap(qubit_t a, qubit_t b) {
  cx(a, b);
  cx(b, a);
  cx(a, b);
}

bool Tableau::is_clifford(GateKind kind) {
  switch (kind) {
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::H:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::CX:
    case GateKind::CZ:
    case GateKind::SWAP:
      return true;
    default:
      return false;
  }
}

void Tableau::apply_gate(const Gate& gate) {
  switch (gate.kind) {
    case GateKind::X:
      x(gate.qubits[0]);
      return;
    case GateKind::Y:
      y(gate.qubits[0]);
      return;
    case GateKind::Z:
      z(gate.qubits[0]);
      return;
    case GateKind::H:
      h(gate.qubits[0]);
      return;
    case GateKind::S:
      s(gate.qubits[0]);
      return;
    case GateKind::Sdg:
      sdg(gate.qubits[0]);
      return;
    case GateKind::CX:
      cx(gate.qubits[0], gate.qubits[1]);
      return;
    case GateKind::CZ:
      cz(gate.qubits[0], gate.qubits[1]);
      return;
    case GateKind::SWAP:
      swap(gate.qubits[0], gate.qubits[1]);
      return;
    default:
      RQSIM_CHECK(false, "Tableau::apply_gate: non-Clifford gate " + gate_name(gate.kind));
  }
}

void Tableau::apply_pauli(Pauli p, qubit_t q) {
  switch (p) {
    case Pauli::I:
      return;
    case Pauli::X:
      x(q);
      return;
    case Pauli::Y:
      y(q);
      return;
    case Pauli::Z:
      z(q);
      return;
  }
}

void Tableau::apply_pauli_pair(PauliPair pair, qubit_t q1, qubit_t q0) {
  apply_pauli(pair.p1, q1);
  apply_pauli(pair.p0, q0);
}

void Tableau::rowsum(std::size_t h_row, std::size_t i_row) {
  // Phase exponent of i^k in the product row_i * row_h, accumulated mod 4.
  int phase = 2 * sign_[h_row] + 2 * sign_[i_row];
  for (qubit_t q = 0; q < num_qubits_; ++q) {
    const int x1 = get_x(i_row, q);
    const int z1 = get_z(i_row, q);
    const int x2 = get_x(h_row, q);
    const int z2 = get_z(h_row, q);
    // Aaronson-Gottesman g(x1, z1, x2, z2).
    int g = 0;
    if (x1 == 1 && z1 == 0) {
      g = z2 * (2 * x2 - 1);
    } else if (x1 == 0 && z1 == 1) {
      g = x2 * (1 - 2 * z2);
    } else if (x1 == 1 && z1 == 1) {
      g = z2 - x2;
    }
    phase += g;
  }
  phase = ((phase % 4) + 4) % 4;
  // For stabilizer/scratch rows the sum is provably 0 or 2 (commuting
  // Hermitian products). Destabilizer rows can anticommute with the pivot;
  // their signs are never read, so the truncation below is harmless —
  // exactly the convention of the reference chp implementation.
  sign_[h_row] = static_cast<std::uint8_t>(phase == 2 ? 1 : 0);
  for (std::size_t w = 0; w < words_; ++w) {
    x_bits_[h_row * words_ + w] ^= x_bits_[i_row * words_ + w];
    z_bits_[h_row * words_ + w] ^= z_bits_[i_row * words_ + w];
  }
}

void Tableau::row_copy(std::size_t dst, std::size_t src) {
  for (std::size_t w = 0; w < words_; ++w) {
    x_bits_[dst * words_ + w] = x_bits_[src * words_ + w];
    z_bits_[dst * words_ + w] = z_bits_[src * words_ + w];
  }
  sign_[dst] = sign_[src];
}

void Tableau::row_clear(std::size_t row) {
  for (std::size_t w = 0; w < words_; ++w) {
    x_bits_[row * words_ + w] = 0;
    z_bits_[row * words_ + w] = 0;
  }
  sign_[row] = 0;
}

bool Tableau::measurement_is_deterministic(qubit_t q) const {
  for (std::size_t p = num_qubits_; p < 2 * static_cast<std::size_t>(num_qubits_); ++p) {
    if (get_x(p, q)) {
      return false;
    }
  }
  return true;
}

int Tableau::measure(qubit_t a, Rng& rng) {
  RQSIM_CHECK(a < num_qubits_, "Tableau::measure: qubit out of range");
  const std::size_t n = num_qubits_;
  // Find a stabilizer anticommuting with Z_a.
  std::size_t p = 2 * n;
  for (std::size_t row = n; row < 2 * n; ++row) {
    if (get_x(row, a)) {
      p = row;
      break;
    }
  }
  if (p < 2 * n) {
    // Random outcome.
    for (std::size_t row = 0; row < 2 * n; ++row) {
      if (row != p && get_x(row, a)) {
        rowsum(row, p);
      }
    }
    row_copy(p - n, p);
    row_clear(p);
    set_z(p, a, true);
    const int outcome = rng.bernoulli(0.5) ? 1 : 0;
    sign_[p] = static_cast<std::uint8_t>(outcome);
    return outcome;
  }
  // Deterministic outcome via the scratch row.
  row_clear(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    if (get_x(i, a)) {
      rowsum(2 * n, i + n);
    }
  }
  return sign_[2 * n];
}

std::string Tableau::row_label(std::size_t row) const {
  std::string label = sign_[row] ? "-" : "+";
  for (unsigned q = num_qubits_; q-- > 0;) {
    const bool xv = get_x(row, q);
    const bool zv = get_z(row, q);
    label += xv ? (zv ? 'Y' : 'X') : (zv ? 'Z' : 'I');
  }
  return label;
}

std::string Tableau::stabilizer(unsigned i) const {
  RQSIM_CHECK(i < num_qubits_, "Tableau::stabilizer: index out of range");
  return row_label(num_qubits_ + i);
}

std::string Tableau::destabilizer(unsigned i) const {
  RQSIM_CHECK(i < num_qubits_, "Tableau::destabilizer: index out of range");
  return row_label(i);
}

OutcomeHistogram stabilizer_sample(const Circuit& circuit, std::size_t num_samples,
                                   Rng& rng) {
  circuit.validate();
  RQSIM_CHECK(circuit.num_measured() > 0, "stabilizer_sample: nothing measured");
  OutcomeHistogram histogram;
  for (std::size_t sample = 0; sample < num_samples; ++sample) {
    Tableau tableau(circuit.num_qubits());
    for (const Gate& g : circuit.gates()) {
      tableau.apply_gate(g);
    }
    std::uint64_t outcome = 0;
    for (std::size_t bit = 0; bit < circuit.num_measured(); ++bit) {
      if (tableau.measure(circuit.measured_qubits()[bit], rng)) {
        outcome |= std::uint64_t{1} << bit;
      }
    }
    ++histogram[outcome];
  }
  return histogram;
}

}  // namespace rqsim
