// Stabilizer (Clifford) simulator — Aaronson & Gottesman CHP tableau.
//
// The paper's related work cites improved stabilizer simulation as one of
// the single-trial optimization families. This substrate provides it:
// Clifford circuits (H, S, CX and everything derived from them, including
// all Pauli error injections) simulate in O(n²) per gate on *hundreds* of
// qubits. Within this repository it serves as an independent oracle: noisy
// Monte Carlo runs of Clifford benchmarks must produce the same outcome
// distribution through the tableau as through the statevector pipeline.
//
// Representation (Aaronson & Gottesman, PRA 70, 052328, 2004): 2n+1 rows
// of Pauli generators — rows 0..n-1 destabilizers, rows n..2n-1
// stabilizers, row 2n scratch — each row holding packed x/z bit vectors
// and a sign bit.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/gate.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "linalg/pauli.hpp"
#include "sim/measure.hpp"

namespace rqsim {

class Tableau {
 public:
  /// |0…0⟩ on `num_qubits` qubits (up to 4096).
  explicit Tableau(unsigned num_qubits);

  unsigned num_qubits() const { return num_qubits_; }

  // Clifford gates -----------------------------------------------------------
  void h(qubit_t q);
  void s(qubit_t q);
  void sdg(qubit_t q);
  void x(qubit_t q);
  void y(qubit_t q);
  void z(qubit_t q);
  void cx(qubit_t control, qubit_t target);
  void cz(qubit_t a, qubit_t b);
  void swap(qubit_t a, qubit_t b);

  /// Apply a circuit gate; throws for non-Clifford kinds.
  void apply_gate(const Gate& gate);

  /// Apply a Pauli error operator (used by noisy simulation).
  void apply_pauli(Pauli p, qubit_t q);
  void apply_pauli_pair(PauliPair pair, qubit_t q1, qubit_t q0);

  /// True if the gate kind is supported by the tableau.
  static bool is_clifford(GateKind kind);

  /// Measure qubit q in the Z basis; collapses the state. Random outcomes
  /// draw from `rng`.
  int measure(qubit_t q, Rng& rng);

  /// True if measuring q would give a deterministic outcome.
  bool measurement_is_deterministic(qubit_t q) const;

  // Introspection ------------------------------------------------------------

  /// Stabilizer row `i` (0..n-1) as a Pauli label with leading sign,
  /// e.g. "-XZI" (leftmost = highest qubit, matching PauliString labels).
  std::string stabilizer(unsigned i) const;
  std::string destabilizer(unsigned i) const;

 private:
  unsigned num_qubits_ = 0;
  std::size_t words_ = 0;  // 64-bit words per bit row

  // Row-major packed bits: row r occupies [r*words_, (r+1)*words_).
  std::vector<std::uint64_t> x_bits_;
  std::vector<std::uint64_t> z_bits_;
  std::vector<std::uint8_t> sign_;  // r bit (phase -1)

  bool get_x(std::size_t row, qubit_t q) const;
  bool get_z(std::size_t row, qubit_t q) const;
  void set_x(std::size_t row, qubit_t q, bool v);
  void set_z(std::size_t row, qubit_t q, bool v);

  /// row_h <- row_h * row_i with correct phase (the CHP "rowsum").
  void rowsum(std::size_t h, std::size_t i);
  void row_copy(std::size_t dst, std::size_t src);
  void row_clear(std::size_t row);
  std::string row_label(std::size_t row) const;
};

/// Sample `num_samples` all-qubit measurement outcomes of a Clifford
/// circuit (each sample re-runs the tableau: collapse is destructive).
/// Outcome bit k = circuit.measured_qubits()[k], as in the statevector
/// pipeline.
OutcomeHistogram stabilizer_sample(const Circuit& circuit, std::size_t num_samples,
                                   Rng& rng);

}  // namespace rqsim
