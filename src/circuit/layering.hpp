// ASAP layering of a circuit.
//
// The paper injects errors "at the end of each layer", where a layer is a
// maximal set of gates acting on disjoint qubits scheduled as soon as their
// operands are free. The layering defines the (layer, gate) coordinates of
// every error position used by the trial reorder.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "common/types.hpp"

namespace rqsim {

/// Result of ASAP layering.
struct Layering {
  /// layer_of_gate[g] — the layer index assigned to gate g.
  std::vector<layer_index_t> layer_of_gate;

  /// layers[l] — gate indices in layer l, in circuit order.
  std::vector<std::vector<gate_index_t>> layers;

  std::size_t num_layers() const { return layers.size(); }
};

/// Compute the ASAP layering: each gate goes to the earliest layer after the
/// latest layer used by any of its operands.
Layering layer_circuit(const Circuit& circuit);

/// Check the layering invariant: within any layer no two gates share a
/// qubit, and each gate is no earlier than any predecessor on its qubits.
bool layering_is_valid(const Circuit& circuit, const Layering& layering);

}  // namespace rqsim
