#include "circuit/qasm.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/types.hpp"

namespace rqsim {

namespace {

std::string format_param(double value) {
  // Emit enough digits to round-trip a double.
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

}  // namespace

std::string to_qasm(const Circuit& circuit) {
  std::ostringstream os;
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  os << "qreg q[" << circuit.num_qubits() << "];\n";
  if (circuit.num_measured() > 0) {
    os << "creg c[" << circuit.num_measured() << "];\n";
  }
  for (const Gate& g : circuit.gates()) {
    std::string name = gate_name(g.kind);
    if (name == "p") {
      name = "u1";  // qelib1 compatibility
    }
    if (name == "cp") {
      name = "cu1";
    }
    os << name;
    const int np = gate_num_params(g.kind);
    if (np > 0) {
      os << "(";
      for (int i = 0; i < np; ++i) {
        if (i > 0) {
          os << ",";
        }
        os << format_param(g.params[static_cast<std::size_t>(i)]);
      }
      os << ")";
    }
    os << " ";
    const int arity = g.arity();
    for (int i = 0; i < arity; ++i) {
      if (i > 0) {
        os << ",";
      }
      os << "q[" << g.qubits[static_cast<std::size_t>(i)] << "]";
    }
    os << ";\n";
  }
  for (std::size_t bit = 0; bit < circuit.num_measured(); ++bit) {
    os << "measure q[" << circuit.measured_qubits()[bit] << "] -> c[" << bit << "];\n";
  }
  return os.str();
}

namespace {

// ---------------------------------------------------------------------------
// Tiny recursive-descent evaluator for parameter expressions.
// grammar: expr := term (('+'|'-') term)*
//          term := factor (('*'|'/') factor)*
//          factor := ('-'|'+') factor | number | 'pi' | '(' expr ')'
class ExprParser {
 public:
  explicit ExprParser(const std::string& text) : text_(text) {}

  double parse() {
    const double v = parse_expr();
    skip_ws();
    RQSIM_CHECK(pos_ == text_.size(), "qasm expr: trailing characters in '" + text_ + "'");
    return v;
  }

 private:
  double parse_expr() {
    double v = parse_term();
    for (;;) {
      skip_ws();
      if (peek() == '+') {
        ++pos_;
        v += parse_term();
      } else if (peek() == '-') {
        ++pos_;
        v -= parse_term();
      } else {
        return v;
      }
    }
  }

  double parse_term() {
    double v = parse_factor();
    for (;;) {
      skip_ws();
      if (peek() == '*') {
        ++pos_;
        v *= parse_factor();
      } else if (peek() == '/') {
        ++pos_;
        const double d = parse_factor();
        RQSIM_CHECK(d != 0.0, "qasm expr: division by zero");
        v /= d;
      } else {
        return v;
      }
    }
  }

  double parse_factor() {
    skip_ws();
    const char c = peek();
    if (c == '-') {
      ++pos_;
      return -parse_factor();
    }
    if (c == '+') {
      ++pos_;
      return parse_factor();
    }
    if (c == '(') {
      ++pos_;
      const double v = parse_expr();
      skip_ws();
      RQSIM_CHECK(peek() == ')', "qasm expr: missing ')'");
      ++pos_;
      return v;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return parse_number();
    }
    if (std::isalpha(static_cast<unsigned char>(c))) {
      std::string ident;
      while (pos_ < text_.size() &&
             std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
        ident.push_back(text_[pos_++]);
      }
      RQSIM_CHECK(ident == "pi", "qasm expr: unknown identifier '" + ident + "'");
      return kPi;
    }
    RQSIM_CHECK(false, "qasm expr: unexpected character in '" + text_ + "'");
    return 0.0;
  }

  double parse_number() {
    const std::size_t begin = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > begin &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    return std::stod(text_.substr(begin, pos_ - begin));
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

struct QasmStatement {
  std::string name;
  std::vector<double> params;
  std::vector<std::string> operands;
};

// Parse "name(p0,p1) q[0],q[1]" into its parts.
QasmStatement parse_statement(const std::string& stmt, int line_no) {
  QasmStatement out;
  std::size_t pos = 0;
  while (pos < stmt.size() &&
         (std::isalnum(static_cast<unsigned char>(stmt[pos])) || stmt[pos] == '_')) {
    out.name.push_back(stmt[pos++]);
  }
  RQSIM_CHECK(!out.name.empty(),
              "qasm: cannot parse statement at line " + std::to_string(line_no));
  if (pos < stmt.size() && stmt[pos] == '(') {
    const std::size_t close = stmt.find(')', pos);
    RQSIM_CHECK(close != std::string::npos,
                "qasm: missing ')' at line " + std::to_string(line_no));
    // Split on commas at depth zero.
    int depth = 0;
    std::string cur;
    for (std::size_t i = pos + 1; i < close; ++i) {
      const char c = stmt[i];
      if (c == '(') {
        ++depth;
      }
      if (c == ')') {
        --depth;
      }
      if (c == ',' && depth == 0) {
        out.params.push_back(eval_qasm_expr(cur));
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!trim(cur).empty()) {
      out.params.push_back(eval_qasm_expr(cur));
    }
    pos = close + 1;
  }
  for (const std::string& piece : split(stmt.substr(pos), ',')) {
    const std::string operand = trim(piece);
    if (!operand.empty()) {
      out.operands.push_back(operand);
    }
  }
  return out;
}

qubit_t parse_indexed(const std::string& operand, const std::string& reg, int line_no) {
  const std::size_t open = operand.find('[');
  const std::size_t close = operand.find(']');
  RQSIM_CHECK(open != std::string::npos && close != std::string::npos && close > open,
              "qasm: expected indexed operand at line " + std::to_string(line_no));
  RQSIM_CHECK(trim(operand.substr(0, open)) == reg,
              "qasm: unknown register '" + operand + "' at line " + std::to_string(line_no));
  return static_cast<qubit_t>(std::stoul(operand.substr(open + 1, close - open - 1)));
}

}  // namespace

double eval_qasm_expr(const std::string& expr) { return ExprParser(expr).parse(); }

Circuit from_qasm(const std::string& text) {
  // Strip comments, then split on ';' so statements may span lines.
  std::string cleaned;
  for (const std::string& raw_line : split(text, '\n')) {
    std::string line = raw_line;
    const std::size_t comment = line.find("//");
    if (comment != std::string::npos) {
      line = line.substr(0, comment);
    }
    cleaned += line;
    cleaned += '\n';
  }

  Circuit circuit;
  std::string qreg_name = "q";
  std::string creg_name = "c";
  bool have_qreg = false;
  std::map<std::size_t, qubit_t> measurements;  // classical bit -> qubit

  int line_no = 0;
  std::size_t start = 0;
  while (start < cleaned.size()) {
    const std::size_t end = cleaned.find(';', start);
    if (end == std::string::npos) {
      RQSIM_CHECK(trim(cleaned.substr(start)).empty(), "qasm: trailing statement without ';'");
      break;
    }
    std::string stmt = cleaned.substr(start, end - start);
    line_no += static_cast<int>(std::count(stmt.begin(), stmt.end(), '\n'));
    start = end + 1;
    stmt = trim(stmt);
    if (stmt.empty()) {
      continue;
    }
    if (starts_with(stmt, "OPENQASM") || starts_with(stmt, "include") ||
        starts_with(stmt, "barrier")) {
      continue;
    }
    if (starts_with(stmt, "qreg")) {
      const QasmStatement qs = parse_statement(trim(stmt.substr(4)), line_no);
      const std::size_t open = qs.name.size();
      (void)open;
      // Re-parse: "q[5]" arrives as one operand-like token in qs.name + index.
      const std::string decl = trim(stmt.substr(4));
      const std::size_t ob = decl.find('[');
      const std::size_t cb = decl.find(']');
      RQSIM_CHECK(ob != std::string::npos && cb != std::string::npos,
                  "qasm: bad qreg at line " + std::to_string(line_no));
      qreg_name = trim(decl.substr(0, ob));
      const unsigned n = static_cast<unsigned>(std::stoul(decl.substr(ob + 1, cb - ob - 1)));
      circuit = Circuit(n, "qasm");
      have_qreg = true;
      continue;
    }
    if (starts_with(stmt, "creg")) {
      const std::string decl = trim(stmt.substr(4));
      const std::size_t ob = decl.find('[');
      RQSIM_CHECK(ob != std::string::npos, "qasm: bad creg at line " + std::to_string(line_no));
      creg_name = trim(decl.substr(0, ob));
      continue;
    }
    RQSIM_CHECK(have_qreg, "qasm: statement before qreg at line " + std::to_string(line_no));
    if (starts_with(stmt, "measure")) {
      const std::size_t arrow = stmt.find("->");
      RQSIM_CHECK(arrow != std::string::npos,
                  "qasm: measure without '->' at line " + std::to_string(line_no));
      const qubit_t q = parse_indexed(trim(stmt.substr(7, arrow - 7)), qreg_name, line_no);
      const qubit_t cbit = parse_indexed(trim(stmt.substr(arrow + 2)), creg_name, line_no);
      measurements[cbit] = q;
      continue;
    }

    const QasmStatement qs = parse_statement(stmt, line_no);
    std::vector<qubit_t> qubits;
    qubits.reserve(qs.operands.size());
    for (const std::string& operand : qs.operands) {
      qubits.push_back(parse_indexed(operand, qreg_name, line_no));
    }

    static const std::map<std::string, GateKind> kGateByName = {
        {"x", GateKind::X},     {"y", GateKind::Y},     {"z", GateKind::Z},
        {"h", GateKind::H},     {"s", GateKind::S},     {"sdg", GateKind::Sdg},
        {"t", GateKind::T},     {"tdg", GateKind::Tdg}, {"rx", GateKind::RX},
        {"ry", GateKind::RY},   {"rz", GateKind::RZ},   {"p", GateKind::P},
        {"u1", GateKind::P},    {"u2", GateKind::U2},   {"u3", GateKind::U3},
        {"u", GateKind::U3},    {"cx", GateKind::CX},   {"cz", GateKind::CZ},
        {"cp", GateKind::CP},   {"cu1", GateKind::CP},  {"swap", GateKind::SWAP},
        {"ccx", GateKind::CCX}, {"id", GateKind::P},
    };
    const auto it = kGateByName.find(qs.name);
    RQSIM_CHECK(it != kGateByName.end(),
                "qasm: unsupported gate '" + qs.name + "' at line " + std::to_string(line_no));
    const GateKind kind = it->second;
    if (qs.name == "id") {
      continue;  // identity: no-op
    }
    const int arity = gate_arity(kind);
    const int np = gate_num_params(kind);
    RQSIM_CHECK(static_cast<int>(qubits.size()) == arity,
                "qasm: wrong operand count for '" + qs.name + "' at line " +
                    std::to_string(line_no));
    RQSIM_CHECK(static_cast<int>(qs.params.size()) == np,
                "qasm: wrong parameter count for '" + qs.name + "' at line " +
                    std::to_string(line_no));
    Gate g;
    g.kind = kind;
    for (int i = 0; i < arity; ++i) {
      g.qubits[static_cast<std::size_t>(i)] = qubits[static_cast<std::size_t>(i)];
    }
    for (int i = 0; i < np; ++i) {
      g.params[static_cast<std::size_t>(i)] = qs.params[static_cast<std::size_t>(i)];
    }
    circuit.add(g);
  }

  // Apply measurements in classical-bit order.
  std::size_t expected = 0;
  for (const auto& [cbit, q] : measurements) {
    RQSIM_CHECK(cbit == expected, "qasm: classical bits must be contiguous from 0");
    circuit.measure(q);
    ++expected;
  }
  circuit.validate();
  return circuit;
}

}  // namespace rqsim
