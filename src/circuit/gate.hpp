// Gate set of the circuit IR.
//
// The IR is intentionally small: the standard single-qubit gates and
// rotations, the two-qubit entanglers used by the benchmarks (CX, CZ, CP,
// SWAP), and the Toffoli (CCX). Convention for two-qubit matrices: the
// 4x4 row/column index is (bit(qubits[0]) << 1) | bit(qubits[1]), i.e. the
// first listed operand is the high-order bit (the control for CX/CZ/CP).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace rqsim {

enum class GateKind : std::uint8_t {
  X,
  Y,
  Z,
  H,
  S,
  Sdg,
  T,
  Tdg,
  RX,
  RY,
  RZ,
  P,   // phase gate diag(1, e^{i λ})
  U2,  // u2(φ, λ)
  U3,  // u3(θ, φ, λ) — general single-qubit
  CX,
  CZ,
  CP,  // controlled phase
  SWAP,
  CCX,
};

/// Number of qubit operands for a gate kind (1, 2 or 3).
int gate_arity(GateKind kind);

/// Number of real parameters for a gate kind (0..3).
int gate_num_params(GateKind kind);

/// Lower-case mnemonic as used in OpenQASM ("cx", "u3", ...).
std::string gate_name(GateKind kind);

/// A gate instance: kind + operands + parameters.
struct Gate {
  GateKind kind = GateKind::X;
  std::array<qubit_t, 3> qubits{};
  std::array<double, 3> params{};

  int arity() const { return gate_arity(kind); }

  static Gate make1(GateKind kind, qubit_t q, double p0 = 0.0, double p1 = 0.0,
                    double p2 = 0.0);
  static Gate make2(GateKind kind, qubit_t a, qubit_t b, double p0 = 0.0);
  static Gate make3(GateKind kind, qubit_t a, qubit_t b, qubit_t c);
};

/// 2x2 matrix of a single-qubit gate (requires arity 1).
Mat2 gate_matrix1(const Gate& gate);

/// 4x4 matrix of a two-qubit gate (requires arity 2), in the operand-order
/// convention described at the top of this header.
Mat4 gate_matrix2(const Gate& gate);

/// True for gates whose matrix is diagonal (Z, S, Sdg, T, Tdg, RZ, P, CZ, CP).
bool gate_is_diagonal(GateKind kind);

}  // namespace rqsim
