// Gate set of the circuit IR.
//
// The IR is intentionally small: the standard single-qubit gates and
// rotations, the two-qubit entanglers used by the benchmarks (CX, CZ, CP,
// SWAP), and the Toffoli (CCX). Convention for two-qubit matrices: the
// 4x4 row/column index is (bit(qubits[0]) << 1) | bit(qubits[1]), i.e. the
// first listed operand is the high-order bit (the control for CX/CZ/CP).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace rqsim {

enum class GateKind : std::uint8_t {
  X,
  Y,
  Z,
  H,
  S,
  Sdg,
  T,
  Tdg,
  RX,
  RY,
  RZ,
  P,   // phase gate diag(1, e^{i λ})
  U2,  // u2(φ, λ)
  U3,  // u3(θ, φ, λ) — general single-qubit
  CX,
  CZ,
  CP,  // controlled phase
  SWAP,
  CCX,
};

/// Number of qubit operands for a gate kind (1, 2 or 3).
int gate_arity(GateKind kind);

/// Number of real parameters for a gate kind (0..3).
int gate_num_params(GateKind kind);

/// Lower-case mnemonic as used in OpenQASM ("cx", "u3", ...).
std::string gate_name(GateKind kind);

/// Symplectic conjugation rule of a Clifford gate: how G maps each Pauli
/// P to G·P·G† up to a global ±1/±i phase (the phase never survives into
/// |amplitude|² or an expectation value, so frames drop it). Paulis are
/// the 2-bit (x | z << 1) code per operand: I=0, X=1, Z=2, Y=3.
///
/// `one` is the arity-1 map over that 2-bit code. `two` maps the 4-bit
/// code (bits 0-1 = qubits[0]'s Pauli, bits 2-3 = qubits[1]'s) for the
/// two-qubit Cliffords, where a Pauli on one operand may spread to both
/// (CX: X on the control becomes X⊗X).
struct PauliConjugation {
  std::array<std::uint8_t, 4> one{};
  std::array<std::uint8_t, 16> two{};
};

/// True for the Clifford kinds: X, Y, Z, H, S, Sdg, CX, CZ, SWAP.
/// Parameterized kinds (RZ, P, ...) are never classified Clifford, even at
/// angles where their unitary happens to be one — classification must not
/// depend on floating-point parameter values.
bool gate_kind_is_clifford(GateKind kind);

/// Conjugation table for a Clifford kind; RQSIM_CHECK-fails otherwise.
const PauliConjugation& pauli_conjugation_table(GateKind kind);

/// A gate instance: kind + operands + parameters.
struct Gate {
  GateKind kind = GateKind::X;
  std::array<qubit_t, 3> qubits{};
  std::array<double, 3> params{};

  /// Cached at construction by the factories (gate_kind_is_clifford /
  /// pauli_conjugation_table are table lookups, but the hot frame-
  /// propagation loop in sched/ asks per gate per trial — caching here
  /// keeps that loop branch-and-load only).
  bool clifford = false;
  const PauliConjugation* conj = nullptr;  // non-null iff clifford

  int arity() const { return gate_arity(kind); }
  bool is_clifford() const { return clifford; }
  const PauliConjugation* pauli_conjugation() const { return conj; }

  static Gate make1(GateKind kind, qubit_t q, double p0 = 0.0, double p1 = 0.0,
                    double p2 = 0.0);
  static Gate make2(GateKind kind, qubit_t a, qubit_t b, double p0 = 0.0);
  static Gate make3(GateKind kind, qubit_t a, qubit_t b, qubit_t c);
};

/// Exact inverse of `gate` on the same operands: self-inverse kinds map to
/// themselves, S↔Sdg, T↔Tdg, rotations negate their angle, and
/// U2(φ,λ)† = U3(-π/2, -λ, -φ), U3(θ,φ,λ)† = U3(-θ, -λ, -φ).
Gate gate_inverse(const Gate& gate);

/// True when applying the gate and then its inverse restores every
/// amplitude *bitwise*: the kind's kernel and its inverse's are pure
/// permutation / ±1 / ±i operations (X, Y, Z, S, Sdg, CX, CZ, SWAP, CCX).
/// H is unitary but 1/√2 rounds, so H·H drifts in the last ulp; same for
/// the rotation family. The uncompute path may only rewind through kinds
/// that pass this test.
bool gate_fp_exact_invertible(GateKind kind);

/// 2x2 matrix of a single-qubit gate (requires arity 1).
Mat2 gate_matrix1(const Gate& gate);

/// 4x4 matrix of a two-qubit gate (requires arity 2), in the operand-order
/// convention described at the top of this header.
Mat4 gate_matrix2(const Gate& gate);

/// True for gates whose matrix is diagonal (Z, S, Sdg, T, Tdg, RZ, P, CZ, CP).
bool gate_is_diagonal(GateKind kind);

}  // namespace rqsim
