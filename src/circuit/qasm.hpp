// OpenQASM 2.0 subset writer and parser.
//
// Supported subset (enough to round-trip every circuit this library
// produces): a single qreg/creg declaration, the gate mnemonics of the IR
// gate set (x, y, z, h, s, sdg, t, tdg, rx, ry, rz, p/u1, u2, u3, cx, cz,
// cp/cu1, swap, ccx), `measure q[i] -> c[j]`, `barrier` (ignored), and
// comments. Parameter expressions support +, -, *, /, parentheses, numeric
// literals, and `pi`.
#pragma once

#include <string>

#include "circuit/circuit.hpp"

namespace rqsim {

/// Serialize a circuit to OpenQASM 2.0.
std::string to_qasm(const Circuit& circuit);

/// Parse an OpenQASM 2.0 subset into a Circuit. Throws rqsim::Error with a
/// line number on any construct outside the supported subset.
Circuit from_qasm(const std::string& text);

/// Evaluate a QASM parameter expression ("-pi/4", "3*pi/2", "0.25"...).
double eval_qasm_expr(const std::string& expr);

}  // namespace rqsim
