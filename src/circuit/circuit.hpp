// Circuit container: an ordered gate list over n qubits plus a terminal
// measurement of a subset of qubits into classical bits.
//
// The noisy-simulation pipeline in this library (and the paper it
// reproduces) treats measurement as *terminal*: all measurements happen
// after the last gate, and measurement noise is a classical bit flip on the
// sampled outcome. Mid-circuit measurement is deliberately not modeled.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/gate.hpp"
#include "common/types.hpp"

namespace rqsim {

class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(unsigned num_qubits, std::string name = "circuit");

  unsigned num_qubits() const { return num_qubits_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<Gate>& gates() const { return gates_; }
  std::size_t num_gates() const { return gates_.size(); }

  /// Append a gate (operands validated against num_qubits()).
  void add(const Gate& gate);

  // Convenience builders ----------------------------------------------------
  void x(qubit_t q) { add(Gate::make1(GateKind::X, q)); }
  void y(qubit_t q) { add(Gate::make1(GateKind::Y, q)); }
  void z(qubit_t q) { add(Gate::make1(GateKind::Z, q)); }
  void h(qubit_t q) { add(Gate::make1(GateKind::H, q)); }
  void s(qubit_t q) { add(Gate::make1(GateKind::S, q)); }
  void sdg(qubit_t q) { add(Gate::make1(GateKind::Sdg, q)); }
  void t(qubit_t q) { add(Gate::make1(GateKind::T, q)); }
  void tdg(qubit_t q) { add(Gate::make1(GateKind::Tdg, q)); }
  void rx(qubit_t q, double theta) { add(Gate::make1(GateKind::RX, q, theta)); }
  void ry(qubit_t q, double theta) { add(Gate::make1(GateKind::RY, q, theta)); }
  void rz(qubit_t q, double lambda) { add(Gate::make1(GateKind::RZ, q, lambda)); }
  void p(qubit_t q, double lambda) { add(Gate::make1(GateKind::P, q, lambda)); }
  void u2(qubit_t q, double phi, double lambda) {
    add(Gate::make1(GateKind::U2, q, phi, lambda));
  }
  void u3(qubit_t q, double theta, double phi, double lambda) {
    add(Gate::make1(GateKind::U3, q, theta, phi, lambda));
  }
  void cx(qubit_t control, qubit_t target) {
    add(Gate::make2(GateKind::CX, control, target));
  }
  void cz(qubit_t a, qubit_t b) { add(Gate::make2(GateKind::CZ, a, b)); }
  void cp(qubit_t a, qubit_t b, double lambda) {
    add(Gate::make2(GateKind::CP, a, b, lambda));
  }
  void swap(qubit_t a, qubit_t b) { add(Gate::make2(GateKind::SWAP, a, b)); }
  void ccx(qubit_t c1, qubit_t c2, qubit_t target) {
    add(Gate::make3(GateKind::CCX, c1, c2, target));
  }

  // Measurement --------------------------------------------------------------

  /// Measure qubit q into the next classical bit; returns the bit index.
  std::size_t measure(qubit_t q);

  /// Measure all qubits in order (bit i <- qubit i).
  void measure_all();

  /// Qubits measured, in classical-bit order.
  const std::vector<qubit_t>& measured_qubits() const { return measured_; }
  std::size_t num_measured() const { return measured_.size(); }

  // Statistics ---------------------------------------------------------------

  /// Number of single-qubit gates.
  std::size_t count_single_qubit_gates() const;

  /// Number of gates of a specific kind.
  std::size_t count_kind(GateKind kind) const;

  /// Number of gates with arity >= 2.
  std::size_t count_multi_qubit_gates() const;

  /// True if every gate operand and measured qubit is in range and no qubit
  /// is measured twice.
  void validate() const;

 private:
  unsigned num_qubits_ = 0;
  std::string name_ = "circuit";
  std::vector<Gate> gates_;
  std::vector<qubit_t> measured_;
};

}  // namespace rqsim
