#include "circuit/layering.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rqsim {

Layering layer_circuit(const Circuit& circuit) {
  Layering out;
  out.layer_of_gate.resize(circuit.num_gates());
  std::vector<layer_index_t> next_free(circuit.num_qubits(), 0);

  for (gate_index_t g = 0; g < circuit.num_gates(); ++g) {
    const Gate& gate = circuit.gates()[g];
    layer_index_t layer = 0;
    const int arity = gate.arity();
    for (int i = 0; i < arity; ++i) {
      layer = std::max(layer, next_free[gate.qubits[static_cast<std::size_t>(i)]]);
    }
    out.layer_of_gate[g] = layer;
    for (int i = 0; i < arity; ++i) {
      next_free[gate.qubits[static_cast<std::size_t>(i)]] = layer + 1;
    }
    if (layer >= out.layers.size()) {
      out.layers.resize(layer + 1);
    }
    out.layers[layer].push_back(g);
  }
  return out;
}

bool layering_is_valid(const Circuit& circuit, const Layering& layering) {
  if (layering.layer_of_gate.size() != circuit.num_gates()) {
    return false;
  }
  // No qubit reuse within a layer.
  for (const auto& layer : layering.layers) {
    std::vector<qubit_t> used;
    for (gate_index_t g : layer) {
      const Gate& gate = circuit.gates()[g];
      const int arity = gate.arity();
      for (int i = 0; i < arity; ++i) {
        const qubit_t q = gate.qubits[static_cast<std::size_t>(i)];
        if (std::find(used.begin(), used.end(), q) != used.end()) {
          return false;
        }
        used.push_back(q);
      }
    }
  }
  // Program order respected per qubit: a later gate on the same qubit must
  // be in a strictly later layer.
  std::vector<long> last_layer(circuit.num_qubits(), -1);
  for (gate_index_t g = 0; g < circuit.num_gates(); ++g) {
    const Gate& gate = circuit.gates()[g];
    const long layer = static_cast<long>(layering.layer_of_gate[g]);
    const int arity = gate.arity();
    for (int i = 0; i < arity; ++i) {
      const qubit_t q = gate.qubits[static_cast<std::size_t>(i)];
      if (layer <= last_layer[q]) {
        return false;
      }
      last_layer[q] = layer;
    }
  }
  return true;
}

}  // namespace rqsim
