// Gate fusion: collapse a gate sequence into fewer, denser matrix ops.
//
// The prefix-caching scheduler replays the same layer ranges for every
// surviving trial, so shrinking the op count of a range pays off once per
// replay. The pass rewrites a gate sequence into a FusedProgram of three op
// kinds:
//
//   kGate — a circuit gate passed through unchanged (specialized kernels
//           like CX/CZ/SWAP stay on their cheap swap/phase sweeps);
//   kMat2 — a maximal run of single-qubit gates on one qubit, multiplied
//           into a single 2x2 unitary;
//   kMat4 — a two-qubit gate lifted to a 4x4 unitary with neighboring
//           single-qubit matrices absorbed into it.
//
// Lifting policy (cost-model, see DESIGN.md): a two-qubit gate is lifted to
// a Mat4 only when both operands carry a pending single-qubit matrix (one
// full-sweep Mat4 beats two Mat2 sweeps plus a specialized sweep), or when
// it lands on the same qubit pair as the immediately preceding Mat4, which
// is then extended in place. Pending matrices also fold *backward* into the
// last Mat4 on their qubit when no later op touches that qubit (ops on
// disjoint qubits commute, so the fold preserves the operator product).
//
// Fusion changes the floating-point evaluation order, so fused execution is
// epsilon-equivalent (not bitwise) to the unfused kernels; both are checked
// against the dense reference simulator in the tests.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/layering.hpp"
#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace rqsim {

struct FusedOp {
  enum class Kind : std::uint8_t { kGate, kMat2, kMat4 };

  Kind kind = Kind::kGate;
  Gate gate;                 // kGate only
  Mat2 m2;                   // kMat2 only
  Mat4 m4;                   // kMat4 only; index = (bit(q_hi) << 1) | bit(q_lo)
  qubit_t q_hi = 0;          // kMat4 high-order operand
  qubit_t q_lo = 0;          // kMat2 target / kMat4 low-order operand
  std::uint32_t fused_gates = 1;  // source gates folded into this op
};

struct FusedProgram {
  std::vector<FusedOp> ops;
  std::size_t source_gate_count = 0;
};

struct FusionOptions {
  /// Allow lifting two-qubit gates to Mat4 (absorption and pair-merging).
  /// Off, the pass only fuses single-qubit runs.
  bool lift_two_qubit = true;
};

/// Fuse a gate sequence (application order). The fused program applies the
/// same unitary as applying `gates` in order.
FusedProgram fuse_gate_sequence(const std::vector<Gate>& gates,
                                const FusionOptions& options = {});

/// Fuse the gates of layers [from, to) of a layered circuit, in layer order
/// (the same order apply_layers uses).
FusedProgram fuse_layer_range(const Circuit& circuit, const Layering& layering,
                              layer_index_t from, layer_index_t to,
                              const FusionOptions& options = {});

/// Memoized fuse_layer_range. The scheduler advances checkpoints over a
/// small set of distinct layer ranges (bounded by the error positions of
/// the trial set); each range is fused once and replayed many times.
class FusionCache {
 public:
  FusionCache(const Circuit& circuit, const Layering& layering,
              FusionOptions options = {});

  const FusedProgram& segment(layer_index_t from, layer_index_t to);

  std::size_t num_segments() const { return segments_.size(); }

 private:
  const Circuit& circuit_;
  const Layering& layering_;
  FusionOptions options_;
  std::unordered_map<std::uint64_t, FusedProgram> segments_;
};

}  // namespace rqsim
