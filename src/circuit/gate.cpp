#include "circuit/gate.hpp"

#include <cmath>

#include "common/error.hpp"

namespace rqsim {

int gate_arity(GateKind kind) {
  switch (kind) {
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::H:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::U2:
    case GateKind::U3:
      return 1;
    case GateKind::CX:
    case GateKind::CZ:
    case GateKind::CP:
    case GateKind::SWAP:
      return 2;
    case GateKind::CCX:
      return 3;
  }
  return 0;
}

int gate_num_params(GateKind kind) {
  switch (kind) {
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::CP:
      return 1;
    case GateKind::U2:
      return 2;
    case GateKind::U3:
      return 3;
    default:
      return 0;
  }
}

std::string gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::X:
      return "x";
    case GateKind::Y:
      return "y";
    case GateKind::Z:
      return "z";
    case GateKind::H:
      return "h";
    case GateKind::S:
      return "s";
    case GateKind::Sdg:
      return "sdg";
    case GateKind::T:
      return "t";
    case GateKind::Tdg:
      return "tdg";
    case GateKind::RX:
      return "rx";
    case GateKind::RY:
      return "ry";
    case GateKind::RZ:
      return "rz";
    case GateKind::P:
      return "p";
    case GateKind::U2:
      return "u2";
    case GateKind::U3:
      return "u3";
    case GateKind::CX:
      return "cx";
    case GateKind::CZ:
      return "cz";
    case GateKind::CP:
      return "cp";
    case GateKind::SWAP:
      return "swap";
    case GateKind::CCX:
      return "ccx";
  }
  return "?";
}

Gate Gate::make1(GateKind kind, qubit_t q, double p0, double p1, double p2) {
  RQSIM_CHECK(gate_arity(kind) == 1, "Gate::make1: kind is not single-qubit");
  Gate g;
  g.kind = kind;
  g.qubits = {q, 0, 0};
  g.params = {p0, p1, p2};
  return g;
}

Gate Gate::make2(GateKind kind, qubit_t a, qubit_t b, double p0) {
  RQSIM_CHECK(gate_arity(kind) == 2, "Gate::make2: kind is not two-qubit");
  RQSIM_CHECK(a != b, "Gate::make2: operands must differ");
  Gate g;
  g.kind = kind;
  g.qubits = {a, b, 0};
  g.params = {p0, 0.0, 0.0};
  return g;
}

Gate Gate::make3(GateKind kind, qubit_t a, qubit_t b, qubit_t c) {
  RQSIM_CHECK(gate_arity(kind) == 3, "Gate::make3: kind is not three-qubit");
  RQSIM_CHECK(a != b && b != c && a != c, "Gate::make3: operands must differ");
  Gate g;
  g.kind = kind;
  g.qubits = {a, b, c};
  return g;
}

namespace {

Mat2 u3_matrix(double theta, double phi, double lambda) {
  Mat2 m;
  const double ct = std::cos(theta / 2.0);
  const double st = std::sin(theta / 2.0);
  m.at(0, 0) = ct;
  m.at(0, 1) = -std::exp(cplx(0.0, lambda)) * st;
  m.at(1, 0) = std::exp(cplx(0.0, phi)) * st;
  m.at(1, 1) = std::exp(cplx(0.0, phi + lambda)) * ct;
  return m;
}

}  // namespace

Mat2 gate_matrix1(const Gate& gate) {
  RQSIM_CHECK(gate.arity() == 1, "gate_matrix1: gate is not single-qubit");
  const double p0 = gate.params[0];
  const double p1 = gate.params[1];
  const double p2 = gate.params[2];
  Mat2 m;
  switch (gate.kind) {
    case GateKind::X:
      m.at(0, 1) = 1.0;
      m.at(1, 0) = 1.0;
      return m;
    case GateKind::Y:
      m.at(0, 1) = cplx(0.0, -1.0);
      m.at(1, 0) = cplx(0.0, 1.0);
      return m;
    case GateKind::Z:
      m.at(0, 0) = 1.0;
      m.at(1, 1) = -1.0;
      return m;
    case GateKind::H: {
      const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
      m.at(0, 0) = inv_sqrt2;
      m.at(0, 1) = inv_sqrt2;
      m.at(1, 0) = inv_sqrt2;
      m.at(1, 1) = -inv_sqrt2;
      return m;
    }
    case GateKind::S:
      m.at(0, 0) = 1.0;
      m.at(1, 1) = cplx(0.0, 1.0);
      return m;
    case GateKind::Sdg:
      m.at(0, 0) = 1.0;
      m.at(1, 1) = cplx(0.0, -1.0);
      return m;
    case GateKind::T:
      m.at(0, 0) = 1.0;
      m.at(1, 1) = std::exp(cplx(0.0, kPi / 4.0));
      return m;
    case GateKind::Tdg:
      m.at(0, 0) = 1.0;
      m.at(1, 1) = std::exp(cplx(0.0, -kPi / 4.0));
      return m;
    case GateKind::RX:
      return u3_matrix(p0, -kPi / 2.0, kPi / 2.0);
    case GateKind::RY:
      return u3_matrix(p0, 0.0, 0.0);
    case GateKind::RZ:
      // rz(λ) = diag(e^{-iλ/2}, e^{iλ/2}).
      m.at(0, 0) = std::exp(cplx(0.0, -p0 / 2.0));
      m.at(1, 1) = std::exp(cplx(0.0, p0 / 2.0));
      return m;
    case GateKind::P:
      m.at(0, 0) = 1.0;
      m.at(1, 1) = std::exp(cplx(0.0, p0));
      return m;
    case GateKind::U2:
      return u3_matrix(kPi / 2.0, p0, p1);
    case GateKind::U3:
      return u3_matrix(p0, p1, p2);
    default:
      break;
  }
  RQSIM_CHECK(false, "gate_matrix1: unhandled gate kind");
  return m;
}

Mat4 gate_matrix2(const Gate& gate) {
  RQSIM_CHECK(gate.arity() == 2, "gate_matrix2: gate is not two-qubit");
  Mat4 m;
  switch (gate.kind) {
    case GateKind::CX:
      m.at(0, 0) = 1.0;
      m.at(1, 1) = 1.0;
      m.at(2, 3) = 1.0;
      m.at(3, 2) = 1.0;
      return m;
    case GateKind::CZ:
      m = Mat4::identity();
      m.at(3, 3) = -1.0;
      return m;
    case GateKind::CP:
      m = Mat4::identity();
      m.at(3, 3) = std::exp(cplx(0.0, gate.params[0]));
      return m;
    case GateKind::SWAP:
      m.at(0, 0) = 1.0;
      m.at(1, 2) = 1.0;
      m.at(2, 1) = 1.0;
      m.at(3, 3) = 1.0;
      return m;
    default:
      break;
  }
  RQSIM_CHECK(false, "gate_matrix2: unhandled gate kind");
  return m;
}

bool gate_is_diagonal(GateKind kind) {
  switch (kind) {
    case GateKind::Z:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::CZ:
    case GateKind::CP:
      return true;
    default:
      return false;
  }
}

}  // namespace rqsim
