#include "circuit/gate.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace rqsim {

int gate_arity(GateKind kind) {
  switch (kind) {
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::H:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::U2:
    case GateKind::U3:
      return 1;
    case GateKind::CX:
    case GateKind::CZ:
    case GateKind::CP:
    case GateKind::SWAP:
      return 2;
    case GateKind::CCX:
      return 3;
  }
  return 0;
}

int gate_num_params(GateKind kind) {
  switch (kind) {
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::CP:
      return 1;
    case GateKind::U2:
      return 2;
    case GateKind::U3:
      return 3;
    default:
      return 0;
  }
}

std::string gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::X:
      return "x";
    case GateKind::Y:
      return "y";
    case GateKind::Z:
      return "z";
    case GateKind::H:
      return "h";
    case GateKind::S:
      return "s";
    case GateKind::Sdg:
      return "sdg";
    case GateKind::T:
      return "t";
    case GateKind::Tdg:
      return "tdg";
    case GateKind::RX:
      return "rx";
    case GateKind::RY:
      return "ry";
    case GateKind::RZ:
      return "rz";
    case GateKind::P:
      return "p";
    case GateKind::U2:
      return "u2";
    case GateKind::U3:
      return "u3";
    case GateKind::CX:
      return "cx";
    case GateKind::CZ:
      return "cz";
    case GateKind::CP:
      return "cp";
    case GateKind::SWAP:
      return "swap";
    case GateKind::CCX:
      return "ccx";
  }
  return "?";
}

bool gate_kind_is_clifford(GateKind kind) {
  switch (kind) {
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::H:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::CX:
    case GateKind::CZ:
    case GateKind::SWAP:
      return true;
    default:
      return false;
  }
}

namespace {

// Per-qubit symplectic bit rules; index = x | z<<1. Tables are generated
// once from these rules so the 1q and 2q encodings can't drift apart.
struct BitRule {
  // Applies the gate's conjugation to (xa, za, xb, zb); 1q gates ignore b.
  void (*apply)(unsigned& xa, unsigned& za, unsigned& xb, unsigned& zb);
};

void rule_identity(unsigned&, unsigned&, unsigned&, unsigned&) {}
// H: X ↔ Z (Y stays Y up to sign).
void rule_h(unsigned& xa, unsigned& za, unsigned&, unsigned&) { std::swap(xa, za); }
// S / Sdg: X → ±Y, Y → ∓X, Z → Z: the z bit picks up the x bit.
void rule_s(unsigned& xa, unsigned& za, unsigned&, unsigned&) { za ^= xa; }
// CX (control a, target b): X_a → X_a X_b, Z_b → Z_a Z_b.
void rule_cx(unsigned& xa, unsigned& za, unsigned& xb, unsigned& zb) {
  xb ^= xa;
  za ^= zb;
}
// CZ: X_a → X_a Z_b, X_b → Z_a X_b.
void rule_cz(unsigned& xa, unsigned& za, unsigned& xb, unsigned& zb) {
  zb ^= xa;
  za ^= xb;
}
void rule_swap(unsigned& xa, unsigned& za, unsigned& xb, unsigned& zb) {
  std::swap(xa, xb);
  std::swap(za, zb);
}

PauliConjugation build_conjugation(const BitRule& rule) {
  PauliConjugation table;
  for (unsigned in = 0; in < 16; ++in) {
    unsigned xa = in & 1u, za = (in >> 1) & 1u;
    unsigned xb = (in >> 2) & 1u, zb = (in >> 3) & 1u;
    rule.apply(xa, za, xb, zb);
    const unsigned out = xa | za << 1 | xb << 2 | zb << 3;
    table.two[in] = static_cast<std::uint8_t>(out);
    if (in < 4) {
      table.one[in] = static_cast<std::uint8_t>(out & 3u);
    }
  }
  return table;
}

}  // namespace

const PauliConjugation& pauli_conjugation_table(GateKind kind) {
  static const PauliConjugation kIdentity = build_conjugation({rule_identity});
  static const PauliConjugation kH = build_conjugation({rule_h});
  static const PauliConjugation kS = build_conjugation({rule_s});
  static const PauliConjugation kCx = build_conjugation({rule_cx});
  static const PauliConjugation kCz = build_conjugation({rule_cz});
  static const PauliConjugation kSwap = build_conjugation({rule_swap});
  switch (kind) {
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
      return kIdentity;  // Paulis commute with Paulis up to sign
    case GateKind::H:
      return kH;
    case GateKind::S:
    case GateKind::Sdg:
      return kS;  // same bit map; only the dropped sign differs
    case GateKind::CX:
      return kCx;
    case GateKind::CZ:
      return kCz;
    case GateKind::SWAP:
      return kSwap;
    default:
      break;
  }
  RQSIM_CHECK(false, "pauli_conjugation_table: gate kind is not Clifford");
  return kIdentity;
}

namespace {

void cache_clifford(Gate& g) {
  g.clifford = gate_kind_is_clifford(g.kind);
  g.conj = g.clifford ? &pauli_conjugation_table(g.kind) : nullptr;
}

}  // namespace

Gate Gate::make1(GateKind kind, qubit_t q, double p0, double p1, double p2) {
  RQSIM_CHECK(gate_arity(kind) == 1, "Gate::make1: kind is not single-qubit");
  Gate g;
  g.kind = kind;
  g.qubits = {q, 0, 0};
  g.params = {p0, p1, p2};
  cache_clifford(g);
  return g;
}

Gate Gate::make2(GateKind kind, qubit_t a, qubit_t b, double p0) {
  RQSIM_CHECK(gate_arity(kind) == 2, "Gate::make2: kind is not two-qubit");
  RQSIM_CHECK(a != b, "Gate::make2: operands must differ");
  Gate g;
  g.kind = kind;
  g.qubits = {a, b, 0};
  g.params = {p0, 0.0, 0.0};
  cache_clifford(g);
  return g;
}

Gate Gate::make3(GateKind kind, qubit_t a, qubit_t b, qubit_t c) {
  RQSIM_CHECK(gate_arity(kind) == 3, "Gate::make3: kind is not three-qubit");
  RQSIM_CHECK(a != b && b != c && a != c, "Gate::make3: operands must differ");
  Gate g;
  g.kind = kind;
  g.qubits = {a, b, c};
  cache_clifford(g);
  return g;
}

Gate gate_inverse(const Gate& gate) {
  Gate inv = gate;
  switch (gate.kind) {
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::H:
    case GateKind::CX:
    case GateKind::CZ:
    case GateKind::SWAP:
    case GateKind::CCX:
      return inv;  // self-inverse
    case GateKind::S:
      inv.kind = GateKind::Sdg;
      break;
    case GateKind::Sdg:
      inv.kind = GateKind::S;
      break;
    case GateKind::T:
      inv.kind = GateKind::Tdg;
      break;
    case GateKind::Tdg:
      inv.kind = GateKind::T;
      break;
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::CP:
      inv.params[0] = -gate.params[0];
      break;
    case GateKind::U2:
      // u2(φ,λ) = u3(π/2, φ, λ); u3(θ,φ,λ)† = u3(-θ, -λ, -φ).
      inv.kind = GateKind::U3;
      inv.params = {-kPi / 2.0, -gate.params[1], -gate.params[0]};
      break;
    case GateKind::U3:
      inv.params = {-gate.params[0], -gate.params[2], -gate.params[1]};
      break;
  }
  cache_clifford(inv);
  return inv;
}

bool gate_fp_exact_invertible(GateKind kind) {
  switch (kind) {
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::CX:
    case GateKind::CZ:
    case GateKind::SWAP:
    case GateKind::CCX:
      return true;
    default:
      return false;
  }
}

namespace {

Mat2 u3_matrix(double theta, double phi, double lambda) {
  Mat2 m;
  const double ct = std::cos(theta / 2.0);
  const double st = std::sin(theta / 2.0);
  m.at(0, 0) = ct;
  m.at(0, 1) = -std::exp(cplx(0.0, lambda)) * st;
  m.at(1, 0) = std::exp(cplx(0.0, phi)) * st;
  m.at(1, 1) = std::exp(cplx(0.0, phi + lambda)) * ct;
  return m;
}

}  // namespace

Mat2 gate_matrix1(const Gate& gate) {
  RQSIM_CHECK(gate.arity() == 1, "gate_matrix1: gate is not single-qubit");
  const double p0 = gate.params[0];
  const double p1 = gate.params[1];
  const double p2 = gate.params[2];
  Mat2 m;
  switch (gate.kind) {
    case GateKind::X:
      m.at(0, 1) = 1.0;
      m.at(1, 0) = 1.0;
      return m;
    case GateKind::Y:
      m.at(0, 1) = cplx(0.0, -1.0);
      m.at(1, 0) = cplx(0.0, 1.0);
      return m;
    case GateKind::Z:
      m.at(0, 0) = 1.0;
      m.at(1, 1) = -1.0;
      return m;
    case GateKind::H: {
      const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
      m.at(0, 0) = inv_sqrt2;
      m.at(0, 1) = inv_sqrt2;
      m.at(1, 0) = inv_sqrt2;
      m.at(1, 1) = -inv_sqrt2;
      return m;
    }
    case GateKind::S:
      m.at(0, 0) = 1.0;
      m.at(1, 1) = cplx(0.0, 1.0);
      return m;
    case GateKind::Sdg:
      m.at(0, 0) = 1.0;
      m.at(1, 1) = cplx(0.0, -1.0);
      return m;
    case GateKind::T:
      m.at(0, 0) = 1.0;
      m.at(1, 1) = std::exp(cplx(0.0, kPi / 4.0));
      return m;
    case GateKind::Tdg:
      m.at(0, 0) = 1.0;
      m.at(1, 1) = std::exp(cplx(0.0, -kPi / 4.0));
      return m;
    case GateKind::RX:
      return u3_matrix(p0, -kPi / 2.0, kPi / 2.0);
    case GateKind::RY:
      return u3_matrix(p0, 0.0, 0.0);
    case GateKind::RZ:
      // rz(λ) = diag(e^{-iλ/2}, e^{iλ/2}).
      m.at(0, 0) = std::exp(cplx(0.0, -p0 / 2.0));
      m.at(1, 1) = std::exp(cplx(0.0, p0 / 2.0));
      return m;
    case GateKind::P:
      m.at(0, 0) = 1.0;
      m.at(1, 1) = std::exp(cplx(0.0, p0));
      return m;
    case GateKind::U2:
      return u3_matrix(kPi / 2.0, p0, p1);
    case GateKind::U3:
      return u3_matrix(p0, p1, p2);
    default:
      break;
  }
  RQSIM_CHECK(false, "gate_matrix1: unhandled gate kind");
  return m;
}

Mat4 gate_matrix2(const Gate& gate) {
  RQSIM_CHECK(gate.arity() == 2, "gate_matrix2: gate is not two-qubit");
  Mat4 m;
  switch (gate.kind) {
    case GateKind::CX:
      m.at(0, 0) = 1.0;
      m.at(1, 1) = 1.0;
      m.at(2, 3) = 1.0;
      m.at(3, 2) = 1.0;
      return m;
    case GateKind::CZ:
      m = Mat4::identity();
      m.at(3, 3) = -1.0;
      return m;
    case GateKind::CP:
      m = Mat4::identity();
      m.at(3, 3) = std::exp(cplx(0.0, gate.params[0]));
      return m;
    case GateKind::SWAP:
      m.at(0, 0) = 1.0;
      m.at(1, 2) = 1.0;
      m.at(2, 1) = 1.0;
      m.at(3, 3) = 1.0;
      return m;
    default:
      break;
  }
  RQSIM_CHECK(false, "gate_matrix2: unhandled gate kind");
  return m;
}

bool gate_is_diagonal(GateKind kind) {
  switch (kind) {
    case GateKind::Z:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::CZ:
    case GateKind::CP:
      return true;
    default:
      return false;
  }
}

}  // namespace rqsim
