#include "circuit/circuit.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rqsim {

Circuit::Circuit(unsigned num_qubits, std::string name)
    : num_qubits_(num_qubits), name_(std::move(name)) {
  RQSIM_CHECK(num_qubits >= 1 && num_qubits <= 63,
              "Circuit: num_qubits must be in [1, 63]");
}

void Circuit::add(const Gate& gate) {
  const int arity = gate.arity();
  for (int i = 0; i < arity; ++i) {
    RQSIM_CHECK(gate.qubits[static_cast<std::size_t>(i)] < num_qubits_,
                "Circuit::add: operand out of range for " + gate_name(gate.kind));
  }
  gates_.push_back(gate);
  // Normalize the cached Clifford classification regardless of how the
  // caller built the Gate (the QASM front end fills fields directly).
  Gate& stored = gates_.back();
  stored.clifford = gate_kind_is_clifford(stored.kind);
  stored.conj = stored.clifford ? &pauli_conjugation_table(stored.kind) : nullptr;
}

std::size_t Circuit::measure(qubit_t q) {
  RQSIM_CHECK(q < num_qubits_, "Circuit::measure: qubit out of range");
  RQSIM_CHECK(std::find(measured_.begin(), measured_.end(), q) == measured_.end(),
              "Circuit::measure: qubit already measured");
  measured_.push_back(q);
  return measured_.size() - 1;
}

void Circuit::measure_all() {
  for (qubit_t q = 0; q < num_qubits_; ++q) {
    measure(q);
  }
}

std::size_t Circuit::count_single_qubit_gates() const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [](const Gate& g) { return g.arity() == 1; }));
}

std::size_t Circuit::count_kind(GateKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [kind](const Gate& g) { return g.kind == kind; }));
}

std::size_t Circuit::count_multi_qubit_gates() const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [](const Gate& g) { return g.arity() >= 2; }));
}

void Circuit::validate() const {
  for (const Gate& g : gates_) {
    const int arity = g.arity();
    for (int i = 0; i < arity; ++i) {
      RQSIM_CHECK(g.qubits[static_cast<std::size_t>(i)] < num_qubits_,
                  "Circuit::validate: operand out of range");
    }
    for (int i = 0; i < arity; ++i) {
      for (int j = i + 1; j < arity; ++j) {
        RQSIM_CHECK(g.qubits[static_cast<std::size_t>(i)] !=
                        g.qubits[static_cast<std::size_t>(j)],
                    "Circuit::validate: duplicate operand");
      }
    }
  }
  std::vector<qubit_t> sorted = measured_;
  std::sort(sorted.begin(), sorted.end());
  RQSIM_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
              "Circuit::validate: qubit measured twice");
  for (qubit_t q : measured_) {
    RQSIM_CHECK(q < num_qubits_, "Circuit::validate: measured qubit out of range");
  }
}

}  // namespace rqsim
