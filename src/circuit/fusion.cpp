#include "circuit/fusion.hpp"

#include <algorithm>

#include "circuit/gate.hpp"
#include "common/error.hpp"

namespace rqsim {

namespace {

/// Re-express a 4x4 operator given for operand order (h, l) in the swapped
/// order (l, h): conjugate by the permutation exchanging |01⟩ and |10⟩.
Mat4 swap_operand_order(const Mat4& m) {
  static constexpr std::size_t perm[4] = {0, 2, 1, 3};
  Mat4 out;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      out.at(r, c) = m.at(perm[r], perm[c]);
    }
  }
  return out;
}

class FusionBuilder {
 public:
  FusionBuilder(unsigned num_qubits, const FusionOptions& options)
      : options_(options),
        pending_(num_qubits, Mat2::identity()),
        pending_count_(num_qubits, 0),
        last_op_(num_qubits, -1) {}

  void add(const Gate& gate) {
    ++program_.source_gate_count;
    switch (gate.arity()) {
      case 1:
        add1(gate);
        return;
      case 2:
        add2(gate);
        return;
      default:
        flush(gate.qubits[0]);
        flush(gate.qubits[1]);
        flush(gate.qubits[2]);
        emit_gate(gate);
        return;
    }
  }

  FusedProgram finish() {
    for (qubit_t q = 0; q < pending_.size(); ++q) {
      flush(q);
    }
    return std::move(program_);
  }

 private:
  void add1(const Gate& gate) {
    const qubit_t q = gate.qubits[0];
    pending_[q] = gate_matrix1(gate) * pending_[q];
    ++pending_count_[q];
  }

  void add2(const Gate& gate) {
    const qubit_t a = gate.qubits[0];  // high-order operand of gate_matrix2
    const qubit_t b = gate.qubits[1];
    if (options_.lift_two_qubit) {
      const int o = last_op_[a];
      if (o >= 0 && o == last_op_[b] && program_.ops[o].kind == FusedOp::Kind::kMat4) {
        // Same pair as the still-open Mat4: extend it in place.
        extend_mat4(program_.ops[o], gate);
        return;
      }
      if (pending_count_[a] > 0 && pending_count_[b] > 0) {
        // Both operands carry a pending matrix: one Mat4 sweep is cheaper
        // than two Mat2 sweeps plus the specialized two-qubit sweep.
        FusedOp op;
        op.kind = FusedOp::Kind::kMat4;
        op.q_hi = a;
        op.q_lo = b;
        op.m4 = gate_matrix2(gate) * kron(pending_[a], pending_[b]);
        op.fused_gates = 1 + pending_count_[a] + pending_count_[b];
        clear_pending(a);
        clear_pending(b);
        push(op, a, b);
        return;
      }
    }
    flush(a);
    flush(b);
    emit_gate(gate);
  }

  /// Fold pendings on the pair plus one more two-qubit gate into an
  /// existing Mat4 op that is still the last op on both of its qubits.
  void extend_mat4(FusedOp& op, const Gate& gate) {
    if (pending_count_[op.q_hi] > 0 || pending_count_[op.q_lo] > 0) {
      op.m4 = kron(pending_[op.q_hi], pending_[op.q_lo]) * op.m4;
      op.fused_gates += pending_count_[op.q_hi] + pending_count_[op.q_lo];
      clear_pending(op.q_hi);
      clear_pending(op.q_lo);
    }
    Mat4 m = gate_matrix2(gate);
    if (gate.qubits[0] != op.q_hi) {
      m = swap_operand_order(m);
    }
    op.m4 = m * op.m4;
    op.fused_gates += 1;
  }

  /// Emit (or fold backward) the pending single-qubit matrix of `q`.
  void flush(qubit_t q) {
    if (pending_count_[q] == 0) {
      return;
    }
    const int o = last_op_[q];
    if (o >= 0 && program_.ops[o].kind == FusedOp::Kind::kMat4) {
      // No later op touches q (last_op invariant), so the pending matrix
      // commutes back to the Mat4 and folds into it.
      FusedOp& op = program_.ops[o];
      if (op.q_hi == q) {
        op.m4 = kron(pending_[q], Mat2::identity()) * op.m4;
      } else {
        op.m4 = kron(Mat2::identity(), pending_[q]) * op.m4;
      }
      op.fused_gates += pending_count_[q];
      clear_pending(q);
      return;
    }
    FusedOp op;
    op.kind = FusedOp::Kind::kMat2;
    op.q_lo = q;
    op.m2 = pending_[q];
    op.fused_gates = pending_count_[q];
    clear_pending(q);
    last_op_[q] = static_cast<int>(program_.ops.size());
    program_.ops.push_back(op);
  }

  void emit_gate(const Gate& gate) {
    FusedOp op;
    op.kind = FusedOp::Kind::kGate;
    op.gate = gate;
    const int idx = static_cast<int>(program_.ops.size());
    for (int i = 0; i < gate.arity(); ++i) {
      last_op_[gate.qubits[i]] = idx;
    }
    program_.ops.push_back(op);
  }

  void push(const FusedOp& op, qubit_t a, qubit_t b) {
    const int idx = static_cast<int>(program_.ops.size());
    last_op_[a] = idx;
    last_op_[b] = idx;
    program_.ops.push_back(op);
  }

  void clear_pending(qubit_t q) {
    pending_[q] = Mat2::identity();
    pending_count_[q] = 0;
  }

  const FusionOptions& options_;
  FusedProgram program_;
  std::vector<Mat2> pending_;
  std::vector<std::uint32_t> pending_count_;
  std::vector<int> last_op_;
};

unsigned max_operand(const std::vector<Gate>& gates) {
  unsigned n = 0;
  for (const Gate& g : gates) {
    for (int i = 0; i < g.arity(); ++i) {
      n = std::max(n, g.qubits[i] + 1);
    }
  }
  return n;
}

}  // namespace

FusedProgram fuse_gate_sequence(const std::vector<Gate>& gates,
                                const FusionOptions& options) {
  FusionBuilder builder(max_operand(gates), options);
  for (const Gate& g : gates) {
    builder.add(g);
  }
  return builder.finish();
}

FusedProgram fuse_layer_range(const Circuit& circuit, const Layering& layering,
                              layer_index_t from, layer_index_t to,
                              const FusionOptions& options) {
  RQSIM_CHECK(from <= to && to <= layering.num_layers(),
              "fuse_layer_range: bad layer range");
  FusionBuilder builder(circuit.num_qubits(), options);
  for (layer_index_t l = from; l < to; ++l) {
    for (gate_index_t g : layering.layers[l]) {
      builder.add(circuit.gates()[g]);
    }
  }
  return builder.finish();
}

FusionCache::FusionCache(const Circuit& circuit, const Layering& layering,
                         FusionOptions options)
    : circuit_(circuit), layering_(layering), options_(options) {}

const FusedProgram& FusionCache::segment(layer_index_t from, layer_index_t to) {
  const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
  auto it = segments_.find(key);
  if (it == segments_.end()) {
    it = segments_.emplace(key, fuse_layer_range(circuit_, layering_, from, to, options_))
             .first;
  }
  return it->second;
}

}  // namespace rqsim
