#pragma once

// Stitch per-process Chrome-trace documents (the `trace collect` verb's
// output) into one viewable trace: each process becomes its own pid with a
// process_name metadata record (one lane group per backend in Perfetto),
// and every event timestamp is shifted from "µs since that process's trace
// epoch" onto a shared timeline using the per-process epochs the router
// already expressed in its own clock domain (ping-measured skew,
// router/router.cpp handle_trace). Pure Json-to-Json data transformation —
// usable by the CLI, tests, and offline tooling alike.

#include <string>
#include <vector>

#include "service/json.hpp"

namespace rqsim {

/// One process's contribution to a merged trace.
struct TraceProcessDoc {
  /// Process lane name ("router", "backend tcp:127.0.0.1:7101", ...).
  std::string name;

  /// Chrome-trace document ({"traceEvents":[...]}), timestamps relative to
  /// this process's trace epoch.
  Json trace;

  /// This process's trace epoch on the *shared* clock (the collector's),
  /// microseconds. Differences between epochs place the processes
  /// relative to each other; the earliest epoch becomes merged time 0.
  double epoch_us = 0.0;
};

/// Merge per-process documents into one Chrome-trace document. Processes
/// are assigned pids 1..N in input order; per-process process_name
/// metadata is regenerated from `name` (any incoming process_name records
/// are dropped), other metadata (thread_name, thread_sort_index) is kept,
/// and non-metadata event timestamps are shifted by the process's epoch
/// offset from the earliest epoch.
Json merge_traces(const std::vector<TraceProcessDoc>& docs);

/// Convenience: build the doc list from a router `trace collect` response
/// ({"processes":[{"name":...,"trace":...,"epoch_us":...},...]}) and merge.
Json merge_collect_response(const Json& collect_response);

}  // namespace rqsim
