// Plain-text table formatting shared by the benchmark harnesses, so every
// figure/table reproduction prints aligned, copy-pasteable rows.
#pragma once

#include <string>
#include <vector>

namespace rqsim {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with column alignment and a separator under the header.
  std::string render() const;

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rqsim
