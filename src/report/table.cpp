#include "report/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace rqsim {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  RQSIM_CHECK(row.size() == header_.size(), "TextTable: row width mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

}  // namespace rqsim
