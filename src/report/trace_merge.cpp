#include "report/trace_merge.hpp"

namespace rqsim {

Json merge_traces(const std::vector<TraceProcessDoc>& docs) {
  double origin_us = 0.0;
  bool have_origin = false;
  for (const TraceProcessDoc& doc : docs) {
    if (!have_origin || doc.epoch_us < origin_us) {
      origin_us = doc.epoch_us;
      have_origin = true;
    }
  }

  Json events = Json::array();
  std::uint64_t pid = 0;
  for (const TraceProcessDoc& doc : docs) {
    ++pid;
    {
      Json meta = Json::object();
      meta.set("ph", Json(std::string("M")));
      meta.set("pid", Json(pid));
      meta.set("tid", Json(std::uint64_t{0}));
      meta.set("name", Json(std::string("process_name")));
      Json args = Json::object();
      args.set("name", Json(doc.name));
      meta.set("args", std::move(args));
      events.push_back(std::move(meta));
    }
    // Keep backends sorted in input order when Perfetto sorts by pid.
    {
      Json meta = Json::object();
      meta.set("ph", Json(std::string("M")));
      meta.set("pid", Json(pid));
      meta.set("tid", Json(std::uint64_t{0}));
      meta.set("name", Json(std::string("process_sort_index")));
      Json args = Json::object();
      args.set("sort_index", Json(pid));
      meta.set("args", std::move(args));
      events.push_back(std::move(meta));
    }

    if (!doc.trace.is_object() || !doc.trace.has("traceEvents") ||
        !doc.trace.at("traceEvents").is_array()) {
      continue;
    }
    const double shift_us = doc.epoch_us - origin_us;
    for (const Json& event : doc.trace.at("traceEvents").as_array()) {
      if (!event.is_object()) {
        continue;
      }
      const std::string phase = event.get_string("ph", "");
      if (phase == "M" && event.get_string("name", "") == "process_name") {
        continue;  // regenerated above from doc.name
      }
      Json copy = event;
      copy.set("pid", Json(pid));
      if (phase != "M") {
        copy.set("ts", Json(event.get_number("ts", 0.0) + shift_us));
      }
      events.push_back(std::move(copy));
    }
  }

  Json merged = Json::object();
  merged.set("displayTimeUnit", Json(std::string("ms")));
  merged.set("traceEvents", std::move(events));
  return merged;
}

Json merge_collect_response(const Json& collect_response) {
  std::vector<TraceProcessDoc> docs;
  if (collect_response.is_object() && collect_response.has("processes") &&
      collect_response.at("processes").is_array()) {
    for (const Json& process : collect_response.at("processes").as_array()) {
      if (!process.is_object()) {
        continue;
      }
      TraceProcessDoc doc;
      doc.name = process.get_string("name", "process");
      if (process.has("trace")) {
        doc.trace = process.at("trace");
      }
      doc.epoch_us = process.get_number("epoch_us", 0.0);
      docs.push_back(std::move(doc));
    }
  }
  return merge_traces(docs);
}

}  // namespace rqsim
