#include "report/prom.hpp"

#include <cmath>
#include <cstdio>

namespace rqsim {

namespace {

/// Metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names use dots
/// ("service.job_exec_us"); dots and anything else invalid become '_'.
std::string sanitize_metric(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    out += (alpha || (digit && i > 0)) ? c : '_';
  }
  return out;
}

/// Label values: backslash, double-quote and newline are escaped.
std::string escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Integral values print without an exponent or trailing zeros so counter
/// samples stay exact; everything else gets shortest-round-trip-ish %.10g.
std::string format_number(double value) {
  char buf[40];
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof buf, "%.10g", value);
  }
  return std::string(buf);
}

void emit_header(std::string& out, const std::string& name,
                 const std::string& type, const std::string& help) {
  out += "# HELP " + name + " " + help + "\n";
  out += "# TYPE " + name + " " + type + "\n";
}

/// Upper bound of log2 bucket i as a Prometheus `le` value: bucket 0 holds
/// exactly the zeros (le=0); bucket i>0 holds [2^(i-1), 2^i), whose
/// integer samples are all <= 2^i - 1.
double bucket_le(std::size_t i) {
  return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i)) - 1.0;
}

/// Cumulative-bucket rendering of a {count, sum, buckets} histogram json.
void emit_histogram(std::string& out, const std::string& name,
                    const std::string& labels, const Json& hist) {
  std::vector<std::uint64_t> buckets;
  if (hist.has("buckets") && hist.at("buckets").is_array()) {
    for (const Json& b : hist.at("buckets").as_array()) {
      buckets.push_back(b.as_u64());
    }
  }
  while (!buckets.empty() && buckets.back() == 0) {
    buckets.pop_back();
  }
  const std::string label_prefix = labels.empty() ? "{" : "{" + labels + ",";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    out += name + "_bucket" + label_prefix + "le=\"" +
           format_number(bucket_le(i)) + "\"} " + std::to_string(cumulative) +
           "\n";
  }
  out += name + "_bucket" + label_prefix + "le=\"+Inf\"} " +
         std::to_string(hist.get_u64("count", 0)) + "\n";
  const std::string suffix = labels.empty() ? " " : "{" + labels + "} ";
  out += name + "_sum" + suffix + std::to_string(hist.get_u64("sum", 0)) + "\n";
  out += name + "_count" + suffix + std::to_string(hist.get_u64("count", 0)) +
         "\n";
}

/// Summary rendering (quantile labels) of a latency histogram json that
/// carries p50/p90/p99 snapshots.
void emit_summary_samples(std::string& out, const std::string& name,
                          const std::string& tenant, const Json& hist) {
  const std::string tenant_label = "tenant=\"" + escape_label(tenant) + "\"";
  constexpr const char* kQuantiles[][2] = {
      {"0.5", "p50"}, {"0.9", "p90"}, {"0.99", "p99"}};
  for (const auto& [quantile, field] : kQuantiles) {
    out += name + "{" + tenant_label + ",quantile=\"" + quantile + "\"} " +
           format_number(hist.get_number(field, 0.0)) + "\n";
  }
  out += name + "_sum{" + tenant_label + "} " +
         std::to_string(hist.get_u64("sum", 0)) + "\n";
  out += name + "_count{" + tenant_label + "} " +
         std::to_string(hist.get_u64("count", 0)) + "\n";
}

}  // namespace

std::string stats_to_prometheus(const Json& stats_response) {
  std::string out;
  out.reserve(1u << 14);

  if (stats_response.has("build")) {
    const Json& build = stats_response.at("build");
    emit_header(out, "rqsim_build_info", "gauge",
                "Build identity; constant 1 with a version label.");
    out += "rqsim_build_info{version=\"" +
           escape_label(build.get_string("version", "unknown")) + "\"} 1\n";
    emit_header(out, "rqsim_uptime_ms", "gauge",
                "Milliseconds since this process's service started.");
    out += "rqsim_uptime_ms " +
           format_number(build.get_number("uptime_ms", 0.0)) + "\n";
  }

  if (stats_response.has("stats") && stats_response.at("stats").is_object()) {
    for (const auto& [field, value] : stats_response.at("stats").as_object()) {
      if (!value.is_number()) {
        continue;
      }
      const std::string name = "rqsim_service_" + sanitize_metric(field);
      emit_header(out, name, "gauge", "Service counter '" + field + "'.");
      out += name + " " + format_number(value.as_number()) + "\n";
    }
  }

  if (stats_response.has("telemetry") &&
      stats_response.at("telemetry").is_object()) {
    for (const auto& [metric, value] :
         stats_response.at("telemetry").as_object()) {
      const std::string name = "rqsim_" + sanitize_metric(metric);
      if (value.is_number()) {
        emit_header(out, name, "counter", "Registry counter '" + metric + "'.");
        out += name + " " + format_number(value.as_number()) + "\n";
      } else if (value.is_object() && value.has("max")) {
        emit_header(out, name, "gauge",
                    "Registry max-gauge '" + metric + "' (max ever seen).");
        out += name + " " + format_number(value.at("max").as_number()) + "\n";
      } else if (value.is_object() && value.has("buckets")) {
        emit_header(out, name, "histogram",
                    "Registry log2 histogram '" + metric + "'.");
        emit_histogram(out, name, "", value);
      }
    }
  }

  if (stats_response.has("slo") && stats_response.at("slo").is_object()) {
    const Json& slo = stats_response.at("slo");
    constexpr const char* kKinds[] = {"queue_us", "exec_us", "e2e_us"};
    for (const char* kind : kKinds) {
      const std::string name = "rqsim_slo_" + std::string(kind);
      emit_header(out, name, "summary",
                  "Per-tenant " + std::string(kind) +
                      " latency quantiles; tenant \"_total\" aggregates "
                      "all tenants.");
      if (slo.has("tenants") && slo.at("tenants").is_object()) {
        for (const auto& [tenant, tenant_slo] : slo.at("tenants").as_object()) {
          if (tenant_slo.is_object() && tenant_slo.has(kind)) {
            emit_summary_samples(out, name, tenant, tenant_slo.at(kind));
          }
        }
      }
      if (slo.has("total") && slo.at("total").is_object() &&
          slo.at("total").has(kind)) {
        emit_summary_samples(out, name, "_total", slo.at("total").at(kind));
      }
    }

    emit_header(out, "rqsim_slo_exemplar_e2e_us", "gauge",
                "Slowest jobs per tenant: end-to-end latency with job and "
                "trace_id labels (join with the distributed trace).");
    const auto emit_exemplars = [&out](const std::string& tenant,
                                       const Json& tenant_slo) {
      if (!tenant_slo.is_object() || !tenant_slo.has("exemplars") ||
          !tenant_slo.at("exemplars").is_array()) {
        return;
      }
      for (const Json& ex : tenant_slo.at("exemplars").as_array()) {
        if (!ex.is_object()) {
          continue;
        }
        out += "rqsim_slo_exemplar_e2e_us{tenant=\"" + escape_label(tenant) +
               "\",job=\"" + std::to_string(ex.get_u64("job", 0)) +
               "\",trace_id=\"" + escape_label(ex.get_string("trace_id", "")) +
               "\"} " + std::to_string(ex.get_u64("e2e_us", 0)) + "\n";
      }
    };
    if (slo.has("tenants") && slo.at("tenants").is_object()) {
      for (const auto& [tenant, tenant_slo] : slo.at("tenants").as_object()) {
        emit_exemplars(tenant, tenant_slo);
      }
    }
    if (slo.has("total")) {
      emit_exemplars("_total", slo.at("total"));
    }
  }

  if (stats_response.has("fleet") && stats_response.at("fleet").is_object()) {
    const Json& fleet = stats_response.at("fleet");
    if (fleet.has("backends") && fleet.at("backends").is_array()) {
      emit_header(out, "rqsim_backend_up", "gauge",
                  "1 when the backend answered the stats fan-out.");
      emit_header(out, "rqsim_backend_queued_now", "gauge",
                  "Jobs queued on the backend right now.");
      emit_header(out, "rqsim_backend_inflight", "gauge",
                  "Router-tracked jobs in flight on the backend.");
      for (const Json& backend : fleet.at("backends").as_array()) {
        if (!backend.is_object()) {
          continue;
        }
        const std::string label =
            "{backend=\"" + escape_label(backend.get_string("endpoint", "")) +
            "\"} ";
        out += "rqsim_backend_up" + label +
               (backend.get_bool("reachable", false) ? "1" : "0") + "\n";
        out += "rqsim_backend_queued_now" + label +
               std::to_string(backend.get_u64("queued_now", 0)) + "\n";
        out += "rqsim_backend_inflight" + label +
               std::to_string(backend.get_u64("inflight", 0)) + "\n";
      }
    }
    if (fleet.has("tenants") && fleet.at("tenants").is_object()) {
      emit_header(out, "rqsim_tenant_inflight", "gauge",
                  "Fair-share occupancy: jobs in flight per tenant.");
      for (const auto& [tenant, entry] : fleet.at("tenants").as_object()) {
        out += "rqsim_tenant_inflight{tenant=\"" + escape_label(tenant) +
               "\"} " + std::to_string(entry.get_u64("inflight", 0)) + "\n";
      }
    }
  }

  return out;
}

}  // namespace rqsim
