#pragma once

// Prometheus text-format exposition of a `stats` response (single service
// or router fleet view). Renders build info, service counters, every
// registry metric (log2 histograms as cumulative `_bucket{le=...}` series),
// and the per-tenant SLO layer as summaries with quantile labels plus
// slow-job exemplar gauges carrying trace ids — everything a scraper needs
// to alert on tail latency and jump to the offending trace. Pure JSON-to-
// text; the CLI's `stats --prom` is a thin wrapper.

#include <string>

#include "service/json.hpp"

namespace rqsim {

/// Render a `stats` response as Prometheus text exposition format
/// (version 0.0.4: `# HELP` / `# TYPE` comments, one sample per line).
std::string stats_to_prometheus(const Json& stats_response);

}  // namespace rqsim
