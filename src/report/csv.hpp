// CSV emission for benchmark results, so figure data can be re-plotted
// without scraping the text tables.
#pragma once

#include <string>
#include <vector>

namespace rqsim {

/// RFC-4180-style escaping of one field.
std::string csv_escape(const std::string& field);

/// Render header + rows as CSV text.
std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows);

/// Write CSV to a file (throws rqsim::Error on I/O failure).
void write_csv_file(const std::string& path, const std::vector<std::string>& header,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace rqsim
