#include "report/csv.hpp"

#include <fstream>

#include "common/error.hpp"

namespace rqsim {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += csv_escape(row[i]);
    }
    out += '\n';
  };
  emit(header);
  for (const auto& row : rows) {
    RQSIM_CHECK(row.size() == header.size(), "to_csv: row width mismatch");
    emit(row);
  }
  return out;
}

void write_csv_file(const std::string& path, const std::vector<std::string>& header,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream file(path);
  RQSIM_CHECK(file.good(), "write_csv_file: cannot open " + path);
  file << to_csv(header, rows);
  RQSIM_CHECK(file.good(), "write_csv_file: write failed for " + path);
}

}  // namespace rqsim
