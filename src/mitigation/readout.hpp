// Readout-error mitigation.
//
// The measurement-error model (paper Section III.B) is a classical
// bit-flip channel per measured qubit. That channel is a known, invertible
// linear map on outcome distributions, so its effect can be removed from
// measured histograms in post-processing — the standard NISQ "measurement
// error mitigation". Because the flip matrix is a tensor product, the
// inverse applies bit-by-bit in O(2^m · m) rather than O(4^m).
#pragma once

#include <vector>

#include "sim/measure.hpp"

namespace rqsim {

/// Convert a histogram over m-bit outcomes to a normalized probability
/// vector of size 2^m.
std::vector<double> histogram_to_probabilities(const OutcomeHistogram& histogram,
                                               unsigned num_bits);

/// Invert the per-bit flip channel: flip_rates[k] is bit k's flip
/// probability (must be != 0.5, where the channel loses information).
/// The result may contain small negative entries from sampling noise.
std::vector<double> invert_measurement_flips(std::vector<double> probs,
                                             const std::vector<double>& flip_rates);

/// invert_measurement_flips followed by clipping negatives to zero and
/// renormalizing — the usual estimator actually reported.
std::vector<double> mitigate_readout(const OutcomeHistogram& histogram,
                                     const std::vector<double>& flip_rates);

}  // namespace rqsim
