#include "mitigation/readout.hpp"

#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace rqsim {

std::vector<double> histogram_to_probabilities(const OutcomeHistogram& histogram,
                                               unsigned num_bits) {
  RQSIM_CHECK(num_bits >= 1 && num_bits <= 30, "histogram_to_probabilities: bad width");
  std::vector<double> probs(pow2(num_bits), 0.0);
  std::uint64_t total = 0;
  for (const auto& [outcome, count] : histogram) {
    RQSIM_CHECK(outcome < probs.size(), "histogram_to_probabilities: outcome too wide");
    total += count;
  }
  RQSIM_CHECK(total > 0, "histogram_to_probabilities: empty histogram");
  for (const auto& [outcome, count] : histogram) {
    probs[outcome] = static_cast<double>(count) / static_cast<double>(total);
  }
  return probs;
}

std::vector<double> invert_measurement_flips(std::vector<double> probs,
                                             const std::vector<double>& flip_rates) {
  for (std::size_t bit = 0; bit < flip_rates.size(); ++bit) {
    const double f = flip_rates[bit];
    RQSIM_CHECK(f >= 0.0 && f <= 1.0, "invert_measurement_flips: bad rate");
    RQSIM_CHECK(std::abs(f - 0.5) > 1e-9,
                "invert_measurement_flips: flip rate 0.5 is not invertible");
    if (f == 0.0) {
      continue;
    }
    // Inverse of [[1-f, f], [f, 1-f]] is 1/(1-2f) · [[1-f, -f], [-f, 1-f]].
    const double inv_det = 1.0 / (1.0 - 2.0 * f);
    const std::uint64_t mask = std::uint64_t{1} << bit;
    std::vector<double> next(probs.size(), 0.0);
    for (std::uint64_t i = 0; i < probs.size(); ++i) {
      if (i & mask) {
        continue;
      }
      const double p0 = probs[i];
      const double p1 = probs[i | mask];
      next[i] = inv_det * ((1.0 - f) * p0 - f * p1);
      next[i | mask] = inv_det * ((1.0 - f) * p1 - f * p0);
    }
    probs = std::move(next);
  }
  return probs;
}

std::vector<double> mitigate_readout(const OutcomeHistogram& histogram,
                                     const std::vector<double>& flip_rates) {
  RQSIM_CHECK(!flip_rates.empty() && flip_rates.size() <= 30,
              "mitigate_readout: bad flip rate list");
  std::vector<double> probs = histogram_to_probabilities(
      histogram, static_cast<unsigned>(flip_rates.size()));
  probs = invert_measurement_flips(std::move(probs), flip_rates);
  double total = 0.0;
  for (double& p : probs) {
    if (p < 0.0) {
      p = 0.0;
    }
    total += p;
  }
  RQSIM_CHECK(total > 0.0, "mitigate_readout: degenerate mitigated distribution");
  for (double& p : probs) {
    p /= total;
  }
  return probs;
}

}  // namespace rqsim
