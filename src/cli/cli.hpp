// rqsim command-line interface, as a testable library function.
//
// Subcommands:
//   run        noisy Monte Carlo simulation with real statevectors
//   analyze    accounting-only run (ops, MSV) — any qubit count
//   transpile  decompose + route a circuit onto a device, print QASM
//   suite      print the Table I benchmark suite characteristics
//   help       usage
//
// `run_cli` returns the process exit code and writes to the provided
// streams, so tests drive it without spawning processes. The `rqsim`
// binary is a thin main() around it.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rqsim {

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace rqsim
