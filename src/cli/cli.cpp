#include "cli/cli.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <thread>

#include "bench_circuits/factory.hpp"
#include "bench_circuits/suite.hpp"
#include "circuit/qasm.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "noise/calibration.hpp"
#include "noise/devices.hpp"
#include "report/csv.hpp"
#include "report/prom.hpp"
#include "report/table.hpp"
#include "report/trace_merge.hpp"
#include "router/router.hpp"
#include "sched/enumerate.hpp"
#include "sched/parallel.hpp"
#include "sched/runner.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "sched/order.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "transpile/decompose.hpp"
#include "transpile/transpiler.hpp"
#include "trial/generator.hpp"
#include "verify/plan_verifier.hpp"

namespace rqsim {

namespace {

struct CliOptions {
  std::string circuit_spec;   // --circuit
  std::string qasm_path;      // --qasm
  std::string device = "yorktown";
  std::string device_csv;            // --device-csv
  unsigned device_qubits = 0;     // --qubits (artificial/ideal)
  double device_rate = 1e-3;      // --rate (artificial)
  double noise_scale = 1.0;       // --scale
  std::size_t trials = 1024;      // --trials
  std::uint64_t seed = 1;         // --seed
  std::string mode = "cached";    // --mode baseline|cached|unordered
  std::size_t threads = 1;        // --threads
  std::string parallel_mode = "tree";  // --parallel-mode tree|chunked
  std::size_t max_states = 0;     // --max-states
  std::size_t top = 16;           // --top (histogram rows)
  std::size_t max_errors = 2;     // --max-errors (enumerate)
  std::string csv_path;           // --csv
  std::string trace_out;          // --trace-out (Chrome trace JSON)
  bool no_transpile = false;      // --no-transpile
  bool frames = false;            // --frames (Pauli-frame subtree collapse)

  // Service verbs (serve / submit / status / shutdown).
  std::string socket_path;        // --socket (unix-domain endpoint)
  int port = -1;                  // --port (TCP on 127.0.0.1; 0 = ephemeral)
  std::size_t workers = 2;        // --workers (serve)
  std::size_t queue_cap = 256;    // --queue-cap (serve)
  std::size_t batch = 8;          // --batch (serve: max jobs per merged batch)
  std::uint64_t job = 0;          // --job (status)
  bool wait = false;              // --wait (submit/status: block until done)
  bool analyze = false;           // --analyze (submit: accounting-only job)
  std::string priority = "normal";  // --priority low|normal|high (submit)

  // Fleet router verbs (route / drain / undrain) and submit --tenant.
  std::string tenant;                  // --tenant (submit: fair-share identity)
  std::vector<std::string> backends;   // --backend, repeatable (route; drain target)
  std::size_t capacity = 0;            // --capacity (route: fleet in-flight cap)
  std::size_t quota = 0;               // --quota (route: per-tenant in-flight cap)
  std::vector<std::string> weights;    // --weight tenant=w, repeatable (route)
  int health_interval_ms = 500;        // --health-interval (route)

  // Observability verbs (stats --prom / top / trace-merge).
  bool prom = false;           // --prom (stats: Prometheus text exposition)
  int interval_ms = 1000;      // --interval (top: refresh period, ms)
  std::size_t iterations = 0;  // --iterations (top: frame count, 0 = forever)
};

[[noreturn]] void usage_error(const std::string& message) {
  throw Error("cli: " + message + " (see 'rqsim help')");
}

std::uint64_t parse_u64_flag(const std::string& value, const std::string& flag) {
  // strtoull silently wraps negative input ("-5" becomes 2^64 - 5); reject
  // it before the resulting huge count reaches an allocation.
  if (!value.empty() && (value[0] == '-' || value[0] == '+')) {
    usage_error("value '" + value + "' for " + flag + " must be a plain "
                "non-negative integer");
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || end == value.c_str()) {
    usage_error("bad value '" + value + "' for " + flag);
  }
  return parsed;
}

double parse_double_flag(const std::string& value, const std::string& flag) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    usage_error("bad value '" + value + "' for " + flag);
  }
  return parsed;
}

CliOptions parse_options(const std::vector<std::string>& args, std::size_t begin) {
  CliOptions options;
  for (std::size_t i = begin; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        usage_error("missing value for " + flag);
      }
      return args[++i];
    };
    if (flag == "--circuit") {
      options.circuit_spec = value();
    } else if (flag == "--qasm") {
      options.qasm_path = value();
    } else if (flag == "--device") {
      options.device = value();
    } else if (flag == "--device-csv") {
      options.device_csv = value();
    } else if (flag == "--qubits") {
      options.device_qubits = static_cast<unsigned>(parse_u64_flag(value(), flag));
    } else if (flag == "--rate") {
      options.device_rate = parse_double_flag(value(), flag);
    } else if (flag == "--scale") {
      options.noise_scale = parse_double_flag(value(), flag);
    } else if (flag == "--trials") {
      options.trials = parse_u64_flag(value(), flag);
    } else if (flag == "--seed") {
      options.seed = parse_u64_flag(value(), flag);
    } else if (flag == "--mode") {
      options.mode = value();
    } else if (flag == "--threads") {
      options.threads = parse_u64_flag(value(), flag);
    } else if (flag == "--parallel-mode") {
      options.parallel_mode = value();
    } else if (flag == "--max-states") {
      options.max_states = parse_u64_flag(value(), flag);
    } else if (flag == "--top") {
      options.top = parse_u64_flag(value(), flag);
    } else if (flag == "--max-errors") {
      options.max_errors = parse_u64_flag(value(), flag);
    } else if (flag == "--csv") {
      options.csv_path = value();
    } else if (flag == "--trace-out") {
      options.trace_out = value();
    } else if (flag == "--no-transpile") {
      options.no_transpile = true;
    } else if (flag == "--frames") {
      options.frames = true;
    } else if (flag == "--socket") {
      options.socket_path = value();
    } else if (flag == "--port") {
      options.port = static_cast<int>(parse_u64_flag(value(), flag));
    } else if (flag == "--workers") {
      options.workers = parse_u64_flag(value(), flag);
    } else if (flag == "--queue-cap") {
      options.queue_cap = parse_u64_flag(value(), flag);
    } else if (flag == "--batch") {
      options.batch = parse_u64_flag(value(), flag);
    } else if (flag == "--job") {
      options.job = parse_u64_flag(value(), flag);
    } else if (flag == "--wait") {
      options.wait = true;
    } else if (flag == "--analyze") {
      options.analyze = true;
    } else if (flag == "--priority") {
      options.priority = value();
    } else if (flag == "--tenant") {
      options.tenant = value();
    } else if (flag == "--backend") {
      options.backends.push_back(value());
    } else if (flag == "--capacity") {
      options.capacity = parse_u64_flag(value(), flag);
    } else if (flag == "--quota") {
      options.quota = parse_u64_flag(value(), flag);
    } else if (flag == "--weight") {
      options.weights.push_back(value());
    } else if (flag == "--health-interval") {
      options.health_interval_ms = static_cast<int>(parse_u64_flag(value(), flag));
    } else if (flag == "--prom") {
      options.prom = true;
    } else if (flag == "--interval") {
      options.interval_ms = static_cast<int>(parse_u64_flag(value(), flag));
    } else if (flag == "--iterations") {
      options.iterations = parse_u64_flag(value(), flag);
    } else {
      usage_error("unknown flag '" + flag + "'");
    }
  }
  return options;
}

Circuit load_circuit(const CliOptions& options) {
  if (!options.qasm_path.empty()) {
    std::ifstream file(options.qasm_path);
    if (!file) {
      usage_error("cannot open QASM file '" + options.qasm_path + "'");
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return from_qasm(buffer.str());
  }
  if (!options.circuit_spec.empty()) {
    return make_named_circuit(options.circuit_spec);
  }
  usage_error("one of --circuit or --qasm is required");
}

DeviceModel load_device(const CliOptions& options, unsigned circuit_qubits) {
  DeviceModel dev;
  if (!options.device_csv.empty()) {
    dev = load_calibration_csv(options.device_csv);
  } else if (options.device == "yorktown") {
    dev = yorktown_device();
  } else if (options.device == "yorktown-directed") {
    dev = yorktown_device();
    dev.coupling = CouplingMap::yorktown_directed();
  } else if (options.device == "ideal") {
    dev = ideal_device(options.device_qubits > 0 ? options.device_qubits
                                                 : circuit_qubits);
  } else if (options.device == "artificial") {
    dev = artificial_device(
        options.device_qubits > 0 ? options.device_qubits : circuit_qubits,
        options.device_rate);
  } else {
    usage_error("unknown device '" + options.device +
                "' (yorktown | yorktown-directed | artificial | ideal)");
  }
  if (options.noise_scale != 1.0) {
    dev.noise = dev.noise.scaled(options.noise_scale);
  }
  return dev;
}

ParallelMode parse_parallel_mode(const std::string& mode) {
  if (mode == "tree") {
    return ParallelMode::kTree;
  }
  if (mode == "chunked") {
    return ParallelMode::kChunked;
  }
  usage_error("unknown parallel mode '" + mode + "' (tree | chunked)");
}

ExecutionMode parse_mode(const std::string& mode) {
  if (mode == "baseline") {
    return ExecutionMode::kBaseline;
  }
  if (mode == "cached") {
    return ExecutionMode::kCachedReordered;
  }
  if (mode == "unordered") {
    return ExecutionMode::kCachedUnordered;
  }
  usage_error("unknown mode '" + mode + "' (baseline | cached | unordered)");
}

// Transpile unless disabled; always decompose to 1-/2-qubit gates.
Circuit prepare_circuit(const Circuit& logical, const DeviceModel& dev,
                        const CliOptions& options, std::ostream& out) {
  if (options.no_transpile) {
    return decompose_to_cx_basis(logical);
  }
  RQSIM_CHECK(logical.num_qubits() <= dev.coupling.num_qubits(),
              "cli: circuit has more qubits than the device; use --qubits or "
              "--no-transpile with an ideal/artificial device");
  const TranspileResult compiled = transpile(logical, dev.coupling);
  out << "transpiled onto " << dev.name << ": " << compiled.circuit.num_gates()
      << " gates, " << compiled.swaps_inserted << " SWAPs inserted\n";
  return compiled.circuit;
}

void print_result(const NoisyRunResult& result, std::size_t num_measured,
                  const CliOptions& options, std::ostream& out) {
  out << "ops executed        : " << result.ops << "\n";
  out << "baseline ops        : " << result.baseline_ops << "\n";
  out << "normalized compute  : " << format_double(result.normalized_computation, 4)
      << "  (" << format_double(100.0 * (1.0 - result.normalized_computation), 1)
      << "% saved)\n";
  out << "maintained states   : " << result.max_live_states << "\n";
  out << "mean errors/trial   : " << format_double(result.trial_stats.mean_errors, 3)
      << "\n";
  if (!result.histogram.empty()) {
    // Sort outcomes by count, print the top-k.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> rows(result.histogram.begin(),
                                                              result.histogram.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    out << "top outcomes:\n";
    for (std::size_t i = 0; i < rows.size() && i < options.top; ++i) {
      out << "  |" << to_bitstring(rows[i].first, static_cast<unsigned>(num_measured))
          << ">  " << rows[i].second << "\n";
    }
  }
  if (!options.csv_path.empty()) {
    std::vector<std::vector<std::string>> csv_rows;
    for (const auto& [outcome, count] : result.histogram) {
      csv_rows.push_back({to_bitstring(outcome, static_cast<unsigned>(num_measured)),
                          std::to_string(count)});
    }
    write_csv_file(options.csv_path, {"outcome", "count"}, csv_rows);
    out << "histogram written to " << options.csv_path << "\n";
  }
  if (result.telemetry.measured) {
    const TelemetrySummary& telem = result.telemetry;
    out << "telemetry:\n";
    out << "  measured ops      : " << telem.measured_ops << "\n";
    out << "  cache hit ratio   : " << format_double(telem.prefix_cache_hit_ratio, 4)
        << "  (" << telem.ops_saved_vs_baseline << " ops saved vs baseline)\n";
    out << "  wall time         : " << format_double(telem.wall_ms, 1) << " ms\n";
    out << "  pool reuse/alloc  : " << telem.pool_reuses << " / " << telem.pool_allocs
        << "\n";
    if (telem.steals > 0 || telem.inline_fallbacks > 0) {
      out << "  steals/fallbacks  : " << telem.steals << " / "
          << telem.inline_fallbacks << "\n";
    }
    if (telem.frame_collapsed_trials > 0 || telem.uncomputations > 0) {
      out << "  frame trials      : " << telem.frame_collapsed_trials << "  ("
          << telem.frame_ops << " frame ops)\n";
      out << "  uncomputations    : " << telem.uncomputations << "\n";
    }
  }
}

int cmd_run(const std::vector<std::string>& args, std::ostream& out, bool analyze_only) {
  const CliOptions options = parse_options(args, 2);
  const Circuit logical = load_circuit(options);
  const DeviceModel dev = load_device(options, logical.num_qubits());
  const Circuit circuit = prepare_circuit(logical, dev, options, out);

  if (!options.trace_out.empty()) {
    if (!telemetry::compiled()) {
      usage_error("--trace-out requires a build with RQSIM_TELEMETRY=ON");
    }
    telemetry::set_thread_lane("cli.main");
    telemetry::start_tracing();
  }

  NoisyRunResult result;
  if (analyze_only) {
    NoisyRunConfig config;
    config.num_trials = options.trials;
    config.seed = options.seed;
    config.mode = parse_mode(options.mode);
    config.max_states = options.max_states;
    result = analyze_noisy(circuit, dev.noise, config);
  } else if (options.threads > 1) {
    ParallelRunConfig config;
    config.num_trials = options.trials;
    config.seed = options.seed;
    config.mode = parse_mode(options.mode);
    config.max_states = options.max_states;
    config.num_threads = options.threads;
    config.parallel_mode = parse_parallel_mode(options.parallel_mode);
    config.frame_collapse = options.frames;
    result = run_noisy_parallel(circuit, dev.noise, config);
  } else {
    NoisyRunConfig config;
    config.num_trials = options.trials;
    config.seed = options.seed;
    config.mode = parse_mode(options.mode);
    config.max_states = options.max_states;
    result = run_noisy(circuit, dev.noise, config);
  }
  if (!options.trace_out.empty()) {
    telemetry::stop_tracing();
    const long events = telemetry::export_trace(options.trace_out);
    if (events < 0) {
      throw Error("cli: cannot write trace file '" + options.trace_out + "'");
    }
    out << "trace written to " << options.trace_out << " (" << events
        << " events";
    if (telemetry::trace_dropped_events() > 0) {
      out << ", " << telemetry::trace_dropped_events() << " dropped";
    }
    out << ")\n";
  }
  print_result(result, circuit.num_measured(), options, out);
  return 0;
}

int cmd_enumerate(const std::vector<std::string>& args, std::ostream& out) {
  const CliOptions options = parse_options(args, 2);
  const Circuit logical = load_circuit(options);
  const DeviceModel dev = load_device(options, logical.num_qubits());
  const Circuit circuit = prepare_circuit(logical, dev, options, out);

  const TruncatedDistribution t =
      truncated_exact_distribution(circuit, dev.noise, options.max_errors);
  out << "configurations (<= " << options.max_errors
      << " errors): " << t.num_configurations << "\n";
  out << "covered probability mass : " << format_double(t.covered_mass, 6)
      << "  (TVD bound " << format_double(1.0 - t.covered_mass, 6) << ")\n";
  out << "ops with prefix sharing  : " << t.ops << " vs " << t.baseline_ops
      << " unshared\n";
  out << "maintained states        : " << t.max_live_states << "\n";
  out << "exact truncated distribution (renormalized):\n";
  for (std::uint64_t outcome = 0; outcome < t.probabilities.size(); ++outcome) {
    const double p = t.probabilities[outcome] / t.covered_mass;
    if (p > 1e-6) {
      out << "  |"
          << to_bitstring(outcome, static_cast<unsigned>(circuit.num_measured()))
          << ">  " << format_double(p, 6) << "\n";
    }
  }
  if (!options.csv_path.empty()) {
    std::vector<std::vector<std::string>> rows;
    for (std::uint64_t outcome = 0; outcome < t.probabilities.size(); ++outcome) {
      rows.push_back(
          {to_bitstring(outcome, static_cast<unsigned>(circuit.num_measured())),
           format_double(t.probabilities[outcome] / t.covered_mass, 9)});
    }
    write_csv_file(options.csv_path, {"outcome", "probability"}, rows);
    out << "distribution written to " << options.csv_path << "\n";
  }
  return 0;
}

// Static schedule verification: generate the trial set exactly as `run`
// would, record the reorder schedule without executing it, prove the
// invariants (reorder order, checkpoint stack discipline, MSV bound,
// op-count telescoping) and print the proof artifacts.
int cmd_verify(const std::vector<std::string>& args, std::ostream& out) {
  const CliOptions options = parse_options(args, 2);
  const Circuit logical = load_circuit(options);
  const DeviceModel dev = load_device(options, logical.num_qubits());
  const Circuit circuit = prepare_circuit(logical, dev, options, out);
  RQSIM_CHECK(dev.noise.num_qubits() >= circuit.num_qubits(),
              "verify: noise model covers fewer qubits than the circuit");

  NoisyRunConfig config;
  config.num_trials = options.trials;
  config.seed = options.seed;
  config.max_states = options.max_states;
  validate_run_limits(config, "verify");

  const CircuitContext ctx(circuit);
  Rng rng(config.seed);
  std::vector<Trial> trials =
      generate_trials(circuit, ctx.layering, dev.noise, config.num_trials, rng);
  reorder_trials(trials);

  ScheduleOptions sched_options;
  sched_options.max_states = config.max_states;
  const PlanVerifier verifier(ctx, sched_options);
  const PlanProof proof = verifier.verify_schedule(trials);
  out << format_proof(proof);
  return proof.ok ? 0 : 1;
}

int cmd_transpile(const std::vector<std::string>& args, std::ostream& out) {
  const CliOptions options = parse_options(args, 2);
  const Circuit logical = load_circuit(options);
  const DeviceModel dev = load_device(options, logical.num_qubits());
  const TranspileResult compiled = transpile(logical, dev.coupling);
  out << to_qasm(compiled.circuit);
  return 0;
}

int cmd_suite(std::ostream& out) {
  TextTable table({"Name", "Qubit#", "Single#", "CNOT#", "Measure#"});
  for (const BenchmarkEntry& entry : make_table1_suite(yorktown_device())) {
    table.add_row({entry.name, std::to_string(entry.compiled.num_qubits()),
                   std::to_string(entry.compiled.count_single_qubit_gates()),
                   std::to_string(entry.compiled.count_kind(GateKind::CX)),
                   std::to_string(entry.compiled.num_measured())});
  }
  out << table.render();
  return 0;
}

// --------------------------------------------------------------------------
// Service verbs: serve runs the JSONL server in-process; submit / status /
// shutdown are thin protocol clients (service/protocol.hpp documents the
// wire format).

std::string service_endpoint(const CliOptions& options) {
  if (!options.socket_path.empty()) {
    return "unix:" + options.socket_path;
  }
  if (options.port >= 0) {
    return "tcp:127.0.0.1:" + std::to_string(options.port);
  }
  usage_error("service commands need --socket <path> or --port <n>");
}

int cmd_serve(const std::vector<std::string>& args, std::ostream& out) {
  const CliOptions options = parse_options(args, 2);
  if (options.socket_path.empty() && options.port < 0) {
    usage_error("serve needs --socket <path> or --port <n>");
  }
  ServerConfig config;
  config.unix_path = options.socket_path;
  config.tcp_port = options.port >= 0 ? options.port : 0;
  config.service.num_workers = std::max<std::size_t>(1, options.workers);
  config.service.queue_capacity = options.queue_cap;
  config.service.max_batch_jobs = options.batch;
  const ServiceConfig service_config = config.service;
  SimServer server(std::move(config));
  out << "rqsim service listening on " << server.endpoint() << " ("
      << service_config.num_workers << " workers, queue "
      << service_config.queue_capacity << ", batch "
      << service_config.max_batch_jobs << ")\n";
  out.flush();
  server.run();
  const ServiceStats stats = server.service().stats();
  out << "rqsim service stopped: " << stats.completed << " completed, "
      << stats.failed << " failed, " << stats.cancelled << " cancelled, "
      << stats.merged_batches << " merged batches\n";
  return 0;
}

[[noreturn]] void remote_error(const Json& response) {
  throw Error("service: " + response.get_string("error", "error") + " — " +
              response.get_string("detail", "(no detail)"));
}

void print_remote_result(const Json& result, const CliOptions& options,
                         std::ostream& out) {
  out << "ops executed        : " << static_cast<std::uint64_t>(result.get_number("ops", 0))
      << "\n";
  out << "baseline ops        : "
      << static_cast<std::uint64_t>(result.get_number("baseline_ops", 0)) << "\n";
  out << "normalized compute  : "
      << format_double(result.get_number("normalized_computation", 1.0), 4) << "\n";
  out << "maintained states   : "
      << static_cast<std::uint64_t>(result.get_number("max_live_states", 0)) << "\n";
  const std::uint64_t batch_size =
      static_cast<std::uint64_t>(result.get_number("batch_size", 1));
  out << "batch               : " << batch_size << " job(s)";
  if (batch_size > 1) {
    out << ", merged ops " << static_cast<std::uint64_t>(result.get_number("batch_ops", 0))
        << " vs solo " << static_cast<std::uint64_t>(result.get_number("solo_ops", 0));
  }
  out << "\n";
  out << "queue/exec time     : " << format_double(result.get_number("queue_ms", 0.0), 1)
      << " ms / " << format_double(result.get_number("exec_ms", 0.0), 1) << " ms\n";
  if (result.has("histogram")) {
    std::vector<std::pair<std::string, std::uint64_t>> rows;
    for (const auto& [bits, count] : result.at("histogram").as_object()) {
      rows.emplace_back(bits, count.as_u64());
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    out << "top outcomes:\n";
    for (std::size_t i = 0; i < rows.size() && i < options.top; ++i) {
      out << "  |" << rows[i].first << ">  " << rows[i].second << "\n";
    }
    if (!options.csv_path.empty()) {
      std::vector<std::vector<std::string>> csv_rows;
      for (const auto& [bits, count] : rows) {
        csv_rows.push_back({bits, std::to_string(count)});
      }
      write_csv_file(options.csv_path, {"outcome", "count"}, csv_rows);
      out << "histogram written to " << options.csv_path << "\n";
    }
  }
}

void print_remote_status(const Json& response, const CliOptions& options,
                         std::ostream& out) {
  const std::uint64_t job = response.at("job").as_u64();
  const std::string state = response.get_string("state", "unknown");
  out << "job " << job << ": " << state << "\n";
  if (response.has("result")) {
    print_remote_result(response.at("result"), options, out);
  } else if (response.has("detail")) {
    out << "detail: " << response.get_string("detail", "") << "\n";
  }
}

int cmd_submit(const std::vector<std::string>& args, std::ostream& out) {
  const CliOptions options = parse_options(args, 2);
  WorkloadSpec workload;
  if (!options.qasm_path.empty()) {
    std::ifstream file(options.qasm_path);
    if (!file) {
      usage_error("cannot open QASM file '" + options.qasm_path + "'");
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    workload.qasm = buffer.str();
  } else if (!options.circuit_spec.empty()) {
    workload.circuit_spec = options.circuit_spec;
  } else {
    usage_error("one of --circuit or --qasm is required");
  }
  workload.device = options.device;
  workload.device_qubits = options.device_qubits;
  workload.device_rate = options.device_rate;
  workload.noise_scale = options.noise_scale;
  workload.no_transpile = options.no_transpile;

  SubmitParams params;
  params.trials = options.trials;
  params.seed = options.seed;
  params.mode = options.mode;
  params.max_states = options.max_states;
  params.threads = options.threads;
  params.priority = options.priority;
  params.analyze = options.analyze;
  params.frames = options.frames;
  params.tenant = options.tenant;

  ServiceClient client = ServiceClient::connect(service_endpoint(options));
  const Json response = client.request(make_submit_request(workload, params));
  if (!response.get_bool("ok", false)) {
    remote_error(response);
  }
  const std::uint64_t job = response.at("job").as_u64();
  out << "submitted job " << job;
  if (response.has("trace_id")) {
    out << " (trace " << response.get_string("trace_id", "") << ")";
  }
  out << "\n";
  if (options.wait) {
    Json wait_request = Json::object();
    wait_request.set("op", Json("wait"));
    wait_request.set("job", Json(job));
    const Json done = client.request(wait_request);
    if (!done.get_bool("ok", false)) {
      remote_error(done);
    }
    print_remote_status(done, options, out);
  }
  return 0;
}

// One "p50/p90/p99" cell from a latency-histogram json (µs values).
std::string quantile_cell(const Json& hist) {
  return format_double(hist.get_number("p50", 0.0), 0) + "/" +
         format_double(hist.get_number("p90", 0.0), 0) + "/" +
         format_double(hist.get_number("p99", 0.0), 0);
}

// Human-readable SLO rendering: per-tenant latency quantiles and the
// slowest jobs with their trace ids (joinable against a merged trace).
void print_slo(const Json& slo, std::ostream& out) {
  const auto print_tenant = [&out](const std::string& label, const Json& t) {
    if (!t.is_object() || !t.has("e2e_us")) {
      return;
    }
    out << "  " << label << ": e2e " << quantile_cell(t.at("e2e_us"));
    if (t.has("queue_us")) {
      out << "  queue " << quantile_cell(t.at("queue_us"));
    }
    if (t.has("exec_us")) {
      out << "  exec " << quantile_cell(t.at("exec_us"));
    }
    out << "  (n=" << t.at("e2e_us").get_u64("count", 0) << ")\n";
  };
  out << "slo latency us (p50/p90/p99):\n";
  if (slo.has("tenants") && slo.at("tenants").is_object()) {
    for (const auto& [tenant, t] : slo.at("tenants").as_object()) {
      print_tenant("tenant " + (tenant.empty() ? "(anonymous)" : tenant), t);
    }
  }
  if (slo.has("total")) {
    print_tenant("total", slo.at("total"));
    const Json& total = slo.at("total");
    if (total.is_object() && total.has("exemplars") &&
        total.at("exemplars").is_array() &&
        !total.at("exemplars").as_array().empty()) {
      out << "slowest jobs:\n";
      for (const Json& ex : total.at("exemplars").as_array()) {
        out << "  job " << ex.get_u64("job", 0) << "  trace "
            << ex.get_string("trace_id", "-") << "  e2e "
            << ex.get_u64("e2e_us", 0) << " us\n";
      }
    }
  }
}

int cmd_status(const std::vector<std::string>& args, std::ostream& out) {
  const CliOptions options = parse_options(args, 2);
  ServiceClient client = ServiceClient::connect(service_endpoint(options));
  if (options.job == 0) {
    // No --job: print the service-wide counters instead.
    const Json response = client.request(Json::parse("{\"op\":\"stats\"}"));
    if (!response.get_bool("ok", false)) {
      remote_error(response);
    }
    if (response.has("build")) {
      const Json& build = response.at("build");
      out << "build " << build.get_string("version", "?") << ", up "
          << format_double(build.get_number("uptime_ms", 0.0) / 1000.0, 1)
          << " s\n";
    }
    const Json& stats = response.at("stats");
    out << "service stats:\n";
    for (const auto& [key, value] : stats.as_object()) {
      out << "  " << key << ": " << value.dump() << "\n";
    }
    if (response.has("slo")) {
      print_slo(response.at("slo"), out);
    }
    return 0;
  }
  Json request = Json::object();
  request.set("op", Json(options.wait ? "wait" : "status"));
  request.set("job", Json(options.job));
  const Json response = client.request(request);
  if (!response.get_bool("ok", false)) {
    remote_error(response);
  }
  print_remote_status(response, options, out);
  return 0;
}

// Live metrics snapshot from a running service, as one JSON line: the
// service counters plus the full telemetry registry (protocol `stats` op),
// the SLO quantile layer, and build identity. --prom renders the same
// response as Prometheus text exposition instead.
int cmd_stats(const std::vector<std::string>& args, std::ostream& out) {
  const CliOptions options = parse_options(args, 2);
  ServiceClient client = ServiceClient::connect(service_endpoint(options));
  const Json response = client.request(Json::parse("{\"op\":\"stats\"}"));
  if (!response.get_bool("ok", false)) {
    remote_error(response);
  }
  if (options.prom) {
    out << stats_to_prometheus(response);
    return 0;
  }
  Json snapshot = Json::object();
  snapshot.set("stats", response.at("stats"));
  if (response.has("telemetry")) {
    snapshot.set("telemetry", response.at("telemetry"));
  }
  if (response.has("slo")) {
    snapshot.set("slo", response.at("slo"));
  }
  if (response.has("build")) {
    snapshot.set("build", response.at("build"));
  }
  if (response.has("fleet")) {
    // The endpoint is a fleet router: include the per-backend / per-tenant
    // breakdown and the cross-tenant merge hit rate.
    snapshot.set("fleet", response.at("fleet"));
  }
  out << snapshot.dump() << "\n";
  return 0;
}

// Render one `rqsim top` frame from a stats response. `jobs_per_s` is the
// completed-job rate measured between refreshes (0 on the first frame).
void print_top_frame(const Json& response, double jobs_per_s,
                     std::ostream& out) {
  out << "rqsim top";
  if (response.has("build")) {
    const Json& build = response.at("build");
    out << " — " << build.get_string("version", "?") << ", up "
        << format_double(build.get_number("uptime_ms", 0.0) / 1000.0, 1)
        << " s";
  }
  out << "    " << format_double(jobs_per_s, 1) << " jobs/s\n";

  const Json& stats = response.at("stats");
  out << "jobs: " << stats.get_u64("completed", 0) << " done, "
      << stats.get_u64("failed", 0) << " failed, "
      << stats.get_u64("queued_now", 0) << " queued, "
      << stats.get_u64("running_now", 0) << " running"
      << "    batches: " << stats.get_u64("merged_batches", 0) << " merged ("
      << stats.get_u64("merged_jobs", 0) << " jobs)\n";

  if (response.has("telemetry") && response.at("telemetry").is_object()) {
    const Json& telemetry = response.at("telemetry");
    const double acquires = telemetry.get_number("buffer_pool.acquires", 0.0);
    const double hits = telemetry.get_number("buffer_pool.shard_hits", 0.0) +
                        telemetry.get_number("buffer_pool.global_hits", 0.0);
    const double tasks = telemetry.get_number("tree_exec.tasks", 0.0);
    const double collapsed =
        telemetry.get_number("sim.frame_collapsed_trials", 0.0);
    out << "cache: buffer-pool hit "
        << format_double(acquires > 0 ? 100.0 * hits / acquires : 0.0, 1)
        << "%    frames: " << format_double(collapsed, 0)
        << " trials collapsed"
        << (tasks > 0 ? " (" + format_double(100.0 * collapsed /
                                                 (collapsed + tasks), 1) +
                            "% of tree work)"
                      : "")
        << "\n";
  }

  if (response.has("fleet") && response.at("fleet").is_object()) {
    const Json& fleet = response.at("fleet");
    if (fleet.has("backends") && fleet.at("backends").is_array()) {
      out << "backends:\n";
      out << "  endpoint                        state     queue  inflight"
             "  e2e p99 us  version\n";
      for (const Json& backend : fleet.at("backends").as_array()) {
        std::string endpoint = backend.get_string("endpoint", "?");
        endpoint.resize(30, ' ');
        std::string state = backend.get_string("state", "?");
        if (backend.get_bool("draining", false)) {
          state += "*";
        }
        state.resize(8, ' ');
        out << "  " << endpoint << "  " << state << "  "
            << backend.get_u64("queued_now", 0) << "      "
            << backend.get_u64("inflight", 0) << "         "
            << format_double(backend.get_number("e2e_p99_us", 0.0), 0)
            << "        " << backend.get_string("version", "-") << "\n";
      }
    }
    if (fleet.has("tenants") && fleet.at("tenants").is_object() &&
        !fleet.at("tenants").as_object().empty()) {
      out << "tenants (fair-share occupancy):\n";
      for (const auto& [tenant, entry] : fleet.at("tenants").as_object()) {
        out << "  " << tenant << ": " << entry.get_u64("inflight", 0)
            << " in flight, " << entry.get_u64("admitted", 0) << " admitted, "
            << entry.get_u64("rejected", 0) << " rejected (weight "
            << format_double(entry.get_number("weight", 1.0), 1) << ")\n";
      }
    }
    out << "cross-tenant merge hit rate: "
        << format_double(
               100.0 * fleet.get_number("cross_tenant_merge_hit_rate", 0.0), 1)
        << "%\n";
  }

  if (response.has("slo")) {
    print_slo(response.at("slo"), out);
  }
}

// Refreshing terminal view over the stats fan-out: throughput, queue
// depths, cache-hit / frame-collapse rates, tenant occupancy and tail
// latency. --interval sets the refresh period; --iterations bounds the
// frame count (0 = run until interrupted; each frame repaints in place).
int cmd_top(const std::vector<std::string>& args, std::ostream& out) {
  const CliOptions options = parse_options(args, 2);
  ServiceClient client = ServiceClient::connect(service_endpoint(options));
  std::uint64_t prev_completed = 0;
  telemetry::TimePoint prev_time = telemetry::clock_now();
  for (std::size_t frame = 0;
       options.iterations == 0 || frame < options.iterations; ++frame) {
    if (frame > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max(1, options.interval_ms)));
    }
    const Json response = client.request(Json::parse("{\"op\":\"stats\"}"));
    if (!response.get_bool("ok", false)) {
      remote_error(response);
    }
    const std::uint64_t completed =
        response.at("stats").get_u64("completed", 0);
    const telemetry::TimePoint now = telemetry::clock_now();
    const double elapsed_s = telemetry::ms_between(prev_time, now) / 1000.0;
    const double jobs_per_s =
        frame > 0 && elapsed_s > 0 && completed >= prev_completed
            ? static_cast<double>(completed - prev_completed) / elapsed_s
            : 0.0;
    prev_completed = completed;
    prev_time = now;
    if (frame > 0) {
      out << "\x1b[H\x1b[2J";  // cursor home + clear screen: repaint in place
    }
    print_top_frame(response, jobs_per_s, out);
    out.flush();
  }
  return 0;
}

// --------------------------------------------------------------------------
// Distributed-trace verbs (telemetry/trace.hpp, report/trace_merge.hpp).

// Send a `trace` start/stop to a service or router; the router fans the
// action out to every backend so the whole fleet records one trace window.
int cmd_trace_toggle(const std::vector<std::string>& args, std::ostream& out,
                     const char* action) {
  const CliOptions options = parse_options(args, 2);
  ServiceClient client = ServiceClient::connect(service_endpoint(options));
  Json request = Json::object();
  request.set("op", Json("trace"));
  request.set("action", Json(std::string(action)));
  const Json response = client.request(request);
  if (!response.get_bool("ok", false)) {
    remote_error(response);
  }
  out << "tracing " << (response.get_bool("tracing", false) ? "started"
                                                            : "stopped");
  if (response.has("backends")) {
    out << " on router + " << response.get_u64("backends", 0) << " backend(s)";
  }
  out << "\n";
  return 0;
}

// Collect per-process trace buffers (router: every backend plus itself,
// skew-corrected; single service: its own buffer) and stitch them into one
// Chrome-trace file with a lane per process.
int cmd_trace_merge(const std::vector<std::string>& args, std::ostream& out) {
  const CliOptions options = parse_options(args, 2);
  ServiceClient client = ServiceClient::connect(service_endpoint(options));
  Json request = Json::object();
  request.set("op", Json("trace"));
  request.set("action", Json("collect"));
  const Json response = client.request(request);
  if (!response.get_bool("ok", false)) {
    remote_error(response);
  }
  Json merged;
  if (response.has("processes")) {
    merged = merge_collect_response(response);
  } else {
    // Single-service endpoint: wrap its lone buffer as a one-process doc so
    // the output is the same merged shape either way.
    TraceProcessDoc doc;
    doc.name = "service";
    if (response.has("trace")) {
      doc.trace = response.at("trace");
    }
    doc.epoch_us = response.get_number("epoch_us", 0.0);
    merged = merge_traces({doc});
  }
  const std::size_t events =
      merged.at("traceEvents").as_array().size();
  if (options.trace_out.empty()) {
    out << merged.dump() << "\n";
    return 0;
  }
  std::ofstream file(options.trace_out);
  if (!file) {
    usage_error("cannot open trace output file '" + options.trace_out + "'");
  }
  file << merged.dump() << "\n";
  out << "merged trace: " << events << " events written to "
      << options.trace_out << "\n";
  return 0;
}

// --------------------------------------------------------------------------
// Fleet router verbs (router/router.hpp documents the semantics).

int cmd_route(const std::vector<std::string>& args, std::ostream& out) {
  const CliOptions options = parse_options(args, 2);
  if (options.socket_path.empty() && options.port < 0) {
    usage_error("route needs --socket <path> or --port <n> for the front");
  }
  if (options.backends.empty()) {
    usage_error("route needs at least one --backend <endpoint>");
  }
  RouterConfig config;
  config.unix_path = options.socket_path;
  config.tcp_port = options.port >= 0 ? options.port : 0;
  config.backends = options.backends;
  config.health.interval_ms = options.health_interval_ms;
  config.admission.fleet_capacity = options.capacity;
  config.admission.tenant_quota = options.quota;
  for (const std::string& entry : options.weights) {
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      usage_error("--weight expects tenant=weight, got '" + entry + "'");
    }
    config.admission.weights[entry.substr(0, eq)] =
        parse_double_flag(entry.substr(eq + 1), "--weight");
  }
  FleetRouter router(std::move(config));
  out << "rqsim fleet router listening on " << router.endpoint() << " ("
      << options.backends.size() << " backends";
  if (options.capacity > 0) {
    out << ", capacity " << options.capacity;
  }
  if (options.quota > 0) {
    out << ", quota " << options.quota;
  }
  out << ")\n";
  out.flush();
  router.run();
  out << "rqsim fleet router stopped\n";
  return 0;
}

int cmd_drain(const std::vector<std::string>& args, std::ostream& out,
              bool draining) {
  const CliOptions options = parse_options(args, 2);
  if (options.backends.size() != 1) {
    usage_error("drain/undrain needs exactly one --backend <endpoint>");
  }
  ServiceClient client = ServiceClient::connect(service_endpoint(options));
  Json request = Json::object();
  request.set("op", Json(draining ? "drain" : "undrain"));
  request.set("backend", Json(options.backends.front()));
  const Json response = client.request(request);
  if (!response.get_bool("ok", false)) {
    remote_error(response);
  }
  out << "backend " << options.backends.front()
      << (draining ? " draining" : " undrained");
  if (response.has("inflight")) {
    out << " (" << response.get_u64("inflight", 0) << " in flight)";
  }
  out << "\n";
  return 0;
}

int cmd_shutdown(const std::vector<std::string>& args, std::ostream& out) {
  const CliOptions options = parse_options(args, 2);
  ServiceClient client = ServiceClient::connect(service_endpoint(options));
  Json request = Json::object();
  request.set("op", Json("shutdown"));
  const Json response = client.request(request);
  if (!response.get_bool("ok", false)) {
    remote_error(response);
  }
  out << "service shutting down\n";
  return 0;
}

void print_usage(std::ostream& out) {
  out << "rqsim — accelerated noisy quantum-circuit simulation\n\n"
         "usage: rqsim <command> [flags]\n\n"
         "commands:\n"
         "  run        noisy Monte Carlo simulation (statevector)\n"
         "  analyze    op/MSV accounting only (any qubit count)\n"
         "  enumerate  exact truncated error-configuration enumeration\n"
         "  verify     statically prove a reorder schedule's invariants\n"
         "  transpile  compile a circuit onto a device, print QASM\n"
         "  suite      show the built-in benchmark suite\n"
         "  serve      run the simulation service (JSONL over a socket)\n"
         "  submit     send a job to a running service\n"
         "  status     poll (or --wait for) a job; without --job, service stats\n"
         "  stats      metrics snapshot of a running service as one JSON line\n"
         "             (--prom: Prometheus text exposition instead)\n"
         "  top        refreshing terminal view over the stats fan-out\n"
         "  shutdown   stop a running service (or fleet router)\n"
         "  route      run the fleet router in front of N backend services\n"
         "  drain      stop routing new jobs to a backend (undrain reverses)\n"
         "  trace-start  start distributed tracing (router: whole fleet)\n"
         "  trace-stop   stop distributed tracing\n"
         "  trace-merge  collect per-process buffers, stitch one Chrome trace\n"
         "               (clock-skew corrected; --trace-out <file>, else stdout)\n"
         "  help       this text\n\n"
         "flags:\n"
         "  --circuit <spec>      named circuit (see below)\n"
         "  --qasm <file>         OpenQASM 2.0 input\n"
         "  --device <name>       yorktown | yorktown-directed | artificial | ideal\n"
         "  --device-csv <file>   calibration CSV (see noise/calibration.hpp)\n"
         "  --qubits <n>          device size for artificial/ideal\n"
         "  --rate <p>            single-qubit error rate for artificial (default 1e-3)\n"
         "  --scale <f>           scale every noise rate by f\n"
         "  --trials <n>          Monte Carlo trials (default 1024)\n"
         "  --seed <n>            RNG seed (default 1)\n"
         "  --mode <m>            baseline | cached | unordered (default cached)\n"
         "  --threads <n>         parallel workers for run (default 1)\n"
         "  --parallel-mode <m>   tree | chunked (default tree: work-stealing\n"
         "                        prefix-tree executor, zero redundant prefix ops)\n"
         "  --max-states <n>      MSV budget (0 = unlimited)\n"
         "  --frames              Pauli-frame subtree collapse (tree-mode runs:\n"
         "                        Clifford-propagatable trials finish as tracked\n"
         "                        frames, bitwise-identical, fewer matvec ops)\n"
         "  --top <k>             histogram rows to print (default 16)\n"
         "  --max-errors <k>      enumeration truncation order (default 2)\n"
         "  --csv <file>          write the outcome histogram as CSV\n"
         "  --trace-out <file>    run: write a Chrome trace (Perfetto-loadable)\n"
         "  --no-transpile        skip routing (all-to-all connectivity)\n\n"
         "service flags:\n"
         "  --socket <path>       unix-domain socket endpoint\n"
         "  --port <n>            TCP endpoint on 127.0.0.1 (serve: 0 = ephemeral)\n"
         "  --workers <n>         serve: worker threads (default 2)\n"
         "  --queue-cap <n>       serve: bounded queue capacity (default 256)\n"
         "  --batch <n>           serve: max jobs per merged batch (default 8)\n"
         "  --job <id>            status: job to query\n"
         "  --wait                submit/status: block until the job is done\n"
         "  --analyze             submit: accounting-only job (any qubit count)\n"
         "  --priority <p>        submit: low | normal | high (default normal)\n"
         "  --tenant <name>       submit: fair-share identity at the router\n"
         "  --prom                stats: Prometheus text format (scrapable)\n"
         "  --interval <ms>       top: refresh period (default 1000)\n"
         "  --iterations <n>      top: frames to draw (default 0 = forever)\n\n"
         "fleet router flags (route / drain / undrain):\n"
         "  --backend <ep>        backend endpoint (unix:/path or host:port);\n"
         "                        repeat for each backend. drain: the target\n"
         "  --capacity <n>        fleet-wide in-flight job cap (0 = unlimited)\n"
         "  --quota <n>           per-tenant in-flight job cap (0 = none)\n"
         "  --weight <t=w>        fair-share weight for tenant t (default 1.0)\n"
         "  --health-interval <ms> backend health-check period (default 500)\n\n"
         "circuits:\n";
  for (const std::string& line : named_circuit_help()) {
    out << "  " << line << "\n";
  }
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  try {
    if (args.size() < 2 || args[1] == "help" || args[1] == "--help") {
      print_usage(out);
      return args.size() < 2 ? 1 : 0;
    }
    const std::string& command = args[1];
    if (command == "run") {
      return cmd_run(args, out, /*analyze_only=*/false);
    }
    if (command == "analyze") {
      return cmd_run(args, out, /*analyze_only=*/true);
    }
    if (command == "enumerate") {
      return cmd_enumerate(args, out);
    }
    if (command == "verify") {
      return cmd_verify(args, out);
    }
    if (command == "transpile") {
      return cmd_transpile(args, out);
    }
    if (command == "suite") {
      return cmd_suite(out);
    }
    if (command == "serve") {
      return cmd_serve(args, out);
    }
    if (command == "submit") {
      return cmd_submit(args, out);
    }
    if (command == "status") {
      return cmd_status(args, out);
    }
    if (command == "stats") {
      return cmd_stats(args, out);
    }
    if (command == "top") {
      return cmd_top(args, out);
    }
    if (command == "trace-start") {
      return cmd_trace_toggle(args, out, "start");
    }
    if (command == "trace-stop") {
      return cmd_trace_toggle(args, out, "stop");
    }
    if (command == "trace-merge") {
      return cmd_trace_merge(args, out);
    }
    if (command == "shutdown") {
      return cmd_shutdown(args, out);
    }
    if (command == "route") {
      return cmd_route(args, out);
    }
    if (command == "drain") {
      return cmd_drain(args, out, /*draining=*/true);
    }
    if (command == "undrain") {
      return cmd_drain(args, out, /*draining=*/false);
    }
    err << "rqsim: unknown command '" << command << "' (see 'rqsim help')\n";
    return 1;
  } catch (const Error& e) {
    err << "rqsim: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace rqsim
