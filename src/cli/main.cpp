// The `rqsim` command-line entry point (all logic lives in cli.cpp so the
// test suite can exercise it in-process).
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  return rqsim::run_cli(args, std::cout, std::cerr);
}
