// Basis decomposition: rewrite a circuit into the {single-qubit, CX} basis
// supported by the modeled device (CZ, CP, SWAP and CCX are expanded with
// the standard textbook identities).
#pragma once

#include <vector>

#include "circuit/circuit.hpp"

namespace rqsim {

/// Expand one gate into {single-qubit, CX} gates (identity for gates that
/// are already in basis).
std::vector<Gate> decompose_gate(const Gate& gate);

/// Decompose every gate of the circuit; measurements are preserved.
Circuit decompose_to_cx_basis(const Circuit& circuit);

/// True if the circuit only contains single-qubit gates and CX.
bool in_cx_basis(const Circuit& circuit);

}  // namespace rqsim
