#include "transpile/coupling.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"

namespace rqsim {

CouplingMap::CouplingMap(unsigned num_qubits,
                         std::vector<std::pair<qubit_t, qubit_t>> edges)
    : num_qubits_(num_qubits), edges_(std::move(edges)) {
  adjacency_.resize(num_qubits);
  for (auto& [a, b] : edges_) {
    RQSIM_CHECK(a < num_qubits && b < num_qubits && a != b, "CouplingMap: bad edge");
    if (a > b) {
      std::swap(a, b);
    }
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
  }
}

CouplingMap CouplingMap::all_to_all(unsigned num_qubits) {
  CouplingMap map;
  map.num_qubits_ = num_qubits;
  map.all_to_all_ = true;
  return map;
}

CouplingMap CouplingMap::linear(unsigned num_qubits) {
  std::vector<std::pair<qubit_t, qubit_t>> edges;
  for (qubit_t q = 0; q + 1 < num_qubits; ++q) {
    edges.emplace_back(q, q + 1);
  }
  return CouplingMap(num_qubits, std::move(edges));
}

CouplingMap CouplingMap::yorktown() {
  return CouplingMap(5, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}});
}

CouplingMap CouplingMap::yorktown_directed() {
  CouplingMap map(5, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}});
  map.directed_ = true;
  map.directed_edges_ = {{1, 0}, {2, 0}, {2, 1}, {3, 2}, {3, 4}, {4, 2}};
  return map;
}

bool CouplingMap::cx_allowed(qubit_t control, qubit_t target) const {
  if (!directed_) {
    return connected(control, target);
  }
  for (const auto& [c, t] : directed_edges_) {
    if (c == control && t == target) {
      return true;
    }
  }
  return false;
}

bool CouplingMap::connected(qubit_t a, qubit_t b) const {
  if (all_to_all_) {
    return a != b && a < num_qubits_ && b < num_qubits_;
  }
  return edge_index(a, b) >= 0;
}

int CouplingMap::edge_index(qubit_t a, qubit_t b) const {
  if (a > b) {
    std::swap(a, b);
  }
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].first == a && edges_[i].second == b) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<qubit_t> CouplingMap::shortest_path(qubit_t from, qubit_t to) const {
  RQSIM_CHECK(from < num_qubits_ && to < num_qubits_, "shortest_path: qubit out of range");
  if (all_to_all_ || from == to) {
    return from == to ? std::vector<qubit_t>{from} : std::vector<qubit_t>{from, to};
  }
  std::vector<int> parent(num_qubits_, -1);
  std::queue<qubit_t> frontier;
  frontier.push(from);
  parent[from] = static_cast<int>(from);
  while (!frontier.empty()) {
    const qubit_t u = frontier.front();
    frontier.pop();
    if (u == to) {
      break;
    }
    for (qubit_t v : adjacency_[u]) {
      if (parent[v] < 0) {
        parent[v] = static_cast<int>(u);
        frontier.push(v);
      }
    }
  }
  RQSIM_CHECK(parent[to] >= 0, "shortest_path: qubits not connected");
  std::vector<qubit_t> path;
  for (qubit_t v = to; v != from; v = static_cast<qubit_t>(parent[v])) {
    path.push_back(v);
  }
  path.push_back(from);
  std::reverse(path.begin(), path.end());
  return path;
}

bool CouplingMap::is_connected_graph() const {
  if (all_to_all_ || num_qubits_ <= 1) {
    return true;
  }
  std::vector<bool> seen(num_qubits_, false);
  std::queue<qubit_t> frontier;
  frontier.push(0);
  seen[0] = true;
  unsigned count = 1;
  while (!frontier.empty()) {
    const qubit_t u = frontier.front();
    frontier.pop();
    for (qubit_t v : adjacency_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        frontier.push(v);
      }
    }
  }
  return count == num_qubits_;
}

}  // namespace rqsim
