#include "transpile/transpiler.hpp"

#include "transpile/decompose.hpp"

namespace rqsim {

TranspileResult transpile(const Circuit& circuit, const CouplingMap& coupling) {
  const Circuit decomposed = decompose_to_cx_basis(circuit);
  RoutedCircuit routed = route_circuit(decomposed, coupling);
  TranspileResult out;
  out.circuit = std::move(routed.circuit);
  out.final_mapping = std::move(routed.final_mapping);
  out.swaps_inserted = routed.swaps_inserted;
  return out;
}

}  // namespace rqsim
