#include "transpile/router.hpp"

#include <numeric>

#include "common/error.hpp"
#include "transpile/decompose.hpp"

namespace rqsim {

RoutedCircuit route_circuit(const Circuit& circuit, const CouplingMap& coupling) {
  RQSIM_CHECK(in_cx_basis(circuit), "route_circuit: circuit must be in {1q, CX} basis");
  RQSIM_CHECK(circuit.num_qubits() <= coupling.num_qubits(),
              "route_circuit: circuit needs more qubits than the device has");
  RQSIM_CHECK(coupling.is_connected_graph(), "route_circuit: device graph is disconnected");

  RoutedCircuit out;
  out.circuit = Circuit(coupling.num_qubits(), circuit.name());

  // phys_of[logical] and its inverse. Start with the identity placement.
  std::vector<qubit_t> phys_of(circuit.num_qubits());
  std::iota(phys_of.begin(), phys_of.end(), 0);
  std::vector<qubit_t> logical_at(coupling.num_qubits(), static_cast<qubit_t>(-1));
  for (qubit_t l = 0; l < circuit.num_qubits(); ++l) {
    logical_at[phys_of[l]] = l;
  }

  auto emit_cx = [&](qubit_t pa, qubit_t pb) {
    if (coupling.cx_allowed(pa, pb)) {
      out.circuit.cx(pa, pb);
    } else {
      out.circuit.h(pa);
      out.circuit.h(pb);
      out.circuit.cx(pb, pa);
      out.circuit.h(pa);
      out.circuit.h(pb);
    }
  };
  auto emit_swap = [&](qubit_t pa, qubit_t pb) {
    // SWAP as 3 CX on coupled physical qubits (direction-corrected).
    emit_cx(pa, pb);
    emit_cx(pb, pa);
    emit_cx(pa, pb);
    const qubit_t la = logical_at[pa];
    const qubit_t lb = logical_at[pb];
    logical_at[pa] = lb;
    logical_at[pb] = la;
    if (la != static_cast<qubit_t>(-1)) {
      phys_of[la] = pb;
    }
    if (lb != static_cast<qubit_t>(-1)) {
      phys_of[lb] = pa;
    }
    ++out.swaps_inserted;
  };

  for (const Gate& g : circuit.gates()) {
    if (g.arity() == 1) {
      Gate moved = g;
      moved.qubits[0] = phys_of[g.qubits[0]];
      out.circuit.add(moved);
      continue;
    }
    // CX on (control, target).
    qubit_t pc = phys_of[g.qubits[0]];
    const qubit_t pt = phys_of[g.qubits[1]];
    if (!coupling.connected(pc, pt)) {
      const std::vector<qubit_t> path = coupling.shortest_path(pc, pt);
      RQSIM_CHECK(path.size() >= 3, "route_circuit: unexpected short path");
      // Walk the control toward the target, stopping one hop short.
      for (std::size_t i = 0; i + 2 < path.size(); ++i) {
        emit_swap(path[i], path[i + 1]);
      }
      pc = phys_of[g.qubits[0]];
      RQSIM_CHECK(coupling.connected(pc, pt), "route_circuit: routing failed");
    }
    if (coupling.cx_allowed(pc, pt)) {
      out.circuit.cx(pc, pt);
    } else {
      // Directed device, wrong orientation: CX(a,b) = (H⊗H)·CX(b,a)·(H⊗H).
      out.circuit.h(pc);
      out.circuit.h(pt);
      out.circuit.cx(pt, pc);
      out.circuit.h(pc);
      out.circuit.h(pt);
    }
  }

  for (qubit_t lq : circuit.measured_qubits()) {
    out.circuit.measure(phys_of[lq]);
  }
  out.final_mapping = phys_of;
  return out;
}

bool respects_coupling(const Circuit& circuit, const CouplingMap& coupling) {
  for (const Gate& g : circuit.gates()) {
    if (g.arity() == 2 && !coupling.cx_allowed(g.qubits[0], g.qubits[1])) {
      return false;
    }
    if (g.arity() > 2) {
      return false;
    }
  }
  return true;
}

}  // namespace rqsim
