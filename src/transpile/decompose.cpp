#include "transpile/decompose.hpp"

#include "common/error.hpp"
#include "common/types.hpp"

namespace rqsim {

std::vector<Gate> decompose_gate(const Gate& gate) {
  std::vector<Gate> out;
  switch (gate.kind) {
    case GateKind::CZ: {
      const qubit_t a = gate.qubits[0];
      const qubit_t b = gate.qubits[1];
      out.push_back(Gate::make1(GateKind::H, b));
      out.push_back(Gate::make2(GateKind::CX, a, b));
      out.push_back(Gate::make1(GateKind::H, b));
      return out;
    }
    case GateKind::CP: {
      // Standard cu1 decomposition: p(a,λ/2) cx p(b,-λ/2) cx p(b,λ/2).
      const qubit_t a = gate.qubits[0];
      const qubit_t b = gate.qubits[1];
      const double lambda = gate.params[0];
      out.push_back(Gate::make1(GateKind::P, a, lambda / 2.0));
      out.push_back(Gate::make2(GateKind::CX, a, b));
      out.push_back(Gate::make1(GateKind::P, b, -lambda / 2.0));
      out.push_back(Gate::make2(GateKind::CX, a, b));
      out.push_back(Gate::make1(GateKind::P, b, lambda / 2.0));
      return out;
    }
    case GateKind::SWAP: {
      const qubit_t a = gate.qubits[0];
      const qubit_t b = gate.qubits[1];
      out.push_back(Gate::make2(GateKind::CX, a, b));
      out.push_back(Gate::make2(GateKind::CX, b, a));
      out.push_back(Gate::make2(GateKind::CX, a, b));
      return out;
    }
    case GateKind::CCX: {
      // Textbook Toffoli: 6 CX + 9 single-qubit gates (Nielsen & Chuang).
      const qubit_t a = gate.qubits[0];
      const qubit_t b = gate.qubits[1];
      const qubit_t c = gate.qubits[2];
      out.push_back(Gate::make1(GateKind::H, c));
      out.push_back(Gate::make2(GateKind::CX, b, c));
      out.push_back(Gate::make1(GateKind::Tdg, c));
      out.push_back(Gate::make2(GateKind::CX, a, c));
      out.push_back(Gate::make1(GateKind::T, c));
      out.push_back(Gate::make2(GateKind::CX, b, c));
      out.push_back(Gate::make1(GateKind::Tdg, c));
      out.push_back(Gate::make2(GateKind::CX, a, c));
      out.push_back(Gate::make1(GateKind::T, b));
      out.push_back(Gate::make1(GateKind::T, c));
      out.push_back(Gate::make1(GateKind::H, c));
      out.push_back(Gate::make2(GateKind::CX, a, b));
      out.push_back(Gate::make1(GateKind::T, a));
      out.push_back(Gate::make1(GateKind::Tdg, b));
      out.push_back(Gate::make2(GateKind::CX, a, b));
      return out;
    }
    default:
      out.push_back(gate);
      return out;
  }
}

Circuit decompose_to_cx_basis(const Circuit& circuit) {
  Circuit out(circuit.num_qubits(), circuit.name());
  for (const Gate& g : circuit.gates()) {
    for (const Gate& piece : decompose_gate(g)) {
      out.add(piece);
    }
  }
  for (qubit_t q : circuit.measured_qubits()) {
    out.measure(q);
  }
  return out;
}

bool in_cx_basis(const Circuit& circuit) {
  for (const Gate& g : circuit.gates()) {
    if (g.arity() == 1) {
      continue;
    }
    if (g.kind != GateKind::CX) {
      return false;
    }
  }
  return true;
}

}  // namespace rqsim
