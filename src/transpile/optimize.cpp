#include "transpile/optimize.hpp"

#include <cmath>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace rqsim {

U3Angles u3_angles_from_unitary(const Mat2& u) {
  RQSIM_CHECK(is_unitary(u, 1e-9), "u3_angles_from_unitary: matrix is not unitary");
  U3Angles angles;
  const double abs00 = std::abs(u.at(0, 0));
  const double abs10 = std::abs(u.at(1, 0));
  angles.theta = 2.0 * std::atan2(abs10, abs00);
  if (abs00 < 1e-12) {
    // theta = pi: u = e^{ia} [[0, -e^{i lambda}], [e^{i phi}, 0]]; absorb
    // the global phase into arg(u10), leaving phi = 0.
    const double alpha = std::arg(u.at(1, 0));
    angles.phi = 0.0;
    angles.lambda = std::arg(-u.at(0, 1)) - alpha;
    return angles;
  }
  const double alpha = std::arg(u.at(0, 0));
  if (abs10 < 1e-12) {
    // theta = 0: diagonal; only phi + lambda is defined.
    angles.phi = 0.0;
    angles.lambda = std::arg(u.at(1, 1)) - alpha;
    return angles;
  }
  angles.phi = std::arg(u.at(1, 0)) - alpha;
  angles.lambda = std::arg(-u.at(0, 1)) - alpha;
  return angles;
}

bool is_identity_up_to_phase(const Mat2& u, double tol) {
  return equal_up_to_global_phase(u, Mat2::identity(), tol);
}

Circuit fuse_single_qubit_runs(const Circuit& circuit) {
  Circuit out(circuit.num_qubits(), circuit.name());
  // Pending accumulated single-qubit unitary per qubit (product of the run
  // so far, latest gate leftmost).
  std::vector<std::optional<Mat2>> pending(circuit.num_qubits());

  auto flush = [&](qubit_t q) {
    if (!pending[q]) {
      return;
    }
    const Mat2 u = *pending[q];
    pending[q].reset();
    if (is_identity_up_to_phase(u, 1e-10)) {
      return;
    }
    const U3Angles a = u3_angles_from_unitary(u);
    out.u3(q, a.theta, a.phi, a.lambda);
  };

  for (const Gate& g : circuit.gates()) {
    if (g.arity() == 1) {
      const qubit_t q = g.qubits[0];
      const Mat2 m = gate_matrix1(g);
      pending[q] = pending[q] ? (m * *pending[q]) : m;
      continue;
    }
    const int arity = g.arity();
    for (int i = 0; i < arity; ++i) {
      flush(g.qubits[static_cast<std::size_t>(i)]);
    }
    out.add(g);
  }
  for (qubit_t q = 0; q < circuit.num_qubits(); ++q) {
    flush(q);
  }
  for (qubit_t q : circuit.measured_qubits()) {
    out.measure(q);
  }
  return out;
}

Circuit cancel_adjacent_cx(const Circuit& circuit) {
  const auto& gates = circuit.gates();
  std::vector<bool> removed(gates.size(), false);
  // last_cx[q]: index of the most recent surviving CX whose operands are
  // "live" on q (nothing touched q since), or -1.
  std::vector<long> last_cx(circuit.num_qubits(), -1);

  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    if (g.kind == GateKind::CX) {
      const qubit_t c = g.qubits[0];
      const qubit_t t = g.qubits[1];
      const long prev = last_cx[c];
      if (prev >= 0 && prev == last_cx[t] && !removed[static_cast<std::size_t>(prev)] &&
          gates[static_cast<std::size_t>(prev)].qubits[0] == c &&
          gates[static_cast<std::size_t>(prev)].qubits[1] == t) {
        removed[static_cast<std::size_t>(prev)] = true;
        removed[i] = true;
        last_cx[c] = -1;
        last_cx[t] = -1;
      } else {
        last_cx[c] = static_cast<long>(i);
        last_cx[t] = static_cast<long>(i);
      }
      continue;
    }
    const int arity = g.arity();
    for (int k = 0; k < arity; ++k) {
      last_cx[g.qubits[static_cast<std::size_t>(k)]] = -1;
    }
  }

  Circuit out(circuit.num_qubits(), circuit.name());
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (!removed[i]) {
      out.add(gates[i]);
    }
  }
  for (qubit_t q : circuit.measured_qubits()) {
    out.measure(q);
  }
  return out;
}

Circuit optimize_circuit(const Circuit& circuit) {
  Circuit current = circuit;
  for (;;) {
    const std::size_t before = current.num_gates();
    current = cancel_adjacent_cx(fuse_single_qubit_runs(current));
    if (current.num_gates() >= before) {
      return current;
    }
  }
}

}  // namespace rqsim
