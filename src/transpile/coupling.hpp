// Device coupling map: which physical qubit pairs support a CNOT.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace rqsim {

class CouplingMap {
 public:
  CouplingMap() = default;

  /// Build from an undirected edge list over `num_qubits` physical qubits.
  CouplingMap(unsigned num_qubits, std::vector<std::pair<qubit_t, qubit_t>> edges);

  /// Fully connected device (no routing ever needed).
  static CouplingMap all_to_all(unsigned num_qubits);

  /// Chain 0-1-2-…-(n-1).
  static CouplingMap linear(unsigned num_qubits);

  /// IBM Yorktown (ibmqx2) bow-tie: 0-1, 0-2, 1-2, 2-3, 2-4, 3-4.
  static CouplingMap yorktown();

  /// Yorktown with the historical *directed* CX constraints
  /// (control -> target): 1->0, 2->0, 2->1, 3->2, 3->4, 4->2.
  static CouplingMap yorktown_directed();

  /// Mark the map as directed: `edges` order is (control, target) and
  /// cx_allowed() only accepts that orientation.
  void set_directed(bool directed) { directed_ = directed; }
  bool is_directed() const { return directed_; }

  /// True if a CX with this (control, target) orientation is native.
  /// On undirected maps this equals connected().
  bool cx_allowed(qubit_t control, qubit_t target) const;

  unsigned num_qubits() const { return num_qubits_; }
  const std::vector<std::pair<qubit_t, qubit_t>>& edges() const { return edges_; }

  bool connected(qubit_t a, qubit_t b) const;

  /// Index of the undirected edge {a, b}, or -1 if not connected.
  int edge_index(qubit_t a, qubit_t b) const;

  /// Shortest path between two physical qubits (BFS); includes endpoints.
  std::vector<qubit_t> shortest_path(qubit_t from, qubit_t to) const;

  /// True if every qubit can reach every other.
  bool is_connected_graph() const;

 private:
  unsigned num_qubits_ = 0;
  bool all_to_all_ = false;
  bool directed_ = false;
  std::vector<std::pair<qubit_t, qubit_t>> directed_edges_;
  std::vector<std::pair<qubit_t, qubit_t>> edges_;
  std::vector<std::vector<qubit_t>> adjacency_;
};

}  // namespace rqsim
