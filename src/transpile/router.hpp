// SWAP-insertion router: map a logical circuit (already in {1q, CX} basis)
// onto a device coupling map.
//
// Greedy shortest-path routing: when a CX touches non-adjacent physical
// qubits, the control is moved along a BFS shortest path with SWAPs (each
// emitted as 3 CX). The logical→physical mapping is tracked so measured
// logical qubits resolve to their final physical location.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "common/types.hpp"
#include "transpile/coupling.hpp"

namespace rqsim {

struct RoutedCircuit {
  /// Physical circuit: all CX gates connect coupled qubit pairs.
  Circuit circuit;

  /// final_mapping[logical] == physical location after all SWAPs.
  std::vector<qubit_t> final_mapping;

  /// Number of SWAPs inserted (each contributed 3 CX gates).
  std::size_t swaps_inserted = 0;
};

/// Route `circuit` onto `coupling`. The circuit must be in the {1q, CX}
/// basis and must not use more qubits than the device has.
RoutedCircuit route_circuit(const Circuit& circuit, const CouplingMap& coupling);

/// True if every multi-qubit gate connects a coupled pair.
bool respects_coupling(const Circuit& circuit, const CouplingMap& coupling);

}  // namespace rqsim
