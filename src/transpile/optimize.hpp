// Peephole circuit optimization passes.
//
// Two standard transpiler cleanups, both exactly unitary-preserving (up to
// global phase, which is unobservable):
//   - fuse_single_qubit_runs: collapse every maximal run of single-qubit
//     gates on one qubit into a single U3 (dropped entirely when the run
//     multiplies to the identity);
//   - cancel_adjacent_cx: remove CX pairs on the same (control, target)
//     with nothing touching either qubit in between.
// `optimize_circuit` iterates both to a fixed point. Fewer gates means
// fewer error positions in the noisy-simulation pipeline, so these passes
// also shrink the Monte Carlo work itself.
#pragma once

#include "circuit/circuit.hpp"
#include "linalg/matrix.hpp"

namespace rqsim {

/// Decompose any 2x2 unitary into u3(theta, phi, lambda) angles, up to
/// global phase.
struct U3Angles {
  double theta = 0.0;
  double phi = 0.0;
  double lambda = 0.0;
};
U3Angles u3_angles_from_unitary(const Mat2& u);

/// True if `u` is the identity up to global phase (within tol).
bool is_identity_up_to_phase(const Mat2& u, double tol = 1e-12);

Circuit fuse_single_qubit_runs(const Circuit& circuit);
Circuit cancel_adjacent_cx(const Circuit& circuit);

/// Iterate both passes until the gate count stops shrinking.
Circuit optimize_circuit(const Circuit& circuit);

}  // namespace rqsim
