// End-to-end transpilation pipeline: basis decomposition followed by
// coupling-map routing. This stands in for the Enfield compiler the paper
// used to map benchmarks onto IBM's 5-qubit device.
#pragma once

#include "circuit/circuit.hpp"
#include "transpile/coupling.hpp"
#include "transpile/router.hpp"

namespace rqsim {

struct TranspileResult {
  Circuit circuit;                      // physical circuit on the device
  std::vector<qubit_t> final_mapping;   // logical -> physical at the end
  std::size_t swaps_inserted = 0;
};

/// Decompose to the {1q, CX} basis and route onto the coupling map.
TranspileResult transpile(const Circuit& circuit, const CouplingMap& coupling);

}  // namespace rqsim
